// fedclust_sim — general-purpose CLI for the simulator: run any method
// (including the extension baselines) on any dataset/partition and write
// the per-round trace to CSV.
//
//   $ fedclust_sim --method=FedClust --dataset=cifar10 --rounds=40 \
//       --partition=skew --skew=0.2 --clients=40 --out=trace.csv
//
// SIGINT/SIGTERM are handled gracefully: the run stops at the next round
// boundary, writes a final checkpoint when --checkpoint-out is set, flushes
// every open trace/metrics/journal sink, and exits 0.

#include <cstdio>
#include <filesystem>
#include <iostream>

#include <fstream>

#include "core/registry.h"
#include "experiment_flags.h"
#include "fl/snapshot.h"
#include "util/logging.h"
#include "util/mem.h"
#include "util/signal.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace fedclust;
  try {
    util::ArgParser args(
        "fedclust_sim",
        "run one FL experiment and dump its trace.\n"
        "Environment: FEDCLUST_LOG_LEVEL=trace|debug|info|warn|error|off "
        "sets log verbosity (default info; per-round progress lines are "
        "INFO). FEDCLUST_THREADS sets the worker-pool size (results are "
        "bit-identical at any value). FEDCLUST_ISA=scalar|avx2|avx512|neon "
        "pins the SIMD kernel dispatch (default: best supported; results "
        "are bit-identical at any value). FEDCLUST_TRACE / FEDCLUST_METRICS "
        "provide default paths for --trace-out / --metrics-out.");
    tools::add_experiment_options(args);
    tools::add_obs_options(args);
    args.add_option("out", "trace CSV path (empty = don't write)", "");
    args.add_option("progress", "per-round INFO progress lines (1|0)", "1");
    args.add_option("checkpoint-out",
                    "directory for run snapshots + manifest.json (created "
                    "if missing; empty = checkpointing off)",
                    "");
    args.add_option("checkpoint-every",
                    "write a snapshot every N round boundaries (0 = only "
                    "the --halt-after boundary)",
                    "0");
    args.add_option("halt-after",
                    "stop after writing the round-K boundary snapshot — a "
                    "deterministic stand-in for killing the process (0 = "
                    "run to completion)",
                    "0");
    args.add_option("resume",
                    "snapshot file to resume from; the other flags must "
                    "reproduce the config that wrote it (see the "
                    "checkpoint directory's manifest.json)",
                    "");
    args.add_option("bench-out",
                    "write a small JSON throughput record (rounds/s, peak "
                    "RSS, git describe) to this path after the run (empty "
                    "= off)",
                    "");
    if (!args.parse(argc, argv)) return 0;

    util::install_shutdown_handler();
    tools::setup_observability(args);

    fl::ExperimentConfig cfg = tools::build_experiment_config(args);
    if (!args.str("journal-out").empty()) {
      obs::EventJournal::instance().set_codec_name(
          fl::wire::codec_name(cfg.codec));
    }

    fl::Federation fed(cfg);
    const auto algo = core::make_algorithm(args.str("method"), fed);

    fl::CheckpointPolicy ckpt;
    ckpt.dir = args.str("checkpoint-out");
    ckpt.every = static_cast<std::size_t>(args.integer("checkpoint-every"));
    ckpt.halt_after =
        static_cast<std::size_t>(args.integer("halt-after"));
    if (!ckpt.dir.empty()) {
      std::filesystem::create_directories(ckpt.dir);
      // Manifest before the first round (docs/INVARIANTS.md "Snapshot"):
      // whatever happens to the run, the directory documents what produced
      // the snapshots next to it.
      fl::write_manifest(cfg, algo->name(), ckpt.dir);
      std::cout << "manifest written to " << ckpt.dir << "/manifest.json\n";
    }
    algo->set_checkpoint_policy(ckpt);
    if (!args.str("resume").empty()) {
      const fl::RunSnapshot snap = fl::load_snapshot(args.str("resume"));
      algo->resume_from(snap);
      std::cout << "resuming " << snap.method << " from round "
                << snap.next_round << " (" << args.str("resume") << ")\n";
    }
    if (args.integer("progress") != 0) {
      algo->set_round_observer([](const fl::RoundRecord& rec,
                                  double round_seconds) {
        FC_LOG_INFO << "round " << rec.round << " acc="
                    << util::fmt_float(rec.avg_local_test_acc * 100.0, 2)
                    << "% clusters=" << rec.n_clusters << " comm="
                    << util::fmt_float(
                           static_cast<double>(rec.bytes_up +
                                               rec.bytes_down) *
                               8.0 / 1e6,
                           2)
                    << "Mb " << util::fmt_float(round_seconds, 3) << "s";
      });
    }
    util::Stopwatch sw;
    const fl::Trace trace = algo->run();
    const double run_seconds = sw.seconds();

    std::cout << args.str("method") << " on " << args.str("dataset") << "/"
              << args.str("partition") << ": final acc "
              << util::fmt_float(trace.final_accuracy() * 100.0, 2)
              << "%, clusters " << trace.final_clusters() << ", comm "
              << util::fmt_float(trace.total_mb(), 2) << " Mb, "
              << util::fmt_float(sw.seconds(), 1) << " s\n";
    {
      const fl::CommTracker& comm = fed.comm();
      std::cout << "wire codec " << fl::wire::codec_name(comm.codec())
                << ": payload " << comm.payload_bytes() << " B, wire "
                << comm.wire_bytes() << " B ("
                << comm.messages() << " messages, compression "
                << util::fmt_float(comm.compression_ratio(), 2) << "x)\n";
    }
    std::cout << "simd kernels: isa=" << util::isa_name(util::active_isa())
              << " fast_math="
              << (util::fast_math_kernels() ? "on" : "off") << "\n";
    std::cout << "peak rss " << util::peak_rss_kb() << " KiB";
    if (cfg.virtual_clients) {
      const fl::ClientStore::CacheStats stats = fed.store_stats();
      std::cout << " (client store: " << stats.hits << " hits, "
                << stats.misses << " misses, " << stats.evictions
                << " evictions)";
    }
    std::cout << "\n";
    {
      // Digest of the algorithm's full serialized state (all model
      // parameters included): two runs print the same line iff they ended
      // in bit-identical state — what the kill-and-resume smoke compares.
      char digest[16];
      std::snprintf(digest, sizeof(digest), "%08X", algo->state_crc32c());
      std::cout << "state crc32c=" << digest << "\n";
    }
    if (!args.str("out").empty()) {
      trace.save_csv(args.str("out"));
      std::cout << "trace written to " << args.str("out") << "\n";
    }
    if (!args.str("bench-out").empty()) {
      std::ofstream os(args.str("bench-out"));
      if (!os) {
        throw std::runtime_error("cannot write " + args.str("bench-out"));
      }
      os.precision(6);
      os << "{\n"
         << "  \"method\": \"" << args.str("method") << "\",\n"
         << "  \"clients\": " << cfg.fed.n_clients << ",\n"
         << "  \"rounds\": " << cfg.rounds << ",\n"
         << "  \"seconds\": " << run_seconds << ",\n"
         << "  \"rounds_per_s\": "
         << (run_seconds > 0.0 ? static_cast<double>(cfg.rounds) / run_seconds
                               : 0.0)
         << ",\n"
         << "  \"peak_rss_kb\": " << util::peak_rss_kb() << ",\n"
         << "  \"virtual_clients\": "
         << (cfg.virtual_clients ? "true" : "false") << ",\n"
         << "  \"git_describe\": \"" << fl::build_git_describe() << "\"\n"
         << "}\n";
      std::cout << "bench record written to " << args.str("bench-out")
                << "\n";
    }
    tools::finish_observability(args, std::cout);
    if (util::shutdown_requested()) {
      std::cout << "interrupted: stopped at a round boundary, state "
                << "flushed\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
