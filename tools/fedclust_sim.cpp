// fedclust_sim — general-purpose CLI for the simulator: run any method
// (including the extension baselines) on any dataset/partition and write
// the per-round trace to CSV.
//
//   $ fedclust_sim --method=FedClust --dataset=cifar10 --rounds=40 \
//       --partition=skew --skew=0.2 --clients=40 --out=trace.csv

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/registry.h"
#include "fl/snapshot.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/config.h"
#include "util/cpu.h"
#include "util/logging.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace fedclust;
  try {
    util::ArgParser args(
        "fedclust_sim",
        "run one FL experiment and dump its trace.\n"
        "Environment: FEDCLUST_LOG_LEVEL=trace|debug|info|warn|error|off "
        "sets log verbosity (default info; per-round progress lines are "
        "INFO). FEDCLUST_THREADS sets the worker-pool size (results are "
        "bit-identical at any value). FEDCLUST_ISA=scalar|avx2|avx512|neon "
        "pins the SIMD kernel dispatch (default: best supported; results "
        "are bit-identical at any value). FEDCLUST_TRACE / FEDCLUST_METRICS "
        "provide default paths for --trace-out / --metrics-out.");
    args.add_option("method", "Local|FedAvg|...|FedClust|SCAFFOLD|FedDyn|"
                              "Ditto|FLIS", "FedClust");
    args.add_option("dataset", "cifar10|cifar100|fmnist|svhn", "cifar10");
    args.add_option("partition", "skew|dirichlet|iid", "skew");
    args.add_option("skew", "label-skew fraction", "0.2");
    args.add_option("alpha", "dirichlet alpha", "0.1");
    args.add_option("clients", "number of clients", "40");
    args.add_option("train", "train samples per client", "10");
    args.add_option("test", "test samples per client", "10");
    args.add_option("rounds", "communication rounds", "40");
    args.add_option("sample", "client fraction per round", "0.1");
    args.add_option("epochs", "local epochs", "2");
    args.add_option("lr", "learning rate", "0.02");
    args.add_option("momentum", "SGD momentum", "0.5");
    args.add_option("lambda", "FedClust λ (-1 = auto largest-gap)", "-1");
    args.add_option("k", "FedClust/PACFL fixed cluster count (0 = use λ)",
                    "0");
    args.add_option("codec",
                    "wire codec for model payloads: raw_f32 (byte-exact "
                    "default), f16, qint8 (per-chunk affine, ~3.9x smaller)",
                    "raw_f32");
    args.add_option("dropout", "client dropout probability", "0");
    args.add_option("fault-spec",
                    "fault-injection plan, comma-separated key=value pairs "
                    "(dropout, crash, straggle, delay, comm, corrupt, "
                    "corrupt_mode, explode, deadline, retries, over_select, "
                    "max_norm, only=id:id:...); e.g. "
                    "\"crash=0.1,straggle=0.2,deadline=4,corrupt=0.05\"",
                    "");
    args.add_option("seed", "root seed", "1");
    args.add_option("out", "trace CSV path (empty = don't write)", "");
    args.add_option("trace-out",
                    "Chrome Trace Event JSON path (open in Perfetto; "
                    "empty = tracing off)",
                    util::env_string("FEDCLUST_TRACE", ""));
    args.add_option("metrics-out",
                    "per-round metrics JSONL path (empty = metrics off)",
                    util::env_string("FEDCLUST_METRICS", ""));
    args.add_option("journal-out",
                    "per-(round, client) event journal JSONL path — the "
                    "input to fedclust_report (empty = journal off)",
                    util::env_string("FEDCLUST_JOURNAL", ""));
    args.add_option("progress", "per-round INFO progress lines (1|0)", "1");
    args.add_option("fast-math-kernels",
                    "FMA-contracted SIMD kernels + int8-domain qint8 "
                    "aggregation; trades bit-identity with the scalar "
                    "reference for speed (1|0)",
                    "0");
    args.add_option("checkpoint-out",
                    "directory for run snapshots + manifest.json (created "
                    "if missing; empty = checkpointing off)",
                    "");
    args.add_option("checkpoint-every",
                    "write a snapshot every N round boundaries (0 = only "
                    "the --halt-after boundary)",
                    "0");
    args.add_option("halt-after",
                    "stop after writing the round-K boundary snapshot — a "
                    "deterministic stand-in for killing the process (0 = "
                    "run to completion)",
                    "0");
    args.add_option("resume",
                    "snapshot file to resume from; the other flags must "
                    "reproduce the config that wrote it (see the "
                    "checkpoint directory's manifest.json)",
                    "");
    if (!args.parse(argc, argv)) return 0;

    const std::string trace_out = args.str("trace-out");
    const std::string metrics_out = args.str("metrics-out");
    if (!trace_out.empty()) {
      obs::SpanTracer::instance().set_enabled(true);
    }
    if (!metrics_out.empty()) {
      obs::MetricsRegistry::instance().set_enabled(true);
      obs::MetricsRegistry::instance().open_round_log(metrics_out);
    }
    const std::string journal_out = args.str("journal-out");
    if (!journal_out.empty()) {
      obs::EventJournal::instance().open(journal_out);
    }

    fl::ExperimentConfig cfg;
    cfg.data_spec = data::dataset_spec(args.str("dataset"));
    cfg.fed.n_clients = static_cast<std::size_t>(args.integer("clients"));
    cfg.fed.train_per_client =
        static_cast<std::size_t>(args.integer("train"));
    cfg.fed.test_per_client = static_cast<std::size_t>(args.integer("test"));
    cfg.fed.partition = args.str("partition");
    cfg.fed.skew_fraction = args.real("skew");
    cfg.fed.dirichlet_alpha = args.real("alpha");
    cfg.model.arch =
        args.str("dataset") == "cifar100" ? "resnet9" : "lenet5";
    cfg.model.in_channels = cfg.data_spec.channels;
    cfg.model.image_hw = cfg.data_spec.hw;
    cfg.model.num_classes = cfg.data_spec.num_classes;
    cfg.local.epochs = static_cast<std::size_t>(args.integer("epochs"));
    cfg.local.lr = static_cast<float>(args.real("lr"));
    cfg.local.momentum = static_cast<float>(args.real("momentum"));
    cfg.rounds = static_cast<std::size_t>(args.integer("rounds"));
    cfg.sample_fraction = args.real("sample");
    cfg.codec = fl::wire::codec_from_string(args.str("codec"));
    if (!journal_out.empty()) {
      obs::EventJournal::instance().set_codec_name(
          fl::wire::codec_name(cfg.codec));
    }
    cfg.dropout_prob = args.real("dropout");
    cfg.fault = fl::FaultPlan::parse(args.str("fault-spec"));
    cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
    cfg.algo.fedclust_lambda = static_cast<float>(args.real("lambda"));
    cfg.algo.fedclust_k = static_cast<std::size_t>(args.integer("k"));
    cfg.algo.pacfl_k = cfg.algo.fedclust_k;
    cfg.algo.fedclust_init_epochs = 3;

    util::set_fast_math_kernels(args.integer("fast-math-kernels") != 0);

    fl::Federation fed(cfg);
    const auto algo = core::make_algorithm(args.str("method"), fed);

    fl::CheckpointPolicy ckpt;
    ckpt.dir = args.str("checkpoint-out");
    ckpt.every = static_cast<std::size_t>(args.integer("checkpoint-every"));
    ckpt.halt_after =
        static_cast<std::size_t>(args.integer("halt-after"));
    if (!ckpt.dir.empty()) {
      std::filesystem::create_directories(ckpt.dir);
      // Manifest before the first round (docs/INVARIANTS.md "Snapshot"):
      // whatever happens to the run, the directory documents what produced
      // the snapshots next to it.
      fl::write_manifest(cfg, algo->name(), ckpt.dir);
      std::cout << "manifest written to " << ckpt.dir << "/manifest.json\n";
    }
    algo->set_checkpoint_policy(ckpt);
    if (!args.str("resume").empty()) {
      const fl::RunSnapshot snap = fl::load_snapshot(args.str("resume"));
      algo->resume_from(snap);
      std::cout << "resuming " << snap.method << " from round "
                << snap.next_round << " (" << args.str("resume") << ")\n";
    }
    if (args.integer("progress") != 0) {
      algo->set_round_observer([](const fl::RoundRecord& rec,
                                  double round_seconds) {
        FC_LOG_INFO << "round " << rec.round << " acc="
                    << util::fmt_float(rec.avg_local_test_acc * 100.0, 2)
                    << "% clusters=" << rec.n_clusters << " comm="
                    << util::fmt_float(
                           static_cast<double>(rec.bytes_up +
                                               rec.bytes_down) *
                               8.0 / 1e6,
                           2)
                    << "Mb " << util::fmt_float(round_seconds, 3) << "s";
      });
    }
    util::Stopwatch sw;
    const fl::Trace trace = algo->run();

    std::cout << args.str("method") << " on " << args.str("dataset") << "/"
              << args.str("partition") << ": final acc "
              << util::fmt_float(trace.final_accuracy() * 100.0, 2)
              << "%, clusters " << trace.final_clusters() << ", comm "
              << util::fmt_float(trace.total_mb(), 2) << " Mb, "
              << util::fmt_float(sw.seconds(), 1) << " s\n";
    {
      const fl::CommTracker& comm = fed.comm();
      std::cout << "wire codec " << fl::wire::codec_name(comm.codec())
                << ": payload " << comm.payload_bytes() << " B, wire "
                << comm.wire_bytes() << " B ("
                << comm.messages() << " messages, compression "
                << util::fmt_float(comm.compression_ratio(), 2) << "x)\n";
    }
    std::cout << "simd kernels: isa=" << util::isa_name(util::active_isa())
              << " fast_math="
              << (util::fast_math_kernels() ? "on" : "off") << "\n";
    {
      // Digest of the algorithm's full serialized state (all model
      // parameters included): two runs print the same line iff they ended
      // in bit-identical state — what the kill-and-resume smoke compares.
      char digest[16];
      std::snprintf(digest, sizeof(digest), "%08X", algo->state_crc32c());
      std::cout << "state crc32c=" << digest << "\n";
    }
    if (!args.str("out").empty()) {
      trace.save_csv(args.str("out"));
      std::cout << "trace written to " << args.str("out") << "\n";
    }
    if (!trace_out.empty()) {
      obs::SpanTracer::instance().write_chrome_trace(trace_out);
      std::cout << "span trace written to " << trace_out
                << " (open in https://ui.perfetto.dev)\n";
    }
    if (!metrics_out.empty()) {
      obs::MetricsRegistry::instance().close_round_log();
      std::cout << obs::MetricsRegistry::instance().summary_table()
                << "metrics written to " << metrics_out << "\n";
    }
    if (!journal_out.empty()) {
      obs::EventJournal::instance().close();
      std::cout << "journal written to " << journal_out << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
