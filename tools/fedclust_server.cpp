// fedclust_server — the multi-process variant of fedclust_sim.
//
// Owns the whole campaign (Federation, sampling, fault injection, billing,
// aggregation, evaluation, checkpoints) exactly like fedclust_sim; only the
// pure local-training computation is farmed out to fedclust_worker
// processes over a Unix or TCP socket. Every algorithm runs unmodified: the
// net::ServerTransport plugs into Federation, and the round runner splits
// the client step around it (see src/fl/transport.h).
//
// With --deterministic the trace CSV and "state crc32c=" digest are
// bit-identical to the in-process run of the same flags, at any worker
// count and any FEDCLUST_THREADS. Worker crashes (kill -9) never abort the
// campaign: in-flight calls are requeued onto surviving workers with
// exponential backoff, and calls whose retry budget runs out degrade to
// honestly-billed lost updates.
//
//   $ fedclust_server --listen=unix:/tmp/fed.sock --workers=2 \
//       --method=FedClust --rounds=10 --out=trace.csv

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/registry.h"
#include "experiment_flags.h"
#include "fl/snapshot.h"
#include "net/server_transport.h"
#include "util/logging.h"
#include "util/signal.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace fedclust;
  try {
    util::ArgParser args(
        "fedclust_server",
        "run one FL experiment with local training delegated to "
        "fedclust_worker processes over a socket.\n"
        "Start the server first, then the workers with the same experiment "
        "flags (the handshake rejects config mismatches). Environment: "
        "FEDCLUST_LOG_LEVEL, FEDCLUST_THREADS, FEDCLUST_ISA, FEDCLUST_TRACE "
        "and FEDCLUST_METRICS behave as in fedclust_sim.");
    tools::add_experiment_options(args);
    tools::add_obs_options(args);
    args.add_option("listen",
                    "address to listen on: unix:/path or tcp:host:port",
                    "unix:/tmp/fedclust.sock");
    args.add_option("workers",
                    "worker handshakes to wait for before round 0", "1");
    args.add_option("net-timeout-ms",
                    "heartbeat deadline and per-connection I/O timeout; "
                    "must exceed the worst-case single-call training time",
                    "30000");
    args.add_option("accept-timeout-ms",
                    "how long to wait for the initial worker quorum",
                    "60000");
    args.add_option("out", "trace CSV path (empty = don't write)", "");
    args.add_option("progress", "per-round INFO progress lines (1|0)", "1");
    args.add_option("checkpoint-out",
                    "directory for run snapshots + manifest.json (created "
                    "if missing; empty = checkpointing off)",
                    "");
    args.add_option("checkpoint-every",
                    "write a snapshot every N round boundaries (0 = only "
                    "the --halt-after boundary)",
                    "0");
    args.add_option("halt-after",
                    "stop after writing the round-K boundary snapshot (0 = "
                    "run to completion)",
                    "0");
    args.add_option("resume",
                    "snapshot file to resume from (flags must reproduce "
                    "the config that wrote it)",
                    "");
    if (!args.parse(argc, argv)) return 0;

    util::install_shutdown_handler();
    tools::setup_observability(args);

    fl::ExperimentConfig cfg = tools::build_experiment_config(args);
    if (!args.str("journal-out").empty()) {
      obs::EventJournal::instance().set_codec_name(
          fl::wire::codec_name(cfg.codec));
    }

    fl::Federation fed(cfg);
    const auto algo = core::make_algorithm(args.str("method"), fed);

    net::ServerOptions sopts;
    sopts.listen = args.str("listen");
    sopts.expect_workers = static_cast<std::size_t>(args.integer("workers"));
    sopts.io_timeout_ms = static_cast<int>(args.integer("net-timeout-ms"));
    sopts.accept_timeout_ms =
        static_cast<int>(args.integer("accept-timeout-ms"));
    sopts.backoff = net::BackoffPolicy::from_fault_plan(cfg.fault);
    sopts.seed = cfg.seed;
    sopts.fingerprint = fl::config_fingerprint(cfg);
    net::ServerTransport transport(sopts);
    transport.start();
    if (!transport.wait_for_workers()) {
      std::cerr << "error: only " << transport.live_workers() << " of "
                << sopts.expect_workers << " workers connected within "
                << sopts.accept_timeout_ms << " ms\n";
      return 1;
    }
    fed.set_transport(&transport);

    fl::CheckpointPolicy ckpt;
    ckpt.dir = args.str("checkpoint-out");
    ckpt.every = static_cast<std::size_t>(args.integer("checkpoint-every"));
    ckpt.halt_after = static_cast<std::size_t>(args.integer("halt-after"));
    if (!ckpt.dir.empty()) {
      std::filesystem::create_directories(ckpt.dir);
      fl::write_manifest(cfg, algo->name(), ckpt.dir);
      std::cout << "manifest written to " << ckpt.dir << "/manifest.json\n";
    }
    algo->set_checkpoint_policy(ckpt);
    if (!args.str("resume").empty()) {
      const fl::RunSnapshot snap = fl::load_snapshot(args.str("resume"));
      algo->resume_from(snap);
      std::cout << "resuming " << snap.method << " from round "
                << snap.next_round << " (" << args.str("resume") << ")\n";
    }
    if (args.integer("progress") != 0) {
      algo->set_round_observer([](const fl::RoundRecord& rec,
                                  double round_seconds) {
        FC_LOG_INFO << "round " << rec.round << " acc="
                    << util::fmt_float(rec.avg_local_test_acc * 100.0, 2)
                    << "% clusters=" << rec.n_clusters << " comm="
                    << util::fmt_float(
                           static_cast<double>(rec.bytes_up +
                                               rec.bytes_down) *
                               8.0 / 1e6,
                           2)
                    << "Mb " << util::fmt_float(round_seconds, 3) << "s";
      });
    }

    util::Stopwatch sw;
    const fl::Trace trace = algo->run();
    transport.shutdown_workers();
    fed.set_transport(nullptr);

    std::cout << args.str("method") << " on " << args.str("dataset") << "/"
              << args.str("partition") << " over " << transport.name()
              << ": final acc "
              << util::fmt_float(trace.final_accuracy() * 100.0, 2)
              << "%, clusters " << trace.final_clusters() << ", comm "
              << util::fmt_float(trace.total_mb(), 2) << " Mb, "
              << util::fmt_float(sw.seconds(), 1) << " s\n";
    {
      const fl::CommTracker& comm = fed.comm();
      std::cout << "wire codec " << fl::wire::codec_name(comm.codec())
                << ": payload " << comm.payload_bytes() << " B, wire "
                << comm.wire_bytes() << " B ("
                << comm.messages() << " messages, compression "
                << util::fmt_float(comm.compression_ratio(), 2) << "x)\n";
    }
    std::cout << "simd kernels: isa=" << util::isa_name(util::active_isa())
              << " fast_math="
              << (util::fast_math_kernels() ? "on" : "off") << "\n";
    {
      char digest[16];
      std::snprintf(digest, sizeof(digest), "%08X", algo->state_crc32c());
      std::cout << "state crc32c=" << digest << "\n";
    }
    if (!args.str("out").empty()) {
      trace.save_csv(args.str("out"));
      std::cout << "trace written to " << args.str("out") << "\n";
    }
    tools::finish_observability(args, std::cout);
    if (util::shutdown_requested()) {
      std::cout << "interrupted: stopped at a round boundary, state "
                << "flushed\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
