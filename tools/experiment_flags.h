#pragma once

// Shared CLI surface for fedclust_sim / fedclust_server / fedclust_worker.
//
// The socket transport's bit-identity contract requires the server and
// every worker to build the *same* Federation, which means the same
// ExperimentConfig from the same flags. Registering and decoding the
// experiment flags in one place makes drift impossible: a flag added here
// appears in all three binaries, feeds config_fingerprint, and the
// handshake rejects any worker whose decoded config disagrees.

#include <string>

#include "fl/federation.h"
#include "fl/fault.h"
#include "fl/snapshot.h"
#include "fl/wire.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/config.h"
#include "util/cpu.h"

namespace fedclust::tools {

// The config-defining experiment flags (everything that feeds
// config_fingerprint, plus --method and --fast-math-kernels).
inline void add_experiment_options(util::ArgParser& args) {
  args.add_option("method", "Local|FedAvg|...|FedClust|SCAFFOLD|FedDyn|"
                            "Ditto|FLIS", "FedClust");
  args.add_option("dataset", "cifar10|cifar100|fmnist|svhn", "cifar10");
  args.add_option("partition", "skew|dirichlet|iid", "skew");
  args.add_option("skew", "label-skew fraction", "0.2");
  args.add_option("alpha", "dirichlet alpha", "0.1");
  args.add_option("label-pool",
                  "skew partition: draw each client's label set from this "
                  "many disjoint ground-truth groups instead of "
                  "independently (0 = off; makes the population genuinely "
                  "clusterable, e.g. for clustering-agreement gates)",
                  "0");
  args.add_option("clients", "number of clients", "40");
  args.add_option("train", "train samples per client", "10");
  args.add_option("test", "test samples per client", "10");
  args.add_option("rounds", "communication rounds", "40");
  args.add_option("sample", "client fraction per round", "0.1");
  args.add_option("epochs", "local epochs", "2");
  args.add_option("lr", "learning rate", "0.02");
  args.add_option("momentum", "SGD momentum", "0.5");
  args.add_option("lambda", "FedClust λ (-1 = auto largest-gap)", "-1");
  args.add_option("k", "FedClust/PACFL fixed cluster count (0 = use λ)",
                  "0");
  args.add_option("codec",
                  "wire codec for model payloads: raw_f32 (byte-exact "
                  "default), f16, qint8 (per-chunk affine, ~3.9x smaller)",
                  "raw_f32");
  args.add_option("dropout", "client dropout probability", "0");
  args.add_option("fault-spec",
                  "fault-injection plan, comma-separated key=value pairs "
                  "(dropout, crash, straggle, delay, comm, corrupt, "
                  "corrupt_mode, explode, deadline, retries, backoff_base, "
                  "backoff_mult, over_select, max_norm, only=id:id:...); "
                  "retries/backoff_* also set the socket transport's "
                  "requeue schedule; e.g. "
                  "\"crash=0.1,straggle=0.2,deadline=4,corrupt=0.05\"",
                  "");
  args.add_option("seed", "root seed", "1");
  args.add_option("virtual-clients",
                  "regenerate clients on demand from (seed, id) behind an "
                  "LRU cache instead of materializing the whole population "
                  "up front; results are bit-identical either way (1|0)",
                  "0");
  args.add_option("client-cache",
                  "max clients resident in the virtual store's LRU cache "
                  "(0 = default 256; ignored without --virtual-clients)",
                  "0");
  args.add_option("eval-clients",
                  "evaluate on a fixed random subsample of this many "
                  "clients instead of all of them (0 = all; changes "
                  "recorded accuracies, so it feeds the config "
                  "fingerprint)",
                  "0");
  args.add_option("landmarks",
                  "FedClust/PACFL setup: cluster only this many "
                  "deterministically sampled landmark clients, then assign "
                  "everyone else to the nearest landmark in O(N·L) with "
                  "bounded memory (0 = exact O(N²) clustering; changes the "
                  "partition, so it feeds the config fingerprint)",
                  "0");
  args.add_option("fast-math-kernels",
                  "FMA-contracted SIMD kernels + int8-domain qint8 "
                  "aggregation; trades bit-identity with the scalar "
                  "reference for speed (1|0)",
                  "0");
}

// Observability outputs + the deterministic switch, shared by all three
// binaries (the worker's journal stays mostly empty but the flags parse).
inline void add_obs_options(util::ArgParser& args) {
  args.add_option("trace-out",
                  "Chrome Trace Event JSON path (open in Perfetto; "
                  "empty = tracing off)",
                  util::env_string("FEDCLUST_TRACE", ""));
  args.add_option("metrics-out",
                  "per-round metrics JSONL path (empty = metrics off)",
                  util::env_string("FEDCLUST_METRICS", ""));
  args.add_option("journal-out",
                  "per-(round, client) event journal JSONL path — the "
                  "input to fedclust_report (empty = journal off)",
                  util::env_string("FEDCLUST_JOURNAL", ""));
  args.add_option("deterministic",
                  "zero every wall-clock field in the journal so output "
                  "files are bit-identical across thread counts and across "
                  "the in-process/socket transports (1|0)",
                  "0");
}

// Decodes the experiment flags into the config every binary agrees on.
// Also applies --fast-math-kernels (a process-wide kernel switch).
inline fl::ExperimentConfig build_experiment_config(
    const util::ArgParser& args) {
  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec(args.str("dataset"));
  cfg.fed.n_clients = static_cast<std::size_t>(args.integer("clients"));
  cfg.fed.train_per_client = static_cast<std::size_t>(args.integer("train"));
  cfg.fed.test_per_client = static_cast<std::size_t>(args.integer("test"));
  cfg.fed.partition = args.str("partition");
  cfg.fed.skew_fraction = args.real("skew");
  cfg.fed.label_set_pool = static_cast<std::size_t>(args.integer("label-pool"));
  cfg.fed.dirichlet_alpha = args.real("alpha");
  cfg.model.arch = args.str("dataset") == "cifar100" ? "resnet9" : "lenet5";
  cfg.model.in_channels = cfg.data_spec.channels;
  cfg.model.image_hw = cfg.data_spec.hw;
  cfg.model.num_classes = cfg.data_spec.num_classes;
  cfg.local.epochs = static_cast<std::size_t>(args.integer("epochs"));
  cfg.local.lr = static_cast<float>(args.real("lr"));
  cfg.local.momentum = static_cast<float>(args.real("momentum"));
  cfg.rounds = static_cast<std::size_t>(args.integer("rounds"));
  cfg.sample_fraction = args.real("sample");
  cfg.codec = fl::wire::codec_from_string(args.str("codec"));
  cfg.dropout_prob = args.real("dropout");
  cfg.fault = fl::FaultPlan::parse(args.str("fault-spec"));
  cfg.seed = static_cast<std::uint64_t>(args.integer("seed"));
  cfg.virtual_clients = args.integer("virtual-clients") != 0;
  cfg.client_cache = static_cast<std::size_t>(args.integer("client-cache"));
  cfg.eval_clients = static_cast<std::size_t>(args.integer("eval-clients"));
  cfg.landmarks = static_cast<std::size_t>(args.integer("landmarks"));
  cfg.algo.fedclust_lambda = static_cast<float>(args.real("lambda"));
  cfg.algo.fedclust_k = static_cast<std::size_t>(args.integer("k"));
  cfg.algo.pacfl_k = cfg.algo.fedclust_k;
  cfg.algo.fedclust_init_epochs = 3;
  util::set_fast_math_kernels(args.integer("fast-math-kernels") != 0);
  return cfg;
}

// Enables the requested sinks. Call before the Federation is built so the
// construction spans are captured too.
inline void setup_observability(const util::ArgParser& args) {
  if (!args.str("trace-out").empty()) {
    obs::SpanTracer::instance().set_enabled(true);
  }
  if (!args.str("metrics-out").empty()) {
    obs::MetricsRegistry::instance().set_enabled(true);
    obs::MetricsRegistry::instance().open_round_log(args.str("metrics-out"));
  }
  if (!args.str("journal-out").empty()) {
    obs::EventJournal::instance().open(args.str("journal-out"));
  }
  if (args.integer("deterministic") != 0) {
    obs::EventJournal::instance().set_wall_clock(false);
  }
}

// Flushes and closes whatever setup_observability opened, echoing the
// output paths like fedclust_sim always has.
inline void finish_observability(const util::ArgParser& args,
                                 std::ostream& os) {
  const std::string trace_out = args.str("trace-out");
  const std::string metrics_out = args.str("metrics-out");
  const std::string journal_out = args.str("journal-out");
  if (!trace_out.empty()) {
    obs::SpanTracer::instance().write_chrome_trace(trace_out);
    os << "span trace written to " << trace_out
       << " (open in https://ui.perfetto.dev)\n";
  }
  if (!metrics_out.empty()) {
    obs::MetricsRegistry::instance().close_round_log();
    os << obs::MetricsRegistry::instance().summary_table()
       << "metrics written to " << metrics_out << "\n";
  }
  if (!journal_out.empty()) {
    obs::EventJournal::instance().close();
    os << "journal written to " << journal_out << "\n";
  }
}

}  // namespace fedclust::tools
