// Compact shape-score probe: prints FedClust-best-k / Local / FedAvg.
#include <iostream>
#include "harness.h"
#include "core/fedclust.h"
#include "core/registry.h"
#include "util/config.h"
using namespace fedclust;
int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "cifar10";
  bench::Scale scale = bench::get_scale();
  auto base = [&](std::uint64_t seed) {
    fl::ExperimentConfig cfg = bench::make_config(dataset, "skew20", scale, seed);
    cfg.data_spec.noise = (float)util::env_double("PROBE_NOISE", cfg.data_spec.noise);
    cfg.data_spec.coeff_jitter = (float)util::env_double("PROBE_JITTER", cfg.data_spec.coeff_jitter);
    cfg.sample_fraction = util::env_double("PROBE_SAMPLE", cfg.sample_fraction);
    cfg.local.lr = (float)util::env_double("PROBE_LR", cfg.local.lr);
    cfg.fed.train_per_client = (std::size_t)util::env_int("PROBE_TRAIN", cfg.fed.train_per_client);
    return cfg;
  };
  double best_fc = 0; std::size_t best_k = 0;
  for (std::size_t k : {4, 8, 12, 16, 20, 24}) {
    double a = 0;
    for (std::uint64_t seed : {1000, 2000}) {
      auto cfg = base(seed);
      cfg.algo.fedclust_k = k;
      fl::Federation fed(cfg);
      core::FedClust algo(fed);
      a += algo.run().final_accuracy() / 2;
    }
    std::cout << "    k=" << k << ": " << a*100 << "\n";
    if (a > best_fc) { best_fc = a; best_k = k; }
  }
  double local = 0, fedavg = 0;
  for (std::uint64_t seed : {1000, 2000}) {
    { auto cfg = base(seed); fl::Federation fed(cfg);
      local += core::make_algorithm("Local", fed)->run().final_accuracy() / 2; }
    { auto cfg = base(seed); fl::Federation fed(cfg);
      fedavg += core::make_algorithm("FedAvg", fed)->run().final_accuracy() / 2; }
  }
  std::cout << "FC(k=" << best_k << ")=" << best_fc*100 << " Local=" << local*100
            << " FedAvg=" << fedavg*100
            << " margin=" << (best_fc - std::max(local, fedavg))*100 << "\n";
}
