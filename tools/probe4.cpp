// Cluster coherence probe: intra-cluster vs global Jaccard similarity of
// client label sets, for FedClust's one-shot clustering.
#include <iostream>
#include <set>
#include "harness.h"
#include "core/fedclust.h"
#include "util/config.h"
// (env knobs: PROBE_K, PROBE_WARMUP, PROBE_WARMLR, PROBE_LINKAGE)
using namespace fedclust;
int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "fmnist";
  bench::Scale scale = bench::get_scale();
  fl::ExperimentConfig cfg = bench::make_config(dataset, "skew20", scale, 1000);
  cfg.algo.fedclust_k = (std::size_t)util::env_int("PROBE_K", 8);
  cfg.algo.fedclust_init_epochs = (std::size_t)util::env_int("PROBE_WARMUP", 3);
  cfg.algo.fedclust_init_lr = (float)util::env_double("PROBE_WARMLR", 0.0);
  cfg.algo.fedclust_linkage = util::env_string("PROBE_LINKAGE", "average");
  cfg.rounds = 1;
  auto cdata = data::make_federated_data(cfg.data_spec, cfg.fed, cfg.seed);
  std::vector<std::set<std::int64_t>> sets;
  for (auto& c : cdata) {
    const auto labels = c.train.present_labels();
    sets.emplace_back(labels.begin(), labels.end());
  }
  fl::Federation fed(cfg);
  core::FedClust algo(fed);
  algo.run();
  const auto& a = algo.assignment();
  auto jac = [&](std::size_t i, std::size_t j) {
    std::size_t inter = 0;
    for (auto l : sets[i]) inter += sets[j].count(l);
    const std::size_t uni = sets[i].size() + sets[j].size() - inter;
    return uni ? double(inter) / double(uni) : 1.0;
  };
  double intra = 0, all = 0; std::size_t ni = 0, na = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      const double v = jac(i, j);
      all += v; ++na;
      if (a[i] == a[j]) { intra += v; ++ni; }
    }
  std::cout << "k=" << algo.report().n_clusters
            << " intra-jaccard=" << (ni ? intra/ni : 0)
            << " overall-jaccard=" << all/na << "\n";
}
