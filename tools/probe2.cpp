// Scratch calibration: prototypes-per-class / noise / lr shape probe.
#include <iostream>
#include "harness.h"
#include "core/fedclust.h"
#include "core/registry.h"
#include "util/config.h"
using namespace fedclust;
int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "cifar10";
  bench::Scale scale = bench::get_scale();
  auto base = [&](std::uint64_t seed) {
    fl::ExperimentConfig cfg = bench::make_config(dataset, "skew20", scale, seed);
    cfg.data_spec.prototypes_per_class =
        (std::size_t)util::env_int("PROBE_PROTOS", cfg.data_spec.prototypes_per_class);
    cfg.data_spec.noise = (float)util::env_double("PROBE_NOISE", cfg.data_spec.noise);
    cfg.data_spec.coeff_jitter = (float)util::env_double("PROBE_JITTER", cfg.data_spec.coeff_jitter);
    cfg.data_spec.grating_scale = (float)util::env_double("PROBE_GRATING", cfg.data_spec.grating_scale);
    cfg.local.lr = (float)util::env_double("PROBE_LR", 0.03);
    cfg.algo.fedclust_init_epochs = (std::size_t)util::env_int("PROBE_WARMUP", 3);
    return cfg;
  };
  for (std::size_t k : {0, 2, 4, 8, 16}) {
    auto cfg = base(1000);
    cfg.algo.fedclust_k = k;
    fl::Federation fed(cfg);
    core::FedClust algo(fed);
    auto t = algo.run();
    std::cout << "  FedClust k=" << (k ? std::to_string(k) : "auto") << " -> "
              << algo.report().n_clusters << " clusters, acc="
              << t.final_accuracy() * 100 << "%\n";
  }
  for (const char* m : {"Local", "FedAvg", "IFCA", "PACFL", "LG", "PerFedAvg", "CFL"}) {
    auto cfg = base(1000);
    fl::Federation fed(cfg);
    auto algo = core::make_algorithm(m, fed);
    auto t = algo->run();
    std::cout << "  " << m << " acc=" << t.final_accuracy() * 100
              << "% clusters=" << t.final_clusters() << "\n";
  }
}
