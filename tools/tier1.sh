#!/usr/bin/env bash
# Tier-1 verification: the full release test suite, then the concurrency
# tests (thread pool + parallel round executor + obs stress) rebuilt and
# re-run under ThreadSanitizer, then the fault/wire/snapshot tests rebuilt
# and re-run under Address+UBSanitizer, then simulator CLI smokes:
# observability, fault injection, wire codecs, the event journal +
# fedclust_report regression gate, docs consistency (check_docs.sh),
# kill-and-resume, SIMD dispatch (scalar vs native ISA bit-identity), and
# the multi-process transport (server + workers on a Unix socket, with a
# kill -9 + checkpoint-restart round-trip, bit-identical to in-process).
# Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset release
cmake --build --preset release -j "$(nproc)"
ctest --preset release -j "$(nproc)"

cmake --preset tsan
cmake --build --preset tsan-smoke -j "$(nproc)"
FEDCLUST_THREADS=4 ctest --preset tsan-smoke

cmake --preset asan
cmake --build --preset asan-smoke -j "$(nproc)"
FEDCLUST_THREADS=4 ctest --preset asan-smoke

# Observability smoke: a tiny run must produce a Chrome trace and a
# per-round JSONL that exist, are non-empty, and parse.
smoke_dir=build/obs_smoke
rm -rf "$smoke_dir" && mkdir -p "$smoke_dir"
./build/tools/fedclust_sim --method=FedClust --clients=8 --rounds=2 \
    --train=6 --test=4 --sample=0.5 \
    --trace-out="$smoke_dir/trace.json" \
    --metrics-out="$smoke_dir/metrics.jsonl" >/dev/null
for f in "$smoke_dir/trace.json" "$smoke_dir/metrics.jsonl"; do
  [ -s "$f" ] || { echo "obs smoke: $f missing or empty" >&2; exit 1; }
done
grep -q '"traceEvents"' "$smoke_dir/trace.json"
grep -q '"fl.round"' "$smoke_dir/trace.json"
grep -q '"round"' "$smoke_dir/metrics.jsonl"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$smoke_dir" <<'EOF'
import json, sys
d = sys.argv[1]
trace = json.load(open(f"{d}/trace.json"))
names = {e.get("name") for e in trace["traceEvents"]}
for want in ("fl.round", "client.train", "gemm"):
    assert want in names, f"obs smoke: span {want!r} missing from trace"
for line in open(f"{d}/metrics.jsonl"):
    json.loads(line)
EOF
fi
echo "obs smoke ok"

# Fault-injection smoke: a faulted run must complete and surface fault.*
# counters in the per-round metrics JSONL.
./build/tools/fedclust_sim --method=FedAvg --clients=8 --rounds=3 \
    --train=6 --test=4 --sample=0.5 \
    --fault-spec="crash=0.3,straggle=0.3,delay=4,deadline=2,corrupt=0.3,comm=0.3" \
    --metrics-out="$smoke_dir/fault_metrics.jsonl" >/dev/null
[ -s "$smoke_dir/fault_metrics.jsonl" ] ||
  { echo "fault smoke: metrics missing or empty" >&2; exit 1; }
grep -q '"fault\.' "$smoke_dir/fault_metrics.jsonl" ||
  { echo "fault smoke: no fault.* counters in metrics" >&2; exit 1; }
echo "fault smoke ok"

# Wire-codec smoke: a quantized (qint8) run must complete, put strictly
# fewer bytes on the wire than the raw payload it carries, and surface the
# comm.* ledgers in a parseable per-round metrics JSONL.
./build/tools/fedclust_sim --method=FedClust --clients=8 --rounds=2 \
    --train=6 --test=4 --sample=0.5 --codec=qint8 \
    --metrics-out="$smoke_dir/codec_metrics.jsonl" > "$smoke_dir/codec.out"
grep -q 'wire codec qint8' "$smoke_dir/codec.out" ||
  { echo "codec smoke: no codec summary line" >&2; exit 1; }
payload=$(grep -oP 'payload \K[0-9]+' "$smoke_dir/codec.out")
wire=$(grep -oP 'wire \K[0-9]+(?= B)' "$smoke_dir/codec.out")
[ -n "$payload" ] && [ -n "$wire" ] && [ "$wire" -lt "$payload" ] ||
  { echo "codec smoke: wire bytes ($wire) not below payload ($payload)" >&2
    exit 1; }
grep -q '"comm\.wire_bytes"' "$smoke_dir/codec_metrics.jsonl" ||
  { echo "codec smoke: no comm.wire_bytes in metrics" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$smoke_dir" <<'EOF'
import json, sys
d = sys.argv[1]
last = None
for line in open(f"{d}/codec_metrics.jsonl"):
    last = json.loads(line)
assert last["comm.wire_bytes"] < last["comm.payload_bytes"], \
    "codec smoke: qint8 wire bytes not below payload bytes"
EOF
fi
echo "codec smoke ok"

# Journal + report smoke: a journaled run must leave a JSONL that
# fedclust_report can ingest into JSON + markdown reports; self-compare
# must be clean (exit 0) and a deliberately fatter run (raw_f32 against a
# qint8 baseline, ~4x the wire bytes) must trip the --compare regression
# gate with exit status 2.
report_dir=build/report_smoke
rm -rf "$report_dir" && mkdir -p "$report_dir"
report_flags=(--method=FedClust --clients=8 --rounds=3 --train=6 --test=4
              --sample=0.5 --seed=5)
./build/tools/fedclust_sim "${report_flags[@]}" --codec=qint8 \
    --journal-out="$report_dir/base.journal.jsonl" \
    --metrics-out="$report_dir/base.metrics.jsonl" \
    --trace-out="$report_dir/base.trace.json" >/dev/null
[ -s "$report_dir/base.journal.jsonl" ] ||
  { echo "report smoke: journal missing or empty" >&2; exit 1; }
grep -q '"journal":1' "$report_dir/base.journal.jsonl"
grep -q '"ev":"sampled"' "$report_dir/base.journal.jsonl"
grep -q '"ev":"upload"' "$report_dir/base.journal.jsonl"
./build/tools/fedclust_report \
    --journal="$report_dir/base.journal.jsonl" \
    --metrics="$report_dir/base.metrics.jsonl" \
    --trace="$report_dir/base.trace.json" \
    --json-out="$report_dir/base.report.json" \
    --md-out="$report_dir/base.report.md" >/dev/null
grep -q '"report_version":1' "$report_dir/base.report.json"
grep -q '# fedclust run report' "$report_dir/base.report.md"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$report_dir" <<'EOF'
import json, sys
rep = json.load(open(f"{sys.argv[1]}/base.report.json"))
assert rep["rounds"] == 3, "report smoke: wrong round count"
assert rep["totals"]["upload_wire_bytes"] > 0, "report smoke: no wire bytes"
assert rep["per_round"], "report smoke: per_round empty"
EOF
fi
./build/tools/fedclust_report \
    --journal="$report_dir/base.journal.jsonl" \
    --metrics="$report_dir/base.metrics.jsonl" \
    --compare="$report_dir/base.report.json" >/dev/null ||
  { echo "report smoke: self-compare flagged a regression" >&2; exit 1; }
./build/tools/fedclust_sim "${report_flags[@]}" --codec=raw_f32 \
    --journal-out="$report_dir/fat.journal.jsonl" >/dev/null
rc=0
./build/tools/fedclust_report \
    --journal="$report_dir/fat.journal.jsonl" \
    --compare="$report_dir/base.report.json" \
    >/dev/null 2>"$report_dir/compare.err" || rc=$?
[ "$rc" -eq 2 ] ||
  { echo "report smoke: regression compare exited $rc, want 2" >&2; exit 1; }
grep -q 'REGRESSION wire_bytes' "$report_dir/compare.err" ||
  { echo "report smoke: wire-byte regression not flagged" >&2; exit 1; }
echo "journal+report smoke ok"

# Docs consistency: every flag of the four CLI binaries documented and
# vice versa, relative links and file:line anchors in docs/ resolve.
tools/check_docs.sh build/tools/fedclust_sim build/tools/fedclust_report \
    build/tools/fedclust_server build/tools/fedclust_worker

# Kill-and-resume smoke: checkpoint at round 2, halt (the deterministic
# stand-in for a kill), resume, and require the per-round trace CSV and
# the end-state digest to be bit-identical to an uninterrupted run —
# with the resumed half running at 1 and 4 threads. A corrupted
# (truncated) snapshot must be rejected, not half-loaded.
resume_dir=build/resume_smoke
rm -rf "$resume_dir" && mkdir -p "$resume_dir"
state_line() { grep '^state crc32c=' "$1"; }
for method in FedAvg FedClust; do
  base_flags=(--method="$method" --clients=8 --rounds=4 --train=6
              --test=4 --sample=0.5 --seed=11)
  FEDCLUST_THREADS=1 ./build/tools/fedclust_sim "${base_flags[@]}" \
      --out="$resume_dir/$method.full.csv" > "$resume_dir/$method.full.out"
  FEDCLUST_THREADS=1 ./build/tools/fedclust_sim "${base_flags[@]}" \
      --checkpoint-out="$resume_dir/$method" --halt-after=2 >/dev/null
  [ -s "$resume_dir/$method/manifest.json" ] ||
    { echo "resume smoke: $method manifest.json missing" >&2; exit 1; }
  snap="$resume_dir/$method/snapshot-000002.fcsnap"
  [ -s "$snap" ] ||
    { echo "resume smoke: $method snapshot missing" >&2; exit 1; }
  for threads in 1 4; do
    FEDCLUST_THREADS=$threads ./build/tools/fedclust_sim \
        "${base_flags[@]}" --resume="$snap" \
        --out="$resume_dir/$method.t$threads.csv" \
        > "$resume_dir/$method.t$threads.out"
    cmp "$resume_dir/$method.full.csv" "$resume_dir/$method.t$threads.csv" ||
      { echo "resume smoke: $method trace differs (threads=$threads)" >&2
        exit 1; }
    [ "$(state_line "$resume_dir/$method.full.out")" = \
      "$(state_line "$resume_dir/$method.t$threads.out")" ] ||
      { echo "resume smoke: $method state digest differs (threads=$threads)" >&2
        exit 1; }
  done
done
head -c 100 "$resume_dir/FedAvg/snapshot-000002.fcsnap" \
  > "$resume_dir/corrupt.fcsnap"
if ./build/tools/fedclust_sim --method=FedAvg --clients=8 --rounds=4 \
    --train=6 --test=4 --sample=0.5 --seed=11 \
    --resume="$resume_dir/corrupt.fcsnap" >/dev/null 2>&1; then
  echo "resume smoke: corrupt snapshot was accepted" >&2; exit 1
fi
echo "resume smoke ok"

# SIMD dispatch smoke: the same run under FEDCLUST_ISA=scalar and under the
# best native ISA must produce bit-identical trace CSVs and state digests
# (docs/INVARIANTS.md "Kernels"), at 1 and 4 worker threads, for a lossy
# codec (qint8 exercises every kernel family). The run must also report the
# resolved ISA in its stdout summary and in the metrics summary table.
simd_dir=build/simd_smoke
rm -rf "$simd_dir" && mkdir -p "$simd_dir"
simd_flags=(--method=FedClust --clients=8 --rounds=3 --train=6 --test=4
            --sample=0.5 --seed=7 --codec=qint8)
./build/tools/fedclust_sim "${simd_flags[@]}" \
    --metrics-out="$simd_dir/metrics.jsonl" \
    --out="$simd_dir/native.csv" > "$simd_dir/native.out"
native_isa=$(grep -oP 'simd kernels: isa=\K[a-z0-9]+' "$simd_dir/native.out")
[ -n "$native_isa" ] ||
  { echo "simd smoke: no 'simd kernels: isa=' line in output" >&2; exit 1; }
grep -q "kernels\.isa\.$native_isa" "$simd_dir/native.out" ||
  { echo "simd smoke: metrics summary lacks kernels.isa.$native_isa" >&2
    exit 1; }
for threads in 1 4; do
  for isa in scalar "$native_isa"; do
    FEDCLUST_THREADS=$threads FEDCLUST_ISA=$isa ./build/tools/fedclust_sim \
        "${simd_flags[@]}" --out="$simd_dir/$isa.t$threads.csv" \
        > "$simd_dir/$isa.t$threads.out"
    cmp "$simd_dir/native.csv" "$simd_dir/$isa.t$threads.csv" ||
      { echo "simd smoke: trace differs (isa=$isa threads=$threads)" >&2
        exit 1; }
    [ "$(state_line "$simd_dir/native.out")" = \
      "$(state_line "$simd_dir/$isa.t$threads.out")" ] ||
      { echo "simd smoke: state digest differs (isa=$isa threads=$threads)" >&2
        exit 1; }
  done
done
if FEDCLUST_ISA=bogus ./build/tools/fedclust_sim "${simd_flags[@]}" \
    >/dev/null 2>&1; then
  echo "simd smoke: unknown FEDCLUST_ISA was accepted" >&2; exit 1
fi
echo "simd dispatch smoke ok (native isa: $native_isa)"

# Multi-process transport smoke, part 1 — bit-identity: the same campaign
# run in-process (fedclust_sim) and over a Unix socket (fedclust_server +
# two fedclust_worker processes) must produce byte-identical trace CSVs
# and state digests, for FedAvg and FedClust, at 1 and 4 worker threads
# (docs/TRANSPORT.md "Bit-identity contract").
net_dir=build/net_smoke
rm -rf "$net_dir" && mkdir -p "$net_dir"
for method in FedAvg FedClust; do
  net_flags=(--method="$method" --clients=8 --rounds=3 --train=8 --test=4
             --sample=0.5 --seed=13 --codec=qint8 --deterministic=1)
  FEDCLUST_THREADS=1 ./build/tools/fedclust_sim "${net_flags[@]}" \
      --out="$net_dir/$method.inproc.csv" > "$net_dir/$method.inproc.out"
  for threads in 1 4; do
    sock="unix:$net_dir/$method.t$threads.sock"
    FEDCLUST_THREADS=$threads ./build/tools/fedclust_server \
        "${net_flags[@]}" --listen="$sock" --workers=2 \
        --out="$net_dir/$method.t$threads.csv" \
        > "$net_dir/$method.t$threads.out" 2>&1 &
    server_pid=$!
    worker_pids=()
    for w in 0 1; do
      FEDCLUST_THREADS=$threads ./build/tools/fedclust_worker \
          "${net_flags[@]}" --connect="$sock" \
          > "$net_dir/$method.t$threads.w$w.log" 2>&1 &
      worker_pids+=($!)
    done
    wait "$server_pid" ||
      { echo "transport smoke: $method server failed (threads=$threads)" >&2
        cat "$net_dir/$method.t$threads.out" >&2; exit 1; }
    wait "${worker_pids[@]}" ||
      { echo "transport smoke: $method worker failed (threads=$threads)" >&2
        exit 1; }
    cmp "$net_dir/$method.inproc.csv" "$net_dir/$method.t$threads.csv" ||
      { echo "transport smoke: $method trace differs (threads=$threads)" >&2
        exit 1; }
    [ "$(state_line "$net_dir/$method.inproc.out")" = \
      "$(state_line "$net_dir/$method.t$threads.out")" ] ||
      { echo "transport smoke: $method state digest differs" \
             "(threads=$threads)" >&2; exit 1; }
  done
done
echo "transport bit-identity smoke ok"

# Multi-process transport smoke, part 2 — crash supervision: kill -9 one
# of two workers mid-campaign, restart it from its checkpoint state file,
# and require the campaign to complete (server exit 0) with the crash
# billed honestly (fault.worker_crash counter, worker_restart journal row)
# while the trace and end state stay bit-identical to in-process.
kill_flags=(--method=FedClust --clients=10 --rounds=12 --train=64 --test=8
            --sample=0.5 --seed=13 --codec=qint8 --deterministic=1)
FEDCLUST_THREADS=1 ./build/tools/fedclust_sim "${kill_flags[@]}" \
    --out="$net_dir/kill.inproc.csv" > "$net_dir/kill.inproc.out" &
inproc_pid=$!
kill_sock="unix:$net_dir/kill.sock"
FEDCLUST_THREADS=1 ./build/tools/fedclust_server "${kill_flags[@]}" \
    --listen="$kill_sock" --workers=2 --net-timeout-ms=5000 \
    --metrics-out="$net_dir/kill.metrics.jsonl" \
    --journal-out="$net_dir/kill.journal.jsonl" \
    --out="$net_dir/kill.csv" > "$net_dir/kill.out" 2>&1 &
server_pid=$!
start_kill_worker() {  # $1 = worker tag, $2 = incarnation tag
  FEDCLUST_THREADS=1 ./build/tools/fedclust_worker "${kill_flags[@]}" \
      --connect="$kill_sock" --checkpoint-state="$net_dir/kill.$1.state" \
      > "$net_dir/kill.$1.$2.log" 2>&1 &
}
start_kill_worker w0 a; w0_pid=$!
start_kill_worker w1 a; w1_pid=$!
for _ in $(seq 1 200); do
  grep -q 'round 1 ' "$net_dir/kill.out" 2>/dev/null && break
  sleep 0.1
done
grep -q 'round 1 ' "$net_dir/kill.out" ||
  { echo "transport smoke: campaign never reached round 1" >&2; exit 1; }
kill -9 "$w0_pid"
wait "$w0_pid" 2>/dev/null || true
start_kill_worker w0 b; w0b_pid=$!
wait "$server_pid" ||
  { echo "transport smoke: server did not survive the kill -9" >&2
    cat "$net_dir/kill.out" >&2; exit 1; }
wait "$w1_pid" "$w0b_pid" ||
  { echo "transport smoke: surviving/restarted worker failed" >&2; exit 1; }
wait "$inproc_pid" ||
  { echo "transport smoke: in-process reference run failed" >&2; exit 1; }
grep -q '"fault\.worker_crash":[1-9]' "$net_dir/kill.metrics.jsonl" ||
  { echo "transport smoke: crash not billed in fault.worker_crash" >&2
    exit 1; }
grep -q '"ev":"worker_restart"' "$net_dir/kill.journal.jsonl" ||
  { echo "transport smoke: no worker_restart journal row" >&2; exit 1; }
grep -q 'resuming from state file' "$net_dir/kill.w0.b.log" ||
  { echo "transport smoke: restarted worker did not resume from state" >&2
    exit 1; }
cmp "$net_dir/kill.inproc.csv" "$net_dir/kill.csv" ||
  { echo "transport smoke: trace differs after kill -9 + restart" >&2
    exit 1; }
[ "$(state_line "$net_dir/kill.inproc.out")" = \
  "$(state_line "$net_dir/kill.out")" ] ||
  { echo "transport smoke: state digest differs after kill -9" >&2; exit 1; }
echo "transport crash-supervision smoke ok"

# Scale smoke — the virtual client store at population scale: 100k clients
# with a 0.1% cohort must run in bounded memory (LRU cache of 64, so the
# RSS ceiling is independent of the population) and stay bit-identical to
# the fully materialized run, at 1 and 4 worker threads
# (docs/INVARIANTS.md §Scale).
scale_dir=build/scale_smoke
rm -rf "$scale_dir" && mkdir -p "$scale_dir"
scale_flags=(--method=FedAvg --dataset=fmnist --clients=100000 --train=1
             --test=1 --sample=0.001 --rounds=2 --eval-clients=50 --seed=3)
FEDCLUST_THREADS=1 ./build/tools/fedclust_sim "${scale_flags[@]}" \
    --out="$scale_dir/mat.csv" > "$scale_dir/mat.out"
mat_rss=$(grep -oP 'peak rss \K[0-9]+' "$scale_dir/mat.out")
for threads in 1 4; do
  FEDCLUST_THREADS=$threads ./build/tools/fedclust_sim "${scale_flags[@]}" \
      --virtual-clients=1 --client-cache=64 \
      --out="$scale_dir/virt.t$threads.csv" \
      --bench-out="$scale_dir/virt.t$threads.json" \
      > "$scale_dir/virt.t$threads.out"
  cmp "$scale_dir/mat.csv" "$scale_dir/virt.t$threads.csv" ||
    { echo "scale smoke: trace differs from materialized (threads=$threads)" \
        >&2; exit 1; }
  [ "$(state_line "$scale_dir/mat.out")" = \
    "$(state_line "$scale_dir/virt.t$threads.out")" ] ||
    { echo "scale smoke: state digest differs (threads=$threads)" >&2
      exit 1; }
  virt_rss=$(grep -oP '"peak_rss_kb": \K[0-9]+' "$scale_dir/virt.t$threads.json")
  # Ceiling: the virtual run must stay far below the materialized footprint
  # (~250 MiB here) — 128 MiB leaves headroom over the observed ~25 MiB
  # while still proving the population never resided in memory.
  [ -n "$virt_rss" ] && [ "$virt_rss" -lt 131072 ] ||
    { echo "scale smoke: virtual RSS $virt_rss KiB above 131072 KiB ceiling" \
        >&2; exit 1; }
  [ "$virt_rss" -lt "$mat_rss" ] ||
    { echo "scale smoke: virtual RSS $virt_rss KiB not below materialized" \
           "$mat_rss KiB" >&2; exit 1; }
done
grep -q 'client store:' "$scale_dir/virt.t1.out" ||
  { echo "scale smoke: no client-store cache line in output" >&2; exit 1; }
echo "scale smoke ok (virtual rss ${virt_rss} KiB vs materialized ${mat_rss} KiB)"

# Landmark clustering smoke (docs/SCALING.md §Landmark clustering), three
# contracts:
#   (a) --landmarks=0 is the exact path, bit-identical to not passing the
#       flag at all (same CSV, same state digest, same fingerprint);
#   (b) on a population with ground-truth group structure the sketch must
#       reproduce the exact partition — gated through fedclust_report's
#       adjusted-Rand agreement (--ari-min) over the journaled partitions;
#   (c) FedClust at 100k virtual clients with --landmarks=256 must finish
#       under the same RSS ceiling as the FedAvg scale smoke (the exact
#       path would need the O(N²) proximity matrix, ~40 GB) and stay
#       bit-identical at 1 and 4 worker threads.
lm_dir=build/landmark_smoke
rm -rf "$lm_dir" && mkdir -p "$lm_dir"
./build/tools/fedclust_sim --method=FedClust --clients=8 --rounds=2 \
    --train=6 --test=4 --sample=0.5 --seed=5 \
    --out="$lm_dir/exact.csv" > "$lm_dir/exact.out"
./build/tools/fedclust_sim --method=FedClust --clients=8 --rounds=2 \
    --train=6 --test=4 --sample=0.5 --seed=5 --landmarks=0 \
    --out="$lm_dir/lm0.csv" > "$lm_dir/lm0.out"
cmp "$lm_dir/exact.csv" "$lm_dir/lm0.csv" ||
  { echo "landmark smoke: --landmarks=0 is not the exact path" >&2; exit 1; }
[ "$(state_line "$lm_dir/exact.out")" = "$(state_line "$lm_dir/lm0.out")" ] ||
  { echo "landmark smoke: --landmarks=0 state digest differs" >&2; exit 1; }

agree_flags=(--method=FedClust --dataset=fmnist --partition=skew
             --label-pool=4 --clients=32 --train=8 --test=4 --rounds=1
             --sample=0.25 --k=4 --seed=7)
./build/tools/fedclust_sim "${agree_flags[@]}" \
    --journal-out="$lm_dir/exact.journal.jsonl" \
    --metrics-out="$lm_dir/exact.metrics.jsonl" >/dev/null
./build/tools/fedclust_sim "${agree_flags[@]}" --landmarks=16 \
    --journal-out="$lm_dir/lm.journal.jsonl" \
    --metrics-out="$lm_dir/lm.metrics.jsonl" >/dev/null
./build/tools/fedclust_report \
    --journal="$lm_dir/exact.journal.jsonl" \
    --metrics="$lm_dir/exact.metrics.jsonl" \
    --json-out="$lm_dir/exact.report.json" --md-out=/dev/null >/dev/null
./build/tools/fedclust_report \
    --journal="$lm_dir/lm.journal.jsonl" \
    --metrics="$lm_dir/lm.metrics.jsonl" \
    --md-out="$lm_dir/lm.report.md" \
    --compare="$lm_dir/exact.report.json" --ari-min=0.9 \
    --acc-tol=1 --bytes-tol-pct=100000 --time-tol-pct=100000 \
    > "$lm_dir/agree.out" ||
  { echo "landmark smoke: sketch partition diverged from exact" >&2
    cat "$lm_dir/agree.out" >&2; exit 1; }
grep -q 'clustering agreement' "$lm_dir/agree.out" ||
  { echo "landmark smoke: no agreement line from fedclust_report" >&2
    exit 1; }
grep -q 'landmark sketch: 16 landmarks' "$lm_dir/lm.report.md" ||
  { echo "landmark smoke: report lacks the landmark clustering section" >&2
    exit 1; }

lm_scale_flags=(--method=FedClust --dataset=fmnist --clients=100000
                --train=1 --test=1 --sample=0.0005 --rounds=1
                --eval-clients=50 --seed=3 --virtual-clients=1
                --client-cache=64 --landmarks=256 --k=4)
for threads in 1 4; do
  FEDCLUST_THREADS=$threads ./build/tools/fedclust_sim \
      "${lm_scale_flags[@]}" --out="$lm_dir/scale.t$threads.csv" \
      --bench-out="$lm_dir/scale.t$threads.json" \
      > "$lm_dir/scale.t$threads.out"
  lm_rss=$(grep -oP '"peak_rss_kb": \K[0-9]+' "$lm_dir/scale.t$threads.json")
  [ -n "$lm_rss" ] && [ "$lm_rss" -lt 131072 ] ||
    { echo "landmark smoke: 100k RSS $lm_rss KiB above 131072 KiB ceiling" \
        >&2; exit 1; }
done
cmp "$lm_dir/scale.t1.csv" "$lm_dir/scale.t4.csv" ||
  { echo "landmark smoke: 100k trace differs across thread counts" >&2
    exit 1; }
[ "$(state_line "$lm_dir/scale.t1.out")" = \
  "$(state_line "$lm_dir/scale.t4.out")" ] ||
  { echo "landmark smoke: 100k state digest differs across threads" >&2
    exit 1; }
echo "landmark smoke ok (100k clients, 256 landmarks, rss ${lm_rss} KiB)"

# Quick bench: a million-client streaming-aggregation round, recorded as
# BENCH_round.json at the repository root (rounds/s, peak RSS, git
# describe) so throughput can be tracked run over run.
FEDCLUST_THREADS=4 ./build/tools/fedclust_sim --method=FedAvg \
    --dataset=fmnist --clients=1000000 --train=1 --test=1 --sample=0.0001 \
    --rounds=3 --eval-clients=50 --seed=3 --virtual-clients=1 \
    --client-cache=64 --bench-out=BENCH_round.json > "$scale_dir/bench.out"
grep -q '"rounds_per_s"' BENCH_round.json ||
  { echo "quick bench: BENCH_round.json malformed" >&2; exit 1; }
echo "quick bench ok ($(grep -oP '"rounds_per_s": \K[0-9.]+' BENCH_round.json) rounds/s)"
