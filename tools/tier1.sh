#!/usr/bin/env bash
# Tier-1 verification: the full release test suite, then the concurrency
# tests (thread pool + parallel round executor) rebuilt and re-run under
# ThreadSanitizer. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset release
cmake --build --preset release -j "$(nproc)"
ctest --preset release -j "$(nproc)"

cmake --preset tsan
cmake --build --preset tsan-smoke -j "$(nproc)"
FEDCLUST_THREADS=4 ctest --preset tsan-smoke
