// fedclust_report — post-run attribution and regression gate. Ingests the
// artifacts a fedclust_sim run leaves behind (--journal-out JSONL, and
// optionally --metrics-out JSONL and --trace-out Chrome JSON) and emits a
// run report: per-round phase breakdown and critical path, top-K straggler
// clients, per-cluster comm/accuracy tables, and a fault summary.
//
//   $ fedclust_report --journal=run.journal.jsonl --metrics=run.metrics.jsonl \
//       --trace=run.trace.json --json-out=report.json --md-out=report.md
//
// With --compare=<baseline-report.json> the current run is diffed against
// the baseline (accuracy drop, wire-byte growth, train-time growth, each
// with a configurable tolerance) and the process exits non-zero on any
// regression — tools/tier1.sh uses this as an automated gate.

#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "obs/report.h"
#include "util/config.h"

namespace {

void write_text(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    throw std::runtime_error("fedclust_report: cannot open " + path);
  }
  os << text;
  os.flush();
  if (!os) {
    throw std::runtime_error("fedclust_report: write failed for " + path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedclust;
  try {
    util::ArgParser args(
        "fedclust_report",
        "build a run report from fedclust_sim artifacts and optionally "
        "diff it against a baseline report as a regression gate.\n"
        "Exit status: 0 = ok, 1 = usage/input error, 2 = regression "
        "detected by --compare.");
    args.add_option("journal",
                    "event-journal JSONL from fedclust_sim --journal-out "
                    "(required)",
                    "");
    args.add_option("metrics",
                    "per-round metrics JSONL from --metrics-out (optional: "
                    "adds per-round accuracy and round timings)",
                    "");
    args.add_option("trace",
                    "Chrome trace JSON from --trace-out (optional: adds "
                    "the span phase breakdown)",
                    "");
    args.add_option("json-out", "write the report JSON here (empty = skip)",
                    "");
    args.add_option("md-out",
                    "write the markdown report here (empty = print to "
                    "stdout)",
                    "");
    args.add_option("compare",
                    "baseline report JSON (from a previous --json-out) to "
                    "diff against; exits 2 on regression",
                    "");
    args.add_option("top-k", "straggler table size", "5");
    args.add_option("acc-tol",
                    "--compare: allowed absolute final-accuracy drop",
                    "0.02");
    args.add_option("bytes-tol-pct",
                    "--compare: allowed % growth of total wire bytes",
                    "10");
    args.add_option("time-tol-pct",
                    "--compare: allowed % growth of total train wall time",
                    "50");
    args.add_option("ari-min",
                    "--compare: minimum adjusted-Rand agreement between the "
                    "two runs' journaled cluster partitions (negative = no "
                    "gate; exits 2 below the minimum or when agreement "
                    "cannot be computed)",
                    "-1");
    if (!args.parse(argc, argv)) return 0;

    if (args.str("journal").empty()) {
      std::cerr << "error: --journal is required (see --help)\n";
      return 1;
    }
    const auto top_k = static_cast<std::size_t>(args.integer("top-k"));
    const obs::report::RunReport report = obs::report::build_report_from_files(
        args.str("journal"), args.str("metrics"), args.str("trace"), top_k);

    if (!args.str("json-out").empty()) {
      write_text(args.str("json-out"), obs::report::to_json(report));
      std::cout << "report JSON written to " << args.str("json-out") << "\n";
    }
    if (!args.str("md-out").empty()) {
      write_text(args.str("md-out"), obs::report::to_markdown(report));
      std::cout << "report markdown written to " << args.str("md-out")
                << "\n";
    } else {
      std::cout << obs::report::to_markdown(report);
    }

    if (!args.str("compare").empty()) {
      std::ifstream is(args.str("compare"), std::ios::binary);
      if (!is) {
        throw std::runtime_error("fedclust_report: cannot read baseline " +
                                 args.str("compare"));
      }
      std::ostringstream buf;
      buf << is.rdbuf();
      const obs::report::RunReport baseline =
          obs::report::from_json(buf.str());
      obs::report::CompareThresholds thresholds;
      thresholds.acc_tol = args.real("acc-tol");
      thresholds.bytes_tol_pct = args.real("bytes-tol-pct");
      thresholds.time_tol_pct = args.real("time-tol-pct");
      auto regressions = obs::report::compare(report, baseline, thresholds);

      // Clustering-agreement gate: both runs journal their full partition
      // at setup, so ARI over the common clients measures how faithfully
      // (say) a landmark-sketch run reproduced the exact partition.
      double ari = 0.0;
      const bool have_ari =
          obs::report::partition_agreement(report, baseline, &ari);
      if (have_ari) {
        std::cout << "clustering agreement (adjusted Rand) vs baseline: "
                  << ari << "\n";
      }
      const double ari_min = args.real("ari-min");
      if (ari_min >= 0.0) {
        if (!have_ari) {
          regressions.push_back(
              {"cluster_ari", 0.0, ari_min,
               "no common journaled cluster assignments to compare "
               "(--ari-min needs cluster rows in both runs)"});
        } else if (ari < ari_min) {
          regressions.push_back(
              {"cluster_ari", ari, ari_min,
               "cluster partition agreement below the --ari-min gate"});
        }
      }

      if (regressions.empty()) {
        std::cout << "compare vs " << args.str("compare")
                  << ": no regression\n";
        return 0;
      }
      for (const auto& reg : regressions) {
        std::cerr << "REGRESSION " << reg.metric << ": " << reg.detail
                  << " (current " << reg.current << ", baseline "
                  << reg.baseline << ")\n";
      }
      return 2;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
