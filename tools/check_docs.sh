#!/usr/bin/env bash
# Docs-consistency check (run by tier1.sh after the release build):
#   1. every --flag in the --help of fedclust_sim, fedclust_report,
#      fedclust_server, and fedclust_worker is documented somewhere in
#      README.md / EXPERIMENTS.md / docs/*.md, and every --flag those files
#      mention exists in one of the four --helps (minus known non-CLI
#      flags);
#   2. every relative markdown link in docs/*.md points at a real file;
#   3. every `path:line` anchor in docs/*.md names a real file and a
#      line that exists.
# Usage: tools/check_docs.sh [sim] [report] [server] [worker]
set -euo pipefail
cd "$(dirname "$0")/.."

sim="${1:-build/tools/fedclust_sim}"
report="${2:-build/tools/fedclust_report}"
server="${3:-build/tools/fedclust_server}"
worker="${4:-build/tools/fedclust_worker}"
for bin in "$sim" "$report" "$server" "$worker"; do
  [ -x "$bin" ] || { echo "check_docs: $bin not built" >&2; exit 1; }
done

doc_files=(README.md EXPERIMENTS.md docs/*.md)
fail=0

# Flags that appear in the docs but belong to cmake/ctest/benchmark
# invocations, not to fedclust_sim / fedclust_report.
ignore='^(benchmark_filter|build|extras|preset|test-dir|output-on-failure|help)$'

help_flags=$({ "$sim" --help; "$report" --help; "$server" --help;
               "$worker" --help; } |
             grep -oE '^  --[a-zA-Z][a-zA-Z0-9_-]*' |
             sed 's/^  --//' | sort -u)
doc_flags=$(grep -ohE '\-\-[a-zA-Z][a-zA-Z0-9_-]*' "${doc_files[@]}" |
            sed 's/^--//' | sort -u)

for f in $help_flags; do
  echo "$f" | grep -qE "$ignore" && continue
  echo "$doc_flags" | grep -qx "$f" ||
    { echo "check_docs: --$f is in --help but undocumented" >&2; fail=1; }
done
for f in $doc_flags; do
  echo "$f" | grep -qE "$ignore" && continue
  echo "$help_flags" | grep -qx "$f" ||
    { echo "check_docs: docs mention --$f, absent from --help" >&2; fail=1; }
done

# 1b. Per-binary attribution: a doc line that names a specific binary and
# mentions --flags must only use flags that binary (or another binary named
# on the same line) actually has — catches flags documented against the
# wrong tool, not just unknown flags.
declare -A bin_flags
bin_flags[fedclust_sim]=$("$sim" --help |
  grep -oE '^  --[a-zA-Z][a-zA-Z0-9_-]*' | sed 's/^  --//' | sort -u)
bin_flags[fedclust_report]=$("$report" --help |
  grep -oE '^  --[a-zA-Z][a-zA-Z0-9_-]*' | sed 's/^  --//' | sort -u)
bin_flags[fedclust_server]=$("$server" --help |
  grep -oE '^  --[a-zA-Z][a-zA-Z0-9_-]*' | sed 's/^  --//' | sort -u)
bin_flags[fedclust_worker]=$("$worker" --help |
  grep -oE '^  --[a-zA-Z][a-zA-Z0-9_-]*' | sed 's/^  --//' | sort -u)
for doc in "${doc_files[@]}"; do
  while IFS=: read -r lineno line; do
    bins=$(grep -oE 'fedclust_(sim|report|server|worker)' <<<"$line" |
           sort -u)
    [ -n "$bins" ] || continue
    allowed=""
    for b in $bins; do allowed+="${bin_flags[$b]}"$'\n'; done
    for f in $(grep -oE -- '\-\-[a-zA-Z][a-zA-Z0-9_-]*' <<<"$line" |
               sed 's/^--//' | sort -u); do
      echo "$f" | grep -qE "$ignore" && continue
      echo "$allowed" | grep -qx "$f" ||
        { echo "check_docs: $doc:$lineno documents --$f against" \
               "$(echo "$bins" | paste -sd,), which lacks it" >&2; fail=1; }
    done
  done < <(grep -nE 'fedclust_(sim|report|server|worker)' "$doc" |
           grep -E -- '\-\-[a-zA-Z]' || true)
done

# Relative markdown links: [text](target) where target is not a URL or
# a pure #fragment must resolve against the doc's own directory.
for doc in docs/*.md; do
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|\#*|mailto:*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    [ -e "$(dirname "$doc")/$path" ] ||
      { echo "check_docs: $doc links to missing file $target" >&2; fail=1; }
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed 's/^](//; s/)$//')
done

# file:line anchors: `src/foo/bar.cpp:123` must name a real file with at
# least 123 lines, so doc references rot loudly instead of silently.
for doc in docs/*.md; do
  while IFS= read -r anchor; do
    path="${anchor%:*}"
    line="${anchor##*:}"
    if [ ! -f "$path" ]; then
      echo "check_docs: $doc anchors missing file $path" >&2; fail=1
    elif [ "$line" -gt "$(wc -l < "$path")" ]; then
      echo "check_docs: $doc anchor $anchor is past end of file" >&2; fail=1
    fi
  done < <(grep -ohE '`[A-Za-z0-9_./-]+\.(h|cpp|sh|md|json):[0-9]+`' "$doc" |
           tr -d '`')
done

[ "$fail" -eq 0 ] || exit 1
echo "check_docs ok"
