// fedclust_worker — hosts the virtual clients for a fedclust_server
// campaign.
//
// Started with the *same experiment flags* as the server, it rebuilds the
// identical Federation (synthetic data and client populations are pure
// functions of the config), connects, and serves TrainReq messages until
// the server says shutdown. All randomness arrives pre-split from the
// server as serialized RNG state, so the worker's computation is pure —
// any number of workers, in any assignment, produces bit-identical
// campaigns.
//
// --checkpoint-state makes the worker crash-restartable: a tiny CRC-checked
// state file is rewritten after every served call, and a worker relaunched
// after kill -9 resumes from it, reconnects mid-campaign, and picks up
// requeued calls.
//
//   $ fedclust_worker --connect=unix:/tmp/fed.sock --method=FedClust \
//       --rounds=10 --checkpoint-state=/tmp/worker0.state

#include <iostream>

#include "experiment_flags.h"
#include "fl/snapshot.h"
#include "net/worker.h"
#include "util/signal.h"

int main(int argc, char** argv) {
  using namespace fedclust;
  try {
    util::ArgParser args(
        "fedclust_worker",
        "serve local-training calls for a fedclust_server campaign.\n"
        "Pass the same experiment flags as the server — the handshake "
        "rejects a worker whose config fingerprint disagrees. Environment: "
        "FEDCLUST_LOG_LEVEL, FEDCLUST_THREADS, FEDCLUST_ISA behave as in "
        "fedclust_sim.");
    tools::add_experiment_options(args);
    tools::add_obs_options(args);
    args.add_option("connect",
                    "server address: unix:/path or tcp:host:port",
                    "unix:/tmp/fedclust.sock");
    args.add_option("net-timeout-ms",
                    "per-connection I/O timeout", "30000");
    args.add_option("heartbeat-ms",
                    "idle heartbeat period", "1000");
    args.add_option("connect-attempts",
                    "initial / re-connect retry budget (exponential "
                    "backoff between attempts)",
                    "10");
    args.add_option("checkpoint-state",
                    "crash-restart state file, rewritten after every "
                    "served call (empty = stateless)",
                    "");
    if (!args.parse(argc, argv)) return 0;

    util::install_shutdown_handler();
    tools::setup_observability(args);

    fl::ExperimentConfig cfg = tools::build_experiment_config(args);
    fl::Federation fed(cfg);

    net::WorkerOptions wopts;
    wopts.connect = args.str("connect");
    wopts.io_timeout_ms = static_cast<int>(args.integer("net-timeout-ms"));
    wopts.heartbeat_ms = static_cast<int>(args.integer("heartbeat-ms"));
    wopts.state_path = args.str("checkpoint-state");
    wopts.connect_attempts =
        static_cast<int>(args.integer("connect-attempts"));
    wopts.backoff = net::BackoffPolicy::from_fault_plan(cfg.fault);
    wopts.seed = cfg.seed;
    wopts.fingerprint = fl::config_fingerprint(cfg);

    net::WorkerLoop loop(fed, wopts);
    const int rc = loop.run();
    tools::finish_observability(args, std::cout);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
