// The generalization–personalization dial (paper Fig. 4): sweeping the
// clustering threshold λ moves FedClust continuously between one global
// model (large λ ≈ FedAvg) and one model per client (small λ ≈ Local).
//
//   $ ./lambda_dial [--dataset=fmnist]

#include <algorithm>
#include <iostream>

#include "clustering/hierarchical.h"
#include "core/fedclust.h"
#include "util/config.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fedclust;

  util::ArgParser args("lambda_dial",
                       "sweep FedClust's clustering threshold λ");
  args.add_option("dataset", "cifar10|cifar100|fmnist|svhn", "fmnist");
  args.add_option("rounds", "federation rounds per λ", "15");
  if (!args.parse(argc, argv)) return 1;

  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec(args.str("dataset"));
  cfg.fed.n_clients = 24;
  cfg.fed.train_per_client = 10;
  cfg.fed.test_per_client = 10;
  cfg.fed.partition = "skew";
  cfg.fed.skew_fraction = 0.2;
  cfg.model.arch = "lenet5";
  cfg.model.in_channels = cfg.data_spec.channels;
  cfg.model.image_hw = cfg.data_spec.hw;
  cfg.model.num_classes = cfg.data_spec.num_classes;
  cfg.local.epochs = 2;
  cfg.local.lr = 0.02f;
  cfg.local.momentum = 0.5f;
  cfg.rounds = static_cast<std::size_t>(args.integer("rounds"));
  cfg.sample_fraction = 0.25;
  cfg.seed = 3;
  cfg.algo.fedclust_init_epochs = 3;

  // Probe once to learn the distance scale, then sweep λ across it.
  cfg.algo.fedclust_lambda = -1.0f;
  fl::ExperimentConfig probe_cfg = cfg;
  probe_cfg.rounds = 1;
  fl::Federation probe_fed(probe_cfg);
  core::FedClust probe(probe_fed);
  probe.run();
  const auto dendro = clustering::agglomerative(probe.report().proximity);
  std::vector<float> merges;
  for (const auto& m : dendro.merges) merges.push_back(m.distance);
  std::sort(merges.begin(), merges.end());

  util::TablePrinter table("accuracy and cluster count vs λ  (" +
                           args.str("dataset") + ")");
  table.set_headers({"lambda", "clusters", "accuracy %"});
  std::vector<float> lambdas = {0.5f * merges.front()};
  for (const double q : {0.25, 0.5, 0.75, 0.9}) {
    lambdas.push_back(
        merges[static_cast<std::size_t>(q * (merges.size() - 1))] * 1.0001f);
  }
  lambdas.push_back(merges.back() * 1.1f);

  for (const float lambda : lambdas) {
    cfg.algo.fedclust_lambda = lambda;
    fl::Federation fed(cfg);
    core::FedClust algo(fed);
    const fl::Trace trace = algo.run();
    table.add_row({util::fmt_float(lambda, 3),
                   std::to_string(algo.report().n_clusters),
                   util::fmt_float(trace.final_accuracy() * 100, 1)});
  }
  table.print();
  std::cout << "\nsmall λ -> many clusters (personalization); large λ -> "
               "one cluster (globalization).\n";
  return 0;
}
