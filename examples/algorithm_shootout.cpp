// Runs every FL method in the library on one federation and prints the
// final accuracies, cluster counts, and communication bills side by side.
//
//   $ ./algorithm_shootout [--dataset=cifar10] [--rounds=20]

#include <iostream>

#include "core/registry.h"
#include "util/config.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace fedclust;

  util::ArgParser args("algorithm_shootout",
                       "compare all 10 FL methods on one federation");
  args.add_option("dataset", "cifar10|cifar100|fmnist|svhn", "cifar10");
  args.add_option("rounds", "communication rounds", "20");
  args.add_option("clients", "number of clients", "24");
  args.add_option("partition", "skew|dirichlet|iid", "skew");
  args.add_flag("extras", "also run SCAFFOLD/FedDyn/Ditto/FLIS");
  if (!args.parse(argc, argv)) return 1;

  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec(args.str("dataset"));
  cfg.fed.n_clients = static_cast<std::size_t>(args.integer("clients"));
  cfg.fed.train_per_client = 10;
  cfg.fed.test_per_client = 10;
  cfg.fed.partition = args.str("partition");
  cfg.fed.skew_fraction = 0.2;
  cfg.fed.dirichlet_alpha = 0.1;
  cfg.model.arch =
      args.str("dataset") == "cifar100" ? "resnet9" : "lenet5";
  cfg.model.in_channels = cfg.data_spec.channels;
  cfg.model.image_hw = cfg.data_spec.hw;
  cfg.model.num_classes = cfg.data_spec.num_classes;
  cfg.local.epochs = 2;
  cfg.local.lr = 0.02f;
  cfg.local.momentum = 0.5f;
  cfg.rounds = static_cast<std::size_t>(args.integer("rounds"));
  cfg.sample_fraction = 0.25;
  cfg.seed = 17;
  cfg.algo.fedclust_k =
      std::max<std::size_t>(2, cfg.fed.n_clients / 4);
  cfg.algo.pacfl_k = cfg.algo.fedclust_k;
  cfg.algo.fedclust_init_epochs = 3;

  util::TablePrinter table("method comparison — " + args.str("dataset") +
                           " / " + args.str("partition"));
  table.set_headers(
      {"method", "final acc %", "clusters", "comm Mb", "wall s"});

  // The paper's ten methods plus the library's extension baselines.
  auto methods = core::all_methods();
  if (args.flag("extras")) {
    for (const auto& m : core::extra_methods()) methods.push_back(m);
  }
  for (const auto& name : methods) {
    fl::Federation fed(cfg);
    const auto algo = core::make_algorithm(name, fed);
    util::Stopwatch sw;
    const fl::Trace trace = algo->run();
    table.add_row({name, util::fmt_float(trace.final_accuracy() * 100, 1),
                   std::to_string(trace.final_clusters()),
                   util::fmt_float(trace.total_mb(), 2),
                   util::fmt_float(sw.seconds(), 1)});
  }
  table.print();
  return 0;
}
