// Client dynamics (paper §4.2 / Algorithm 2): clients joining after the
// federation ended are matched to an existing cluster from nothing but
// their briefly-trained final-layer weights, then personalize the cluster
// model with a few local epochs.
//
//   $ ./newcomer_dynamics

#include <iostream>

#include "core/fedclust.h"
#include "util/table.h"

int main() {
  using namespace fedclust;

  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("svhn");
  cfg.fed.n_clients = 30;  // 24 federate, 6 join later
  cfg.fed.train_per_client = 10;
  cfg.fed.test_per_client = 10;
  cfg.fed.partition = "skew";
  cfg.fed.skew_fraction = 0.2;
  cfg.fed.label_set_pool = 4;  // four ground-truth client groups
  cfg.model.arch = "lenet5";
  cfg.model.in_channels = cfg.data_spec.channels;
  cfg.model.image_hw = cfg.data_spec.hw;
  cfg.model.num_classes = cfg.data_spec.num_classes;
  cfg.local.epochs = 2;
  cfg.local.lr = 0.02f;
  cfg.local.momentum = 0.5f;
  cfg.rounds = 15;
  cfg.sample_fraction = 0.25;
  cfg.eval_every = cfg.rounds;  // only the final model matters here
  cfg.seed = 9;
  cfg.algo.fedclust_k = 4;
  cfg.algo.fedclust_init_epochs = 3;

  // Build the full population, hold the last 6 clients out as newcomers.
  auto all = data::make_federated_data(cfg.data_spec, cfg.fed, cfg.seed);
  const auto groups = data::group_ids(all);
  std::vector<data::ClientData> federated;
  std::vector<fl::SimClient> newcomers;
  std::vector<std::size_t> newcomer_groups;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i < 24) {
      federated.push_back(std::move(all[i]));
    } else {
      newcomers.emplace_back(i, std::move(all[i].train),
                             std::move(all[i].test));
      newcomer_groups.push_back(groups[i]);
    }
  }

  fl::Federation fed(cfg, std::move(federated));
  core::FedClust algo(fed);
  algo.run();
  std::cout << "federation trained; " << algo.report().n_clusters
            << " clusters formed\n\n";

  util::TablePrinter table("newcomers joining after federation");
  table.set_headers({"newcomer", "true group", "assigned cluster",
                     "acc before fine-tune %", "acc after 5 epochs %"});

  nn::Model& ws = fed.workspace();
  for (std::size_t i = 0; i < newcomers.size(); ++i) {
    const std::size_t k =
        algo.assign_newcomer(newcomers[i], util::Rng(100 + i));
    ws.set_flat_params(algo.cluster_model(k));
    const double before = newcomers[i].evaluate(ws) * 100.0;
    fl::LocalTrainOptions fine = cfg.local;
    fine.epochs = 5;
    newcomers[i].train(ws, fine, util::Rng(200 + i));
    const double after = newcomers[i].evaluate(ws) * 100.0;
    table.add_row({std::to_string(newcomers[i].id()),
                   std::to_string(newcomer_groups[i]), std::to_string(k),
                   util::fmt_float(before, 1), util::fmt_float(after, 1)});
  }
  table.print();
  std::cout << "\nnewcomers never shipped their data — only "
            << "their locally-trained final-layer weights (Eq. 4).\n";
  return 0;
}
