// Quickstart: the smallest end-to-end FedClust run.
//
//   $ ./quickstart
//
// Synthesizes a 20-client federation with label-skewed CIFAR-10-like data,
// runs FedClust's one-shot clustering + per-cluster training, and compares
// the result against plain FedAvg on the same federation.

#include <iostream>

#include "core/fedclust.h"
#include "fl/fedavg.h"
#include "util/table.h"

int main() {
  using namespace fedclust;

  // 1. Describe the experiment: data, partition, model, local training.
  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("cifar10");   // synthetic stand-in
  cfg.fed.n_clients = 20;
  cfg.fed.train_per_client = 10;
  cfg.fed.test_per_client = 10;
  cfg.fed.partition = "skew";        // each client owns 20% of the labels
  cfg.fed.skew_fraction = 0.2;
  cfg.model.arch = "lenet5";
  cfg.model.in_channels = cfg.data_spec.channels;
  cfg.model.image_hw = cfg.data_spec.hw;
  cfg.model.num_classes = cfg.data_spec.num_classes;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 10;
  cfg.local.lr = 0.02f;
  cfg.local.momentum = 0.5f;
  cfg.rounds = 20;
  cfg.sample_fraction = 0.2;         // 4 clients participate per round
  cfg.seed = 42;
  cfg.algo.fedclust_lambda = -1.0f;  // data-driven λ (largest gap)
  cfg.algo.fedclust_init_epochs = 3;

  // 2. Run FedClust.
  fl::Federation fed(cfg);
  core::FedClust fedclust(fed);
  const fl::Trace ours = fedclust.run();

  std::cout << "FedClust formed " << fedclust.report().n_clusters
            << " clusters (lambda = "
            << fedclust.report().effective_lambda << ")\n";
  std::cout << "cluster sizes:";
  std::vector<std::size_t> sizes(fedclust.report().n_clusters, 0);
  for (const auto k : fedclust.assignment()) ++sizes[k];
  for (const auto s : sizes) std::cout << ' ' << s;
  std::cout << "\n\n";

  // 3. Run FedAvg on an identical federation for comparison.
  fl::Federation fed2(cfg);
  fl::FedAvg fedavg(fed2);
  const fl::Trace theirs = fedavg.run();

  util::TablePrinter table("average local test accuracy (%)");
  table.set_headers({"round", "FedClust", "FedAvg"});
  for (std::size_t r = 0; r < ours.records.size(); r += 4) {
    table.add_row(
        {std::to_string(r + 1),
         util::fmt_float(ours.records[r].avg_local_test_acc * 100, 1),
         util::fmt_float(theirs.records[r].avg_local_test_acc * 100, 1)});
  }
  table.add_rule();
  table.add_row({"final",
                 util::fmt_float(ours.final_accuracy() * 100, 1),
                 util::fmt_float(theirs.final_accuracy() * 100, 1)});
  table.print();

  std::cout << "\ncommunication: FedClust "
            << util::fmt_float(ours.total_mb(), 2) << " Mb, FedAvg "
            << util::fmt_float(theirs.total_mb(), 2) << " Mb\n";
  return 0;
}
