// Checkpoint workflow: train a federation, save every cluster model to
// disk, restore them in a fresh process-like context, and personalize a
// restored model for one client.
//
//   $ ./checkpoint_workflow

#include <filesystem>
#include <iostream>

#include "core/fedclust.h"
#include "nn/checkpoint.h"
#include "util/table.h"

int main() {
  using namespace fedclust;

  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("fmnist");
  cfg.fed.n_clients = 16;
  cfg.fed.train_per_client = 10;
  cfg.fed.test_per_client = 10;
  cfg.fed.partition = "skew";
  cfg.fed.skew_fraction = 0.2;
  cfg.model.arch = "lenet5";
  cfg.model.in_channels = cfg.data_spec.channels;
  cfg.model.image_hw = cfg.data_spec.hw;
  cfg.model.num_classes = cfg.data_spec.num_classes;
  cfg.local.epochs = 2;
  cfg.local.lr = 0.02f;
  cfg.rounds = 10;
  cfg.sample_fraction = 0.25;
  cfg.eval_every = cfg.rounds;
  cfg.seed = 23;
  cfg.algo.fedclust_k = 4;
  cfg.algo.fedclust_init_epochs = 3;

  fl::Federation fed(cfg);
  core::FedClust algo(fed);
  algo.run();

  // Save each cluster model.
  const auto dir = std::filesystem::temp_directory_path() / "fedclust_ckpt";
  std::filesystem::create_directories(dir);
  nn::Model& ws = fed.workspace();
  for (std::size_t k = 0; k < algo.report().n_clusters; ++k) {
    ws.set_flat_params(algo.cluster_model(k));
    const auto path = dir / ("cluster" + std::to_string(k) + ".fckpt");
    nn::save_model_file(ws, path.string());
    std::cout << "saved " << path << " (" << ws.num_params()
              << " params)\n";
  }

  // Restore into a brand-new model instance and verify bit-exactness.
  nn::Model restored = nn::build_model(cfg.model, /*seed=*/999);
  nn::load_model_file(restored,
                      (dir / "cluster0.fckpt").string());
  const bool exact = restored.flat_params() == algo.cluster_model(0);
  std::cout << "\nrestored cluster 0 " << (exact ? "bit-exact" : "MISMATCH")
            << "\n";

  // Personalize the restored model for the first client of cluster 0.
  std::size_t client = 0;
  while (algo.assignment()[client] != 0) ++client;
  const double before = fed.client(client)->evaluate(restored) * 100.0;
  fl::LocalTrainOptions fine = cfg.local;
  fine.epochs = 5;
  fed.client(client)->train(restored, fine, util::Rng(99));
  const double after = fed.client(client)->evaluate(restored) * 100.0;

  util::TablePrinter t("personalizing the restored checkpoint");
  t.set_headers({"client", "cluster", "acc before %", "acc after %"});
  t.add_row({std::to_string(client), "0", util::fmt_float(before, 1),
             util::fmt_float(after, 1)});
  t.print();
  return exact ? 0 : 1;
}
