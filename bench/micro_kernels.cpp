// google-benchmark micro-kernels: the computational building blocks behind
// the simulator, plus the paper's §5.2 "computation overhead" claim — the
// one-shot hierarchical clustering the server performs once is negligible
// next to a single round of local training.

#include <benchmark/benchmark.h>

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "data/partition.h"
#include "fl/client.h"
#include "fl/fedavg.h"
#include "fl/federation.h"
#include "linalg/principal_angles.h"
#include "linalg/svd.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "fl/codec.h"
#include "fl/stream_agg.h"
#include "tensor/conv_fused.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "util/rng.h"
#include "util/serialization.h"
#include "util/thread_pool.h"

namespace {

using namespace fedclust;

tensor::Tensor random_tensor(tensor::Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  tensor::Tensor t(std::move(shape));
  for (auto& x : t.vec()) x = rng.normalf(0, 1);
  return t;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_tensor({n, n}, 1);
  const auto b = random_tensor({n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Transposed-operand variants: conv backward issues NT and TN GEMMs every
// step, so the transpose-scratch path (thread-local reuse, no per-call
// allocation) is as hot as the NN path.
void BM_GemmTransposed(benchmark::State& state, tensor::Trans ta,
                       tensor::Trans tb) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_tensor({n, n}, 1);
  const auto b = random_tensor({n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, ta, b, tb));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
void BM_GemmNT(benchmark::State& state) {
  BM_GemmTransposed(state, tensor::Trans::kNo, tensor::Trans::kYes);
}
void BM_GemmTN(benchmark::State& state) {
  BM_GemmTransposed(state, tensor::Trans::kYes, tensor::Trans::kNo);
}
BENCHMARK(BM_GemmNT)->Arg(128)->Arg(256);
BENCHMARK(BM_GemmTN)->Arg(128)->Arg(256);

void BM_Im2Col(benchmark::State& state) {
  const std::size_t c = 6;
  const std::size_t hw = 16;
  const auto img = random_tensor({c, hw, hw}, 3);
  std::vector<float> col(c * 25 * hw * hw);
  for (auto _ : state) {
    tensor::im2col(img.data(), c, hw, hw, 5, 5, 1, 2, col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2Col);

// Fused im2col+GEMM inference conv against its unfused equivalent
// (BM_ConvUnfused): same math, no materialized column matrix.
void BM_ConvFused(benchmark::State& state) {
  const std::size_t c = 6, hw = 16, oc = 16, k = 5;
  const auto img = random_tensor({c, hw, hw}, 3);
  const auto wts = random_tensor({oc, c * k * k}, 4);
  std::vector<float> out(oc * hw * hw);
  for (auto _ : state) {
    tensor::conv2d_forward_fused(img.data(), c, hw, hw, wts.data(), oc, k, k,
                                 1, 2, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ConvFused);

void BM_ConvUnfused(benchmark::State& state) {
  const std::size_t c = 6, hw = 16, oc = 16, k = 5;
  const auto img = random_tensor({c, hw, hw}, 3);
  const auto wts = random_tensor({oc, c * k * k}, 4);
  std::vector<float> col(c * k * k * hw * hw);
  std::vector<float> out(oc * hw * hw);
  for (auto _ : state) {
    tensor::im2col(img.data(), c, hw, hw, k, k, 1, 2, col.data());
    tensor::gemm(tensor::Trans::kNo, tensor::Trans::kNo, oc, hw * hw,
                 c * k * k, 1.0f, wts.data(), c * k * k, col.data(), hw * hw,
                 0.0f, out.data(), hw * hw);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ConvUnfused);

// Wire codec encode+decode round trip per payload float.
void BM_CodecRoundTrip(benchmark::State& state, fl::wire::CodecId codec) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto v = random_tensor({n}, 5);
  for (auto _ : state) {
    const auto bytes = fl::wire::encode_payload(codec, v.data(), n);
    benchmark::DoNotOptimize(
        fl::wire::decode_payload(codec, bytes.data(), bytes.size(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
void BM_CodecF16(benchmark::State& state) {
  BM_CodecRoundTrip(state, fl::wire::CodecId::kF16);
}
void BM_CodecQInt8(benchmark::State& state) {
  BM_CodecRoundTrip(state, fl::wire::CodecId::kQInt8);
}
BENCHMARK(BM_CodecF16)->Arg(1 << 16);
BENCHMARK(BM_CodecQInt8)->Arg(1 << 16);

void BM_Crc32c(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::crc32c(data.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Crc32c)->Arg(1 << 16);

// int8-domain cohort aggregation (the --fast-math-kernels qint8 path)
// against expanding every client to floats and averaging.
void BM_Qint8Aggregate(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  const std::size_t clients = 8;
  std::vector<std::vector<std::uint8_t>> enc;
  for (std::size_t c = 0; c < clients; ++c) {
    const auto v = random_tensor({n}, 7 + c);
    enc.push_back(
        fl::wire::encode_payload(fl::wire::CodecId::kQInt8, v.data(), n));
  }
  std::vector<std::pair<const std::vector<std::uint8_t>*, double>> entries;
  for (const auto& e : enc) {
    entries.emplace_back(&e, 1.0 / static_cast<double>(clients));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl::wire::qint8_weighted_average(entries, n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * clients));
}
BENCHMARK(BM_Qint8Aggregate);

void BM_FloatAggregate(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  const std::size_t clients = 8;
  std::vector<std::vector<std::uint8_t>> enc;
  for (std::size_t c = 0; c < clients; ++c) {
    const auto v = random_tensor({n}, 7 + c);
    enc.push_back(
        fl::wire::encode_payload(fl::wire::CodecId::kQInt8, v.data(), n));
  }
  for (auto _ : state) {
    // What aggregation costs without the int8 path: decode every client to
    // floats, then the double-accumulating weighted average.
    std::vector<std::vector<float>> dec;
    for (const auto& e : enc) {
      dec.push_back(fl::wire::decode_payload(fl::wire::CodecId::kQInt8,
                                             e.data(), e.size(), n));
    }
    std::vector<std::pair<const std::vector<float>*, double>> entries;
    for (const auto& d : dec) entries.emplace_back(&d, 1.0);
    benchmark::DoNotOptimize(fl::weighted_average(entries));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * clients));
}
BENCHMARK(BM_FloatAggregate);

// Streaming tree reduction (the per-round aggregation path) against the
// materialized baseline: collect every update first, then one
// weighted_average pass. Arg = cohort size; the streaming path's win is
// memory (each update is folded into double accumulators on delivery),
// not FLOPs, so throughput should track the baseline closely.
void BM_StreamingAggregate(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<float>> updates;
  for (std::size_t c = 0; c < clients; ++c) {
    updates.push_back(random_tensor({n}, 7 + c).vec());
  }
  std::vector<float> out(n);
  for (auto _ : state) {
    fl::StreamingAggregator agg(clients, n, /*int8_mode=*/false);
    for (std::size_t c = 0; c < clients; ++c) {
      agg.submit(c, updates[c].data(), n, 1.0);
    }
    agg.finish(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * clients));
}
BENCHMARK(BM_StreamingAggregate)->Arg(8)->Arg(64);

void BM_MaterializedAggregate(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  const std::size_t clients = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<float>> updates;
  for (std::size_t c = 0; c < clients; ++c) {
    updates.push_back(random_tensor({n}, 7 + c).vec());
  }
  for (auto _ : state) {
    // O(cohort x model) resident: the pre-streaming shape of a round.
    std::vector<std::vector<float>> collected = updates;
    std::vector<std::pair<const std::vector<float>*, double>> entries;
    for (const auto& u : collected) entries.emplace_back(&u, 1.0);
    benchmark::DoNotOptimize(fl::weighted_average(entries));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * clients));
}
BENCHMARK(BM_MaterializedAggregate)->Arg(8)->Arg(64);

void BM_LeNetForward(benchmark::State& state) {
  nn::Model m = nn::lenet5(3, 16, 10, 1);
  const auto x = random_tensor({10, 3, 16, 16}, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.forward(x));
  }
}
BENCHMARK(BM_LeNetForward);

void BM_LeNetTrainStep(benchmark::State& state) {
  nn::Model m = nn::lenet5(3, 16, 10, 1);
  nn::Sgd opt(m.parameters(), {.lr = 0.02f, .momentum = 0.5f});
  const auto x = random_tensor({10, 3, 16, 16}, 4);
  const std::vector<std::int64_t> y = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (auto _ : state) {
    opt.zero_grad();
    const auto lr = nn::softmax_cross_entropy(m.forward(x, true), y);
    m.backward(lr.grad_logits);
    opt.step();
  }
}
BENCHMARK(BM_LeNetTrainStep);

void BM_ResNet9TrainStep(benchmark::State& state) {
  nn::Model m = nn::resnet9(3, 16, 20, 8, 1);
  nn::Sgd opt(m.parameters(), {.lr = 0.02f});
  const auto x = random_tensor({10, 3, 16, 16}, 4);
  const std::vector<std::int64_t> y = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (auto _ : state) {
    opt.zero_grad();
    const auto lr = nn::softmax_cross_entropy(m.forward(x, true), y);
    m.backward(lr.grad_logits);
    opt.step();
  }
}
BENCHMARK(BM_ResNet9TrainStep);

// Proximity matrix over n clients' classifier weights (850 floats each for
// LeNet-5/10 classes) — FedClust's Eq. 3 cost.
void BM_ProximityMatrix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  std::vector<std::vector<float>> weights(n, std::vector<float>(850));
  for (auto& w : weights) {
    for (auto& x : w) x = rng.normalf(0, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustering::l2_distance_matrix(weights));
  }
}
BENCHMARK(BM_ProximityMatrix)->Arg(100)->Arg(400);

// One-shot HC on an n x n proximity matrix — the paper's O(N^2) server
// overhead (Algorithm 1, line 6). Compare against BM_LeNetTrainStep x
// steps-per-round to see it is negligible.
void BM_HierarchicalClustering(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  std::vector<std::vector<float>> pts(n, std::vector<float>(8));
  for (auto& p : pts) {
    for (auto& x : p) x = rng.normalf(0, 1);
  }
  const auto dist = clustering::l2_distance_matrix(pts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        clustering::agglomerative(dist, clustering::Linkage::kAverage));
  }
}
BENCHMARK(BM_HierarchicalClustering)->Arg(100)->Arg(400);

void BM_JacobiSvd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_tensor({n, n}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::jacobi_svd(a));
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(8)->Arg(32);

// PACFL's per-client cost: truncated SVD of a (768, 32) class matrix.
void BM_TruncatedSvd(benchmark::State& state) {
  const auto x = random_tensor({768, 32}, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::truncated_left_singular(x, 3));
  }
}
BENCHMARK(BM_TruncatedSvd);

void BM_PrincipalAngles(benchmark::State& state) {
  util::Rng rng(9);
  const auto u1 =
      linalg::orthonormalize_columns(random_tensor({768, 6}, 10));
  const auto u2 =
      linalg::orthonormalize_columns(random_tensor({768, 6}, 11));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::principal_angle_distance_deg(u1, u2));
  }
}
BENCHMARK(BM_PrincipalAngles);

// Full local-training call as the FL loop issues it (10 samples, 2 epochs).
void BM_ClientLocalTraining(benchmark::State& state) {
  const auto spec = data::dataset_spec("cifar10");
  data::FederatedConfig fcfg;
  fcfg.n_clients = 1;
  fcfg.train_per_client = 10;
  fcfg.test_per_client = 4;
  auto cdata = data::make_federated_data(spec, fcfg, 1);
  fl::SimClient client(0, std::move(cdata[0].train), std::move(cdata[0].test));
  nn::Model m = nn::lenet5(3, 16, 10, 1);
  fl::LocalTrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 10;
  opts.lr = 0.02f;
  std::uint64_t salt = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.train(m, opts, util::Rng(salt++)));
  }
}
BENCHMARK(BM_ClientLocalTraining);

// Round-level client parallelism: clients/sec for a full FedAvg round (20
// sampled clients training concurrently) as the worker count sweeps 1, 2, 4
// and the hardware default. Items/sec is clients/sec against wall time; on
// a single-core host the >1-thread rows measure pure scheduling overhead
// rather than speedup.
class BenchFedAvg : public fl::FedAvg {
 public:
  using fl::FedAvg::FedAvg;
  using fl::FedAvg::round;
  using fl::FedAvg::setup;
};

void BM_RoundThroughput(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  util::reset_global_pool(threads);

  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("cifar10");
  cfg.data_spec.hw = 8;
  cfg.fed.n_clients = 50;
  cfg.fed.train_per_client = 12;
  cfg.fed.test_per_client = 4;
  cfg.fed.partition = "dirichlet";
  cfg.fed.dirichlet_alpha = 0.3;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 3;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 6;
  cfg.local.lr = 0.05f;
  cfg.sample_fraction = 0.4;  // 20 clients per round
  cfg.seed = 1;

  fl::Federation fed(cfg);
  BenchFedAvg algo(fed);
  algo.setup();
  const std::size_t clients_per_round = fed.sample_round(0).size();

  std::size_t r = 0;
  for (auto _ : state) {
    algo.round(r++);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(clients_per_round));
  state.counters["clients_per_round"] =
      static_cast<double>(clients_per_round);
  util::reset_global_pool(1);
}
BENCHMARK(BM_RoundThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)  // 0 = hardware concurrency
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Same round with the observability layer recording (spans + metrics). The
// delta against BM_RoundThroughput/<n> is the enabled-path cost; the
// disabled-path cost is measured by BM_RoundThroughput itself, since every
// instrumentation site is compiled in and takes the relaxed-load branch.
void BM_RoundThroughputObsOn(benchmark::State& state) {
  obs::SpanTracer::instance().set_enabled(true);
  obs::MetricsRegistry::instance().set_enabled(true);
  BM_RoundThroughput(state);
  obs::SpanTracer::instance().set_enabled(false);
  obs::MetricsRegistry::instance().set_enabled(false);
  obs::SpanTracer::instance().clear();
}
BENCHMARK(BM_RoundThroughputObsOn)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
