// Reproduces paper Fig. 3: test accuracy versus communication rounds under
// label skew 20%. Reuses (or produces) the Table-1 campaign traces and
// prints the per-round series for every method, plus the convergence-order
// summary the figure is cited for (FedClust converges fastest; PACFL/IFCA
// are the closest competitors; CFL is weakest).

#include <iostream>

#include "core/registry.h"
#include "harness.h"
#include "table_common.h"
#include "util/config.h"
#include "util/table.h"

namespace fedclust::bench {
namespace {

int run(int argc, const char* const* argv) {
  util::ArgParser args("fig3_convergence",
                       "accuracy vs rounds, label skew 20% (paper Fig. 3)");
  args.add_option("datasets", "comma-separated dataset list",
                  "cifar10,cifar100,fmnist,svhn");
  args.add_option("stride", "print every k-th round", "4");
  if (!args.parse(argc, argv)) return 0;

  const Scale scale = get_scale();
  const auto datasets = split_csv_list(args.str("datasets"));
  const auto stride =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.integer("stride")));
  const auto methods = core::all_methods();

  for (const auto& dataset : datasets) {
    std::cout << "\nFig. 3 — " << dataset << " (skew 20%, scale '"
              << scale.name << "', seed 0 trace; accuracy %)\n";
    std::vector<fl::Trace> traces;
    for (const auto& m : methods) {
      traces.push_back(run_method_cached(m, "skew20", dataset, scale, 1000));
    }

    util::TablePrinter table;
    std::vector<std::string> headers = {"Round"};
    for (const auto& m : methods) headers.push_back(m);
    table.set_headers(headers);
    const std::size_t rounds = traces.front().records.size();
    for (std::size_t r = 0; r < rounds; r += stride) {
      std::vector<std::string> row = {
          std::to_string(traces.front().records[r].round + 1)};
      for (const auto& t : traces) {
        row.push_back(util::fmt_float(
            t.records[r].avg_local_test_acc * 100.0, 1));
      }
      table.add_row(row);
    }
    table.print();

    // Convergence summary: rounds each method needs to reach 95% of its own
    // final accuracy (a scale-free "who converges fastest" measure).
    std::cout << "rounds to reach 95% of own final accuracy:";
    for (std::size_t i = 0; i < methods.size(); ++i) {
      const double target = 0.95 * traces[i].final_accuracy();
      std::cout << "  " << methods[i] << "="
                << traces[i].rounds_to_accuracy(target);
    }
    std::cout << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace fedclust::bench

int main(int argc, char** argv) { return fedclust::bench::run(argc, argv); }
