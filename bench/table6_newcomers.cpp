// Reproduces paper Table 6: average local test accuracy of *newcomer*
// clients that join after federation ends. 80% of the population federates;
// the held-out 20% then receive a starting model according to each method's
// own mechanism and personalize it for 5 local epochs:
//
//   Local      — θ0, 5 epochs on own data (no federation)
//   FedAvg/... — the final global model
//   LG         — fresh local layers + the shared global layers
//   PerFedAvg  — the meta-initialization
//   IFCA       — the cluster model with the lowest loss on the newcomer's data
//   PACFL      — the cluster of the nearest client by principal angles
//   FedClust   — Algorithm 2 (partial-weight matching, Eq. 4)
//
// The paper's Table 6 omits CFL; so do we.

#include <iostream>

#include "core/fedclust.h"
#include "fl/fedavg.h"
#include "fl/fednova.h"
#include "fl/ifca.h"
#include "fl/lg_fedavg.h"
#include "fl/pacfl.h"
#include "fl/perfedavg.h"
#include "harness.h"
#include "table_common.h"
#include "util/config.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/table.h"

namespace fedclust::bench {
namespace {

struct NewcomerSetup {
  fl::ExperimentConfig cfg;
  std::vector<data::ClientData> federated;   // the 80%
  std::vector<data::ClientData> newcomers;   // the held-out 20%
};

NewcomerSetup make_setup(const std::string& dataset, const Scale& scale,
                         std::uint64_t seed) {
  NewcomerSetup s;
  s.cfg = make_config(dataset, "skew20", scale, seed);
  // Evaluating every round is wasted work here; only the final state
  // matters for the newcomer experiment.
  s.cfg.eval_every = s.cfg.rounds;
  auto all = data::make_federated_data(s.cfg.data_spec, s.cfg.fed, seed);
  const std::size_t n_fed = all.size() * 8 / 10;
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i < n_fed ? s.federated : s.newcomers).push_back(std::move(all[i]));
  }
  return s;
}

// Personalize `start` on the newcomer's data for 5 epochs and return test
// accuracy.
double personalize_and_eval(fl::Federation& fed, const fl::SimClient& nc,
                            const std::vector<float>& start,
                            std::uint64_t rng_salt) {
  nn::Model& ws = fed.workspace();
  ws.set_flat_params(start);
  fl::LocalTrainOptions fine = fed.cfg().local;
  fine.epochs = 5;
  nc.train(ws, fine, util::Rng(fed.cfg().seed).split(0xEC0 + rng_salt));
  return nc.evaluate(ws);
}

// Runs `method` on the federated 80% and returns the mean newcomer accuracy.
double newcomer_accuracy(const std::string& method, const std::string& dataset,
                         const Scale& scale, std::uint64_t seed) {
  NewcomerSetup s = make_setup(dataset, scale, seed);
  std::vector<fl::SimClient> newcomers;
  for (std::size_t i = 0; i < s.newcomers.size(); ++i) {
    newcomers.emplace_back(1000 + i, std::move(s.newcomers[i].train),
                           std::move(s.newcomers[i].test));
  }
  fl::Federation fed(s.cfg, std::move(s.federated));

  const auto eval_all = [&](const auto& start_for) {
    double sum = 0.0;
    for (std::size_t i = 0; i < newcomers.size(); ++i) {
      sum += personalize_and_eval(fed, newcomers[i], start_for(newcomers[i]),
                                  i);
    }
    return sum / static_cast<double>(newcomers.size());
  };

  if (method == "Local") {
    return eval_all([&](const fl::SimClient&) -> const std::vector<float>& {
      return fed.init_params();
    });
  }
  if (method == "FedAvg" || method == "FedProx") {
    fl::FedAvg algo(fed, method == "FedProx" ? fed.cfg().algo.prox_mu : 0.0f);
    algo.run();
    return eval_all([&](const fl::SimClient&) -> const std::vector<float>& {
      return algo.global_params();
    });
  }
  if (method == "FedNova") {
    fl::FedNova algo(fed);
    algo.run();
    return eval_all([&](const fl::SimClient&) -> const std::vector<float>& {
      return algo.global_params();
    });
  }
  if (method == "LG") {
    fl::LgFedAvg algo(fed);
    algo.run();
    std::vector<float> start;
    return eval_all([&](const fl::SimClient& nc) -> const std::vector<float>& {
      // Fresh random local layers + shared global suffix.
      start = fed.make_model(5000 + nc.id()).flat_params();
      std::copy(algo.global_suffix().begin(), algo.global_suffix().end(),
                start.begin() +
                    static_cast<std::ptrdiff_t>(algo.global_offset()));
      return start;
    });
  }
  if (method == "PerFedAvg") {
    fl::PerFedAvg algo(fed);
    algo.run();
    return eval_all([&](const fl::SimClient&) -> const std::vector<float>& {
      return algo.meta_params();
    });
  }
  if (method == "IFCA") {
    fl::Ifca algo(fed);
    algo.run();
    return eval_all([&](const fl::SimClient& nc) -> const std::vector<float>& {
      return algo.models()[algo.select_cluster_for(nc)];
    });
  }
  if (method == "PACFL") {
    fl::Pacfl algo(fed);
    algo.run();
    return eval_all([&](const fl::SimClient& nc) -> const std::vector<float>& {
      return algo.cluster_models()[algo.assign_newcomer(nc)];
    });
  }
  if (method == "FedClust") {
    core::FedClust algo(fed);
    algo.run();
    return eval_all([&](const fl::SimClient& nc) -> const std::vector<float>& {
      return algo.cluster_model(algo.assign_newcomer(
          nc, util::Rng(fed.cfg().seed).split(0xAC + nc.id())));
    });
  }
  throw std::invalid_argument("table6: unsupported method " + method);
}

int run(int argc, const char* const* argv) {
  util::ArgParser args("table6_newcomers",
                       "newcomer client accuracy, skew 20% (paper Table 6)");
  args.add_option("datasets", "comma-separated dataset list",
                  "cifar10,cifar100,fmnist,svhn");
  args.add_option("methods", "comma-separated method list (default: Table 6)",
                  "Local,FedAvg,FedProx,FedNova,LG,PerFedAvg,IFCA,PACFL,"
                  "FedClust");
  if (!args.parse(argc, argv)) return 0;

  const Scale scale = get_scale();
  const auto datasets = split_csv_list(args.str("datasets"));
  const auto methods = split_csv_list(args.str("methods"));

  std::cout << "Table 6 — newcomer accuracy after 5 personalization epochs "
            << "(skew 20%, scale '" << scale.name << "')\n"
            << "cells: measured mean ± std  [paper]\n";
  util::TablePrinter table;
  std::vector<std::string> headers = {"Method"};
  for (const auto& d : datasets) headers.push_back(d);
  table.set_headers(headers);

  std::vector<double> best(datasets.size(), -1.0);
  std::vector<std::string> best_method(datasets.size());
  for (const auto& method : methods) {
    std::vector<std::string> row = {method};
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      std::vector<double> accs;
      for (std::size_t s = 0; s < scale.seeds; ++s) {
        accs.push_back(
            newcomer_accuracy(method, datasets[d], scale, 1000 + s) * 100.0);
      }
      const double mean = util::mean(accs);
      const double std = util::stddev(accs);
      const double paper = paper_newcomer_accuracy(method, datasets[d]);
      std::string cell = util::fmt_pm(mean, std);
      cell += paper < 0 ? "  [--]" : "  [" + util::fmt_float(paper, 2) + "]";
      row.push_back(cell);
      if (mean > best[d]) {
        best[d] = mean;
        best_method[d] = method;
      }
    }
    table.add_row(row);
    FC_LOG_INFO << "table6 finished method " << method;
  }
  table.print();
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    std::cout << datasets[d] << ": best newcomer accuracy = "
              << best_method[d] << " (" << util::fmt_float(best[d], 2)
              << "%)\n";
  }
  return 0;
}

}  // namespace
}  // namespace fedclust::bench

int main(int argc, char** argv) { return fedclust::bench::run(argc, argv); }
