#pragma once

// Shared driver for the accuracy tables (Tables 1–3): runs the
// (dataset x method) campaign for one non-IID setting and prints measured
// vs paper values.

#include <string>
#include <vector>

namespace fedclust::bench {

// Returns a process exit code. Flags: --datasets=a,b --methods=x,y
// --seeds=N (override scale).
int run_accuracy_table(const std::string& setting,
                       const std::string& paper_table_name, int argc,
                       const char* const* argv);

// Comma-split helper shared by the bench mains.
std::vector<std::string> split_csv_list(const std::string& s);

}  // namespace fedclust::bench
