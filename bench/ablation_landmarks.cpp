// Landmark-count ablation (docs/SCALING.md §Landmark clustering): how many
// landmarks does the sketch need before its partition matches the exact
// O(N²) clustering, and what does each L cost in setup wall time?
//
// Sweeps L over a grouped population (disjoint label-set pools = known
// ground truth) and reports, per L:
//   - adjusted Rand index vs the ground-truth groups (cluster recovery)
//   - adjusted Rand index vs the exact path's partition (sketch fidelity)
//   - setup wall time (warmup + dendrogram + streamed assignment)
//
// L = 0 is the exact path itself — its recovery score and wall time are
// the reference row.

#include <chrono>
#include <iostream>

#include "clustering/metrics.h"
#include "core/fedclust.h"
#include "data/partition.h"
#include "harness.h"
#include "table_common.h"
#include "util/config.h"
#include "util/table.h"

namespace fedclust::bench {
namespace {

int run(int argc, const char* const* argv) {
  util::ArgParser args("ablation_landmarks",
                       "landmark-sketch cluster recovery and setup cost vs "
                       "landmark count L (0 = exact clustering)");
  args.add_option("dataset", "dataset preset", "cifar10");
  args.add_option("groups", "ground-truth label-set groups", "4");
  if (!args.parse(argc, argv)) return 0;

  const Scale scale = get_scale();
  const std::string dataset = args.str("dataset");
  const auto groups = static_cast<std::size_t>(args.integer("groups"));

  fl::ExperimentConfig cfg = make_config(dataset, "skew20", scale, 1000);
  cfg.rounds = 1;  // setup is the object of study
  cfg.fed.label_set_pool = groups;
  cfg.algo.fedclust_k = groups;

  const auto cdata =
      data::make_federated_data(cfg.data_spec, cfg.fed, cfg.seed);
  const auto truth = data::group_ids(cdata);

  struct Row {
    std::size_t landmarks;
    double recovery_ari;
    double vs_exact_ari;
    double setup_seconds;
  };
  std::vector<Row> rows;
  std::vector<std::size_t> exact_assignment;

  const std::size_t n = cfg.fed.n_clients;
  std::vector<std::size_t> sweep = {0};
  for (std::size_t l = 8; l < n; l *= 2) sweep.push_back(l);

  for (const std::size_t L : sweep) {
    cfg.landmarks = L;
    fl::Federation fed(cfg);
    core::FedClust algo(fed);
    const auto t0 = std::chrono::steady_clock::now();
    algo.run();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (L == 0) exact_assignment = algo.assignment();
    rows.push_back(
        {L, clustering::adjusted_rand_index(algo.assignment(), truth),
         clustering::adjusted_rand_index(algo.assignment(), exact_assignment),
         secs});
  }

  std::cout << "Landmark ablation — " << dataset << ", " << n
            << " clients in " << groups << " ground-truth groups, cut to k="
            << groups << "\n\n";
  util::TablePrinter t("cluster recovery and setup cost vs landmark count");
  t.set_headers({"landmarks", "recovery ARI", "vs-exact ARI", "setup s"});
  for (const Row& r : rows) {
    t.add_row({r.landmarks == 0 ? "exact" : std::to_string(r.landmarks),
               util::fmt_float(r.recovery_ari, 3),
               util::fmt_float(r.vs_exact_ari, 3),
               util::fmt_float(r.setup_seconds, 3)});
  }
  t.print();
  std::cout << "\n(recovery = agreement with ground-truth groups; vs-exact "
               "= agreement with the L=0 partition.)\n";
  return 0;
}

}  // namespace
}  // namespace fedclust::bench

int main(int argc, char** argv) { return fedclust::bench::run(argc, argv); }
