// Reproduces paper Table 4: communication rounds needed to reach a target
// average local test accuracy under label skew 20%.
//
// The paper's absolute targets (80/50/75/75%) belong to its full-scale
// datasets; at reduced scale we target 90% of the best final accuracy
// observed across methods per dataset (printed alongside), which preserves
// what the table shows: which methods reach a demanding bar, and in how
// many rounds. "--" means the bar was never reached, exactly as in the
// paper.

#include <algorithm>
#include <iostream>

#include "core/registry.h"
#include "harness.h"
#include "table_common.h"
#include "util/config.h"
#include "util/table.h"

namespace fedclust::bench {
namespace {

int run(int argc, const char* const* argv) {
  util::ArgParser args("table4_rounds_to_target",
                       "rounds to reach target accuracy, skew 20% (Table 4)");
  args.add_option("datasets", "comma-separated dataset list",
                  "cifar10,cifar100,fmnist,svhn");
  args.add_option("target-frac",
                  "target = frac * best final accuracy per dataset", "0.9");
  if (!args.parse(argc, argv)) return 0;

  const Scale scale = get_scale();
  const auto datasets = split_csv_list(args.str("datasets"));
  const double frac = args.real("target-frac");
  const auto methods = core::all_methods();

  // Gather traces and per-dataset targets.
  std::vector<std::vector<fl::Trace>> traces(methods.size());
  std::vector<double> target(datasets.size(), 0.0);
  for (std::size_t m = 0; m < methods.size(); ++m) {
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      traces[m].push_back(
          run_method_cached(methods[m], "skew20", datasets[d], scale, 1000));
      target[d] = std::max(target[d], frac * traces[m][d].final_accuracy());
    }
  }

  std::cout << "Table 4 — rounds to target accuracy (skew 20%, scale '"
            << scale.name << "')\ncells: measured  [paper]   (paper targets "
            << "80/50/75/75%; ours printed below)\n";
  util::TablePrinter table;
  std::vector<std::string> headers = {"Method"};
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    headers.push_back(datasets[d] + " @" +
                      util::fmt_float(target[d] * 100.0, 1) + "%");
  }
  table.set_headers(headers);

  for (std::size_t m = 0; m < methods.size(); ++m) {
    if (methods[m] == "Local") continue;  // the paper's table has no Local row
    std::vector<std::string> row = {methods[m]};
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      const int rounds = traces[m][d].rounds_to_accuracy(target[d]);
      const double paper = paper_rounds_to_target(methods[m], datasets[d]);
      std::string cell = rounds < 0 ? "--" : std::to_string(rounds);
      cell += paper < 0 ? "  [--]" : "  [" + util::fmt_float(paper, 0) + "]";
      row.push_back(cell);
    }
    table.add_row(row);
  }
  table.print();

  // Shape check: FedClust needs the fewest rounds wherever it reaches the
  // bar (it defines the bar on most datasets).
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    int best = -1;
    std::string who = "none";
    for (std::size_t m = 0; m < methods.size(); ++m) {
      if (methods[m] == "Local") continue;
      const int r = traces[m][d].rounds_to_accuracy(target[d]);
      if (r >= 0 && (best < 0 || r < best)) {
        best = r;
        who = methods[m];
      }
    }
    std::cout << datasets[d] << ": fastest to target = " << who << " ("
              << best << " rounds)\n";
  }
  return 0;
}

}  // namespace
}  // namespace fedclust::bench

int main(int argc, char** argv) { return fedclust::bench::run(argc, argv); }
