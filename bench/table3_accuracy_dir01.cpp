// Reproduces paper Table 3: final average local test accuracy under
// non-IID Dirichlet(0.1) label distributions.

#include "table_common.h"

int main(int argc, char** argv) {
  return fedclust::bench::run_accuracy_table(
      "dir01", "Table 3 (Dirichlet 0.1)", argc, argv);
}
