#include "harness.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/registry.h"
#include "fl/snapshot.h"
#include "obs/metrics.h"
#include "util/config.h"
#include "util/cpu.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace fedclust::bench {

namespace fs = std::filesystem;

namespace {

// Seconds spent in one fl.*_seconds phase between two registry snapshots
// (histograms are cumulative across the runs sharing this process).
double phase_seconds(const obs::MetricsRegistry::Snapshot& before,
                     const obs::MetricsRegistry::Snapshot& after,
                     const std::string& name) {
  return after.histogram_snapshot(name).sum -
         before.histogram_snapshot(name).sum;
}

// Machine-readable sibling of the per-run log line: one
// BENCH_<cell>.json per fresh (non-cached) run, so perf dashboards can
// scrape bench_results/ without parsing logs. Cached reruns don't rewrite
// it — the recorded wall time is always a real measurement.
void write_bench_json(const fs::path& path, const std::string& name,
                      const fl::Trace& trace, double wall_seconds,
                      std::size_t rounds) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    FC_LOG_WARN << "bench json: cannot open " << path.string();
    return;
  }
  const double throughput =
      wall_seconds > 0.0 ? static_cast<double>(rounds) / wall_seconds : 0.0;
  os << "{\n";
  os << "  \"name\": \"" << name << "\",\n";
  os << "  \"wall_seconds\": " << util::fmt_float(wall_seconds, 3) << ",\n";
  os << "  \"rounds\": " << rounds << ",\n";
  os << "  \"rounds_per_second\": " << util::fmt_float(throughput, 3)
     << ",\n";
  os << "  \"final_acc\": "
     << util::fmt_float(trace.final_accuracy(), 6) << ",\n";
  os << "  \"isa\": \"" << util::isa_name(util::active_isa()) << "\",\n";
  os << "  \"fast_math\": "
     << (util::fast_math_kernels() ? "true" : "false") << ",\n";
  os << "  \"threads\": " << (util::global_pool().size() + 1) << ",\n";
  os << "  \"git_describe\": \"" << fl::build_git_describe() << "\"\n";
  os << "}\n";
}

}  // namespace

Scale get_scale() {
  Scale s;
  s.name = util::env_string("FEDCLUST_BENCH_SCALE", "quick");
  if (s.name == "full") {
    s.n_clients = 100;
    s.train_per_client = 15;
    s.test_per_client = 20;
    s.rounds = 80;
    s.seeds = 3;
  } else if (s.name != "quick") {
    throw std::runtime_error("FEDCLUST_BENCH_SCALE must be quick or full");
  }
  s.rounds = static_cast<std::size_t>(
      util::env_int("FEDCLUST_BENCH_ROUNDS",
                    static_cast<std::int64_t>(s.rounds)));
  s.seeds = static_cast<std::size_t>(util::env_int(
      "FEDCLUST_BENCH_SEEDS", static_cast<std::int64_t>(s.seeds)));
  s.n_clients = static_cast<std::size_t>(util::env_int(
      "FEDCLUST_BENCH_CLIENTS", static_cast<std::int64_t>(s.n_clients)));
  s.train_per_client = static_cast<std::size_t>(util::env_int(
      "FEDCLUST_BENCH_TRAIN", static_cast<std::int64_t>(s.train_per_client)));
  return s;
}

fl::ExperimentConfig make_config(const std::string& dataset,
                                 const std::string& setting,
                                 const Scale& scale, std::uint64_t seed) {
  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec(dataset);
  cfg.data_spec.hw = scale.image_hw;

  cfg.fed.n_clients = scale.n_clients;
  cfg.fed.train_per_client = scale.train_per_client;
  cfg.fed.test_per_client = scale.test_per_client;
  if (setting == "skew20") {
    cfg.fed.partition = "skew";
    cfg.fed.skew_fraction = 0.2;
  } else if (setting == "skew30") {
    cfg.fed.partition = "skew";
    cfg.fed.skew_fraction = 0.3;
  } else if (setting == "dir01") {
    cfg.fed.partition = "dirichlet";
    cfg.fed.dirichlet_alpha = 0.1;
  } else {
    throw std::invalid_argument("make_config: unknown setting " + setting);
  }

  // Paper: LeNet-5 for CIFAR-10 / FMNIST / SVHN, ResNet-9 for CIFAR-100.
  cfg.model.arch = dataset == "cifar100" ? "resnet9" : "lenet5";
  cfg.model.in_channels = cfg.data_spec.channels;
  cfg.model.image_hw = cfg.data_spec.hw;
  cfg.model.num_classes = cfg.data_spec.num_classes;
  cfg.model.width = 8;

  cfg.local.epochs = scale.local_epochs;
  cfg.local.batch_size = scale.batch_size;
  cfg.local.lr = 0.02f;
  cfg.local.momentum = 0.5f;


  cfg.rounds = scale.rounds;
  cfg.sample_fraction = scale.sample_fraction;
  cfg.algo.fedclust_init_epochs = 3;
  cfg.eval_every = 1;
  cfg.seed = seed;

  // Cluster-count tuning. The paper tunes λ (and each baseline's knobs) per
  // dataset for the best outcome; we do the same at reduced scale by fixing
  // the dendrogram cut to a per-dataset-tuned fraction of the population
  // (equivalent to a tuned λ; the λ dial itself is exercised by the Fig. 4
  // bench and the unit tests). The same tuned count is granted to the other
  // clustered baselines (PACFL, IFCA) for a fair comparison.
  double k_frac = 0.5;  // svhn / cifar100
  if (dataset == "cifar10") k_frac = 0.3;
  if (dataset == "fmnist") k_frac = 0.6;
  const auto tuned_k = static_cast<std::size_t>(
      std::max(2.0, k_frac * static_cast<double>(scale.n_clients)));
  cfg.algo.fedclust_k = tuned_k;
  cfg.algo.pacfl_k = tuned_k;
  // IFCA keeps the cluster count of its original paper (the FedClust paper
  // does the same: "for IFCA and CFL we used the same number of clusters as
  // mentioned in the original papers").
  cfg.algo.ifca_k = 4;
  return cfg;
}

std::optional<fl::Trace> load_trace_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;  // header
  fl::Trace t;
  while (std::getline(is, line)) {
    std::stringstream ss(line);
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    if (cells.size() != 7) return std::nullopt;
    t.method = cells[0];
    t.dataset = cells[1];
    fl::RoundRecord r;
    r.round = std::stoull(cells[2]);
    r.avg_local_test_acc = std::stod(cells[3]);
    r.bytes_up = static_cast<std::uint64_t>(std::stod(cells[4]) * 1e6 / 8.0 /
                                                4.0) *
                 4;
    r.bytes_down = static_cast<std::uint64_t>(std::stod(cells[5]) * 1e6 /
                                                  8.0 / 4.0) *
                   4;
    r.n_clusters = std::stoull(cells[6]);
    t.records.push_back(r);
  }
  return t.records.empty() ? std::nullopt : std::optional<fl::Trace>(t);
}

fl::Trace run_method_cached(const std::string& method,
                            const std::string& setting,
                            const std::string& dataset, const Scale& scale,
                            std::uint64_t seed) {
  const fs::path dir = fs::path("bench_results") / scale.name;
  fs::create_directories(dir);
  const std::string cell =
      setting + "_" + dataset + "_" + method + "_r" +
      std::to_string(scale.rounds) + "_n" + std::to_string(scale.n_clients) +
      "_s" + std::to_string(seed);
  const fs::path file = dir / (cell + ".csv");
  if (auto cached = load_trace_csv(file.string())) {
    FC_LOG_INFO << "cache hit: " << file.string();
    return *cached;
  }

  // Per-phase timings ride on the metrics registry (zero perturbation, so
  // enabling it for every bench run is free accuracy-wise).
  auto& registry = obs::MetricsRegistry::instance();
  registry.set_enabled(true);
  const auto before = registry.snapshot();

  util::Stopwatch sw;
  fl::Federation fed(make_config(dataset, setting, scale, seed));
  const auto algo = core::make_algorithm(method, fed);
  fl::Trace trace = algo->run();

  const auto after = registry.snapshot();
  FC_LOG_INFO << method << "/" << dataset << "/" << setting << " seed "
              << seed << ": acc=" << trace.final_accuracy() << " in "
              << util::fmt_float(sw.seconds(), 1) << "s (setup="
              << util::fmt_float(phase_seconds(before, after,
                                               "fl.setup_seconds"), 1)
              << "s train="
              << util::fmt_float(phase_seconds(before, after,
                                               "fl.round_seconds"), 1)
              << "s eval="
              << util::fmt_float(phase_seconds(before, after,
                                               "fl.eval_seconds"), 1)
              << "s)";
  trace.save_csv(file.string());
  write_bench_json(dir / ("BENCH_" + cell + ".json"), cell, trace,
                   sw.seconds(), scale.rounds);
  return trace;
}

CellResult run_cell(const std::string& method, const std::string& setting,
                    const std::string& dataset, const Scale& scale) {
  CellResult cell;
  std::vector<double> accs;
  for (std::size_t s = 0; s < scale.seeds; ++s) {
    cell.traces.push_back(
        run_method_cached(method, setting, dataset, scale, 1000 + s));
    accs.push_back(cell.traces.back().final_accuracy() * 100.0);
  }
  cell.mean_acc = util::mean(accs);
  cell.std_acc = util::stddev(accs);
  return cell;
}

// ------------------------------------------------------------ paper data

namespace {

using Row = std::map<std::string, double>;  // dataset -> value
using Table = std::map<std::string, Row>;   // method -> row

const Table& table1() {
  static const Table t = {
      {"Local", {{"cifar10", 79.68}, {"cifar100", 33.18}, {"fmnist", 95.68}, {"svhn", 80.29}}},
      {"FedAvg", {{"cifar10", 50.27}, {"cifar100", 53.67}, {"fmnist", 77.10}, {"svhn", 81.36}}},
      {"FedProx", {{"cifar10", 51.60}, {"cifar100", 54.28}, {"fmnist", 74.53}, {"svhn", 79.64}}},
      {"FedNova", {{"cifar10", 47.38}, {"cifar100", 53.90}, {"fmnist", 71.33}, {"svhn", 75.56}}},
      {"LG", {{"cifar10", 85.49}, {"cifar100", 54.15}, {"fmnist", 95.49}, {"svhn", 91.59}}},
      {"PerFedAvg", {{"cifar10", 85.80}, {"cifar100", 61.29}, {"fmnist", 95.78}, {"svhn", 92.87}}},
      {"CFL", {{"cifar10", 51.86}, {"cifar100", 41.28}, {"fmnist", 78.44}, {"svhn", 73.59}}},
      {"IFCA", {{"cifar10", 87.19}, {"cifar100", 70.35}, {"fmnist", 96.83}, {"svhn", 94.76}}},
      {"PACFL", {{"cifar10", 88.40}, {"cifar100", 71.06}, {"fmnist", 97.46}, {"svhn", 95.48}}},
      {"FedClust", {{"cifar10", 95.82}, {"cifar100", 73.38}, {"fmnist", 97.92}, {"svhn", 95.86}}},
  };
  return t;
}

const Table& table2() {
  static const Table t = {
      {"Local", {{"cifar10", 66.51}, {"cifar100", 23.76}, {"fmnist", 92.51}, {"svhn", 68.84}}},
      {"FedAvg", {{"cifar10", 57.79}, {"cifar100", 54.79}, {"fmnist", 79.90}, {"svhn", 82.58}}},
      {"FedProx", {{"cifar10", 56.92}, {"cifar100", 53.65}, {"fmnist", 81.53}, {"svhn", 82.91}}},
      {"FedNova", {{"cifar10", 54.15}, {"cifar100", 54.11}, {"fmnist", 78.02}, {"svhn", 80.26}}},
      {"LG", {{"cifar10", 75.42}, {"cifar100", 36.78}, {"fmnist", 94.54}, {"svhn", 88.07}}},
      {"PerFedAvg", {{"cifar10", 78.67}, {"cifar100", 57.02}, {"fmnist", 92.35}, {"svhn", 92.10}}},
      {"CFL", {{"cifar10", 52.03}, {"cifar100", 35.73}, {"fmnist", 78.38}, {"svhn", 74.02}}},
      {"IFCA", {{"cifar10", 80.21}, {"cifar100", 66.21}, {"fmnist", 95.29}, {"svhn", 92.87}}},
      {"PACFL", {{"cifar10", 82.35}, {"cifar100", 65.91}, {"fmnist", 95.43}, {"svhn", 93.05}}},
      {"FedClust", {{"cifar10", 83.21}, {"cifar100", 68.33}, {"fmnist", 95.70}, {"svhn", 93.17}}},
  };
  return t;
}

const Table& table3() {
  static const Table t = {
      {"Local", {{"cifar10", 41.80}, {"cifar100", 17.56}, {"fmnist", 70.40}, {"svhn", 59.06}}},
      {"FedAvg", {{"cifar10", 38.25}, {"cifar100", 45.26}, {"fmnist", 81.93}, {"svhn", 61.26}}},
      {"FedProx", {{"cifar10", 42.69}, {"cifar100", 46.17}, {"fmnist", 83.32}, {"svhn", 62.31}}},
      {"FedNova", {{"cifar10", 39.52}, {"cifar100", 46.55}, {"fmnist", 83.68}, {"svhn", 60.53}}},
      {"LG", {{"cifar10", 48.63}, {"cifar100", 24.27}, {"fmnist", 74.39}, {"svhn", 73.12}}},
      {"PerFedAvg", {{"cifar10", 52.83}, {"cifar100", 34.20}, {"fmnist", 81.18}, {"svhn", 75.07}}},
      {"CFL", {{"cifar10", 41.50}, {"cifar100", 31.62}, {"fmnist", 74.01}, {"svhn", 61.96}}},
      {"IFCA", {{"cifar10", 50.51}, {"cifar100", 46.28}, {"fmnist", 84.57}, {"svhn", 74.57}}},
      {"PACFL", {{"cifar10", 51.02}, {"cifar100", 47.58}, {"fmnist", 85.30}, {"svhn", 76.35}}},
      {"FedClust", {{"cifar10", 60.25}, {"cifar100", 49.65}, {"fmnist", 95.51}, {"svhn", 78.23}}},
  };
  return t;
}

const Table& table4() {
  // -1 encodes the paper's "--" (target never reached in 200 rounds).
  static const Table t = {
      {"FedAvg", {{"cifar10", -1}, {"cifar100", 135}, {"fmnist", 200}, {"svhn", 150}}},
      {"FedProx", {{"cifar10", -1}, {"cifar100", 120}, {"fmnist", 200}, {"svhn", 200}}},
      {"FedNova", {{"cifar10", -1}, {"cifar100", 125}, {"fmnist", -1}, {"svhn", 150}}},
      {"LG", {{"cifar10", 27}, {"cifar100", -1}, {"fmnist", 14}, {"svhn", 17}}},
      {"PerFedAvg", {{"cifar10", 54}, {"cifar100", 110}, {"fmnist", 15}, {"svhn", 37}}},
      {"CFL", {{"cifar10", -1}, {"cifar100", -1}, {"fmnist", 47}, {"svhn", -1}}},
      {"IFCA", {{"cifar10", 28}, {"cifar100", 43}, {"fmnist", 13}, {"svhn", 19}}},
      {"PACFL", {{"cifar10", 25}, {"cifar100", 40}, {"fmnist", 13}, {"svhn", 15}}},
      {"FedClust", {{"cifar10", 13}, {"cifar100", 32}, {"fmnist", 7}, {"svhn", 9}}},
  };
  return t;
}

const Table& table5() {
  static const Table t = {
      {"FedAvg", {{"cifar10", -1}, {"cifar100", 4237.37}, {"fmnist", 79.36}, {"svhn", 71.43}}},
      {"FedProx", {{"cifar10", -1}, {"cifar100", 4237.37}, {"fmnist", 71.43}, {"svhn", 71.43}}},
      {"FedNova", {{"cifar10", -1}, {"cifar100", 3601.98}, {"fmnist", -1}, {"svhn", 79.36}}},
      {"LG", {{"cifar10", 2.11}, {"cifar100", -1}, {"fmnist", 1.26}, {"svhn", 1.76}}},
      {"PerFedAvg", {{"cifar10", 23.81}, {"cifar100", 6356.06}, {"fmnist", 7.54}, {"svhn", 18.65}}},
      {"CFL", {{"cifar10", -1}, {"cifar100", -1}, {"fmnist", -1}, {"svhn", -1}}},
      {"IFCA", {{"cifar10", 16.66}, {"cifar100", 3495.19}, {"fmnist", 11.30}, {"svhn", 10.71}}},
      {"PACFL", {{"cifar10", 10.31}, {"cifar100", 1991.60}, {"fmnist", 7.53}, {"svhn", 8.73}}},
      {"FedClust", {{"cifar10", 8.66}, {"cifar100", 1889.17}, {"fmnist", 4.60}, {"svhn", 7.11}}},
  };
  return t;
}

const Table& table6() {
  static const Table t = {
      {"Local", {{"cifar10", 83.39}, {"cifar100", 27.91}, {"fmnist", 94.45}, {"svhn", 90.62}}},
      {"FedAvg", {{"cifar10", 31.72}, {"cifar100", 32.26}, {"fmnist", 78.70}, {"svhn", 71.18}}},
      {"FedProx", {{"cifar10", 27.74}, {"cifar100", 32.74}, {"fmnist", 74.19}, {"svhn", 73.44}}},
      {"FedNova", {{"cifar10", 31.12}, {"cifar100", 33.53}, {"fmnist", 73.76}, {"svhn", 72.43}}},
      {"LG", {{"cifar10", 81.58}, {"cifar100", 11.08}, {"fmnist", 95.66}, {"svhn", 89.59}}},
      {"PerFedAvg", {{"cifar10", 74.65}, {"cifar100", 31.40}, {"fmnist", 92.33}, {"svhn", 64.16}}},
      {"IFCA", {{"cifar10", 85.64}, {"cifar100", 94.45}, {"fmnist", 96.63}, {"svhn", 94.20}}},
      {"PACFL", {{"cifar10", 85.80}, {"cifar100", 94.45}, {"fmnist", 97.04}, {"svhn", 94.75}}},
      {"FedClust", {{"cifar10", 86.78}, {"cifar100", 97.63}, {"fmnist", 97.63}, {"svhn", 95.19}}},
  };
  return t;
}

double lookup(const Table& t, const std::string& method,
              const std::string& dataset) {
  const auto mi = t.find(method);
  if (mi == t.end()) return -1.0;
  const auto di = mi->second.find(dataset);
  return di == mi->second.end() ? -1.0 : di->second;
}

}  // namespace

double paper_accuracy(const std::string& setting, const std::string& method,
                      const std::string& dataset) {
  if (setting == "skew20") return lookup(table1(), method, dataset);
  if (setting == "skew30") return lookup(table2(), method, dataset);
  if (setting == "dir01") return lookup(table3(), method, dataset);
  throw std::invalid_argument("paper_accuracy: unknown setting " + setting);
}

double paper_rounds_to_target(const std::string& method,
                              const std::string& dataset) {
  return lookup(table4(), method, dataset);
}

double paper_mb_to_target(const std::string& method,
                          const std::string& dataset) {
  return lookup(table5(), method, dataset);
}

double paper_newcomer_accuracy(const std::string& method,
                               const std::string& dataset) {
  return lookup(table6(), method, dataset);
}

double paper_target_table4(const std::string& dataset) {
  if (dataset == "cifar10") return 80.0;
  if (dataset == "cifar100") return 50.0;
  if (dataset == "fmnist") return 75.0;
  if (dataset == "svhn") return 75.0;
  throw std::invalid_argument("paper_target_table4: " + dataset);
}

double paper_target_table5(const std::string& dataset) {
  if (dataset == "cifar10") return 70.0;
  if (dataset == "cifar100") return 50.0;
  if (dataset == "fmnist") return 80.0;
  if (dataset == "svhn") return 80.0;
  throw std::invalid_argument("paper_target_table5: " + dataset);
}

}  // namespace fedclust::bench
