// Reproduces paper Fig. 1 (the motivation study): pairwise weight-distance
// matrices computed from different layers of locally trained models. Ten
// clients form two ground-truth groups by label set; each trains the same
// initialization on its own data. Early-convolution distances show no group
// structure; the final (classifier) layer separates the groups cleanly —
// the observation FedClust's weight selection is built on.
//
// The paper uses VGG16; we use the VGG-lite stand-in (DESIGN.md §1), whose
// conv1/conv4/fc1/classifier strata map onto the paper's CL1/CL7/FC14/FC16.

#include <iostream>

#include "clustering/distance.h"
#include "data/partition.h"
#include "harness.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"
#include "nn/loss.h"
#include "table_common.h"
#include "util/config.h"
#include "util/table.h"

namespace fedclust::bench {
namespace {

// Separation statistic: mean inter-group distance / mean intra-group
// distance. > 1 means the layer's weights separate the two groups.
double separation(const tensor::Tensor& dist,
                  const std::vector<std::size_t>& groups) {
  const std::size_t n = dist.dim(0);
  double intra = 0.0;
  double inter = 0.0;
  std::size_t n_intra = 0;
  std::size_t n_inter = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (groups[i] == groups[j]) {
        intra += dist[i * n + j];
        ++n_intra;
      } else {
        inter += dist[i * n + j];
        ++n_inter;
      }
    }
  }
  return (inter / static_cast<double>(n_inter)) /
         std::max(intra / static_cast<double>(n_intra), 1e-12);
}

void print_matrix(const tensor::Tensor& dist, const std::string& title) {
  const std::size_t n = dist.dim(0);
  // Normalize to [0, 9] for a compact heat display; larger digit = farther.
  float mx = 0.0f;
  for (std::size_t i = 0; i < n * n; ++i) mx = std::max(mx, dist[i]);
  std::cout << title << " (0=identical, 9=farthest)\n";
  for (std::size_t i = 0; i < n; ++i) {
    std::cout << "  ";
    for (std::size_t j = 0; j < n; ++j) {
      const int v = mx > 0 ? static_cast<int>(9.0f * dist[i * n + j] / mx)
                           : 0;
      std::cout << v << ' ';
    }
    std::cout << '\n';
  }
}

int run(int argc, const char* const* argv) {
  util::ArgParser args("fig1_layer_distances",
                       "per-layer weight-distance matrices (paper Fig. 1)");
  args.add_option("clients", "number of clients (two groups)", "10");
  args.add_option("epochs", "local training epochs", "6");
  args.add_option("samples", "training samples per client", "40");
  if (!args.parse(argc, argv)) return 0;

  const auto n_clients = static_cast<std::size_t>(args.integer("clients"));
  const auto epochs = static_cast<std::size_t>(args.integer("epochs"));

  // Two groups of clients split by label halves, CIFAR-10-like data.
  data::SyntheticSpec spec = data::dataset_spec("cifar10");
  data::FederatedConfig fcfg;
  fcfg.n_clients = n_clients;
  fcfg.train_per_client = static_cast<std::size_t>(args.integer("samples"));
  fcfg.test_per_client = 4;
  fcfg.partition = "skew";
  fcfg.skew_fraction = 0.5;  // 5 of 10 labels per client
  fcfg.label_set_pool = 2;   // exactly two label-set groups
  const auto clients = data::make_federated_data(spec, fcfg, 7);
  const auto groups = data::group_ids(clients);

  // Each client trains the same VGG-lite initialization locally.
  const std::uint64_t model_seed = 11;
  std::vector<nn::Model> models;
  for (std::size_t c = 0; c < n_clients; ++c) {
    models.push_back(
        nn::vgg_lite(spec.channels, spec.hw, spec.num_classes, 8,
                     model_seed));
    nn::Model& m = models.back();
    nn::Sgd opt(m.parameters(), {.lr = 0.02f, .momentum = 0.5f});
    util::Rng rng(100 + c);
    std::vector<std::size_t> order(clients[c].train.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t e = 0; e < epochs; ++e) {
      rng.shuffle(order);
      for (std::size_t s = 0; s < order.size(); s += 10) {
        const std::vector<std::size_t> batch(
            order.begin() + static_cast<std::ptrdiff_t>(s),
            order.begin() + static_cast<std::ptrdiff_t>(
                                std::min(order.size(), s + 10)));
        opt.zero_grad();
        const auto logits =
            m.forward(clients[c].train.batch_images(batch), true);
        const auto lr = nn::softmax_cross_entropy(
            logits, clients[c].train.batch_labels(batch));
        m.backward(lr.grad_logits);
        opt.step();
      }
    }
  }

  std::cout << "Fig. 1 — groups: ";
  for (const auto g : groups) std::cout << g << ' ';
  std::cout << "\n\n";

  const std::vector<std::pair<std::string, std::string>> layers = {
      {"conv1.weight", "(a) early conv  — paper CL1"},
      {"conv4.weight", "(b) late conv   — paper CL7/13"},
      {"fc1.weight", "(c) first FC    — paper FC14"},
      {"classifier.weight", "(d) final layer — paper FC16"},
  };

  util::TablePrinter summary("separation = mean inter-group / mean "
                             "intra-group distance (higher = layer reveals "
                             "the clusters)");
  summary.set_headers({"layer", "separation"});

  double final_layer_sep = 0.0;
  double max_conv_sep = 0.0;
  for (const auto& [pname, title] : layers) {
    std::vector<std::vector<float>> weights;
    for (auto& m : models) weights.push_back(m.param_by_name(pname));
    const auto dist = clustering::l2_distance_matrix(weights);
    print_matrix(dist, title);
    const double sep = separation(dist, groups);
    summary.add_row({pname, util::fmt_float(sep, 3)});
    if (pname == "classifier.weight") final_layer_sep = sep;
    if (pname.rfind("conv", 0) == 0) {
      max_conv_sep = std::max(max_conv_sep, sep);
    }
    std::cout << '\n';
  }
  summary.print();
  std::cout << "\npaper's claim: only the final layer separates the "
            << "groups.  measured: final-layer separation "
            << util::fmt_float(final_layer_sep, 3) << " vs best conv layer "
            << util::fmt_float(max_conv_sep, 3)
            << (final_layer_sep > max_conv_sep ? "  ✓" : "  ✗") << '\n';
  return 0;
}

}  // namespace
}  // namespace fedclust::bench

int main(int argc, char** argv) { return fedclust::bench::run(argc, argv); }
