// Reproduces paper Table 1: final average local test accuracy under
// non-IID label skew (20%), all methods x all datasets.

#include "table_common.h"

int main(int argc, char** argv) {
  return fedclust::bench::run_accuracy_table(
      "skew20", "Table 1 (label skew 20%)", argc, argv);
}
