#pragma once

// Shared experiment harness for the paper-reproduction benches.
//
// Scale control: FEDCLUST_BENCH_SCALE=quick (default) or full. Quick runs
// a reduced federation sized for a single CPU core; full approaches the
// paper's population/round counts (see DESIGN.md §1 for why reduced scale
// preserves the comparison's shape). Traces are cached as CSV under
// ./bench_results/<scale>/ so benches that share a campaign (Table 1,
// Fig. 3, Table 4 all use the skew-20% runs) don't recompute each other's
// work.

#include <optional>
#include <string>
#include <vector>

#include "fl/federation.h"
#include "fl/metrics.h"

namespace fedclust::bench {

struct Scale {
  std::string name = "quick";
  std::size_t n_clients = 40;
  std::size_t train_per_client = 10;
  std::size_t test_per_client = 10;
  std::size_t rounds = 40;
  double sample_fraction = 0.1;
  std::size_t local_epochs = 2;
  std::size_t batch_size = 10;
  std::size_t seeds = 2;  // independent repetitions per cell
  std::size_t image_hw = 16;
};

// Reads FEDCLUST_BENCH_SCALE (quick|full) and optional overrides
// FEDCLUST_BENCH_ROUNDS / FEDCLUST_BENCH_SEEDS / FEDCLUST_BENCH_CLIENTS.
Scale get_scale();

// settings: "skew20", "skew30", "dir01".
fl::ExperimentConfig make_config(const std::string& dataset,
                                 const std::string& setting,
                                 const Scale& scale, std::uint64_t seed);

// Runs one (method, config) experiment, or loads it from the cache when a
// trace for the same (scale, setting, dataset, method, seed) exists.
fl::Trace run_method_cached(const std::string& method,
                            const std::string& setting,
                            const std::string& dataset, const Scale& scale,
                            std::uint64_t seed);

struct CellResult {
  double mean_acc = 0.0;  // percent, matching the paper's tables
  double std_acc = 0.0;
  std::vector<fl::Trace> traces;
};

// Multi-seed run of one table cell.
CellResult run_cell(const std::string& method, const std::string& setting,
                    const std::string& dataset, const Scale& scale);

// Paper-reported accuracy (percent) for Tables 1/2/3; negative when the
// paper prints no value.
double paper_accuracy(const std::string& setting, const std::string& method,
                      const std::string& dataset);
// Paper-reported rounds-to-target (Table 4) / Mb-to-target (Table 5);
// negative = "--" (target never reached).
double paper_rounds_to_target(const std::string& method,
                              const std::string& dataset);
double paper_mb_to_target(const std::string& method,
                          const std::string& dataset);
// Paper Table 6 (newcomer accuracy); negative when the method has no row.
double paper_newcomer_accuracy(const std::string& method,
                               const std::string& dataset);

// The paper's accuracy targets (percent) for Table 4 (skew20
// rounds-to-target) and Table 5 (skew30 Mb-to-target). At reduced scale
// the benches re-calibrate the actual target as a fraction of the best
// final accuracy in the campaign and print both (see EXPERIMENTS.md).
double paper_target_table4(const std::string& dataset);
double paper_target_table5(const std::string& dataset);

// Trace cache (CSV round-trip of fl::Trace::save_csv).
std::optional<fl::Trace> load_trace_csv(const std::string& path);

}  // namespace fedclust::bench
