// Ablation benches for FedClust's two design choices (DESIGN.md §4):
//
//  1. *Which weights to ship* — final-layer (the paper's choice) vs the
//     full weight vector. Measures clustering quality (label-coherence of
//     the resulting clusters) and the upload cost per client, quantifying
//     §4.1's claim that partial weights are both cheaper and better.
//  2. *Linkage criterion* — single / complete / average / ward on the same
//     proximity matrices.
//
// Quality metric: mean intra-cluster Jaccard similarity of client label
// sets, against the population baseline (what a random grouping scores).

#include <iostream>
#include <set>

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "data/partition.h"
#include "core/fedclust.h"
#include "fl/client.h"
#include "fl/fedavg.h"
#include "harness.h"
#include "nn/model_zoo.h"
#include "table_common.h"
#include "util/config.h"
#include "util/table.h"

namespace fedclust::bench {
namespace {

double intra_jaccard(const std::vector<std::size_t>& assignment,
                     const std::vector<std::set<std::int64_t>>& sets,
                     bool intra_only) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    for (std::size_t j = i + 1; j < assignment.size(); ++j) {
      if (intra_only && assignment[i] != assignment[j]) continue;
      std::size_t inter = 0;
      for (const auto l : sets[i]) inter += sets[j].count(l);
      const std::size_t uni = sets[i].size() + sets[j].size() - inter;
      sum += uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni)
                     : 1.0;
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

int run(int argc, const char* const* argv) {
  util::ArgParser args("ablation_weights_linkage",
                       "final-layer vs all-weights proximity, and linkage "
                       "choice (DESIGN.md ablations)");
  args.add_option("dataset", "dataset preset", "cifar10");
  args.add_option("k", "cluster count for the cut", "8");
  if (!args.parse(argc, argv)) return 0;

  const Scale scale = get_scale();
  const std::string dataset = args.str("dataset");
  const auto k = static_cast<std::size_t>(args.integer("k"));

  fl::ExperimentConfig cfg = make_config(dataset, "skew20", scale, 1000);
  const auto cdata =
      data::make_federated_data(cfg.data_spec, cfg.fed, cfg.seed);
  std::vector<std::set<std::int64_t>> label_sets;
  for (const auto& c : cdata) {
    const auto labels = c.train.present_labels();
    label_sets.emplace_back(labels.begin(), labels.end());
  }

  // Warm up every client exactly as FedClust round 0 does, but keep both
  // the full weight vector and the classifier slice.
  fl::Federation fed(cfg);
  nn::Model& ws = fed.workspace();
  std::vector<std::vector<float>> full;
  std::vector<std::vector<float>> partial;
  fl::LocalTrainOptions warm = cfg.local;
  warm.epochs = cfg.algo.fedclust_init_epochs;
  for (std::size_t c = 0; c < fed.n_clients(); ++c) {
    ws.set_flat_params(fed.init_params());
    fed.client(c)->train(ws, warm, fed.train_rng(c, 0xAB1A));
    full.push_back(ws.flat_params());
    partial.push_back(ws.classifier_params());
  }

  const double baseline = intra_jaccard(
      std::vector<std::size_t>(fed.n_clients(), 0), label_sets, false);

  std::cout << "Ablation — " << dataset << ", " << fed.n_clients()
            << " clients, cut to k=" << k << " (random-grouping baseline "
            << util::fmt_float(baseline, 3) << ")\n\n";

  // ---- weight-selection ablation --------------------------------------
  util::TablePrinter t1("(1) which weights drive the proximity matrix");
  t1.set_headers({"weights", "floats/client", "intra-cluster jaccard"});
  for (const bool use_partial : {true, false}) {
    const auto& vecs = use_partial ? partial : full;
    const auto dist = clustering::l2_distance_matrix(vecs);
    const auto labels = clustering::cut_to_k(
        clustering::agglomerative(dist, clustering::Linkage::kAverage), k);
    t1.add_row({use_partial ? "final layer (paper)" : "all weights",
                std::to_string(vecs.front().size()),
                util::fmt_float(intra_jaccard(labels, label_sets, true), 3)});
  }
  t1.print();

  // ---- distance-metric ablation -----------------------------------------
  util::TablePrinter tm("\n(1b) proximity metric (final-layer weights)");
  tm.set_headers({"metric", "intra-cluster jaccard"});
  for (const bool cosine : {false, true}) {
    const auto dm = cosine ? clustering::cosine_distance_matrix(partial)
                           : clustering::l2_distance_matrix(partial);
    const auto labels = clustering::cut_to_k(
        clustering::agglomerative(dm, clustering::Linkage::kAverage), k);
    tm.add_row({cosine ? "cosine" : "l2 (paper, Eq. 3)",
                util::fmt_float(intra_jaccard(labels, label_sets, true), 3)});
  }
  tm.print();

  // ---- linkage ablation -------------------------------------------------
  util::TablePrinter t2("\n(2) linkage criterion (on final-layer proximity)");
  t2.set_headers({"linkage", "intra-cluster jaccard"});
  const auto dist = clustering::l2_distance_matrix(partial);
  for (const auto* name : {"single", "complete", "average", "ward"}) {
    const auto labels = clustering::cut_to_k(
        clustering::agglomerative(dist,
                                  clustering::linkage_from_string(name)),
        k);
    t2.add_row({name,
                util::fmt_float(intra_jaccard(labels, label_sets, true), 3)});
  }
  t2.print();

  // ---- dropout robustness (extension; paper §4.2 claims it, we measure) --
  util::TablePrinter t3("\n(3) robustness to client dropout (FedClust vs "
                        "FedAvg, final accuracy %)");
  t3.set_headers({"dropout", "FedClust", "FedAvg"});
  for (const double p : {0.0, 0.3, 0.6}) {
    fl::ExperimentConfig dcfg = cfg;
    dcfg.dropout_prob = p;
    dcfg.eval_every = dcfg.rounds;
    fl::Federation f1(dcfg);
    core::FedClust ours(f1);
    const double a1 = ours.run().final_accuracy() * 100.0;
    fl::Federation f2(dcfg);
    fl::FedAvg theirs(f2);
    const double a2 = theirs.run().final_accuracy() * 100.0;
    t3.add_row({util::fmt_float(p, 1), util::fmt_float(a1, 1),
                util::fmt_float(a2, 1)});
  }
  t3.print();
  return 0;
}

}  // namespace
}  // namespace fedclust::bench

int main(int argc, char** argv) { return fedclust::bench::run(argc, argv); }
