#include "table_common.h"

#include <iostream>
#include <vector>

#include "core/registry.h"
#include "data/synthetic.h"
#include "harness.h"
#include "util/config.h"
#include "util/table.h"

namespace fedclust::bench {

std::vector<std::string> split_csv_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

int run_accuracy_table(const std::string& setting,
                       const std::string& paper_table_name, int argc,
                       const char* const* argv) {
  util::ArgParser args("table_" + setting,
                       "reproduce " + paper_table_name +
                           " (final avg local test accuracy, " + setting +
                           ")");
  args.add_option("datasets", "comma-separated dataset list",
                  "cifar10,cifar100,fmnist,svhn");
  args.add_option("methods", "comma-separated method list (default: all)",
                  "");
  if (!args.parse(argc, argv)) return 0;

  const Scale scale = get_scale();
  const auto datasets = split_csv_list(args.str("datasets"));
  auto methods = split_csv_list(args.str("methods"));
  if (methods.empty()) methods = core::all_methods();

  std::cout << paper_table_name << " — " << setting << " @ scale '"
            << scale.name << "' (" << scale.n_clients << " clients, "
            << scale.rounds << " rounds, " << scale.seeds << " seeds)\n"
            << "cells: measured mean ± std  [paper]\n";

  util::TablePrinter table;
  std::vector<std::string> headers = {"Method"};
  for (const auto& d : datasets) headers.push_back(d);
  table.set_headers(headers);

  // Track the best method per dataset for the shape summary.
  std::vector<double> best_acc(datasets.size(), -1.0);
  std::vector<std::string> best_method(datasets.size());
  std::vector<double> fedclust_acc(datasets.size(), -1.0);

  for (const auto& method : methods) {
    std::vector<std::string> row = {method};
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      const CellResult cell = run_cell(method, setting, datasets[d], scale);
      const double paper = paper_accuracy(setting, method, datasets[d]);
      std::string cellstr = util::fmt_pm(cell.mean_acc, cell.std_acc);
      cellstr += paper >= 0.0 ? "  [" + util::fmt_float(paper, 2) + "]"
                              : "  [--]";
      row.push_back(cellstr);
      if (cell.mean_acc > best_acc[d]) {
        best_acc[d] = cell.mean_acc;
        best_method[d] = method;
      }
      if (method == "FedClust") fedclust_acc[d] = cell.mean_acc;
    }
    table.add_row(row);
  }
  table.print();

  std::cout << "\nshape check (paper: FedClust ranks first on every "
               "dataset):\n";
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    std::cout << "  " << datasets[d] << ": best=" << best_method[d] << " ("
              << util::fmt_float(best_acc[d], 2) << "%)";
    if (fedclust_acc[d] >= 0.0) {
      std::cout << ", FedClust=" << util::fmt_float(fedclust_acc[d], 2)
                << "%"
                << (best_method[d] == "FedClust" ? "  ✓" : "  ✗");
    }
    std::cout << "\n";
  }
  return 0;
}

}  // namespace fedclust::bench
