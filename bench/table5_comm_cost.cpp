// Reproduces paper Table 5: communication cost (Mb) needed to reach a
// target accuracy under label skew 30%. Targets are re-calibrated as in
// Table 4 (fraction of best final accuracy); communication is measured by
// the simulator's CommTracker, so IFCA's K-fold downloads and LG's
// partial-layer uploads show up exactly as the paper describes.

#include <algorithm>
#include <iostream>

#include "core/registry.h"
#include "harness.h"
#include "table_common.h"
#include "util/config.h"
#include "util/table.h"

namespace fedclust::bench {
namespace {

int run(int argc, const char* const* argv) {
  util::ArgParser args("table5_comm_cost",
                       "Mb to reach target accuracy, skew 30% (Table 5)");
  args.add_option("datasets", "comma-separated dataset list",
                  "cifar10,cifar100,fmnist,svhn");
  args.add_option("target-frac",
                  "target = frac * best final accuracy per dataset", "0.9");
  if (!args.parse(argc, argv)) return 0;

  const Scale scale = get_scale();
  const auto datasets = split_csv_list(args.str("datasets"));
  const double frac = args.real("target-frac");
  const auto methods = core::all_methods();

  std::vector<std::vector<fl::Trace>> traces(methods.size());
  std::vector<double> target(datasets.size(), 0.0);
  for (std::size_t m = 0; m < methods.size(); ++m) {
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      traces[m].push_back(
          run_method_cached(methods[m], "skew30", datasets[d], scale, 1000));
      target[d] = std::max(target[d], frac * traces[m][d].final_accuracy());
    }
  }

  std::cout << "Table 5 — Mb to target accuracy (skew 30%, scale '"
            << scale.name << "')\ncells: measured Mb  [paper Mb]   (paper "
            << "targets 70/50/80/80%; ours printed in headers)\n";
  util::TablePrinter table;
  std::vector<std::string> headers = {"Method"};
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    headers.push_back(datasets[d] + " @" +
                      util::fmt_float(target[d] * 100.0, 1) + "%");
  }
  table.set_headers(headers);

  for (std::size_t m = 0; m < methods.size(); ++m) {
    if (methods[m] == "Local") continue;
    std::vector<std::string> row = {methods[m]};
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      const double mb = traces[m][d].mb_to_accuracy(target[d]);
      const double paper = paper_mb_to_target(methods[m], datasets[d]);
      std::string cell = mb < 0 ? "--" : util::fmt_float(mb, 2);
      cell += paper < 0 ? "  [--]" : "  [" + util::fmt_float(paper, 2) + "]";
      row.push_back(cell);
    }
    table.add_row(row);
  }
  table.print();

  // Shape summary the paper highlights: LG cheapest by design, FedClust
  // cheapest among the full-model methods, IFCA pays K-fold downloads.
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    double best_mb = -1;
    std::string who = "none";
    for (std::size_t m = 0; m < methods.size(); ++m) {
      if (methods[m] == "Local" || methods[m] == "LG") continue;
      const double mb = traces[m][d].mb_to_accuracy(target[d]);
      if (mb >= 0 && (best_mb < 0 || mb < best_mb)) {
        best_mb = mb;
        who = methods[m];
      }
    }
    std::cout << datasets[d] << ": cheapest full-model method = " << who
              << " (" << util::fmt_float(best_mb, 2) << " Mb)\n";
  }
  return 0;
}

}  // namespace
}  // namespace fedclust::bench

int main(int argc, char** argv) { return fedclust::bench::run(argc, argv); }
