// Reproduces paper Fig. 4: FedClust accuracy and resulting cluster count as
// the clustering threshold λ sweeps from pure personalization (tiny λ →
// every client its own cluster ≈ Local) to pure globalization (huge λ → one
// cluster ≈ FedAvg).
//
// The λ grid is data-driven: quantiles of the round-0 proximity matrix's
// dendrogram merge distances, which guarantees the sweep traverses the
// whole cluster-count range whatever the dataset's distance scale is.

#include <algorithm>
#include <iostream>

#include "clustering/hierarchical.h"
#include "core/fedclust.h"
#include "harness.h"
#include "table_common.h"
#include "util/config.h"
#include "util/table.h"

namespace fedclust::bench {
namespace {

int run(int argc, const char* const* argv) {
  util::ArgParser args("fig4_lambda_tradeoff",
                       "accuracy & cluster count vs λ (paper Fig. 4)");
  args.add_option("datasets", "comma-separated dataset list",
                  "cifar10,cifar100,fmnist,svhn");
  args.add_option("points", "number of λ grid points", "8");
  if (!args.parse(argc, argv)) return 0;

  const Scale scale = get_scale();
  const auto datasets = split_csv_list(args.str("datasets"));
  const auto n_points = static_cast<std::size_t>(
      std::max<std::int64_t>(2, args.integer("points")));

  for (const auto& dataset : datasets) {
    // Probe run (1 round) to obtain the proximity matrix and its merge
    // distances; the λ grid spans them.
    fl::ExperimentConfig probe_cfg =
        make_config(dataset, "skew20", scale, 1000);
    probe_cfg.rounds = 1;
    probe_cfg.algo.fedclust_k = 0;
    probe_cfg.algo.fedclust_lambda = -1.0f;
    fl::Federation probe_fed(probe_cfg);
    core::FedClust probe(probe_fed);
    probe.run();
    const auto dendro = clustering::agglomerative(probe.report().proximity);
    std::vector<float> merges;
    for (const auto& m : dendro.merges) merges.push_back(m.distance);
    std::sort(merges.begin(), merges.end());
    if (merges.empty()) continue;

    std::cout << "\nFig. 4 — " << dataset << " (skew 20%, scale '"
              << scale.name << "')\n";
    util::TablePrinter table;
    table.set_headers({"lambda", "clusters", "accuracy %", "regime"});

    double best_acc = -1.0;
    std::size_t best_clusters = 0;
    // Quantile grid plus the two extremes.
    std::vector<float> lambdas = {0.5f * merges.front()};
    for (std::size_t i = 1; i + 1 < n_points; ++i) {
      const double q = static_cast<double>(i) /
                       static_cast<double>(n_points - 1);
      lambdas.push_back(
          merges[static_cast<std::size_t>(q * (merges.size() - 1))] *
          1.0001f);
      // nudge above the merge so the cut includes it
    }
    lambdas.push_back(merges.back() * 1.1f);

    for (const float lambda : lambdas) {
      fl::ExperimentConfig cfg = make_config(dataset, "skew20", scale, 1000);
      cfg.algo.fedclust_k = 0;
      cfg.algo.fedclust_lambda = lambda;
      fl::Federation fed(cfg);
      core::FedClust algo(fed);
      const fl::Trace trace = algo.run();
      const std::size_t k = algo.report().n_clusters;
      const double acc = trace.final_accuracy() * 100.0;
      if (acc > best_acc) {
        best_acc = acc;
        best_clusters = k;
      }
      std::string regime = "clustered";
      if (k == 1) regime = "global (≈FedAvg)";
      if (k == fed.n_clients()) regime = "personal (≈Local)";
      table.add_row({util::fmt_float(lambda, 3), std::to_string(k),
                     util::fmt_float(acc, 2), regime});
    }
    table.print();
    std::cout << "best: " << util::fmt_float(best_acc, 2) << "% at "
              << best_clusters
              << " clusters (paper: interior optimum — all clients benefit "
                 "from some globalization)\n";
  }
  return 0;
}

}  // namespace
}  // namespace fedclust::bench

int main(int argc, char** argv) { return fedclust::bench::run(argc, argv); }
