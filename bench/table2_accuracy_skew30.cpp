// Reproduces paper Table 2: final average local test accuracy under
// non-IID label skew (30%).

#include "table_common.h"

int main(int argc, char** argv) {
  return fedclust::bench::run_accuracy_table(
      "skew30", "Table 2 (label skew 30%)", argc, argv);
}
