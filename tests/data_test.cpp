#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace fedclust::data {
namespace {

// ---------------------------------------------------------------- dataset

TEST(DatasetTest, AddAndAccess) {
  Dataset ds(1, 2, 3);
  EXPECT_EQ(ds.image_size(), 4u);
  ds.add({1, 2, 3, 4}, 0);
  ds.add({5, 6, 7, 8}, 2);
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.label(1), 2);
  EXPECT_FLOAT_EQ(ds.image(1)[0], 5.0f);
  EXPECT_THROW(ds.image(2), std::out_of_range);
}

TEST(DatasetTest, Validation) {
  Dataset ds(1, 2, 3);
  EXPECT_THROW(ds.add({1, 2, 3}, 0), std::invalid_argument);   // wrong size
  EXPECT_THROW(ds.add({1, 2, 3, 4}, 3), std::invalid_argument);  // bad label
  EXPECT_THROW(ds.add({1, 2, 3, 4}, -1), std::invalid_argument);
  EXPECT_THROW(Dataset(0, 2, 3), std::invalid_argument);
}

TEST(DatasetTest, BatchAssembly) {
  Dataset ds(2, 2, 2);
  ds.add(std::vector<float>(8, 1.0f), 0);
  ds.add(std::vector<float>(8, 2.0f), 1);
  ds.add(std::vector<float>(8, 3.0f), 0);
  const auto imgs = ds.batch_images({2, 0});
  EXPECT_EQ(imgs.shape(), (tensor::Shape{2, 2, 2, 2}));
  EXPECT_FLOAT_EQ(imgs[0], 3.0f);
  EXPECT_FLOAT_EQ(imgs[8], 1.0f);
  EXPECT_EQ(ds.batch_labels({2, 0}), (std::vector<std::int64_t>{0, 0}));
}

TEST(DatasetTest, LabelDistributionAndPresent) {
  Dataset ds(1, 1, 4);
  ds.add({0.0f}, 1);
  ds.add({0.0f}, 1);
  ds.add({0.0f}, 3);
  const auto dist = ds.label_distribution();
  EXPECT_DOUBLE_EQ(dist[1], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(dist[3], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_EQ(ds.present_labels(), (std::vector<std::int64_t>{1, 3}));
}

TEST(DatasetTest, ClassMatrix) {
  Dataset ds(1, 2, 2);
  ds.add({1, 2, 3, 4}, 0);
  ds.add({5, 6, 7, 8}, 1);
  ds.add({9, 10, 11, 12}, 0);
  const auto m = ds.class_matrix(0, 10);
  EXPECT_EQ(m.shape(), (tensor::Shape{4, 2}));
  EXPECT_FLOAT_EQ(m.at({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(m.at({0, 1}), 9.0f);
  EXPECT_FLOAT_EQ(m.at({3, 1}), 12.0f);
  // max_samples truncates, absent class gives 0 columns.
  EXPECT_EQ(ds.class_matrix(0, 1).dim(1), 1u);
  EXPECT_EQ(ds.class_matrix(1, 10).dim(1), 1u);
  Dataset empty(1, 2, 2);
  EXPECT_EQ(empty.class_matrix(0, 10).dim(1), 0u);
}

// -------------------------------------------------------------- synthetic

TEST(Synthetic, PresetsExist) {
  for (const auto& name : benchmark_dataset_names()) {
    const SyntheticSpec s = dataset_spec(name);
    EXPECT_EQ(s.name, name);
    EXPECT_GT(s.num_classes, 0u);
  }
  EXPECT_THROW(dataset_spec("imagenet"), std::invalid_argument);
  EXPECT_EQ(dataset_spec("fmnist").channels, 1u);
  EXPECT_EQ(dataset_spec("cifar100").num_classes, 20u);
}

TEST(Synthetic, DeterministicInSeed) {
  const SyntheticSpec spec = dataset_spec("cifar10");
  SyntheticGenerator g1(spec, 42);
  SyntheticGenerator g2(spec, 42);
  SyntheticGenerator g3(spec, 43);
  util::Rng r1(7);
  util::Rng r2(7);
  util::Rng r3(7);
  EXPECT_EQ(g1.sample(3, r1), g2.sample(3, r2));
  EXPECT_NE(g1.prototype(3, 0), g3.prototype(3, 0));
}

TEST(Synthetic, SampleValidation) {
  SyntheticGenerator gen(dataset_spec("fmnist"), 1);
  util::Rng rng(1);
  EXPECT_EQ(gen.sample(0, rng).size(), gen.image_size());
  EXPECT_THROW(gen.sample(-1, rng), std::invalid_argument);
  EXPECT_THROW(gen.sample(10, rng), std::invalid_argument);
}

// With a single prototype per class, same-class samples must be
// systematically closer than cross-class ones — the class-identity property
// every similarity-based method in the paper relies on. (With multiple
// prototypes the raw-pixel gap narrows by design: intra-class variation is
// a calibrated difficulty knob; see synthetic.h.)
TEST(Synthetic, IntraClassDistanceBelowInterClass) {
  SyntheticSpec spec = dataset_spec("cifar10");
  spec.prototypes_per_class = 1;
  SyntheticGenerator gen(spec, 5);
  util::Rng rng(9);
  double intra = 0.0;
  double inter = 0.0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    const auto a = gen.sample(0, rng);
    const auto b = gen.sample(0, rng);
    const auto c = gen.sample(5, rng);
    intra += tensor::l2_distance(a, b);
    inter += tensor::l2_distance(a, c);
  }
  EXPECT_LT(intra, inter * 0.9);
}

TEST(Synthetic, NoiseKnobControlsDispersion) {
  SyntheticSpec low = dataset_spec("cifar10");
  low.noise = 0.1f;
  low.coeff_jitter = 0.0f;  // isolate the pixel-noise knob
  low.prototypes_per_class = 1;
  SyntheticSpec high = dataset_spec("cifar10");
  high.noise = 1.5f;
  high.coeff_jitter = 0.0f;
  high.prototypes_per_class = 1;
  SyntheticGenerator gl(low, 3);
  SyntheticGenerator gh(high, 3);
  util::Rng rng(11);
  double dl = 0.0;
  double dh = 0.0;
  for (int t = 0; t < 20; ++t) {
    dl += tensor::l2_distance(gl.sample(1, rng), gl.prototype(1, 0));
    dh += tensor::l2_distance(gh.sample(1, rng), gh.prototype(1, 0));
  }
  EXPECT_LT(dl, dh * 0.3);
}

// -------------------------------------------------------------- partition

TEST(Partition, SkewGivesExpectedLabelCount) {
  FederatedConfig cfg;
  cfg.n_clients = 20;
  cfg.train_per_client = 40;
  cfg.test_per_client = 10;
  cfg.partition = "skew";
  cfg.skew_fraction = 0.2;
  const auto clients =
      make_federated_data(dataset_spec("cifar10"), cfg, 123);
  ASSERT_EQ(clients.size(), 20u);
  for (const auto& c : clients) {
    EXPECT_EQ(c.train.size(), 40u);
    EXPECT_EQ(c.test.size(), 10u);
    // 20% of 10 classes = 2 owned labels.
    std::size_t owned = 0;
    for (const double w : c.label_weights) owned += w > 0.0;
    EXPECT_EQ(owned, 2u);
    // Every drawn label must be an owned one.
    for (const auto y : c.train.present_labels()) {
      EXPECT_GT(c.label_weights[static_cast<std::size_t>(y)], 0.0);
    }
  }
}

TEST(Partition, Skew30OwnsThreeLabels) {
  FederatedConfig cfg;
  cfg.n_clients = 5;
  cfg.partition = "skew";
  cfg.skew_fraction = 0.3;
  const auto clients = make_federated_data(dataset_spec("svhn"), cfg, 1);
  for (const auto& c : clients) {
    std::size_t owned = 0;
    for (const double w : c.label_weights) owned += w > 0.0;
    EXPECT_EQ(owned, 3u);
  }
}

TEST(Partition, DirichletIsConcentratedForSmallAlpha) {
  FederatedConfig cfg;
  cfg.n_clients = 30;
  cfg.partition = "dirichlet";
  cfg.dirichlet_alpha = 0.1;
  const auto clients =
      make_federated_data(dataset_spec("cifar10"), cfg, 7);
  double avg_max = 0.0;
  for (const auto& c : clients) {
    avg_max += *std::max_element(c.label_weights.begin(),
                                 c.label_weights.end());
  }
  EXPECT_GT(avg_max / 30.0, 0.5);  // dominated by one label on average
}

TEST(Partition, IidIsUniform) {
  FederatedConfig cfg;
  cfg.n_clients = 3;
  cfg.partition = "iid";
  const auto clients =
      make_federated_data(dataset_spec("fmnist"), cfg, 7);
  for (const auto& c : clients) {
    for (const double w : c.label_weights) EXPECT_DOUBLE_EQ(w, 0.1);
  }
}

TEST(Partition, PoolCreatesGroundTruthGroups) {
  FederatedConfig cfg;
  cfg.n_clients = 40;
  cfg.partition = "skew";
  cfg.skew_fraction = 0.2;
  cfg.label_set_pool = 4;
  const auto clients =
      make_federated_data(dataset_spec("cifar10"), cfg, 99);
  const auto groups = group_ids(clients);
  const std::set<std::size_t> distinct(groups.begin(), groups.end());
  EXPECT_LE(distinct.size(), 4u);
  EXPECT_GE(distinct.size(), 2u);
  // Clients in the same group share the exact same label weights.
  for (std::size_t i = 0; i < clients.size(); ++i) {
    for (std::size_t j = i + 1; j < clients.size(); ++j) {
      if (groups[i] == groups[j]) {
        EXPECT_EQ(clients[i].label_weights, clients[j].label_weights);
      }
    }
  }
}

TEST(Partition, WithoutPoolGroupIdIsClientIndex) {
  FederatedConfig cfg;
  cfg.n_clients = 5;
  const auto clients =
      make_federated_data(dataset_spec("fmnist"), cfg, 3);
  EXPECT_EQ(group_ids(clients), (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Partition, QuantitySkewVariesTrainSizes) {
  FederatedConfig cfg;
  cfg.n_clients = 30;
  cfg.train_per_client = 40;
  cfg.test_per_client = 5;
  cfg.quantity_skew_factor = 4.0;
  const auto clients =
      make_federated_data(dataset_spec("fmnist"), cfg, 13);
  std::size_t lo = SIZE_MAX;
  std::size_t hi = 0;
  for (const auto& c : clients) {
    lo = std::min(lo, c.train.size());
    hi = std::max(hi, c.train.size());
    // Bounded by the skew factor (rounding slack of 1).
    EXPECT_GE(c.train.size() + 1, 40u / 4);
    EXPECT_LE(c.train.size(), 40u * 4 + 1);
    EXPECT_EQ(c.test.size(), 5u);  // test sets stay uniform
  }
  EXPECT_LT(lo * 2, hi);  // sizes genuinely differ
}

TEST(Partition, QuantitySkewValidation) {
  FederatedConfig cfg;
  cfg.n_clients = 2;
  cfg.quantity_skew_factor = 0.5;
  EXPECT_THROW(make_federated_data(dataset_spec("fmnist"), cfg, 1),
               std::invalid_argument);
}

TEST(Partition, DeterministicInSeed) {
  FederatedConfig cfg;
  cfg.n_clients = 4;
  cfg.train_per_client = 6;
  const auto a = make_federated_data(dataset_spec("svhn"), cfg, 5);
  const auto b = make_federated_data(dataset_spec("svhn"), cfg, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].train.labels(), b[i].train.labels());
    for (std::size_t s = 0; s < a[i].train.size(); ++s) {
      EXPECT_EQ(a[i].train.image(s)[0], b[i].train.image(s)[0]);
    }
  }
}

TEST(Partition, Validation) {
  FederatedConfig cfg;
  cfg.n_clients = 0;
  EXPECT_THROW(make_federated_data(dataset_spec("svhn"), cfg, 1),
               std::invalid_argument);
  cfg.n_clients = 2;
  cfg.partition = "zipf";
  EXPECT_THROW(make_federated_data(dataset_spec("svhn"), cfg, 1),
               std::invalid_argument);
}

class PartitionSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PartitionSweep, EveryDatasetPartitions) {
  FederatedConfig cfg;
  cfg.n_clients = 6;
  cfg.train_per_client = 10;
  cfg.test_per_client = 4;
  for (const char* mode : {"skew", "dirichlet", "iid"}) {
    cfg.partition = mode;
    const auto clients =
        make_federated_data(dataset_spec(GetParam()), cfg, 11);
    EXPECT_EQ(clients.size(), 6u) << GetParam() << "/" << mode;
    for (const auto& c : clients) {
      EXPECT_EQ(c.train.size(), 10u);
      double sum = 0.0;
      for (const double w : c.label_weights) sum += w;
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, PartitionSweep,
                         ::testing::Values("cifar10", "cifar100", "fmnist",
                                           "svhn"));

}  // namespace
}  // namespace fedclust::data
