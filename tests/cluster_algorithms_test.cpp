// Deeper behavioural tests for the clustered methods and aggregation
// helpers: per-cluster FedAvg mechanics, FedNova's equivalence to FedAvg in
// the homogeneous case, CFL's split trigger, IFCA/PACFL/FedClust newcomer
// selection, and optimizer gradient clipping.

#include <gtest/gtest.h>

#include "clustering/hierarchical.h"
#include "core/fedclust.h"
#include "fl/cfl.h"
#include "fl/cluster_common.h"
#include "fl/fedavg.h"
#include "fl/fednova.h"
#include "fl/ifca.h"
#include "fl/pacfl.h"
#include "nn/init.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"

namespace fedclust::fl {
namespace {

ExperimentConfig base_config(std::size_t n_clients = 8) {
  ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("fmnist");
  cfg.data_spec.hw = 8;
  cfg.fed.n_clients = n_clients;
  cfg.fed.train_per_client = 12;
  cfg.fed.test_per_client = 6;
  cfg.fed.partition = "skew";
  cfg.fed.skew_fraction = 0.2;
  cfg.fed.label_set_pool = 2;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 1;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 6;
  cfg.local.lr = 0.05f;
  cfg.rounds = 2;
  cfg.sample_fraction = 0.5;
  cfg.seed = 77;
  return cfg;
}

// ------------------------------------------------------- cluster rounds

TEST(ClusterCommon, UnsampledClustersKeepTheirModel) {
  Federation fed(base_config());
  // Assign every client to cluster 0; cluster 1 exists but owns nobody.
  std::vector<std::size_t> assignment(fed.n_clients(), 0);
  std::vector<std::vector<float>> models = {fed.init_params(),
                                            fed.init_params()};
  const auto before = models[1];
  cluster_fedavg_round(fed, 0, assignment, models);
  EXPECT_EQ(models[1], before);   // untouched
  EXPECT_NE(models[0], before);   // trained
}

TEST(ClusterCommon, ValidatesAssignment) {
  Federation fed(base_config());
  std::vector<std::vector<float>> models = {fed.init_params()};
  std::vector<std::size_t> short_assignment(fed.n_clients() - 1, 0);
  EXPECT_THROW(cluster_fedavg_round(fed, 0, short_assignment, models),
               std::invalid_argument);
  std::vector<std::size_t> oob(fed.n_clients(), 3);
  EXPECT_THROW(cluster_fedavg_round(fed, 0, oob, models),
               std::invalid_argument);
}

TEST(ClusterCommon, CommAccountsFullModelBothWays) {
  Federation fed(base_config());
  std::vector<std::size_t> assignment(fed.n_clients(), 0);
  std::vector<std::vector<float>> models = {fed.init_params()};
  const std::size_t sampled = fed.sample_round(0).size();
  cluster_fedavg_round(fed, 0, assignment, models);
  EXPECT_EQ(fed.comm().bytes_down(), sampled * fed.model_size() * 4);
  EXPECT_EQ(fed.comm().bytes_up(), sampled * fed.model_size() * 4);
}

TEST(ClusterCommon, SingleClusterMatchesFedAvgRound) {
  // With one cluster holding everyone, a cluster round IS a FedAvg round.
  const ExperimentConfig cfg = base_config();
  Federation f1(cfg);
  Federation f2(cfg);

  std::vector<std::size_t> assignment(f1.n_clients(), 0);
  std::vector<std::vector<float>> models = {f1.init_params()};
  cluster_fedavg_round(f1, 0, assignment, models);

  FedAvg fedavg(f2);
  // Run exactly one round via the public API.
  auto cfg1 = cfg;
  cfg1.rounds = 1;
  Federation f3(cfg1);
  FedAvg one_round(f3);
  one_round.run();
  EXPECT_EQ(models[0], one_round.global_params());
}

// ------------------------------------------------------------- fednova

// When every client has the same data volume and step count, FedNova's
// normalized aggregation reduces exactly to FedAvg.
TEST(FedNovaTest, EqualsFedAvgUnderHomogeneousSteps) {
  ExperimentConfig cfg = base_config();
  cfg.rounds = 3;
  Federation f1(cfg);
  Federation f2(cfg);
  FedAvg avg(f1);
  FedNova nova(f2);
  const Trace t1 = avg.run();
  const Trace t2 = nova.run();
  const auto& a = avg.global_params();
  const auto& b = nova.global_params();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], 1e-4) << "diverged at " << i;
  }
  EXPECT_NEAR(t1.final_accuracy(), t2.final_accuracy(), 1e-9);
}

// Under quantity skew clients take different step counts, which is exactly
// when FedNova's normalization departs from FedAvg.
TEST(FedNovaTest, DivergesFromFedAvgUnderQuantitySkew) {
  ExperimentConfig cfg = base_config();
  cfg.fed.quantity_skew_factor = 4.0;
  cfg.rounds = 2;
  Federation f1(cfg);
  Federation f2(cfg);
  FedAvg avg(f1);
  FedNova nova(f2);
  avg.run();
  nova.run();
  EXPECT_NE(avg.global_params(), nova.global_params());
}

// --------------------------------------------------------------- cfl

TEST(CflSplit, IncongruentClustersEventuallySplit) {
  // Two strongly conflicting groups, full participation, several rounds:
  // the congruence criterion must fire at least once.
  ExperimentConfig cfg = base_config(8);
  cfg.fed.label_set_pool = 2;
  cfg.sample_fraction = 1.0;  // everyone participates: clean norms
  cfg.rounds = 10;
  cfg.local.epochs = 2;
  cfg.algo.cfl_eps1 = 0.9f;   // permissive thresholds for the small setup
  cfg.algo.cfl_eps2 = 0.3f;
  Federation fed(cfg);
  Cfl algo(fed);
  const Trace t = algo.run();
  EXPECT_GT(t.final_clusters(), 1u) << "CFL never split";
  // All assignments reference live clusters.
  for (const auto a : algo.assignment()) {
    EXPECT_LT(a, t.final_clusters());
  }
}

TEST(CflSplit, NeverSplitsWithImpossibleThresholds) {
  ExperimentConfig cfg = base_config(8);
  cfg.rounds = 6;
  cfg.algo.cfl_eps1 = 0.0f;  // mean-norm can never be below 0
  Federation fed(cfg);
  Cfl algo(fed);
  EXPECT_EQ(algo.run().final_clusters(), 1u);
}

// -------------------------------------------------------------- ifca

TEST(IfcaTest, SelectionPicksLowestLossModel) {
  ExperimentConfig cfg = base_config();
  cfg.algo.ifca_k = 3;
  Federation fed(cfg);
  Ifca algo(fed);
  const Trace t = algo.run();
  ASSERT_EQ(algo.models().size(), 3u);
  // Verify the selector against a manual argmin for a few clients.
  nn::Model& ws = fed.workspace();
  for (std::size_t c = 0; c < 3; ++c) {
    float best = std::numeric_limits<float>::infinity();
    std::size_t best_k = 0;
    for (std::size_t k = 0; k < 3; ++k) {
      ws.set_flat_params(algo.models()[k]);
      const float loss = fed.client(c)->train_loss(ws);
      if (loss < best) {
        best = loss;
        best_k = k;
      }
    }
    EXPECT_EQ(algo.select_cluster_for(*fed.client(c)), best_k);
  }
  EXPECT_GE(t.final_accuracy(), 0.0);
}

// ------------------------------------------------------------- pacfl

TEST(PacflTest, NewcomerJoinsNearestSubspaceCluster) {
  ExperimentConfig cfg = base_config(10);
  cfg.fed.label_set_pool = 2;
  cfg.rounds = 1;
  cfg.algo.pacfl_k = 2;
  // Build one extra client from the same pools as a newcomer.
  auto ext_cfg = cfg;
  ext_cfg.fed.n_clients = 11;
  auto ext = data::make_federated_data(ext_cfg.data_spec, ext_cfg.fed,
                                       cfg.seed);
  const auto groups = data::group_ids(ext);

  std::vector<data::ClientData> federated(
      std::make_move_iterator(ext.begin()),
      std::make_move_iterator(ext.begin() + 10));
  SimClient newcomer(10, std::move(ext[10].train), std::move(ext[10].test));

  Federation fed(cfg, std::move(federated));
  Pacfl algo(fed);
  algo.run();
  const std::size_t joined = algo.assign_newcomer(newcomer);
  ASSERT_LT(joined, clustering::num_clusters(algo.assignment()));

  // The cluster it joined should be dominated by its own ground-truth
  // group (subspaces of same-pool clients are near-identical).
  std::size_t same = 0;
  std::size_t total = 0;
  for (std::size_t c = 0; c < 10; ++c) {
    if (algo.assignment()[c] != joined) continue;
    ++total;
    same += groups[c] == groups[10];
  }
  ASSERT_GT(total, 0u);
  EXPECT_GE(2 * same, total) << "newcomer joined a foreign cluster";
}

TEST(PacflTest, NewcomerBeforeSetupThrows) {
  ExperimentConfig cfg = base_config();
  Federation fed(cfg);
  Pacfl algo(fed);
  auto d = data::make_federated_data(cfg.data_spec, cfg.fed, 1);
  SimClient newcomer(0, std::move(d[0].train), std::move(d[0].test));
  EXPECT_THROW(algo.assign_newcomer(newcomer), std::logic_error);
}

// ----------------------------------------------------------- clipping

TEST(SgdClip, LargeGradientsAreRescaled) {
  util::Rng rng(3);
  auto fc = nn::make_linear(1, 1, rng, "fc");
  fc->weight().value[0] = 0.0f;
  fc->bias().value[0] = 0.0f;
  fc->weight().grad[0] = 30.0f;
  fc->bias().grad[0] = 40.0f;  // joint norm 50, clip at 5 -> scale 0.1
  nn::Sgd opt(fc->parameters(), {.lr = 1.0f, .clip_grad_norm = 5.0f});
  opt.step();
  EXPECT_NEAR(fc->weight().value[0], -3.0f, 1e-5);
  EXPECT_NEAR(fc->bias().value[0], -4.0f, 1e-5);
}

TEST(SgdClip, SmallGradientsUntouched) {
  util::Rng rng(3);
  auto fc = nn::make_linear(1, 1, rng, "fc");
  fc->weight().value[0] = 0.0f;
  fc->bias().value[0] = 0.0f;
  fc->weight().grad[0] = 0.3f;
  fc->bias().grad[0] = 0.4f;  // norm 0.5 < 5
  nn::Sgd opt(fc->parameters(), {.lr = 1.0f, .clip_grad_norm = 5.0f});
  opt.step();
  EXPECT_NEAR(fc->weight().value[0], -0.3f, 1e-6);
  EXPECT_NEAR(fc->bias().value[0], -0.4f, 1e-6);
}

// --------------------------------------------------------- federation

TEST(FederationInjected, UsesProvidedData) {
  ExperimentConfig cfg = base_config(4);
  auto data = data::make_federated_data(cfg.data_spec, cfg.fed, 5);
  data.erase(data.begin() + 3, data.end());  // inject fewer clients
  Federation fed(cfg, std::move(data));
  EXPECT_EQ(fed.n_clients(), 3u);
  EXPECT_EQ(fed.sample_round(0).size(),
            std::max<std::size_t>(1, static_cast<std::size_t>(0.5 * 3)));
}

// -------------------------------------------------- dropout & metrics

TEST(Dropout, ReducesParticipationButNeverToZero) {
  ExperimentConfig cfg = base_config(8);
  cfg.sample_fraction = 1.0;
  cfg.dropout_prob = 0.5;
  Federation fed(cfg);
  std::size_t total = 0;
  for (std::size_t r = 0; r < 50; ++r) {
    const auto ids = fed.sample_round(r);
    ASSERT_GE(ids.size(), 1u);
    ASSERT_LE(ids.size(), 8u);
    total += ids.size();
  }
  // Expected survivors ~ 4/round; far below full participation.
  EXPECT_LT(total, 50u * 7u);
  EXPECT_GT(total, 50u * 1u);
}

TEST(Dropout, FederationStillTrainsEndToEnd) {
  ExperimentConfig cfg = base_config(8);
  cfg.dropout_prob = 0.6;
  cfg.rounds = 4;
  Federation fed(cfg);
  FedAvg algo(fed);
  const Trace t = algo.run();
  EXPECT_EQ(t.records.size(), 4u);
  // Dropped clients ship nothing: comm below the no-dropout bill.
  ExperimentConfig full = cfg;
  full.dropout_prob = 0.0;
  Federation fed2(full);
  FedAvg algo2(fed2);
  algo2.run();
  EXPECT_LT(fed.comm().bytes_total(), fed2.comm().bytes_total());
}

TEST(FedClustMetric, CosineDistanceOptionWorks) {
  ExperimentConfig cfg = base_config(8);
  cfg.rounds = 1;
  cfg.algo.fedclust_k = 2;
  cfg.algo.fedclust_distance = "cosine";
  Federation fed(cfg);
  core::FedClust algo(fed);
  algo.run();
  EXPECT_EQ(algo.report().n_clusters, 2u);
  // Cosine distances live in [0, 2].
  for (std::size_t i = 0; i < algo.report().proximity.size(); ++i) {
    EXPECT_GE(algo.report().proximity[i], 0.0f);
    EXPECT_LE(algo.report().proximity[i], 2.0f);
  }
  cfg.algo.fedclust_distance = "mahalanobis";
  Federation fed2(cfg);
  core::FedClust bad(fed2);
  EXPECT_THROW(bad.run(), std::invalid_argument);
}

// FedClust's fixed-k mode must produce exactly k clusters regardless of λ.
TEST(FedClustFixedK, ProducesExactlyK) {
  ExperimentConfig cfg = base_config(8);
  cfg.rounds = 1;
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    auto c = cfg;
    c.algo.fedclust_k = k;
    Federation fed(c);
    core::FedClust algo(fed);
    algo.run();
    EXPECT_EQ(algo.report().n_clusters, k);
    EXPECT_FLOAT_EQ(algo.report().effective_lambda, -1.0f);
  }
}

}  // namespace
}  // namespace fedclust::fl
