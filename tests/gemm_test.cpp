#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.h"

namespace fedclust::tensor {
namespace {

Tensor random_tensor(Shape shape, util::Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& x : t.vec()) x = rng.normalf(0.0f, 1.0f);
  return t;
}

// Naive triple-loop reference.
Tensor reference_matmul(const Tensor& a, Trans ta, const Tensor& b,
                        Trans tb) {
  const std::size_t m = ta == Trans::kNo ? a.dim(0) : a.dim(1);
  const std::size_t k = ta == Trans::kNo ? a.dim(1) : a.dim(0);
  const std::size_t n = tb == Trans::kNo ? b.dim(1) : b.dim(0);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av =
            ta == Trans::kNo ? a[i * a.dim(1) + p] : a[p * a.dim(1) + i];
        const float bv =
            tb == Trans::kNo ? b[p * b.dim(1) + j] : b[j * b.dim(1) + p];
        s += static_cast<double>(av) * bv;
      }
      c[i * n + j] = static_cast<float>(s);
    }
  }
  return c;
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-3f) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at " << i;
  }
}

TEST(Gemm, SmallKnownResult) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0f);
}

TEST(Gemm, InnerDimMismatchThrows) {
  const Tensor a({2, 3});
  const Tensor b({2, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Gemm, BetaAccumulates) {
  const Tensor a({2, 2}, {1, 0, 0, 1});
  const Tensor b({2, 2}, {1, 2, 3, 4});
  Tensor c({2, 2}, {10, 10, 10, 10});
  gemm(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 1.0f,
       c.data(), 2);
  EXPECT_FLOAT_EQ(c[0], 11.0f);
  EXPECT_FLOAT_EQ(c[3], 14.0f);
}

TEST(Gemm, AlphaScales) {
  const Tensor a({1, 1}, {3.0f});
  const Tensor b({1, 1}, {4.0f});
  Tensor c({1, 1}, {100.0f});
  gemm(Trans::kNo, Trans::kNo, 1, 1, 1, 2.0f, a.data(), 1, b.data(), 1, 0.0f,
       c.data(), 1);
  EXPECT_FLOAT_EQ(c[0], 24.0f);
}

TEST(Gemm, StridedC) {
  // Write a 2x2 product into the top-left of a 2x4 buffer.
  const Tensor a({2, 2}, {1, 2, 3, 4});
  const Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c({2, 4});
  gemm(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 0.0f,
       c.data(), 4);
  EXPECT_FLOAT_EQ(c.at({0, 0}), 19.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 22.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 43.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 50.0f);
  EXPECT_FLOAT_EQ(c.at({0, 2}), 0.0f);  // untouched columns stay zero
}

using GemmCase = std::tuple<std::size_t, std::size_t, std::size_t, int, int>;

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, MatchesReference) {
  const auto [m, n, k, ita, itb] = GetParam();
  const Trans ta = ita != 0 ? Trans::kYes : Trans::kNo;
  const Trans tb = itb != 0 ? Trans::kYes : Trans::kNo;
  util::Rng rng(m * 10007 + n * 101 + k + static_cast<std::size_t>(ita) * 7 +
                static_cast<std::size_t>(itb));
  const Tensor a = ta == Trans::kNo ? random_tensor({m, k}, rng)
                                    : random_tensor({k, m}, rng);
  const Tensor b = tb == Trans::kNo ? random_tensor({k, n}, rng)
                                    : random_tensor({n, k}, rng);
  expect_close(matmul(a, ta, b, tb), reference_matmul(a, ta, b, tb),
               1e-3f * static_cast<float>(k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(
        GemmCase{1, 1, 1, 0, 0}, GemmCase{3, 5, 7, 0, 0},
        GemmCase{3, 5, 7, 1, 0}, GemmCase{3, 5, 7, 0, 1},
        GemmCase{3, 5, 7, 1, 1}, GemmCase{64, 64, 64, 0, 0},
        GemmCase{65, 63, 130, 0, 0}, GemmCase{65, 63, 130, 1, 1},
        GemmCase{128, 17, 200, 0, 1}, GemmCase{17, 128, 200, 1, 0},
        GemmCase{1, 256, 64, 0, 0}, GemmCase{256, 1, 64, 0, 0},
        // Big enough to cross the parallel threshold.
        GemmCase{96, 96, 96, 0, 0}));

}  // namespace
}  // namespace fedclust::tensor
