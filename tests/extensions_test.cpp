// Tests for the library's extension surface: SCAFFOLD and FedDyn
// baselines, model checkpointing, Dropout, BatchNorm2d, the SGD gradient
// offset hook, and the dendrogram Newick export.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "core/registry.h"
#include "fl/fedavg.h"
#include "fl/fedopt.h"
#include "fl/ditto.h"
#include "fl/feddyn.h"
#include "fl/flis.h"
#include "fl/scaffold.h"
#include "nn/batchnorm.h"
#include "nn/checkpoint.h"
#include "nn/dropout.h"
#include "nn/init.h"
#include "nn/optimizer.h"
#include "nn/model_zoo.h"
#include "util/rng.h"

namespace fedclust {
namespace {

fl::ExperimentConfig small_config() {
  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("fmnist");
  cfg.data_spec.hw = 8;
  cfg.fed.n_clients = 8;
  cfg.fed.train_per_client = 12;
  cfg.fed.test_per_client = 6;
  cfg.fed.partition = "skew";
  cfg.fed.skew_fraction = 0.2;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 1;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 6;
  cfg.local.lr = 0.05f;
  cfg.rounds = 3;
  cfg.sample_fraction = 0.5;
  cfg.seed = 31;
  return cfg;
}

// --------------------------------------------------- SCAFFOLD / FedDyn

TEST(Extensions, RegistryExposesExtraMethods) {
  EXPECT_EQ(core::extra_methods(),
            (std::vector<std::string>{"SCAFFOLD", "FedDyn", "Ditto", "FLIS",
                                      "FedAvgM", "FedAdam"}));
  fl::Federation fed(small_config());
  for (const auto& name : core::extra_methods()) {
    EXPECT_EQ(core::make_algorithm(name, fed)->name(), name);
  }
}

// Every extension method runs end-to-end on a small federation.
class ExtraMethodSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtraMethodSweep, RunsAndTraces) {
  fl::Federation fed(small_config());
  const auto algo = core::make_algorithm(GetParam(), fed);
  const fl::Trace t = algo->run();
  EXPECT_EQ(t.records.size(), 3u);
  for (const auto& r : t.records) {
    EXPECT_GE(r.avg_local_test_acc, 0.0);
    EXPECT_LE(r.avg_local_test_acc, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Extras, ExtraMethodSweep,
                         ::testing::Values("SCAFFOLD", "FedDyn", "Ditto",
                                           "FLIS", "FedAvgM", "FedAdam"));

TEST(FedOptTest, MomentumWithZeroBetaAndUnitLrIsFedAvg) {
  auto cfg = small_config();
  cfg.rounds = 3;
  fl::Federation f1(cfg);
  fl::FedOptOptions opts;
  opts.server_opt = "momentum";
  opts.server_lr = 1.0f;
  opts.beta1 = 0.0f;  // no momentum memory: w += delta exactly
  fl::FedOpt fedopt(f1, opts);
  fedopt.run();
  fl::Federation f2(cfg);
  fl::FedAvg fedavg(f2);
  fedavg.run();
  const auto& a = fedopt.global_params();
  const auto& b = fedavg.global_params();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], 1e-5) << i;
  }
}

TEST(FedOptTest, MomentumChangesTrajectory) {
  auto cfg = small_config();
  fl::Federation f1(cfg);
  fl::FedOpt fedavgm(f1, fl::FedOptOptions{});  // beta1 = 0.9 default
  fedavgm.run();
  fl::Federation f2(cfg);
  fl::FedAvg fedavg(f2);
  fedavg.run();
  EXPECT_NE(fedavgm.global_params(), fedavg.global_params());
}

TEST(FedOptTest, RejectsUnknownServerOptimizer) {
  auto cfg = small_config();
  fl::Federation fed(cfg);
  fl::FedOptOptions opts;
  opts.server_opt = "lamb";
  EXPECT_THROW(fl::FedOpt(fed, opts), std::invalid_argument);
}

TEST(DittoTest, PersonalModelsDivergeFromGlobal) {
  fl::Federation fed(small_config());
  fl::Ditto algo(fed, /*lambda=*/0.1f);
  algo.run();
  // Sampled clients' personal models must differ from both θ0 and the
  // global model (they trained with their own data).
  bool any_moved = false;
  for (std::size_t c = 0; c < fed.n_clients(); ++c) {
    if (algo.personal_params(c) != fed.init_params()) {
      any_moved = true;
      EXPECT_NE(algo.personal_params(c), algo.global_params());
    }
  }
  EXPECT_TRUE(any_moved);
}

TEST(FlisTest, ClustersViaProxyInference) {
  auto cfg = small_config();
  cfg.fed.label_set_pool = 2;
  fl::Federation fed(cfg);
  fl::Flis algo(fed, /*proxy_per_class=*/3, /*k=*/2);
  const fl::Trace t = algo.run();
  EXPECT_EQ(t.final_clusters(), 2u);
  EXPECT_EQ(algo.assignment().size(), fed.n_clients());
  // Proxy predictions were uploaded by every client before any model moved.
  EXPECT_GT(fed.comm().bytes_up(), 0u);
}

TEST(ScaffoldTest, RunsAndDoublesCommunication) {
  const auto cfg = small_config();
  fl::Federation f1(cfg);
  fl::Scaffold scaffold(f1);
  const fl::Trace t = scaffold.run();
  EXPECT_EQ(t.records.size(), cfg.rounds);

  fl::Federation f2(cfg);
  fl::FedAvg fedavg(f2);
  fedavg.run();
  // Control variates ride along with the model: exactly 2x FedAvg's bytes.
  EXPECT_EQ(f1.comm().bytes_total(), 2 * f2.comm().bytes_total());
}

TEST(ScaffoldTest, FirstRoundVariatesAreZeroSoModelMatchesFedAvg) {
  // With all c_i = c = 0, SCAFFOLD's first round is exactly FedAvg.
  auto cfg = small_config();
  cfg.rounds = 1;
  fl::Federation f1(cfg);
  fl::Scaffold scaffold(f1);
  scaffold.run();
  fl::Federation f2(cfg);
  fl::FedAvg fedavg(f2);
  fedavg.run();
  EXPECT_EQ(scaffold.global_params(), fedavg.global_params());
}

TEST(FedDynTest, RunsAndTracksState) {
  fl::Federation fed(small_config());
  fl::FedDyn algo(fed, /*alpha=*/0.1f);
  const fl::Trace t = algo.run();
  EXPECT_EQ(t.records.size(), 3u);
  EXPECT_EQ(algo.global_params().size(), fed.model_size());
  for (const float v : algo.global_params()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(SgdOffset, AddsConstantToEveryStep) {
  util::Rng rng(1);
  auto fc = nn::make_linear(1, 1, rng, "fc");
  fc->weight().value[0] = 0.0f;
  fc->bias().value[0] = 0.0f;
  fc->weight().grad[0] = 0.0f;
  fc->bias().grad[0] = 0.0f;
  nn::Sgd opt(fc->parameters(), {.lr = 1.0f});
  opt.set_grad_offset({2.0f, -3.0f});
  opt.step();
  EXPECT_FLOAT_EQ(fc->weight().value[0], -2.0f);
  EXPECT_FLOAT_EQ(fc->bias().value[0], 3.0f);
  EXPECT_THROW(opt.set_grad_offset({1.0f}), std::invalid_argument);
  // Clearing the offset restores plain SGD.
  opt.set_grad_offset({});
  opt.step();
  EXPECT_FLOAT_EQ(fc->weight().value[0], -2.0f);
}

// ------------------------------------------------------- checkpointing

TEST(Checkpoint, RoundTripsParameters) {
  nn::Model a = nn::lenet5(1, 16, 10, 5);
  nn::Model b = nn::lenet5(1, 16, 10, 99);  // same arch, different weights
  ASSERT_NE(a.flat_params(), b.flat_params());
  std::stringstream ss;
  nn::save_model(a, ss);
  nn::load_model(b, ss);
  EXPECT_EQ(a.flat_params(), b.flat_params());
}

TEST(Checkpoint, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/model.fckpt";
  nn::Model a = nn::mlp(4, {3}, 2, 1);
  nn::save_model_file(a, path);
  nn::Model b = nn::mlp(4, {3}, 2, 2);
  nn::load_model_file(b, path);
  EXPECT_EQ(a.flat_params(), b.flat_params());
  nn::Model c = nn::mlp(4, {3}, 2, 3);
  EXPECT_THROW(nn::load_model_file(c, "/nonexistent.fckpt"),
               std::runtime_error);
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  nn::Model a = nn::mlp(4, {3}, 2, 1);
  nn::Model wrong_shape = nn::mlp(4, {5}, 2, 1);
  nn::Model wrong_depth = nn::mlp(4, {3, 3}, 2, 1);
  std::stringstream s1;
  nn::save_model(a, s1);
  EXPECT_THROW(nn::load_model(wrong_shape, s1), std::runtime_error);
  std::stringstream s2;
  nn::save_model(a, s2);
  EXPECT_THROW(nn::load_model(wrong_depth, s2), std::runtime_error);
}

TEST(Checkpoint, RejectsGarbage) {
  std::stringstream ss;
  ss << "definitely not a checkpoint";
  nn::Model m = nn::mlp(4, {3}, 2, 1);
  EXPECT_THROW(nn::load_model(m, ss), std::runtime_error);
}

// ------------------------------------------------------------ dropout

TEST(DropoutTest, EvalIsIdentity) {
  nn::Dropout drop(0.5f, 1);
  const nn::Tensor x({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  const nn::Tensor y = drop.forward(x, /*train=*/false);
  EXPECT_EQ(y.vec(), x.vec());
}

TEST(DropoutTest, TrainZeroesAndRescales) {
  nn::Dropout drop(0.5f, 2);
  nn::Tensor x = nn::Tensor::full({1, 2000}, 1.0f);
  const nn::Tensor y = drop.forward(x, true);
  std::size_t zeros = 0;
  for (const float v : y.vec()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros), 1000.0, 100.0);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  nn::Dropout drop(0.5f, 3);
  nn::Tensor x = nn::Tensor::full({1, 100}, 1.0f);
  const nn::Tensor y = drop.forward(x, true);
  const nn::Tensor gx = drop.backward(nn::Tensor::full({1, 100}, 1.0f));
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(gx[i], y[i]);  // both are 0 or keep_scale
  }
}

TEST(DropoutTest, ValidatesP) {
  EXPECT_THROW(nn::Dropout(1.0f), std::invalid_argument);
  EXPECT_THROW(nn::Dropout(-0.1f), std::invalid_argument);
  nn::Dropout noop(0.0f);
  const nn::Tensor x({1, 3}, {1, 2, 3});
  EXPECT_EQ(noop.forward(x, true).vec(), x.vec());
}

// ---------------------------------------------------------- batchnorm

TEST(BatchNormTest, NormalizesPerChannelInTraining) {
  nn::BatchNorm2d bn(2);
  util::Rng rng(4);
  nn::Tensor x({4, 2, 3, 3});
  for (auto& v : x.vec()) v = rng.normalf(5.0f, 2.0f);
  const nn::Tensor y = bn.forward(x, true);
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0;
    double sq = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      const float* plane = y.data() + (i * 2 + c) * 9;
      for (std::size_t p = 0; p < 9; ++p) {
        sum += plane[p];
        sq += static_cast<double>(plane[p]) * plane[p];
      }
    }
    const double mean = sum / 36.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / 36.0 - mean * mean, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, RunningStatsConvergeAndDriveEval) {
  nn::BatchNorm2d bn(1);
  util::Rng rng(5);
  // Many training passes over N(3, 2) data: running stats approach (3, 4).
  for (int step = 0; step < 200; ++step) {
    nn::Tensor x({8, 1, 4, 4});
    for (auto& v : x.vec()) v = rng.normalf(3.0f, 2.0f);
    bn.forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 3.0f, 0.3f);
  EXPECT_NEAR(bn.running_var()[0], 4.0f, 0.8f);
  // Eval mode uses running stats: a constant input x=3 maps near 0.
  nn::Tensor x = nn::Tensor::full({1, 1, 2, 2}, 3.0f);
  const nn::Tensor y = bn.forward(x, false);
  EXPECT_NEAR(y[0], 0.0f, 0.2f);
}

TEST(BatchNormTest, GradCheck) {
  nn::BatchNorm2d bn(2);
  util::Rng rng(6);
  nn::Tensor x({3, 2, 2, 2});
  for (auto& v : x.vec()) v = rng.normalf(0, 1);
  nn::Tensor proj(x.shape());
  for (auto& v : proj.vec()) v = rng.normalf(0, 1);

  const auto loss = [&] {
    const nn::Tensor out = bn.forward(x, true);
    double s = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      s += static_cast<double>(out[i]) * proj[i];
    }
    return s;
  };
  bn.zero_grad();
  bn.forward(x, true);
  const nn::Tensor gx = bn.backward(proj);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float saved = x[i];
    x[i] = saved + static_cast<float>(eps);
    const double lp = loss();
    x[i] = saved - static_cast<float>(eps);
    const double lm = loss();
    x[i] = saved;
    const double num = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(gx[i], num, 5e-2 * (std::abs(num) + 1.0)) << i;
  }
}

TEST(BatchNormTest, RunningStatsAreNotParameters) {
  // The FL-averaging pitfall: only gamma/beta are learnable state.
  nn::BatchNorm2d bn(3);
  EXPECT_EQ(bn.parameters().size(), 2u);
}

// ------------------------------------------------------------- newick

TEST(Newick, SerializesDendrogram) {
  const std::vector<std::vector<float>> pts = {{0.0f}, {0.1f}, {10.0f}};
  const auto d = clustering::agglomerative(
      clustering::l2_distance_matrix(pts), clustering::Linkage::kSingle);
  const std::string nw = clustering::to_newick(d);
  // Leaves 0 and 1 merge first, then join 2.
  EXPECT_EQ(nw.front(), '(');
  EXPECT_EQ(nw.back(), ';');
  EXPECT_NE(nw.find("(0,1)"), std::string::npos);
  EXPECT_NE(nw.find("2"), std::string::npos);
}

TEST(Newick, TrivialCases) {
  clustering::Dendrogram empty;
  EXPECT_EQ(clustering::to_newick(empty), ";");
  clustering::Dendrogram single;
  single.n_leaves = 1;
  EXPECT_EQ(clustering::to_newick(single), "0;");
}

}  // namespace
}  // namespace fedclust
