// obs::report — golden-input coverage for the run-report builder, its
// deterministic serializations, the from_json round-trip, and the
// --compare regression gate. The fixtures are hand-written journal /
// metrics / trace text with aggregates small enough to verify by eye.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "obs/json.h"
#include "obs/report.h"

namespace fedclust::obs {
namespace {

// Two rounds, three clients. Client 1 straggles and retransmits in round
// 0; client 2 is dropped in round 0, then corrupted and quarantined in
// round 1; client 0 crashes post-train in round 1.
const char* kJournal =
    "{\"journal\":1,\"codec\":\"qint8\"}\n"
    "{\"round\":0,\"client\":0,\"ev\":\"sampled\"}\n"
    "{\"round\":0,\"client\":0,\"ev\":\"cluster\",\"cluster\":0}\n"
    "{\"round\":0,\"client\":0,\"ev\":\"download\",\"payload_bytes\":400,"
    "\"wire_bytes\":144}\n"
    "{\"round\":0,\"client\":0,\"ev\":\"train\",\"train_us\":1000}\n"
    "{\"round\":0,\"client\":0,\"ev\":\"upload\",\"payload_bytes\":400,"
    "\"wire_bytes\":144}\n"
    "{\"round\":0,\"client\":0,\"ev\":\"delivered\"}\n"
    "{\"round\":0,\"client\":0,\"ev\":\"eval\",\"acc_micro\":600000}\n"
    "{\"round\":0,\"client\":1,\"ev\":\"sampled\"}\n"
    "{\"round\":0,\"client\":1,\"ev\":\"cluster\",\"cluster\":1}\n"
    "{\"round\":0,\"client\":1,\"ev\":\"download\",\"payload_bytes\":400,"
    "\"wire_bytes\":144}\n"
    "{\"round\":0,\"client\":1,\"ev\":\"train\",\"train_us\":3000}\n"
    "{\"round\":0,\"client\":1,\"ev\":\"straggler\",\"delay_milli\":1500}\n"
    "{\"round\":0,\"client\":1,\"ev\":\"retry\",\"retries\":2}\n"
    "{\"round\":0,\"client\":1,\"ev\":\"upload\",\"payload_bytes\":1200,"
    "\"wire_bytes\":432}\n"
    "{\"round\":0,\"client\":1,\"ev\":\"delivered\"}\n"
    "{\"round\":0,\"client\":1,\"ev\":\"eval\",\"acc_micro\":400000}\n"
    "{\"round\":0,\"client\":2,\"ev\":\"dropped\"}\n"
    "{\"round\":1,\"client\":0,\"ev\":\"sampled\"}\n"
    "{\"round\":1,\"client\":0,\"ev\":\"download\",\"payload_bytes\":400,"
    "\"wire_bytes\":144}\n"
    "{\"round\":1,\"client\":0,\"ev\":\"train\",\"train_us\":2000}\n"
    "{\"round\":1,\"client\":0,\"ev\":\"crash\"}\n"
    "{\"round\":1,\"client\":0,\"ev\":\"eval\",\"acc_micro\":700000}\n"
    "{\"round\":1,\"client\":2,\"ev\":\"sampled\"}\n"
    "{\"round\":1,\"client\":2,\"ev\":\"cluster\",\"cluster\":1}\n"
    "{\"round\":1,\"client\":2,\"ev\":\"download\",\"payload_bytes\":400,"
    "\"wire_bytes\":144}\n"
    "{\"round\":1,\"client\":2,\"ev\":\"train\",\"train_us\":1500}\n"
    "{\"round\":1,\"client\":2,\"ev\":\"upload\",\"payload_bytes\":400,"
    "\"wire_bytes\":144}\n"
    "{\"round\":1,\"client\":2,\"ev\":\"corrupt\",\"mode\":\"nan\"}\n"
    "{\"round\":1,\"client\":2,\"ev\":\"quarantine\",\"reason\":"
    "\"non_finite\"}\n"
    "{\"round\":1,\"client\":2,\"ev\":\"eval\",\"acc_micro\":500000}\n";

const char* kMetrics =
    "{\"event\":\"run_start\",\"method\":\"FedClust\"}\n"
    "{\"round\":0,\"acc\":0.41,\"round_seconds\":1.5}\n"
    "{\"round\":1,\"acc\":0.52,\"round_seconds\":1.25}\n";

const char* kTrace =
    "{\"traceEvents\":["
    "{\"name\":\"client.train\",\"ph\":\"X\",\"ts\":0,\"dur\":1000},"
    "{\"name\":\"client.train\",\"ph\":\"X\",\"ts\":10,\"dur\":2000},"
    "{\"name\":\"wire.encode\",\"ph\":\"X\",\"ts\":5,\"dur\":500},"
    "{\"name\":\"process_name\",\"ph\":\"M\"}"
    "]}";

TEST(Report, BuildAggregatesTheJournal) {
  const report::RunReport r = report::build_report(kJournal, "", "");
  EXPECT_EQ(r.codec, "qint8");
  EXPECT_EQ(r.rounds, 2u);
  EXPECT_EQ(r.sampled_total, 4u);
  EXPECT_EQ(r.delivered_total, 2u);
  EXPECT_EQ(r.upload_payload_bytes, 2000u);
  EXPECT_EQ(r.upload_wire_bytes, 720u);
  EXPECT_EQ(r.download_payload_bytes, 1600u);
  EXPECT_EQ(r.download_wire_bytes, 576u);
  EXPECT_EQ(r.train_us_total, 7500u);

  ASSERT_EQ(r.per_round.size(), 2u);
  EXPECT_EQ(r.per_round[0].sampled, 2u);
  EXPECT_EQ(r.per_round[0].delivered, 2u);
  EXPECT_EQ(r.per_round[0].train_us_total, 4000u);
  EXPECT_EQ(r.per_round[0].train_us_max, 3000u);
  EXPECT_EQ(r.per_round[0].critical_client, 1);
  EXPECT_EQ(r.per_round[0].upload_wire_bytes, 576u);
  EXPECT_EQ(r.per_round[1].delivered, 0u);
  EXPECT_EQ(r.per_round[1].critical_client, 0);

  EXPECT_EQ(r.faults.dropped, 1u);
  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_EQ(r.faults.stragglers, 1u);
  EXPECT_EQ(r.faults.retries, 2u);
  EXPECT_EQ(r.faults.corrupt, 1u);
  EXPECT_EQ(r.faults.quarantined, 1u);
  EXPECT_EQ(r.faults.comm_failed, 0u);

  // No metrics file: final_acc falls back to the mean last-eval accuracy
  // (0.7 + 0.4 + 0.5) / 3.
  EXPECT_NEAR(r.final_acc, 1.6 / 3.0, 1e-9);

  // Straggler ranking: client 1 (one event) first, then client 0 over
  // client 2 on train_us_max (2000 vs 1500).
  ASSERT_EQ(r.stragglers.size(), 3u);
  EXPECT_EQ(r.stragglers[0].client, 1u);
  EXPECT_EQ(r.stragglers[0].max_delay_milli, 1500u);
  EXPECT_EQ(r.stragglers[1].client, 0u);
  EXPECT_EQ(r.stragglers[2].client, 2u);

  ASSERT_EQ(r.clusters.size(), 2u);
  EXPECT_EQ(r.clusters[0].cluster, 0u);
  EXPECT_EQ(r.clusters[0].clients, 1u);
  EXPECT_NEAR(r.clusters[0].mean_acc, 0.7, 1e-9);
  EXPECT_EQ(r.clusters[1].cluster, 1u);
  EXPECT_EQ(r.clusters[1].clients, 2u);
  EXPECT_NEAR(r.clusters[1].mean_acc, 0.45, 1e-9);
  EXPECT_EQ(r.clusters[1].upload_wire_bytes, 576u);
}

TEST(Report, TopKBoundsTheStragglerTable) {
  const report::RunReport r = report::build_report(kJournal, "", "", 1);
  ASSERT_EQ(r.stragglers.size(), 1u);
  EXPECT_EQ(r.stragglers[0].client, 1u);
}

TEST(Report, MetricsOverrideFinalAccAndFillRounds) {
  const report::RunReport r = report::build_report(kJournal, kMetrics, "");
  EXPECT_NEAR(r.final_acc, 0.52, 1e-9);
  ASSERT_EQ(r.per_round.size(), 2u);
  EXPECT_NEAR(r.per_round[0].acc, 0.41, 1e-9);
  EXPECT_NEAR(r.per_round[0].round_seconds, 1.5, 1e-9);
  EXPECT_NEAR(r.per_round[1].acc, 0.52, 1e-9);
}

TEST(Report, TraceBecomesPhaseBreakdown) {
  const report::RunReport r = report::build_report(kJournal, "", kTrace);
  ASSERT_EQ(r.phases.size(), 2u);  // the ph:"M" metadata event is skipped
  EXPECT_EQ(r.phases[0].name, "client.train");
  EXPECT_EQ(r.phases[0].count, 2u);
  EXPECT_EQ(r.phases[0].total_us, 3000u);
  EXPECT_EQ(r.phases[1].name, "wire.encode");
  EXPECT_EQ(r.phases[1].total_us, 500u);
}

TEST(Report, JsonIsDeterministicAndParseable) {
  const report::RunReport r =
      report::build_report(kJournal, kMetrics, kTrace);
  const std::string a = report::to_json(r);
  const std::string b = report::to_json(r);
  EXPECT_EQ(a, b);
  const json::Value doc = json::parse(a);
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.number_or("rounds", -1.0), 2.0);
  EXPECT_EQ(doc.string_or("codec", ""), "qint8");
  const json::Value* totals = doc.find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_DOUBLE_EQ(totals->number_or("upload_wire_bytes", -1.0), 720.0);
  const json::Value* per_round = doc.find("per_round");
  ASSERT_NE(per_round, nullptr);
  EXPECT_EQ(per_round->array.size(), 2u);
}

TEST(Report, MarkdownNamesTheSections) {
  const report::RunReport r =
      report::build_report(kJournal, kMetrics, kTrace);
  const std::string md = report::to_markdown(r);
  EXPECT_NE(md.find("# fedclust run report"), std::string::npos);
  EXPECT_NE(md.find("## Per-round"), std::string::npos);
  EXPECT_NE(md.find("## Top straggler clients"), std::string::npos);
  EXPECT_NE(md.find("## Clusters"), std::string::npos);
  EXPECT_NE(md.find("## Faults"), std::string::npos);
  EXPECT_NE(md.find("## Phase breakdown"), std::string::npos);
  EXPECT_NE(md.find("`client.train`"), std::string::npos);
}

TEST(Report, FromJsonRoundTripsTheCompareFields) {
  const report::RunReport r =
      report::build_report(kJournal, kMetrics, kTrace);
  const report::RunReport back = report::from_json(report::to_json(r));
  EXPECT_EQ(back.codec, r.codec);
  EXPECT_EQ(back.rounds, r.rounds);
  EXPECT_NEAR(back.final_acc, r.final_acc, 1e-9);
  EXPECT_EQ(back.upload_wire_bytes, r.upload_wire_bytes);
  EXPECT_EQ(back.download_wire_bytes, r.download_wire_bytes);
  EXPECT_EQ(back.train_us_total, r.train_us_total);
  EXPECT_EQ(back.faults.quarantined, r.faults.quarantined);
}

TEST(Report, ClusteringSummaryCollectsPartitionAndLandmarkCounters) {
  const std::string metrics =
      std::string(kMetrics) +
      "{\"round\":1,\"cluster.landmark.count\":16,"
      "\"cluster.landmark.clusters\":3,\"cluster.landmark.batches\":2,"
      "\"cluster.landmark.assigned\":84}\n";
  const report::RunReport r = report::build_report(kJournal, metrics, "");
  EXPECT_EQ(r.clustering.landmarks, 16u);
  EXPECT_EQ(r.clustering.clusters, 3u);
  EXPECT_EQ(r.clustering.assign_batches, 2u);
  EXPECT_EQ(r.clustering.assigned, 84u);
  // The journal's cluster rows become the (client, cluster) partition,
  // sorted by client.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> want = {
      {0, 0}, {1, 1}, {2, 1}};
  EXPECT_EQ(r.clustering.assignment, want);

  const std::string md = report::to_markdown(r);
  EXPECT_NE(md.find("## Clustering"), std::string::npos);
  EXPECT_NE(md.find("16 landmarks"), std::string::npos);

  const report::RunReport back = report::from_json(report::to_json(r));
  EXPECT_EQ(back.clustering.landmarks, 16u);
  EXPECT_EQ(back.clustering.assignment, want);
}

TEST(Compare, PartitionAgreementIsLabelInvariantAri) {
  report::RunReport a;
  a.clustering.assignment = {{0, 0}, {1, 0}, {2, 1}, {3, 1}};
  report::RunReport b;
  // Same partition under renamed cluster ids, plus a client only b knows
  // about (ignored: agreement runs over the intersection).
  b.clustering.assignment = {{0, 7}, {1, 7}, {2, 3}, {3, 3}, {9, 7}};
  double ari = -2.0;
  ASSERT_TRUE(report::partition_agreement(a, b, &ari));
  EXPECT_DOUBLE_EQ(ari, 1.0);

  // Split one pair apart: agreement drops below 1.
  b.clustering.assignment = {{0, 7}, {1, 3}, {2, 3}, {3, 3}};
  ASSERT_TRUE(report::partition_agreement(a, b, &ari));
  EXPECT_LT(ari, 1.0);

  // Fewer than two common clients: undefined.
  report::RunReport c;
  c.clustering.assignment = {{0, 0}};
  EXPECT_FALSE(report::partition_agreement(a, c, &ari));
  EXPECT_FALSE(report::partition_agreement(report::RunReport{}, a, &ari));
}

TEST(Compare, SelfCompareIsClean) {
  const report::RunReport r =
      report::build_report(kJournal, kMetrics, kTrace);
  EXPECT_TRUE(report::compare(r, r, report::CompareThresholds{}).empty());
}

TEST(Compare, FlagsSeededRegressions) {
  const report::RunReport baseline =
      report::build_report(kJournal, kMetrics, kTrace);
  report::RunReport current = report::from_json(report::to_json(baseline));
  current.final_acc = baseline.final_acc - 0.10;    // > 0.02 tolerance
  current.upload_wire_bytes = baseline.upload_wire_bytes * 2;  // > 10%
  current.train_us_total = baseline.train_us_total * 3;        // > 50%
  const auto regs =
      report::compare(current, baseline, report::CompareThresholds{});
  ASSERT_EQ(regs.size(), 3u);
  EXPECT_EQ(regs[0].metric, "final_acc");
  EXPECT_EQ(regs[1].metric, "wire_bytes");
  EXPECT_EQ(regs[2].metric, "train_us");
  for (const auto& reg : regs) EXPECT_FALSE(reg.detail.empty());
}

TEST(Compare, WithinToleranceIsNotARegression) {
  const report::RunReport baseline =
      report::build_report(kJournal, kMetrics, kTrace);
  report::RunReport current = report::from_json(report::to_json(baseline));
  current.final_acc = baseline.final_acc - 0.01;
  current.upload_wire_bytes =
      baseline.upload_wire_bytes + baseline.upload_wire_bytes / 20;
  EXPECT_TRUE(
      report::compare(current, baseline, report::CompareThresholds{})
          .empty());
}

TEST(Compare, MissingBaselineDataIsSkippedNotFlagged) {
  report::RunReport current;
  current.final_acc = 0.1;
  current.upload_wire_bytes = 1000000;
  current.train_us_total = 1000000;
  report::RunReport empty;  // final_acc -1, zero byte/time totals
  EXPECT_TRUE(
      report::compare(current, empty, report::CompareThresholds{}).empty());
}

TEST(Report, MalformedInputsThrow) {
  EXPECT_THROW(report::build_report("{not json\n", "", ""),
               std::runtime_error);
  EXPECT_THROW(report::build_report(kJournal, "", "{\"noTraceEvents\":1}"),
               std::runtime_error);
  EXPECT_THROW(report::from_json("[1,2,3]"), std::runtime_error);
}

TEST(Json, ParsesEscapesAndNesting) {
  const json::Value v = json::parse(
      "{\"s\":\"a\\\"b\\\\c\\n\\u0041\",\"arr\":[1,2.5,-3e2,true,null],"
      "\"o\":{\"k\":{}}}");
  EXPECT_EQ(v.string_or("s", ""), "a\"b\\c\nA");
  const json::Value* arr = v.find("arr");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->array.size(), 5u);
  EXPECT_DOUBLE_EQ(arr->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(arr->array[2].number, -300.0);
  EXPECT_TRUE(arr->array[3].boolean);
  EXPECT_TRUE(arr->array[4].is_null());
  EXPECT_THROW(json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\":}"), std::runtime_error);
}

TEST(Json, ParseLinesSkipsBlankLinesAndReportsTheBadOne) {
  const auto lines = json::parse_lines("{\"a\":1}\n\n{\"b\":2}\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_DOUBLE_EQ(lines[1].number_or("b", -1.0), 2.0);
  EXPECT_THROW(json::parse_lines("{\"a\":1}\nnope\n"), std::runtime_error);
}

}  // namespace
}  // namespace fedclust::obs
