// FL framework tests: communication accounting, the simulated client, the
// federation substrate, and the shared aggregation helpers.

#include <gtest/gtest.h>

#include <set>

#include "fl/client.h"
#include "fl/comm.h"
#include "fl/federation.h"
#include "nn/loss.h"

namespace fedclust::fl {
namespace {

// Small, fast experiment shape shared by these tests.
ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("fmnist");
  cfg.data_spec.hw = 8;
  cfg.fed.n_clients = 10;
  cfg.fed.train_per_client = 16;
  cfg.fed.test_per_client = 8;
  cfg.fed.partition = "skew";
  cfg.fed.skew_fraction = 0.2;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 1;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 8;
  cfg.local.lr = 0.05f;
  cfg.rounds = 3;
  cfg.sample_fraction = 0.3;
  cfg.seed = 7;
  return cfg;
}

// ------------------------------------------------------------------ comm

TEST(Comm, TracksBytesAndMb) {
  CommTracker t;
  t.upload_envelope(100, wire::encoded_size(t.codec(), 100));
  t.download_envelope(50, wire::encoded_size(t.codec(), 50));
  EXPECT_EQ(t.bytes_up(), 400u);
  EXPECT_EQ(t.bytes_down(), 200u);
  EXPECT_EQ(t.bytes_total(), 600u);
  EXPECT_DOUBLE_EQ(t.total_mb(), 600.0 * 8.0 / 1e6);
  t.reset();
  EXPECT_EQ(t.bytes_total(), 0u);
}

// ---------------------------------------------------------------- client

data::Dataset blob_dataset(std::size_t n, std::uint64_t seed) {
  // 1x4x4 images; class = sign pattern, linearly separable.
  data::Dataset ds(1, 4, 2);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t y = static_cast<std::int64_t>(i % 2);
    std::vector<float> img(16);
    for (auto& v : img) {
      v = rng.normalf(y == 0 ? 1.0f : -1.0f, 0.3f);
    }
    ds.add(std::move(img), y);
  }
  return ds;
}

TEST(SimClientTest, RejectsEmptyTraining) {
  EXPECT_THROW(SimClient(0, data::Dataset(1, 4, 2), blob_dataset(4, 1)),
               std::invalid_argument);
}

TEST(SimClientTest, LocalSteps) {
  SimClient c(0, blob_dataset(10, 1), blob_dataset(4, 2));
  LocalTrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 4;
  EXPECT_EQ(c.local_steps(opts), 9u);  // ceil(10/4)=3 batches * 3 epochs
  opts.batch_size = 10;
  EXPECT_EQ(c.local_steps(opts), 3u);
}

TEST(SimClientTest, TrainingReducesLossAndLiftsAccuracy) {
  SimClient c(0, blob_dataset(32, 3), blob_dataset(16, 4));
  nn::Model m = nn::mlp(16, {8}, 2, 5);
  const float loss_before = c.train_loss(m);
  const double acc_before = c.evaluate(m);
  LocalTrainOptions opts;
  opts.epochs = 10;
  opts.batch_size = 8;
  opts.lr = 0.1f;
  opts.momentum = 0.9f;
  c.train(m, opts, util::Rng(1));
  EXPECT_LT(c.train_loss(m), 0.5f * loss_before);
  EXPECT_GT(c.evaluate(m), std::max(acc_before, 0.9));
}

TEST(SimClientTest, TrainIsDeterministicInRng) {
  SimClient c(0, blob_dataset(16, 3), blob_dataset(8, 4));
  LocalTrainOptions opts;
  opts.epochs = 2;
  nn::Model a = nn::mlp(16, {8}, 2, 5);
  nn::Model b = nn::mlp(16, {8}, 2, 5);
  c.train(a, opts, util::Rng(42));
  c.train(b, opts, util::Rng(42));
  EXPECT_EQ(a.flat_params(), b.flat_params());
}

TEST(SimClientTest, ProxReferenceKeepsModelCloser) {
  SimClient c(0, blob_dataset(32, 3), blob_dataset(8, 4));
  LocalTrainOptions opts;
  opts.epochs = 5;
  opts.lr = 0.1f;
  opts.prox_mu = 1.0f;

  nn::Model free_model = nn::mlp(16, {8}, 2, 5);
  const std::vector<float> start = free_model.flat_params();
  c.train(free_model, opts, util::Rng(1));  // no prox ref passed: plain SGD
  nn::Model prox_model = nn::mlp(16, {8}, 2, 5);
  c.train(prox_model, opts, util::Rng(1), &start);

  const auto dist = [&start](const nn::Model& m) {
    double s = 0.0;
    const auto w = m.flat_params();
    for (std::size_t i = 0; i < w.size(); ++i) {
      s += (w[i] - start[i]) * (w[i] - start[i]);
    }
    return s;
  };
  EXPECT_LT(dist(prox_model), dist(free_model));
}

// ------------------------------------------------------ weighted average

TEST(WeightedAverage, Basic) {
  const std::vector<float> a = {0.0f, 2.0f};
  const std::vector<float> b = {4.0f, 6.0f};
  const auto avg = weighted_average({{&a, 1.0}, {&b, 3.0}});
  EXPECT_FLOAT_EQ(avg[0], 3.0f);
  EXPECT_FLOAT_EQ(avg[1], 5.0f);
}

TEST(WeightedAverage, SingleEntryIsIdentity) {
  const std::vector<float> a = {1.5f, -2.0f};
  EXPECT_EQ(weighted_average({{&a, 7.0}}), a);
}

TEST(WeightedAverage, Validation) {
  const std::vector<float> a = {1.0f};
  const std::vector<float> b = {1.0f, 2.0f};
  EXPECT_THROW(weighted_average({}), std::invalid_argument);
  EXPECT_THROW(weighted_average({{&a, 1.0}, {&b, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(weighted_average({{&a, -1.0}}), std::invalid_argument);
  EXPECT_THROW(weighted_average({{&a, 0.0}}), std::invalid_argument);
}

// ------------------------------------------------------------ federation

TEST(FederationTest, BuildsClientsFromConfig) {
  Federation fed(tiny_config());
  EXPECT_EQ(fed.n_clients(), 10u);
  EXPECT_EQ(fed.client(3)->id(), 3u);
  EXPECT_EQ(fed.client(3)->n_train(), 16u);
  EXPECT_GT(fed.model_size(), 0u);
  EXPECT_EQ(fed.init_params().size(), fed.model_size());
}

TEST(FederationTest, SamplingIsDeterministicAndSized) {
  Federation fed(tiny_config());
  const auto s1 = fed.sample_round(5);
  const auto s2 = fed.sample_round(5);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), 3u);  // 30% of 10
  const std::set<std::size_t> uniq(s1.begin(), s1.end());
  EXPECT_EQ(uniq.size(), s1.size());
  EXPECT_NE(fed.sample_round(6), s1);  // overwhelmingly likely
}

TEST(FederationTest, SampleAtLeastOne) {
  ExperimentConfig cfg = tiny_config();
  cfg.sample_fraction = 0.001;
  Federation fed(cfg);
  EXPECT_EQ(fed.sample_round(0).size(), 1u);
}

TEST(FederationTest, InitParamsSharedAcrossConstructions) {
  const ExperimentConfig cfg = tiny_config();
  Federation a(cfg);
  Federation b(cfg);
  EXPECT_EQ(a.init_params(), b.init_params());
}

TEST(FederationTest, MakeModelSaltsDiffer) {
  Federation fed(tiny_config());
  EXPECT_NE(fed.make_model(1).flat_params(), fed.make_model(2).flat_params());
  EXPECT_EQ(fed.make_model(1).flat_params(), fed.make_model(1).flat_params());
}

TEST(FederationTest, AverageLocalAccuracyBounds) {
  Federation fed(tiny_config());
  const std::vector<float> params = fed.init_params();
  const double acc = fed.average_local_accuracy(
      [&params](std::size_t) -> const std::vector<float>& { return params; });
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(FederationTest, AccuracyDistributionMatchesMean) {
  Federation fed(tiny_config());
  const std::vector<float> params = fed.init_params();
  const auto get = [&params](std::size_t) -> const std::vector<float>& {
    return params;
  };
  const auto dist = fed.local_accuracy_distribution(get);
  ASSERT_EQ(dist.size(), fed.n_clients());
  double sum = 0.0;
  for (const double a : dist) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
    sum += a;
  }
  EXPECT_NEAR(sum / static_cast<double>(dist.size()),
              fed.average_local_accuracy(get), 1e-12);
}

TEST(FederationTest, TrainRngStreamsDiffer) {
  Federation fed(tiny_config());
  EXPECT_NE(fed.train_rng(1, 2).next_u64(), fed.train_rng(2, 1).next_u64());
  EXPECT_EQ(fed.train_rng(1, 2).next_u64(), fed.train_rng(1, 2).next_u64());
}

}  // namespace
}  // namespace fedclust::fl
