// EventJournal behavior: recording/flushing mechanics, and the
// determinism contract — with the wall clock off, a journaled run under a
// fault plan writes a bit-identical JSONL file at any FEDCLUST_THREADS
// (flush sorts rows into a canonical order, and no other field depends on
// scheduling).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/registry.h"
#include "fl/federation.h"
#include "obs/journal.h"
#include "obs/json.h"
#include "util/thread_pool.h"

namespace fedclust {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

fl::ExperimentConfig journal_cfg() {
  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("svhn");
  cfg.data_spec.hw = 8;
  cfg.fed.n_clients = 12;
  cfg.fed.train_per_client = 12;
  cfg.fed.test_per_client = 6;
  cfg.fed.partition = "dirichlet";
  cfg.fed.dirichlet_alpha = 0.3;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 3;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 6;
  cfg.local.lr = 0.05f;
  cfg.rounds = 4;
  cfg.sample_fraction = 0.5;
  cfg.seed = 7;
  // Every fault class fires at least occasionally, so the determinism
  // claim covers the fault-outcome rows too.
  cfg.fault = fl::FaultPlan::parse(
      "dropout=0.1,crash=0.1,straggle=0.3,delay=3,comm=0.2,corrupt=0.2,"
      "deadline=6,retries=2");
  return cfg;
}

class JournalRun : public ::testing::Test {
 protected:
  void SetUp() override { prev_threads_ = util::global_pool().size() + 1; }
  void TearDown() override {
    obs::EventJournal::instance().close();
    obs::EventJournal::instance().set_wall_clock(true);
    util::reset_global_pool(prev_threads_);
  }

  std::string run_journaled(std::size_t threads, const std::string& path) {
    util::reset_global_pool(threads);
    auto& journal = obs::EventJournal::instance();
    journal.set_wall_clock(false);  // zero the one wall-clock field
    journal.open(path);
    journal.set_codec_name("raw_f32");
    fl::Federation fed(journal_cfg());
    core::make_algorithm("FedClust", fed)->run();
    journal.close();
    return read_file(path);
  }

 private:
  std::size_t prev_threads_ = 1;
};

TEST_F(JournalRun, FileIsBitIdenticalAcrossThreadCounts) {
  const std::string p1 = ::testing::TempDir() + "journal_t1.jsonl";
  const std::string p4 = ::testing::TempDir() + "journal_t4.jsonl";
  const std::string a = run_journaled(1, p1);
  const std::string b = run_journaled(4, p4);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "journal JSONL differs between 1 and 4 threads";
  std::remove(p1.c_str());
  std::remove(p4.c_str());
}

TEST_F(JournalRun, FileParsesAndCoversTheLifecycle) {
  const std::string path = ::testing::TempDir() + "journal_parse.jsonl";
  const std::string text = run_journaled(2, path);
  const auto lines = obs::json::parse_lines(text);
  ASSERT_GT(lines.size(), 1u);
  EXPECT_DOUBLE_EQ(lines.front().number_or("journal", 0.0), 1.0);
  EXPECT_EQ(lines.front().string_or("codec", ""), "raw_f32");
  std::size_t sampled = 0, trained = 0, uploads = 0, clusters = 0,
              evals = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto& row = lines[i];
    ASSERT_NE(row.find("round"), nullptr);
    ASSERT_NE(row.find("client"), nullptr);
    const std::string ev = row.string_or("ev", "");
    ASSERT_FALSE(ev.empty());
    if (ev == "sampled") ++sampled;
    if (ev == "train") {
      ++trained;
      // Wall clock was off for this run, so the field must be zero.
      EXPECT_DOUBLE_EQ(row.number_or("train_us", -1.0), 0.0);
    }
    if (ev == "upload") {
      ++uploads;
      EXPECT_GT(row.number_or("wire_bytes", 0.0),
                row.number_or("payload_bytes", 0.0) > 0.0 ? 0.0 : -1.0);
    }
    if (ev == "cluster") ++clusters;
    if (ev == "eval") ++evals;
  }
  EXPECT_GT(sampled, 0u);
  EXPECT_GT(trained, 0u);
  EXPECT_GT(uploads, 0u);
  EXPECT_GT(clusters, 0u);  // FedClust journals cluster assignments
  EXPECT_GT(evals, 0u);
  std::remove(path.c_str());
}

TEST(JournalUnit, DisabledRecordIsANoOp) {
  auto& journal = obs::EventJournal::instance();
  ASSERT_FALSE(obs::EventJournal::enabled());
  journal.record(1, 2, obs::JournalEvent::kSampled);
  OBS_JOURNAL(1, 2, kSampled);
  EXPECT_EQ(journal.buffered_rows(), 0u);
}

TEST(JournalUnit, FlushSortsRowsIntoCanonicalOrder) {
  const std::string path = ::testing::TempDir() + "journal_sort.jsonl";
  auto& journal = obs::EventJournal::instance();
  journal.open(path);
  // Recorded deliberately out of order.
  journal.record(2, 0, obs::JournalEvent::kSampled);
  journal.record(1, 5, obs::JournalEvent::kTrain, 42);
  journal.record(1, 3, obs::JournalEvent::kSampled);
  EXPECT_EQ(journal.buffered_rows(), 3u);
  journal.close();
  const auto lines = obs::json::parse_lines(read_file(path));
  ASSERT_EQ(lines.size(), 4u);  // header + 3 rows
  EXPECT_DOUBLE_EQ(lines[1].number_or("round", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(lines[1].number_or("client", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(lines[2].number_or("client", -1.0), 5.0);
  EXPECT_EQ(lines[2].string_or("ev", ""), "train");
  EXPECT_DOUBLE_EQ(lines[2].number_or("train_us", -1.0), 42.0);
  EXPECT_DOUBLE_EQ(lines[3].number_or("round", -1.0), 2.0);
  std::remove(path.c_str());
}

TEST(JournalUnit, RoundContextGatesEvalRows) {
  const std::string path = ::testing::TempDir() + "journal_ctx.jsonl";
  auto& journal = obs::EventJournal::instance();
  journal.open(path);
  // No context set: the row is dropped, not misattributed.
  journal.record_in_context(4, obs::JournalEvent::kEval, 500000);
  EXPECT_EQ(journal.buffered_rows(), 0u);
  journal.set_round_context(9);
  journal.record_in_context(4, obs::JournalEvent::kEval, 500000);
  journal.clear_round_context();
  journal.record_in_context(4, obs::JournalEvent::kEval, 250000);
  EXPECT_EQ(journal.buffered_rows(), 1u);
  journal.close();
  const auto lines = obs::json::parse_lines(read_file(path));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_DOUBLE_EQ(lines[1].number_or("round", -1.0), 9.0);
  EXPECT_DOUBLE_EQ(lines[1].number_or("acc_micro", -1.0), 500000.0);
  std::remove(path.c_str());
}

TEST(JournalUnit, OpenThrowsNamingThePath) {
  try {
    obs::EventJournal::instance().open("/nonexistent-dir-journal/j.jsonl");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent-dir-journal/j.jsonl"),
              std::string::npos);
  }
  EXPECT_FALSE(obs::EventJournal::enabled());
}

}  // namespace
}  // namespace fedclust
