#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace fedclust::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsPureFunctionOfSeedAndStream) {
  Rng root(7);
  Rng s1 = root.split(3);
  // Advancing the root must not change what split(3) yields.
  root.next_u64();
  root.next_u64();
  Rng s2 = root.split(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(s1.next_u64(), s2.next_u64());
}

TEST(Rng, SplitStreamsAreDistinct) {
  Rng root(7);
  Rng a = root.split(0);
  Rng b = root.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 4.0);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 4.0);
  }
}

TEST(Rng, RandintCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.randint(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LT(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all of -3..4 hit
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, GammaMeanMatchesShape) {
  Rng rng(9);
  for (const double shape : {0.3, 1.0, 2.5, 7.0}) {
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.gamma(shape);
    EXPECT_NEAR(sum / n, shape, 0.08 * shape + 0.02) << "shape=" << shape;
  }
}

TEST(Rng, GammaRejectsNonPositiveShape) {
  Rng rng(1);
  EXPECT_THROW(rng.gamma(0.0), std::invalid_argument);
  EXPECT_THROW(rng.gamma(-1.0), std::invalid_argument);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(13);
  for (const double alpha : {0.1, 0.5, 1.0, 10.0}) {
    const auto p = rng.dirichlet(alpha, 10);
    ASSERT_EQ(p.size(), 10u);
    double sum = 0.0;
    for (const double pi : p) {
      EXPECT_GE(pi, 0.0);
      sum += pi;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Rng, DirichletLowAlphaIsPeaked) {
  Rng rng(13);
  // With alpha = 0.05 the draw should concentrate on few categories.
  double max_avg = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto p = rng.dirichlet(0.05, 10);
    max_avg += *std::max_element(p.begin(), p.end());
  }
  EXPECT_GT(max_avg / trials, 0.6);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(17);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({1.0, -0.5}), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  const auto s = rng.sample_without_replacement(100, 10);
  ASSERT_EQ(s.size(), 10u);
  const std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (const auto i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(23);
  const auto s = rng.sample_without_replacement(5, 5);
  const std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(23);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

// Property sweep: statistical sanity holds across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(RngSeedSweep, SampleWithoutReplacementIsUniformish) {
  Rng rng(GetParam());
  std::vector<int> hits(20, 0);
  for (int t = 0; t < 4000; ++t) {
    for (const auto i : rng.sample_without_replacement(20, 5)) {
      ++hits[i];
    }
  }
  // Each index expected 1000 times.
  for (const int h : hits) EXPECT_NEAR(h, 1000, 150);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1u, 7u, 42u, 12345u, 999999937u));

}  // namespace
}  // namespace fedclust::util
