#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fedclust::util {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(0, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
  pool.parallel_for(7, 3, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0u);  // no workers; caller does the work
  std::size_t sum = 0;
  pool.parallel_for(0, 100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ChunkedPartitionIsExact) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunked(10, 110, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LT(lo, hi);
    total.fetch_add(hi - lo);
    const std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  EXPECT_EQ(total.load(), 100u);
  // Chunks must tile [10, 110) without overlap.
  std::sort(chunks.begin(), chunks.end());
  std::size_t cursor = 10;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, cursor);
    cursor = hi;
  }
  EXPECT_EQ(cursor, 110u);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ExceptionOnCallerChunkPropagates) {
  ThreadPool pool(4);
  // Index 0 always lands on the calling thread's chunk.
  EXPECT_THROW(pool.parallel_for(0, 1000,
                                 [](std::size_t i) {
                                   if (i == 0) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(0, 10, [](std::size_t) {
      throw std::runtime_error("first");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(0, 50, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, GlobalPoolWorks) {
  std::atomic<std::size_t> total{0};
  parallel_for(0, 1000, [&](std::size_t i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 499500u);
}

TEST(ThreadPool, InParallelRegionReflectsChunkExecution) {
  ThreadPool pool(4);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
  std::atomic<int> inside{0};
  pool.parallel_for(0, 100, [&](std::size_t) {
    if (ThreadPool::in_parallel_region()) inside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 100);  // every index, workers and caller chunk
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

// Nested dispatch (GEMM's row split inside a client-parallel round) must run
// inline without deadlocking on the shared queue, and must still cover every
// index exactly once.
TEST(ThreadPool, NestedParallelForRunsInlineAndCoversEverything) {
  ThreadPool pool(4);
  const std::size_t outer_n = 8, inner_n = 64;
  std::vector<std::atomic<int>> hits(outer_n * inner_n);
  pool.parallel_for(0, outer_n, [&](std::size_t i) {
    pool.parallel_for(0, inner_n, [&](std::size_t j) {
      hits[i * inner_n + j].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, NestedChunkedArrivesAsOneInlineChunk) {
  ThreadPool pool(4);  // 3 workers + caller -> 4 outer chunks for n = 4
  std::atomic<int> inner_dispatches{0};
  pool.parallel_for_chunked(0, 4, [&](std::size_t, std::size_t) {
    pool.parallel_for_chunked(0, 100, [&](std::size_t lo, std::size_t hi) {
      // The inner body must see the whole range as a single chunk: no
      // re-entry into the task queue from inside a region.
      EXPECT_EQ(lo, 0u);
      EXPECT_EQ(hi, 100u);
      inner_dispatches.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_dispatches.load(), 4);
}

TEST(ThreadPool, ResetGlobalPoolChangesWorkerCount) {
  const std::size_t prev = global_pool().size() + 1;
  reset_global_pool(1);
  EXPECT_EQ(global_pool().size(), 0u);
  reset_global_pool(4);
  EXPECT_EQ(global_pool().size(), 3u);
  std::atomic<std::size_t> total{0};
  parallel_for(0, 1000, [&](std::size_t i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 499500u);
  reset_global_pool(prev);
}

class PoolSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolSizeSweep, SumIsDeterministicAcrossPoolSizes) {
  ThreadPool pool(GetParam());
  const std::size_t n = 5000;
  std::vector<double> out(n, 0.0);
  pool.parallel_for(0, n, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 0.5 * (n - 1) * n / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoolSizeSweep,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u));

}  // namespace
}  // namespace fedclust::util
