#include <gtest/gtest.h>

#include <cmath>

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "clustering/metrics.h"
#include "util/rng.h"

namespace fedclust::clustering {
namespace {

using tensor::Tensor;

// --------------------------------------------------------------- distance

TEST(Distance, L2Matrix) {
  const std::vector<std::vector<float>> v = {{0, 0}, {3, 4}, {0, 1}};
  const Tensor d = l2_distance_matrix(v);
  EXPECT_FLOAT_EQ(d.at({0, 1}), 5.0f);
  EXPECT_FLOAT_EQ(d.at({1, 0}), 5.0f);
  EXPECT_FLOAT_EQ(d.at({0, 2}), 1.0f);
  EXPECT_FLOAT_EQ(d.at({0, 0}), 0.0f);
  validate_distance_matrix(d);
}

TEST(Distance, CosineMatrix) {
  const std::vector<std::vector<float>> v = {{1, 0}, {0, 1}, {2, 0}};
  const Tensor d = cosine_distance_matrix(v);
  EXPECT_NEAR(d.at({0, 1}), 1.0f, 1e-6);
  EXPECT_NEAR(d.at({0, 2}), 0.0f, 1e-6);
}

TEST(Distance, ValidationCatchesBadMatrices) {
  Tensor asym({2, 2}, {0, 1, 2, 0});
  EXPECT_THROW(validate_distance_matrix(asym), std::invalid_argument);
  Tensor diag({2, 2}, {1, 0, 0, 0});
  EXPECT_THROW(validate_distance_matrix(diag), std::invalid_argument);
  Tensor neg({2, 2}, {0, -1, -1, 0});
  EXPECT_THROW(validate_distance_matrix(neg), std::invalid_argument);
  EXPECT_THROW(validate_distance_matrix(Tensor({2, 3})),
               std::invalid_argument);
}

// ---------------------------------------------------------------- linkage

TEST(Linkage, FromString) {
  EXPECT_EQ(linkage_from_string("single"), Linkage::kSingle);
  EXPECT_EQ(linkage_from_string("ward"), Linkage::kWard);
  EXPECT_THROW(linkage_from_string("centroid"), std::invalid_argument);
}

// ----------------------------------------------------------- hierarchical

// Four 1-D points in two obvious pairs: {0, 0.1} and {10, 10.1}.
Tensor two_pair_matrix() {
  const std::vector<std::vector<float>> v = {{0.0f}, {0.1f}, {10.0f},
                                             {10.1f}};
  return l2_distance_matrix(v);
}

TEST(Hierarchical, MergeOrderOnTwoPairs) {
  const Dendrogram d = agglomerative(two_pair_matrix(), Linkage::kAverage);
  EXPECT_EQ(d.n_leaves, 4u);
  ASSERT_EQ(d.merges.size(), 3u);
  // The two cheap merges come first, the expensive bridge last.
  EXPECT_NEAR(d.merges[0].distance, 0.1f, 1e-5);
  EXPECT_NEAR(d.merges[1].distance, 0.1f, 1e-5);
  EXPECT_GT(d.merges[2].distance, 5.0f);
}

TEST(Hierarchical, ThresholdCutSeparatesPairs) {
  const Dendrogram d = agglomerative(two_pair_matrix(), Linkage::kAverage);
  const auto labels = cut_by_threshold(d, 1.0f);
  EXPECT_EQ(num_clusters(labels), 2u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(Hierarchical, ThresholdExtremes) {
  const Dendrogram d = agglomerative(two_pair_matrix(), Linkage::kAverage);
  // λ below every merge distance: all singletons (pure personalization).
  EXPECT_EQ(num_clusters(cut_by_threshold(d, 0.01f)), 4u);
  // λ above every merge distance: one cluster (pure globalization).
  EXPECT_EQ(num_clusters(cut_by_threshold(d, 100.0f)), 1u);
}

TEST(Hierarchical, CutToK) {
  const Dendrogram d = agglomerative(two_pair_matrix(), Linkage::kAverage);
  EXPECT_EQ(num_clusters(cut_to_k(d, 1)), 1u);
  EXPECT_EQ(num_clusters(cut_to_k(d, 2)), 2u);
  EXPECT_EQ(num_clusters(cut_to_k(d, 3)), 3u);
  EXPECT_EQ(num_clusters(cut_to_k(d, 4)), 4u);
  EXPECT_EQ(num_clusters(cut_to_k(d, 99)), 4u);  // clamped
  const auto two = cut_to_k(d, 2);
  EXPECT_EQ(two[0], two[1]);
  EXPECT_NE(two[0], two[2]);
}

TEST(Hierarchical, TrivialInputs) {
  const Dendrogram d0 = agglomerative(Tensor({0, 0}));
  EXPECT_TRUE(d0.merges.empty());
  const Dendrogram d1 = agglomerative(Tensor({1, 1}));
  EXPECT_TRUE(d1.merges.empty());
  EXPECT_EQ(cut_by_threshold(d1, 1.0f), (std::vector<std::size_t>{0}));
}

TEST(Hierarchical, SingleVsCompleteOnChain) {
  // A chain 0-1-2-3 with unit gaps: single linkage chains everything at
  // distance 1, complete linkage does not.
  const std::vector<std::vector<float>> v = {{0.0f}, {1.0f}, {2.0f}, {3.0f}};
  const Tensor d = l2_distance_matrix(v);
  const auto single = cluster_by_threshold(d, 1.0f, Linkage::kSingle);
  EXPECT_EQ(num_clusters(single), 1u);
  const auto complete = cluster_by_threshold(d, 1.0f, Linkage::kComplete);
  EXPECT_GT(num_clusters(complete), 1u);
}

class LinkageSweep : public ::testing::TestWithParam<Linkage> {};

// Property: whatever the linkage, well-separated Gaussian blobs must be
// recovered exactly at a threshold between blob diameter and separation.
TEST_P(LinkageSweep, RecoversSeparatedBlobs) {
  util::Rng rng(17);
  const std::size_t per_blob = 12;
  std::vector<std::vector<float>> points;
  std::vector<std::size_t> truth;
  const float centers[3][2] = {{0, 0}, {30, 0}, {0, 30}};
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      points.push_back({centers[b][0] + rng.normalf(0, 0.5f),
                        centers[b][1] + rng.normalf(0, 0.5f)});
      truth.push_back(b);
    }
  }
  const Tensor d = l2_distance_matrix(points);
  const auto labels = cluster_by_threshold(d, 10.0f, GetParam());
  EXPECT_EQ(num_clusters(labels), 3u);
  EXPECT_DOUBLE_EQ(adjusted_rand_index(labels, truth), 1.0);
  // cut_to_k(3) must find the same partition.
  const auto by_k = cut_to_k(agglomerative(d, GetParam()), 3);
  EXPECT_DOUBLE_EQ(adjusted_rand_index(by_k, truth), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllLinkages, LinkageSweep,
                         ::testing::Values(Linkage::kSingle,
                                           Linkage::kComplete,
                                           Linkage::kAverage,
                                           Linkage::kWard));

// Monotonicity of merge distances for the reducible linkages.
class MonotoneSweep : public ::testing::TestWithParam<Linkage> {};

TEST_P(MonotoneSweep, MergeDistancesNondecreasing) {
  util::Rng rng(23);
  std::vector<std::vector<float>> points;
  for (int i = 0; i < 25; ++i) {
    points.push_back({rng.normalf(0, 5), rng.normalf(0, 5)});
  }
  const Dendrogram d =
      agglomerative(l2_distance_matrix(points), GetParam());
  for (std::size_t i = 1; i < d.merges.size(); ++i) {
    EXPECT_GE(d.merges[i].distance, d.merges[i - 1].distance - 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(ReducibleLinkages, MonotoneSweep,
                         ::testing::Values(Linkage::kSingle,
                                           Linkage::kComplete,
                                           Linkage::kAverage));

// ----------------------------------------------------------- gap threshold

TEST(GapThreshold, FindsTheNaturalCut) {
  // Two tight pairs far apart: merges at ~0.1, ~0.1, ~10 -> the widest gap
  // is between 0.1 and 10, so the threshold lands in (0.1, 10) and cuts the
  // data into the 2 natural clusters.
  const Dendrogram d = agglomerative(two_pair_matrix(), Linkage::kAverage);
  const float lambda = gap_threshold(d);
  EXPECT_GT(lambda, 0.2f);
  EXPECT_LT(lambda, 10.0f);
  EXPECT_EQ(num_clusters(cut_by_threshold(d, lambda)), 2u);
}

TEST(GapThreshold, RespectsClusterBounds) {
  const Dendrogram d = agglomerative(two_pair_matrix(), Linkage::kAverage);
  // Forcing at least 3 clusters must cut below the second cheap merge.
  const float lambda = gap_threshold(d, 3, 4);
  const auto k = num_clusters(cut_by_threshold(d, lambda));
  EXPECT_GE(k, 3u);
  EXPECT_LE(k, 4u);
}

TEST(GapThreshold, TrivialDendrograms) {
  EXPECT_EQ(gap_threshold(agglomerative(Tensor({1, 1}))), 0.0f);
  // Two points: a single merge, no gap to exploit -> threshold above it
  // (one cluster).
  const std::vector<std::vector<float>> v = {{0.0f}, {1.0f}};
  const Dendrogram d = agglomerative(l2_distance_matrix(v));
  const float lambda = gap_threshold(d);
  EXPECT_EQ(num_clusters(cut_by_threshold(d, lambda)), 1u);
}

TEST(GapThreshold, ThreeBlobsAutoRecovered) {
  util::Rng rng(31);
  std::vector<std::vector<float>> points;
  std::vector<std::size_t> truth;
  const float centers[3][2] = {{0, 0}, {50, 0}, {0, 50}};
  for (std::size_t b = 0; b < 3; ++b) {
    for (int i = 0; i < 10; ++i) {
      points.push_back({centers[b][0] + rng.normalf(0, 1.0f),
                        centers[b][1] + rng.normalf(0, 1.0f)});
      truth.push_back(b);
    }
  }
  const Dendrogram d =
      agglomerative(l2_distance_matrix(points), Linkage::kAverage);
  const auto labels = cut_by_threshold(d, gap_threshold(d));
  EXPECT_EQ(num_clusters(labels), 3u);
  EXPECT_DOUBLE_EQ(adjusted_rand_index(labels, truth), 1.0);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, AriPerfectAndLabelInvariant) {
  const std::vector<std::size_t> a = {0, 0, 1, 1, 2, 2};
  const std::vector<std::size_t> b = {5, 5, 9, 9, 7, 7};  // relabeled
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
}

TEST(Metrics, AriDisagreementIsLow) {
  const std::vector<std::size_t> a = {0, 0, 0, 1, 1, 1};
  const std::vector<std::size_t> b = {0, 1, 0, 1, 0, 1};
  EXPECT_LT(adjusted_rand_index(a, b), 0.2);
}

TEST(Metrics, AriHandlesTrivialPartitions) {
  const std::vector<std::size_t> all_same = {0, 0, 0};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(all_same, all_same), 1.0);
  EXPECT_THROW(adjusted_rand_index({}, {}), std::invalid_argument);
  EXPECT_THROW(adjusted_rand_index({0}, {0, 1}), std::invalid_argument);
}

TEST(Metrics, Purity) {
  const std::vector<std::size_t> pred = {0, 0, 0, 1, 1};
  const std::vector<std::size_t> truth = {0, 0, 1, 1, 1};
  // Cluster 0 majority=0 (2/3 right), cluster 1 majority=1 (2/2 right).
  EXPECT_DOUBLE_EQ(purity(pred, truth), 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(purity(truth, truth), 1.0);
  EXPECT_THROW(purity({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace fedclust::clustering
