// Tests for the bench harness: scale/env handling, config synthesis, the
// trace CSV cache round-trip, and the embedded paper reference tables.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "harness.h"
#include "table_common.h"

namespace fedclust::bench {
namespace {

struct EnvGuard {
  explicit EnvGuard(std::vector<const char*> names)
      : names_(std::move(names)) {
    for (const char* n : names_) ::unsetenv(n);
  }
  ~EnvGuard() {
    for (const char* n : names_) ::unsetenv(n);
  }
  std::vector<const char*> names_;
};

TEST(Harness, ScaleDefaultsAndOverrides) {
  EnvGuard guard({"FEDCLUST_BENCH_SCALE", "FEDCLUST_BENCH_ROUNDS",
                  "FEDCLUST_BENCH_SEEDS", "FEDCLUST_BENCH_CLIENTS",
                  "FEDCLUST_BENCH_TRAIN"});
  Scale q = get_scale();
  EXPECT_EQ(q.name, "quick");
  EXPECT_EQ(q.n_clients, 40u);

  ::setenv("FEDCLUST_BENCH_SCALE", "full", 1);
  Scale f = get_scale();
  EXPECT_EQ(f.n_clients, 100u);
  EXPECT_GT(f.rounds, q.rounds);

  ::setenv("FEDCLUST_BENCH_ROUNDS", "7", 1);
  ::setenv("FEDCLUST_BENCH_CLIENTS", "12", 1);
  Scale o = get_scale();
  EXPECT_EQ(o.rounds, 7u);
  EXPECT_EQ(o.n_clients, 12u);

  ::setenv("FEDCLUST_BENCH_SCALE", "huge", 1);
  EXPECT_THROW(get_scale(), std::runtime_error);
}

TEST(Harness, MakeConfigSettings) {
  EnvGuard guard({"FEDCLUST_BENCH_SCALE"});
  const Scale scale = get_scale();
  const auto skew20 = make_config("cifar10", "skew20", scale, 1);
  EXPECT_EQ(skew20.fed.partition, "skew");
  EXPECT_DOUBLE_EQ(skew20.fed.skew_fraction, 0.2);
  EXPECT_EQ(skew20.model.arch, "lenet5");

  const auto skew30 = make_config("svhn", "skew30", scale, 1);
  EXPECT_DOUBLE_EQ(skew30.fed.skew_fraction, 0.3);

  const auto dir = make_config("cifar100", "dir01", scale, 1);
  EXPECT_EQ(dir.fed.partition, "dirichlet");
  EXPECT_DOUBLE_EQ(dir.fed.dirichlet_alpha, 0.1);
  EXPECT_EQ(dir.model.arch, "resnet9");  // paper: ResNet-9 for CIFAR-100

  EXPECT_THROW(make_config("cifar10", "skew99", scale, 1),
               std::invalid_argument);
  // Clustered baselines all get a tuned cluster count.
  EXPECT_GT(skew20.algo.fedclust_k, 1u);
  EXPECT_GT(skew20.algo.pacfl_k, 1u);
}

TEST(Harness, TraceCsvRoundTrip) {
  fl::Trace t;
  t.method = "FedClust";
  t.dataset = "svhn";
  t.records = {{0, 0.25, 4000, 8000, 3}, {1, 0.5, 12000, 16000, 3}};
  const std::string path = ::testing::TempDir() + "/harness_trace.csv";
  t.save_csv(path);
  const auto loaded = load_trace_csv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->method, "FedClust");
  EXPECT_EQ(loaded->dataset, "svhn");
  ASSERT_EQ(loaded->records.size(), 2u);
  EXPECT_EQ(loaded->records[1].round, 1u);
  EXPECT_NEAR(loaded->records[1].avg_local_test_acc, 0.5, 1e-6);
  EXPECT_EQ(loaded->records[1].n_clusters, 3u);
  // Bytes survive the Mb round-trip to within float formatting.
  EXPECT_NEAR(static_cast<double>(loaded->records[1].bytes_up), 12000.0,
              200.0);
}

TEST(Harness, LoadTraceRejectsMissingOrMalformed) {
  EXPECT_FALSE(load_trace_csv("/nonexistent/trace.csv").has_value());
  const std::string path = ::testing::TempDir() + "/bad_trace.csv";
  {
    std::ofstream os(path);
    os << "method,dataset\nonly,two\n";
  }
  EXPECT_FALSE(load_trace_csv(path).has_value());
}

TEST(Harness, PaperTablesMatchSpotChecks) {
  // Values transcribed from the paper; spot-check each table.
  EXPECT_DOUBLE_EQ(paper_accuracy("skew20", "FedClust", "cifar10"), 95.82);
  EXPECT_DOUBLE_EQ(paper_accuracy("skew20", "Local", "fmnist"), 95.68);
  EXPECT_DOUBLE_EQ(paper_accuracy("skew30", "IFCA", "cifar100"), 66.21);
  EXPECT_DOUBLE_EQ(paper_accuracy("dir01", "FedClust", "fmnist"), 95.51);
  EXPECT_THROW(paper_accuracy("skew99", "FedAvg", "cifar10"),
               std::invalid_argument);
  EXPECT_LT(paper_accuracy("skew20", "SCAFFOLD", "cifar10"), 0.0);

  EXPECT_DOUBLE_EQ(paper_rounds_to_target("FedClust", "cifar10"), 13.0);
  EXPECT_LT(paper_rounds_to_target("FedAvg", "cifar10"), 0.0);  // "--"
  EXPECT_DOUBLE_EQ(paper_mb_to_target("FedClust", "cifar100"), 1889.17);
  EXPECT_LT(paper_mb_to_target("CFL", "svhn"), 0.0);
  EXPECT_DOUBLE_EQ(paper_newcomer_accuracy("FedClust", "svhn"), 95.19);
  EXPECT_LT(paper_newcomer_accuracy("CFL", "svhn"), 0.0);  // no CFL row

  EXPECT_DOUBLE_EQ(paper_target_table4("cifar10"), 80.0);
  EXPECT_DOUBLE_EQ(paper_target_table5("fmnist"), 80.0);
  EXPECT_THROW(paper_target_table4("mnist"), std::invalid_argument);
}

TEST(Harness, SplitCsvList) {
  EXPECT_EQ(split_csv_list("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv_list("single"), (std::vector<std::string>{"single"}));
  EXPECT_TRUE(split_csv_list("").empty());
  EXPECT_EQ(split_csv_list("a,,b"), (std::vector<std::string>{"a", "b"}));
}

TEST(Harness, RunMethodCachedHitsCache) {
  EnvGuard guard({"FEDCLUST_BENCH_SCALE"});
  Scale tiny = get_scale();
  tiny.n_clients = 6;
  tiny.train_per_client = 8;
  tiny.test_per_client = 4;
  tiny.rounds = 2;
  tiny.seeds = 1;
  // Work in a temp dir so bench_results doesn't pollute the repo.
  const auto cwd = std::filesystem::current_path();
  std::filesystem::current_path(::testing::TempDir());
  const auto t1 = run_method_cached("FedAvg", "skew20", "fmnist", tiny, 1);
  const auto t2 = run_method_cached("FedAvg", "skew20", "fmnist", tiny, 1);
  std::filesystem::current_path(cwd);
  ASSERT_EQ(t1.records.size(), t2.records.size());
  EXPECT_NEAR(t1.final_accuracy(), t2.final_accuracy(), 1e-5);
}

}  // namespace
}  // namespace fedclust::bench
