// Concurrent observability stress: many threads record spans and update
// metrics simultaneously, then a quiescent export must account for every
// update exactly. Runs under the tsan preset (ctest label: tsan_smoke) to
// prove the hot paths are race-free, not merely crash-free.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace fedclust {
namespace {

class ObsStress : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_threads_ = util::global_pool().size() + 1;
    util::reset_global_pool(4);
    obs::SpanTracer::instance().clear();
    obs::SpanTracer::instance().set_enabled(true);
    obs::MetricsRegistry::instance().reset_values();
    obs::MetricsRegistry::instance().set_enabled(true);
  }
  void TearDown() override {
    obs::SpanTracer::instance().set_enabled(false);
    obs::SpanTracer::instance().clear();
    obs::MetricsRegistry::instance().set_enabled(false);
    obs::MetricsRegistry::instance().reset_values();
    util::reset_global_pool(prev_threads_);
  }

 private:
  std::size_t prev_threads_ = 1;
};

TEST_F(ObsStress, ConcurrentCountersAndGaugesAreExact) {
  constexpr std::size_t kIters = 20000;
  util::parallel_for(0, kIters, [](std::size_t i) {
    OBS_COUNTER_ADD("stress.counter", 1);
    OBS_COUNTER_ADD("stress.weighted", i % 7);
    OBS_GAUGE_ADD("stress.gauge", 1);
    OBS_GAUGE_ADD("stress.gauge", -1);
  });
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter_value("stress.counter"), kIters);
  std::uint64_t expected_weighted = 0;
  for (std::size_t i = 0; i < kIters; ++i) expected_weighted += i % 7;
  EXPECT_EQ(snap.counter_value("stress.weighted"), expected_weighted);
  for (const auto& [n, v] : snap.gauges) {
    if (n == "stress.gauge") {
      EXPECT_EQ(v, 0);
    }
  }
}

TEST_F(ObsStress, ConcurrentHistogramObservationsAreExact) {
  constexpr std::size_t kIters = 20000;
  auto& h = obs::MetricsRegistry::instance().histogram("stress.hist",
                                                       {10.0, 100.0});
  util::parallel_for(0, kIters, [&](std::size_t i) {
    h.observe(static_cast<double>(i % 200));
  });
  const auto hs = h.snapshot();
  EXPECT_EQ(hs.count, kIters);
  EXPECT_DOUBLE_EQ(hs.min, 0.0);
  EXPECT_DOUBLE_EQ(hs.max, 199.0);
  // i%200 in [0,10] → 11 values per 200-cycle, (10,100] → 90, rest overflow.
  EXPECT_EQ(hs.counts[0], kIters / 200 * 11);
  EXPECT_EQ(hs.counts[1], kIters / 200 * 90);
  EXPECT_EQ(hs.counts[2], kIters / 200 * 99);
  double expected_sum = 0.0;
  for (std::size_t i = 0; i < 200; ++i) {
    expected_sum += static_cast<double>(i) * (kIters / 200);
  }
  EXPECT_DOUBLE_EQ(hs.sum, expected_sum);
}

TEST_F(ObsStress, ConcurrentSpanRecordingLosesNothingUnderCapacity) {
  // 4 workers + caller, well under the per-thread ring capacity, so the
  // quiescent collect() must see every span exactly once.
  constexpr std::size_t kIters = 5000;
  util::parallel_for(0, kIters, [](std::size_t i) {
    OBS_SPAN_ARG("stress.span", i);
    OBS_COUNTER_ADD("stress.span_counter", 1);
  });
  std::size_t spans = 0;
  std::uint64_t dropped = 0;
  std::uint64_t arg_sum = 0;
  for (const auto& t : obs::SpanTracer::instance().collect()) {
    dropped += t.dropped;
    for (const auto& e : t.events) {
      if (std::string(e.name) == "stress.span") {
        ++spans;
        arg_sum += e.arg;
        EXPECT_GE(e.end_us, e.begin_us);
      }
    }
  }
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(spans, kIters);
  EXPECT_EQ(arg_sum, static_cast<std::uint64_t>(kIters) * (kIters - 1) / 2);
  EXPECT_EQ(obs::MetricsRegistry::instance().snapshot().counter_value(
                "stress.span_counter"),
            kIters);
}

TEST_F(ObsStress, RingOverflowIsCountedNotFatal) {
  // Overflow the caller thread's ring on purpose: recording must keep the
  // newest events and report the loss, never block or crash.
  constexpr std::size_t kIters = (1u << 15) + 1000;  // capacity + 1000
  for (std::size_t i = 0; i < kIters; ++i) {
    OBS_SPAN("stress.overflow");
  }
  std::uint64_t dropped = 0;
  std::size_t kept = 0;
  for (const auto& t : obs::SpanTracer::instance().collect()) {
    dropped += t.dropped;
    for (const auto& e : t.events) {
      if (std::string(e.name) == "stress.overflow") ++kept;
    }
  }
  EXPECT_GE(dropped, 1000u);
  EXPECT_EQ(kept + dropped, kIters);
  // The overflow note must surface in the exported trace.
  EXPECT_NE(obs::SpanTracer::instance().chrome_trace_json().find(
                "ring_overflow"),
            std::string::npos);
}

TEST_F(ObsStress, TogglingEnabledMidStreamIsSafe) {
  // Flipping the enabled flag while workers record exercises the relaxed
  // gate; spans that began while enabled still complete their record.
  constexpr std::size_t kIters = 10000;
  std::atomic<bool> flip{false};
  util::parallel_for(0, kIters, [&](std::size_t i) {
    if (i == kIters / 2) {
      obs::SpanTracer::instance().set_enabled(
          !flip.exchange(true, std::memory_order_relaxed));
    }
    OBS_SPAN("stress.toggle");
    OBS_COUNTER_ADD("stress.toggle_counter", 1);
  });
  obs::SpanTracer::instance().set_enabled(true);
  // No exact span count (the flip races by design) — but metrics were never
  // disabled, so the counter stays exact, and collect() must be coherent.
  EXPECT_EQ(obs::MetricsRegistry::instance().snapshot().counter_value(
                "stress.toggle_counter"),
            kIters);
  for (const auto& t : obs::SpanTracer::instance().collect()) {
    for (const auto& e : t.events) {
      EXPECT_GE(e.end_us, e.begin_us);
    }
  }
}

}  // namespace
}  // namespace fedclust
