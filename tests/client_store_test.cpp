// Client-store layer: PartitionPlan regeneration parity with the eager
// build, MaterializedClientStore / VirtualClientStore semantics (LRU
// determinism, eviction safety, build dedup under concurrency — the
// tsan_smoke stress), SparseClientParams round-trip + corruption
// rejection, and the StreamingAggregator reduction-tree contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include "data/partition.h"
#include "fl/client_state.h"
#include "fl/client_store.h"
#include "fl/stream_agg.h"
#include "util/rng.h"
#include "util/serialization.h"

namespace {

using namespace fedclust;

data::SyntheticSpec small_spec() {
  data::SyntheticSpec spec = data::dataset_spec("cifar10");
  return spec;
}

data::FederatedConfig small_cfg(const std::string& partition,
                                std::size_t n_clients = 12) {
  data::FederatedConfig cfg;
  cfg.n_clients = n_clients;
  cfg.train_per_client = 6;
  cfg.test_per_client = 4;
  cfg.partition = partition;
  cfg.skew_fraction = 0.2;
  cfg.dirichlet_alpha = 0.1;
  return cfg;
}

void expect_dataset_eq(const data::Dataset& a, const data::Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.image_size(), b.image_size());
  EXPECT_EQ(a.labels(), b.labels());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(a.image(i), b.image(i),
                             a.image_size() * sizeof(float)))
        << "image " << i << " differs";
  }
}

void expect_client_eq(const data::ClientData& a, const data::ClientData& b) {
  expect_dataset_eq(a.train, b.train);
  expect_dataset_eq(a.test, b.test);
  EXPECT_EQ(a.label_weights, b.label_weights);
  EXPECT_EQ(a.group_id, b.group_id);
}

// --- PartitionPlan: virtual regeneration == eager build, bit for bit ---

TEST(PartitionPlan, MaterializeMatchesEagerAcrossPartitions) {
  for (const std::string partition : {"skew", "dirichlet", "iid"}) {
    SCOPED_TRACE(partition);
    const auto spec = small_spec();
    const auto cfg = small_cfg(partition);
    const std::uint64_t seed = 42;
    const auto eager = data::make_federated_data(spec, cfg, seed);
    const data::PartitionPlan plan(spec, cfg, seed);
    ASSERT_EQ(plan.n_clients(), eager.size());
    // Out-of-order access: each client is a pure function of (seed, id).
    for (std::size_t i = plan.n_clients(); i-- > 0;) {
      SCOPED_TRACE(i);
      expect_client_eq(plan.materialize(i), eager[i]);
    }
  }
}

TEST(PartitionPlan, SketchAgreesWithMaterialized) {
  const auto spec = small_spec();
  const auto cfg = small_cfg("dirichlet");
  const data::PartitionPlan plan(spec, cfg, 7);
  for (std::size_t i = 0; i < plan.n_clients(); ++i) {
    const data::ClientSketch sk = plan.sketch(i);
    const data::ClientData cd = plan.materialize(i);
    EXPECT_EQ(sk.n_train, cd.train.size());
    EXPECT_EQ(sk.n_test, cd.test.size());
    EXPECT_EQ(sk.label_weights, cd.label_weights);
    EXPECT_EQ(sk.group_id, cd.group_id);
  }
}

TEST(PartitionPlan, CheckpointStrideCrossingIsConsistent) {
  // A population larger than kCheckpointStride exercises the replay-from-
  // checkpoint path; sketching past the stride must not depend on which
  // clients were sketched before.
  auto cfg = small_cfg("skew", data::PartitionPlan::kCheckpointStride + 40);
  cfg.train_per_client = 1;
  cfg.test_per_client = 1;
  const auto spec = small_spec();
  const data::PartitionPlan plan(spec, cfg, 3);
  const std::size_t probe = data::PartitionPlan::kCheckpointStride + 17;
  const data::ClientSketch cold = plan.sketch(probe);
  plan.sketch(2);  // unrelated earlier access
  const data::ClientSketch warm = plan.sketch(probe);
  EXPECT_EQ(cold.label_weights, warm.label_weights);
  EXPECT_EQ(cold.n_train, warm.n_train);
  const data::PartitionPlan plan2(spec, cfg, 3);
  expect_client_eq(plan.materialize(probe), plan2.materialize(probe));
}

// --- Stores ---

TEST(MaterializedClientStore, AcquireAndBounds) {
  const auto spec = small_spec();
  const auto cfg = small_cfg("skew", 5);
  fl::MaterializedClientStore store(data::make_federated_data(spec, cfg, 1));
  EXPECT_EQ(store.size(), 5u);
  const auto c3 = store.acquire(3);
  EXPECT_EQ(c3->id(), 3u);
  EXPECT_EQ(store.acquire(3).get(), c3.get());  // same instance, no copy
  EXPECT_THROW(store.acquire(5), std::out_of_range);
  EXPECT_EQ(store.stats().misses, 0u);  // no cache to miss
}

TEST(VirtualClientStore, MatchesEagerAndCountsDeterministically) {
  const auto spec = small_spec();
  const auto cfg = small_cfg("skew", 10);
  const auto eager = data::make_federated_data(spec, cfg, 9);
  auto plan = std::make_shared<const data::PartitionPlan>(spec, cfg, 9);
  fl::VirtualClientStore store(plan, /*capacity=*/3);
  EXPECT_EQ(store.size(), 10u);

  // Fixed access sequence -> fixed hit/miss/eviction sequence (plain LRU).
  const std::size_t seq[] = {0, 1, 2, 0, 3, 4, 0, 1, 5};
  for (const std::size_t id : seq) {
    const auto c = store.acquire(id);
    ASSERT_EQ(c->id(), id);
    expect_dataset_eq(c->train_data(), eager[id].train);
  }
  const auto stats = store.stats();
  // Misses: 0,1,2,3,4 first touches + 1 (evicted by 4's insert) + 5 = 7.
  EXPECT_EQ(stats.misses, 7u);
  EXPECT_EQ(stats.hits, 2u);  // the second and third acquire(0)
  EXPECT_EQ(stats.evictions, 4u);
  EXPECT_LE(store.cached(), store.capacity());

  // Same sequence on a fresh store reproduces the same counters.
  fl::VirtualClientStore replay(plan, 3);
  for (const std::size_t id : seq) replay.acquire(id);
  EXPECT_EQ(replay.stats().misses, stats.misses);
  EXPECT_EQ(replay.stats().hits, stats.hits);
  EXPECT_EQ(replay.stats().evictions, stats.evictions);

  EXPECT_THROW(store.acquire(10), std::out_of_range);
}

TEST(VirtualClientStore, EvictedClientStaysAliveAndRegeneratesIdentically) {
  const auto spec = small_spec();
  const auto cfg = small_cfg("dirichlet", 6);
  auto plan = std::make_shared<const data::PartitionPlan>(spec, cfg, 11);
  fl::VirtualClientStore store(plan, /*capacity=*/1);
  const auto held = store.acquire(2);
  store.acquire(3);  // capacity 1: evicts client 2
  store.acquire(4);
  // The held shared_ptr keeps the evicted client fully usable...
  EXPECT_EQ(held->id(), 2u);
  EXPECT_GT(held->n_train(), 0u);
  // ...and re-acquiring materializes a bit-identical replacement.
  const auto again = store.acquire(2);
  EXPECT_NE(again.get(), held.get());
  expect_dataset_eq(again->train_data(), held->train_data());
  expect_dataset_eq(again->test_data(), held->test_data());
}

// tsan_smoke: many threads hammering acquire() with capacity far below the
// id range — the build-slot dedup, LRU updates, and eviction must be free
// of races and deadlocks, and every thread must see the right client.
TEST(VirtualClientStore, ConcurrentAcquireStress) {
  const auto spec = small_spec();
  auto cfg = small_cfg("skew", 32);
  cfg.train_per_client = 2;
  cfg.test_per_client = 1;
  auto plan = std::make_shared<const data::PartitionPlan>(spec, cfg, 5);
  fl::VirtualClientStore store(plan, /*capacity=*/4);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(100 + t);
      for (std::size_t i = 0; i < kIters; ++i) {
        const std::size_t id = static_cast<std::size_t>(
            rng.randint(0, static_cast<std::int64_t>(store.size())));
        const auto c = store.acquire(id);
        if (c->id() != id || c->n_train() != 2) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(store.cached(), store.capacity());
  const auto stats = store.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kIters);
  // Every client acquired after the stress is still regenerated correctly.
  const auto eager = data::make_federated_data(spec, cfg, 5);
  for (std::size_t id = 0; id < store.size(); id += 7) {
    expect_dataset_eq(store.acquire(id)->train_data(), eager[id].train);
  }
}

// --- SparseClientParams ---

TEST(SparseClientParams, DefaultsAndTouchSemantics) {
  fl::SparseClientParams p;
  p.reset(100, {1.0f, 2.0f});
  EXPECT_EQ(p.n_clients(), 100u);
  EXPECT_EQ(p.touched_count(), 0u);
  EXPECT_EQ(p.get(57), (std::vector<float>{1.0f, 2.0f}));
  auto& slot = p.touch(57);
  EXPECT_EQ(slot, (std::vector<float>{1.0f, 2.0f}));  // copy of default
  slot[0] = 9.0f;
  EXPECT_EQ(p.get(57)[0], 9.0f);
  EXPECT_EQ(p.get(58)[0], 1.0f);  // untouched slots unaffected
  EXPECT_EQ(p.touched_count(), 1u);
  EXPECT_EQ(&p.touch(57), &slot);  // re-touch: same node, stable reference
  EXPECT_THROW(p.get(100), std::out_of_range);
  EXPECT_THROW(p.touch(100), std::out_of_range);
}

TEST(SparseClientParams, SaveLoadRoundTrip) {
  fl::SparseClientParams p;
  p.reset(10000, std::vector<float>(3, 0.5f));
  for (const std::size_t id : {7, 42, 9999}) {
    p.touch(id) = {static_cast<float>(id), 1.0f, 2.0f};
  }
  std::ostringstream os;
  util::BinaryWriter w(os);
  p.save(w);
  const std::string bytes = os.str();
  // Snapshot size scales with touched slots, not population: 3 records of
  // (u64 id + u64 len + 3 f32) + the two header u64s.
  EXPECT_EQ(bytes.size(), 2 * 8 + 3 * (8 + 8 + 3 * 4));

  fl::SparseClientParams q;
  q.reset(10000, std::vector<float>(3, 0.5f));
  std::istringstream is(bytes);
  util::BinaryReader r(is);
  q.load(r);
  EXPECT_EQ(q.touched_count(), 3u);
  for (std::size_t id = 0; id < 10000; ++id) {
    ASSERT_EQ(q.get(id), p.get(id)) << id;
  }
}

TEST(SparseClientParams, LoadRejectsCorruption) {
  const auto serialize = [](std::uint64_t n, std::uint64_t count,
                            std::vector<std::pair<std::uint64_t,
                                                  std::vector<float>>>
                                records) {
    std::ostringstream os;
    util::BinaryWriter w(os);
    w.write_u64(n);
    w.write_u64(count);
    for (auto& [id, vec] : records) {
      w.write_u64(id);
      w.write_f32_vec(vec);
    }
    return os.str();
  };
  const auto load_into = [](const std::string& bytes) {
    fl::SparseClientParams p;
    p.reset(100, std::vector<float>(2, 0.0f));
    std::istringstream is(bytes);
    util::BinaryReader r(is);
    p.load(r);
  };
  // Population disagrees with reset().
  EXPECT_THROW(load_into(serialize(99, 0, {})), std::runtime_error);
  // More touched records than clients.
  EXPECT_THROW(load_into(serialize(100, 101, {})), std::runtime_error);
  // Record id out of range.
  EXPECT_THROW(load_into(serialize(100, 1, {{100, {0, 0}}})),
               std::runtime_error);
  // Ids not strictly ascending.
  EXPECT_THROW(
      load_into(serialize(100, 2, {{5, {0, 0}}, {5, {0, 0}}})),
      std::runtime_error);
  EXPECT_THROW(
      load_into(serialize(100, 2, {{5, {0, 0}}, {3, {0, 0}}})),
      std::runtime_error);
  // Dimension mismatch vs the reset default.
  EXPECT_THROW(load_into(serialize(100, 1, {{5, {1, 2, 3}}})),
               std::runtime_error);
  // A clean payload still loads after all those rejections.
  load_into(serialize(100, 1, {{5, {1, 2}}}));
}

// --- StreamingAggregator ---

TEST(StreamingAggregator, OrderInvariantAndMatchesDirectAverage) {
  const std::size_t dim = 37, slots = 5;
  std::vector<std::vector<float>> updates(slots, std::vector<float>(dim));
  std::vector<double> weights = {1.0, 2.0, 0.5, 3.0, 1.5};
  util::Rng rng(4);
  for (auto& u : updates)
    for (auto& x : u) x = rng.normalf(0, 1);

  const auto run = [&](const std::vector<std::size_t>& order) {
    fl::StreamingAggregator agg(slots, dim);
    for (const std::size_t s : order) {
      agg.submit(s, updates[s].data(), dim, weights[s]);
    }
    std::vector<float> out(dim);
    EXPECT_TRUE(agg.finish(out));
    return out;
  };
  const auto a = run({0, 1, 2, 3, 4});
  const auto b = run({4, 2, 0, 3, 1});
  const auto c = run({3, 4, 1, 0, 2});
  EXPECT_EQ(a, b);  // bit-identical: the tree fixes the FP association
  EXPECT_EQ(a, c);

  double wsum = 0;
  for (const double w : weights) wsum += w;
  for (std::size_t j = 0; j < dim; ++j) {
    double acc = 0;
    for (std::size_t s = 0; s < slots; ++s)
      acc += weights[s] * static_cast<double>(updates[s][j]);
    EXPECT_NEAR(a[j], static_cast<float>(acc / wsum), 1e-6f);
  }
}

TEST(StreamingAggregator, SkipsAndEmptyRound) {
  const std::size_t dim = 4;
  fl::StreamingAggregator agg(3, dim);
  const std::vector<float> u = {1, 2, 3, 4};
  agg.skip(0);
  agg.submit(1, u.data(), dim, 2.0);
  agg.skip(2);
  EXPECT_TRUE(agg.any_delivered());
  std::vector<float> out(dim, -1.0f);
  EXPECT_TRUE(agg.finish(out));
  EXPECT_EQ(out, u);  // single survivor: weight cancels

  fl::StreamingAggregator empty(2, dim);
  empty.skip(0);
  empty.skip(1);
  EXPECT_FALSE(empty.any_delivered());
  std::vector<float> keep = {9, 9, 9, 9};
  EXPECT_FALSE(empty.finish(keep));
  EXPECT_EQ(keep, (std::vector<float>{9, 9, 9, 9}));  // model untouched
}

TEST(StreamingAggregator, ContractViolationsThrow) {
  const std::size_t dim = 3;
  const std::vector<float> u = {1, 2, 3};
  EXPECT_THROW(fl::StreamingAggregator(0, dim), std::invalid_argument);
  fl::StreamingAggregator agg(2, dim);
  EXPECT_THROW(agg.submit(2, u.data(), dim, 1.0), std::out_of_range);
  EXPECT_THROW(agg.submit(0, u.data(), dim - 1, 1.0), std::invalid_argument);
  EXPECT_THROW(agg.submit(0, u.data(), dim, -1.0), std::invalid_argument);
  agg.submit(0, u.data(), dim, 1.0);
  EXPECT_THROW(agg.submit(0, u.data(), dim, 1.0), std::logic_error);
  std::vector<float> out(dim);
  EXPECT_THROW(agg.finish(out), std::logic_error);  // slot 1 unresolved
  agg.skip(1);
  std::vector<float> wrong(dim - 1);
  EXPECT_THROW(agg.finish(wrong), std::invalid_argument);
  EXPECT_TRUE(agg.finish(out));
}

// tsan_smoke: concurrent submits from many threads must produce the exact
// single-threaded result — the whole point of the fixed reduction tree.
TEST(StreamingAggregator, ConcurrentSubmitIsBitIdentical) {
  const std::size_t dim = 256, slots = 64;
  std::vector<std::vector<float>> updates(slots, std::vector<float>(dim));
  util::Rng rng(21);
  for (auto& u : updates)
    for (auto& x : u) x = rng.normalf(0, 1);

  std::vector<float> serial(dim);
  {
    fl::StreamingAggregator agg(slots, dim);
    for (std::size_t s = 0; s < slots; ++s) {
      agg.submit(s, updates[s].data(), dim, 1.0 + s);
    }
    ASSERT_TRUE(agg.finish(serial));
  }
  for (int rep = 0; rep < 4; ++rep) {
    fl::StreamingAggregator agg(slots, dim);
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        for (std::size_t s; (s = next.fetch_add(1)) < slots;) {
          if (s % 9 == 8) {
            agg.skip(s);
            continue;
          }
          agg.submit(s, updates[s].data(), dim, 1.0 + s);
        }
      });
    }
    for (auto& th : threads) th.join();
    std::vector<float> parallel(dim);
    ASSERT_TRUE(agg.finish(parallel));
    // Compare against a serial run with the same skip pattern.
    fl::StreamingAggregator ref(slots, dim);
    for (std::size_t s = 0; s < slots; ++s) {
      if (s % 9 == 8) {
        ref.skip(s);
      } else {
        ref.submit(s, updates[s].data(), dim, 1.0 + s);
      }
    }
    std::vector<float> expected(dim);
    ASSERT_TRUE(ref.finish(expected));
    EXPECT_EQ(parallel, expected);
  }
}

}  // namespace
