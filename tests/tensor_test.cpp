#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor_ops.h"

namespace fedclust::tensor {
namespace {

TEST(Tensor, ZeroInitialized) {
  const Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.ndim(), 2u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullAndFrom) {
  const Tensor f = Tensor::full({2, 2}, 1.5f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(f[i], 1.5f);
  const Tensor v = Tensor::from({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(v.ndim(), 1u);
  EXPECT_EQ(v[2], 3.0f);
}

TEST(Tensor, AtIsRowMajor) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  t.at({0, 1}) = 3.0f;
  EXPECT_EQ(t[1], 3.0f);
}

TEST(Tensor, AtValidates) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW(t.at({0}), std::invalid_argument);
}

TEST(Tensor, DataSizeMustMatchShape) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  t.reshape({3, 2});
  EXPECT_EQ(t.at({2, 1}), 6.0f);
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, ShapeStr) {
  EXPECT_EQ(Tensor({2, 3, 4}).shape_str(), "(2, 3, 4)");
  EXPECT_EQ(Tensor().shape_str(), "()");
}

TEST(TensorOps, AxpyAndScale) {
  Tensor x({3}, {1, 2, 3});
  Tensor y({3}, {10, 20, 30});
  axpy(2.0f, x, y);
  EXPECT_EQ(y[0], 12.0f);
  EXPECT_EQ(y[2], 36.0f);
  scale_(y, 0.5f);
  EXPECT_EQ(y[0], 6.0f);
}

TEST(TensorOps, AddSubHadamard) {
  Tensor a({2}, {3, 4});
  Tensor b({2}, {1, 2});
  add_(a, b);
  EXPECT_EQ(a[0], 4.0f);
  sub_(a, b);
  EXPECT_EQ(a[1], 4.0f);
  hadamard_(a, b);
  EXPECT_EQ(a[1], 8.0f);
}

TEST(TensorOps, ShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(add_(a, b), std::invalid_argument);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
}

TEST(TensorOps, DotAndNorm) {
  const Tensor a({3}, {1, 2, 3});
  const Tensor b({3}, {4, -5, 6});
  EXPECT_FLOAT_EQ(dot(a, b), 12.0f);
  EXPECT_FLOAT_EQ(nrm2(a), std::sqrt(14.0f));
}

TEST(TensorOps, L2Distance) {
  const std::vector<float> a = {0, 0, 0};
  const std::vector<float> b = {3, 4, 0};
  EXPECT_FLOAT_EQ(l2_distance(a, b), 5.0f);
  EXPECT_FLOAT_EQ(l2_distance(a, a), 0.0f);
}

TEST(TensorOps, CosineSimilarity) {
  const std::vector<float> a = {1, 0};
  const std::vector<float> b = {0, 1};
  const std::vector<float> c = {2, 0};
  const std::vector<float> z = {0, 0};
  EXPECT_NEAR(cosine_similarity(a, b), 0.0f, 1e-6);
  EXPECT_NEAR(cosine_similarity(a, c), 1.0f, 1e-6);
  EXPECT_EQ(cosine_similarity(a, z), 0.0f);
}

TEST(TensorOps, SumAndMaxAbs) {
  const Tensor t({4}, {1, -5, 2, 0});
  EXPECT_FLOAT_EQ(sum(t), -2.0f);
  EXPECT_FLOAT_EQ(max_abs(t), 5.0f);
}

TEST(TensorOps, SoftmaxRows) {
  Tensor logits({2, 3}, {0, 0, 0, 1000, 0, -1000});
  softmax_rows_(logits);
  EXPECT_NEAR(logits.at({0, 0}), 1.0f / 3.0f, 1e-6);
  EXPECT_NEAR(logits.at({1, 0}), 1.0f, 1e-6);  // stable under huge logits
  EXPECT_NEAR(logits.at({1, 2}), 0.0f, 1e-6);
  for (std::size_t r = 0; r < 2; ++r) {
    float s = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) s += logits.at({r, c});
    EXPECT_NEAR(s, 1.0f, 1e-6);
  }
}

TEST(TensorOps, ArgmaxRows) {
  const Tensor m({2, 3}, {0.1f, 0.7f, 0.2f, 5.0f, 1.0f, 4.9f});
  const auto idx = argmax_rows(m);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 0u);
}

}  // namespace
}  // namespace fedclust::tensor
