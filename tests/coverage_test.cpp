// Additional cross-cutting coverage: Per-FedAvg and LG semantics, the
// shared-dictionary structure of the synthetic generators, dropout inside
// full models, and IID sanity runs of the whole pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "fl/lg_fedavg.h"
#include "fl/perfedavg.h"
#include "fl/fedavg.h"
#include "linalg/svd.h"
#include "nn/dropout.h"
#include "nn/init.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/model_zoo.h"
#include "nn/activations.h"
#include "nn/pooling.h"
#include "tensor/tensor_ops.h"

namespace fedclust {
namespace {

fl::ExperimentConfig tiny(std::size_t clients = 8) {
  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("fmnist");
  cfg.data_spec.hw = 8;
  cfg.fed.n_clients = clients;
  cfg.fed.train_per_client = 12;
  cfg.fed.test_per_client = 8;
  cfg.fed.partition = "skew";
  cfg.fed.skew_fraction = 0.2;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 1;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 6;
  cfg.local.lr = 0.05f;
  cfg.rounds = 3;
  cfg.sample_fraction = 0.5;
  cfg.seed = 41;
  return cfg;
}

// ----------------------------------------------------------- PerFedAvg

TEST(PerFedAvgTest, MetaParametersMoveAndEvalPersonalizes) {
  fl::Federation fed(tiny());
  fl::PerFedAvg algo(fed);
  const fl::Trace t = algo.run();
  EXPECT_NE(algo.meta_params(), fed.init_params());
  EXPECT_EQ(t.records.size(), 3u);
  // Meta params stay finite under the two-batch FO-MAML loop.
  for (const float v : algo.meta_params()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(PerFedAvgTest, CommEqualsFedAvgPattern) {
  const auto cfg = tiny();
  fl::Federation f1(cfg);
  fl::Federation f2(cfg);
  fl::PerFedAvg a(f1);
  fl::FedAvg b(f2);
  a.run();
  b.run();
  // Per-FedAvg ships the full model both ways, like FedAvg.
  EXPECT_EQ(f1.comm().bytes_total(), f2.comm().bytes_total());
}

// ------------------------------------------------------------------ LG

TEST(LgTest, LocalPrefixesStayPersonalGlobalSuffixIsShared) {
  fl::Federation fed(tiny());
  fl::LgFedAvg algo(fed);
  algo.run();
  const std::size_t off = algo.global_offset();
  ASSERT_GT(off, 0u);
  ASSERT_LT(off, fed.model_size());
  EXPECT_EQ(algo.global_suffix().size(), fed.model_size() - off);
}

TEST(LgTest, GlobalParamCountValidation) {
  auto cfg = tiny();
  cfg.algo.lg_global_params = 99;  // more tensors than the model has
  fl::Federation fed(cfg);
  fl::LgFedAvg algo(fed);
  EXPECT_THROW(algo.run(), std::invalid_argument);
}

// -------------------------------------------------- synthetic structure

// Prototypes are sparse combinations of a shared dictionary plus per-class
// gratings, so the matrix of all noiseless prototypes has numerical rank
// at most dict_size + grating degrees of freedom — far below the count of
// prototypes. This is the feature-transfer property DESIGN.md §1 relies on.
TEST(SyntheticStructure, PrototypesSpanLowDimensionalSubspace) {
  data::SyntheticSpec spec = data::dataset_spec("cifar10");
  spec.hw = 8;  // keep the SVD small
  const data::SyntheticGenerator gen(spec, 3);
  const std::size_t n_protos =
      spec.num_classes * spec.prototypes_per_class;  // 60
  const std::size_t d = gen.image_size();            // 192
  tensor::Tensor m({n_protos, d});
  std::size_t row = 0;
  for (std::size_t c = 0; c < spec.num_classes; ++c) {
    for (std::size_t p = 0; p < spec.prototypes_per_class; ++p, ++row) {
      const auto proto = gen.prototype(static_cast<std::int64_t>(c), p);
      for (std::size_t j = 0; j < d; ++j) m[row * d + j] = proto[j];
    }
  }
  const auto svd = linalg::jacobi_svd(m);
  // Count singular values above 1% of the largest.
  std::size_t rank = 0;
  for (const float s : svd.s) rank += s > 0.01f * svd.s[0];
  // Upper bound: dictionary atoms + one grating pattern pair per distinct
  // (angle, freq) class signature. Loose check: well below n_protos.
  EXPECT_LT(rank, spec.dict_size + 2 * spec.num_classes);
  EXPECT_LT(rank, n_protos);
}

// Same-class prototypes share their grating: the class-mean images of two
// different classes are farther apart than two prototype means within one
// class on average... covered by data_test; here check determinism of
// prototype() vs sample() with zero noise and jitter.
TEST(SyntheticStructure, ZeroNoiseSampleEqualsPrototype) {
  data::SyntheticSpec spec = data::dataset_spec("fmnist");
  spec.noise = 0.0f;
  spec.coeff_jitter = 0.0f;
  spec.prototypes_per_class = 1;
  const data::SyntheticGenerator gen(spec, 9);
  util::Rng rng(1);
  const auto sample = gen.sample(4, rng);
  const auto proto = gen.prototype(4, 0);
  ASSERT_EQ(sample.size(), proto.size());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    EXPECT_FLOAT_EQ(sample[i], proto[i]);
  }
}

// -------------------------------------------------- dropout in a model

TEST(DropoutInModel, TrainsAndEvalsDeterministically) {
  util::Rng rng(11);
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Flatten>();
  net->add(nn::make_linear(16, 8, rng, "fc1"));
  net->emplace<nn::ReLU>();
  net->emplace<nn::Dropout>(0.3f, 7);
  net->add(nn::make_linear(8, 2, rng, "classifier"));
  nn::Model m(std::move(net));

  tensor::Tensor x({4, 1, 4, 4});
  for (auto& v : x.vec()) v = rng.normalf(0, 1);
  const std::vector<std::int64_t> y = {0, 1, 0, 1};

  // Training step works end to end (dropout backward uses its mask).
  nn::Sgd opt(m.parameters(), {.lr = 0.1f});
  opt.zero_grad();
  const auto lr = nn::softmax_cross_entropy(m.forward(x, true), y);
  m.backward(lr.grad_logits);
  opt.step();

  // Eval forward is dropout-free and hence repeatable.
  const auto e1 = m.forward(x);
  const auto e2 = m.forward(x);
  EXPECT_EQ(e1.vec(), e2.vec());
}

// ------------------------------------------------------------ IID sanity

// Under IID data every method should behave like standard training: FedAvg
// must do at least as well as any single client could — an end-to-end
// sanity check of the whole pipeline.
TEST(IidSanity, FedAvgLearnsWellOnIidData) {
  auto cfg = tiny(10);
  cfg.fed.partition = "iid";
  cfg.rounds = 10;
  cfg.local.epochs = 2;
  fl::Federation fed(cfg);
  fl::FedAvg algo(fed);
  const fl::Trace t = algo.run();
  EXPECT_GT(t.final_accuracy(), 0.5);
  // Accuracy improved materially over the start of training.
  EXPECT_GT(t.final_accuracy(),
            t.records.front().avg_local_test_acc + 0.1);
}

}  // namespace
}  // namespace fedclust
