// Zero-perturbation invariant (ROADMAP "Observability"): enabling tracing
// and metrics must not change a single bit of any run — traces, final
// parameters, and comm byte counts are identical with observability on or
// off, at any worker count. Spans only read the steady clock; metric
// updates only touch their own relaxed atomics; neither goes near RNG
// state or floating-point accumulation order.

#include <gtest/gtest.h>

#include <cstdio>
#include <utility>
#include <vector>

#include "core/registry.h"
#include "fl/federation.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace fedclust {
namespace {

fl::ExperimentConfig cfg_for(std::uint64_t seed) {
  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("svhn");
  cfg.data_spec.hw = 8;
  cfg.fed.n_clients = 10;
  cfg.fed.train_per_client = 12;
  cfg.fed.test_per_client = 6;
  cfg.fed.partition = "dirichlet";
  cfg.fed.dirichlet_alpha = 0.3;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 3;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 6;
  cfg.local.lr = 0.05f;
  cfg.rounds = 3;
  cfg.sample_fraction = 0.4;
  cfg.seed = seed;
  return cfg;
}

struct RunResult {
  fl::Trace trace;
  std::vector<float> init_params;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
};

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.trace.records.size(), b.trace.records.size());
  for (std::size_t i = 0; i < a.trace.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trace.records[i].avg_local_test_acc,
                     b.trace.records[i].avg_local_test_acc);
    EXPECT_EQ(a.trace.records[i].bytes_up, b.trace.records[i].bytes_up);
    EXPECT_EQ(a.trace.records[i].bytes_down, b.trace.records[i].bytes_down);
    EXPECT_EQ(a.trace.records[i].n_clusters, b.trace.records[i].n_clusters);
  }
  ASSERT_EQ(a.init_params.size(), b.init_params.size());
  for (std::size_t i = 0; i < a.init_params.size(); ++i) {
    ASSERT_EQ(a.init_params[i], b.init_params[i]) << "θ0 differs at " << i;
  }
  EXPECT_EQ(a.bytes_up, b.bytes_up);
  EXPECT_EQ(a.bytes_down, b.bytes_down);
}

// Sweeps worker counts in-process; restores the previous pool and the
// observability-off default afterwards.
class ObsInvariance : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    prev_threads_ = util::global_pool().size() + 1;
    journal_path_ = ::testing::TempDir() + "obs_invariance_journal.jsonl";
  }
  void TearDown() override {
    obs::SpanTracer::instance().set_enabled(false);
    obs::SpanTracer::instance().clear();
    obs::MetricsRegistry::instance().set_enabled(false);
    obs::MetricsRegistry::instance().reset_values();
    obs::EventJournal::instance().close();
    std::remove(journal_path_.c_str());
    util::reset_global_pool(prev_threads_);
  }

  RunResult run_with(bool obs_on, std::size_t threads) {
    obs::SpanTracer::instance().clear();
    obs::SpanTracer::instance().set_enabled(obs_on);
    obs::MetricsRegistry::instance().reset_values();
    obs::MetricsRegistry::instance().set_enabled(obs_on);
    // The journal shares the zero-perturbation obligation, so the "obs on"
    // runs record it too: if journaling shifted one result bit, these
    // comparisons would catch it.
    if (obs_on) obs::EventJournal::instance().open(journal_path_);
    util::reset_global_pool(threads);
    fl::Federation fed(cfg_for(99));
    RunResult res;
    res.trace = core::make_algorithm(GetParam(), fed)->run();
    res.init_params = fed.init_params();
    res.bytes_up = fed.comm().bytes_up();
    res.bytes_down = fed.comm().bytes_down();
    if (obs_on) {
      // The instrumented run must actually have recorded something, or the
      // comparison proves nothing.
      EXPECT_GT(obs::SpanTracer::instance().total_recorded(), 0u);
      EXPECT_EQ(obs::MetricsRegistry::instance().snapshot().counter_value(
                    "comm.bytes_up"),
                res.bytes_up);
    }
    obs::EventJournal::instance().close();
    obs::SpanTracer::instance().set_enabled(false);
    obs::SpanTracer::instance().clear();
    obs::MetricsRegistry::instance().set_enabled(false);
    return res;
  }

 private:
  std::size_t prev_threads_ = 1;
  std::string journal_path_;
};

TEST_P(ObsInvariance, ObservabilityOnEqualsOffSequential) {
  expect_identical(run_with(false, 1), run_with(true, 1));
}

TEST_P(ObsInvariance, ObservabilityOnEqualsOffAtFourThreads) {
  expect_identical(run_with(false, 4), run_with(true, 4));
}

TEST_P(ObsInvariance, ObservedParallelRunEqualsBareSequentialRun) {
  // The strongest cross-check: everything on at 4 threads vs. everything
  // off on the exact sequential path.
  expect_identical(run_with(false, 1), run_with(true, 4));
}

INSTANTIATE_TEST_SUITE_P(Methods, ObsInvariance,
                         ::testing::Values("FedAvg", "FedClust"));

}  // namespace
}  // namespace fedclust
