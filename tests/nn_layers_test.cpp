// Gradient-checks every layer's backward pass against central finite
// differences, plus forward-pass spot checks on known values.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "util/rng.h"

namespace fedclust::nn {
namespace {

using tensor::Tensor;

Tensor random_input(tensor::Shape shape, util::Rng& rng, float scale = 1.0f) {
  Tensor t(std::move(shape));
  for (auto& x : t.vec()) x = rng.normalf(0.0f, scale);
  return t;
}

// Scalarizes the module output with fixed random projection weights so we
// can finite-difference a single number.
struct GradCheck {
  Module& module;
  Tensor input;
  Tensor proj;  // same shape as module output

  explicit GradCheck(Module& m, Tensor in, util::Rng& rng)
      : module(m), input(std::move(in)) {
    const Tensor out = module.forward(input, /*train=*/false);
    proj = Tensor(out.shape());
    for (auto& x : proj.vec()) x = rng.normalf(0.0f, 1.0f);
  }

  double scalar_loss() {
    const Tensor out = module.forward(input, /*train=*/false);
    double s = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      s += static_cast<double>(out[i]) * proj[i];
    }
    return s;
  }

  // Analytic grads: one backward pass with grad_out = proj.
  Tensor analytic_input_grad() {
    module.zero_grad();
    module.forward(input, /*train=*/true);
    return module.backward(proj);
  }

  void check_input_grad(double eps = 1e-3, double tol = 2e-2) {
    const Tensor gx = analytic_input_grad();
    for (std::size_t i = 0; i < input.size(); ++i) {
      const float saved = input[i];
      input[i] = saved + static_cast<float>(eps);
      const double lp = scalar_loss();
      input[i] = saved - static_cast<float>(eps);
      const double lm = scalar_loss();
      input[i] = saved;
      const double num = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(gx[i], num, tol * (std::abs(num) + 1.0))
          << "input grad mismatch at " << i;
    }
  }

  void check_param_grads(double eps = 1e-3, double tol = 2e-2) {
    analytic_input_grad();  // fills parameter grads
    for (Parameter* p : module.parameters()) {
      // Copy analytic grads before the FD loop perturbs state.
      const Tensor g = p->grad;
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        const float saved = p->value[i];
        p->value[i] = saved + static_cast<float>(eps);
        const double lp = scalar_loss();
        p->value[i] = saved - static_cast<float>(eps);
        const double lm = scalar_loss();
        p->value[i] = saved;
        const double num = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(g[i], num, tol * (std::abs(num) + 1.0))
            << p->name << " grad mismatch at " << i;
      }
    }
  }
};

// ----------------------------------------------------------------- linear

TEST(Linear, ForwardKnown) {
  Linear fc(2, 2, "fc");
  fc.weight().value = Tensor({2, 2}, {1, 2, 3, 4});
  fc.bias().value = Tensor({2}, {10, 20});
  const Tensor x({1, 2}, {1, 1});
  const Tensor y = fc.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 13.0f);  // 1*1+2*1+10
  EXPECT_FLOAT_EQ(y[1], 27.0f);  // 3*1+4*1+20
}

TEST(Linear, RejectsWrongWidth) {
  Linear fc(3, 2);
  EXPECT_THROW(fc.forward(Tensor({1, 4}), false), std::invalid_argument);
  EXPECT_THROW(fc.backward(Tensor({1, 2})), std::logic_error);
}

TEST(Linear, GradCheck) {
  util::Rng rng(1);
  auto fc = make_linear(5, 4, rng, "fc");
  GradCheck gc(*fc, random_input({3, 5}, rng), rng);
  gc.check_input_grad();
  gc.check_param_grads();
}

TEST(Linear, GradAccumulatesAcrossBackwards) {
  util::Rng rng(2);
  auto fc = make_linear(3, 2, rng, "fc");
  const Tensor x = random_input({2, 3}, rng);
  const Tensor g = random_input({2, 2}, rng);
  fc->zero_grad();
  fc->forward(x, true);
  fc->backward(g);
  const Tensor once = fc->weight().grad;
  fc->forward(x, true);
  fc->backward(g);
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(fc->weight().grad[i], 2.0f * once[i], 1e-5);
  }
}

// ------------------------------------------------------------------ conv

TEST(Conv2d, ForwardKnownIdentityKernel) {
  Conv2d conv(1, 1, 1, 1, 0, "c");
  conv.weight().value = Tensor({1, 1}, {2.0f});
  conv.parameters()[1]->value = Tensor({1}, {1.0f});
  const Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[3], 9.0f);
}

TEST(Conv2d, ForwardKnownSum) {
  // 2x2 all-ones kernel on 3x3 ramp, no pad: sliding window sums.
  Conv2d conv(1, 1, 2, 1, 0, "c");
  conv.weight().value = Tensor::full({1, 4}, 1.0f);
  const Tensor x({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 16.0f);
  EXPECT_FLOAT_EQ(y[2], 24.0f);
  EXPECT_FLOAT_EQ(y[3], 28.0f);
}

TEST(Conv2d, RejectsWrongChannels) {
  Conv2d conv(3, 4, 3, 1, 1);
  EXPECT_THROW(conv.forward(Tensor({1, 2, 8, 8}), false),
               std::invalid_argument);
}

TEST(Conv2d, GradCheckStride1Pad1) {
  util::Rng rng(3);
  auto conv = make_conv(2, 3, 3, 1, 1, rng, "c");
  GradCheck gc(*conv, random_input({2, 2, 5, 5}, rng), rng);
  gc.check_input_grad();
  gc.check_param_grads();
}

TEST(Conv2d, GradCheckStride2NoPad) {
  util::Rng rng(4);
  auto conv = make_conv(1, 2, 3, 2, 0, rng, "c");
  GradCheck gc(*conv, random_input({1, 1, 7, 7}, rng), rng);
  gc.check_input_grad();
  gc.check_param_grads();
}

// ---------------------------------------------------------------- pooling

TEST(MaxPool, ForwardKnown) {
  MaxPool2d pool(2);
  const Tensor x({1, 1, 4, 4},
                 {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[3], 16.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  const Tensor x({1, 1, 2, 2}, {1, 9, 3, 4});
  pool.forward(x, true);
  const Tensor g({1, 1, 1, 1}, {5.0f});
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 5.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(MaxPool, GradCheck) {
  util::Rng rng(5);
  MaxPool2d pool(2);
  // Distinct values so the argmax is stable under the FD epsilon.
  Tensor x({1, 2, 4, 4});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(i % 7) + 0.01f * static_cast<float>(i);
  }
  GradCheck gc(pool, x, rng);
  gc.check_input_grad();
}

TEST(AvgPool, ForwardAndGradCheck) {
  util::Rng rng(6);
  AvgPool2d pool(2);
  const Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  GradCheck gc(pool, random_input({2, 3, 4, 4}, rng), rng);
  gc.check_input_grad();
}

TEST(GlobalAvgPool, ForwardAndGradCheck) {
  util::Rng rng(7);
  GlobalAvgPool2d gap;
  const Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor y = gap.forward(x, false);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 25.0f);
  GradCheck gc(gap, random_input({2, 3, 3, 3}, rng), rng);
  gc.check_input_grad();
}

TEST(Flatten, RoundTripsShape) {
  Flatten f;
  const Tensor x({2, 3, 4, 4});
  const Tensor y = f.forward(x, true);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 48}));
  const Tensor gx = f.backward(Tensor({2, 48}));
  EXPECT_EQ(gx.shape(), x.shape());
}

// ------------------------------------------------------------ activations

TEST(ReLUTest, ForwardClampsAndGradMasks) {
  ReLU relu;
  const Tensor x({1, 4}, {-1, 0, 2, -3});
  const Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  const Tensor g({1, 4}, {1, 1, 1, 1});
  const Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 0.0f);
  EXPECT_FLOAT_EQ(gx[2], 1.0f);
}

TEST(TanhTest, GradCheck) {
  util::Rng rng(8);
  Tanh tanh_layer;
  GradCheck gc(tanh_layer, random_input({3, 5}, rng), rng);
  gc.check_input_grad();
}

// -------------------------------------------------------------- groupnorm

TEST(GroupNormTest, NormalizesPerGroup) {
  GroupNorm gn(2, 4);  // 4 channels, 2 groups
  util::Rng rng(9);
  const Tensor x = random_input({2, 4, 3, 3}, rng, 3.0f);
  const Tensor y = gn.forward(x, false);
  // Each (sample, group) slab should have ~zero mean and ~unit variance.
  const std::size_t area = 9;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t g = 0; g < 2; ++g) {
      double sum = 0.0;
      double sq = 0.0;
      for (std::size_t c = 0; c < 2; ++c) {
        const float* plane = y.data() + ((i * 4 + g * 2 + c) * area);
        for (std::size_t p = 0; p < area; ++p) {
          sum += plane[p];
          sq += static_cast<double>(plane[p]) * plane[p];
        }
      }
      const double mean = sum / 18.0;
      EXPECT_NEAR(mean, 0.0, 1e-4);
      EXPECT_NEAR(sq / 18.0 - mean * mean, 1.0, 1e-2);
    }
  }
}

TEST(GroupNormTest, RejectsIndivisibleChannels) {
  EXPECT_THROW(GroupNorm(3, 4), std::invalid_argument);
}

TEST(GroupNormTest, GradCheck) {
  util::Rng rng(10);
  GroupNorm gn(2, 4);
  // Non-trivial gamma/beta so their gradients are exercised.
  for (auto& v : gn.parameters()[0]->value.vec()) v = rng.normalf(1.0f, 0.2f);
  for (auto& v : gn.parameters()[1]->value.vec()) v = rng.normalf(0.0f, 0.2f);
  GradCheck gc(gn, random_input({2, 4, 3, 3}, rng), rng);
  gc.check_input_grad(1e-3, 5e-2);
  gc.check_param_grads(1e-3, 5e-2);
}

// --------------------------------------------------------------- residual

TEST(Residual, ForwardAddsSkip) {
  // Body that doubles the input: conv 1x1 with weight 2, no bias.
  auto body = std::make_unique<Conv2d>(1, 1, 1, 1, 0, "b");
  body->weight().value = Tensor({1, 1}, {2.0f});
  ResidualBlock res(std::move(body));
  const Tensor x({1, 1, 1, 2}, {1.0f, -1.0f});
  const Tensor y = res.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 3.0f);   // relu(2*1 + 1)
  EXPECT_FLOAT_EQ(y[1], 0.0f);   // relu(2*-1 + -1) = relu(-3)
}

TEST(Residual, RejectsShapeChangingBody) {
  util::Rng rng(11);
  auto body = make_conv(1, 2, 3, 1, 1, rng, "b");  // changes channel count
  ResidualBlock res(std::move(body));
  EXPECT_THROW(res.forward(Tensor({1, 1, 4, 4}), false),
               std::invalid_argument);
}

TEST(Residual, GradCheck) {
  util::Rng rng(12);
  auto body = std::make_unique<Sequential>();
  body->add(make_conv(2, 2, 3, 1, 1, rng, "a"));
  body->emplace<Tanh>();  // smooth body keeps FD well-behaved
  ResidualBlock res(std::move(body));
  GradCheck gc(res, random_input({1, 2, 4, 4}, rng), rng);
  gc.check_input_grad(1e-3, 5e-2);
  gc.check_param_grads(1e-3, 5e-2);
}

// ------------------------------------------------------------- sequential

TEST(SequentialTest, ComposedGradCheck) {
  util::Rng rng(13);
  Sequential net;
  net.add(make_conv(1, 2, 3, 1, 1, rng, "c1"));
  net.emplace<Tanh>();
  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.add(make_linear(2 * 2 * 2, 3, rng, "fc"));
  GradCheck gc(net, random_input({2, 1, 4, 4}, rng), rng);
  gc.check_input_grad(1e-3, 5e-2);
  gc.check_param_grads(1e-3, 5e-2);
}

TEST(SequentialTest, ParameterOrderIsStable) {
  util::Rng rng(14);
  Sequential net;
  net.add(make_linear(2, 3, rng, "fc1"));
  net.add(make_linear(3, 4, rng, "fc2"));
  const auto params = net.parameters();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0]->name, "fc1.weight");
  EXPECT_EQ(params[1]->name, "fc1.bias");
  EXPECT_EQ(params[2]->name, "fc2.weight");
  EXPECT_EQ(params[3]->name, "fc2.bias");
}

TEST(SequentialTest, ZeroGradClearsAll) {
  util::Rng rng(15);
  Sequential net;
  net.add(make_linear(2, 2, rng, "fc"));
  net.forward(random_input({1, 2}, rng), true);
  net.backward(Tensor({1, 2}, {1, 1}));
  net.zero_grad();
  for (Parameter* p : net.parameters()) {
    for (const float g : p->grad.vec()) EXPECT_EQ(g, 0.0f);
  }
}

}  // namespace
}  // namespace fedclust::nn
