// Landmark-sketch clustering (fl/landmark.h + the FedClust/PACFL landmark
// setup paths): deterministic landmark sampling, batch-size and
// thread-count invariance of the streamed assignment, lowest-index
// tie-breaking, snapshot round trips (with corruption rejected), and
// cluster recovery vs the exact O(N²) path on a grouped population.

#include <gtest/gtest.h>

#include <sstream>

#include "clustering/metrics.h"
#include "core/fedclust.h"
#include "fl/landmark.h"
#include "fl/pacfl.h"
#include "util/thread_pool.h"

namespace fedclust::fl {
namespace {

// 24 clients drawn from 4 disjoint label sets -> 4 ground-truth groups,
// the population both the exact and the landmark setup should recover.
ExperimentConfig grouped_config() {
  ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("cifar10");
  cfg.data_spec.hw = 8;
  cfg.data_spec.noise = 1.0f;
  cfg.fed.n_clients = 24;
  cfg.fed.train_per_client = 32;
  cfg.fed.test_per_client = 6;
  cfg.fed.partition = "skew";
  cfg.fed.skew_fraction = 0.2;
  cfg.fed.label_set_pool = 4;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 3;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 8;
  cfg.local.lr = 0.05f;
  cfg.rounds = 1;
  cfg.sample_fraction = 0.25;
  cfg.seed = 17;
  cfg.algo.fedclust_init_epochs = 3;
  cfg.algo.fedclust_k = 4;
  return cfg;
}

std::string state_bytes(const FlAlgorithm& algo) {
  std::ostringstream os(std::ios::binary);
  util::BinaryWriter w(os);
  algo.save_state(w);
  return os.str();
}

TEST(LandmarkSampling, DeterministicSortedDistinctInRange) {
  const auto ids = sample_landmarks(/*seed=*/7, /*n_clients=*/1000, 64);
  ASSERT_EQ(ids.size(), 64u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_LT(ids[i], 1000u);
    if (i > 0) EXPECT_LT(ids[i - 1], ids[i]) << "sorted + distinct";
  }
  EXPECT_EQ(ids, sample_landmarks(7, 1000, 64)) << "pure in (seed, n, L)";
  EXPECT_NE(ids, sample_landmarks(8, 1000, 64)) << "seed-salted";
}

TEST(LandmarkSampling, EffectiveCountZeroMeansExact) {
  EXPECT_EQ(effective_landmarks(100, 0), 0u);
  EXPECT_EQ(effective_landmarks(100, 100), 0u);  // covers everyone = exact
  EXPECT_EQ(effective_landmarks(100, 250), 0u);
  EXPECT_EQ(effective_landmarks(100, 99), 99u);
}

TEST(LandmarkSampling, AssignBatchesPartitionTheNonLandmarks) {
  const std::vector<std::size_t> landmarks = {2, 5, 6};
  const auto batches = landmark_assign_batches(10, landmarks, 3);
  std::vector<std::size_t> flat;
  for (const auto& b : batches) {
    EXPECT_LE(b.size(), 3u);
    EXPECT_FALSE(b.empty());
    flat.insert(flat.end(), b.begin(), b.end());
  }
  EXPECT_EQ(flat, (std::vector<std::size_t>{0, 1, 3, 4, 7, 8, 9}));
}

TEST(LandmarkCluster, NearestLandmarkTieBreaksToLowestIndex) {
  // Landmarks 0 and 2 are equidistant from the query; strict < must keep
  // the first (lowest-index) minimum.
  const std::vector<std::vector<float>> feats = {{1.0f}, {5.0f}, {-1.0f}};
  const auto dist = [](const std::vector<float>& a,
                       const std::vector<float>& b) {
    return std::abs(a[0] - b[0]);
  };
  EXPECT_EQ(nearest_landmark(std::vector<float>{0.0f}, feats, dist), 0u);
  EXPECT_EQ(nearest_landmark(std::vector<float>{-1.0f}, feats, dist), 2u);
}

// The assignment must be a pure function of (feature, landmark set):
// independent of how the non-landmarks are batched and of the worker
// count doing the per-batch fan-out.
TEST(LandmarkCluster, AssignmentInvariantUnderBatchSizeAndThreads) {
  const std::size_t n = 50;
  // Synthetic 1-D features in 3 well-separated bands.
  const auto features = [&](const std::vector<std::size_t>& ids) {
    std::vector<std::vector<float>> out;
    out.reserve(ids.size());
    for (const std::size_t id : ids) {
      out.push_back({static_cast<float>(id % 3) * 10.0f +
                     0.1f * static_cast<float>(id)});
    }
    return out;
  };
  const auto dist = [](const std::vector<float>& a,
                       const std::vector<float>& b) {
    return std::abs(a[0] - b[0]);
  };
  const auto ids = sample_landmarks(3, n, 9);
  LandmarkCutPolicy cut;
  cut.k = 3;
  const auto run_with = [&](std::size_t batch, std::size_t threads) {
    util::reset_global_pool(threads);
    LandmarkCluster<std::vector<float>> sketch(n, ids, batch, features,
                                               dist);
    return sketch.run(cut);
  };
  const std::size_t prev = util::global_pool().size() + 1;
  const LandmarkResult base = run_with(7, 1);
  EXPECT_EQ(base.n_clusters, 3u);
  EXPECT_EQ(base.assignment.size(), n);
  for (const std::size_t batch : {1u, 3u, 50u}) {
    EXPECT_EQ(run_with(batch, 1).assignment, base.assignment);
  }
  EXPECT_EQ(run_with(7, 4).assignment, base.assignment);
  util::reset_global_pool(prev);
}

TEST(LandmarkCluster, RejectsDegenerateLandmarkCounts) {
  const auto features = [](const std::vector<std::size_t>& ids) {
    return std::vector<std::vector<float>>(ids.size(), {0.0f});
  };
  const auto dist = [](const std::vector<float>&, const std::vector<float>&) {
    return 0.0f;
  };
  EXPECT_THROW(LandmarkCluster<std::vector<float>>(10, {}, 4, features, dist),
               std::invalid_argument);
  EXPECT_THROW(LandmarkCluster<std::vector<float>>(
                   10, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 4, features, dist),
               std::invalid_argument);
}

// End to end on the grouped population: the sketch, clustering only half
// the clients, must land (nearly) the same partition as the exact path.
TEST(LandmarkFedClust, RecoversExactPartitionOnGroupedClients) {
  ExperimentConfig cfg = grouped_config();
  Federation exact_fed(cfg);
  core::FedClust exact(exact_fed);
  exact.run();
  EXPECT_TRUE(exact.landmark_ids().empty());

  cfg.landmarks = 12;
  Federation lm_fed(cfg);
  core::FedClust sketch(lm_fed);
  sketch.run();
  EXPECT_EQ(sketch.landmark_ids().size(), 12u);
  EXPECT_EQ(sketch.report().proximity.dim(0), 12u) << "L×L, not N×N";
  ASSERT_EQ(sketch.assignment().size(), 24u);

  const double ari = clustering::adjusted_rand_index(sketch.assignment(),
                                                     exact.assignment());
  EXPECT_GT(ari, 0.8) << "landmark partition diverged from exact";
}

TEST(LandmarkFedClust, AssignmentPureAcrossThreadCounts) {
  ExperimentConfig cfg = grouped_config();
  cfg.landmarks = 12;
  const std::size_t prev = util::global_pool().size() + 1;
  const auto run_with = [&](std::size_t threads) {
    util::reset_global_pool(threads);
    Federation fed(cfg);
    core::FedClust algo(fed);
    algo.run();
    return std::make_pair(algo.assignment(), state_bytes(algo));
  };
  const auto [asg1, state1] = run_with(1);
  const auto [asg4, state4] = run_with(4);
  util::reset_global_pool(prev);
  EXPECT_EQ(asg1, asg4);
  EXPECT_EQ(state1, state4) << "full state must be bit-identical";
}

TEST(LandmarkFedClust, SnapshotRoundTripPreservesLandmarks) {
  ExperimentConfig cfg = grouped_config();
  cfg.landmarks = 12;
  Federation fed(cfg);
  core::FedClust algo(fed);
  algo.run();
  const std::string saved = state_bytes(algo);

  Federation fresh_fed(cfg);
  core::FedClust fresh(fresh_fed);
  std::istringstream is(saved, std::ios::binary);
  util::BinaryReader rd(is);
  fresh.load_state(rd);
  EXPECT_EQ(is.peek(), std::istringstream::traits_type::eof());
  EXPECT_EQ(fresh.landmark_ids(), algo.landmark_ids());
  EXPECT_EQ(fresh.assignment(), algo.assignment());
  EXPECT_EQ(state_bytes(fresh), saved);
}

TEST(LandmarkFedClust, CorruptLandmarkSnapshotRejected) {
  ExperimentConfig cfg = grouped_config();
  cfg.landmarks = 12;
  Federation fed(cfg);
  core::FedClust algo(fed);
  algo.run();
  std::string saved = state_bytes(algo);

  // The landmark-id vector is the final state section; its last entry
  // occupies the trailing 8 bytes. An absurd id must be rejected as both
  // out of range and unsorted.
  ASSERT_GE(saved.size(), 8u);
  for (std::size_t i = saved.size() - 8; i < saved.size(); ++i) {
    saved[i] = static_cast<char>(0xFF);
  }
  Federation fresh_fed(cfg);
  core::FedClust fresh(fresh_fed);
  std::istringstream is(saved, std::ios::binary);
  util::BinaryReader rd(is);
  EXPECT_THROW(fresh.load_state(rd), std::runtime_error);
}

TEST(LandmarkPacfl, SketchAssignsEveryoneAndSnapshotsClean) {
  ExperimentConfig cfg = grouped_config();
  cfg.landmarks = 12;
  cfg.algo.pacfl_k = 4;
  Federation fed(cfg);
  Pacfl algo(fed);
  algo.run();
  EXPECT_EQ(algo.landmark_ids().size(), 12u);
  ASSERT_EQ(algo.assignment().size(), 24u);
  for (const std::size_t k : algo.assignment()) {
    EXPECT_LT(k, algo.cluster_models().size());
  }

  const std::string saved = state_bytes(algo);
  Federation fresh_fed(cfg);
  Pacfl fresh(fresh_fed);
  std::istringstream is(saved, std::ios::binary);
  util::BinaryReader rd(is);
  fresh.load_state(rd);
  EXPECT_EQ(is.peek(), std::istringstream::traits_type::eof());
  EXPECT_EQ(fresh.landmark_ids(), algo.landmark_ids());
  EXPECT_EQ(state_bytes(fresh), saved);
}

}  // namespace
}  // namespace fedclust::fl
