// Snapshot layer: golden file-format bytes (endianness stability),
// truncation/bit-flip rejection before any value reaches a model,
// save/load round trips for every algorithm's state, and bit-identical
// resume-at-round-k for FedAvg and FedClust at 1 and 4 worker threads.

#include "fl/snapshot.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/registry.h"
#include "fl/federation.h"
#include "util/thread_pool.h"

namespace fedclust {
namespace {

fl::ExperimentConfig small_cfg(std::uint64_t seed) {
  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("svhn");
  cfg.data_spec.hw = 8;
  cfg.fed.n_clients = 10;
  cfg.fed.train_per_client = 12;
  cfg.fed.test_per_client = 6;
  cfg.fed.partition = "dirichlet";
  cfg.fed.dirichlet_alpha = 0.3;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 3;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 6;
  cfg.local.lr = 0.05f;
  cfg.rounds = 3;
  cfg.sample_fraction = 0.4;
  cfg.seed = seed;
  return cfg;
}

std::string state_bytes(const fl::FlAlgorithm& algo) {
  std::ostringstream os(std::ios::binary);
  util::BinaryWriter w(os);
  algo.save_state(w);
  return os.str();
}

// ------------------------------------------------------------- format

fl::RunSnapshot golden_snapshot() {
  fl::RunSnapshot g;
  g.config_fingerprint = 0x1122334455667788ULL;
  g.seed = 42;
  g.next_round = 3;
  g.method = "FedAvg";
  g.dataset = "fmnist";
  g.comm = {400, 200, 600, 644, 2};
  fl::RoundRecord rec;
  rec.round = 2;
  rec.avg_local_test_acc = 0.5;
  rec.bytes_up = 400;
  rec.bytes_down = 200;
  rec.n_clusters = 1;
  g.records.push_back(rec);
  g.counters = {{"fl.rounds", 3}};
  util::RngState st;
  st.seed = 42;
  st.s[0] = 1;
  st.s[1] = 2;
  st.s[2] = 3;
  st.s[3] = 4;
  g.rng_probes = {{"root", st}};
  g.algo_state = {0xDE, 0xAD, 0xBE, 0xEF};
  return g;
}

// The exact on-disk image of golden_snapshot(), byte for byte. Every
// multi-byte field is little-endian by contract, so this array must match
// on any host — if this test fails on a big-endian machine, the format
// (not the test) is broken. Layout: magic, version, reserved, body length,
// body CRC32C, then the BinaryWriter body.
const std::vector<std::uint8_t> kGoldenBytes = {
    0x42, 0x5A, 0xDC, 0xFE, 0x01, 0x00, 0x00, 0x00, 0x01, 0x01, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x7A, 0x7C, 0x08, 0x46, 0x88, 0x77, 0x66, 0x55,
    0x44, 0x33, 0x22, 0x11, 0x2A, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x06, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x46, 0x65, 0x64, 0x41, 0x76, 0x67, 0x06, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x66, 0x6D, 0x6E, 0x69, 0x73, 0x74,
    0x90, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xC8, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x58, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x84, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0xE0, 0x3F, 0x90, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0xC8, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x66, 0x6C, 0x2E, 0x72,
    0x6F, 0x75, 0x6E, 0x64, 0x73, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x72, 0x6F, 0x6F, 0x74, 0x2A, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xDE, 0xAD, 0xBE,
    0xEF};

TEST(SnapshotFormat, GoldenBytesAreStable) {
  EXPECT_EQ(fl::serialize_snapshot(golden_snapshot()), kGoldenBytes);
}

TEST(SnapshotFormat, ParseRoundTripsGolden) {
  const fl::RunSnapshot g = golden_snapshot();
  const fl::RunSnapshot p = fl::parse_snapshot(kGoldenBytes);
  EXPECT_EQ(p.config_fingerprint, g.config_fingerprint);
  EXPECT_EQ(p.seed, g.seed);
  EXPECT_EQ(p.next_round, g.next_round);
  EXPECT_EQ(p.method, g.method);
  EXPECT_EQ(p.dataset, g.dataset);
  EXPECT_EQ(p.comm, g.comm);
  ASSERT_EQ(p.records.size(), 1u);
  EXPECT_EQ(p.records[0].round, 2u);
  EXPECT_EQ(p.records[0].avg_local_test_acc, 0.5);
  EXPECT_EQ(p.records[0].bytes_up, 400u);
  EXPECT_EQ(p.records[0].bytes_down, 200u);
  EXPECT_EQ(p.records[0].n_clusters, 1u);
  EXPECT_EQ(p.counters, g.counters);
  EXPECT_EQ(p.rng_probes, g.rng_probes);
  EXPECT_EQ(p.algo_state, g.algo_state);
}

TEST(SnapshotFormat, EveryTruncationIsRejected) {
  for (std::size_t len = 0; len < kGoldenBytes.size(); ++len) {
    const std::vector<std::uint8_t> prefix(kGoldenBytes.begin(),
                                           kGoldenBytes.begin() + len);
    EXPECT_THROW(fl::parse_snapshot(prefix), fl::SnapshotError)
        << "prefix of " << len << " bytes parsed";
  }
}

TEST(SnapshotFormat, EveryBitFlipIsRejected) {
  // Single-bit damage anywhere — header or body — must be detected before
  // any value can reach a model: magic/version/reserved/length by their
  // explicit checks, everything else by the body CRC.
  for (std::size_t i = 0; i < kGoldenBytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bytes = kGoldenBytes;
      bytes[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW(fl::parse_snapshot(bytes), fl::SnapshotError)
          << "flip of byte " << i << " bit " << bit << " parsed";
    }
  }
}

TEST(SnapshotFormat, TrailingBytesAreRejected) {
  std::vector<std::uint8_t> bytes = kGoldenBytes;
  bytes.push_back(0x00);
  EXPECT_THROW(fl::parse_snapshot(bytes), fl::SnapshotError);
}

TEST(SnapshotFiles, WriteThenLoadRoundTrips) {
  const std::string path = ::testing::TempDir() + "snap_roundtrip.fcsnap";
  fl::write_snapshot(golden_snapshot(), path);
  const fl::RunSnapshot p = fl::load_snapshot(path);
  EXPECT_EQ(fl::serialize_snapshot(p), kGoldenBytes);
  // Atomic write: no temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(SnapshotFiles, MissingAndCorruptFilesThrow) {
  EXPECT_THROW(fl::load_snapshot(::testing::TempDir() + "no_such.fcsnap"),
               fl::SnapshotError);
  const std::string path = ::testing::TempDir() + "snap_corrupt.fcsnap";
  std::vector<std::uint8_t> bytes = kGoldenBytes;
  bytes[100] ^= 0x10;  // body damage
  {
    std::ofstream os(path, std::ios::binary);
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(fl::load_snapshot(path), fl::SnapshotError);
  std::filesystem::remove(path);
}

TEST(SnapshotFormat, FilenameIsZeroPadded) {
  EXPECT_EQ(fl::snapshot_filename(3), "snapshot-000003.fcsnap");
  EXPECT_EQ(fl::snapshot_filename(123456), "snapshot-123456.fcsnap");
}

// ------------------------------------------------------- fingerprint

TEST(SnapshotConfig, FingerprintSeparatesConfigs) {
  const fl::ExperimentConfig base = small_cfg(5);
  fl::ExperimentConfig other = base;
  EXPECT_EQ(fl::config_fingerprint(base), fl::config_fingerprint(other));
  other.seed = 6;
  EXPECT_NE(fl::config_fingerprint(base), fl::config_fingerprint(other));
  other = base;
  other.rounds += 1;
  EXPECT_NE(fl::config_fingerprint(base), fl::config_fingerprint(other));
  other = base;
  other.codec = fl::wire::CodecId::kF16;
  EXPECT_NE(fl::config_fingerprint(base), fl::config_fingerprint(other));
  other = base;
  other.fault = fl::FaultPlan::parse("crash=0.1");
  EXPECT_NE(fl::config_fingerprint(base), fl::config_fingerprint(other));
}

TEST(SnapshotConfig, RngProbesArePureInSeed) {
  const auto a = fl::rng_probes_for(small_cfg(5));
  EXPECT_EQ(a, fl::rng_probes_for(small_cfg(5)));
  EXPECT_NE(a, fl::rng_probes_for(small_cfg(6)));
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].name, "root");
}

TEST(SnapshotManifest, CarriesProvenanceAndFullConfig) {
  const std::string json = fl::manifest_json(small_cfg(5), "FedClust");
  for (const char* key :
       {"\"manifest_version\"", "\"config_fingerprint\"", "\"seed\"",
        "\"codec\"", "\"fault_spec\"", "\"git_describe\"", "\"build_flags\"",
        "\"fedclust_threads\"", "\"federation\"", "\"dirichlet_alpha\"",
        "\"fedclust_lambda\"", "\"sample_fraction\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Strings are escaped: a quote in a method name must not break the JSON.
  const std::string weird = fl::manifest_json(small_cfg(5), "we\"ird");
  EXPECT_NE(weird.find("we\\\"ird"), std::string::npos);
}

// --------------------------------------------------- algorithm state

TEST(AlgorithmState, SaveLoadRoundTripsForEveryMethod) {
  std::vector<std::string> methods = core::all_methods();
  for (const std::string& m : core::extra_methods()) methods.push_back(m);
  fl::ExperimentConfig cfg = small_cfg(5);
  cfg.rounds = 2;
  for (const std::string& method : methods) {
    SCOPED_TRACE(method);
    fl::Federation fed(cfg);
    const auto algo = core::make_algorithm(method, fed);
    algo->run();
    const std::string saved = state_bytes(*algo);
    EXPECT_FALSE(saved.empty());

    fl::Federation fresh_fed(cfg);
    const auto fresh = core::make_algorithm(method, fresh_fed);
    std::istringstream is(saved, std::ios::binary);
    util::BinaryReader rd(is);
    fresh->load_state(rd);
    // load must consume exactly what save wrote and reproduce it.
    EXPECT_EQ(is.peek(), std::istringstream::traits_type::eof());
    EXPECT_EQ(state_bytes(*fresh), saved);
  }
}

TEST(AlgorithmState, ResumeRejectsMismatches) {
  fl::ExperimentConfig cfg = small_cfg(5);
  cfg.rounds = 2;
  fl::Federation fed(cfg);
  const auto algo = core::make_algorithm("FedAvg", fed);
  algo->run();
  const fl::RunSnapshot snap = algo->capture_snapshot(2, {});

  // Wrong method.
  fl::Federation fed_b(cfg);
  const auto other = core::make_algorithm("FedNova", fed_b);
  EXPECT_THROW(other->resume_from(snap), fl::SnapshotError);

  // Wrong config (different seed => different fingerprint).
  fl::Federation fed_c(small_cfg(6));
  const auto mism = core::make_algorithm("FedAvg", fed_c);
  EXPECT_THROW(mism->resume_from(snap), fl::SnapshotError);

  // next_round beyond the configured horizon.
  fl::RunSnapshot beyond = snap;
  beyond.next_round = cfg.rounds + 1;
  fl::Federation fed_d(cfg);
  const auto late = core::make_algorithm("FedAvg", fed_d);
  EXPECT_THROW(late->resume_from(beyond), fl::SnapshotError);

  // Drifted RNG probe state.
  fl::RunSnapshot drift = snap;
  ASSERT_FALSE(drift.rng_probes.empty());
  drift.rng_probes[0].state.s[0] ^= 1;
  fl::Federation fed_e(cfg);
  const auto drifted = core::make_algorithm("FedAvg", fed_e);
  EXPECT_THROW(drifted->resume_from(drift), fl::SnapshotError);
}

// ------------------------------------------------- resume bit-identity

void expect_identical(const fl::Trace& a, const fl::Trace& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].round, b.records[i].round);
    EXPECT_EQ(a.records[i].avg_local_test_acc,
              b.records[i].avg_local_test_acc)
        << "record " << i;
    EXPECT_EQ(a.records[i].bytes_up, b.records[i].bytes_up);
    EXPECT_EQ(a.records[i].bytes_down, b.records[i].bytes_down);
    EXPECT_EQ(a.records[i].n_clusters, b.records[i].n_clusters);
  }
}

// Restores the previous global pool size around each test, as in
// parallel_round_test.
class SnapshotResumeTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    prev_threads_ = util::global_pool().size() + 1;
    util::reset_global_pool(GetParam());
  }
  void TearDown() override { util::reset_global_pool(prev_threads_); }

  // Uninterrupted run vs halt-at-boundary-2 + resume: trace, final state
  // bytes, and comm ledgers must match bit for bit.
  void check_resume(const std::string& method) {
    fl::ExperimentConfig cfg = small_cfg(11);
    cfg.rounds = 4;

    fl::Federation fed_full(cfg);
    const auto full = core::make_algorithm(method, fed_full);
    const fl::Trace full_trace = full->run();

    const std::string dir = ::testing::TempDir() + "snap_resume_" + method +
                            "_t" + std::to_string(GetParam());
    std::filesystem::create_directories(dir);
    fl::Federation fed_halt(cfg);
    const auto halted = core::make_algorithm(method, fed_halt);
    fl::CheckpointPolicy policy;
    policy.dir = dir;
    policy.halt_after = 2;
    halted->set_checkpoint_policy(policy);
    const fl::Trace partial = halted->run();
    EXPECT_LT(partial.records.size(), full_trace.records.size());

    fl::Federation fed_res(cfg);
    const auto resumed = core::make_algorithm(method, fed_res);
    resumed->resume_from(
        fl::load_snapshot(dir + "/" + fl::snapshot_filename(2)));
    const fl::Trace resumed_trace = resumed->run();

    expect_identical(full_trace, resumed_trace);
    EXPECT_EQ(state_bytes(*resumed), state_bytes(*full));
    EXPECT_EQ(fed_res.comm().ledger(), fed_full.comm().ledger());
    std::filesystem::remove_all(dir);
  }

 private:
  std::size_t prev_threads_ = 1;
};

TEST_P(SnapshotResumeTest, FedAvgResumeAtRoundKIsBitIdentical) {
  check_resume("FedAvg");
}

TEST_P(SnapshotResumeTest, FedClustResumeAtRoundKIsBitIdentical) {
  check_resume("FedClust");
}

INSTANTIATE_TEST_SUITE_P(Threads, SnapshotResumeTest,
                         ::testing::Values(1, 4),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

// --------------------------------------------- sparse per-client state

// A large virtual population where each round touches a handful of
// clients: checkpoints must scale with participation, not population
// (docs/INVARIANTS.md §Scale), and halt/resume must stay bit-identical.
fl::ExperimentConfig sparse_cfg() {
  fl::ExperimentConfig cfg = small_cfg(17);
  cfg.fed.n_clients = 10000;
  cfg.sample_fraction = 0.001;  // 10 of 10,000 per round
  cfg.rounds = 2;
  cfg.virtual_clients = true;
  cfg.client_cache = 16;
  cfg.eval_clients = 6;  // keep eval from materializing the population
  return cfg;
}

TEST(SparseSnapshot, HaltResumeTouchingTenOfTenThousandIsBitIdentical) {
  const fl::ExperimentConfig cfg = sparse_cfg();

  fl::Federation fed_full(cfg);
  const auto full = core::make_algorithm("Local", fed_full);
  const fl::Trace full_trace = full->run();

  const std::string dir = ::testing::TempDir() + "snap_sparse";
  std::filesystem::create_directories(dir);
  fl::Federation fed_halt(cfg);
  const auto halted = core::make_algorithm("Local", fed_halt);
  fl::CheckpointPolicy policy;
  policy.dir = dir;
  policy.halt_after = 1;
  halted->set_checkpoint_policy(policy);
  halted->run();

  fl::Federation fed_res(cfg);
  const auto resumed = core::make_algorithm("Local", fed_res);
  resumed->resume_from(
      fl::load_snapshot(dir + "/" + fl::snapshot_filename(1)));
  const fl::Trace resumed_trace = resumed->run();

  expect_identical(full_trace, resumed_trace);
  EXPECT_EQ(state_bytes(*resumed), state_bytes(*full));

  // Proportionality: the snapshot holds only the touched slots. A dense
  // dump would be ~n_clients * dim floats; the sparse one is bounded by
  // the cumulative cohort (10/round) plus fixed headers.
  const std::size_t dim = fed_full.init_params().size();
  const std::size_t snap_size = static_cast<std::size_t>(
      std::filesystem::file_size(dir + "/" + fl::snapshot_filename(1)));
  const std::size_t dense_estimate = cfg.fed.n_clients * dim * 4;
  EXPECT_LT(snap_size * 50, dense_estimate);
  EXPECT_LT(snap_size, 2 * 16 + 20 * (16 + dim * 4) + 4096);
  std::filesystem::remove_all(dir);
}

TEST(SparseSnapshot, CorruptSparseRecordsAreRejected) {
  const fl::ExperimentConfig cfg = sparse_cfg();
  fl::Federation fed(cfg);
  const auto algo = core::make_algorithm("Local", fed);
  algo->run();
  const std::string good = state_bytes(*algo);
  ASSERT_GE(good.size(), 24u);  // u64 n, u64 count, first u64 id, ...

  const auto load_bytes = [&](std::string bytes) {
    std::istringstream is(std::move(bytes), std::ios::binary);
    util::BinaryReader r(is);
    fl::Federation fresh_fed(cfg);
    core::make_algorithm("Local", fresh_fed)->load_state(r);
  };
  load_bytes(good);  // sanity: the untampered bytes load

  // Local's state is exactly the sparse map: u64 n_clients, u64 count,
  // then (u64 id, f32_vec) ascending. Corrupt each structural field.
  std::string wrong_pop = good;
  wrong_pop[0] ^= 1;  // population != federation's n_clients
  EXPECT_THROW(load_bytes(wrong_pop), std::runtime_error);

  std::string huge_count = good;
  huge_count[8 + 6] = '\x7f';  // touched count >> population
  EXPECT_THROW(load_bytes(huge_count), std::runtime_error);

  std::string bad_id = good;
  bad_id[16 + 6] = '\x7f';  // first record id far out of range
  EXPECT_THROW(load_bytes(bad_id), std::runtime_error);
}

}  // namespace
}  // namespace fedclust
