// Model-level tests: flat parameter views, the classifier slice, the model
// zoo architectures, the optimizer, and end-to-end trainability on a toy
// classification problem.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/init.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace fedclust::nn {
namespace {

using tensor::Tensor;

// --------------------------------------------------------------- loss

TEST(Loss, UniformLogitsGiveLogK) {
  const Tensor logits({2, 4});  // all zeros -> uniform softmax
  const LossResult r = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0f), 1e-5);
}

TEST(Loss, PerfectPredictionNearZeroLoss) {
  Tensor logits({1, 3}, {100.0f, 0.0f, 0.0f});
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_NEAR(r.loss, 0.0f, 1e-5);
}

TEST(Loss, GradientIsSoftmaxMinusOnehotOverN) {
  Tensor logits({2, 2}, {0.0f, 0.0f, 0.0f, 0.0f});
  const LossResult r = softmax_cross_entropy(logits, {0, 1});
  EXPECT_NEAR(r.grad_logits.at({0, 0}), (0.5f - 1.0f) / 2.0f, 1e-6);
  EXPECT_NEAR(r.grad_logits.at({0, 1}), 0.5f / 2.0f, 1e-6);
  EXPECT_NEAR(r.grad_logits.at({1, 1}), (0.5f - 1.0f) / 2.0f, 1e-6);
}

TEST(Loss, GradCheckAgainstFiniteDifferences) {
  util::Rng rng(31);
  Tensor logits({3, 5});
  for (auto& x : logits.vec()) x = rng.normalf(0, 1);
  const std::vector<std::int64_t> labels = {2, 0, 4};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const double eps = 1e-3;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits;
    Tensor lm = logits;
    lp[i] += static_cast<float>(eps);
    lm[i] -= static_cast<float>(eps);
    const double num = (softmax_cross_entropy(lp, labels).loss -
                        softmax_cross_entropy(lm, labels).loss) /
                       (2.0 * eps);
    EXPECT_NEAR(r.grad_logits[i], num, 1e-3);
  }
}

TEST(Loss, RejectsBadLabels) {
  const Tensor logits({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {-1}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::invalid_argument);
}

TEST(Loss, Accuracy) {
  const Tensor logits({3, 2}, {0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f});
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1, 0}), 1.0);
  EXPECT_NEAR(accuracy(logits, {1, 1, 0}), 2.0 / 3.0, 1e-12);
}

// --------------------------------------------------------------- model

TEST(ModelTest, FlatParamsRoundTrip) {
  Model m = mlp(4, {3}, 2, /*seed=*/7);
  const std::vector<float> flat = m.flat_params();
  EXPECT_EQ(flat.size(), m.num_params());
  EXPECT_EQ(m.num_params(), 4u * 3 + 3 + 3 * 2 + 2);
  std::vector<float> changed = flat;
  for (auto& x : changed) x += 1.0f;
  m.set_flat_params(changed);
  EXPECT_EQ(m.flat_params(), changed);
  EXPECT_THROW(m.set_flat_params(std::vector<float>(3)),
               std::invalid_argument);
}

TEST(ModelTest, ClassifierRangeIsFinalLinear) {
  Model m = mlp(4, {3}, 2, 7);
  const auto [offset, size] = m.classifier_range();
  EXPECT_EQ(size, 3u * 2 + 2);  // final Linear weight + bias
  EXPECT_EQ(offset, m.num_params() - size);
  const auto cls = m.classifier_params();
  EXPECT_EQ(cls.size(), size);
  // The slice must equal the tail of the flat vector.
  const auto flat = m.flat_params();
  for (std::size_t i = 0; i < size; ++i) {
    EXPECT_EQ(cls[i], flat[offset + i]);
  }
}

TEST(ModelTest, ParamLayoutNamesAndOffsets) {
  Model m = mlp(4, {3}, 2, 7);
  const auto& layout = m.param_layout();
  ASSERT_EQ(layout.size(), 4u);
  EXPECT_EQ(layout[0].name, "fc1.weight");
  EXPECT_EQ(layout[3].name, "classifier.bias");
  EXPECT_EQ(layout[0].offset, 0u);
  for (std::size_t i = 1; i < layout.size(); ++i) {
    EXPECT_EQ(layout[i].offset,
              layout[i - 1].offset + layout[i - 1].size);
  }
  const auto w = m.param_by_name("classifier.weight");
  EXPECT_EQ(w.size(), 6u);
  EXPECT_THROW(m.param_by_name("nope"), std::invalid_argument);
}

TEST(ModelTest, SameSeedSameWeights) {
  const Model a = lenet5(3, 16, 10, 42);
  const Model b = lenet5(3, 16, 10, 42);
  const Model c = lenet5(3, 16, 10, 43);
  EXPECT_EQ(a.flat_params(), b.flat_params());
  EXPECT_NE(a.flat_params(), c.flat_params());
}

// ----------------------------------------------------------- model zoo

TEST(ModelZoo, LeNet5Shapes) {
  Model m = lenet5(3, 16, 10, 1);
  const Tensor x({2, 3, 16, 16});
  const Tensor y = m.forward(x);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 10}));
  // conv1: 6*(3*25)+6; conv2: 16*(6*25)+16; fc: 64*120+120, 120*84+84,
  // 84*10+10.
  EXPECT_EQ(m.num_params(),
            (6u * 75 + 6) + (16u * 150 + 16) + (64u * 120 + 120) +
                (120u * 84 + 84) + (84u * 10 + 10));
}

TEST(ModelZoo, LeNet5OriginalScale) {
  Model m = lenet5(3, 32, 10, 1);
  EXPECT_EQ(m.forward(Tensor({1, 3, 32, 32})).shape(),
            (tensor::Shape{1, 10}));
}

TEST(ModelZoo, ResNet9Shapes) {
  Model m = resnet9(3, 16, 20, /*width=*/8, 1);
  const Tensor y = m.forward(Tensor({2, 3, 16, 16}));
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 20}));
  EXPECT_THROW(resnet9(3, 15, 10, 8, 1), std::invalid_argument);
}

TEST(ModelZoo, VggLiteShapes) {
  Model m = vgg_lite(3, 16, 10, 8, 1);
  EXPECT_EQ(m.forward(Tensor({1, 3, 16, 16})).shape(),
            (tensor::Shape{1, 10}));
  EXPECT_THROW(vgg_lite(3, 12, 10, 8, 1), std::invalid_argument);
}

TEST(ModelZoo, BuildModelDispatch) {
  for (const char* arch : {"lenet5", "resnet9", "vgglite", "mlp"}) {
    ModelSpec spec;
    spec.arch = arch;
    spec.in_channels = 3;
    spec.image_hw = 16;
    spec.num_classes = 10;
    Model m = build_model(spec, 5);
    EXPECT_EQ(m.forward(Tensor({1, 3, 16, 16})).shape(),
              (tensor::Shape{1, 10}))
        << arch;
  }
  ModelSpec bad;
  bad.arch = "transformer";
  EXPECT_THROW(build_model(bad, 1), std::invalid_argument);
}

TEST(ModelZoo, FactoryReproducible) {
  ModelSpec spec;
  spec.arch = "mlp";
  spec.image_hw = 8;
  const ModelFactory f = make_factory(spec);
  EXPECT_EQ(f(3).flat_params(), f(3).flat_params());
}

// ------------------------------------------------------------ optimizer

TEST(SgdTest, PlainStep) {
  util::Rng rng(51);
  auto fc = make_linear(1, 1, rng, "fc");
  fc->weight().value[0] = 2.0f;
  fc->weight().grad[0] = 1.0f;
  fc->bias().value[0] = 0.5f;
  fc->bias().grad[0] = -2.0f;
  Sgd opt(fc->parameters(), {.lr = 0.1f});
  opt.step();
  EXPECT_FLOAT_EQ(fc->weight().value[0], 1.9f);
  EXPECT_FLOAT_EQ(fc->bias().value[0], 0.7f);
}

TEST(SgdTest, MomentumAccumulates) {
  util::Rng rng(52);
  auto fc = make_linear(1, 1, rng, "fc");
  fc->weight().value[0] = 0.0f;
  Sgd opt(fc->parameters(), {.lr = 1.0f, .momentum = 0.9f});
  fc->weight().grad[0] = 1.0f;
  fc->bias().grad[0] = 0.0f;
  opt.step();  // v=1, w=-1
  EXPECT_FLOAT_EQ(fc->weight().value[0], -1.0f);
  opt.step();  // v=1.9, w=-2.9
  EXPECT_FLOAT_EQ(fc->weight().value[0], -2.9f);
}

TEST(SgdTest, WeightDecayShrinks) {
  util::Rng rng(53);
  auto fc = make_linear(1, 1, rng, "fc");
  fc->weight().value[0] = 10.0f;
  fc->weight().grad[0] = 0.0f;
  fc->bias().value[0] = 0.0f;
  Sgd opt(fc->parameters(), {.lr = 0.1f, .weight_decay = 0.5f});
  opt.step();
  EXPECT_FLOAT_EQ(fc->weight().value[0], 10.0f - 0.1f * 0.5f * 10.0f);
}

TEST(SgdTest, ProximalTermPullsTowardReference) {
  util::Rng rng(54);
  auto fc = make_linear(1, 1, rng, "fc");
  fc->weight().value[0] = 5.0f;
  fc->bias().value[0] = 0.0f;
  fc->weight().grad[0] = 0.0f;
  Sgd opt(fc->parameters(), {.lr = 0.1f, .prox_mu = 1.0f});
  opt.set_prox_reference({0.0f, 0.0f});  // pull both params toward 0
  opt.step();
  EXPECT_FLOAT_EQ(fc->weight().value[0], 5.0f - 0.1f * 5.0f);
  // Without a reference the prox term is inert.
  opt.set_prox_reference({});
  const float before = fc->weight().value[0];
  opt.step();
  EXPECT_FLOAT_EQ(fc->weight().value[0], before);
  EXPECT_THROW(opt.set_prox_reference({1.0f}), std::invalid_argument);
}

TEST(SgdTest, ZeroGrad) {
  util::Rng rng(55);
  auto fc = make_linear(2, 2, rng, "fc");
  fc->weight().grad[0] = 3.0f;
  Sgd opt(fc->parameters(), {});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(fc->weight().grad[0], 0.0f);
}

// -------------------------------------------------- end-to-end training

// Two well-separated Gaussian blobs must be learnable to ~100% within a few
// hundred SGD steps; this exercises forward, loss, backward, and step
// together.
TEST(Training, MlpLearnsGaussianBlobs) {
  util::Rng rng(61);
  const std::size_t n = 128;
  Tensor x({n, 2});
  std::vector<std::int64_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t label = static_cast<std::int64_t>(i % 2);
    const float cx = label == 0 ? -2.0f : 2.0f;
    x[i * 2 + 0] = rng.normalf(cx, 0.5f);
    x[i * 2 + 1] = rng.normalf(-cx, 0.5f);
    y[i] = label;
  }
  Model m = mlp(2, {8}, 2, 62);
  Sgd opt(m.parameters(), {.lr = 0.1f, .momentum = 0.9f});
  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int step = 0; step < 200; ++step) {
    opt.zero_grad();
    const Tensor logits = m.forward(x, /*train=*/true);
    const LossResult lr = softmax_cross_entropy(logits, y);
    if (step == 0) first_loss = lr.loss;
    last_loss = lr.loss;
    m.backward(lr.grad_logits);
    opt.step();
  }
  EXPECT_LT(last_loss, 0.5f * first_loss);
  EXPECT_GT(accuracy(m.forward(x), y), 0.98);
}

// The conv stack must be trainable too (tiny LeNet on a synthetic
// two-texture problem: class 0 = vertical stripes, class 1 = horizontal).
TEST(Training, LeNetLearnsStripes) {
  util::Rng rng(63);
  const std::size_t n = 64;
  Tensor x({n, 1, 16, 16});
  std::vector<std::int64_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t label = static_cast<std::int64_t>(i % 2);
    y[i] = label;
    for (std::size_t r = 0; r < 16; ++r) {
      for (std::size_t c = 0; c < 16; ++c) {
        const bool on = label == 0 ? (c % 2 == 0) : (r % 2 == 0);
        x[i * 256 + r * 16 + c] =
            (on ? 1.0f : -1.0f) + rng.normalf(0.0f, 0.1f);
      }
    }
  }
  Model m = lenet5(1, 16, 2, 64);
  Sgd opt(m.parameters(), {.lr = 0.05f, .momentum = 0.9f});
  for (int step = 0; step < 120; ++step) {
    opt.zero_grad();
    const LossResult lr = softmax_cross_entropy(m.forward(x, true), y);
    m.backward(lr.grad_logits);
    opt.step();
  }
  EXPECT_GT(accuracy(m.forward(x), y), 0.95);
}

}  // namespace
}  // namespace fedclust::nn
