// The typed wire layer: CRC32C and little-endian primitives, the three
// payload codecs (raw_f32 byte-exact, f16, qint8), envelope framing with
// checksum-first rejection of corrupt bytes, envelope-based comm billing,
// checkpoint v2 integrity, span-name interning, and end-to-end federation
// runs under a lossy codec (thread-count invariant, >= 3x smaller).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "fl/codec.h"
#include "fl/comm.h"
#include "fl/fault.h"
#include "fl/federation.h"
#include "fl/fedavg.h"
#include "fl/wire.h"
#include "nn/checkpoint.h"
#include "nn/model_zoo.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/serialization.h"
#include "util/thread_pool.h"

namespace fedclust {
namespace {

using fl::wire::CodecId;
using fl::wire::DecodeStatus;
using fl::wire::Envelope;
using fl::wire::MessageKind;

const CodecId kAllCodecs[] = {CodecId::kRawF32, CodecId::kF16,
                              CodecId::kQInt8};
const MessageKind kAllKinds[] = {
    MessageKind::kModelPull, MessageKind::kUpdatePush,
    MessageKind::kClusterAssign, MessageKind::kWarmupWeights,
    MessageKind::kSubspace};

std::uint32_t f32_bits(float v) {
  std::uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

// ------------------------------------------------- serialization primitives

TEST(Crc32c, KnownAnswer) {
  // The standard CRC32C (Castagnoli) check value.
  const char* s = "123456789";
  EXPECT_EQ(util::crc32c(reinterpret_cast<const std::uint8_t*>(s), 9),
            0xE3069283u);
  EXPECT_EQ(util::crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, ExtendComposes) {
  const std::uint8_t data[] = {0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02};
  const std::uint32_t whole = util::crc32c(data, 6);
  std::uint32_t split = util::crc32c(data, 2);
  split = util::crc32c_extend(split, data + 2, 4);
  EXPECT_EQ(split, whole);
}

TEST(LittleEndian, PutGetGoldens) {
  std::vector<std::uint8_t> buf;
  util::put_u16_le(buf, 0x1234);
  util::put_u32_le(buf, 0xDEADBEEF);
  util::put_u64_le(buf, 0x0102030405060708ULL);
  util::put_f32_le(buf, 1.0f);
  const std::uint8_t want[] = {0x34, 0x12, 0xEF, 0xBE, 0xAD, 0xDE,
                               0x08, 0x07, 0x06, 0x05, 0x04, 0x03,
                               0x02, 0x01, 0x00, 0x00, 0x80, 0x3F};
  ASSERT_EQ(buf.size(), sizeof(want));
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], want[i]) << "byte " << i;
  }
  EXPECT_EQ(util::get_u16_le(buf.data()), 0x1234);
  EXPECT_EQ(util::get_u32_le(buf.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(util::get_u64_le(buf.data() + 6), 0x0102030405060708ULL);
  EXPECT_EQ(util::get_f32_le(buf.data() + 14), 1.0f);
}

// ----------------------------------------------------------------- codecs

TEST(Codec, NamesRoundTrip) {
  for (const CodecId c : kAllCodecs) {
    EXPECT_EQ(fl::wire::codec_from_string(fl::wire::codec_name(c)), c);
  }
  EXPECT_THROW(fl::wire::codec_from_string("gzip"), std::invalid_argument);
  EXPECT_TRUE(fl::wire::codec_id_valid(0));
  EXPECT_TRUE(fl::wire::codec_id_valid(2));
  EXPECT_FALSE(fl::wire::codec_id_valid(3));
}

TEST(Codec, EncodedSizeMatchesEncodeExactly) {
  util::Rng rng(7);
  for (const CodecId c : kAllCodecs) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{3}, std::size_t{255},
                                std::size_t{256}, std::size_t{257},
                                std::size_t{1000}}) {
      std::vector<float> v(n);
      for (auto& x : v) x = static_cast<float>(rng.uniform(-5.0, 5.0));
      const auto bytes = fl::wire::encode_payload(c, v.data(), n);
      EXPECT_EQ(bytes.size(), fl::wire::encoded_size(c, n))
          << fl::wire::codec_name(c) << " n=" << n;
    }
  }
}

TEST(Codec, RawF32RoundTripsBitExactly) {
  const std::vector<float> v = {
      0.0f, -0.0f, 1.0f, -2.5f, 1e-38f,
      std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::max()};
  const auto bytes =
      fl::wire::encode_payload(CodecId::kRawF32, v.data(), v.size());
  const auto back = fl::wire::decode_payload(CodecId::kRawF32, bytes.data(),
                                             bytes.size(), v.size());
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(f32_bits(back[i]), f32_bits(v[i])) << "value " << i;
  }
}

TEST(Codec, F16KnownConversions) {
  EXPECT_EQ(fl::wire::f32_to_f16(0.0f), 0x0000);
  EXPECT_EQ(fl::wire::f32_to_f16(-0.0f), 0x8000);
  EXPECT_EQ(fl::wire::f32_to_f16(1.0f), 0x3C00);
  EXPECT_EQ(fl::wire::f32_to_f16(-2.0f), 0xC000);
  EXPECT_EQ(fl::wire::f32_to_f16(65504.0f), 0x7BFF);  // largest finite f16
  // Overflow saturates to infinity (the validator's problem downstream).
  EXPECT_EQ(fl::wire::f32_to_f16(65520.0f), 0x7C00);
  EXPECT_EQ(fl::wire::f32_to_f16(1e10f), 0x7C00);
  EXPECT_EQ(fl::wire::f32_to_f16(std::numeric_limits<float>::infinity()),
            0x7C00);
  EXPECT_EQ(fl::wire::f16_to_f32(0x3C00), 1.0f);
  EXPECT_EQ(fl::wire::f16_to_f32(0xC000), -2.0f);
  EXPECT_EQ(fl::wire::f16_to_f32(0x7BFF), 65504.0f);
  EXPECT_TRUE(std::isnan(
      fl::wire::f16_to_f32(fl::wire::f32_to_f16(std::nanf("")))));
  // Round-to-nearest-even at the halfway point: 1 + 2^-11 is exactly between
  // two f16 values and must round to the even mantissa (1.0).
  EXPECT_EQ(fl::wire::f32_to_f16(1.0f + 0.00048828125f), 0x3C00);
}

TEST(Codec, F16RoundTripIsBoundedAndIdempotent) {
  util::Rng rng(11);
  std::vector<float> v(513);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-100.0, 100.0));
  const auto bytes = fl::wire::encode_payload(CodecId::kF16, v.data(),
                                              v.size());
  const auto back = fl::wire::decode_payload(CodecId::kF16, bytes.data(),
                                             bytes.size(), v.size());
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    // binary16 keeps ~3 decimal digits: relative error <= 2^-11.
    EXPECT_LE(std::fabs(back[i] - v[i]), std::fabs(v[i]) * 0.0005f + 1e-6f);
  }
  // A decoded f16 value re-encodes to the same bits (idempotent fixpoint).
  const auto bytes2 = fl::wire::encode_payload(CodecId::kF16, back.data(),
                                               back.size());
  EXPECT_EQ(bytes, bytes2);
}

TEST(Codec, QInt8ErrorBoundedPerChunk) {
  util::Rng rng(13);
  // 2.5 chunks, each with its own range.
  std::vector<float> v(640);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const float scale = 1.0f + static_cast<float>(i / fl::wire::kQuantChunk);
    v[i] = static_cast<float>(rng.uniform(-scale, scale));
  }
  const auto bytes = fl::wire::encode_payload(CodecId::kQInt8, v.data(),
                                              v.size());
  const auto back = fl::wire::decode_payload(CodecId::kQInt8, bytes.data(),
                                             bytes.size(), v.size());
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t chunk = 0; chunk * fl::wire::kQuantChunk < v.size();
       ++chunk) {
    const std::size_t lo = chunk * fl::wire::kQuantChunk;
    const std::size_t hi = std::min(v.size(), lo + fl::wire::kQuantChunk);
    float mn = v[lo], mx = v[lo];
    for (std::size_t i = lo; i < hi; ++i) {
      mn = std::min(mn, v[i]);
      mx = std::max(mx, v[i]);
    }
    const float step = (mx - mn) / 255.0f;
    for (std::size_t i = lo; i < hi; ++i) {
      EXPECT_LE(std::fabs(back[i] - v[i]), step * 0.5f + 1e-6f)
          << "value " << i;
    }
  }
}

TEST(Codec, QInt8ConstantChunkIsExact) {
  std::vector<float> v(300, 0.125f);
  const auto bytes = fl::wire::encode_payload(CodecId::kQInt8, v.data(),
                                              v.size());
  const auto back = fl::wire::decode_payload(CodecId::kQInt8, bytes.data(),
                                             bytes.size(), v.size());
  for (const float x : back) EXPECT_EQ(x, 0.125f);
}

TEST(Codec, QInt8PoisonsNonFiniteChunks) {
  std::vector<float> v(520, 1.0f);
  v[300] = std::numeric_limits<float>::infinity();  // poisons chunk 1 only
  const auto bytes = fl::wire::encode_payload(CodecId::kQInt8, v.data(),
                                              v.size());
  const auto back = fl::wire::decode_payload(CodecId::kQInt8, bytes.data(),
                                             bytes.size(), v.size());
  for (std::size_t i = 0; i < fl::wire::kQuantChunk; ++i) {
    EXPECT_EQ(back[i], 1.0f) << "clean chunk value " << i;
  }
  for (std::size_t i = fl::wire::kQuantChunk; i < 512; ++i) {
    EXPECT_TRUE(std::isnan(back[i]))
        << "poisoned chunk must decode to NaN at " << i;
  }
  for (std::size_t i = 512; i < v.size(); ++i) {
    EXPECT_EQ(back[i], 1.0f) << "trailing chunk value " << i;
  }
}

TEST(Codec, EncodingIsDeterministic) {
  util::Rng rng(17);
  std::vector<float> v(777);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-3.0, 3.0));
  for (const CodecId c : kAllCodecs) {
    EXPECT_EQ(fl::wire::encode_payload(c, v.data(), v.size()),
              fl::wire::encode_payload(c, v.data(), v.size()));
  }
}

TEST(Codec, DecodeRejectsInconsistentLength) {
  std::vector<float> v(10, 1.0f);
  for (const CodecId c : kAllCodecs) {
    auto bytes = fl::wire::encode_payload(c, v.data(), v.size());
    EXPECT_THROW(
        fl::wire::decode_payload(c, bytes.data(), bytes.size() - 1, v.size()),
        std::runtime_error);
    EXPECT_THROW(
        fl::wire::decode_payload(c, bytes.data(), bytes.size(), v.size() + 1),
        std::runtime_error);
  }
}

// -------------------------------------------------------------- envelopes

TEST(Wire, RoundTripsEveryKindAndCodec) {
  util::Rng rng(19);
  std::vector<float> v(321);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  for (const MessageKind kind : kAllKinds) {
    for (const CodecId codec : kAllCodecs) {
      const auto bytes = fl::wire::encode(kind, codec, 42, 7, v);
      EXPECT_EQ(bytes.size(), fl::wire::wire_size(codec, v.size()));
      Envelope env;
      ASSERT_EQ(fl::wire::try_decode(bytes.data(), bytes.size(), env),
                DecodeStatus::kOk)
          << fl::wire::message_kind_name(kind) << "/"
          << fl::wire::codec_name(codec);
      EXPECT_EQ(env.kind, kind);
      EXPECT_EQ(env.codec, codec);
      EXPECT_EQ(env.sender, 42u);
      EXPECT_EQ(env.round, 7u);
      ASSERT_EQ(env.payload.size(), v.size());
      if (codec == CodecId::kRawF32) {
        for (std::size_t i = 0; i < v.size(); ++i) {
          EXPECT_EQ(f32_bits(env.payload[i]), f32_bits(v[i]));
        }
      }
    }
  }
}

TEST(Wire, GoldenBytesAreEndiannessStable) {
  // Hard-coded envelope produced by an independent CRC32C implementation:
  // kUpdatePush / raw_f32, sender 7, round 3, payload {1.0f, -2.5f}. This
  // must match on every host, or checkpoints/traces stop being portable.
  const std::vector<float> payload = {1.0f, -2.5f};
  const std::uint8_t want[] = {
      0x7E, 0x71, 0xDC, 0xFE, 0x01, 0x00, 0x01, 0x00,  // magic/ver/kind/codec
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // sender
      0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // round
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // element count
      0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // payload bytes
      0x18, 0x45, 0x27, 0xDD,                          // CRC32C
      0x00, 0x00, 0x80, 0x3F, 0x00, 0x00, 0x20, 0xC0};
  const auto got = fl::wire::encode(MessageKind::kUpdatePush,
                                    CodecId::kRawF32, 7, 3, payload);
  ASSERT_EQ(got.size(), sizeof(want));
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "byte " << i;
  }
}

TEST(Wire, RejectsEveryTruncation) {
  const std::vector<float> v = {1.0f, 2.0f, 3.0f};
  const auto bytes =
      fl::wire::encode(MessageKind::kModelPull, CodecId::kRawF32, 1, 2, v);
  Envelope env;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_NE(fl::wire::try_decode(bytes.data(), len, env), DecodeStatus::kOk)
        << "accepted a " << len << "-byte prefix";
  }
}

TEST(Wire, RejectsGarbage) {
  std::vector<std::uint8_t> junk(128);
  util::Rng rng(23);
  for (auto& b : junk) {
    b = static_cast<std::uint8_t>(rng.randint(0, 256));
  }
  Envelope env;
  EXPECT_EQ(fl::wire::try_decode(junk.data(), junk.size(), env),
            DecodeStatus::kBadMagic);
}

TEST(Wire, DetectsEverySingleBitFlip) {
  const std::vector<float> v = {0.5f, -1.25f};
  const auto bytes =
      fl::wire::encode(MessageKind::kUpdatePush, CodecId::kRawF32, 9, 4, v);
  Envelope env;
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = bytes;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(fl::wire::try_decode(flipped.data(), flipped.size(), env),
                DecodeStatus::kOk)
          << "undetected flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(Wire, StatusPrecedenceAndNames) {
  const std::vector<float> v = {1.0f};
  const auto good =
      fl::wire::encode(MessageKind::kModelPull, CodecId::kRawF32, 0, 0, v);
  Envelope env;

  auto mutated = good;
  mutated[0] ^= 0xFF;  // magic
  EXPECT_EQ(fl::wire::try_decode(mutated.data(), mutated.size(), env),
            DecodeStatus::kBadMagic);
  mutated = good;
  mutated[4] = 0x7F;  // version
  EXPECT_EQ(fl::wire::try_decode(mutated.data(), mutated.size(), env),
            DecodeStatus::kBadVersion);
  mutated = good;
  mutated[6] = 200;  // kind
  EXPECT_EQ(fl::wire::try_decode(mutated.data(), mutated.size(), env),
            DecodeStatus::kBadKind);
  mutated = good;
  mutated[7] = 200;  // codec
  EXPECT_EQ(fl::wire::try_decode(mutated.data(), mutated.size(), env),
            DecodeStatus::kBadCodec);
  mutated = good;
  mutated[32] = 2;  // payload length field shrinks below the actual bytes
  EXPECT_EQ(fl::wire::try_decode(mutated.data(), mutated.size(), env),
            DecodeStatus::kLengthMismatch);
  mutated = good;
  mutated[32] = 200;  // payload length field beyond the actual bytes
  EXPECT_EQ(fl::wire::try_decode(mutated.data(), mutated.size(), env),
            DecodeStatus::kTruncated);
  mutated = good;
  mutated.back() ^= 0x01;  // payload bit flip
  EXPECT_EQ(fl::wire::try_decode(mutated.data(), mutated.size(), env),
            DecodeStatus::kBadChecksum);

  EXPECT_STREQ(fl::wire::decode_status_name(DecodeStatus::kBadChecksum),
               "bad_checksum");
  EXPECT_STREQ(fl::wire::message_kind_name(MessageKind::kUpdatePush),
               "update_push");
  EXPECT_THROW(fl::wire::decode(mutated), std::runtime_error);
}

TEST(Wire, BadPayloadWhenLengthFieldConsistentButWrongForCodec) {
  // Hand-build an envelope whose CRC and length field agree with the actual
  // byte count, but whose payload is not a whole number of f32 values for
  // the declared element count — kBadPayload, the codec-level rejection.
  std::vector<std::uint8_t> env_bytes;
  util::put_u32_le(env_bytes, fl::wire::kMagic);
  util::put_u16_le(env_bytes, fl::wire::kVersion);
  env_bytes.push_back(0);   // kModelPull
  env_bytes.push_back(0);   // raw_f32
  util::put_u64_le(env_bytes, 0);   // sender
  util::put_u64_le(env_bytes, 0);   // round
  util::put_u64_le(env_bytes, 3);   // claims 3 floats...
  util::put_u64_le(env_bytes, 10);  // ...in 10 bytes (needs 12)
  const std::uint8_t payload[10] = {};
  std::uint32_t crc = util::crc32c(env_bytes.data(), env_bytes.size());
  crc = util::crc32c_extend(crc, payload, sizeof(payload));
  util::put_u32_le(env_bytes, crc);
  env_bytes.insert(env_bytes.end(), payload, payload + sizeof(payload));
  Envelope env;
  EXPECT_EQ(fl::wire::try_decode(env_bytes.data(), env_bytes.size(), env),
            DecodeStatus::kBadPayload);
}

// ---------------------------------------------------------------- billing

TEST(CommTracker, BillsEnvelopes) {
  fl::CommTracker comm;
  comm.upload_envelope(/*n_floats=*/100, /*encoded_bytes=*/400);
  comm.download_envelope(/*n_floats=*/50, /*encoded_bytes=*/100,
                         /*messages=*/2);
  EXPECT_EQ(comm.bytes_up(), 400u);
  EXPECT_EQ(comm.bytes_down(), 200u);
  EXPECT_EQ(comm.bytes_total(), 600u);
  EXPECT_EQ(comm.payload_bytes(), 100u * 4 + 2u * 50 * 4);
  EXPECT_EQ(comm.wire_bytes(),
            400 + fl::wire::kHeaderSize + 2 * (100 + fl::wire::kHeaderSize));
  EXPECT_EQ(comm.messages(), 3u);
  comm.reset();
  EXPECT_EQ(comm.bytes_total() + comm.payload_bytes() + comm.wire_bytes() +
                comm.messages(),
            0u);
}

TEST(CommTracker, CountOnlyBillingMatchesRawEnvelopes) {
  // The count-only billing path (Federation::bill_upload/bill_download for
  // payload-free transfers such as IFCA's K-model browse) derives encoded
  // bytes from the configured codec; for raw_f32 that is the pre-wire n*4.
  fl::CommTracker comm;
  comm.upload_envelope(100, fl::wire::encoded_size(comm.codec(), 100));
  comm.download_envelope(25, fl::wire::encoded_size(comm.codec(), 25));
  EXPECT_EQ(comm.bytes_up(), 400u);
  EXPECT_EQ(comm.bytes_down(), 100u);
  EXPECT_EQ(comm.messages(), 2u);
}

TEST(CommTracker, LedgerRoundTripsThroughRestore) {
  fl::CommTracker comm;
  comm.upload_envelope(100, 400, 2);
  comm.download_envelope(25, 100);
  const fl::CommLedger saved = comm.ledger();
  fl::CommTracker fresh;
  fresh.restore(saved);
  EXPECT_EQ(fresh.ledger(), saved);
  EXPECT_EQ(fresh.bytes_up(), comm.bytes_up());
  EXPECT_EQ(fresh.wire_bytes(), comm.wire_bytes());
  EXPECT_EQ(fresh.messages(), comm.messages());
}

TEST(CommTracker, QInt8PutsFewerBytesOnTheWireThanPayload) {
  fl::CommTracker comm;
  comm.set_codec(CodecId::kQInt8);
  comm.upload_envelope(1000, fl::wire::encoded_size(CodecId::kQInt8, 1000));
  const std::uint64_t encoded = fl::wire::encoded_size(CodecId::kQInt8, 1000);
  EXPECT_EQ(comm.bytes_up(), encoded);
  EXPECT_EQ(comm.payload_bytes(), 4000u);
  EXPECT_EQ(comm.wire_bytes(), encoded + fl::wire::kHeaderSize);
  EXPECT_LT(comm.wire_bytes(), comm.payload_bytes());
  EXPECT_GT(comm.compression_ratio(), 3.0);
}

// ------------------------------------------------------- fault interaction

TEST(FaultWire, CorruptWireIsDeterministicAndDetected) {
  fl::FaultPlan plan;
  plan.corrupt_prob = 0.99;
  plan.corrupt_mode = "bitflip";
  plan.enabled = true;
  const fl::FaultEngine engine(plan, /*seed=*/5);
  const std::vector<float> v(64, 1.0f);
  const auto clean =
      fl::wire::encode(MessageKind::kUpdatePush, CodecId::kRawF32, 3, 1, v);
  auto a = clean;
  auto b = clean;
  engine.corrupt_wire(a, /*client=*/3, /*round=*/1);
  engine.corrupt_wire(b, /*client=*/3, /*round=*/1);
  EXPECT_EQ(a, b);  // pure function of (seed, client, round)
  EXPECT_NE(a, clean);
  auto c = clean;
  engine.corrupt_wire(c, /*client=*/4, /*round=*/1);
  EXPECT_NE(a, c);  // distinct streams per client
  Envelope env;
  EXPECT_NE(fl::wire::try_decode(a.data(), a.size(), env), DecodeStatus::kOk);
}

// ----------------------------------------------------------- checkpoint v2

TEST(CheckpointV2, DetectsPayloadCorruption) {
  nn::Model a = nn::mlp(4, {3}, 2, 1);
  std::stringstream ss;
  nn::save_model(a, ss);
  std::string bytes = ss.str();
  bytes[bytes.size() - 3] ^= 0x10;  // flip a bit inside the f32 payload
  std::stringstream corrupted(bytes);
  nn::Model b = nn::mlp(4, {3}, 2, 2);
  const std::vector<float> before = b.flat_params();
  EXPECT_THROW(nn::load_model(b, corrupted), std::runtime_error);
  EXPECT_EQ(b.flat_params(), before);  // nothing leaked into the model
}

TEST(CheckpointV2, RejectsOldVersions) {
  nn::Model a = nn::mlp(4, {3}, 2, 1);
  std::stringstream ss;
  nn::save_model(a, ss);
  std::string bytes = ss.str();
  bytes[4] = 0x01;  // rewrite the version field to v1
  std::stringstream old(bytes);
  EXPECT_THROW(nn::load_model(a, old), std::runtime_error);
}

// ---------------------------------------------------------------- interning

TEST(SpanTracer, InternIsIdempotent) {
  auto& tracer = obs::SpanTracer::instance();
  const std::string name = "wire.test.span";
  const char* a = tracer.intern(name);
  const char* b = tracer.intern(name);
  EXPECT_EQ(a, b);  // same pointer: safe to compare and cache
  EXPECT_STREQ(a, name.c_str());
  const char* other = tracer.intern("wire.test.other");
  EXPECT_NE(a, other);
}

// ------------------------------------------------- federation, end to end

fl::ExperimentConfig small_cfg(CodecId codec) {
  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("svhn");
  cfg.data_spec.hw = 8;
  cfg.fed.n_clients = 8;
  cfg.fed.train_per_client = 10;
  cfg.fed.test_per_client = 6;
  cfg.fed.partition = "dirichlet";
  cfg.fed.dirichlet_alpha = 0.3;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 3;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 5;
  cfg.local.lr = 0.05f;
  cfg.rounds = 2;
  cfg.sample_fraction = 0.5;
  cfg.seed = 77;
  cfg.codec = codec;
  return cfg;
}

TEST(FederationWire, DeliverUpdateQuantizesThroughQInt8) {
  fl::Federation fed(small_cfg(CodecId::kQInt8));
  std::vector<float> params(fed.model_size(), 0.25f);
  const std::vector<float> original = params;
  ASSERT_TRUE(fed.deliver_update(/*client=*/0, /*round=*/0, params,
                                 /*upload_floats=*/params.size()));
  ASSERT_EQ(params.size(), original.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    // Constant chunks quantize exactly; the point is the values passed
    // through encode->decode, not that they changed.
    EXPECT_EQ(params[i], original[i]);
  }
  EXPECT_EQ(fed.comm().bytes_up(),
            fl::wire::encoded_size(CodecId::kQInt8, original.size()));
  EXPECT_LT(fed.comm().wire_bytes(), fed.comm().payload_bytes());
}

TEST(FederationWire, ThroughWireIsExactForRawAndLossyOtherwise) {
  fl::Federation raw(small_cfg(CodecId::kRawF32));
  fl::Federation lossy(small_cfg(CodecId::kF16));
  util::Rng rng(31);
  std::vector<float> v(100);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto raw_rx = raw.through_wire(MessageKind::kModelPull, v,
                                       fl::wire::kServerSender, 0);
  EXPECT_EQ(raw_rx, v);
  const auto lossy_rx = lossy.through_wire(MessageKind::kModelPull, v,
                                           fl::wire::kServerSender, 0);
  ASSERT_EQ(lossy_rx.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(lossy_rx[i], v[i], 1e-3f);
  }
}

class WireThreadInvariance : public ::testing::Test {
 protected:
  void SetUp() override { prev_threads_ = util::global_pool().size() + 1; }
  void TearDown() override { util::reset_global_pool(prev_threads_); }

 private:
  std::size_t prev_threads_ = 1;
};

TEST_F(WireThreadInvariance, QInt8FedAvgIsThreadCountInvariantAndSmaller) {
  const auto run_with = [&](std::size_t threads, CodecId codec) {
    util::reset_global_pool(threads);
    fl::Federation fed(small_cfg(codec));
    fl::FedAvg algo(fed);
    fl::Trace trace = algo.run();
    return std::make_pair(std::move(trace), algo.global_params());
  };
  const auto [t1, p1] = run_with(1, CodecId::kQInt8);
  const auto [t4, p4] = run_with(4, CodecId::kQInt8);
  ASSERT_EQ(t1.records.size(), t4.records.size());
  for (std::size_t i = 0; i < t1.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(t1.records[i].avg_local_test_acc,
                     t4.records[i].avg_local_test_acc);
    EXPECT_EQ(t1.records[i].bytes_up, t4.records[i].bytes_up);
    EXPECT_EQ(t1.records[i].bytes_down, t4.records[i].bytes_down);
  }
  ASSERT_EQ(p1.size(), p4.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    ASSERT_EQ(p1[i], p4[i]) << "params differ at " << i;
  }
  // And the lossy run moves >= 3x fewer billed bytes than raw_f32.
  const auto [raw_trace, raw_params] = run_with(1, CodecId::kRawF32);
  const std::uint64_t raw_bytes = raw_trace.records.back().bytes_up +
                                  raw_trace.records.back().bytes_down;
  const std::uint64_t q_bytes =
      t1.records.back().bytes_up + t1.records.back().bytes_down;
  EXPECT_GE(static_cast<double>(raw_bytes), 3.0 * static_cast<double>(q_bytes));
}

}  // namespace
}  // namespace fedclust
