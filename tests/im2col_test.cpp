#include "tensor/im2col.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "util/rng.h"

namespace fedclust::tensor {
namespace {

TEST(Im2Col, OutDim) {
  EXPECT_EQ(conv_out_dim(5, 3, 1, 0), 3u);
  EXPECT_EQ(conv_out_dim(5, 3, 1, 1), 5u);
  EXPECT_EQ(conv_out_dim(5, 3, 2, 0), 2u);
  EXPECT_EQ(conv_out_dim(4, 2, 2, 0), 2u);
  EXPECT_THROW(conv_out_dim(2, 5, 1, 0), std::invalid_argument);
}

TEST(Im2Col, Known3x3NoPad) {
  // 1x3x3 image, 2x2 kernel, stride 1, no pad -> col is (4, 4).
  const std::vector<float> img = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> col(4 * 4, -1.0f);
  im2col(img.data(), 1, 3, 3, 2, 2, 1, 0, col.data());
  // Row 0: top-left of each patch.
  const std::vector<float> expect_row0 = {1, 2, 4, 5};
  const std::vector<float> expect_row3 = {5, 6, 8, 9};
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(col[0 * 4 + j], expect_row0[j]);
    EXPECT_EQ(col[3 * 4 + j], expect_row3[j]);
  }
}

TEST(Im2Col, PaddingYieldsZeros) {
  const std::vector<float> img = {1, 2, 3, 4};  // 1x2x2
  // 3x3 kernel, pad 1, stride 1 -> out 2x2, col (9, 4).
  std::vector<float> col(9 * 4, -1.0f);
  im2col(img.data(), 1, 2, 2, 3, 3, 1, 1, col.data());
  // First row (ky=0,kx=0): every output position looks one up-left; for the
  // (0,0) output that's the padded corner.
  EXPECT_EQ(col[0 * 4 + 0], 0.0f);
  // Center row (ky=1,kx=1) reproduces the image itself.
  EXPECT_EQ(col[4 * 4 + 0], 1.0f);
  EXPECT_EQ(col[4 * 4 + 1], 2.0f);
  EXPECT_EQ(col[4 * 4 + 2], 3.0f);
  EXPECT_EQ(col[4 * 4 + 3], 4.0f);
}

TEST(Im2Col, MultiChannelRowOrdering) {
  // 2 channels of 2x2; 1x1 kernel: col row c is channel c flattened.
  const std::vector<float> img = {1, 2, 3, 4, 10, 20, 30, 40};
  std::vector<float> col(2 * 4);
  im2col(img.data(), 2, 2, 2, 1, 1, 1, 0, col.data());
  EXPECT_EQ(col[0], 1.0f);
  EXPECT_EQ(col[3], 4.0f);
  EXPECT_EQ(col[4], 10.0f);
  EXPECT_EQ(col[7], 40.0f);
}

using ColCase =
    std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
               std::size_t, std::size_t>;  // c,h,w,k,stride,pad

class Im2ColAdjoint : public ::testing::TestWithParam<ColCase> {};

// col2im is the exact adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
TEST_P(Im2ColAdjoint, DotTest) {
  const auto [c, h, w, k, stride, pad] = GetParam();
  const std::size_t oh = conv_out_dim(h, k, stride, pad);
  const std::size_t ow = conv_out_dim(w, k, stride, pad);
  const std::size_t col_size = c * k * k * oh * ow;
  util::Rng rng(c * 31 + h * 7 + w * 3 + k + stride + pad);

  std::vector<float> x(c * h * w);
  for (auto& v : x) v = rng.normalf(0, 1);
  std::vector<float> y(col_size);
  for (auto& v : y) v = rng.normalf(0, 1);

  std::vector<float> col(col_size);
  im2col(x.data(), c, h, w, k, k, stride, pad, col.data());
  std::vector<float> img(c * h * w, 0.0f);
  col2im(y.data(), c, h, w, k, k, stride, pad, img.data());

  double lhs = 0.0;
  for (std::size_t i = 0; i < col_size; ++i) {
    lhs += static_cast<double>(col[i]) * y[i];
  }
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x[i]) * img[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * (std::abs(lhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Im2ColAdjoint,
    ::testing::Values(ColCase{1, 4, 4, 2, 1, 0}, ColCase{1, 5, 5, 3, 1, 1},
                      ColCase{3, 8, 8, 3, 1, 1}, ColCase{3, 8, 8, 5, 1, 2},
                      ColCase{2, 7, 9, 3, 2, 1}, ColCase{4, 6, 6, 3, 3, 0},
                      ColCase{1, 3, 3, 3, 1, 2}));

}  // namespace
}  // namespace fedclust::tensor
