// Integration tests for the paper's contribution: one-shot weight-driven
// clustering (Algorithm 1), the λ dial, newcomer incorporation
// (Algorithm 2), and the headline comparison shape (FedClust beats the
// single-global-model baseline under label skew).

#include <gtest/gtest.h>

#include "clustering/hierarchical.h"
#include "clustering/metrics.h"
#include "core/fedclust.h"
#include "fl/fedavg.h"
#include "util/stats.h"

namespace fedclust::core {
namespace {

using fl::ExperimentConfig;
using fl::Federation;

// 12 clients drawn from 3 distinct label sets -> 3 ground-truth groups.
ExperimentConfig grouped_config() {
  ExperimentConfig cfg;
  // CIFAR-10-like difficulty (strong noise) so a single global model cannot
  // trivially fit all classes — the regime where clustering pays off.
  cfg.data_spec = data::dataset_spec("cifar10");
  cfg.data_spec.hw = 8;
  cfg.data_spec.noise = 1.4f;
  cfg.fed.n_clients = 12;
  cfg.fed.train_per_client = 24;
  cfg.fed.test_per_client = 10;
  cfg.fed.partition = "skew";
  cfg.fed.skew_fraction = 0.2;
  cfg.fed.label_set_pool = 3;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 3;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 8;
  cfg.local.lr = 0.05f;
  cfg.local.momentum = 0.5f;
  cfg.rounds = 6;
  cfg.sample_fraction = 0.5;
  cfg.seed = 21;
  cfg.algo.fedclust_init_epochs = 2;
  cfg.algo.fedclust_lambda = 1e9f;  // overridden per test
  return cfg;
}

// Pick λ from the proximity matrix: halfway between the tightest and the
// loosest pairwise distances. With clean group structure this lands in the
// intra/inter gap.
float midrange_lambda(const tensor::Tensor& proximity) {
  const std::size_t n = proximity.dim(0);
  float lo = std::numeric_limits<float>::infinity();
  float hi = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      lo = std::min(lo, proximity[i * n + j]);
      hi = std::max(hi, proximity[i * n + j]);
    }
  }
  return 0.5f * (lo + hi);
}

TEST(FedClustCore, ProximityMatrixSeparatesGroups) {
  ExperimentConfig cfg = grouped_config();
  cfg.rounds = 1;
  Federation fed(cfg);
  const auto data =
      data::make_federated_data(cfg.data_spec, cfg.fed, cfg.seed);
  const auto truth = data::group_ids(data);

  FedClust algo(fed);
  algo.run();
  const auto& prox = algo.report().proximity;
  ASSERT_EQ(prox.dim(0), 12u);

  // Intra-group distances must be systematically below inter-group ones.
  double intra = 0.0;
  double inter = 0.0;
  std::size_t n_intra = 0;
  std::size_t n_inter = 0;
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = i + 1; j < 12; ++j) {
      if (truth[i] == truth[j]) {
        intra += prox[i * 12 + j];
        ++n_intra;
      } else {
        inter += prox[i * 12 + j];
        ++n_inter;
      }
    }
  }
  ASSERT_GT(n_intra, 0u);
  ASSERT_GT(n_inter, 0u);
  EXPECT_LT(intra / n_intra, 0.8 * (inter / n_inter));
}

TEST(FedClustCore, OneShotClusteringRecoversGroups) {
  ExperimentConfig cfg = grouped_config();
  cfg.rounds = 1;
  // First pass only to get the proximity matrix.
  Federation probe_fed(cfg);
  FedClust probe(probe_fed);
  probe.run();
  cfg.algo.fedclust_lambda = midrange_lambda(probe.report().proximity);

  Federation fed(cfg);
  FedClust algo(fed);
  algo.run();
  const auto data =
      data::make_federated_data(cfg.data_spec, cfg.fed, cfg.seed);
  const double ari = clustering::adjusted_rand_index(
      algo.assignment(), data::group_ids(data));
  EXPECT_GT(ari, 0.8) << "one-shot clustering should recover label groups";
}

TEST(FedClustCore, LambdaDialSweepsClusterCount) {
  ExperimentConfig cfg = grouped_config();
  cfg.rounds = 1;
  // Tiny λ -> every client its own cluster (pure personalization).
  cfg.algo.fedclust_lambda = 1e-9f;
  Federation f1(cfg);
  FedClust personalized(f1);
  personalized.run();
  EXPECT_EQ(personalized.report().n_clusters, 12u);
  // Huge λ -> one cluster (pure globalization ~ FedAvg).
  cfg.algo.fedclust_lambda = 1e9f;
  Federation f2(cfg);
  FedClust global(f2);
  global.run();
  EXPECT_EQ(global.report().n_clusters, 1u);
}

TEST(FedClustCore, AutoLambdaRecoversGroups) {
  ExperimentConfig cfg = grouped_config();
  cfg.rounds = 1;
  cfg.algo.fedclust_lambda = -1.0f;  // data-driven λ (largest gap)
  Federation fed(cfg);
  FedClust algo(fed);
  algo.run();
  EXPECT_GT(algo.report().effective_lambda, 0.0f);
  const auto data =
      data::make_federated_data(cfg.data_spec, cfg.fed, cfg.seed);
  const double ari = clustering::adjusted_rand_index(
      algo.assignment(), data::group_ids(data));
  EXPECT_GT(ari, 0.8) << "auto-λ found " << algo.report().n_clusters
                      << " clusters";
}

TEST(FedClustCore, Round0CommIsBroadcastPlusPartialUploads) {
  ExperimentConfig cfg = grouped_config();
  cfg.rounds = 1;
  cfg.algo.fedclust_lambda = 1e9f;
  Federation fed(cfg);
  FedClust algo(fed);
  algo.run();
  const std::size_t p = fed.model_size();
  const auto [cls_off, cls_size] = fed.workspace().classifier_range();
  (void)cls_off;
  const std::size_t sampled = fed.sample_round(0).size();
  // Down: θ0 to all 12 clients + per-round downloads to sampled clients.
  EXPECT_EQ(fed.comm().bytes_down(), (12 * p + sampled * p) * 4);
  // Up: partial weights from all 12 + full models from sampled clients.
  EXPECT_EQ(fed.comm().bytes_up(), (12 * cls_size + sampled * p) * 4);
  // The clustering upload is much cheaper than a full-model upload.
  EXPECT_LT(cls_size * 10, p);
}

TEST(FedClustCore, BeatsFedAvgUnderLabelSkew) {
  ExperimentConfig cfg = grouped_config();
  cfg.rounds = 8;
  // λ chosen by probing (as a user of the library would tune Fig. 4).
  {
    ExperimentConfig probe_cfg = cfg;
    probe_cfg.rounds = 1;
    Federation probe_fed(probe_cfg);
    FedClust probe(probe_fed);
    probe.run();
    cfg.algo.fedclust_lambda = midrange_lambda(probe.report().proximity);
  }
  Federation f1(cfg);
  FedClust ours(f1);
  const double ours_acc = ours.run().final_accuracy();

  Federation f2(cfg);
  fl::FedAvg fedavg(f2);
  const double fedavg_acc = fedavg.run().final_accuracy();

  EXPECT_GT(ours_acc, fedavg_acc + 0.05)
      << "FedClust=" << ours_acc << " FedAvg=" << fedavg_acc;
}

TEST(FedClustCore, NewcomerJoinsMatchingCluster) {
  ExperimentConfig cfg = grouped_config();
  cfg.rounds = 2;
  {
    ExperimentConfig probe_cfg = cfg;
    probe_cfg.rounds = 1;
    Federation probe_fed(probe_cfg);
    FedClust probe(probe_fed);
    probe.run();
    cfg.algo.fedclust_lambda = midrange_lambda(probe.report().proximity);
  }
  Federation fed(cfg);
  FedClust algo(fed);
  algo.run();
  const auto data =
      data::make_federated_data(cfg.data_spec, cfg.fed, cfg.seed);
  const auto truth = data::group_ids(data);

  // Build newcomers whose data comes from the same generator pools: reuse
  // an existing client's label weights by regenerating the federation with
  // more clients and holding the extras out.
  auto ext_cfg = cfg;
  ext_cfg.fed.n_clients = 16;  // 4 extra clients
  auto ext_data =
      data::make_federated_data(ext_cfg.data_spec, ext_cfg.fed, cfg.seed);
  const auto ext_truth = data::group_ids(ext_data);

  // Map each existing cluster to its majority ground-truth group.
  std::map<std::size_t, std::map<std::size_t, int>> votes;
  for (std::size_t c = 0; c < 12; ++c) {
    ++votes[algo.assignment()[c]][truth[c]];
  }
  std::map<std::size_t, std::size_t> cluster_to_group;
  for (const auto& [cluster, counts] : votes) {
    std::size_t best_g = 0;
    int best_n = -1;
    for (const auto& [g, n] : counts) {
      if (n > best_n) {
        best_n = n;
        best_g = g;
      }
    }
    cluster_to_group[cluster] = best_g;
  }

  std::size_t correct = 0;
  std::size_t total = 0;
  for (std::size_t c = 12; c < 16; ++c) {
    fl::SimClient newcomer(c, std::move(ext_data[c].train),
                           std::move(ext_data[c].test));
    const std::size_t k =
        algo.assign_newcomer(newcomer, util::Rng(900 + c));
    ASSERT_LT(k, algo.report().n_clusters);
    // Only score newcomers whose group is represented among the originals.
    bool represented = false;
    for (std::size_t i = 0; i < 12; ++i) {
      represented |= truth[i] == ext_truth[c];
    }
    if (!represented) continue;
    ++total;
    correct += cluster_to_group[k] == ext_truth[c];
  }
  ASSERT_GE(total, 3u);
  // Allow a single miss: warm-up is one or two epochs on very noisy data.
  EXPECT_GE(correct + 1, total)
      << "newcomers must land in their data's cluster";
}

TEST(FedClustCore, AssignNewcomerBeforeSetupThrows) {
  ExperimentConfig cfg = grouped_config();
  Federation fed(cfg);
  FedClust algo(fed);
  auto data = data::make_federated_data(cfg.data_spec, cfg.fed, cfg.seed);
  fl::SimClient newcomer(99, std::move(data[0].train),
                         std::move(data[0].test));
  EXPECT_THROW(algo.assign_newcomer(newcomer, util::Rng(1)),
               std::logic_error);
}

}  // namespace
}  // namespace fedclust::core
