// End-to-end determinism: the simulator's contract is that a (config, seed)
// pair fully determines every trace, model, clustering, and byte count —
// run-to-run, and regardless of evaluation order.

#include <gtest/gtest.h>

#include "core/fedclust.h"
#include "core/registry.h"
#include "fl/fedavg.h"
#include "fl/federation.h"
#include "util/thread_pool.h"

namespace fedclust {
namespace {

fl::ExperimentConfig cfg_for(std::uint64_t seed) {
  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("svhn");
  cfg.data_spec.hw = 8;
  cfg.fed.n_clients = 10;
  cfg.fed.train_per_client = 12;
  cfg.fed.test_per_client = 6;
  cfg.fed.partition = "dirichlet";
  cfg.fed.dirichlet_alpha = 0.3;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 3;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 6;
  cfg.local.lr = 0.05f;
  cfg.rounds = 3;
  cfg.sample_fraction = 0.4;
  cfg.seed = seed;
  return cfg;
}

void expect_identical(const fl::Trace& a, const fl::Trace& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].avg_local_test_acc,
                     b.records[i].avg_local_test_acc);
    EXPECT_EQ(a.records[i].bytes_up, b.records[i].bytes_up);
    EXPECT_EQ(a.records[i].bytes_down, b.records[i].bytes_down);
    EXPECT_EQ(a.records[i].n_clusters, b.records[i].n_clusters);
  }
}

class DeterminismSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismSweep, IdenticalTracesAcrossRuns) {
  const auto run_once = [&] {
    fl::Federation fed(cfg_for(99));
    return core::make_algorithm(GetParam(), fed)->run();
  };
  expect_identical(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Methods, DeterminismSweep,
                         ::testing::Values("Local", "FedAvg", "LG",
                                           "PerFedAvg", "IFCA", "PACFL",
                                           "FedClust", "SCAFFOLD", "Ditto"));

TEST(Determinism, DifferentSeedsDiverge) {
  fl::Federation f1(cfg_for(1));
  fl::Federation f2(cfg_for(2));
  const auto t1 = core::make_algorithm("FedAvg", f1)->run();
  const auto t2 = core::make_algorithm("FedAvg", f2)->run();
  EXPECT_NE(t1.final_accuracy(), t2.final_accuracy());
}

TEST(Determinism, FedClustClusteringIsStable) {
  const auto run_once = [&] {
    fl::Federation fed(cfg_for(7));
    core::FedClust algo(fed);
    algo.run();
    return algo.assignment();
  };
  EXPECT_EQ(run_once(), run_once());
}

// sample_round edge cases: full participation, heavy dropout, and
// determinism of the cohort itself.
TEST(SampleRound, FullFractionSamplesEveryClientSorted) {
  auto cfg = cfg_for(11);
  cfg.sample_fraction = 1.0;
  fl::Federation fed(cfg);
  for (std::size_t r = 0; r < 5; ++r) {
    const auto ids = fed.sample_round(r);
    ASSERT_EQ(ids.size(), fed.n_clients());
    for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
  }
}

TEST(SampleRound, NearCertainDropoutNeverYieldsAnEmptyRound) {
  auto cfg = cfg_for(12);
  cfg.dropout_prob = 0.999;  // folded into the fault engine's pre-round class
  fl::Federation fed(cfg);
  for (std::size_t r = 0; r < 50; ++r) {
    EXPECT_FALSE(fed.sample_round(r).empty()) << "round " << r;
  }
}

TEST(SampleRound, CohortIsDeterministicPerRound) {
  auto cfg = cfg_for(13);
  cfg.dropout_prob = 0.4;
  fl::Federation a(cfg);
  fl::Federation b(cfg);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_EQ(a.sample_round(r), b.sample_round(r));
  }
}

// Interleaving another federation's work must not perturb a run (no hidden
// global state): run A, then run B, then run A again.
TEST(Determinism, NoCrossFederationLeakage) {
  const auto run_a = [&] {
    fl::Federation fed(cfg_for(5));
    return core::make_algorithm("FedClust", fed)->run();
  };
  const fl::Trace first = run_a();
  {
    fl::Federation other(cfg_for(123));
    core::make_algorithm("IFCA", other)->run();
  }
  expect_identical(first, run_a());
}

// Thread-count invariance: the parallel round executor must yield
// bit-identical results at any worker count, because RNG streams are split
// ahead of fan-out and all floating-point reductions fold through a fixed
// reduction tree whose shape depends only on the cohort size, never on
// delivery order (src/fl/stream_agg.h). Worker counts are swept in-process
// via reset_global_pool; the fixture restores the previous pool afterwards.
class ThreadCountInvariance : public ::testing::Test {
 protected:
  void SetUp() override { prev_threads_ = util::global_pool().size() + 1; }
  void TearDown() override { util::reset_global_pool(prev_threads_); }

 private:
  std::size_t prev_threads_ = 1;
};

void expect_bit_identical(const std::vector<float>& a,
                          const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "params differ at " << i;
  }
}

TEST_F(ThreadCountInvariance, FedAvgMatchesSequentialAtFourThreads) {
  const auto run_with = [&](std::size_t threads) {
    util::reset_global_pool(threads);
    fl::Federation fed(cfg_for(42));
    fl::FedAvg algo(fed);
    fl::Trace trace = algo.run();
    return std::make_pair(std::move(trace), algo.global_params());
  };
  const auto [trace1, params1] = run_with(1);  // exact sequential path
  const auto [trace4, params4] = run_with(4);
  expect_identical(trace1, trace4);  // accuracy + byte counts + clusters
  expect_bit_identical(params1, params4);
}

TEST_F(ThreadCountInvariance, FedClustMatchesSequentialAtFourThreads) {
  struct Result {
    fl::Trace trace;
    std::vector<std::size_t> assignment;
    std::vector<std::vector<float>> models;
  };
  const auto run_with = [&](std::size_t threads) {
    util::reset_global_pool(threads);
    fl::Federation fed(cfg_for(42));
    core::FedClust algo(fed);
    Result res;
    res.trace = algo.run();
    res.assignment = algo.assignment();
    for (std::size_t k = 0; k < algo.report().n_clusters; ++k) {
      res.models.push_back(algo.cluster_model(k));
    }
    return res;
  };
  const Result r1 = run_with(1);
  const Result r4 = run_with(4);
  expect_identical(r1.trace, r4.trace);
  EXPECT_EQ(r1.assignment, r4.assignment);
  ASSERT_EQ(r1.models.size(), r4.models.size());
  for (std::size_t k = 0; k < r1.models.size(); ++k) {
    expect_bit_identical(r1.models[k], r4.models[k]);
  }
}

// Virtual client store equivalence (docs/INVARIANTS.md §Scale): clients
// regenerated on demand behind a small LRU cache — small enough that
// eviction churns constantly — must reproduce the materialized path
// exactly: traces, comm byte counts, and the CRC of the algorithm's full
// serialized state (every model parameter), at any thread count.
TEST_F(ThreadCountInvariance, VirtualStoreMatchesMaterialized) {
  struct Result {
    fl::Trace trace;
    std::uint64_t wire_bytes = 0;
    std::uint32_t state_crc = 0;
  };
  const auto run_with = [&](const std::string& method, bool virtual_clients,
                            std::size_t threads) {
    util::reset_global_pool(threads);
    auto cfg = cfg_for(42);
    cfg.virtual_clients = virtual_clients;
    cfg.client_cache = 3;  // far below n_clients=10: eviction is active
    fl::Federation fed(cfg);
    const auto algo = core::make_algorithm(method, fed);
    Result res;
    res.trace = algo->run();
    res.wire_bytes = fed.comm().wire_bytes();
    res.state_crc = algo->state_crc32c();
    return res;
  };
  for (const std::string method : {"FedAvg", "FedClust"}) {
    SCOPED_TRACE(method);
    const Result materialized = run_with(method, false, 1);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE(threads);
      const Result virt = run_with(method, true, threads);
      expect_identical(materialized.trace, virt.trace);
      EXPECT_EQ(materialized.wire_bytes, virt.wire_bytes);
      EXPECT_EQ(materialized.state_crc, virt.state_crc);
    }
  }
}

}  // namespace
}  // namespace fedclust
