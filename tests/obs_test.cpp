// Observability subsystem: span tracer + metrics registry unit behavior,
// Chrome Trace Event export validity (a real JSON parse, not substring
// luck), and an end-to-end check that a tiny simulated run emits round,
// client, and kernel spans plus a parseable per-round JSONL.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/registry.h"
#include "fl/federation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace fedclust {
namespace {

// ---------------------------------------------------------- mini JSON parse
// Minimal recursive-descent JSON syntax checker: accepts exactly the JSON
// grammar (values, objects, arrays, strings with escapes, numbers). Enough
// to prove the exported trace and JSONL lines are loadable by a real
// parser without shipping one.

struct JsonCursor {
  const std::string& s;
  std::size_t i = 0;

  bool eof() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool consume(char c) {
    skip_ws();
    if (eof() || s[i] != c) return false;
    ++i;
    return true;
  }
};

bool parse_value(JsonCursor& c);

bool parse_string(JsonCursor& c) {
  if (!c.consume('"')) return false;
  while (!c.eof()) {
    const char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.eof()) return false;
      ++c.i;  // escaped char (\uXXXX hex digits parse as plain chars)
    }
  }
  return false;
}

bool parse_number(JsonCursor& c) {
  const std::size_t start = c.i;
  if (!c.eof() && (c.peek() == '-' || c.peek() == '+')) ++c.i;
  bool digits = false;
  while (!c.eof() && (std::isdigit(static_cast<unsigned char>(c.peek())) ||
                      c.peek() == '.' || c.peek() == 'e' ||
                      c.peek() == 'E' || c.peek() == '-' ||
                      c.peek() == '+')) {
    if (std::isdigit(static_cast<unsigned char>(c.peek()))) digits = true;
    ++c.i;
  }
  return digits && c.i > start;
}

bool parse_object(JsonCursor& c) {
  if (!c.consume('{')) return false;
  c.skip_ws();
  if (c.consume('}')) return true;
  for (;;) {
    c.skip_ws();
    if (!parse_string(c)) return false;
    if (!c.consume(':')) return false;
    if (!parse_value(c)) return false;
    if (c.consume(',')) continue;
    return c.consume('}');
  }
}

bool parse_array(JsonCursor& c) {
  if (!c.consume('[')) return false;
  c.skip_ws();
  if (c.consume(']')) return true;
  for (;;) {
    if (!parse_value(c)) return false;
    if (c.consume(',')) continue;
    return c.consume(']');
  }
}

bool parse_literal(JsonCursor& c, const char* lit) {
  const std::size_t n = std::string(lit).size();
  if (c.s.compare(c.i, n, lit) != 0) return false;
  c.i += n;
  return true;
}

bool parse_value(JsonCursor& c) {
  c.skip_ws();
  if (c.eof()) return false;
  switch (c.peek()) {
    case '{':
      return parse_object(c);
    case '[':
      return parse_array(c);
    case '"':
      return parse_string(c);
    case 't':
      return parse_literal(c, "true");
    case 'f':
      return parse_literal(c, "false");
    case 'n':
      return parse_literal(c, "null");
    default:
      return parse_number(c);
  }
}

bool is_valid_json(const std::string& s) {
  JsonCursor c{s};
  if (!parse_value(c)) return false;
  c.skip_ws();
  return c.eof();
}

// ------------------------------------------------------------------ helpers

// Enables tracing/metrics for one test and restores the disabled default.
struct ObsOn {
  ObsOn() {
    obs::SpanTracer::instance().clear();
    obs::SpanTracer::instance().set_enabled(true);
    obs::MetricsRegistry::instance().reset_values();
    obs::MetricsRegistry::instance().set_enabled(true);
  }
  ~ObsOn() {
    obs::SpanTracer::instance().set_enabled(false);
    obs::SpanTracer::instance().clear();
    obs::MetricsRegistry::instance().set_enabled(false);
    obs::MetricsRegistry::instance().close_round_log();
    obs::MetricsRegistry::instance().reset_values();
  }
};

fl::ExperimentConfig tiny_cfg() {
  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("cifar10");
  cfg.fed.n_clients = 6;
  cfg.fed.train_per_client = 8;
  cfg.fed.test_per_client = 4;
  cfg.fed.partition = "dirichlet";
  cfg.fed.dirichlet_alpha = 0.3;
  cfg.model.arch = "lenet5";  // convs so kernel spans (gemm/im2col) fire
  cfg.model.in_channels = 3;
  cfg.model.image_hw = cfg.data_spec.hw;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 4;
  cfg.local.lr = 0.05f;
  cfg.rounds = 2;
  cfg.sample_fraction = 0.5;
  cfg.seed = 5;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// ----------------------------------------------------------------- tracer

TEST(SpanTracer, DisabledSpansRecordNothingAndSkipTheClock) {
  obs::SpanTracer::instance().clear();
  ASSERT_FALSE(obs::SpanTracer::enabled());
  const std::size_t before = obs::SpanTracer::instance().total_recorded();
  {
    OBS_SPAN("should-not-appear");
    OBS_SPAN_ARG("also-not", 7);
  }
  EXPECT_EQ(obs::SpanTracer::instance().total_recorded(), before);
}

TEST(SpanTracer, RecordsNestedSpansWithArgs) {
  const ObsOn on;
  {
    OBS_SPAN("outer");
    OBS_SPAN_ARG("inner", 42);
  }
  const auto threads = obs::SpanTracer::instance().collect();
  std::size_t outer = 0;
  std::size_t inner = 0;
  for (const auto& t : threads) {
    for (const auto& e : t.events) {
      if (std::string(e.name) == "outer") ++outer;
      if (std::string(e.name) == "inner") {
        ++inner;
        EXPECT_TRUE(e.has_arg);
        EXPECT_EQ(e.arg, 42u);
      }
      EXPECT_GE(e.end_us, e.begin_us);
    }
  }
  EXPECT_EQ(outer, 1u);
  EXPECT_EQ(inner, 1u);
}

TEST(SpanTracer, ChromeTraceJsonIsValidAndNamesThreads) {
  const ObsOn on;
  { OBS_SPAN("alpha"); }
  const std::string json = obs::SpanTracer::instance().chrome_trace_json();
  EXPECT_TRUE(is_valid_json(json)) << json.substr(0, 200);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(SpanTracer, WriteChromeTraceThrowsWithPathOnBadDirectory) {
  const ObsOn on;
  const std::string bad = "/nonexistent-dir-obs/trace.json";
  try {
    obs::SpanTracer::instance().write_chrome_trace(bad);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(bad), std::string::npos);
  }
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeHistogramBasics) {
  const ObsOn on;
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("t.counter").add(3);
  reg.counter("t.counter").add(2);
  reg.gauge("t.gauge").set(7);
  reg.gauge("t.gauge").add(-2);
  auto& h = reg.histogram("t.hist", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("t.counter"), 5u);
  std::int64_t gauge_v = -1;
  for (const auto& [n, v] : snap.gauges) {
    if (n == "t.gauge") gauge_v = v;
  }
  EXPECT_EQ(gauge_v, 5);
  const auto hs = snap.histogram_snapshot("t.hist");
  EXPECT_EQ(hs.count, 3u);
  EXPECT_DOUBLE_EQ(hs.sum, 55.5);
  EXPECT_DOUBLE_EQ(hs.min, 0.5);
  EXPECT_DOUBLE_EQ(hs.max, 50.0);
  ASSERT_EQ(hs.counts.size(), 3u);
  EXPECT_EQ(hs.counts[0], 1u);
  EXPECT_EQ(hs.counts[1], 1u);
  EXPECT_EQ(hs.counts[2], 1u);  // overflow bucket
  // Rank 1.5 of 3 lands in the (1, 10] bucket; linear interpolation puts
  // the median halfway through it.
  EXPECT_DOUBLE_EQ(hs.quantile(0.5), 5.5);
}

TEST(Metrics, QuantileInterpolatesKnownDistribution) {
  const ObsOn on;
  // 1..100 into decade buckets: every interpolated quantile is exact.
  obs::Histogram h({10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0,
                    100.0});
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  const auto hs = h.snapshot();
  EXPECT_DOUBLE_EQ(hs.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(hs.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(hs.quantile(0.99), 99.0);
  // Edges clamp to the observed extremes rather than the bucket bounds.
  EXPECT_DOUBLE_EQ(hs.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(hs.quantile(1.0), 100.0);
}

TEST(Metrics, QuantileOverflowBucketStaysWithinObservedRange) {
  const ObsOn on;
  obs::Histogram h({1.0});
  h.observe(5.0);
  h.observe(7.0);
  // Both observations sit in the overflow bucket, whose only known edge is
  // the observed max; estimates never leave [min, max].
  EXPECT_LE(h.snapshot().quantile(0.5), 7.0);
  EXPECT_GE(h.snapshot().quantile(0.5), 1.0);
}

TEST(Metrics, KindCollisionThrows) {
  const ObsOn on;
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("t.kind");
  EXPECT_THROW(reg.gauge("t.kind"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("t.kind"), std::invalid_argument);
}

TEST(Metrics, SummaryTableListsEveryMetric) {
  const ObsOn on;
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("t.summary_counter").add(9);
  reg.histogram("t.summary_hist").observe(0.02);
  const std::string table = reg.summary_table();
  EXPECT_NE(table.find("t.summary_counter"), std::string::npos);
  EXPECT_NE(table.find("t.summary_hist"), std::string::npos);
  EXPECT_NE(table.find("count=1"), std::string::npos);
}

TEST(Metrics, RoundLogThrowsWithPathOnBadDirectory) {
  const ObsOn on;
  const std::string bad = "/nonexistent-dir-obs/metrics.jsonl";
  try {
    obs::MetricsRegistry::instance().open_round_log(bad);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(bad), std::string::npos);
  }
}

TEST(Metrics, RoundLogEmitsOneValidJsonObjectPerLine) {
  const ObsOn on;
  auto& reg = obs::MetricsRegistry::instance();
  const std::string path = ::testing::TempDir() + "obs_round_log.jsonl";
  reg.open_round_log(path);
  reg.counter("t.jsonl_counter").add(11);
  reg.log_round({{"round", 0.0}, {"acc", 0.5}});
  reg.log_round({{"round", 1.0}, {"acc", 0.625}});
  reg.close_round_log();

  std::ifstream is(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_TRUE(is_valid_json(line)) << line;
    EXPECT_NE(line.find("\"round\""), std::string::npos);
    EXPECT_NE(line.find("\"t.jsonl_counter\":11"), std::string::npos);
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

// ----------------------------------------------------- end-to-end sim trace

TEST(ObsEndToEnd, TinyRunEmitsRoundClientAndKernelSpans) {
  const ObsOn on;
  const std::string jsonl = ::testing::TempDir() + "obs_e2e.jsonl";
  obs::MetricsRegistry::instance().open_round_log(jsonl);

  fl::Federation fed(tiny_cfg());
  core::make_algorithm("FedAvg", fed)->run();

  const std::string json = obs::SpanTracer::instance().chrome_trace_json();
  ASSERT_TRUE(is_valid_json(json));

  std::set<std::string> names;
  for (const auto& t : obs::SpanTracer::instance().collect()) {
    for (const auto& e : t.events) names.insert(e.name);
  }
  // Round lifecycle, per-client, and kernel layers must all be present.
  EXPECT_TRUE(names.count("fl.setup"));
  EXPECT_TRUE(names.count("fl.round"));
  EXPECT_TRUE(names.count("fl.eval_sweep"));
  EXPECT_TRUE(names.count("client.train"));
  EXPECT_TRUE(names.count("client.eval"));
  EXPECT_TRUE(names.count("gemm"));
  EXPECT_TRUE(names.count("im2col"));
  EXPECT_TRUE(names.count("conv2d.backward"));
  EXPECT_TRUE(names.count("model.forward"));

  // Comm counters mirror the CommTracker exactly.
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counter_value("comm.bytes_up"), fed.comm().bytes_up());
  EXPECT_EQ(snap.counter_value("comm.bytes_down"), fed.comm().bytes_down());
  EXPECT_EQ(snap.counter_value("fl.rounds"), 2u);

  obs::MetricsRegistry::instance().close_round_log();
  std::ifstream is(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_TRUE(is_valid_json(line)) << line;
  }
  EXPECT_EQ(lines, 2u);  // eval_every=1, rounds=2
  std::remove(jsonl.c_str());
}

TEST(ObsEndToEnd, WriteChromeTraceRoundTripsThroughAFile) {
  const ObsOn on;
  { OBS_SPAN("file-span"); }
  const std::string path = ::testing::TempDir() + "obs_trace.json";
  obs::SpanTracer::instance().write_chrome_trace(path);
  const std::string json = slurp(path);
  EXPECT_TRUE(is_valid_json(json));
  EXPECT_NE(json.find("file-span"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedclust
