// Kernel-parity property tests: every SIMD kernel table must be bit-exact
// against the scalar golden table on every ISA reachable on the host —
// GEMM (all shapes, leading dims, transposes, odd tails), im2col panels,
// fused conv, f16 and qint8 codec kernels, and CRC32C. The FMA variants
// and the int8-domain aggregation are approximate by contract and are
// checked against documented tolerances instead.

#include "tensor/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "fl/codec.h"
#include "fl/federation.h"
#include "tensor/conv_fused.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "util/cpu.h"
#include "util/rng.h"
#include "util/serialization.h"

namespace fedclust {
namespace {

namespace simd = tensor::simd;

std::vector<util::SimdIsa> reachable_isas() {
  std::vector<util::SimdIsa> isas;
  for (std::size_t i = 0; i < util::kNumIsas; ++i) {
    const auto isa = static_cast<util::SimdIsa>(i);
    if (util::isa_supported(isa)) isas.push_back(isa);
  }
  return isas;
}

// Restores the dispatched ISA after tests that force it.
struct IsaGuard {
  util::SimdIsa prev = util::active_isa();
  ~IsaGuard() { util::force_isa_for_testing(prev); }
};

std::vector<float> random_floats(std::size_t n, util::Rng& rng,
                                 float scale = 1.0f) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng.normalf(0.0f, scale);
  return v;
}

bool bit_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// ---------------------------------------------------------------- GEMM

struct GemmCase {
  std::size_t m, n, k;
  std::size_t pad_a, pad_b, pad_c;  // extra leading-dimension slack
  float alpha;
};

const GemmCase kGemmCases[] = {
    {1, 1, 1, 0, 0, 0, 1.0f},     {3, 5, 7, 0, 0, 0, 1.0f},
    {8, 32, 16, 0, 0, 0, 1.0f},   {17, 33, 65, 3, 1, 2, 0.5f},
    {64, 64, 64, 0, 0, 0, 1.0f},  {65, 63, 130, 0, 5, 0, 1.0f},
    {128, 17, 200, 2, 0, 3, 1.0f}, {6, 16, 256, 0, 0, 0, -0.75f},
    {12, 48, 300, 1, 1, 1, 1.0f}, {9, 100, 31, 0, 0, 0, 2.0f},
};

TEST(SimdKernel, GemmBitExactAcrossIsas) {
  util::Rng rng(42);
  for (const GemmCase& gc : kGemmCases) {
    const std::size_t lda = gc.k + gc.pad_a;
    const std::size_t ldb = gc.n + gc.pad_b;
    const std::size_t ldc = gc.n + gc.pad_c;
    const auto a = random_floats(gc.m * lda, rng);
    const auto b = random_floats(gc.k * ldb, rng);
    const auto c0 = random_floats(gc.m * ldc, rng);

    std::vector<float> want = c0;
    simd::kernels_for(util::SimdIsa::kScalar)
        .gemm_nn_range(0, gc.m, gc.n, gc.k, gc.alpha, a.data(), lda, b.data(),
                       ldb, want.data(), ldc);
    for (const auto isa : reachable_isas()) {
      std::vector<float> got = c0;
      simd::kernels_for(isa).gemm_nn_range(0, gc.m, gc.n, gc.k, gc.alpha,
                                           a.data(), lda, b.data(), ldb,
                                           got.data(), ldc);
      EXPECT_TRUE(bit_equal(want, got))
          << "isa=" << util::isa_name(isa) << " m=" << gc.m << " n=" << gc.n
          << " k=" << gc.k;
    }
  }
}

TEST(SimdKernel, GemmRowRangeSplitIsBitExact) {
  // Row-chunked execution (what the thread pool does) must equal one call.
  util::Rng rng(43);
  const std::size_t m = 23, n = 37, k = 65;
  const auto a = random_floats(m * k, rng);
  const auto b = random_floats(k * n, rng);
  const auto c0 = random_floats(m * n, rng);
  for (const auto isa : reachable_isas()) {
    const auto& kt = simd::kernels_for(isa);
    std::vector<float> whole = c0;
    kt.gemm_nn_range(0, m, n, k, 1.0f, a.data(), k, b.data(), n, whole.data(),
                     n);
    std::vector<float> split = c0;
    for (std::size_t lo = 0; lo < m; lo += 5) {
      kt.gemm_nn_range(lo, std::min(m, lo + 5), n, k, 1.0f, a.data(), k,
                       b.data(), n, split.data(), n);
    }
    EXPECT_TRUE(bit_equal(whole, split)) << "isa=" << util::isa_name(isa);
  }
}

TEST(SimdKernel, GemmFmaVariantWithinTolerance) {
  util::Rng rng(44);
  const std::size_t m = 33, n = 65, k = 127;
  const auto a = random_floats(m * k, rng);
  const auto b = random_floats(k * n, rng);
  std::vector<float> want(m * n, 0.0f);
  simd::kernels_for(util::SimdIsa::kScalar)
      .gemm_nn_range(0, m, n, k, 1.0f, a.data(), k, b.data(), n, want.data(),
                     n);
  for (const auto isa : reachable_isas()) {
    std::vector<float> got(m * n, 0.0f);
    simd::kernels_for(isa).gemm_nn_range_fma(0, m, n, k, 1.0f, a.data(), k,
                                             b.data(), n, got.data(), n);
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_NEAR(want[i], got[i], 1e-3f)
          << "isa=" << util::isa_name(isa) << " at " << i;
    }
  }
}

TEST(SimdKernel, TensorGemmTransposesMatchScalarDispatch) {
  // tensor::gemm end to end (transpose scratch + beta prologue + dispatch):
  // forced-SIMD results must equal forced-scalar results bit for bit.
  IsaGuard guard;
  util::Rng rng(45);
  const std::size_t m = 21, n = 34, k = 55;
  const auto a = random_floats(m * k, rng);
  const auto at = [&] {  // a transposed, (k, m)
    std::vector<float> t(k * m);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t p = 0; p < k; ++p) t[p * m + i] = a[i * k + p];
    return t;
  }();
  const auto b = random_floats(k * n, rng);
  const auto bt = [&] {  // b transposed, (n, k)
    std::vector<float> t(n * k);
    for (std::size_t p = 0; p < k; ++p)
      for (std::size_t j = 0; j < n; ++j) t[j * k + p] = b[p * n + j];
    return t;
  }();
  const auto c0 = random_floats(m * n, rng);
  const float betas[] = {0.0f, 1.0f, 0.5f};
  for (const float beta : betas) {
    ASSERT_TRUE(util::force_isa_for_testing(util::SimdIsa::kScalar));
    std::vector<float> nn = c0, nt = c0, tn = c0, tt = c0;
    using tensor::Trans;
    tensor::gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), k, b.data(),
                 n, beta, nn.data(), n);
    tensor::gemm(Trans::kNo, Trans::kYes, m, n, k, 1.0f, a.data(), k,
                 bt.data(), k, beta, nt.data(), n);
    tensor::gemm(Trans::kYes, Trans::kNo, m, n, k, 1.0f, at.data(), m,
                 b.data(), n, beta, tn.data(), n);
    tensor::gemm(Trans::kYes, Trans::kYes, m, n, k, 1.0f, at.data(), m,
                 bt.data(), k, beta, tt.data(), n);
    EXPECT_TRUE(bit_equal(nn, nt));
    EXPECT_TRUE(bit_equal(nn, tn));
    EXPECT_TRUE(bit_equal(nn, tt));
    for (const auto isa : reachable_isas()) {
      ASSERT_TRUE(util::force_isa_for_testing(isa));
      std::vector<float> got = c0;
      tensor::gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), k,
                   b.data(), n, beta, got.data(), n);
      EXPECT_TRUE(bit_equal(nn, got))
          << "isa=" << util::isa_name(isa) << " beta=" << beta;
    }
  }
}

// ------------------------------------------------------------- im2col

TEST(SimdKernel, Im2colRowsMatchesFullExpansion) {
  util::Rng rng(46);
  struct P { std::size_t c, h, w, kh, kw, stride, pad; };
  const P cases[] = {
      {1, 8, 8, 3, 3, 1, 1},  {3, 12, 10, 5, 5, 1, 2},
      {2, 9, 9, 3, 3, 2, 1},  {4, 7, 11, 3, 5, 1, 0},
      {1, 5, 5, 5, 5, 1, 2},  {2, 16, 16, 3, 3, 2, 0},
  };
  for (const P& p : cases) {
    const auto img = random_floats(p.c * p.h * p.w, rng);
    const std::size_t oh = tensor::conv_out_dim(p.h, p.kh, p.stride, p.pad);
    const std::size_t ow = tensor::conv_out_dim(p.w, p.kw, p.stride, p.pad);
    const std::size_t rows = p.c * p.kh * p.kw;
    std::vector<float> full(rows * oh * ow);
    tensor::im2col(img.data(), p.c, p.h, p.w, p.kh, p.kw, p.stride, p.pad,
                   full.data());
    // Reassemble from panels of several sizes, including ragged ones.
    for (const std::size_t panel : {std::size_t{1}, std::size_t{7},
                                    std::size_t{64}, rows}) {
      std::vector<float> piecewise(rows * oh * ow);
      for (std::size_t r0 = 0; r0 < rows; r0 += panel) {
        const std::size_t r1 = std::min(rows, r0 + panel);
        tensor::im2col_rows(img.data(), p.c, p.h, p.w, p.kh, p.kw, p.stride,
                            p.pad, r0, r1, piecewise.data() + r0 * oh * ow);
      }
      EXPECT_TRUE(bit_equal(full, piecewise))
          << "c=" << p.c << " stride=" << p.stride << " panel=" << panel;
    }
  }
}

TEST(SimdKernel, FusedConvMatchesUnfusedAcrossIsas) {
  IsaGuard guard;
  util::Rng rng(47);
  struct P { std::size_t c, h, w, oc, k, stride, pad; };
  const P cases[] = {
      {1, 8, 8, 4, 3, 1, 1},   {3, 12, 12, 8, 5, 1, 2},
      {2, 9, 9, 5, 3, 2, 1},   {4, 16, 16, 70, 3, 1, 0},
  };
  for (const P& p : cases) {
    const auto img = random_floats(p.c * p.h * p.w, rng);
    const std::size_t rows = p.c * p.k * p.k;
    const auto weights = random_floats(p.oc * rows, rng);
    const std::size_t oh = tensor::conv_out_dim(p.h, p.k, p.stride, p.pad);
    const std::size_t ow = tensor::conv_out_dim(p.w, p.k, p.stride, p.pad);

    // Unfused reference under forced scalar dispatch.
    ASSERT_TRUE(util::force_isa_for_testing(util::SimdIsa::kScalar));
    std::vector<float> col(rows * oh * ow);
    tensor::im2col(img.data(), p.c, p.h, p.w, p.k, p.k, p.stride, p.pad,
                   col.data());
    std::vector<float> want(p.oc * oh * ow);
    tensor::gemm(tensor::Trans::kNo, tensor::Trans::kNo, p.oc, oh * ow, rows,
                 1.0f, weights.data(), rows, col.data(), oh * ow, 0.0f,
                 want.data(), oh * ow);

    for (const auto isa : reachable_isas()) {
      ASSERT_TRUE(util::force_isa_for_testing(isa));
      std::vector<float> got(p.oc * oh * ow, -1.0f);
      tensor::conv2d_forward_fused(img.data(), p.c, p.h, p.w, weights.data(),
                                   p.oc, p.k, p.k, p.stride, p.pad,
                                   got.data());
      EXPECT_TRUE(bit_equal(want, got))
          << "isa=" << util::isa_name(isa) << " oc=" << p.oc;
    }
  }
}

// ----------------------------------------------------------- f16 / qint8

std::vector<float> f16_edge_values(util::Rng& rng) {
  std::vector<float> v;
  const std::uint32_t bits[] = {
      0x00000000u, 0x80000000u,  // +/- 0
      0x3f800000u, 0xbf800000u,  // +/- 1
      0x7f800000u, 0xff800000u,  // +/- inf
      0x7fc00000u, 0x7f800001u,  // qNaN, sNaN (quantized lanes must match)
      0xffc01234u, 0x7f812345u,  // NaN payloads
      0x477fe000u, 0x477ff000u,  // 65504 (f16 max), 65520 (ties to inf)
      0x47800000u,               // 65536 (overflow)
      0x38800000u, 0x38000000u,  // smallest normal half, largest subnormal
      0x33800000u, 0x33000000u,  // near the subnormal rounding boundary
      0x00000001u, 0x007fffffu,  // float subnormals (underflow to 0)
      0x3f801000u, 0x3f802fffu,  // RNE ties on the dropped mantissa bits
      0xb8802000u, 0x35800000u,
  };
  for (const std::uint32_t b : bits) {
    float f;
    std::memcpy(&f, &b, sizeof(f));
    v.push_back(f);
  }
  // Random coverage across the whole half-precision range plus tails that
  // exercise the vector remainder loops.
  for (int e = -30; e <= 18; ++e) {
    for (int i = 0; i < 9; ++i) {
      v.push_back(std::ldexp(rng.normalf(0.0f, 1.0f), e));
    }
  }
  return v;
}

TEST(SimdKernel, F16EncodeDecodeBitExactAcrossIsas) {
  util::Rng rng(48);
  const auto values = f16_edge_values(rng);
  const auto& scalar = simd::kernels_for(util::SimdIsa::kScalar);
  // Sub-lengths exercise every partial-vector tail.
  for (const std::size_t n : {values.size(), std::size_t{1}, std::size_t{7},
                              std::size_t{16}, std::size_t{33}}) {
    std::vector<std::uint16_t> want_h(n);
    scalar.f16_encode(values.data(), n, want_h.data());
    std::vector<float> want_f(n);
    scalar.f16_decode(want_h.data(), n, want_f.data());
    for (const auto isa : reachable_isas()) {
      const auto& kt = simd::kernels_for(isa);
      std::vector<std::uint16_t> got_h(n, 0xffffu);
      kt.f16_encode(values.data(), n, got_h.data());
      EXPECT_EQ(0, std::memcmp(want_h.data(), got_h.data(), n * 2))
          << "encode isa=" << util::isa_name(isa) << " n=" << n;
      std::vector<float> got_f(n);
      kt.f16_decode(want_h.data(), n, got_f.data());
      EXPECT_TRUE(bit_equal(want_f, got_f))
          << "decode isa=" << util::isa_name(isa) << " n=" << n;
    }
  }
}

TEST(SimdKernel, MinmaxFiniteParity) {
  util::Rng rng(49);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<std::vector<float>> chunks = {
      {0.0f}, {-0.0f}, {-0.0f, 0.0f}, {0.0f, -0.0f, 0.0f},
      {1.0f, -2.0f, 3.0f, -4.0f, 5.0f},
      {nan, 1.0f}, {1.0f, 2.0f, nan}, {inf, 0.0f}, {-inf},
      random_floats(256, rng), random_floats(255, rng),
      random_floats(17, rng), random_floats(33, rng),
  };
  // A non-finite value hiding inside an otherwise clean vector lane.
  auto poisoned = random_floats(100, rng);
  poisoned[77] = -inf;
  chunks.push_back(poisoned);
  const auto& scalar = simd::kernels_for(util::SimdIsa::kScalar);
  for (const auto& chunk : chunks) {
    float wl, wh;
    bool wf;
    scalar.minmax_finite(chunk.data(), chunk.size(), &wl, &wh, &wf);
    if (wf) {
      // The kernel contract canonicalizes signed zero bounds to +0.0.
      EXPECT_FALSE(wl == 0.0f && std::signbit(wl));
      EXPECT_FALSE(wh == 0.0f && std::signbit(wh));
    }
    for (const auto isa : reachable_isas()) {
      float gl, gh;
      bool gf;
      simd::kernels_for(isa).minmax_finite(chunk.data(), chunk.size(), &gl,
                                           &gh, &gf);
      EXPECT_EQ(wf, gf) << "isa=" << util::isa_name(isa);
      if (wf) {
        // lo/hi are unspecified when non-finite (the codec poisons the
        // chunk without reading them).
        EXPECT_EQ(0, std::memcmp(&wl, &gl, 4)) << util::isa_name(isa);
        EXPECT_EQ(0, std::memcmp(&wh, &gh, 4)) << util::isa_name(isa);
      }
    }
  }
}

TEST(SimdKernel, Qint8QuantizeDequantizeParity) {
  util::Rng rng(50);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{16},
                              std::size_t{100}, std::size_t{255},
                              std::size_t{256}}) {
    auto v = random_floats(n, rng, 2.0f);
    // Force exact halfway points: with lo = -4 and scale picked so that
    // (x - lo) / scale lands on k + 0.5 for a few k.
    const float lo = -4.0f;
    const float scale = 0.03125f;  // power of two: ties are representable
    if (n >= 4) {
      v[0] = lo + scale * 2.5f;
      v[1] = lo + scale * 3.5f;   // RNE would differ from half-away here
      v[2] = lo;                  // exact 0
      v[3] = lo + scale * 255.0f; // exact top of range
    }
    const auto& scalar = simd::kernels_for(util::SimdIsa::kScalar);
    std::vector<std::uint8_t> want_q(n);
    scalar.qint8_quantize(v.data(), n, lo, scale, want_q.data());
    std::vector<float> want_d(n);
    scalar.qint8_dequantize(want_q.data(), n, lo, scale, want_d.data());
    for (const auto isa : reachable_isas()) {
      const auto& kt = simd::kernels_for(isa);
      std::vector<std::uint8_t> got_q(n, 0xAA);
      kt.qint8_quantize(v.data(), n, lo, scale, got_q.data());
      EXPECT_EQ(want_q, got_q) << "isa=" << util::isa_name(isa) << " n=" << n;
      std::vector<float> got_d(n);
      kt.qint8_dequantize(want_q.data(), n, lo, scale, got_d.data());
      EXPECT_TRUE(bit_equal(want_d, got_d))
          << "isa=" << util::isa_name(isa) << " n=" << n;
    }
  }
}

TEST(SimdKernel, Qint8AccumulateParity) {
  util::Rng rng(51);
  for (const std::size_t n : {std::size_t{1}, std::size_t{15},
                              std::size_t{16}, std::size_t{100},
                              std::size_t{256}}) {
    std::vector<std::uint8_t> q(n);
    for (auto& b : q) b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
    const std::int32_t multipliers[] = {1, -1, 255, -255, 8388607, -8388607,
                                        12345, 0};
    std::vector<std::int64_t> want(n);
    for (auto& x : want) {
      x = static_cast<std::int64_t>(rng.next_u64());  // nonzero starting state
    }
    for (const auto isa : reachable_isas()) {
      std::vector<std::int64_t> got = want;
      std::vector<std::int64_t> ref = want;
      for (const std::int32_t m : multipliers) {
        simd::kernels_for(isa).qint8_accumulate(got.data(), q.data(), n, m);
        for (std::size_t i = 0; i < n; ++i) {
          ref[i] += static_cast<std::int64_t>(m) * q[i];
        }
      }
      EXPECT_EQ(ref, got) << "isa=" << util::isa_name(isa) << " n=" << n;
    }
  }
}

// -------------------------------------------------- codec-level parity

TEST(SimdKernel, CodecPayloadsBitExactAcrossIsas) {
  IsaGuard guard;
  util::Rng rng(52);
  auto v = random_floats(1000, rng);
  v[300] = std::numeric_limits<float>::quiet_NaN();  // poisons chunk 1
  v[999] = std::numeric_limits<float>::infinity();   // poisons the tail
  using fl::wire::CodecId;
  for (const auto codec :
       {CodecId::kRawF32, CodecId::kF16, CodecId::kQInt8}) {
    ASSERT_TRUE(util::force_isa_for_testing(util::SimdIsa::kScalar));
    const auto want_bytes = fl::wire::encode_payload(codec, v.data(),
                                                     v.size());
    const auto want_floats = fl::wire::decode_payload(
        codec, want_bytes.data(), want_bytes.size(), v.size());
    for (const auto isa : reachable_isas()) {
      ASSERT_TRUE(util::force_isa_for_testing(isa));
      const auto got_bytes = fl::wire::encode_payload(codec, v.data(),
                                                      v.size());
      EXPECT_EQ(want_bytes, got_bytes)
          << "codec=" << fl::wire::codec_name(codec)
          << " isa=" << util::isa_name(isa);
      const auto got_floats = fl::wire::decode_payload(
          codec, want_bytes.data(), want_bytes.size(), v.size());
      ASSERT_EQ(want_floats.size(), got_floats.size());
      EXPECT_EQ(0, std::memcmp(want_floats.data(), got_floats.data(),
                               want_floats.size() * sizeof(float)))
          << "codec=" << fl::wire::codec_name(codec)
          << " isa=" << util::isa_name(isa);
    }
  }
}

TEST(SimdKernel, Crc32cHardwareMatchesTable) {
  if (!util::crc32c_hw_compiled()) {
    GTEST_SKIP() << "no CRC32C hardware path in this build";
  }
  util::Rng rng(53);
  std::vector<std::uint8_t> data(300);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
  for (std::size_t len = 0; len <= data.size();
       len += (len < 20 ? 1 : 23)) {
    for (const std::uint32_t seed : {0u, 0xffffffffu, 0xdeadbeefu}) {
      EXPECT_EQ(util::crc32c_raw_table(seed, data.data(), len),
                util::crc32c_raw_hw(seed, data.data(), len))
          << "len=" << len;
    }
  }
  // Envelope-level golden: the public CRC over "123456789" is the RFC 3720
  // check value regardless of which implementation ran.
  const char* s = "123456789";
  EXPECT_EQ(0xE3069283u,
            util::crc32c(reinterpret_cast<const std::uint8_t*>(s), 9));
}

TEST(SimdKernel, Qint8WeightedAverageWithinTolerance) {
  util::Rng rng(54);
  const std::size_t n = 1000;
  const std::size_t clients = 7;
  std::vector<std::vector<float>> params;
  std::vector<std::vector<std::uint8_t>> encoded;
  std::vector<std::vector<float>> decoded;
  std::vector<double> weights;
  double total = 0.0;
  for (std::size_t c = 0; c < clients; ++c) {
    params.push_back(random_floats(n, rng));
    encoded.push_back(fl::wire::encode_payload(fl::wire::CodecId::kQInt8,
                                               params.back().data(), n));
    decoded.push_back(fl::wire::decode_payload(fl::wire::CodecId::kQInt8,
                                               encoded.back().data(),
                                               encoded.back().size(), n));
    weights.push_back(static_cast<double>(10 + 5 * c));
    total += weights.back();
  }
  std::vector<std::pair<const std::vector<float>*, double>> float_entries;
  std::vector<std::pair<const std::vector<std::uint8_t>*, double>>
      byte_entries;
  for (std::size_t c = 0; c < clients; ++c) {
    float_entries.emplace_back(&decoded[c], weights[c]);
    byte_entries.emplace_back(&encoded[c], weights[c] / total);
  }
  const auto want = fl::weighted_average(float_entries);
  const auto got = fl::wire::qint8_weighted_average(byte_entries, n);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Fixed-point multiplier error <= 2^-25 per q step, 255 steps, per
    // client, plus float decode rounding — 1e-4 absolute is generous.
    ASSERT_NEAR(want[i], got[i], 1e-4f) << "at " << i;
  }
}

TEST(SimdKernel, Qint8WeightedAveragePropagatesPoison) {
  util::Rng rng(55);
  const std::size_t n = 600;  // chunks of 256, 256, 88
  auto clean = random_floats(n, rng);
  auto dirty = random_floats(n, rng);
  dirty[300] = std::numeric_limits<float>::quiet_NaN();  // poisons chunk 1
  const auto e0 = fl::wire::encode_payload(fl::wire::CodecId::kQInt8,
                                           clean.data(), n);
  const auto e1 = fl::wire::encode_payload(fl::wire::CodecId::kQInt8,
                                           dirty.data(), n);
  const auto avg = fl::wire::qint8_weighted_average(
      {{&e0, 0.5}, {&e1, 0.5}}, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= 256 && i < 512) {
      EXPECT_TRUE(std::isnan(avg[i])) << "at " << i;
    } else {
      EXPECT_FALSE(std::isnan(avg[i])) << "at " << i;
    }
  }
}

TEST(SimdKernel, ForceIsaRejectsUnsupported) {
  IsaGuard guard;
  for (std::size_t i = 0; i < util::kNumIsas; ++i) {
    const auto isa = static_cast<util::SimdIsa>(i);
    EXPECT_EQ(util::isa_supported(isa), util::force_isa_for_testing(isa))
        << util::isa_name(isa);
    if (util::isa_supported(isa)) {
      EXPECT_EQ(isa, util::active_isa());
      EXPECT_EQ(isa, simd::kernels().isa);
    }
  }
}

}  // namespace
}  // namespace fedclust
