// Parameterized property sweeps across module configuration spaces:
// gradient checks for Conv2d/GroupNorm over many geometries, model-zoo
// forwards across input scales, truncated-SVD rank sweeps, and
// dendrogram-cut invariants on random distance matrices.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "linalg/svd.h"
#include "nn/conv2d.h"
#include "nn/init.h"
#include "nn/model_zoo.h"
#include "nn/norm.h"
#include "tensor/gemm.h"
#include "util/rng.h"

namespace fedclust {
namespace {

using nn::Tensor;

Tensor randn(tensor::Shape shape, util::Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& x : t.vec()) x = rng.normalf(0, 1);
  return t;
}

// Scalarized finite-difference gradient check against backward().
void grad_check_module(nn::Module& m, Tensor x, util::Rng& rng,
                       double tol = 5e-2) {
  Tensor proj(m.forward(x, false).shape());
  for (auto& v : proj.vec()) v = rng.normalf(0, 1);
  const auto loss = [&] {
    const Tensor out = m.forward(x, false);
    double s = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      s += static_cast<double>(out[i]) * proj[i];
    }
    return s;
  };
  m.zero_grad();
  m.forward(x, true);
  const Tensor gx = m.backward(proj);
  const double eps = 1e-3;
  // Sample a subset of coordinates to keep the sweep fast.
  util::Rng pick(7);
  for (int trial = 0; trial < 24; ++trial) {
    const auto i = static_cast<std::size_t>(
        pick.randint(0, static_cast<std::int64_t>(x.size())));
    const float saved = x[i];
    x[i] = saved + static_cast<float>(eps);
    const double lp = loss();
    x[i] = saved - static_cast<float>(eps);
    const double lm = loss();
    x[i] = saved;
    const double num = (lp - lm) / (2.0 * eps);
    ASSERT_NEAR(gx[i], num, tol * (std::abs(num) + 1.0)) << "coord " << i;
  }
}

// ---------------------------------------------------- conv geometry sweep

using ConvCase = std::tuple<std::size_t, std::size_t, std::size_t,
                            std::size_t, std::size_t, std::size_t>;
// (in_c, out_c, hw, kernel, stride, pad)

class ConvGradSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradSweep, BackwardMatchesFiniteDifferences) {
  const auto [in_c, out_c, hw, k, stride, pad] = GetParam();
  util::Rng rng(in_c * 131 + out_c * 17 + hw + k + stride + pad);
  auto conv = nn::make_conv(in_c, out_c, k, stride, pad, rng, "c");
  grad_check_module(*conv, randn({2, in_c, hw, hw}, rng), rng);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGradSweep,
    ::testing::Values(ConvCase{1, 1, 4, 3, 1, 1}, ConvCase{2, 4, 6, 3, 1, 0},
                      ConvCase{3, 2, 8, 5, 1, 2}, ConvCase{4, 4, 6, 3, 2, 1},
                      ConvCase{1, 8, 7, 7, 1, 3}, ConvCase{2, 2, 9, 3, 3, 0},
                      ConvCase{6, 3, 5, 5, 1, 2},
                      ConvCase{2, 5, 8, 1, 1, 0}));

// ---------------------------------------------------- groupnorm sweep

using GnCase = std::pair<std::size_t, std::size_t>;  // (groups, channels)

class GroupNormSweep : public ::testing::TestWithParam<GnCase> {};

TEST_P(GroupNormSweep, BackwardMatchesFiniteDifferences) {
  const auto [groups, channels] = GetParam();
  util::Rng rng(groups * 31 + channels);
  nn::GroupNorm gn(groups, channels);
  for (auto& v : gn.parameters()[0]->value.vec()) {
    v = rng.normalf(1.0f, 0.2f);
  }
  grad_check_module(gn, randn({2, channels, 3, 3}, rng), rng);
}

INSTANTIATE_TEST_SUITE_P(Configs, GroupNormSweep,
                         ::testing::Values(GnCase{1, 1}, GnCase{1, 4},
                                           GnCase{2, 4}, GnCase{4, 4},
                                           GnCase{2, 6}, GnCase{3, 9},
                                           GnCase{8, 16}));

// ------------------------------------------------ model zoo scale sweep

using ZooCase = std::tuple<std::string, std::size_t, std::size_t,
                           std::size_t>;  // arch, channels, hw, classes

class ZooForwardSweep : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooForwardSweep, ForwardShapeAndFiniteness) {
  const auto [arch, ch, hw, classes] = GetParam();
  nn::ModelSpec spec;
  spec.arch = arch;
  spec.in_channels = ch;
  spec.image_hw = hw;
  spec.num_classes = classes;
  nn::Model m = nn::build_model(spec, 3);
  util::Rng rng(9);
  const Tensor y = m.forward(randn({3, ch, hw, hw}, rng));
  ASSERT_EQ(y.shape(), (tensor::Shape{3, classes}));
  for (const float v : y.vec()) ASSERT_TRUE(std::isfinite(v));
  // Classifier slice is always the trailing Linear.
  const auto [off, size] = m.classifier_range();
  EXPECT_EQ(off + size, m.num_params());
  EXPECT_GT(size, classes);  // weight matrix + bias
}

INSTANTIATE_TEST_SUITE_P(
    Scales, ZooForwardSweep,
    ::testing::Values(ZooCase{"lenet5", 1, 16, 10},
                      ZooCase{"lenet5", 3, 16, 2},
                      ZooCase{"lenet5", 3, 32, 10},
                      ZooCase{"resnet9", 3, 16, 20},
                      ZooCase{"resnet9", 1, 8, 5},
                      ZooCase{"vgglite", 3, 16, 10},
                      ZooCase{"vgglite", 1, 24, 4},
                      ZooCase{"mlp", 3, 16, 10}, ZooCase{"mlp", 1, 8, 3}));

// ----------------------------------------------- truncated SVD rank sweep

class TruncatedSvdSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TruncatedSvdSweep, TopKCapturesMostEnergyAndIsOrthonormal) {
  const std::size_t k = GetParam();
  util::Rng rng(k * 13 + 1);
  // Low-rank-plus-noise matrix: top-k of rank r >= k must be orthonormal
  // and capture more energy than any k random directions.
  const std::size_t d = 40;
  const std::size_t n = 24;
  Tensor x({d, n});
  for (auto& v : x.vec()) v = 0.05f * rng.normalf(0, 1);
  for (std::size_t r = 0; r < 6; ++r) {  // rank-6 signal
    std::vector<float> u(d), v(n);
    for (auto& e : u) e = rng.normalf(0, 1);
    for (auto& e : v) e = rng.normalf(0, 1);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        x[i * n + j] += u[i] * v[j] / static_cast<float>(r + 1);
      }
    }
  }
  const Tensor uk = linalg::truncated_left_singular(x, k);
  ASSERT_EQ(uk.dim(1), std::min(k, n));
  const Tensor utu =
      tensor::matmul(uk, tensor::Trans::kYes, uk, tensor::Trans::kNo);
  for (std::size_t i = 0; i < uk.dim(1); ++i) {
    for (std::size_t j = 0; j < uk.dim(1); ++j) {
      ASSERT_NEAR(utu[i * uk.dim(1) + j], i == j ? 1.0f : 0.0f, 1e-3);
    }
  }
  // Projection energy ||U_k^T X||_F^2 must be nondecreasing in k and below
  // the total energy.
  const Tensor proj =
      tensor::matmul(uk, tensor::Trans::kYes, x, tensor::Trans::kNo);
  double captured = 0.0;
  for (const float v : proj.vec()) captured += static_cast<double>(v) * v;
  double total = 0.0;
  for (const float v : x.vec()) total += static_cast<double>(v) * v;
  EXPECT_LE(captured, total * (1.0 + 1e-6));
  EXPECT_GT(captured, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, TruncatedSvdSweep,
                         ::testing::Values(1u, 2u, 3u, 6u, 10u, 24u, 40u));

// ----------------------------------------- dendrogram invariants sweep

class DendroSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DendroSweep, CutInvariantsOnRandomMatrices) {
  const std::size_t n = GetParam();
  util::Rng rng(n * 7 + 5);
  std::vector<std::vector<float>> pts(n, std::vector<float>(3));
  for (auto& p : pts) {
    for (auto& v : p) v = rng.normalf(0, 2);
  }
  const auto dist = clustering::l2_distance_matrix(pts);
  const auto dendro = clustering::agglomerative(dist);
  ASSERT_EQ(dendro.merges.size(), n - 1);

  // cut_to_k produces exactly k clusters for every admissible k, and the
  // partitions are nested (coarser cuts merge finer ones).
  std::vector<std::size_t> prev;
  for (std::size_t k = n; k >= 1; --k) {
    const auto labels = clustering::cut_to_k(dendro, k);
    ASSERT_EQ(clustering::num_clusters(labels), k);
    if (!prev.empty()) {
      // Nestedness: any two items together at k+1 clusters stay together
      // at k clusters.
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          if (prev[i] == prev[j]) {
            ASSERT_EQ(labels[i], labels[j])
                << "nestedness violated at k=" << k;
          }
        }
      }
    }
    prev = labels;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DendroSweep,
                         ::testing::Values(2u, 3u, 5u, 8u, 13u, 21u));

}  // namespace
}  // namespace fedclust
