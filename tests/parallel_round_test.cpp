// ParallelRoundRunner: index-ordered collection, sequential/parallel
// equivalence, workspace-pool leasing, and concurrent comm accounting.

#include "fl/parallel_round.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "fl/federation.h"
#include "util/thread_pool.h"

namespace fedclust {
namespace {

fl::ExperimentConfig small_cfg(std::uint64_t seed) {
  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("svhn");
  cfg.data_spec.hw = 8;
  cfg.fed.n_clients = 8;
  cfg.fed.train_per_client = 10;
  cfg.fed.test_per_client = 4;
  cfg.fed.partition = "dirichlet";
  cfg.fed.dirichlet_alpha = 0.3;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 3;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 5;
  cfg.local.lr = 0.05f;
  cfg.rounds = 2;
  cfg.sample_fraction = 0.5;
  cfg.seed = seed;
  return cfg;
}

// Restores the previous global pool size around each test.
class ParallelRoundTest : public ::testing::Test {
 protected:
  void SetUp() override { prev_threads_ = util::global_pool().size() + 1; }
  void TearDown() override { util::reset_global_pool(prev_threads_); }

  std::vector<fl::RoundTrainResult> train_round(fl::Federation& fed,
                                                std::size_t round) {
    fl::ParallelRoundRunner runner(fed);
    const auto sampled = fed.sample_round(round);
    return runner.train_clients(
        sampled, [&](std::size_t, std::size_t c) {
          fl::RoundTrainJob job;
          job.start = &fed.init_params();
          job.opts = fed.cfg().local;
          job.rng = fed.train_rng(c, round);
          job.download_floats = fed.model_size();
          job.upload_floats = fed.model_size();
          return job;
        });
  }

 private:
  std::size_t prev_threads_ = 1;
};

TEST_F(ParallelRoundTest, ResultsComeBackInClientIndexOrder) {
  util::reset_global_pool(4);
  fl::Federation fed(small_cfg(3));
  const auto sampled = fed.sample_round(0);
  const auto results = train_round(fed, 0);
  ASSERT_EQ(results.size(), sampled.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].client, sampled[i]);
    EXPECT_EQ(results[i].params.size(), fed.model_size());
    EXPECT_DOUBLE_EQ(results[i].weight,
                     static_cast<double>(fed.client(sampled[i])->n_train()));
  }
}

TEST_F(ParallelRoundTest, ParallelTrainingMatchesSequentialBitwise) {
  const auto run_with = [&](std::size_t threads) {
    util::reset_global_pool(threads);
    fl::Federation fed(small_cfg(7));
    return train_round(fed, 1);
  };
  const auto seq = run_with(1);
  const auto par = run_with(4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].client, par[i].client);
    EXPECT_EQ(seq[i].loss, par[i].loss);
    ASSERT_EQ(seq[i].params.size(), par[i].params.size());
    for (std::size_t j = 0; j < seq[i].params.size(); ++j) {
      ASSERT_EQ(seq[i].params[j], par[i].params[j])
          << "client " << i << " param " << j;
    }
  }
}

TEST_F(ParallelRoundTest, CommBytesAreExactUnderConcurrency) {
  const auto bytes_with = [&](std::size_t threads) {
    util::reset_global_pool(threads);
    fl::Federation fed(small_cfg(5));
    const auto results = train_round(fed, 0);
    EXPECT_FALSE(results.empty());
    return std::make_pair(fed.comm().bytes_up(), fed.comm().bytes_down());
  };
  EXPECT_EQ(bytes_with(1), bytes_with(4));
}

TEST_F(ParallelRoundTest, ForEachIndexCoversEveryIndexOnce) {
  util::reset_global_pool(4);
  fl::Federation fed(small_cfg(11));
  fl::ParallelRoundRunner runner(fed);
  const std::size_t n = fed.n_clients();
  std::vector<std::atomic<int>> hits(n);
  runner.for_each_index(n, [&](std::size_t i, nn::Model& ws) {
    EXPECT_EQ(ws.flat_params().size(), fed.model_size());
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_F(ParallelRoundTest, SequentialPathUsesSharedWorkspace) {
  util::reset_global_pool(1);
  fl::Federation fed(small_cfg(13));
  fl::ParallelRoundRunner runner(fed);
  nn::Model* shared = &fed.workspace();
  runner.for_each_index(fed.n_clients(), [&](std::size_t, nn::Model& ws) {
    EXPECT_EQ(&ws, shared);  // FEDCLUST_THREADS=1 takes the seed's path
  });
}

TEST(WorkspacePool, LeasesAreDistinctAndRecycled) {
  fl::Federation fed(small_cfg(17));
  nn::Model* a = fed.acquire_workspace();
  nn::Model* b = fed.acquire_workspace();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_NE(a, &fed.workspace());
  EXPECT_EQ(a->flat_params().size(), fed.model_size());
  fed.release_workspace(a);
  nn::Model* c = fed.acquire_workspace();
  EXPECT_EQ(c, a);  // free list is reused before new replicas are built
  fed.release_workspace(b);
  fed.release_workspace(c);
}

TEST(CommTracker, ConcurrentIncrementsAreExact) {
  fl::CommTracker comm;
  const std::size_t n_threads = 4, per_thread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < n_threads; ++t) {
    threads.emplace_back([&comm] {
      for (std::size_t i = 0; i < per_thread; ++i) {
        comm.upload_envelope(1, fl::wire::encoded_size(comm.codec(), 1));
        comm.download_envelope(2, fl::wire::encoded_size(comm.codec(), 2));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(comm.bytes_up(), n_threads * per_thread * sizeof(float));
  EXPECT_EQ(comm.bytes_down(), n_threads * per_thread * 2 * sizeof(float));
}

}  // namespace
}  // namespace fedclust
