#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen.h"
#include "linalg/principal_angles.h"
#include "linalg/svd.h"
#include "tensor/gemm.h"
#include "util/rng.h"

namespace fedclust::linalg {
namespace {

using tensor::Tensor;

Tensor random_matrix(std::size_t m, std::size_t n, util::Rng& rng) {
  Tensor t({m, n});
  for (auto& x : t.vec()) x = rng.normalf(0, 1);
  return t;
}

Tensor random_symmetric(std::size_t n, util::Rng& rng) {
  Tensor a({n, n});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const float v = rng.normalf(0, 1);
      a[i * n + j] = v;
      a[j * n + i] = v;
    }
  }
  return a;
}

// ------------------------------------------------------------------ eigen

TEST(Eigen, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  const Tensor a({2, 2}, {2, 1, 1, 2});
  const EigenResult r = symmetric_eigen(a);
  ASSERT_EQ(r.values.size(), 2u);
  EXPECT_NEAR(r.values[0], 3.0f, 1e-5);
  EXPECT_NEAR(r.values[1], 1.0f, 1e-5);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(r.vectors.at({0, 0})), std::sqrt(0.5f), 1e-4);
  EXPECT_NEAR(r.vectors.at({0, 0}), r.vectors.at({1, 0}), 1e-4);
}

TEST(Eigen, RejectsNonSquare) {
  EXPECT_THROW(symmetric_eigen(Tensor({2, 3})), std::invalid_argument);
}

TEST(Eigen, RejectsAsymmetric) {
  const Tensor a({2, 2}, {1, 5, 0, 1});
  EXPECT_THROW(symmetric_eigen(a), std::invalid_argument);
}

class EigenSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenSweep, ReconstructsMatrix) {
  const std::size_t n = GetParam();
  util::Rng rng(n * 11 + 1);
  const Tensor a = random_symmetric(n, rng);
  const EigenResult r = symmetric_eigen(a);

  // Eigenvalues sorted descending.
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_GE(r.values[i - 1], r.values[i] - 1e-5f);
  }
  // Columns orthonormal: V^T V = I.
  const Tensor vtv = tensor::matmul(r.vectors, tensor::Trans::kYes,
                                    r.vectors, tensor::Trans::kNo);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(vtv[i * n + j], i == j ? 1.0f : 0.0f, 1e-4);
    }
  }
  // A = V diag(w) V^T.
  Tensor vd = r.vectors;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) vd[i * n + j] *= r.values[j];
  }
  const Tensor rec =
      tensor::matmul(vd, tensor::Trans::kNo, r.vectors, tensor::Trans::kYes);
  for (std::size_t i = 0; i < n * n; ++i) {
    EXPECT_NEAR(rec[i], a[i], 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 10u, 30u, 64u));

// -------------------------------------------------------------------- svd

class SvdSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SvdSweep, ReconstructsAndIsOrthonormal) {
  const auto [m, n] = GetParam();
  util::Rng rng(m * 37 + n);
  const Tensor a = random_matrix(m, n, rng);
  const SvdResult r = jacobi_svd(a);
  const std::size_t k = std::min(m, n);
  ASSERT_EQ(r.s.size(), k);
  ASSERT_EQ(r.u.dim(0), m);
  ASSERT_EQ(r.u.dim(1), k);
  ASSERT_EQ(r.v.dim(0), n);
  ASSERT_EQ(r.v.dim(1), k);

  for (std::size_t i = 1; i < k; ++i) {
    EXPECT_GE(r.s[i - 1], r.s[i] - 1e-5f);
    EXPECT_GE(r.s[i], -1e-6f);
  }

  // U^T U = I and V^T V = I on the thin factors.
  const Tensor utu =
      tensor::matmul(r.u, tensor::Trans::kYes, r.u, tensor::Trans::kNo);
  const Tensor vtv =
      tensor::matmul(r.v, tensor::Trans::kYes, r.v, tensor::Trans::kNo);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_NEAR(utu[i * k + j], i == j ? 1.0f : 0.0f, 1e-4);
      EXPECT_NEAR(vtv[i * k + j], i == j ? 1.0f : 0.0f, 1e-4);
    }
  }

  // A = U diag(s) V^T.
  Tensor us = r.u;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < k; ++j) us[i * k + j] *= r.s[j];
  }
  const Tensor rec =
      tensor::matmul(us, tensor::Trans::kNo, r.v, tensor::Trans::kYes);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(rec[i], a[i], 2e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdSweep,
                         ::testing::Values(std::pair<std::size_t,
                                                     std::size_t>{1, 1},
                                           std::pair<std::size_t,
                                                     std::size_t>{5, 3},
                                           std::pair<std::size_t,
                                                     std::size_t>{3, 5},
                                           std::pair<std::size_t,
                                                     std::size_t>{10, 10},
                                           std::pair<std::size_t,
                                                     std::size_t>{40, 8},
                                           std::pair<std::size_t,
                                                     std::size_t>{8, 40}));

TEST(Svd, RankDeficientSingularValuesVanish) {
  // Rank-1 matrix: outer product.
  const std::size_t m = 6;
  const std::size_t n = 4;
  Tensor a({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a[i * n + j] =
          static_cast<float>(i + 1) * static_cast<float>(j + 1) * 0.1f;
    }
  }
  const SvdResult r = jacobi_svd(a);
  EXPECT_GT(r.s[0], 0.1f);
  for (std::size_t i = 1; i < r.s.size(); ++i) EXPECT_NEAR(r.s[i], 0.0f, 1e-4);
}

TEST(TruncatedSvd, MatchesFullSvdLeadingSubspace) {
  util::Rng rng(77);
  const Tensor x = random_matrix(20, 12, rng);
  const Tensor u3 = truncated_left_singular(x, 3);
  ASSERT_EQ(u3.dim(0), 20u);
  ASSERT_EQ(u3.dim(1), 3u);
  const SvdResult full = jacobi_svd(x);
  // Same 3-dimensional subspace: all principal angles are ~0.
  Tensor uref({20, 3});
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      uref[i * 3 + j] = full.u[i * full.u.dim(1) + j];
    }
  }
  const auto cosines = principal_angle_cosines(u3, uref);
  ASSERT_EQ(cosines.size(), 3u);
  for (const float c : cosines) EXPECT_NEAR(c, 1.0f, 1e-3);
}

TEST(TruncatedSvd, ClampsRank) {
  util::Rng rng(78);
  const Tensor x = random_matrix(10, 2, rng);
  const Tensor u = truncated_left_singular(x, 5);
  EXPECT_LE(u.dim(1), 2u);
}

TEST(OrthonormalizeColumns, DropsDependentColumns) {
  // Third column is the sum of the first two.
  Tensor a({3, 3}, {1, 0, 1, 0, 1, 1, 0, 0, 0});
  const Tensor q = orthonormalize_columns(a);
  EXPECT_EQ(q.dim(1), 2u);
  const Tensor qtq =
      tensor::matmul(q, tensor::Trans::kYes, q, tensor::Trans::kNo);
  EXPECT_NEAR(qtq[0], 1.0f, 1e-5);
  EXPECT_NEAR(qtq[1], 0.0f, 1e-5);
  EXPECT_NEAR(qtq[3], 1.0f, 1e-5);
}

// ------------------------------------------------------- principal angles

TEST(PrincipalAngles, IdenticalSubspaceIsZeroDegrees) {
  util::Rng rng(5);
  const Tensor q = orthonormalize_columns(random_matrix(10, 3, rng));
  EXPECT_NEAR(principal_angle_distance_deg(q, q), 0.0f, 0.1f);
}

TEST(PrincipalAngles, OrthogonalSubspaces) {
  // span(e0, e1) vs span(e2, e3) in R^4: both angles are 90 degrees.
  Tensor u1({4, 2}, {1, 0, 0, 1, 0, 0, 0, 0});
  Tensor u2({4, 2}, {0, 0, 0, 0, 1, 0, 0, 1});
  const auto cosines = principal_angle_cosines(u1, u2);
  ASSERT_EQ(cosines.size(), 2u);
  EXPECT_NEAR(cosines[0], 0.0f, 1e-5);
  EXPECT_NEAR(cosines[1], 0.0f, 1e-5);
  EXPECT_NEAR(principal_angle_distance_deg(u1, u2), 180.0f, 0.1f);
}

TEST(PrincipalAngles, PartialOverlap) {
  // span(e0, e1) vs span(e1, e2): one zero angle, one right angle.
  Tensor u1({3, 2}, {1, 0, 0, 1, 0, 0});
  Tensor u2({3, 2}, {0, 0, 1, 0, 0, 1});
  const auto cosines = principal_angle_cosines(u1, u2);
  ASSERT_EQ(cosines.size(), 2u);
  EXPECT_NEAR(cosines[0], 1.0f, 1e-5);
  EXPECT_NEAR(cosines[1], 0.0f, 1e-5);
  EXPECT_NEAR(principal_angle_distance_deg(u1, u2), 90.0f, 0.1f);
}

TEST(PrincipalAngles, MismatchedAmbientDimThrows) {
  EXPECT_THROW(
      principal_angle_cosines(Tensor({3, 1}), Tensor({4, 1})),
      std::invalid_argument);
}

TEST(PrincipalAngles, EmptySubspace) {
  EXPECT_TRUE(principal_angle_cosines(Tensor({3, 0}), Tensor({3, 2})).empty());
}

}  // namespace
}  // namespace fedclust::linalg
