#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/config.h"
#include "util/serialization.h"
#include "util/stats.h"
#include "util/table.h"

namespace fedclust::util {
namespace {

// ---------------------------------------------------------------- stats

TEST(Stats, MeanAndStddev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.138089935299395, 1e-12);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, ArgminArgmax) {
  const std::vector<double> v = {3.0, -1.0, 7.0, 7.0};
  EXPECT_EQ(argmin(v), 1u);
  EXPECT_EQ(argmax(v), 2u);  // first maximum wins
}

TEST(Stats, EmptyThrows) {
  EXPECT_THROW(mean({}), std::invalid_argument);
  EXPECT_THROW(median({}), std::invalid_argument);
  EXPECT_THROW(argmax({}), std::invalid_argument);
}

TEST(Stats, RunningStatMatchesBatch) {
  const std::vector<double> v = {1.5, 2.5, -0.5, 4.0, 10.0};
  RunningStat rs;
  for (const double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
}

TEST(Stats, RunningStatSingleSample) {
  RunningStat rs;
  rs.add(5.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

// ---------------------------------------------------------------- table

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_float(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_float(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_pm(95.82, 0.17), "95.82 ± 0.17");
}

TEST(Table, RendersAlignedGrid) {
  TablePrinter t("Title");
  t.set_headers({"Method", "Acc"});
  t.add_row({"FedAvg", "50.27"});
  t.add_row({"FedClust", "95.82"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| Method   | Acc   |"), std::string::npos);
  EXPECT_NE(s.find("| FedClust | 95.82 |"), std::string::npos);
}

TEST(Table, HandlesRaggedRowsAndRules) {
  TablePrinter t;
  t.set_headers({"a", "b", "c"});
  t.add_row({"only-one"});
  t.add_rule();
  t.add_row({"x", "y", "z"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("only-one"), std::string::npos);
  EXPECT_NE(s.find("| x"), std::string::npos);
}

TEST(Table, UtfCellsAlign) {
  TablePrinter t;
  t.set_headers({"v"});
  t.add_row({"1.0 ± 0.1"});
  t.add_row({"123456789"});
  const std::string s = t.to_string();
  // Both cells render to the same display width, so both lines end aligned.
  std::istringstream is(s);
  std::string line;
  std::size_t bar_col = 0;
  while (std::getline(is, line)) {
    if (line.find("123456789") != std::string::npos) {
      bar_col = line.size();
    }
  }
  EXPECT_GT(bar_col, 0u);
}

// ---------------------------------------------------------------- config

TEST(Config, EnvDefaults) {
  ::unsetenv("FC_TEST_UNSET");
  EXPECT_EQ(env_string("FC_TEST_UNSET", "d"), "d");
  EXPECT_EQ(env_int("FC_TEST_UNSET", 7), 7);
  EXPECT_DOUBLE_EQ(env_double("FC_TEST_UNSET", 1.5), 1.5);
  EXPECT_TRUE(env_bool("FC_TEST_UNSET", true));
}

TEST(Config, EnvParsing) {
  ::setenv("FC_TEST_INT", "42", 1);
  ::setenv("FC_TEST_DBL", "2.5", 1);
  ::setenv("FC_TEST_BOOL", "true", 1);
  EXPECT_EQ(env_int("FC_TEST_INT", 0), 42);
  EXPECT_DOUBLE_EQ(env_double("FC_TEST_DBL", 0.0), 2.5);
  EXPECT_TRUE(env_bool("FC_TEST_BOOL", false));
  ::setenv("FC_TEST_INT", "nope", 1);
  EXPECT_THROW(env_int("FC_TEST_INT", 0), std::exception);
}

TEST(Config, ArgParserOptionsAndFlags) {
  ArgParser p("prog", "test");
  p.add_option("rounds", "number of rounds", "10");
  p.add_option("dataset", "dataset name", "cifar10");
  p.add_flag("verbose", "chatty output");
  const char* argv[] = {"prog", "--rounds=25", "--verbose", "--dataset",
                        "svhn"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_EQ(p.integer("rounds"), 25);
  EXPECT_EQ(p.str("dataset"), "svhn");
  EXPECT_TRUE(p.flag("verbose"));
}

TEST(Config, ArgParserDefaults) {
  ArgParser p("prog", "test");
  p.add_option("lr", "learning rate", "0.01");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_DOUBLE_EQ(p.real("lr"), 0.01);
}

TEST(Config, ArgParserRejectsUnknown) {
  ArgParser p("prog", "test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(p.parse(2, argv), std::runtime_error);
}

TEST(Config, ArgParserHelpReturnsFalse) {
  ArgParser p("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

// -------------------------------------------------------- serialization

TEST(Serialization, RoundTripScalars) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u32(0xdeadbeef);
  w.write_u64(1234567890123ULL);
  w.write_i64(-42);
  w.write_f32(3.25f);
  w.write_f64(-1e100);
  w.write_string("hello fedclust");
  BinaryReader r(ss);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 1234567890123ULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -1e100);
  EXPECT_EQ(r.read_string(), "hello fedclust");
}

TEST(Serialization, RoundTripVectors) {
  std::stringstream ss;
  BinaryWriter w(ss);
  const std::vector<float> vf = {1.0f, -2.5f, 0.0f};
  const std::vector<double> vd = {};
  w.write_f32_vec(vf);
  w.write_f64_vec(vd);
  BinaryReader r(ss);
  EXPECT_EQ(r.read_f32_vec(), vf);
  EXPECT_TRUE(r.read_f64_vec().empty());
}

TEST(Serialization, TruncatedStreamThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_u32(1);
  BinaryReader r(ss);
  r.read_u32();
  EXPECT_THROW(r.read_u64(), std::runtime_error);
}

TEST(Serialization, CsvWriterEscapes) {
  const std::string path = ::testing::TempDir() + "/fc_csv_test.csv";
  CsvWriter csv(path, {"a", "b"});
  csv.add_row({"plain", "with,comma"});
  csv.add_row({"quote\"inside", "multi\nline"});
  EXPECT_THROW(csv.add_row({"too-few"}), std::invalid_argument);
  std::ifstream is(path);
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string content = buf.str();
  EXPECT_NE(content.find("a,b\n"), std::string::npos);
  EXPECT_NE(content.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Serialization, CsvWriterThrowsNamingUnopenablePath) {
  const std::string bad = "/nonexistent-dir-fc/trace.csv";
  try {
    CsvWriter csv(bad, {"a", "b"});
    FAIL() << "expected throw for unopenable path";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(bad), std::string::npos)
        << "error must name the offending path: " << e.what();
  }
}

TEST(Serialization, CsvWriterThrowsWhenFileVanishesMidRun) {
  const std::string path = ::testing::TempDir() + "/fc_csv_vanish.csv";
  CsvWriter csv(path, {"a"});
  // Replace the file with a directory: the next append's open fails.
  std::remove(path.c_str());
  ASSERT_EQ(::mkdir(path.c_str(), 0755), 0);
  try {
    csv.add_row({"x"});
    FAIL() << "expected throw after path became unwritable";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  ::rmdir(path.c_str());
}

}  // namespace
}  // namespace fedclust::util
