// The socket transport's trust boundary: frame encode/parse round trips,
// every-truncation and every-single-bit-flip rejection on a captured frame
// stream (the framing counterpart of wire_test.cpp's envelope bit-flip
// suite), short-read/short-write injection through a mock ByteStream,
// backoff-schedule purity, transport message codecs, and the fault-plan
// backoff knobs shared between FaultEngine and the real transport.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "fl/fault.h"
#include "fl/wire.h"
#include "net/backoff.h"
#include "net/frame.h"
#include "net/message.h"
#include "net/socket.h"
#include "net/stream.h"

namespace fedclust {
namespace {

using net::FrameReader;
using net::FrameStatus;
using net::IoStatus;

std::vector<std::uint8_t> some_body(std::size_t n, std::uint8_t salt = 0) {
  std::vector<std::uint8_t> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xff);
  }
  return b;
}

// ----------------------------------------------------------- frame basics

TEST(Frame, EncodeLayout) {
  const std::vector<std::uint8_t> body = some_body(5);
  const std::vector<std::uint8_t> f = net::frame_encode(body);
  ASSERT_EQ(f.size(), net::kFrameHeaderSize + body.size());
  // Little-endian magic in the first four bytes.
  EXPECT_EQ(f[0], 0xA3);
  EXPECT_EQ(f[1], 0xF7);
  EXPECT_EQ(f[2], 0xDC);
  EXPECT_EQ(f[3], 0xFE);
  EXPECT_TRUE(std::equal(body.begin(), body.end(),
                         f.begin() + net::kFrameHeaderSize));
}

TEST(Frame, RoundTripSingle) {
  const std::vector<std::uint8_t> body = some_body(300);
  const std::vector<std::uint8_t> f = net::frame_encode(body);
  FrameReader r;
  r.feed(f.data(), f.size());
  std::vector<std::uint8_t> out;
  EXPECT_EQ(r.next(out), FrameStatus::kOk);
  EXPECT_EQ(out, body);
  EXPECT_EQ(r.next(out), FrameStatus::kNeedMore);
  EXPECT_EQ(r.finish(), FrameStatus::kOk);
  EXPECT_FALSE(r.poisoned());
  EXPECT_EQ(r.buffered(), 0u);
}

TEST(Frame, EmptyBodyRoundTrips) {
  const std::vector<std::uint8_t> f = net::frame_encode({});
  FrameReader r;
  r.feed(f.data(), f.size());
  std::vector<std::uint8_t> out{1, 2, 3};
  EXPECT_EQ(r.next(out), FrameStatus::kOk);
  EXPECT_TRUE(out.empty());
}

TEST(Frame, ByteAtATimeAndBackToBack) {
  // Three frames concatenated, delivered one byte per feed: reassembly must
  // be independent of chunking.
  std::vector<std::uint8_t> stream;
  for (int k = 0; k < 3; ++k) {
    const auto f = net::frame_encode(some_body(40 + 13 * k,
                                               static_cast<std::uint8_t>(k)));
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameReader r;
  std::vector<std::vector<std::uint8_t>> got;
  std::vector<std::uint8_t> out;
  for (const std::uint8_t byte : stream) {
    r.feed(&byte, 1);
    while (r.next(out) == FrameStatus::kOk) got.push_back(out);
  }
  ASSERT_EQ(got.size(), 3u);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(got[k], some_body(40 + 13 * k, static_cast<std::uint8_t>(k)));
  }
  EXPECT_EQ(r.finish(), FrameStatus::kOk);
}

TEST(Frame, OversizeLengthRejectedBeforeAllocation) {
  std::vector<std::uint8_t> f = net::frame_encode(some_body(8));
  // Rewrite the length field to something absurd.
  const std::uint32_t huge = net::kMaxFrameBody + 1;
  std::memcpy(f.data() + 4, &huge, 4);
  FrameReader r;
  r.feed(f.data(), f.size());
  std::vector<std::uint8_t> out;
  EXPECT_EQ(r.next(out), FrameStatus::kOversize);
  EXPECT_TRUE(r.poisoned());
  // Poison is sticky: feeding a pristine frame afterwards changes nothing.
  const auto good = net::frame_encode(some_body(8));
  r.feed(good.data(), good.size());
  EXPECT_EQ(r.next(out), FrameStatus::kOversize);
  EXPECT_EQ(r.finish(), FrameStatus::kOversize);
}

// ------------------------------------ exhaustive truncation and bit flips

TEST(Frame, EveryTruncationDetected) {
  // Every proper prefix of a frame must park at kNeedMore and report
  // kTruncated at EOF — no prefix may ever yield a body.
  const std::vector<std::uint8_t> body = some_body(67);
  const std::vector<std::uint8_t> f = net::frame_encode(body);
  for (std::size_t cut = 0; cut < f.size(); ++cut) {
    FrameReader r;
    r.feed(f.data(), cut);
    std::vector<std::uint8_t> out;
    EXPECT_EQ(r.next(out), FrameStatus::kNeedMore) << "cut=" << cut;
    EXPECT_EQ(r.finish(), cut == 0 ? FrameStatus::kOk : FrameStatus::kTruncated)
        << "cut=" << cut;
  }
}

TEST(Frame, EverySingleBitFlipRejected) {
  // A captured two-frame stream with every single bit flipped, one at a
  // time: the reader must never deliver a corrupted body as kOk-with-
  // original-content, and for flips in the first frame must never deliver
  // the first body at all (damage there is always detectable).
  const std::vector<std::uint8_t> body0 = some_body(41, 1);
  const std::vector<std::uint8_t> body1 = some_body(29, 2);
  std::vector<std::uint8_t> stream = net::frame_encode(body0);
  {
    const auto f1 = net::frame_encode(body1);
    stream.insert(stream.end(), f1.begin(), f1.end());
  }
  const std::size_t frame0_size = net::kFrameHeaderSize + body0.size();

  for (std::size_t bit = 0; bit < stream.size() * 8; ++bit) {
    std::vector<std::uint8_t> damaged = stream;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));

    FrameReader r;
    r.feed(damaged.data(), damaged.size());
    std::vector<std::uint8_t> out;
    const FrameStatus first = r.next(out);
    if (bit < frame0_size * 8) {
      // Damage inside frame 0: its body must not come out intact.
      EXPECT_NE(first, FrameStatus::kOk) << "bit=" << bit;
      if (bit < 32) {
        // Flips in the magic are reported as such (a length-field flip may
        // instead surface as kOversize, kBadCrc, or kNeedMore).
        EXPECT_EQ(first, FrameStatus::kBadMagic) << "bit=" << bit;
      }
      EXPECT_NE(r.finish(), FrameStatus::kOk) << "bit=" << bit;
    } else {
      // Frame 0 is clean and must still parse; the damaged frame 1 must
      // not produce its original body.
      EXPECT_EQ(first, FrameStatus::kOk) << "bit=" << bit;
      EXPECT_EQ(out, body0) << "bit=" << bit;
      const FrameStatus second = r.next(out);
      EXPECT_NE(second, FrameStatus::kOk) << "bit=" << bit;
      EXPECT_NE(r.finish(), FrameStatus::kOk) << "bit=" << bit;
    }
  }
}

// -------------------------------------------------- mock-stream injection

// Scripted ByteStream: serves reads from a canned byte sequence in
// caller-chosen chunk sizes, optionally ending in EOF or an error; records
// writes, honoring a max-bytes-per-write cap to exercise short writes.
class MockStream final : public net::ByteStream {
 public:
  std::vector<std::uint8_t> rx;       // bytes to serve
  std::size_t rx_chunk = 3;           // max bytes per read_some
  IoStatus rx_end = IoStatus::kEof;   // status once rx is exhausted
  std::vector<std::uint8_t> tx;       // bytes written
  std::size_t tx_chunk = 2;           // max bytes per write_some
  int tx_fail_after = -1;             // fail the Nth write call (-1 = never)

  IoStatus read_some(std::uint8_t* buf, std::size_t n,
                     std::size_t& got) override {
    got = 0;
    if (rx_pos_ >= rx.size()) return rx_end;
    got = std::min({n, rx_chunk, rx.size() - rx_pos_});
    std::memcpy(buf, rx.data() + rx_pos_, got);
    rx_pos_ += got;
    return IoStatus::kOk;
  }

  IoStatus write_some(const std::uint8_t* buf, std::size_t n,
                      std::size_t& put) override {
    put = 0;
    if (tx_fail_after >= 0 && tx_calls_++ >= tx_fail_after) {
      return IoStatus::kError;
    }
    put = std::min(n, tx_chunk);
    tx.insert(tx.end(), buf, buf + put);
    return IoStatus::kOk;
  }

 private:
  std::size_t rx_pos_ = 0;
  int tx_calls_ = 0;
};

TEST(Stream, ShortWritesComplete) {
  MockStream s;
  s.tx_chunk = 2;  // every write_some makes 2 bytes of progress at most
  const std::vector<std::uint8_t> body = some_body(95);
  ASSERT_EQ(net::write_frame(s, body), IoStatus::kOk);
  FrameReader r;
  r.feed(s.tx.data(), s.tx.size());
  std::vector<std::uint8_t> out;
  EXPECT_EQ(r.next(out), FrameStatus::kOk);
  EXPECT_EQ(out, body);
}

TEST(Stream, WriteFailurePropagates) {
  MockStream s;
  s.tx_fail_after = 4;
  EXPECT_EQ(net::write_frame(s, some_body(200)), IoStatus::kError);
}

TEST(Stream, ShortReadsReassemble) {
  MockStream s;
  s.rx = net::frame_encode(some_body(150, 9));
  s.rx_chunk = 1;  // worst case: one byte per read
  FrameReader r;
  std::vector<std::uint8_t> out;
  FrameStatus fst = FrameStatus::kNeedMore;
  ASSERT_EQ(net::read_frame(s, r, out, fst), IoStatus::kOk);
  EXPECT_EQ(fst, FrameStatus::kOk);
  EXPECT_EQ(out, some_body(150, 9));
}

TEST(Stream, EofMidFrameIsTruncation) {
  MockStream s;
  s.rx = net::frame_encode(some_body(80));
  s.rx.resize(s.rx.size() - 7);  // cut the tail; stream then EOFs
  FrameReader r;
  std::vector<std::uint8_t> out;
  FrameStatus fst = FrameStatus::kOk;
  EXPECT_EQ(net::read_frame(s, r, out, fst), IoStatus::kEof);
  EXPECT_EQ(fst, FrameStatus::kTruncated);
}

TEST(Stream, TimeoutSurfacesWithoutPoison) {
  MockStream s;
  const auto f = net::frame_encode(some_body(30));
  s.rx.assign(f.begin(), f.begin() + 5);
  s.rx_end = IoStatus::kTimeout;
  FrameReader r;
  std::vector<std::uint8_t> out;
  FrameStatus fst = FrameStatus::kOk;
  EXPECT_EQ(net::read_frame(s, r, out, fst), IoStatus::kTimeout);
  EXPECT_FALSE(r.poisoned());
  // The connection survived; the rest of the frame completes the read.
  MockStream rest;
  rest.rx.assign(f.begin() + 5, f.end());
  ASSERT_EQ(net::read_frame(rest, r, out, fst), IoStatus::kOk);
  EXPECT_EQ(out, some_body(30));
}

TEST(Stream, CorruptFrameSurfacesAsError) {
  MockStream s;
  s.rx = net::frame_encode(some_body(50));
  s.rx[net::kFrameHeaderSize + 10] ^= 0x40;  // flip one body bit
  FrameReader r;
  std::vector<std::uint8_t> out;
  FrameStatus fst = FrameStatus::kOk;
  EXPECT_EQ(net::read_frame(s, r, out, fst), IoStatus::kError);
  EXPECT_EQ(fst, FrameStatus::kBadCrc);
  EXPECT_TRUE(r.poisoned());
}

// ------------------------------------------------------- backoff schedule

TEST(Backoff, PureFunctionOfInputs) {
  net::BackoffPolicy p;
  for (std::uint64_t client : {0ull, 3ull, 17ull}) {
    for (std::uint64_t round : {0ull, 1ull, 9ull}) {
      for (std::uint64_t attempt : {1ull, 2ull, 5ull}) {
        const double a = p.delay_seconds(42, client, round, attempt);
        const double b = p.delay_seconds(42, client, round, attempt);
        EXPECT_EQ(a, b) << client << "/" << round << "/" << attempt;
        EXPECT_GT(a, 0.0);
      }
    }
  }
  // Different coordinates decorrelate (jitter streams are split per key).
  EXPECT_NE(p.delay_seconds(42, 1, 0, 1), p.delay_seconds(42, 2, 0, 1));
  EXPECT_NE(p.delay_seconds(42, 1, 0, 1), p.delay_seconds(43, 1, 0, 1));
}

TEST(Backoff, ExponentialShapeAndCap) {
  net::BackoffPolicy p;
  p.jitter = 0.0;  // isolate the deterministic schedule
  p.base = 0.25;
  p.mult = 2.0;
  p.cap_seconds = 10.0;
  EXPECT_EQ(p.delay_seconds(1, 0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(p.delay_seconds(1, 0, 0, 1), 0.25);
  EXPECT_DOUBLE_EQ(p.delay_seconds(1, 0, 0, 2), 0.5);
  EXPECT_DOUBLE_EQ(p.delay_seconds(1, 0, 0, 3), 1.0);
  EXPECT_DOUBLE_EQ(p.delay_seconds(1, 0, 0, 30), 10.0);  // capped
}

TEST(Backoff, DefaultsMatchSimulatedCommSchedule) {
  // federation.cpp's simulated retry clock walks base * mult^k with the
  // same defaults; the transport reproduces that schedule exactly when
  // jitter is off.
  fl::FaultPlan plan;
  const net::BackoffPolicy p = net::BackoffPolicy::from_fault_plan(plan);
  EXPECT_DOUBLE_EQ(p.base, 0.25);
  EXPECT_DOUBLE_EQ(p.mult, 2.0);
  EXPECT_EQ(p.max_attempts, plan.max_retries + 1);
}

TEST(Backoff, JitterBoundedByFraction) {
  net::BackoffPolicy p;
  p.jitter = 0.1;
  for (std::uint64_t a = 1; a <= 4; ++a) {
    const double base = [&] {
      net::BackoffPolicy q = p;
      q.jitter = 0.0;
      return q.delay_seconds(7, 5, 2, a);
    }();
    const double d = p.delay_seconds(7, 5, 2, a);
    EXPECT_GE(d, base);
    EXPECT_LE(d, base * 1.1000001);
  }
}

// ---------------------------------------------- fault-plan backoff knobs

TEST(FaultPlanBackoff, ParseDescribeRoundTrip) {
  const fl::FaultPlan plan =
      fl::FaultPlan::parse("comm=0.2,retries=4,backoff_base=0.5,"
                           "backoff_mult=3");
  EXPECT_DOUBLE_EQ(plan.backoff_base, 0.5);
  EXPECT_DOUBLE_EQ(plan.backoff_mult, 3.0);
  EXPECT_EQ(plan.max_retries, 4u);
  // Non-default knobs show up in the human-readable plan description.
  const std::string desc = plan.describe();
  EXPECT_NE(desc.find("backoff_base=0.5"), std::string::npos) << desc;
  EXPECT_NE(desc.find("backoff_mult=3"), std::string::npos) << desc;

  const net::BackoffPolicy p = net::BackoffPolicy::from_fault_plan(plan);
  EXPECT_DOUBLE_EQ(p.base, 0.5);
  EXPECT_DOUBLE_EQ(p.mult, 3.0);
  EXPECT_EQ(p.max_attempts, 5u);
}

TEST(FaultPlanBackoff, DefaultsOmittedFromDescribe) {
  EXPECT_EQ(fl::FaultPlan{}.describe().find("backoff"), std::string::npos);
}

TEST(FaultPlanBackoff, ValidationRejectsNonsense) {
  EXPECT_THROW(fl::FaultPlan::parse("backoff_base=0"), std::invalid_argument);
  EXPECT_THROW(fl::FaultPlan::parse("backoff_base=-1"),
               std::invalid_argument);
  EXPECT_THROW(fl::FaultPlan::parse("backoff_mult=0.5"),
               std::invalid_argument);
}

// ------------------------------------------------------- message codecs

TEST(Message, HelloWelcomeHeartbeatErrorRoundTrip) {
  net::HelloMsg h;
  h.fingerprint = 0xDEADBEEFCAFEF00Dull;
  h.seed = 7;
  h.resume_round = 5;
  h.calls_served = 123;
  net::HelloMsg h2;
  ASSERT_TRUE(net::decode_hello(net::encode_hello(h), h2));
  EXPECT_EQ(h2.fingerprint, h.fingerprint);
  EXPECT_EQ(h2.seed, 7u);
  EXPECT_EQ(h2.resume_round, 5u);
  EXPECT_EQ(h2.calls_served, 123u);

  net::WelcomeMsg w;
  w.worker_id = 3;
  w.next_round = 9;
  w.n_workers = 4;
  net::WelcomeMsg w2;
  ASSERT_TRUE(net::decode_welcome(net::encode_welcome(w), w2));
  EXPECT_EQ(w2.worker_id, 3u);
  EXPECT_EQ(w2.next_round, 9u);
  EXPECT_EQ(w2.n_workers, 4u);

  net::HeartbeatMsg hb;
  hb.worker_id = 2;
  hb.calls_served = 44;
  net::HeartbeatMsg hb2;
  ASSERT_TRUE(net::decode_heartbeat(net::encode_heartbeat(hb), hb2));
  EXPECT_EQ(hb2.worker_id, 2u);
  EXPECT_EQ(hb2.calls_served, 44u);

  net::ErrorMsg e;
  e.code = 6;
  e.reason = "envelope rejected";
  net::ErrorMsg e2;
  ASSERT_TRUE(net::decode_error(net::encode_error(e), e2));
  EXPECT_EQ(e2.code, 6u);
  EXPECT_EQ(e2.reason, "envelope rejected");
}

TEST(Message, TrainReqRoundTripWithOptionals) {
  const std::vector<float> params{1.5f, -2.25f, 0.0f, 1e-7f};
  net::TrainReqMsg m;
  m.client = 11;
  m.round = 4;
  m.opts.epochs = 3;
  m.opts.batch_size = 16;
  m.opts.lr = 0.05f;
  m.opts.prox_mu = 0.1f;
  m.rng = util::Rng(99).split(5).state();
  m.start_env = fl::wire::encode(fl::wire::MessageKind::kModelPull,
                                 fl::wire::CodecId::kRawF32,
                                 fl::wire::kServerSender, 4, params);
  m.prox_env = m.start_env;

  net::TrainReqMsg out;
  ASSERT_TRUE(net::decode_train_req(net::encode_train_req(m), out));
  EXPECT_EQ(out.client, 11u);
  EXPECT_EQ(out.round, 4u);
  EXPECT_EQ(out.opts.epochs, 3u);
  EXPECT_EQ(out.opts.batch_size, 16u);
  EXPECT_EQ(out.opts.lr, 0.05f);
  EXPECT_EQ(out.opts.prox_mu, 0.1f);
  EXPECT_EQ(out.rng, m.rng);
  ASSERT_TRUE(out.prox_env.has_value());
  EXPECT_FALSE(out.offset_env.has_value());
  // The embedded envelope survives byte-exactly and still decodes.
  EXPECT_EQ(out.start_env, m.start_env);
  fl::wire::Envelope env;
  ASSERT_EQ(fl::wire::try_decode(out.start_env.data(), out.start_env.size(),
                                 env),
            fl::wire::DecodeStatus::kOk);
  EXPECT_EQ(env.payload, params);
}

TEST(Message, TrainRespRoundTripBothArms) {
  net::TrainRespMsg ok;
  ok.client = 8;
  ok.round = 2;
  ok.ok = true;
  ok.loss = 1.25f;
  ok.train_us = 777;
  ok.params_env = fl::wire::encode(fl::wire::MessageKind::kUpdatePush,
                                   fl::wire::CodecId::kRawF32, 8, 2,
                                   std::vector<float>{3.0f, 4.0f});
  net::TrainRespMsg out;
  ASSERT_TRUE(net::decode_train_resp(net::encode_train_resp(ok), out));
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.loss, 1.25f);
  EXPECT_EQ(out.train_us, 777u);
  EXPECT_EQ(out.params_env, ok.params_env);

  net::TrainRespMsg fail;
  fail.client = 8;
  fail.round = 2;
  fail.ok = false;
  ASSERT_TRUE(net::decode_train_resp(net::encode_train_resp(fail), out));
  EXPECT_FALSE(out.ok);
  EXPECT_TRUE(out.params_env.empty());
}

TEST(Message, MalformedBodiesRejected) {
  net::TrainReqMsg req;
  net::HelloMsg hello;
  // Empty, wrong type byte, and truncated bodies all decode to false.
  EXPECT_FALSE(net::decode_hello({}, hello));
  EXPECT_FALSE(net::decode_train_req(net::encode_hello(net::HelloMsg{}),
                                     req));
  std::vector<std::uint8_t> cut = net::encode_hello(net::HelloMsg{});
  cut.pop_back();
  EXPECT_FALSE(net::decode_hello(cut, hello));
  // Trailing garbage is rejected too (no silent over-read).
  std::vector<std::uint8_t> extra = net::encode_hello(net::HelloMsg{});
  extra.push_back(0);
  EXPECT_FALSE(net::decode_hello(extra, hello));
  EXPECT_FALSE(net::peek_type({}).has_value());
  EXPECT_FALSE(net::peek_type({0xEE}).has_value());
}

TEST(Message, EveryTruncationOfTrainReqRejected) {
  net::TrainReqMsg m;
  m.client = 1;
  m.round = 1;
  m.rng = util::Rng(1).state();
  m.start_env = fl::wire::encode(fl::wire::MessageKind::kModelPull,
                                 fl::wire::CodecId::kRawF32,
                                 fl::wire::kServerSender, 1,
                                 std::vector<float>{1.0f, 2.0f, 3.0f});
  const std::vector<std::uint8_t> full = net::encode_train_req(m);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> body(full.begin(), full.begin() + cut);
    net::TrainReqMsg out;
    EXPECT_FALSE(net::decode_train_req(body, out)) << "cut=" << cut;
  }
  net::TrainReqMsg out;
  EXPECT_TRUE(net::decode_train_req(full, out));
}

// ----------------------------------------------------------- address spec

TEST(Address, ParseForms) {
  const net::Address u = net::Address::parse("unix:/tmp/x.sock");
  EXPECT_TRUE(u.is_unix);
  EXPECT_EQ(u.path, "/tmp/x.sock");
  EXPECT_EQ(u.describe(), "unix:/tmp/x.sock");

  const net::Address t = net::Address::parse("tcp:127.0.0.1:7070");
  EXPECT_FALSE(t.is_unix);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 7070);

  const net::Address bare = net::Address::parse("localhost:9");
  EXPECT_EQ(bare.host, "localhost");
  EXPECT_EQ(bare.port, 9);

  EXPECT_THROW(net::Address::parse("unix:"), std::invalid_argument);
  EXPECT_THROW(net::Address::parse("tcp:hostonly"), std::invalid_argument);
  EXPECT_THROW(net::Address::parse("tcp:h:99999"), std::invalid_argument);
  EXPECT_THROW(net::Address::parse("tcp:h:"), std::invalid_argument);
  EXPECT_THROW(net::Address::parse(""), std::invalid_argument);
}

}  // namespace
}  // namespace fedclust
