// Deterministic fault injection and resilient round execution: the fault
// schedule is a pure function of (seed, client, round), corrupted updates
// are quarantined before any FP reduction, hollowed-out clusters carry
// their models forward, and a zero-fault plan is bit-identical to running
// with the engine disabled.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/fedclust.h"
#include "core/registry.h"
#include "fl/fault.h"
#include "fl/fedavg.h"
#include "fl/federation.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace fedclust {
namespace {

fl::ExperimentConfig cfg_for(std::uint64_t seed) {
  fl::ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("svhn");
  cfg.data_spec.hw = 8;
  cfg.fed.n_clients = 10;
  cfg.fed.train_per_client = 12;
  cfg.fed.test_per_client = 6;
  cfg.fed.partition = "dirichlet";
  cfg.fed.dirichlet_alpha = 0.3;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 3;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 6;
  cfg.local.lr = 0.05f;
  cfg.rounds = 3;
  cfg.sample_fraction = 0.4;
  cfg.seed = seed;
  return cfg;
}

void expect_identical(const fl::Trace& a, const fl::Trace& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].avg_local_test_acc,
                     b.records[i].avg_local_test_acc);
    EXPECT_EQ(a.records[i].bytes_up, b.records[i].bytes_up);
    EXPECT_EQ(a.records[i].bytes_down, b.records[i].bytes_down);
    EXPECT_EQ(a.records[i].n_clusters, b.records[i].n_clusters);
  }
}

void expect_bit_identical(const std::vector<float>& a,
                          const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "params differ at " << i;
  }
}

void expect_all_finite(const std::vector<float>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_TRUE(std::isfinite(v[i])) << "non-finite param at " << i;
  }
}

template <typename Fn>
std::string thrown_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

// Enables the metrics registry for one test and restores the disabled
// default afterwards, zeroing values both ways so tests can't observe each
// other's counters.
class MetricsOn {
 public:
  MetricsOn() {
    obs::MetricsRegistry::instance().reset_values();
    obs::MetricsRegistry::instance().set_enabled(true);
  }
  ~MetricsOn() {
    obs::MetricsRegistry::instance().set_enabled(false);
    obs::MetricsRegistry::instance().reset_values();
  }
};

std::uint64_t counter_value(const std::string& name) {
  return obs::MetricsRegistry::instance().snapshot().counter_value(name);
}

// ---- FaultPlan parsing ----------------------------------------------------

TEST(FaultPlanParse, EmptySpecIsDisabled) {
  const fl::FaultPlan plan = fl::FaultPlan::parse("");
  EXPECT_FALSE(plan.enabled);
  EXPECT_FALSE(plan.active());
}

TEST(FaultPlanParse, RoundTripsEveryKey) {
  const fl::FaultPlan plan = fl::FaultPlan::parse(
      "dropout=0.1,crash=0.2,straggle=0.3,delay=4,comm=0.15,corrupt=0.05,"
      "corrupt_mode=nan,explode=1e7,deadline=2.5,retries=3,over_select=0.5,"
      "max_norm=500,only=7:0:3");
  EXPECT_TRUE(plan.enabled);
  EXPECT_TRUE(plan.active());
  EXPECT_DOUBLE_EQ(plan.pre_round_dropout, 0.1);
  EXPECT_DOUBLE_EQ(plan.post_train_crash, 0.2);
  EXPECT_DOUBLE_EQ(plan.straggler_prob, 0.3);
  EXPECT_DOUBLE_EQ(plan.straggler_delay, 4.0);
  EXPECT_DOUBLE_EQ(plan.transient_comm_prob, 0.15);
  EXPECT_DOUBLE_EQ(plan.corrupt_prob, 0.05);
  EXPECT_EQ(plan.corrupt_mode, "nan");
  EXPECT_DOUBLE_EQ(plan.explode_factor, 1e7);
  EXPECT_DOUBLE_EQ(plan.round_deadline, 2.5);
  EXPECT_EQ(plan.max_retries, 3u);
  EXPECT_DOUBLE_EQ(plan.over_select_fraction, 0.5);
  EXPECT_DOUBLE_EQ(plan.max_update_norm, 500.0);
  EXPECT_EQ(plan.only_clients, (std::vector<std::size_t>{0, 3, 7}));
  EXPECT_FALSE(plan.describe().empty());
}

TEST(FaultPlanParse, AllZeroSpecIsEnabledButDescribable) {
  const fl::FaultPlan plan = fl::FaultPlan::parse("retries=2");
  EXPECT_TRUE(plan.enabled);
  EXPECT_TRUE(plan.active());  // enabled forces the engine code path
  EXPECT_DOUBLE_EQ(plan.post_train_crash, 0.0);
}

TEST(FaultPlanParse, UnknownKeyThrowsNamingValidKeys) {
  const std::string msg =
      thrown_message([] { fl::FaultPlan::parse("bogus=1"); });
  EXPECT_NE(msg.find("unknown key 'bogus'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("crash"), std::string::npos) << msg;
}

TEST(FaultPlanParse, BadValueThrows) {
  EXPECT_THROW(fl::FaultPlan::parse("crash=lots"), std::invalid_argument);
  EXPECT_THROW(fl::FaultPlan::parse("crash"), std::invalid_argument);
}

TEST(FaultPlanParse, ValidatesRanges) {
  EXPECT_NE(thrown_message([] { fl::FaultPlan::parse("crash=1.0"); })
                .find("FaultPlan.post_train_crash"),
            std::string::npos);
  EXPECT_NE(thrown_message([] { fl::FaultPlan::parse("delay=0.5"); })
                .find("FaultPlan.straggler_delay"),
            std::string::npos);
  EXPECT_NE(thrown_message([] { fl::FaultPlan::parse("corrupt_mode=zap"); })
                .find("FaultPlan.corrupt_mode"),
            std::string::npos);
  EXPECT_THROW(fl::FaultPlan::parse("retries=1.5"), std::invalid_argument);
}

// ---- UpdateValidator ------------------------------------------------------

TEST(UpdateValidatorTest, AcceptsFiniteUpdates) {
  const fl::UpdateValidator v(0.0);
  EXPECT_EQ(v.check({0.5f, -1.0f, 3.0f}), nullptr);
}

TEST(UpdateValidatorTest, RejectsNanAndInf) {
  const fl::UpdateValidator v(0.0);
  EXPECT_STREQ(v.check({0.5f, std::numeric_limits<float>::quiet_NaN()}),
               "non_finite");
  EXPECT_STREQ(v.check({std::numeric_limits<float>::infinity(), 1.0f}),
               "non_finite");
}

TEST(UpdateValidatorTest, EnforcesNormBoundOnlyWhenSet) {
  const fl::UpdateValidator bounded(1.0);
  EXPECT_STREQ(bounded.check({2.0f, 0.0f}), "norm_bound");  // ||.|| = 2
  EXPECT_EQ(bounded.check({0.5f, 0.5f}), nullptr);
  const fl::UpdateValidator unbounded(0.0);
  EXPECT_EQ(unbounded.check({1e30f, 1e30f}), nullptr);
}

// ---- FaultEngine schedule purity ------------------------------------------

fl::FaultPlan full_plan() {
  return fl::FaultPlan::parse(
      "dropout=0.15,crash=0.1,straggle=0.2,delay=4,comm=0.2,corrupt=0.15,"
      "deadline=3.5,retries=2,max_norm=1e6");
}

void expect_same_decision(const fl::FaultDecision& a,
                          const fl::FaultDecision& b) {
  EXPECT_EQ(a.drop_pre_round, b.drop_pre_round);
  EXPECT_EQ(a.crash_post_train, b.crash_post_train);
  EXPECT_EQ(a.straggler, b.straggler);
  EXPECT_DOUBLE_EQ(a.delay_factor, b.delay_factor);
  EXPECT_EQ(static_cast<int>(a.corrupt), static_cast<int>(b.corrupt));
  EXPECT_EQ(a.transient_failures, b.transient_failures);
}

TEST(FaultEngineTest, ScheduleIsAPureFunctionOfSeedClientRound) {
  const fl::FaultEngine e1(full_plan(), 99);
  const fl::FaultEngine e2(full_plan(), 99);
  for (std::size_t c = 0; c < 10; ++c) {
    for (std::size_t r = 0; r < 10; ++r) {
      // Same engine asked twice, and an independently constructed engine:
      // three identical answers, regardless of query order.
      expect_same_decision(e1.decide(c, r), e1.decide(c, r));
      expect_same_decision(e1.decide(c, r), e2.decide(c, r));
    }
  }
}

TEST(FaultEngineTest, SchedulesDivergeAcrossSeeds) {
  const fl::FaultEngine e1(full_plan(), 1);
  const fl::FaultEngine e2(full_plan(), 2);
  std::size_t differing = 0;
  for (std::size_t c = 0; c < 10; ++c) {
    for (std::size_t r = 0; r < 10; ++r) {
      const auto a = e1.decide(c, r);
      const auto b = e2.decide(c, r);
      differing += a.drop_pre_round != b.drop_pre_round ||
                   a.crash_post_train != b.crash_post_train ||
                   a.straggler != b.straggler ||
                   a.transient_failures != b.transient_failures;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultEngineTest, OnlyClientsRestrictsInjection) {
  fl::FaultPlan plan = fl::FaultPlan::parse("crash=0.999999,only=2:5");
  const fl::FaultEngine engine(plan, 7);
  for (std::size_t r = 0; r < 20; ++r) {
    EXPECT_FALSE(engine.decide(0, r).crash_post_train);
    EXPECT_FALSE(engine.decide(9, r).crash_post_train);
  }
  std::size_t crashes = 0;
  for (std::size_t r = 0; r < 20; ++r) {
    crashes += engine.decide(2, r).crash_post_train;
    crashes += engine.decide(5, r).crash_post_train;
  }
  EXPECT_GT(crashes, 30u);  // p = 0.999999 over 40 draws
}

TEST(FaultEngineTest, InactiveEngineDecidesNothing) {
  const fl::FaultEngine engine{};
  const auto d = engine.decide(3, 4);
  EXPECT_FALSE(d.drop_pre_round);
  EXPECT_FALSE(d.crash_post_train);
  EXPECT_FALSE(d.straggler);
  EXPECT_EQ(d.transient_failures, 0u);
}

TEST(FaultEngineTest, CorruptionIsDeterministic) {
  const fl::FaultEngine engine(full_plan(), 11);
  std::vector<float> a(64, 0.25f);
  std::vector<float> b(64, 0.25f);
  engine.corrupt_update(a, 3, 5, fl::CorruptionKind::kBitFlip);
  engine.corrupt_update(b, 3, 5, fl::CorruptionKind::kBitFlip);
  expect_bit_identical(a, b);
  EXPECT_NE(a, std::vector<float>(64, 0.25f));  // something actually flipped
}

// ---- ExperimentConfig validation at Federation construction ----------------

TEST(ConfigValidation, RejectsBadSampleFraction) {
  auto cfg = cfg_for(1);
  cfg.sample_fraction = 0.0;
  EXPECT_NE(thrown_message([&] { fl::Federation fed(cfg); })
                .find("sample_fraction"),
            std::string::npos);
  cfg.sample_fraction = 1.5;
  EXPECT_NE(thrown_message([&] { fl::Federation fed(cfg); })
                .find("sample_fraction"),
            std::string::npos);
}

TEST(ConfigValidation, RejectsZeroRoundsAndEvalEvery) {
  auto cfg = cfg_for(1);
  cfg.rounds = 0;
  EXPECT_NE(thrown_message([&] { fl::Federation fed(cfg); }).find("rounds"),
            std::string::npos);
  cfg = cfg_for(1);
  cfg.eval_every = 0;
  EXPECT_NE(
      thrown_message([&] { fl::Federation fed(cfg); }).find("eval_every"),
      std::string::npos);
}

TEST(ConfigValidation, RejectsBadDropoutProb) {
  auto cfg = cfg_for(1);
  cfg.dropout_prob = 1.0;
  EXPECT_NE(
      thrown_message([&] { fl::Federation fed(cfg); }).find("dropout_prob"),
      std::string::npos);
  cfg.dropout_prob = -0.1;
  EXPECT_NE(
      thrown_message([&] { fl::Federation fed(cfg); }).find("dropout_prob"),
      std::string::npos);
}

TEST(ConfigValidation, RejectsBadFaultPlan) {
  auto cfg = cfg_for(1);
  cfg.fault.post_train_crash = 1.5;
  EXPECT_NE(thrown_message([&] { fl::Federation fed(cfg); })
                .find("FaultPlan.post_train_crash"),
            std::string::npos);
}

// ---- legacy dropout_prob mapping -------------------------------------------

TEST(LegacyDropout, MapsOntoPreRoundDropout) {
  auto cfg = cfg_for(3);
  cfg.dropout_prob = 0.3;
  fl::Federation fed(cfg);
  EXPECT_TRUE(fed.faults().active());
  EXPECT_DOUBLE_EQ(fed.faults().plan().pre_round_dropout, 0.3);
}

TEST(LegacyDropout, ExplicitPlanValueWins) {
  auto cfg = cfg_for(3);
  cfg.dropout_prob = 0.3;
  cfg.fault = fl::FaultPlan::parse("dropout=0.1");
  fl::Federation fed(cfg);
  EXPECT_DOUBLE_EQ(fed.faults().plan().pre_round_dropout, 0.1);
}

// ---- deliver_update cost profiles ------------------------------------------

TEST(Delivery, FaultFreePathBillsOneUpload) {
  fl::Federation fed(cfg_for(5));
  ASSERT_FALSE(fed.faults().active());
  std::vector<float> params = fed.init_params();
  const std::uint64_t before = fed.comm().bytes_up();
  EXPECT_TRUE(fed.deliver_update(0, 0, params, 50));
  EXPECT_EQ(fed.comm().bytes_up() - before, 50u * 4u);
}

TEST(Delivery, CrashLosesUpdateWithoutBytes) {
  auto cfg = cfg_for(5);
  cfg.fault = fl::FaultPlan::parse("crash=0.999999");
  fl::Federation fed(cfg);
  // Find a scheduled crash (virtually every pair; scan keeps it exact).
  for (std::size_t c = 0; c < fed.n_clients(); ++c) {
    if (!fed.faults().decide(c, 0).crash_post_train) continue;
    std::vector<float> params = fed.init_params();
    const std::uint64_t before = fed.comm().bytes_up();
    EXPECT_FALSE(fed.deliver_update(c, 0, params, 50));
    EXPECT_EQ(fed.comm().bytes_up(), before);  // no byte ever moved
    return;
  }
  FAIL() << "no crash scheduled at p=0.999999";
}

TEST(Delivery, RetriesBillEveryTransmission) {
  auto cfg = cfg_for(5);
  cfg.fault = fl::FaultPlan::parse("comm=0.4,retries=2");
  fl::Federation fed(cfg);
  const std::size_t max_retries = fed.faults().plan().max_retries;
  for (std::size_t c = 0; c < fed.n_clients(); ++c) {
    for (std::size_t r = 0; r < 50; ++r) {
      const auto d = fed.faults().decide(c, r);
      if (d.transient_failures == 0 || d.transient_failures > max_retries) {
        continue;  // want a retried-but-delivered update
      }
      std::vector<float> params = fed.init_params();
      const std::uint64_t before = fed.comm().bytes_up();
      EXPECT_TRUE(fed.deliver_update(c, r, params, 100));
      EXPECT_EQ(fed.comm().bytes_up() - before,
                100u * 4u * (d.transient_failures + 1));
      return;
    }
  }
  FAIL() << "no retried delivery found in the schedule";
}

TEST(Delivery, ExhaustedRetriesLoseUpdateButBillComm) {
  auto cfg = cfg_for(5);
  cfg.fault = fl::FaultPlan::parse("comm=0.7,retries=1");
  fl::Federation fed(cfg);
  const std::size_t max_retries = fed.faults().plan().max_retries;
  for (std::size_t c = 0; c < fed.n_clients(); ++c) {
    for (std::size_t r = 0; r < 50; ++r) {
      if (fed.faults().decide(c, r).transient_failures <= max_retries) {
        continue;
      }
      std::vector<float> params = fed.init_params();
      const std::uint64_t before = fed.comm().bytes_up();
      EXPECT_FALSE(fed.deliver_update(c, r, params, 100));
      // Every attempt within the budget put bytes on the wire.
      EXPECT_EQ(fed.comm().bytes_up() - before,
                100u * 4u * (max_retries + 1));
      return;
    }
  }
  FAIL() << "no exhausted retry budget found in the schedule";
}

// ---- over-selection --------------------------------------------------------

TEST(OverSelection, GrowsTheInvitedCohort) {
  auto cfg = cfg_for(8);
  cfg.fault = fl::FaultPlan::parse("over_select=0.5");
  fl::Federation fed(cfg);
  // 0.4 * 10 = 4 wanted, hedged to ceil(4 * 1.5) = 6; no dropouts occur.
  EXPECT_EQ(fed.sample_round(0).size(), 6u);

  fl::Federation plain(cfg_for(8));
  EXPECT_EQ(plain.sample_round(0).size(), 4u);
}

// ---- end-to-end resilience -------------------------------------------------

TEST(Resilience, FedAvgAllCrashCarriesGlobalForward) {
  auto cfg = cfg_for(21);
  cfg.fault = fl::FaultPlan::parse("crash=0.999999");
  fl::Federation fed(cfg);
  fl::FedAvg algo(fed);
  const fl::Trace trace = algo.run();
  EXPECT_EQ(trace.records.size(), cfg.rounds);
  // Every update was lost post-train, so θ never moved — and no upload
  // bytes were billed for the crashed deliveries.
  expect_bit_identical(algo.global_params(), fed.init_params());
  EXPECT_EQ(fed.comm().bytes_up(), 0u);
  EXPECT_GT(fed.comm().bytes_down(), 0u);  // downloads still happened
}

TEST(Resilience, StragglerDeadlineDiscardsLateUpdates) {
  auto cfg = cfg_for(22);
  cfg.fault = fl::FaultPlan::parse("straggle=0.999999,delay=10,deadline=1");
  fl::Federation fed(cfg);
  fl::FedAvg algo(fed);
  algo.run();
  // Every client straggled past the deadline: the updates were transmitted
  // (comm spent) but discarded, so the global model never moved.
  expect_bit_identical(algo.global_params(), fed.init_params());
  EXPECT_GT(fed.comm().bytes_up(), 0u);
}

TEST(Resilience, CorruptedUpdatesNeverReachFedAvgAggregation) {
  const MetricsOn metrics;
  auto cfg = cfg_for(23);
  cfg.fault = fl::FaultPlan::parse("corrupt=0.9,corrupt_mode=nan");
  fl::Federation fed(cfg);
  fl::FedAvg algo(fed);
  algo.run();
  expect_all_finite(algo.global_params());
  EXPECT_GT(counter_value("fault.injected.corrupted_update"), 0u);
  // Every NaN injection was caught by the always-on finiteness screen.
  EXPECT_EQ(counter_value("fault.rejected_updates"),
            counter_value("fault.injected.corrupted_update"));
}

TEST(Resilience, ExplodingUpdatesNeverReachFedClustAggregation) {
  const MetricsOn metrics;
  auto cfg = cfg_for(24);
  cfg.algo.fedclust_k = 2;
  cfg.fault = fl::FaultPlan::parse(
      "corrupt=0.9,corrupt_mode=explode,explode=1e8,max_norm=1e6");
  fl::Federation fed(cfg);
  core::FedClust algo(fed);
  algo.run();
  for (std::size_t k = 0; k < algo.report().n_clusters; ++k) {
    expect_all_finite(algo.cluster_model(k));
  }
  EXPECT_GT(counter_value("fault.injected.corrupted_update"), 0u);
  EXPECT_EQ(counter_value("fault.rejected_updates"),
            counter_value("fault.injected.corrupted_update"));
}

TEST(Resilience, FedClustCarriesClusterModelThroughTotalCrash) {
  // Clean run reveals the (deterministic) clustering, then the chaos
  // campaign targets every member of cluster 0 with certain post-train
  // crashes. The run must complete, carry cluster 0's model forward
  // untouched, and keep training the other cluster.
  auto cfg = cfg_for(25);
  cfg.algo.fedclust_k = 2;
  cfg.sample_fraction = 1.0;
  std::vector<std::size_t> members;
  std::vector<std::size_t> clean_assignment;
  {
    fl::Federation fed(cfg);
    core::FedClust algo(fed);
    algo.run();
    clean_assignment = algo.assignment();
    for (std::size_t c = 0; c < clean_assignment.size(); ++c) {
      if (clean_assignment[c] == 0) members.push_back(c);
    }
  }
  ASSERT_FALSE(members.empty());
  ASSERT_LT(members.size(), cfg.fed.n_clients);

  const MetricsOn metrics;
  cfg.fault.post_train_crash = 0.999999;
  cfg.fault.only_clients = members;
  cfg.fault.enabled = true;
  fl::Federation fed(cfg);
  core::FedClust algo(fed);
  algo.run();

  // The warmup sweep is fault-free, so the clustering is unchanged.
  EXPECT_EQ(algo.assignment(), clean_assignment);
  ASSERT_EQ(algo.report().n_clusters, 2u);
  // Cluster 0 lost every update every round: its model is still θ0.
  expect_bit_identical(algo.cluster_model(0), fed.init_params());
  // Cluster 1 kept aggregating.
  EXPECT_NE(algo.cluster_model(1), fed.init_params());
  EXPECT_GT(counter_value("fault.empty_cluster_rounds"), 0u);
}

TEST(Resilience, IfcaCompletesWithEveryUpdateCrashed) {
  const MetricsOn metrics;
  auto cfg = cfg_for(26);
  cfg.fault = fl::FaultPlan::parse("crash=0.999999");
  fl::Federation fed(cfg);
  const auto algo = core::make_algorithm("IFCA", fed);
  const fl::Trace trace = algo->run();
  EXPECT_EQ(trace.records.size(), cfg.rounds);
  EXPECT_GE(trace.final_accuracy(), 0.0);
  EXPECT_LE(trace.final_accuracy(), 1.0);
  EXPECT_GT(counter_value("fault.empty_cluster_rounds"), 0u);
  EXPECT_GT(counter_value("fault.lost_updates"), 0u);
}

// ---- zero-fault plan ≡ engine disabled -------------------------------------

TEST(ZeroFaultPlan, MatchesDisabledEngineBitForBit) {
  const auto run_with = [&](bool engine_on) {
    auto cfg = cfg_for(31);
    cfg.fault.enabled = engine_on;  // all-zero probabilities either way
    fl::Federation fed(cfg);
    fl::FedAvg algo(fed);
    fl::Trace trace = algo.run();
    return std::make_pair(std::move(trace), algo.global_params());
  };
  const auto [trace_off, params_off] = run_with(false);
  const auto [trace_on, params_on] = run_with(true);
  expect_identical(trace_off, trace_on);
  expect_bit_identical(params_off, params_on);
}

// ---- thread-count invariance under a full fault plan -----------------------

class FaultThreadInvariance : public ::testing::Test {
 protected:
  void SetUp() override { prev_threads_ = util::global_pool().size() + 1; }
  void TearDown() override { util::reset_global_pool(prev_threads_); }

 private:
  std::size_t prev_threads_ = 1;
};

fl::ExperimentConfig faulted_cfg(std::uint64_t seed) {
  auto cfg = cfg_for(seed);
  cfg.fault = full_plan();
  return cfg;
}

TEST_F(FaultThreadInvariance, FedAvgScheduleAndResultsMatchAtFourThreads) {
  const auto run_with = [&](std::size_t threads) {
    util::reset_global_pool(threads);
    fl::Federation fed(faulted_cfg(42));
    fl::FedAvg algo(fed);
    fl::Trace trace = algo.run();
    return std::make_pair(std::move(trace), algo.global_params());
  };
  const auto [trace1, params1] = run_with(1);  // exact sequential path
  const auto [trace4, params4] = run_with(4);
  expect_identical(trace1, trace4);  // accuracy + comm bytes + clusters
  expect_bit_identical(params1, params4);
}

TEST_F(FaultThreadInvariance, FedClustResultsMatchAtFourThreads) {
  struct Result {
    fl::Trace trace;
    std::vector<std::size_t> assignment;
    std::vector<std::vector<float>> models;
  };
  const auto run_with = [&](std::size_t threads) {
    util::reset_global_pool(threads);
    fl::Federation fed(faulted_cfg(42));
    core::FedClust algo(fed);
    Result res;
    res.trace = algo.run();
    res.assignment = algo.assignment();
    for (std::size_t k = 0; k < algo.report().n_clusters; ++k) {
      res.models.push_back(algo.cluster_model(k));
    }
    return res;
  };
  const Result r1 = run_with(1);
  const Result r4 = run_with(4);
  expect_identical(r1.trace, r4.trace);
  EXPECT_EQ(r1.assignment, r4.assignment);
  ASSERT_EQ(r1.models.size(), r4.models.size());
  for (std::size_t k = 0; k < r1.models.size(); ++k) {
    expect_bit_identical(r1.models[k], r4.models[k]);
  }
}

TEST_F(FaultThreadInvariance, FaultScheduleAndCohortsIgnoreThePool) {
  const auto collect = [&](std::size_t threads) {
    util::reset_global_pool(threads);
    fl::Federation fed(faulted_cfg(7));
    std::vector<std::size_t> flat;
    for (std::size_t r = 0; r < 10; ++r) {
      for (const std::size_t c : fed.sample_round(r)) flat.push_back(c);
      for (std::size_t c = 0; c < fed.n_clients(); ++c) {
        const auto d = fed.faults().decide(c, r);
        flat.push_back(d.drop_pre_round);
        flat.push_back(d.crash_post_train);
        flat.push_back(d.straggler);
        flat.push_back(static_cast<std::size_t>(d.corrupt));
        flat.push_back(d.transient_failures);
      }
    }
    return flat;
  };
  EXPECT_EQ(collect(1), collect(4));
}

// ---- observability follow-through ------------------------------------------

TEST(FaultObservability, CountersAndHistogramSurfaceInSnapshot) {
  const MetricsOn metrics;
  auto cfg = cfg_for(33);
  cfg.fault = fl::FaultPlan::parse(
      "dropout=0.2,crash=0.2,straggle=0.4,delay=5,comm=0.3,corrupt=0.3,"
      "deadline=3");
  fl::Federation fed(cfg);
  fl::FedAvg algo(fed);
  algo.run();
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  // The injection mix is dense enough that each class fires in 3 rounds.
  EXPECT_GT(snap.counter_value("fault.injected.pre_round_dropout") +
                snap.counter_value("fault.injected.post_train_crash") +
                snap.counter_value("fault.injected.straggler") +
                snap.counter_value("fault.injected.corrupted_update"),
            0u);
  EXPECT_GT(snap.histogram_snapshot("fault.sim_round_time").count, 0u);
  // Disabled registry keeps the zero-perturbation contract: a second run
  // with metrics off must not fail (macro short-circuits).
  obs::MetricsRegistry::instance().set_enabled(false);
  fl::Federation fed2(cfg);
  fl::FedAvg algo2(fed2);
  EXPECT_NO_THROW(algo2.run());
}

}  // namespace
}  // namespace fedclust
