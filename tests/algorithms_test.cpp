// Behavioural tests for every FL method: each runs end-to-end on a small
// federation, produces a well-formed trace, and exhibits its signature
// communication pattern. Heavier learning-quality assertions live in
// fedclust_test.cpp.

#include <gtest/gtest.h>

#include <fstream>

#include "core/registry.h"
#include "fl/cfl.h"
#include "fl/fedavg.h"
#include "fl/ifca.h"
#include "fl/lg_fedavg.h"
#include "fl/local_only.h"
#include "fl/pacfl.h"

namespace fedclust::fl {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.data_spec = data::dataset_spec("fmnist");
  cfg.data_spec.hw = 8;
  cfg.fed.n_clients = 12;
  cfg.fed.train_per_client = 16;
  cfg.fed.test_per_client = 8;
  cfg.fed.partition = "skew";
  cfg.fed.skew_fraction = 0.2;
  cfg.fed.label_set_pool = 3;
  cfg.model.arch = "mlp";
  cfg.model.in_channels = 1;
  cfg.model.image_hw = 8;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 8;
  cfg.local.lr = 0.05f;
  cfg.local.momentum = 0.5f;
  cfg.rounds = 4;
  cfg.sample_fraction = 0.25;  // 3 clients per round
  cfg.eval_every = 1;
  cfg.seed = 11;
  return cfg;
}

void expect_wellformed(const Trace& t, std::size_t rounds) {
  EXPECT_EQ(t.records.size(), rounds);
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(t.records[i].round, i);
    EXPECT_GE(t.records[i].avg_local_test_acc, 0.0);
    EXPECT_LE(t.records[i].avg_local_test_acc, 1.0);
    if (i > 0) {
      // Cumulative comm is nondecreasing.
      EXPECT_GE(t.records[i].bytes_up, t.records[i - 1].bytes_up);
      EXPECT_GE(t.records[i].bytes_down, t.records[i - 1].bytes_down);
    }
  }
}

// ------------------------------------------------------------- registry

TEST(Registry, ListsAllTenMethods) {
  const auto methods = core::all_methods();
  EXPECT_EQ(methods.size(), 10u);
  EXPECT_EQ(methods.front(), "Local");
  EXPECT_EQ(methods.back(), "FedClust");
}

TEST(Registry, ConstructsEveryMethod) {
  Federation fed(small_config());
  for (const auto& name : core::all_methods()) {
    const auto algo = core::make_algorithm(name, fed);
    EXPECT_EQ(algo->name(), name);
  }
  EXPECT_THROW(core::make_algorithm("Zeno", fed), std::invalid_argument);
}

// Every method runs end-to-end and produces a well-formed trace.
class MethodSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(MethodSweep, RunsAndTraces) {
  Federation fed(small_config());
  const auto algo = core::make_algorithm(GetParam(), fed);
  const Trace t = algo->run();
  EXPECT_EQ(t.method, GetParam());
  EXPECT_EQ(t.dataset, "fmnist");
  expect_wellformed(t, 4);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodSweep,
                         ::testing::Values("Local", "FedAvg", "FedProx",
                                           "FedNova", "LG", "PerFedAvg",
                                           "CFL", "IFCA", "PACFL",
                                           "FedClust"));

// --------------------------------------------- per-method comm signatures

TEST(LocalTest, NoCommunication) {
  Federation fed(small_config());
  LocalOnly algo(fed);
  algo.run();
  EXPECT_EQ(fed.comm().bytes_total(), 0u);
}

TEST(FedAvgTest, CommMatchesSampledClients) {
  Federation fed(small_config());
  FedAvg algo(fed);
  algo.run();
  // 4 rounds * 3 sampled * model both ways.
  const std::uint64_t expected =
      4ull * 3 * fed.model_size() * 4;  // bytes each direction
  EXPECT_EQ(fed.comm().bytes_up(), expected);
  EXPECT_EQ(fed.comm().bytes_down(), expected);
}

TEST(FedProxTest, SameCommAsFedAvgDifferentModel) {
  ExperimentConfig cfg = small_config();
  Federation f1(cfg);
  Federation f2(cfg);
  FedAvg avg(f1);
  FedAvg prox(f2, /*prox_mu=*/0.1f);
  avg.run();
  prox.run();
  EXPECT_EQ(f1.comm().bytes_total(), f2.comm().bytes_total());
  // The proximal term must actually change the trajectory.
  EXPECT_NE(avg.global_params(), prox.global_params());
}

TEST(LgTest, CommIsOnlyGlobalLayers) {
  ExperimentConfig cfg = small_config();
  Federation fed(cfg);
  LgFedAvg algo(fed);
  algo.run();
  // Suffix = last lg_global_params tensors of the MLP.
  const auto& layout = fed.workspace().param_layout();
  std::size_t g = 0;
  for (std::size_t i = layout.size() - cfg.algo.lg_global_params;
       i < layout.size(); ++i) {
    g += layout[i].size;
  }
  const std::uint64_t expected = 4ull * 3 * g * 4;
  EXPECT_EQ(fed.comm().bytes_up(), expected);
  EXPECT_EQ(fed.comm().bytes_down(), expected);
  EXPECT_LT(g, fed.model_size());
}

TEST(IfcaTest, DownloadsAreKTimesUploads) {
  ExperimentConfig cfg = small_config();
  cfg.algo.ifca_k = 3;
  Federation fed(cfg);
  Ifca algo(fed);
  algo.run();
  EXPECT_EQ(fed.comm().bytes_down(), 3u * fed.comm().bytes_up());
}

TEST(PacflTest, OneShotUploadThenClusterRounds) {
  ExperimentConfig cfg = small_config();
  Federation fed(cfg);
  Pacfl algo(fed);
  const Trace t = algo.run();
  // Setup uploads subspaces for all 12 clients before any model moves, so
  // uploads exceed a pure per-round pattern; assignment covers all clients.
  EXPECT_EQ(algo.assignment().size(), 12u);
  EXPECT_GE(t.records.back().n_clusters, 1u);
  EXPECT_GT(fed.comm().bytes_up(), 0u);
}

TEST(CflTest, StartsAsOneCluster) {
  Federation fed(small_config());
  Cfl algo(fed);
  const Trace t = algo.run();
  EXPECT_GE(t.records.front().n_clusters, 1u);
  // Assignment always covers every client and references live clusters.
  for (const std::size_t a : algo.assignment()) {
    EXPECT_LT(a, t.records.back().n_clusters);
  }
}

// --------------------------------------------------------- trace helpers

TEST(TraceTest, TargetQueries) {
  Trace t;
  t.records = {
      {0, 0.30, 100, 200, 1},
      {1, 0.55, 300, 500, 1},
      {2, 0.70, 600, 900, 1},
  };
  EXPECT_DOUBLE_EQ(t.final_accuracy(), 0.70);
  EXPECT_EQ(t.rounds_to_accuracy(0.50), 2);   // 1-based
  EXPECT_EQ(t.rounds_to_accuracy(0.70), 3);
  EXPECT_EQ(t.rounds_to_accuracy(0.95), -1);
  EXPECT_DOUBLE_EQ(t.mb_to_accuracy(0.50), 800.0 * 8.0 / 1e6);
  EXPECT_DOUBLE_EQ(t.mb_to_accuracy(0.95), -1.0);
  EXPECT_DOUBLE_EQ(t.total_mb(), 1500.0 * 8.0 / 1e6);
  EXPECT_EQ(t.final_clusters(), 1u);
}

TEST(TraceTest, EmptyTrace) {
  Trace t;
  EXPECT_DOUBLE_EQ(t.final_accuracy(), 0.0);
  EXPECT_EQ(t.rounds_to_accuracy(0.1), -1);
  EXPECT_DOUBLE_EQ(t.total_mb(), 0.0);
}

TEST(TraceTest, SaveCsv) {
  Trace t;
  t.method = "FedAvg";
  t.dataset = "fmnist";
  t.records = {{0, 0.5, 100, 200, 1}};
  const std::string path = ::testing::TempDir() + "/trace_test.csv";
  t.save_csv(path);
  std::ifstream is(path);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "method,dataset,round,acc,mb_up,mb_down,clusters");
  std::string row;
  std::getline(is, row);
  EXPECT_NE(row.find("FedAvg,fmnist,0"), std::string::npos);
}

}  // namespace
}  // namespace fedclust::fl
