#pragma once

// FedClust — the paper's contribution (Algorithm 1 + Algorithm 2).
//
// Round 0 (setup): the server broadcasts θ0 to *all* clients; each performs
// a few local epochs and uploads only the final-layer (classifier) weights.
// The server builds the m x m L2 proximity matrix over those partial
// weights (Eq. 3) and runs one-shot agglomerative hierarchical clustering
// cut at threshold λ. Every later round is per-cluster FedAvg over a
// sampled client subset.
//
// λ is the generalization/personalization dial (paper Fig. 4): a large λ
// collapses everything into one cluster (≈ FedAvg), a tiny λ makes every
// client its own cluster (≈ Local).
//
// Newcomers (Algorithm 2): a client joining after federation trains θ0
// briefly, uploads its partial weights, and is assigned to the cluster
// whose stored partial-weight centroid is nearest (Eq. 4).

#include "fl/algorithm.h"
#include "tensor/tensor.h"

namespace fedclust::core {

// What the one-shot clustering produced; exposed for benches and tests.
struct ClusteringReport {
  tensor::Tensor proximity;             // (m, m) L2 distances, Eq. 3
  std::vector<std::size_t> assignment;  // client -> cluster
  std::size_t n_clusters = 0;
  // λ actually used: the configured value, or the largest-gap choice when
  // algo.fedclust_lambda < 0 (auto mode — our implementation of the
  // data-driven selection the paper leaves as future work).
  float effective_lambda = 0.0f;
};

class FedClust : public fl::FlAlgorithm {
 public:
  explicit FedClust(fl::Federation& fed);

  std::string name() const override { return "FedClust"; }

  const ClusteringReport& report() const { return report_; }
  const std::vector<std::size_t>& assignment() const {
    return report_.assignment;
  }
  // Landmark clients the sketch clustered on (sorted ascending); empty in
  // exact mode. In landmark mode report().proximity is (L, L) over these
  // ids instead of the full (m, m) matrix.
  const std::vector<std::size_t>& landmark_ids() const {
    return landmark_ids_;
  }
  const std::vector<float>& cluster_model(std::size_t k) const {
    return cluster_models_.at(k);
  }

  // Algorithm 2: returns the cluster the newcomer joins. The newcomer
  // receives θ0, trains algo.fedclust_init_epochs epochs, and uploads its
  // classifier weights; communication is accounted on the federation's
  // tracker. Must be called after run() (or at least after setup).
  std::size_t assign_newcomer(const fl::SimClient& newcomer, util::Rng rng);

  void save_state(util::BinaryWriter& w) const override;
  void load_state(util::BinaryReader& r) override;

 protected:
  void setup() override;
  void round(std::size_t r) override;
  double evaluate_all() override;
  std::size_t current_clusters() const override {
    return cluster_models_.size();
  }

 private:
  // Trains from `start` (the wire-decoded broadcast of θ0) on the given
  // client data for the init epochs through the given workspace and returns
  // the classifier slice of the result.
  std::vector<float> partial_weights_after_warmup(
      nn::Model& ws, const std::vector<float>& start,
      const fl::SimClient& client, util::Rng rng);

  ClusteringReport report_;
  std::vector<std::size_t> landmark_ids_;  // empty = exact clustering
  std::vector<std::vector<float>> cluster_models_;
  // Per-cluster centroid of the round-0 partial uploads — the "copy of each
  // cluster's partial model weights" Algorithm 2 matches newcomers against.
  std::vector<std::vector<float>> cluster_partials_;
};

}  // namespace fedclust::core
