#include "core/fedclust.h"

#include <limits>
#include <stdexcept>

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "fl/cluster_common.h"
#include "fl/landmark.h"
#include "fl/parallel_round.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace fedclust::core {

FedClust::FedClust(fl::Federation& fed) : FlAlgorithm(fed) {}

std::vector<float> FedClust::partial_weights_after_warmup(
    nn::Model& ws, const std::vector<float>& start,
    const fl::SimClient& client, util::Rng rng) {
  ws.set_flat_params(start);
  fl::LocalTrainOptions warmup = fed_.cfg().local;
  warmup.epochs = std::max<std::size_t>(1, fed_.cfg().algo.fedclust_init_epochs);
  if (fed_.cfg().algo.fedclust_init_lr > 0.0f) {
    warmup.lr = fed_.cfg().algo.fedclust_init_lr;
  }
  client.train(ws, warmup, rng);
  return ws.classifier_params();
}

void FedClust::setup() {
  const std::size_t n = fed_.n_clients();
  const std::size_t p = fed_.model_size();
  const std::size_t L = fl::effective_landmarks(n, fed_.cfg().landmarks);

  // Round 0: broadcast θ0 to every available client; each sends back only
  // the updated final-layer weights. The warmups are the expensive part of
  // setup (every client trains), so they run client-parallel.
  // θ0 is serialized once and every client warms up from the wire-decoded
  // broadcast; partial weights travel back in checksummed warmup envelopes.
  // Landmark mode reuses the same 0xFEDC0000 out-of-band round key, so a
  // given client's warmup draw — and its uploaded partial weights — are
  // identical in exact and landmark modes.
  const std::vector<float> rx_init = fed_.through_wire(
      fl::wire::MessageKind::kModelPull, fed_.init_params(),
      fl::wire::kServerSender, 0xFEDC0000);
  const auto warmup_batch = [&](const std::vector<std::size_t>& ids) {
    std::vector<std::vector<float>> out(ids.size());
    fl::ParallelRoundRunner runner(fed_);
    runner.for_each_index(ids.size(), [&](std::size_t i, nn::Model& ws) {
      const std::size_t c = ids[i];
      OBS_SPAN_ARG("client.warmup", c);
      fed_.bill_download(p);
      out[i] = partial_weights_after_warmup(
          ws, rx_init, *fed_.client(c), fed_.train_rng(c, 0xFEDC0000));
      out[i] = fed_.upload_payload(fl::wire::MessageKind::kWarmupWeights,
                                   out[i], c, 0xFEDC0000);
    });
    return out;
  };

  // Pairwise proximity (Eq. 3; cosine available for the metric ablation) —
  // the per-pair math behind clustering::{l2,cosine}_distance_matrix.
  const std::string& metric = fed_.cfg().algo.fedclust_distance;
  std::function<float(const std::vector<float>&, const std::vector<float>&)>
      pair_dist;
  if (metric == "l2") {
    pair_dist = [](const std::vector<float>& a, const std::vector<float>& b) {
      return tensor::l2_distance(a, b);
    };
  } else if (metric == "cosine") {
    pair_dist = [](const std::vector<float>& a, const std::vector<float>& b) {
      return 1.0f - tensor::cosine_similarity(a, b);
    };
  } else {
    throw std::invalid_argument("FedClust: unknown distance " + metric);
  }

  if (L == 0) {
    // Exact path: every client's partials resident, full O(N²) proximity.
    std::vector<std::vector<float>> partials;
    {
      OBS_SPAN("fedclust.warmup");
      std::vector<std::size_t> everyone(n);
      for (std::size_t c = 0; c < n; ++c) everyone[c] = c;
      partials = warmup_batch(everyone);
    }

    // Proximity matrix M and one-shot HC(M, λ).
    OBS_SPAN("fedclust.cluster");
    if (metric == "l2") {
      report_.proximity = clustering::l2_distance_matrix(partials);
    } else {
      report_.proximity = clustering::cosine_distance_matrix(partials);
    }
    const auto dendro = clustering::agglomerative(
        report_.proximity,
        clustering::linkage_from_string(fed_.cfg().algo.fedclust_linkage));
    if (fed_.cfg().algo.fedclust_k > 0) {
      // Fixed cluster count requested (sweeps / fixed-k comparisons).
      report_.assignment =
          clustering::cut_to_k(dendro, fed_.cfg().algo.fedclust_k);
      report_.effective_lambda = -1.0f;
    } else {
      float lambda = fed_.cfg().algo.fedclust_lambda;
      if (lambda < 0.0f) lambda = clustering::gap_threshold(dendro);
      report_.effective_lambda = lambda;
      report_.assignment = clustering::cut_by_threshold(dendro, lambda);
    }
    report_.n_clusters = clustering::num_clusters(report_.assignment);
    landmark_ids_.clear();

    // Store per-cluster partial-weight centroids for newcomer matching.
    cluster_partials_.assign(
        report_.n_clusters,
        std::vector<float>(partials.front().size(), 0.0f));
    std::vector<std::size_t> counts(report_.n_clusters, 0);
    for (std::size_t c = 0; c < n; ++c) {
      const std::size_t k = report_.assignment[c];
      tensor::axpy(1.0f, partials[c], cluster_partials_[k]);
      ++counts[k];
    }
    for (std::size_t k = 0; k < report_.n_clusters; ++k) {
      tensor::scale_(cluster_partials_[k],
                     1.0f / static_cast<float>(counts[k]));
    }
  } else {
    // Landmark sketch (fl/landmark.h): dendrogram on L landmarks only,
    // everyone else streamed through nearest-landmark assignment per
    // cache-sized batch — non-landmark partials are never all resident.
    landmark_ids_ = fl::sample_landmarks(fed_.cfg().seed, n, L);
    const std::size_t batch = fed_.cfg().client_cache > 0
                                  ? fed_.cfg().client_cache
                                  : 256;  // the client store's default
    fl::LandmarkCutPolicy cut;
    cut.linkage =
        clustering::linkage_from_string(fed_.cfg().algo.fedclust_linkage);
    cut.k = fed_.cfg().algo.fedclust_k;
    cut.threshold = fed_.cfg().algo.fedclust_lambda;
    fl::LandmarkCluster<std::vector<float>> sketch(
        n, landmark_ids_, batch, warmup_batch, pair_dist);
    fl::LandmarkResult res = sketch.run(cut);
    report_.proximity = std::move(res.proximity);
    report_.assignment = std::move(res.assignment);
    report_.n_clusters = res.n_clusters;
    report_.effective_lambda = res.effective_lambda;

    // Newcomer centroids from the resident landmark partials only — the
    // landmark members are the cluster's defining sample.
    const auto& lf = sketch.landmark_features();
    cluster_partials_.assign(report_.n_clusters,
                             std::vector<float>(lf.front().size(), 0.0f));
    std::vector<std::size_t> counts(report_.n_clusters, 0);
    for (std::size_t i = 0; i < landmark_ids_.size(); ++i) {
      const std::size_t k = report_.assignment[landmark_ids_[i]];
      tensor::axpy(1.0f, lf[i], cluster_partials_[k]);
      ++counts[k];
    }
    for (std::size_t k = 0; k < report_.n_clusters; ++k) {
      tensor::scale_(cluster_partials_[k],
                     1.0f / static_cast<float>(counts[k]));
    }
  }

  // Every cluster model starts from θ0 (Algorithm 1, line 7).
  cluster_models_.assign(report_.n_clusters, fed_.init_params());

  // Journal the one-shot verdict for the whole population (round 0) so
  // run reports see the full partition, not just sampled cohorts — the
  // input to fedclust_report's clustering-agreement section.
  if (obs::EventJournal::enabled()) {
    for (std::size_t c = 0; c < n; ++c) {
      OBS_JOURNAL(0, c, kCluster, report_.assignment[c]);
    }
  }

  FC_LOG_DEBUG << "FedClust one-shot clustering: " << report_.n_clusters
               << " clusters at lambda=" << fed_.cfg().algo.fedclust_lambda
               << (L > 0 ? " (landmark sketch)" : "");
}

void FedClust::round(std::size_t r) {
  fl::cluster_fedavg_round(fed_, r, report_.assignment, cluster_models_);
}

double FedClust::evaluate_all() {
  return fl::cluster_average_accuracy(fed_, report_.assignment,
                                      cluster_models_);
}

std::size_t FedClust::assign_newcomer(const fl::SimClient& newcomer,
                                      util::Rng rng) {
  if (cluster_partials_.empty()) {
    throw std::logic_error("FedClust::assign_newcomer before setup");
  }
  // The newcomer receives θ0, trains briefly, and uploads partial weights —
  // both legs through the wire.
  const std::vector<float> rx_init =
      fed_.pull_model(fed_.init_params(), 0xFEDC0001, fed_.model_size());
  const auto partial = fed_.upload_payload(
      fl::wire::MessageKind::kWarmupWeights,
      partial_weights_after_warmup(fed_.workspace(), rx_init, newcomer, rng),
      fed_.n_clients(), 0xFEDC0001);

  // Eq. 4: nearest stored cluster centroid in L2.
  float best = std::numeric_limits<float>::infinity();
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < cluster_partials_.size(); ++k) {
    const float d = tensor::l2_distance(partial, cluster_partials_[k]);
    if (d < best) {
      best = d;
      best_k = k;
    }
  }
  // The verdict travels back as a cluster-assignment envelope. Assignment
  // messages were modeled byte-free before the wire layer, so the exchange
  // is serialized and CRC-verified but not billed.
  const std::vector<float> verdict = fed_.through_wire(
      fl::wire::MessageKind::kClusterAssign,
      std::vector<float>{static_cast<float>(best_k)}, fl::wire::kServerSender,
      0xFEDC0001);
  return static_cast<std::size_t>(verdict.front());
}

void FedClust::save_state(util::BinaryWriter& w) const {
  fl::write_tensor(w, report_.proximity);
  fl::write_index_vec(w, report_.assignment);
  w.write_u64(report_.n_clusters);
  w.write_f32(report_.effective_lambda);
  fl::write_nested_f32(w, cluster_models_);
  fl::write_nested_f32(w, cluster_partials_);
  fl::write_index_vec(w, landmark_ids_);
}

void FedClust::load_state(util::BinaryReader& r) {
  report_.proximity = fl::read_tensor(r);
  report_.assignment = fl::read_index_vec(r);
  report_.n_clusters = static_cast<std::size_t>(r.read_u64());
  report_.effective_lambda = r.read_f32();
  cluster_models_ = fl::read_nested_f32(r);
  cluster_partials_ = fl::read_nested_f32(r);
  landmark_ids_ = fl::read_index_vec(r);
  fl::validate_landmark_ids(landmark_ids_, report_.assignment.size(),
                            "FedClust snapshot");
}

}  // namespace fedclust::core
