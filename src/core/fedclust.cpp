#include "core/fedclust.h"

#include <limits>
#include <stdexcept>

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "fl/cluster_common.h"
#include "fl/parallel_round.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace fedclust::core {

FedClust::FedClust(fl::Federation& fed) : FlAlgorithm(fed) {}

std::vector<float> FedClust::partial_weights_after_warmup(
    nn::Model& ws, const std::vector<float>& start,
    const fl::SimClient& client, util::Rng rng) {
  ws.set_flat_params(start);
  fl::LocalTrainOptions warmup = fed_.cfg().local;
  warmup.epochs = std::max<std::size_t>(1, fed_.cfg().algo.fedclust_init_epochs);
  if (fed_.cfg().algo.fedclust_init_lr > 0.0f) {
    warmup.lr = fed_.cfg().algo.fedclust_init_lr;
  }
  client.train(ws, warmup, rng);
  return ws.classifier_params();
}

void FedClust::setup() {
  const std::size_t n = fed_.n_clients();
  const std::size_t p = fed_.model_size();

  // Round 0: broadcast θ0 to every available client; each sends back only
  // the updated final-layer weights. The warmups are the expensive part of
  // setup (every client trains), so they run client-parallel.
  // θ0 is serialized once and every client warms up from the wire-decoded
  // broadcast; partial weights travel back in checksummed warmup envelopes.
  const std::vector<float> rx_init = fed_.through_wire(
      fl::wire::MessageKind::kModelPull, fed_.init_params(),
      fl::wire::kServerSender, 0xFEDC0000);
  std::vector<std::vector<float>> partials(n);
  {
    OBS_SPAN("fedclust.warmup");
    fl::ParallelRoundRunner runner(fed_);
    runner.for_each_index(n, [&](std::size_t c, nn::Model& ws) {
      OBS_SPAN_ARG("client.warmup", c);
      fed_.bill_download(p);
      partials[c] = partial_weights_after_warmup(
          ws, rx_init, *fed_.client(c), fed_.train_rng(c, 0xFEDC0000));
      partials[c] = fed_.upload_payload(fl::wire::MessageKind::kWarmupWeights,
                                        partials[c], c, 0xFEDC0000);
    });
  }

  // Proximity matrix M (Eq. 3; cosine available for the metric ablation)
  // and one-shot HC(M, λ).
  OBS_SPAN("fedclust.cluster");
  const std::string& metric = fed_.cfg().algo.fedclust_distance;
  if (metric == "l2") {
    report_.proximity = clustering::l2_distance_matrix(partials);
  } else if (metric == "cosine") {
    report_.proximity = clustering::cosine_distance_matrix(partials);
  } else {
    throw std::invalid_argument("FedClust: unknown distance " + metric);
  }
  const auto dendro = clustering::agglomerative(
      report_.proximity,
      clustering::linkage_from_string(fed_.cfg().algo.fedclust_linkage));
  if (fed_.cfg().algo.fedclust_k > 0) {
    // Fixed cluster count requested (sweeps / fixed-k comparisons).
    report_.assignment =
        clustering::cut_to_k(dendro, fed_.cfg().algo.fedclust_k);
    report_.effective_lambda = -1.0f;
  } else {
    float lambda = fed_.cfg().algo.fedclust_lambda;
    if (lambda < 0.0f) lambda = clustering::gap_threshold(dendro);
    report_.effective_lambda = lambda;
    report_.assignment = clustering::cut_by_threshold(dendro, lambda);
  }
  report_.n_clusters = clustering::num_clusters(report_.assignment);

  // Every cluster model starts from θ0 (Algorithm 1, line 7).
  cluster_models_.assign(report_.n_clusters, fed_.init_params());

  // Store per-cluster partial-weight centroids for newcomer matching.
  cluster_partials_.assign(report_.n_clusters,
                           std::vector<float>(partials.front().size(), 0.0f));
  std::vector<std::size_t> counts(report_.n_clusters, 0);
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t k = report_.assignment[c];
    tensor::axpy(1.0f, partials[c], cluster_partials_[k]);
    ++counts[k];
  }
  for (std::size_t k = 0; k < report_.n_clusters; ++k) {
    tensor::scale_(cluster_partials_[k],
                   1.0f / static_cast<float>(counts[k]));
  }

  FC_LOG_DEBUG << "FedClust one-shot clustering: " << report_.n_clusters
               << " clusters at lambda=" << fed_.cfg().algo.fedclust_lambda;
}

void FedClust::round(std::size_t r) {
  fl::cluster_fedavg_round(fed_, r, report_.assignment, cluster_models_);
}

double FedClust::evaluate_all() {
  return fl::cluster_average_accuracy(fed_, report_.assignment,
                                      cluster_models_);
}

std::size_t FedClust::assign_newcomer(const fl::SimClient& newcomer,
                                      util::Rng rng) {
  if (cluster_partials_.empty()) {
    throw std::logic_error("FedClust::assign_newcomer before setup");
  }
  // The newcomer receives θ0, trains briefly, and uploads partial weights —
  // both legs through the wire.
  const std::vector<float> rx_init =
      fed_.pull_model(fed_.init_params(), 0xFEDC0001, fed_.model_size());
  const auto partial = fed_.upload_payload(
      fl::wire::MessageKind::kWarmupWeights,
      partial_weights_after_warmup(fed_.workspace(), rx_init, newcomer, rng),
      fed_.n_clients(), 0xFEDC0001);

  // Eq. 4: nearest stored cluster centroid in L2.
  float best = std::numeric_limits<float>::infinity();
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < cluster_partials_.size(); ++k) {
    const float d = tensor::l2_distance(partial, cluster_partials_[k]);
    if (d < best) {
      best = d;
      best_k = k;
    }
  }
  // The verdict travels back as a cluster-assignment envelope. Assignment
  // messages were modeled byte-free before the wire layer, so the exchange
  // is serialized and CRC-verified but not billed.
  const std::vector<float> verdict = fed_.through_wire(
      fl::wire::MessageKind::kClusterAssign,
      std::vector<float>{static_cast<float>(best_k)}, fl::wire::kServerSender,
      0xFEDC0001);
  return static_cast<std::size_t>(verdict.front());
}

void FedClust::save_state(util::BinaryWriter& w) const {
  fl::write_tensor(w, report_.proximity);
  fl::write_index_vec(w, report_.assignment);
  w.write_u64(report_.n_clusters);
  w.write_f32(report_.effective_lambda);
  fl::write_nested_f32(w, cluster_models_);
  fl::write_nested_f32(w, cluster_partials_);
}

void FedClust::load_state(util::BinaryReader& r) {
  report_.proximity = fl::read_tensor(r);
  report_.assignment = fl::read_index_vec(r);
  report_.n_clusters = static_cast<std::size_t>(r.read_u64());
  report_.effective_lambda = r.read_f32();
  cluster_models_ = fl::read_nested_f32(r);
  cluster_partials_ = fl::read_nested_f32(r);
}

}  // namespace fedclust::core
