#pragma once

// Name-based construction of every FL method in the comparison — the entry
// point the benches and examples use to run the paper's method grid.

#include <memory>
#include <string>
#include <vector>

#include "fl/algorithm.h"

namespace fedclust::core {

// Methods in the paper's table order.
std::vector<std::string> all_methods();

// Extension baselines implemented beyond the paper's comparison grid
// (all discussed in its related-work section): SCAFFOLD, FedDyn, Ditto,
// and FLIS (the proxy-data clustering approach the paper criticizes).
std::vector<std::string> extra_methods();

// Throws std::invalid_argument for unknown names. The returned algorithm
// borrows `fed` and must not outlive it.
std::unique_ptr<fl::FlAlgorithm> make_algorithm(const std::string& name,
                                                fl::Federation& fed);

}  // namespace fedclust::core
