#include "core/registry.h"

#include <stdexcept>

#include "core/fedclust.h"
#include "fl/cfl.h"
#include "fl/ditto.h"
#include "fl/fedavg.h"
#include "fl/flis.h"
#include "fl/feddyn.h"
#include "fl/fednova.h"
#include "fl/fedopt.h"
#include "fl/ifca.h"
#include "fl/lg_fedavg.h"
#include "fl/local_only.h"
#include "fl/pacfl.h"
#include "fl/perfedavg.h"
#include "fl/scaffold.h"

namespace fedclust::core {

std::vector<std::string> all_methods() {
  return {"Local",     "FedAvg", "FedProx", "FedNova", "LG",
          "PerFedAvg", "CFL",    "IFCA",    "PACFL",   "FedClust"};
}

std::vector<std::string> extra_methods() {
  return {"SCAFFOLD", "FedDyn", "Ditto", "FLIS", "FedAvgM", "FedAdam"};
}

std::unique_ptr<fl::FlAlgorithm> make_algorithm(const std::string& name,
                                                fl::Federation& fed) {
  if (name == "Local") return std::make_unique<fl::LocalOnly>(fed);
  if (name == "FedAvg") return std::make_unique<fl::FedAvg>(fed);
  if (name == "FedProx") {
    return std::make_unique<fl::FedAvg>(fed, fed.cfg().algo.prox_mu);
  }
  if (name == "FedNova") return std::make_unique<fl::FedNova>(fed);
  if (name == "LG") return std::make_unique<fl::LgFedAvg>(fed);
  if (name == "PerFedAvg") return std::make_unique<fl::PerFedAvg>(fed);
  if (name == "CFL") return std::make_unique<fl::Cfl>(fed);
  if (name == "IFCA") return std::make_unique<fl::Ifca>(fed);
  if (name == "PACFL") return std::make_unique<fl::Pacfl>(fed);
  if (name == "FedClust") return std::make_unique<FedClust>(fed);
  if (name == "SCAFFOLD") return std::make_unique<fl::Scaffold>(fed);
  if (name == "FedDyn") return std::make_unique<fl::FedDyn>(fed);
  if (name == "Ditto") return std::make_unique<fl::Ditto>(fed);
  if (name == "FLIS") return std::make_unique<fl::Flis>(fed);
  if (name == "FedAvgM") {
    return std::make_unique<fl::FedOpt>(fed, fl::FedOptOptions{});
  }
  if (name == "FedAdam") {
    fl::FedOptOptions opts;
    opts.server_opt = "adam";
    opts.server_lr = 0.01f;
    return std::make_unique<fl::FedOpt>(fed, opts);
  }
  throw std::invalid_argument("make_algorithm: unknown method " + name);
}

}  // namespace fedclust::core
