#pragma once

// Model checkpointing: serializes the named parameter layout plus the flat
// parameter vector. Loading validates that the checkpoint's layout matches
// the target model (names and sizes), so architecture mismatches fail
// loudly instead of silently loading garbage.

#include <iosfwd>
#include <string>

#include "nn/model.h"

namespace fedclust::nn {

void save_model(const Model& model, std::ostream& os);
void load_model(Model& model, std::istream& is);

void save_model_file(const Model& model, const std::string& path);
void load_model_file(Model& model, const std::string& path);

}  // namespace fedclust::nn
