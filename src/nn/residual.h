#pragma once

// Identity residual block: y = relu(body(x) + x).
//
// The body must preserve the input shape (the ResNet-9 recipe only uses
// identity-skip blocks; downsampling happens in the conv+pool stem between
// blocks).

#include <memory>

#include "nn/module.h"

namespace fedclust::nn {

class ResidualBlock : public Module {
 public:
  explicit ResidualBlock(std::unique_ptr<Module> body,
                         std::string name = "res");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return body_->parameters(); }
  std::string name() const override { return name_; }

 private:
  std::unique_ptr<Module> body_;
  std::string name_;
  // Mask of the final ReLU.
  std::vector<bool> relu_mask_;
  tensor::Shape cached_shape_;
};

}  // namespace fedclust::nn
