#pragma once

// Weight initialization (Kaiming/He) and layer factory helpers that bundle
// construction + initialization, keeping the model zoo terse.

#include <memory>
#include <string>

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "util/rng.h"

namespace fedclust::nn {

// He-uniform: U(-b, b) with b = sqrt(6 / fan_in).
void kaiming_uniform_(Tensor& w, std::size_t fan_in, util::Rng& rng);

// PyTorch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in)).
void bias_uniform_(Tensor& b, std::size_t fan_in, util::Rng& rng);

std::unique_ptr<Linear> make_linear(std::size_t in, std::size_t out,
                                    util::Rng& rng, std::string name);

std::unique_ptr<Conv2d> make_conv(std::size_t in_c, std::size_t out_c,
                                  std::size_t kernel, std::size_t stride,
                                  std::size_t pad, util::Rng& rng,
                                  std::string name);

}  // namespace fedclust::nn
