#include "nn/checkpoint.h"

#include <fstream>
#include <stdexcept>

#include "util/serialization.h"

namespace fedclust::nn {

namespace {
constexpr std::uint32_t kMagic = 0xFEDC1057;
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_model(const Model& model, std::ostream& os) {
  util::BinaryWriter w(os);
  w.write_u32(kMagic);
  w.write_u32(kVersion);
  const auto& layout = model.param_layout();
  w.write_u64(layout.size());
  for (const auto& p : layout) {
    w.write_string(p.name);
    w.write_u64(p.size);
  }
  w.write_f32_vec(model.flat_params());
}

void load_model(Model& model, std::istream& is) {
  util::BinaryReader r(is);
  if (r.read_u32() != kMagic) {
    throw std::runtime_error("load_model: not a fedclust checkpoint");
  }
  if (r.read_u32() != kVersion) {
    throw std::runtime_error("load_model: unsupported checkpoint version");
  }
  const auto& layout = model.param_layout();
  const std::uint64_t n = r.read_u64();
  if (n != layout.size()) {
    throw std::runtime_error("load_model: parameter count mismatch");
  }
  for (const auto& p : layout) {
    const std::string name = r.read_string();
    const std::uint64_t size = r.read_u64();
    if (name != p.name || size != p.size) {
      throw std::runtime_error("load_model: layout mismatch at " + p.name +
                               " (checkpoint has " + name + ")");
    }
  }
  const auto flat = r.read_f32_vec();
  if (flat.size() != model.num_params()) {
    throw std::runtime_error("load_model: flat parameter size mismatch");
  }
  model.set_flat_params(flat);
}

void save_model_file(const Model& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_model_file: cannot open " + path);
  save_model(model, os);
}

void load_model_file(Model& model, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_model_file: cannot open " + path);
  load_model(model, is);
}

}  // namespace fedclust::nn
