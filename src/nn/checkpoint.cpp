#include "nn/checkpoint.h"

#include <fstream>
#include <stdexcept>

#include "util/serialization.h"

namespace fedclust::nn {

namespace {
constexpr std::uint32_t kMagic = 0xFEDC1057;
// v2 (wire-layer PR): every field goes through the explicit little-endian
// primitives shared with fl::wire, and the parameter payload is stored as a
// CRC32C-checksummed LE f32 run — the same integrity framing wire envelopes
// use, so model files and wire payloads share one format. On little-endian
// hosts the non-checksum fields are byte-identical to v1.
constexpr std::uint32_t kVersion = 2;
}  // namespace

void save_model(const Model& model, std::ostream& os) {
  util::BinaryWriter w(os);
  w.write_u32(kMagic);
  w.write_u32(kVersion);
  const auto& layout = model.param_layout();
  w.write_u64(layout.size());
  for (const auto& p : layout) {
    w.write_string(p.name);
    w.write_u64(p.size);
  }
  const auto& flat = model.flat_params();
  std::vector<std::uint8_t> payload;
  payload.reserve(flat.size() * sizeof(float));
  for (const float v : flat) util::put_f32_le(payload, v);
  w.write_u64(flat.size());
  w.write_u32(util::crc32c(payload.data(), payload.size()));
  w.write_bytes(payload.data(), payload.size());
}

void load_model(Model& model, std::istream& is) {
  util::BinaryReader r(is);
  if (r.read_u32() != kMagic) {
    throw std::runtime_error("load_model: not a fedclust checkpoint");
  }
  if (r.read_u32() != kVersion) {
    throw std::runtime_error(
        "load_model: unsupported checkpoint version (expected v2; re-save "
        "with this build)");
  }
  const auto& layout = model.param_layout();
  const std::uint64_t n = r.read_u64();
  if (n != layout.size()) {
    throw std::runtime_error("load_model: parameter count mismatch");
  }
  for (const auto& p : layout) {
    const std::string name = r.read_string();
    const std::uint64_t size = r.read_u64();
    if (name != p.name || size != p.size) {
      throw std::runtime_error("load_model: layout mismatch at " + p.name +
                               " (checkpoint has " + name + ")");
    }
  }
  const std::uint64_t count = r.read_u64();
  if (count != model.num_params()) {
    throw std::runtime_error("load_model: flat parameter size mismatch");
  }
  const std::uint32_t want_crc = r.read_u32();
  const std::vector<std::uint8_t> payload =
      r.read_bytes(count * sizeof(float));
  if (util::crc32c(payload.data(), payload.size()) != want_crc) {
    // Corruption is caught before a single value reaches the model — the
    // same CRC-before-decode rule the wire layer enforces.
    throw std::runtime_error("load_model: checksum mismatch (corrupt file)");
  }
  std::vector<float> flat(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    flat[i] = util::get_f32_le(payload.data() + i * sizeof(float));
  }
  model.set_flat_params(flat);
}

void save_model_file(const Model& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_model_file: cannot open " + path);
  save_model(model, os);
}

void load_model_file(Model& model, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_model_file: cannot open " + path);
  load_model(model, is);
}

}  // namespace fedclust::nn
