#include "nn/dropout.h"

#include <stdexcept>

namespace fedclust::nn {

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {
  if (p < 0.0f || p >= 1.0f) {
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || p_ == 0.0f) return x;
  const float keep_scale = 1.0f / (1.0f - p_);
  mask_.resize(x.size());
  cached_shape_ = x.shape();
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (rng_.uniform() < p_) {
      mask_[i] = 0.0f;
      y[i] = 0.0f;
    } else {
      mask_[i] = keep_scale;
      y[i] *= keep_scale;
    }
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (p_ == 0.0f) return grad_out;
  if (mask_.size() != grad_out.size() || grad_out.shape() != cached_shape_) {
    throw std::logic_error("dropout: backward without matching forward");
  }
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= mask_[i];
  return g;
}

}  // namespace fedclust::nn
