#pragma once

// Fully connected layer: y = x W^T + b with x of shape (N, in).

#include "nn/module.h"

namespace fedclust::nn {

class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features,
         std::string name = "fc");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return name_; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  std::string name_;
  Parameter weight_;  // (out, in)
  Parameter bias_;    // (out)
  Tensor cached_input_;
};

}  // namespace fedclust::nn
