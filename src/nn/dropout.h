#pragma once

// Inverted dropout: training zeroes activations with probability p and
// scales survivors by 1/(1-p); evaluation is the identity. The layer owns
// its RNG stream (seeded at construction) so training remains deterministic
// for a fixed model seed.

#include "nn/module.h"
#include "util/rng.h"

namespace fedclust::nn {

class Dropout : public Module {
 public:
  explicit Dropout(float p, std::uint64_t seed = 0);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "dropout"; }

 private:
  float p_;
  util::Rng rng_;
  std::vector<float> mask_;  // 0 or 1/(1-p) per element
  tensor::Shape cached_shape_;
};

}  // namespace fedclust::nn
