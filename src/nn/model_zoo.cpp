#include "nn/model_zoo.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/init.h"
#include "nn/norm.h"
#include "nn/pooling.h"
#include "nn/residual.h"
#include "util/rng.h"

namespace fedclust::nn {

namespace {

// Largest group count <= 8 that divides the channel count; GroupNorm needs
// channels % groups == 0.
std::size_t gn_groups(std::size_t channels) {
  for (std::size_t g = 8; g > 1; --g) {
    if (channels % g == 0) return g;
  }
  return 1;
}

}  // namespace

Model lenet5(std::size_t in_channels, std::size_t image_hw,
             std::size_t num_classes, std::uint64_t seed) {
  util::Rng rng(seed);
  auto net = std::make_unique<Sequential>();
  // conv1 pads by 2 so the 5x5 kernel preserves spatial size; this keeps
  // the classic topology valid for small (16x16) simulator images as well
  // as the original 32x32.
  net->add(make_conv(in_channels, 6, 5, 1, 2, rng, "conv1"));
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  std::size_t hw = image_hw / 2;
  net->add(make_conv(6, 16, 5, 1, 0, rng, "conv2"));
  hw = hw - 4;
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  hw /= 2;
  net->emplace<Flatten>();
  const std::size_t feat = 16 * hw * hw;
  net->add(make_linear(feat, 120, rng, "fc1"));
  net->emplace<ReLU>();
  net->add(make_linear(120, 84, rng, "fc2"));
  net->emplace<ReLU>();
  net->add(make_linear(84, num_classes, rng, "classifier"));
  return Model(std::move(net));
}

Model resnet9(std::size_t in_channels, std::size_t image_hw,
              std::size_t num_classes, std::size_t width,
              std::uint64_t seed) {
  if (image_hw % 4 != 0) {
    throw std::invalid_argument("resnet9: image_hw must be divisible by 4");
  }
  util::Rng rng(seed);
  const std::size_t w1 = width;
  const std::size_t w2 = 2 * width;
  const std::size_t w4 = 4 * width;

  const auto res_body = [&](std::size_t ch, const std::string& prefix) {
    auto body = std::make_unique<Sequential>();
    body->add(make_conv(ch, ch, 3, 1, 1, rng, prefix + "a"));
    body->emplace<GroupNorm>(gn_groups(ch), ch, 1e-5f, prefix + "a.gn");
    body->emplace<ReLU>();
    body->add(make_conv(ch, ch, 3, 1, 1, rng, prefix + "b"));
    body->emplace<GroupNorm>(gn_groups(ch), ch, 1e-5f, prefix + "b.gn");
    return body;
  };

  auto net = std::make_unique<Sequential>();
  net->add(make_conv(in_channels, w1, 3, 1, 1, rng, "conv1"));
  net->emplace<GroupNorm>(gn_groups(w1), w1, 1e-5f, "conv1.gn");
  net->emplace<ReLU>();
  net->add(make_conv(w1, w2, 3, 1, 1, rng, "conv2"));
  net->emplace<GroupNorm>(gn_groups(w2), w2, 1e-5f, "conv2.gn");
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  net->emplace<ResidualBlock>(res_body(w2, "res1."), "res1");
  net->add(make_conv(w2, w4, 3, 1, 1, rng, "conv3"));
  net->emplace<GroupNorm>(gn_groups(w4), w4, 1e-5f, "conv3.gn");
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  net->emplace<ResidualBlock>(res_body(w4, "res2."), "res2");
  net->emplace<GlobalAvgPool2d>();
  net->add(make_linear(w4, num_classes, rng, "classifier"));
  return Model(std::move(net));
}

Model vgg_lite(std::size_t in_channels, std::size_t image_hw,
               std::size_t num_classes, std::size_t width,
               std::uint64_t seed) {
  if (image_hw % 8 != 0) {
    throw std::invalid_argument("vgg_lite: image_hw must be divisible by 8");
  }
  util::Rng rng(seed);
  const std::size_t w1 = width;
  const std::size_t w2 = 2 * width;
  const std::size_t w4 = 4 * width;

  auto net = std::make_unique<Sequential>();
  net->add(make_conv(in_channels, w1, 3, 1, 1, rng, "conv1"));
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  net->add(make_conv(w1, w2, 3, 1, 1, rng, "conv2"));
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  net->add(make_conv(w2, w4, 3, 1, 1, rng, "conv3"));
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  net->add(make_conv(w4, w4, 3, 1, 1, rng, "conv4"));
  net->emplace<ReLU>();
  net->emplace<Flatten>();
  const std::size_t hw = image_hw / 8;
  net->add(make_linear(w4 * hw * hw, 64, rng, "fc1"));
  net->emplace<ReLU>();
  net->add(make_linear(64, num_classes, rng, "classifier"));
  return Model(std::move(net));
}

Model mlp(std::size_t in_features, const std::vector<std::size_t>& hidden,
          std::size_t num_classes, std::uint64_t seed) {
  util::Rng rng(seed);
  auto net = std::make_unique<Sequential>();
  net->emplace<Flatten>();
  std::size_t prev = in_features;
  std::size_t i = 1;
  for (const std::size_t h : hidden) {
    net->add(make_linear(prev, h, rng, "fc" + std::to_string(i++)));
    net->emplace<ReLU>();
    prev = h;
  }
  net->add(make_linear(prev, num_classes, rng, "classifier"));
  return Model(std::move(net));
}

Model build_model(const ModelSpec& spec, std::uint64_t seed) {
  if (spec.arch == "lenet5") {
    return lenet5(spec.in_channels, spec.image_hw, spec.num_classes, seed);
  }
  if (spec.arch == "resnet9") {
    return resnet9(spec.in_channels, spec.image_hw, spec.num_classes,
                   spec.width, seed);
  }
  if (spec.arch == "vgglite") {
    return vgg_lite(spec.in_channels, spec.image_hw, spec.num_classes,
                    spec.width, seed);
  }
  if (spec.arch == "mlp") {
    return mlp(spec.in_channels * spec.image_hw * spec.image_hw,
               {64, 32}, spec.num_classes, seed);
  }
  throw std::invalid_argument("build_model: unknown arch " + spec.arch);
}

ModelFactory make_factory(ModelSpec spec) {
  return [spec](std::uint64_t seed) { return build_model(spec, seed); };
}

}  // namespace fedclust::nn
