#pragma once

// SGD with momentum, weight decay, and an optional FedProx proximal term.

#include <vector>

#include "nn/module.h"

namespace fedclust::nn {

struct SgdOptions {
  float lr = 0.01f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
  // Global gradient-norm clipping applied before the update (0 = off).
  float clip_grad_norm = 0.0f;
  // FedProx: adds prox_mu * (w - w_ref) to the gradient. Active only when a
  // reference vector has been installed via set_prox_reference().
  float prox_mu = 0.0f;
};

class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, SgdOptions opts);

  void set_lr(float lr) { opts_.lr = lr; }
  float lr() const { return opts_.lr; }

  // Installs the global-model snapshot for the proximal term. The flat
  // vector must match the concatenated parameter layout. Pass an empty
  // vector to disable.
  void set_prox_reference(std::vector<float> ref);

  // Installs a constant additive gradient offset (flat layout): every step
  // uses g + offset. This is the hook SCAFFOLD's control variates and
  // FedDyn's lagged-gradient correction plug into. Empty vector disables.
  void set_grad_offset(std::vector<float> offset);

  // w -= lr * v where v = momentum * v + (g + wd * w + mu * (w - w_ref)).
  void step();

  void zero_grad();

 private:
  std::vector<Parameter*> params_;
  SgdOptions opts_;
  std::vector<Tensor> velocity_;
  std::vector<float> prox_ref_;
  std::vector<float> grad_offset_;
  std::size_t total_size_ = 0;
};

}  // namespace fedclust::nn
