#pragma once

// Elementwise activation layers.

#include "nn/module.h"

namespace fedclust::nn {

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "relu"; }

 private:
  // 1 where the input was positive; reused as the backward mask.
  std::vector<bool> mask_;
  tensor::Shape cached_shape_;
};

class Tanh : public Module {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "tanh"; }

 private:
  Tensor cached_output_;
};

}  // namespace fedclust::nn
