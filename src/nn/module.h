#pragma once

// Layer abstraction with explicit forward/backward passes.
//
// There is deliberately no autograd tape: each Module caches what its own
// backward pass needs during forward(train=true), and backward() consumes
// those caches in reverse order. This keeps memory and control flow fully
// explicit — which matters here, because the FL simulator snapshots, ships,
// and averages raw parameter vectors constantly and must know exactly what
// state a model carries (parameters only; caches are transient).

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fedclust::nn {

using tensor::Tensor;

// A learnable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
};

class Module {
 public:
  virtual ~Module() = default;

  // train=true caches activations for the subsequent backward(); eval mode
  // is allowed to skip caching.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  // grad_out is dLoss/dOutput; returns dLoss/dInput and *accumulates* into
  // each parameter's grad. Must be preceded by forward(x, /*train=*/true).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  // Non-owning views of this module's parameters (empty for stateless
  // layers). Order is stable and defines the flat-vector layout.
  virtual std::vector<Parameter*> parameters() { return {}; }

  virtual std::string name() const = 0;

  void zero_grad();
};

// Runs children in order; backward() runs them in reverse.
class Sequential : public Module {
 public:
  Sequential() = default;

  // Builder-style append. Returns *this for chaining.
  Sequential& add(std::unique_ptr<Module> m);

  template <typename M, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<M>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Sequential"; }

  std::size_t size() const { return children_.size(); }
  Module& child(std::size_t i) { return *children_.at(i); }
  const Module& child(std::size_t i) const { return *children_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

}  // namespace fedclust::nn
