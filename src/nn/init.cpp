#include "nn/init.h"

#include <cmath>

namespace fedclust::nn {

void kaiming_uniform_(Tensor& w, std::size_t fan_in, util::Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  for (auto& x : w.vec()) {
    x = static_cast<float>(rng.uniform(-bound, bound));
  }
}

void bias_uniform_(Tensor& b, std::size_t fan_in, util::Rng& rng) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  for (auto& x : b.vec()) {
    x = static_cast<float>(rng.uniform(-bound, bound));
  }
}

std::unique_ptr<Linear> make_linear(std::size_t in, std::size_t out,
                                    util::Rng& rng, std::string name) {
  auto layer = std::make_unique<Linear>(in, out, std::move(name));
  kaiming_uniform_(layer->weight().value, in, rng);
  bias_uniform_(layer->bias().value, in, rng);
  return layer;
}

std::unique_ptr<Conv2d> make_conv(std::size_t in_c, std::size_t out_c,
                                  std::size_t kernel, std::size_t stride,
                                  std::size_t pad, util::Rng& rng,
                                  std::string name) {
  auto layer =
      std::make_unique<Conv2d>(in_c, out_c, kernel, stride, pad,
                               std::move(name));
  const std::size_t fan_in = in_c * kernel * kernel;
  kaiming_uniform_(layer->weight().value, fan_in, rng);
  bias_uniform_(layer->parameters()[1]->value, fan_in, rng);
  return layer;
}

}  // namespace fedclust::nn
