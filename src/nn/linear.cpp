#include "nn/linear.h"

#include <stdexcept>

#include "tensor/gemm.h"

namespace fedclust::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features,
               std::string name)
    : in_(in_features),
      out_(out_features),
      name_(std::move(name)),
      weight_(name_ + ".weight", Tensor({out_features, in_features})),
      bias_(name_ + ".bias", Tensor({out_features})) {}

Tensor Linear::forward(const Tensor& x, bool train) {
  if (x.ndim() != 2 || x.dim(1) != in_) {
    throw std::invalid_argument(name_ + ": expected input (N, " +
                                std::to_string(in_) + "), got " +
                                x.shape_str());
  }
  const std::size_t n = x.dim(0);
  // y = x (N,in) * W^T (in,out)
  Tensor y = tensor::matmul(x, tensor::Trans::kNo, weight_.value,
                            tensor::Trans::kYes);
  for (std::size_t i = 0; i < n; ++i) {
    float* row = y.data() + i * out_;
    for (std::size_t j = 0; j < out_; ++j) row[j] += bias_.value[j];
  }
  if (train) cached_input_ = x;
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const std::size_t n = grad_out.dim(0);
  if (cached_input_.empty() || grad_out.dim(1) != out_ ||
      cached_input_.dim(0) != n) {
    throw std::logic_error(name_ + ": backward without matching forward");
  }
  // dW += gy^T x : (out, N) x (N, in)
  tensor::gemm(tensor::Trans::kYes, tensor::Trans::kNo, out_, in_, n, 1.0f,
               grad_out.data(), out_, cached_input_.data(), in_, 1.0f,
               weight_.grad.data(), in_);
  // db += column sums of gy
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = grad_out.data() + i * out_;
    for (std::size_t j = 0; j < out_; ++j) bias_.grad[j] += row[j];
  }
  // dx = gy W : (N, out) x (out, in)
  return tensor::matmul(grad_out, tensor::Trans::kNo, weight_.value,
                        tensor::Trans::kNo);
}

}  // namespace fedclust::nn
