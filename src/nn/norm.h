#pragma once

// Group normalization (Wu & He, 2018).
//
// Chosen over batch norm deliberately: BN carries running statistics that
// are themselves client state, which muddies FL weight averaging and the
// paper's weight-distance arguments. GN is stateless beyond gamma/beta and
// is the standard substitution in non-IID FL (its statistics are per-sample,
// so tiny local batches don't destabilize training).

#include "nn/module.h"

namespace fedclust::nn {

class GroupNorm : public Module {
 public:
  // channels must be divisible by groups.
  GroupNorm(std::size_t groups, std::size_t channels, float eps = 1e-5f,
            std::string name = "gn");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  std::string name() const override { return name_; }

 private:
  std::size_t groups_;
  std::size_t channels_;
  float eps_;
  std::string name_;
  Parameter gamma_;  // (C)
  Parameter beta_;   // (C)

  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;  // per (sample, group)
  tensor::Shape cached_shape_;
};

}  // namespace fedclust::nn
