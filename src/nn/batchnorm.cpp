#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

namespace fedclust::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, float eps, float momentum,
                         std::string name)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      name_(std::move(name)),
      gamma_(name_ + ".gamma", Tensor::full({channels}, 1.0f)),
      beta_(name_ + ".beta", Tensor({channels})),
      running_mean_(channels, 0.0f),
      running_var_(channels, 1.0f) {}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  if (x.ndim() != 4 || x.dim(1) != channels_) {
    throw std::invalid_argument(name_ + ": expected (N, " +
                                std::to_string(channels_) + ", H, W), got " +
                                x.shape_str());
  }
  const std::size_t n = x.dim(0);
  const std::size_t area = x.dim(2) * x.dim(3);
  const std::size_t count = n * area;

  Tensor y(x.shape());
  Tensor xhat(x.shape());
  std::vector<float> inv_stds(channels_);

  for (std::size_t c = 0; c < channels_; ++c) {
    float mean;
    float var;
    if (train) {
      double sum = 0.0;
      double sq = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const float* plane = x.data() + (i * channels_ + c) * area;
        for (std::size_t p = 0; p < area; ++p) {
          sum += plane[p];
          sq += static_cast<double>(plane[p]) * plane[p];
        }
      }
      mean = static_cast<float>(sum / static_cast<double>(count));
      var = static_cast<float>(
          std::max(sq / static_cast<double>(count) -
                       static_cast<double>(mean) * mean,
                   0.0));
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * mean;
      running_var_[c] =
          (1.0f - momentum_) * running_var_[c] + momentum_ * var;
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float inv_std = 1.0f / std::sqrt(var + eps_);
    inv_stds[c] = inv_std;
    const float gm = gamma_.value[c];
    const float bt = beta_.value[c];
    for (std::size_t i = 0; i < n; ++i) {
      const float* in = x.data() + (i * channels_ + c) * area;
      float* xh = xhat.data() + (i * channels_ + c) * area;
      float* out = y.data() + (i * channels_ + c) * area;
      for (std::size_t p = 0; p < area; ++p) {
        const float h = (in[p] - mean) * inv_std;
        xh[p] = h;
        out[p] = gm * h + bt;
      }
    }
  }

  if (train) {
    cached_xhat_ = std::move(xhat);
    cached_inv_std_ = std::move(inv_stds);
    cached_shape_ = x.shape();
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  if (cached_shape_.empty() || grad_out.shape() != cached_shape_) {
    throw std::logic_error(name_ + ": backward without matching forward");
  }
  const std::size_t n = cached_shape_[0];
  const std::size_t area = cached_shape_[2] * cached_shape_[3];
  const std::size_t count = n * area;

  Tensor grad_in(cached_shape_);
  for (std::size_t c = 0; c < channels_; ++c) {
    const float gm = gamma_.value[c];
    double sum_gy = 0.0;
    double sum_gy_xhat = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float* gy = grad_out.data() + (i * channels_ + c) * area;
      const float* xh = cached_xhat_.data() + (i * channels_ + c) * area;
      for (std::size_t p = 0; p < area; ++p) {
        sum_gy += gy[p];
        sum_gy_xhat += static_cast<double>(gy[p]) * xh[p];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_gy_xhat);
    beta_.grad[c] += static_cast<float>(sum_gy);

    const float mean_gy = static_cast<float>(sum_gy / count);
    const float mean_gy_xhat = static_cast<float>(sum_gy_xhat / count);
    const float inv_std = cached_inv_std_[c];
    for (std::size_t i = 0; i < n; ++i) {
      const float* gy = grad_out.data() + (i * channels_ + c) * area;
      const float* xh = cached_xhat_.data() + (i * channels_ + c) * area;
      float* gx = grad_in.data() + (i * channels_ + c) * area;
      for (std::size_t p = 0; p < area; ++p) {
        gx[p] = gm * inv_std *
                (gy[p] - mean_gy - xh[p] * mean_gy_xhat);
      }
    }
  }
  return grad_in;
}

}  // namespace fedclust::nn
