#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "tensor/tensor_ops.h"

namespace fedclust::nn {

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  if (logits.ndim() != 2 || logits.dim(0) != labels.size()) {
    throw std::invalid_argument(
        "softmax_cross_entropy: logits/labels shape mismatch");
  }
  const std::size_t n = logits.dim(0);
  const std::size_t k = logits.dim(1);
  if (n == 0) throw std::invalid_argument("softmax_cross_entropy: empty batch");

  LossResult result;
  result.grad_logits = logits;
  tensor::softmax_rows_(result.grad_logits);  // now holds probabilities

  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto y = labels[i];
    if (y < 0 || static_cast<std::size_t>(y) >= k) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    float* row = result.grad_logits.data() + i * k;
    const float p = std::max(row[static_cast<std::size_t>(y)], 1e-12f);
    loss -= std::log(p);
    // grad = (softmax - onehot) / N
    row[static_cast<std::size_t>(y)] -= 1.0f;
    for (std::size_t j = 0; j < k; ++j) row[j] *= inv_n;
  }
  result.loss = static_cast<float>(loss / static_cast<double>(n));
  return result;
}

double accuracy(const tensor::Tensor& logits,
                const std::vector<std::int64_t>& labels) {
  if (logits.ndim() != 2 || logits.dim(0) != labels.size()) {
    throw std::invalid_argument("accuracy: logits/labels shape mismatch");
  }
  if (labels.empty()) return 0.0;
  const auto preds = tensor::argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (static_cast<std::int64_t>(preds[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace fedclust::nn
