#pragma once

// 2-D convolution over NCHW tensors, lowered to GEMM via im2col.

#include "nn/module.h"

namespace fedclust::nn {

class Conv2d : public Module {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride = 1, std::size_t pad = 0,
         std::string name = "conv");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return name_; }

  std::size_t in_channels() const { return in_c_; }
  std::size_t out_channels() const { return out_c_; }
  std::size_t kernel() const { return kernel_; }

  Parameter& weight() { return weight_; }

 private:
  std::size_t in_c_;
  std::size_t out_c_;
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t pad_;
  std::string name_;
  Parameter weight_;  // (out_c, in_c * k * k)
  Parameter bias_;    // (out_c)

  // Forward caches for backward: the per-sample column matrices and the
  // input geometry.
  Tensor cached_cols_;  // (N, in_c*k*k, OH*OW) flattened
  std::size_t cached_n_ = 0;
  std::size_t cached_h_ = 0;
  std::size_t cached_w_ = 0;
};

}  // namespace fedclust::nn
