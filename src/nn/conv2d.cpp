#include "nn/conv2d.h"

#include <stdexcept>
#include <vector>

#include "obs/trace.h"
#include "tensor/conv_fused.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"

namespace fedclust::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               std::string name)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      name_(std::move(name)),
      weight_(name_ + ".weight",
              Tensor({out_channels, in_channels * kernel * kernel})),
      bias_(name_ + ".bias", Tensor({out_channels})) {}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  OBS_SPAN("conv2d.forward");
  if (x.ndim() != 4 || x.dim(1) != in_c_) {
    throw std::invalid_argument(name_ + ": expected input (N, " +
                                std::to_string(in_c_) + ", H, W), got " +
                                x.shape_str());
  }
  const std::size_t n = x.dim(0);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const std::size_t oh = tensor::conv_out_dim(h, kernel_, stride_, pad_);
  const std::size_t ow = tensor::conv_out_dim(w, kernel_, stride_, pad_);
  const std::size_t col_rows = in_c_ * kernel_ * kernel_;
  const std::size_t out_area = oh * ow;

  Tensor y({n, out_c_, oh, ow});
  Tensor cols = train ? Tensor({n, col_rows, out_area}) : Tensor();

  for (std::size_t i = 0; i < n; ++i) {
    float* out = y.data() + i * out_c_ * out_area;
    if (train) {
      // Training keeps the full column matrix — backward reuses it for the
      // dW and dcol GEMMs — so forward runs the unfused path over it.
      float* col = cols.data() + i * col_rows * out_area;
      tensor::im2col(x.data() + i * in_c_ * h * w, in_c_, h, w, kernel_,
                     kernel_, stride_, pad_, col);
      // out(out_c, out_area) = W(out_c, col_rows) x col(col_rows, out_area)
      tensor::gemm(tensor::Trans::kNo, tensor::Trans::kNo, out_c_, out_area,
                   col_rows, 1.0f, weight_.value.data(), col_rows, col,
                   out_area, 0.0f, out, out_area);
    } else {
      // Inference never needs the column matrix again: fuse im2col with the
      // GEMM so only a small panel is ever materialized (bit-identical to
      // the unfused path — see conv_fused.h).
      tensor::conv2d_forward_fused(x.data() + i * in_c_ * h * w, in_c_, h,
                                   w, weight_.value.data(), out_c_, kernel_,
                                   kernel_, stride_, pad_, out);
    }
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float b = bias_.value[oc];
      float* plane = out + oc * out_area;
      for (std::size_t p = 0; p < out_area; ++p) plane[p] += b;
    }
  }

  if (train) {
    cached_cols_ = std::move(cols);
    cached_n_ = n;
    cached_h_ = h;
    cached_w_ = w;
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  OBS_SPAN("conv2d.backward");
  if (cached_n_ == 0 || grad_out.ndim() != 4 || grad_out.dim(0) != cached_n_ ||
      grad_out.dim(1) != out_c_) {
    throw std::logic_error(name_ + ": backward without matching forward");
  }
  const std::size_t n = cached_n_;
  const std::size_t h = cached_h_;
  const std::size_t w = cached_w_;
  const std::size_t oh = grad_out.dim(2);
  const std::size_t ow = grad_out.dim(3);
  const std::size_t out_area = oh * ow;
  const std::size_t col_rows = in_c_ * kernel_ * kernel_;

  Tensor grad_in({n, in_c_, h, w});
  std::vector<float> grad_col(col_rows * out_area);

  for (std::size_t i = 0; i < n; ++i) {
    const float* gy = grad_out.data() + i * out_c_ * out_area;
    const float* col = cached_cols_.data() + i * col_rows * out_area;
    // dW += gy(out_c, out_area) x col^T(out_area, col_rows)
    tensor::gemm(tensor::Trans::kNo, tensor::Trans::kYes, out_c_, col_rows,
                 out_area, 1.0f, gy, out_area, col, out_area, 1.0f,
                 weight_.grad.data(), col_rows);
    // db += spatial sums of gy
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* plane = gy + oc * out_area;
      double s = 0.0;
      for (std::size_t p = 0; p < out_area; ++p) s += plane[p];
      bias_.grad[oc] += static_cast<float>(s);
    }
    // dcol = W^T(col_rows, out_c) x gy(out_c, out_area), then scatter back.
    tensor::gemm(tensor::Trans::kYes, tensor::Trans::kNo, col_rows, out_area,
                 out_c_, 1.0f, weight_.value.data(), col_rows, gy, out_area,
                 0.0f, grad_col.data(), out_area);
    tensor::col2im(grad_col.data(), in_c_, h, w, kernel_, kernel_, stride_,
                   pad_, grad_in.data() + i * in_c_ * h * w);
  }
  return grad_in;
}

}  // namespace fedclust::nn
