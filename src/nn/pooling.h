#pragma once

// Spatial pooling layers over NCHW tensors.

#include "nn/module.h"

namespace fedclust::nn {

class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(std::size_t kernel, std::size_t stride = 0);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "maxpool"; }

 private:
  std::size_t kernel_;
  std::size_t stride_;
  // Flat input index of the argmax for every output element.
  std::vector<std::size_t> argmax_;
  tensor::Shape cached_in_shape_;
  tensor::Shape cached_out_shape_;
};

class AvgPool2d : public Module {
 public:
  explicit AvgPool2d(std::size_t kernel, std::size_t stride = 0);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "avgpool"; }

 private:
  std::size_t kernel_;
  std::size_t stride_;
  tensor::Shape cached_in_shape_;
};

// Averages each channel plane to a single value: (N, C, H, W) -> (N, C).
class GlobalAvgPool2d : public Module {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "gap"; }

 private:
  tensor::Shape cached_in_shape_;
};

// (N, C, H, W) -> (N, C*H*W); inverse on backward.
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "flatten"; }

 private:
  tensor::Shape cached_in_shape_;
};

}  // namespace fedclust::nn
