#include "nn/residual.h"

#include <stdexcept>

#include "tensor/tensor_ops.h"

namespace fedclust::nn {

ResidualBlock::ResidualBlock(std::unique_ptr<Module> body, std::string name)
    : body_(std::move(body)), name_(std::move(name)) {}

Tensor ResidualBlock::forward(const Tensor& x, bool train) {
  Tensor y = body_->forward(x, train);
  if (y.shape() != x.shape()) {
    throw std::invalid_argument(
        name_ + ": body must preserve shape (got " + y.shape_str() +
        " from " + x.shape_str() + ")");
  }
  tensor::add_(y, x);
  if (train) {
    relu_mask_.assign(y.size(), false);
    cached_shape_ = y.shape();
  }
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] > 0.0f) {
      if (train) relu_mask_[i] = true;
    } else {
      y[i] = 0.0f;
    }
  }
  return y;
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  if (relu_mask_.size() != grad_out.size() ||
      grad_out.shape() != cached_shape_) {
    throw std::logic_error(name_ + ": backward without matching forward");
  }
  // Gradient through the post-add ReLU feeds both branches.
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (!relu_mask_[i]) g[i] = 0.0f;
  }
  Tensor gx = body_->backward(g);
  tensor::add_(gx, g);  // skip connection
  return gx;
}

}  // namespace fedclust::nn
