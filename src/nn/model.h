#pragma once

// Model: a Module tree plus the flat-parameter view the FL layer works in.
//
// FL algorithms treat models as flat float vectors (ship, average, measure
// distances); Model provides the canonical flattening (concatenation of
// parameters in registration order) together with a named layout so
// algorithms can slice out specific layers — most importantly the final
// classifier layer, which is what FedClust ships for clustering.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "obs/trace.h"

namespace fedclust::nn {

class Model {
 public:
  // classifier_param_count: how many trailing Parameter tensors form the
  // final (classifier) layer — 2 for a Linear head (weight + bias).
  explicit Model(std::unique_ptr<Module> net,
                 std::size_t classifier_param_count = 2);

  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  Tensor forward(const Tensor& x, bool train = false) {
    OBS_SPAN("model.forward");
    return net_->forward(x, train);
  }
  Tensor backward(const Tensor& grad_out) {
    OBS_SPAN("model.backward");
    return net_->backward(grad_out);
  }
  void zero_grad() { net_->zero_grad(); }

  std::vector<Parameter*> parameters() { return net_->parameters(); }
  std::size_t num_params() const { return total_size_; }

  // ---- flat-vector view ------------------------------------------------
  struct ParamInfo {
    std::string name;
    std::size_t offset;  // position in the flat vector
    std::size_t size;
  };
  const std::vector<ParamInfo>& param_layout() const { return layout_; }

  std::vector<float> flat_params() const;
  void set_flat_params(const std::vector<float>& flat);
  std::vector<float> flat_grads() const;

  // ---- classifier slice (FedClust's "strategically selected weights") ---
  // [offset, offset+size) within the flat vector.
  std::pair<std::size_t, std::size_t> classifier_range() const;
  std::vector<float> classifier_params() const;

  // Flat slice of one named parameter.
  std::vector<float> param_by_name(const std::string& name) const;

 private:
  std::unique_ptr<Module> net_;
  std::vector<Parameter*> params_;  // cached; owned by net_
  std::vector<ParamInfo> layout_;
  std::size_t total_size_ = 0;
  std::size_t classifier_param_count_;
};

}  // namespace fedclust::nn
