#pragma once

// BatchNorm2d with running statistics.
//
// Provided for completeness and for the GroupNorm-substitution ablation:
// the model zoo deliberately uses GroupNorm (see norm.h) because BatchNorm
// carries running mean/var that are extra per-client state — averaging them
// across non-IID clients is exactly the failure mode the FL literature
// warns about, and this layer lets downstream users reproduce it.
//
// Note: the running statistics are NOT part of parameters()/flat_params()
// (they are buffers, not learnable weights), mirroring PyTorch. FL
// averaging therefore silently ignores them — which is the pitfall.

#include "nn/module.h"

namespace fedclust::nn {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::size_t channels, float eps = 1e-5f,
                       float momentum = 0.1f, std::string name = "bn");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  std::string name() const override { return name_; }

  const std::vector<float>& running_mean() const { return running_mean_; }
  const std::vector<float>& running_var() const { return running_var_; }

 private:
  std::size_t channels_;
  float eps_;
  float momentum_;
  std::string name_;
  Parameter gamma_;
  Parameter beta_;
  std::vector<float> running_mean_;
  std::vector<float> running_var_;

  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;  // per channel
  tensor::Shape cached_shape_;
};

}  // namespace fedclust::nn
