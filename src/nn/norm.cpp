#include "nn/norm.h"

#include <cmath>
#include <stdexcept>

namespace fedclust::nn {

GroupNorm::GroupNorm(std::size_t groups, std::size_t channels, float eps,
                     std::string name)
    : groups_(groups),
      channels_(channels),
      eps_(eps),
      name_(std::move(name)),
      gamma_(name_ + ".gamma", Tensor::full({channels}, 1.0f)),
      beta_(name_ + ".beta", Tensor({channels})) {
  if (groups == 0 || channels % groups != 0) {
    throw std::invalid_argument(name_ +
                                ": channels must be divisible by groups");
  }
}

Tensor GroupNorm::forward(const Tensor& x, bool train) {
  if (x.ndim() != 4 || x.dim(1) != channels_) {
    throw std::invalid_argument(name_ + ": expected (N, " +
                                std::to_string(channels_) + ", H, W), got " +
                                x.shape_str());
  }
  const std::size_t n = x.dim(0);
  const std::size_t area = x.dim(2) * x.dim(3);
  const std::size_t ch_per_group = channels_ / groups_;
  const std::size_t group_size = ch_per_group * area;

  Tensor y(x.shape());
  Tensor xhat(x.shape());
  std::vector<float> inv_stds(n * groups_);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t g = 0; g < groups_; ++g) {
      const float* in = x.data() + (i * channels_ + g * ch_per_group) * area;
      double sum = 0.0;
      double sq = 0.0;
      for (std::size_t p = 0; p < group_size; ++p) {
        sum += in[p];
        sq += static_cast<double>(in[p]) * in[p];
      }
      const double mean = sum / static_cast<double>(group_size);
      const double var = sq / static_cast<double>(group_size) - mean * mean;
      const float inv_std =
          static_cast<float>(1.0 / std::sqrt(std::max(var, 0.0) + eps_));
      inv_stds[i * groups_ + g] = inv_std;

      float* xh = xhat.data() + (i * channels_ + g * ch_per_group) * area;
      float* out = y.data() + (i * channels_ + g * ch_per_group) * area;
      for (std::size_t c = 0; c < ch_per_group; ++c) {
        const float gm = gamma_.value[g * ch_per_group + c];
        const float bt = beta_.value[g * ch_per_group + c];
        for (std::size_t p = 0; p < area; ++p) {
          const std::size_t idx = c * area + p;
          const float h = (in[idx] - static_cast<float>(mean)) * inv_std;
          xh[idx] = h;
          out[idx] = gm * h + bt;
        }
      }
    }
  }

  if (train) {
    cached_xhat_ = std::move(xhat);
    cached_inv_std_ = std::move(inv_stds);
    cached_shape_ = x.shape();
  }
  return y;
}

Tensor GroupNorm::backward(const Tensor& grad_out) {
  if (cached_shape_.empty() || grad_out.shape() != cached_shape_) {
    throw std::logic_error(name_ + ": backward without matching forward");
  }
  const std::size_t n = cached_shape_[0];
  const std::size_t area = cached_shape_[2] * cached_shape_[3];
  const std::size_t ch_per_group = channels_ / groups_;
  const std::size_t group_size = ch_per_group * area;

  Tensor grad_in(cached_shape_);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t g = 0; g < groups_; ++g) {
      const std::size_t base = (i * channels_ + g * ch_per_group) * area;
      const float* gy = grad_out.data() + base;
      const float* xh = cached_xhat_.data() + base;
      const float inv_std = cached_inv_std_[i * groups_ + g];

      // Per-channel parameter grads + group-level sums for the input grad.
      double sum_gxhat = 0.0;
      double sum_gxhat_xhat = 0.0;
      for (std::size_t c = 0; c < ch_per_group; ++c) {
        const float gm = gamma_.value[g * ch_per_group + c];
        double dgamma = 0.0;
        double dbeta = 0.0;
        for (std::size_t p = 0; p < area; ++p) {
          const std::size_t idx = c * area + p;
          dgamma += static_cast<double>(gy[idx]) * xh[idx];
          dbeta += gy[idx];
          const double gxh = static_cast<double>(gy[idx]) * gm;
          sum_gxhat += gxh;
          sum_gxhat_xhat += gxh * xh[idx];
        }
        gamma_.grad[g * ch_per_group + c] += static_cast<float>(dgamma);
        beta_.grad[g * ch_per_group + c] += static_cast<float>(dbeta);
      }

      const float mean_gxhat =
          static_cast<float>(sum_gxhat / static_cast<double>(group_size));
      const float mean_gxhat_xhat =
          static_cast<float>(sum_gxhat_xhat / static_cast<double>(group_size));

      float* gx = grad_in.data() + base;
      for (std::size_t c = 0; c < ch_per_group; ++c) {
        const float gm = gamma_.value[g * ch_per_group + c];
        for (std::size_t p = 0; p < area; ++p) {
          const std::size_t idx = c * area + p;
          const float gxhat = gy[idx] * gm;
          gx[idx] = inv_std *
                    (gxhat - mean_gxhat - xh[idx] * mean_gxhat_xhat);
        }
      }
    }
  }
  return grad_in;
}

}  // namespace fedclust::nn
