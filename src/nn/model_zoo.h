#pragma once

// The architectures the paper evaluates with, at simulator scale:
//  * LeNet-5      — faithful topology (conv5-pool-conv5-pool-fc120-fc84-fcK),
//                   used for CIFAR-10 / FMNIST / SVHN in the paper.
//  * ResNet-9     — same block structure as the paper's CIFAR-100 model but
//                   with configurable (thin) widths; GroupNorm replaces
//                   BatchNorm (see norm.h for why).
//  * VGG-lite     — a 4-conv/2-fc VGG16 stand-in for the Fig. 1 motivation
//                   study, giving distinguishable early-conv / late-conv /
//                   mid-FC / final-FC layers.
//  * MLP          — small fully connected net for tests and quick examples.
//
// Every model consumes NCHW input (MLP flattens internally) and ends in a
// Linear classifier, so Model::classifier_range() is always well defined.

#include <functional>
#include <string>

#include "nn/model.h"

namespace fedclust::nn {

struct ModelSpec {
  std::string arch = "lenet5";  // lenet5 | resnet9 | vgglite | mlp
  std::size_t in_channels = 3;
  std::size_t image_hw = 16;  // square images
  std::size_t num_classes = 10;
  std::size_t width = 8;  // base channel width for resnet9 / vgglite
};

Model lenet5(std::size_t in_channels, std::size_t image_hw,
             std::size_t num_classes, std::uint64_t seed);

Model resnet9(std::size_t in_channels, std::size_t image_hw,
              std::size_t num_classes, std::size_t width, std::uint64_t seed);

Model vgg_lite(std::size_t in_channels, std::size_t image_hw,
               std::size_t num_classes, std::size_t width,
               std::uint64_t seed);

Model mlp(std::size_t in_features, const std::vector<std::size_t>& hidden,
          std::size_t num_classes, std::uint64_t seed);

Model build_model(const ModelSpec& spec, std::uint64_t seed);

// Factory bound to a spec; FL algorithms use it to stamp out identically
// shaped models (weights differ by seed).
using ModelFactory = std::function<Model(std::uint64_t seed)>;
ModelFactory make_factory(ModelSpec spec);

}  // namespace fedclust::nn
