#pragma once

// Softmax cross-entropy over class logits.

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fedclust::nn {

struct LossResult {
  float loss = 0.0f;            // mean over the batch
  tensor::Tensor grad_logits;   // dLoss/dlogits, (N, K)
};

// logits (N, K), labels in [0, K). The gradient already includes the 1/N
// batch-mean factor.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::int64_t>& labels);

// Convenience eval metric: fraction of rows whose argmax equals the label.
double accuracy(const tensor::Tensor& logits,
                const std::vector<std::int64_t>& labels);

}  // namespace fedclust::nn
