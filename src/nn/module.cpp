#include "nn/module.h"

#include "tensor/tensor_ops.h"

namespace fedclust::nn {

void Module::zero_grad() {
  for (Parameter* p : parameters()) tensor::fill_(p->grad, 0.0f);
}

Sequential& Sequential::add(std::unique_ptr<Module> m) {
  children_.push_back(std::move(m));
  return *this;
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor out = x;
  for (auto& child : children_) out = child->forward(out, train);
  return out;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (auto& child : children_) {
    for (Parameter* p : child->parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace fedclust::nn
