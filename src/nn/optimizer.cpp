#include "nn/optimizer.h"

#include <cmath>

#include <stdexcept>

#include "tensor/tensor_ops.h"

namespace fedclust::nn {

Sgd::Sgd(std::vector<Parameter*> params, SgdOptions opts)
    : params_(std::move(params)), opts_(opts) {
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) {
    velocity_.emplace_back(p->value.shape());
    total_size_ += p->value.size();
  }
}

void Sgd::set_prox_reference(std::vector<float> ref) {
  if (!ref.empty() && ref.size() != total_size_) {
    throw std::invalid_argument("Sgd: prox reference size mismatch");
  }
  prox_ref_ = std::move(ref);
}

void Sgd::set_grad_offset(std::vector<float> offset) {
  if (!offset.empty() && offset.size() != total_size_) {
    throw std::invalid_argument("Sgd: grad offset size mismatch");
  }
  grad_offset_ = std::move(offset);
}

void Sgd::step() {
  float clip_scale = 1.0f;
  if (opts_.clip_grad_norm > 0.0f) {
    double sq = 0.0;
    for (const Parameter* p : params_) {
      for (const float g : p->grad.vec()) {
        sq += static_cast<double>(g) * g;
      }
    }
    const double norm = std::sqrt(sq);
    if (norm > opts_.clip_grad_norm) {
      clip_scale = static_cast<float>(opts_.clip_grad_norm / norm);
    }
  }
  std::size_t offset = 0;
  const bool use_prox = opts_.prox_mu != 0.0f && !prox_ref_.empty();
  const bool use_offset = !grad_offset_.empty();
  for (std::size_t t = 0; t < params_.size(); ++t) {
    Parameter& p = *params_[t];
    Tensor& v = velocity_[t];
    const std::size_t n = p.value.size();
    for (std::size_t i = 0; i < n; ++i) {
      float g = p.grad[i] * clip_scale;
      if (use_offset) g += grad_offset_[offset + i];
      if (opts_.weight_decay != 0.0f) g += opts_.weight_decay * p.value[i];
      if (use_prox) g += opts_.prox_mu * (p.value[i] - prox_ref_[offset + i]);
      if (opts_.momentum != 0.0f) {
        v[i] = opts_.momentum * v[i] + g;
        g = v[i];
      }
      p.value[i] -= opts_.lr * g;
    }
    offset += n;
  }
}

void Sgd::zero_grad() {
  for (Parameter* p : params_) tensor::fill_(p->grad, 0.0f);
}

}  // namespace fedclust::nn
