#include "nn/activations.h"

#include <cmath>
#include <stdexcept>

namespace fedclust::nn {

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor y = x;
  if (train) {
    mask_.assign(x.size(), false);
    cached_shape_ = x.shape();
  }
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] > 0.0f) {
      if (train) mask_[i] = true;
    } else {
      y[i] = 0.0f;
    }
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (mask_.size() != grad_out.size() || grad_out.shape() != cached_shape_) {
    throw std::logic_error("relu: backward without matching forward");
  }
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (!mask_[i]) g[i] = 0.0f;
  }
  return g;
}

Tensor Tanh::forward(const Tensor& x, bool train) {
  Tensor y = x;
  for (auto& v : y.vec()) v = std::tanh(v);
  if (train) cached_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  if (cached_output_.shape() != grad_out.shape()) {
    throw std::logic_error("tanh: backward without matching forward");
  }
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const float t = cached_output_[i];
    g[i] *= 1.0f - t * t;
  }
  return g;
}

}  // namespace fedclust::nn
