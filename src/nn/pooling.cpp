#include "nn/pooling.h"

#include <limits>
#include <stdexcept>

#include "tensor/im2col.h"

namespace fedclust::nn {

namespace {

void check_nchw(const Tensor& x, const char* who) {
  if (x.ndim() != 4) {
    throw std::invalid_argument(std::string(who) + ": expected NCHW input, got " +
                                x.shape_str());
  }
}

}  // namespace

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  check_nchw(x, "maxpool");
  const std::size_t n = x.dim(0);
  const std::size_t c = x.dim(1);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const std::size_t oh = tensor::conv_out_dim(h, kernel_, stride_, 0);
  const std::size_t ow = tensor::conv_out_dim(w, kernel_, stride_, 0);

  Tensor y({n, c, oh, ow});
  if (train) argmax_.assign(y.size(), 0);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const std::size_t plane_off = (i * c + ch) * h * w;
      const float* plane = x.data() + plane_off;
      const std::size_t out_off = (i * c + ch) * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_off + iy * w + ix;
              }
            }
          }
          const std::size_t out_idx = out_off + oy * ow + ox;
          y[out_idx] = best;
          if (train) argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  if (train) {
    cached_in_shape_ = x.shape();
    cached_out_shape_ = y.shape();
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  if (argmax_.empty() || grad_out.shape() != cached_out_shape_) {
    throw std::logic_error("maxpool: backward without matching forward");
  }
  Tensor grad_in(cached_in_shape_);
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_in[argmax_[i]] += grad_out[i];
  }
  return grad_in;
}

AvgPool2d::AvgPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {}

Tensor AvgPool2d::forward(const Tensor& x, bool train) {
  check_nchw(x, "avgpool");
  const std::size_t n = x.dim(0);
  const std::size_t c = x.dim(1);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const std::size_t oh = tensor::conv_out_dim(h, kernel_, stride_, 0);
  const std::size_t ow = tensor::conv_out_dim(w, kernel_, stride_, 0);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

  Tensor y({n, c, oh, ow});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      float* out = y.data() + (i * c + ch) * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float s = 0.0f;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              s += plane[(oy * stride_ + ky) * w + ox * stride_ + kx];
            }
          }
          out[oy * ow + ox] = s * inv;
        }
      }
    }
  }
  if (train) cached_in_shape_ = x.shape();
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty()) {
    throw std::logic_error("avgpool: backward without matching forward");
  }
  const std::size_t n = cached_in_shape_[0];
  const std::size_t c = cached_in_shape_[1];
  const std::size_t h = cached_in_shape_[2];
  const std::size_t w = cached_in_shape_[3];
  const std::size_t oh = grad_out.dim(2);
  const std::size_t ow = grad_out.dim(3);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

  Tensor grad_in(cached_in_shape_);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      float* plane = grad_in.data() + (i * c + ch) * h * w;
      const float* gy = grad_out.data() + (i * c + ch) * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = gy[oy * ow + ox] * inv;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              plane[(oy * stride_ + ky) * w + ox * stride_ + kx] += g;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor GlobalAvgPool2d::forward(const Tensor& x, bool train) {
  check_nchw(x, "gap");
  const std::size_t n = x.dim(0);
  const std::size_t c = x.dim(1);
  const std::size_t area = x.dim(2) * x.dim(3);
  const float inv = 1.0f / static_cast<float>(area);
  Tensor y({n, c});
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* plane = x.data() + i * area;
    double s = 0.0;
    for (std::size_t p = 0; p < area; ++p) s += plane[p];
    y[i] = static_cast<float>(s) * inv;
  }
  if (train) cached_in_shape_ = x.shape();
  return y;
}

Tensor GlobalAvgPool2d::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty()) {
    throw std::logic_error("gap: backward without matching forward");
  }
  const std::size_t area = cached_in_shape_[2] * cached_in_shape_[3];
  const float inv = 1.0f / static_cast<float>(area);
  Tensor grad_in(cached_in_shape_);
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    const float g = grad_out[i] * inv;
    float* plane = grad_in.data() + i * area;
    for (std::size_t p = 0; p < area; ++p) plane[p] = g;
  }
  return grad_in;
}

Tensor Flatten::forward(const Tensor& x, bool train) {
  if (x.ndim() < 2) {
    throw std::invalid_argument("flatten: expected at least 2-D input");
  }
  if (train) cached_in_shape_ = x.shape();
  Tensor y = x;
  y.reshape({x.dim(0), x.size() / x.dim(0)});
  return y;
}

Tensor Flatten::backward(const Tensor& grad_out) {
  if (cached_in_shape_.empty()) {
    throw std::logic_error("flatten: backward without matching forward");
  }
  Tensor g = grad_out;
  g.reshape(cached_in_shape_);
  return g;
}

}  // namespace fedclust::nn
