#include "nn/model.h"

#include <algorithm>
#include <stdexcept>

namespace fedclust::nn {

Model::Model(std::unique_ptr<Module> net, std::size_t classifier_param_count)
    : net_(std::move(net)), classifier_param_count_(classifier_param_count) {
  params_ = net_->parameters();
  if (classifier_param_count_ > params_.size()) {
    throw std::invalid_argument("Model: classifier_param_count exceeds params");
  }
  layout_.reserve(params_.size());
  for (const Parameter* p : params_) {
    layout_.push_back({p->name, total_size_, p->value.size()});
    total_size_ += p->value.size();
  }
}

std::vector<float> Model::flat_params() const {
  std::vector<float> flat(total_size_);
  std::size_t offset = 0;
  for (const Parameter* p : params_) {
    std::copy(p->value.vec().begin(), p->value.vec().end(),
              flat.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += p->value.size();
  }
  return flat;
}

void Model::set_flat_params(const std::vector<float>& flat) {
  if (flat.size() != total_size_) {
    throw std::invalid_argument("Model::set_flat_params: size mismatch");
  }
  std::size_t offset = 0;
  for (Parameter* p : params_) {
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(offset),
              flat.begin() + static_cast<std::ptrdiff_t>(offset +
                                                         p->value.size()),
              p->value.vec().begin());
    offset += p->value.size();
  }
}

std::vector<float> Model::flat_grads() const {
  std::vector<float> flat(total_size_);
  std::size_t offset = 0;
  for (const Parameter* p : params_) {
    std::copy(p->grad.vec().begin(), p->grad.vec().end(),
              flat.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += p->grad.size();
  }
  return flat;
}

std::pair<std::size_t, std::size_t> Model::classifier_range() const {
  if (classifier_param_count_ == 0) return {total_size_, 0};
  const std::size_t first =
      layout_.size() - classifier_param_count_;
  const std::size_t offset = layout_[first].offset;
  return {offset, total_size_ - offset};
}

std::vector<float> Model::classifier_params() const {
  const auto [offset, size] = classifier_range();
  const std::vector<float> flat = flat_params();
  return {flat.begin() + static_cast<std::ptrdiff_t>(offset),
          flat.begin() + static_cast<std::ptrdiff_t>(offset + size)};
}

std::vector<float> Model::param_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < layout_.size(); ++i) {
    if (layout_[i].name == name) {
      const auto& v = params_[i]->value.vec();
      return {v.begin(), v.end()};
    }
  }
  throw std::invalid_argument("Model: no parameter named " + name);
}

}  // namespace fedclust::nn
