#pragma once

// In-memory labelled image dataset (CHW float images, integer labels).

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fedclust::data {

class Dataset {
 public:
  Dataset(std::size_t channels, std::size_t hw, std::size_t num_classes);

  void add(std::vector<float> image, std::int64_t label);

  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  std::size_t channels() const { return channels_; }
  std::size_t hw() const { return hw_; }
  std::size_t num_classes() const { return num_classes_; }
  std::size_t image_size() const { return channels_ * hw_ * hw_; }

  std::int64_t label(std::size_t i) const { return labels_.at(i); }
  const std::vector<std::int64_t>& labels() const { return labels_; }
  // Pointer to the i-th CHW image (image_size() floats).
  const float* image(std::size_t i) const;

  // Assembles an (B, C, H, W) batch from sample indices.
  tensor::Tensor batch_images(const std::vector<std::size_t>& indices) const;
  std::vector<std::int64_t> batch_labels(
      const std::vector<std::size_t>& indices) const;

  // Label histogram normalized to probabilities (all-zero if empty).
  std::vector<double> label_distribution() const;
  // Distinct labels present, ascending.
  std::vector<std::int64_t> present_labels() const;

  // Column-per-sample (d, n) matrix of up to max_samples images with the
  // given label — the raw-data view PACFL applies truncated SVD to. Returns
  // an empty (d, 0) tensor if the class is absent.
  tensor::Tensor class_matrix(std::int64_t cls, std::size_t max_samples) const;

 private:
  std::size_t channels_;
  std::size_t hw_;
  std::size_t num_classes_;
  std::vector<float> images_;  // contiguous, image_size() per sample
  std::vector<std::int64_t> labels_;
};

}  // namespace fedclust::data
