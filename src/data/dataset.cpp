#include "data/dataset.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace fedclust::data {

Dataset::Dataset(std::size_t channels, std::size_t hw,
                 std::size_t num_classes)
    : channels_(channels), hw_(hw), num_classes_(num_classes) {
  if (channels == 0 || hw == 0 || num_classes == 0) {
    throw std::invalid_argument("Dataset: zero-sized geometry");
  }
}

void Dataset::add(std::vector<float> image, std::int64_t label) {
  if (image.size() != image_size()) {
    throw std::invalid_argument("Dataset::add: image size mismatch");
  }
  if (label < 0 || static_cast<std::size_t>(label) >= num_classes_) {
    throw std::invalid_argument("Dataset::add: label out of range");
  }
  images_.insert(images_.end(), image.begin(), image.end());
  labels_.push_back(label);
}

const float* Dataset::image(std::size_t i) const {
  if (i >= size()) throw std::out_of_range("Dataset::image: index OOB");
  return images_.data() + i * image_size();
}

tensor::Tensor Dataset::batch_images(
    const std::vector<std::size_t>& indices) const {
  tensor::Tensor batch({indices.size(), channels_, hw_, hw_});
  const std::size_t img = image_size();
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const float* src = image(indices[b]);
    std::copy(src, src + img,
              batch.data() + b * img);
  }
  return batch;
}

std::vector<std::int64_t> Dataset::batch_labels(
    const std::vector<std::size_t>& indices) const {
  std::vector<std::int64_t> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) out.push_back(label(i));
  return out;
}

std::vector<double> Dataset::label_distribution() const {
  std::vector<double> dist(num_classes_, 0.0);
  if (labels_.empty()) return dist;
  for (const std::int64_t y : labels_) {
    dist[static_cast<std::size_t>(y)] += 1.0;
  }
  for (auto& d : dist) d /= static_cast<double>(labels_.size());
  return dist;
}

std::vector<std::int64_t> Dataset::present_labels() const {
  const std::set<std::int64_t> s(labels_.begin(), labels_.end());
  return {s.begin(), s.end()};
}

tensor::Tensor Dataset::class_matrix(std::int64_t cls,
                                     std::size_t max_samples) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < size(); ++i) {
    if (labels_[i] == cls) {
      idx.push_back(i);
      if (idx.size() >= max_samples) break;
    }
  }
  const std::size_t d = image_size();
  tensor::Tensor m({d, idx.size()});
  for (std::size_t j = 0; j < idx.size(); ++j) {
    const float* img = image(idx[j]);
    for (std::size_t r = 0; r < d; ++r) m[r * idx.size() + j] = img[r];
  }
  return m;
}

}  // namespace fedclust::data
