#include "data/synthetic.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace fedclust::data {

SyntheticSpec dataset_spec(const std::string& name) {
  SyntheticSpec s;
  s.name = name;
  if (name == "cifar10") {
    // Hard 10-way task: colored, diverse prototypes, strong noise.
    s.channels = 3;
    s.hw = 16;
    s.num_classes = 10;
    s.dict_size = 24;
    s.atoms_per_class = 4;
    s.prototypes_per_class = 6;
    s.coeff_jitter = 0.6f;
    s.proto_scale = 1.0f;
    s.noise = 1.0f;
    s.grating_scale = 0.2f;
  } else if (name == "cifar100") {
    // Hardest: many classes with subtle differences. The real CIFAR-100 has
    // 100 classes; 20 keeps tiny per-client datasets statistically
    // meaningful while preserving the "many classes, low accuracy" role
    // (DESIGN.md §1).
    s.channels = 3;
    s.hw = 16;
    s.num_classes = 20;
    s.dict_size = 32;
    s.atoms_per_class = 4;
    s.prototypes_per_class = 6;
    s.coeff_jitter = 0.65f;
    s.proto_scale = 0.9f;
    s.noise = 1.1f;
    s.grating_scale = 0.15f;
  } else if (name == "fmnist") {
    // Easiest: grayscale, crisp prototypes, light noise.
    s.channels = 1;
    s.hw = 16;
    s.num_classes = 10;
    s.dict_size = 16;
    s.atoms_per_class = 3;
    s.prototypes_per_class = 4;
    s.coeff_jitter = 0.5f;
    s.proto_scale = 1.2f;
    s.noise = 0.75f;
    s.grating_scale = 0.3f;
  } else if (name == "svhn") {
    // Medium: colored digits; moderate noise.
    s.channels = 3;
    s.hw = 16;
    s.num_classes = 10;
    s.dict_size = 20;
    s.atoms_per_class = 3;
    s.prototypes_per_class = 5;
    s.coeff_jitter = 0.55f;
    s.proto_scale = 1.1f;
    s.noise = 0.9f;
    s.grating_scale = 0.25f;
  } else {
    throw std::invalid_argument("dataset_spec: unknown dataset " + name);
  }
  return s;
}

std::vector<std::string> benchmark_dataset_names() {
  return {"cifar10", "cifar100", "fmnist", "svhn"};
}

namespace {

// Smooth random field: coarse grid of N(0,1) bilinearly upsampled — one
// dictionary atom.
std::vector<float> smooth_field(std::size_t channels, std::size_t hw,
                                util::Rng& rng) {
  constexpr std::size_t kGrid = 4;
  std::vector<float> grid(channels * kGrid * kGrid);
  for (auto& g : grid) g = rng.normalf(0.0f, 1.0f);
  std::vector<float> img(channels * hw * hw);
  const float step = static_cast<float>(kGrid - 1) /
                     static_cast<float>(hw > 1 ? hw - 1 : 1);
  for (std::size_t c = 0; c < channels; ++c) {
    const float* gplane = grid.data() + c * kGrid * kGrid;
    float* plane = img.data() + c * hw * hw;
    for (std::size_t y = 0; y < hw; ++y) {
      const float fy = static_cast<float>(y) * step;
      const std::size_t y0 =
          std::min<std::size_t>(static_cast<std::size_t>(fy), kGrid - 2);
      const float wy = fy - static_cast<float>(y0);
      for (std::size_t x = 0; x < hw; ++x) {
        const float fx = static_cast<float>(x) * step;
        const std::size_t x0 =
            std::min<std::size_t>(static_cast<std::size_t>(fx), kGrid - 2);
        const float wx = fx - static_cast<float>(x0);
        const float v00 = gplane[y0 * kGrid + x0];
        const float v01 = gplane[y0 * kGrid + x0 + 1];
        const float v10 = gplane[(y0 + 1) * kGrid + x0];
        const float v11 = gplane[(y0 + 1) * kGrid + x0 + 1];
        plane[y * hw + x] = (1 - wy) * ((1 - wx) * v00 + wx * v01) +
                            wy * ((1 - wx) * v10 + wx * v11);
      }
    }
  }
  return img;
}

}  // namespace

SyntheticGenerator::SyntheticGenerator(SyntheticSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)) {
  if (spec_.num_classes == 0 || spec_.prototypes_per_class == 0 ||
      spec_.dict_size == 0 || spec_.atoms_per_class == 0) {
    throw std::invalid_argument("SyntheticGenerator: degenerate spec");
  }
  util::Rng root(seed);

  // Shared dictionary.
  dict_.reserve(spec_.dict_size);
  for (std::size_t a = 0; a < spec_.dict_size; ++a) {
    util::Rng rng = root.split(0xD1C70000ULL + a);
    dict_.push_back(smooth_field(spec_.channels, spec_.hw, rng));
  }

  // Per-(class, prototype) sparse coefficient vectors.
  const std::size_t atoms =
      std::min(spec_.atoms_per_class, spec_.dict_size);
  coeffs_.reserve(spec_.num_classes * spec_.prototypes_per_class);
  for (std::size_t c = 0; c < spec_.num_classes; ++c) {
    for (std::size_t p = 0; p < spec_.prototypes_per_class; ++p) {
      util::Rng rng = root.split(0xC0EF0000ULL + c * 1000 + p);
      std::vector<float> coeff(spec_.dict_size, 0.0f);
      for (const std::size_t a :
           rng.sample_without_replacement(spec_.dict_size, atoms)) {
        // Signed, bounded away from zero so every selected atom matters.
        const float sign = rng.uniform() < 0.5 ? -1.0f : 1.0f;
        coeff[a] = sign * static_cast<float>(rng.uniform(0.6, 1.4));
      }
      coeffs_.push_back(std::move(coeff));
    }
  }
}

std::vector<float> SyntheticGenerator::render(
    std::int64_t cls, const std::vector<float>& coeffs) const {
  const std::size_t n = image_size();
  std::vector<float> img(n, 0.0f);
  for (std::size_t a = 0; a < spec_.dict_size; ++a) {
    const float w = coeffs[a] * spec_.proto_scale;
    if (w == 0.0f) continue;
    const auto& atom = dict_[a];
    for (std::size_t i = 0; i < n; ++i) img[i] += w * atom[i];
  }

  // Class-identity grating: orientation/frequency determined by the class,
  // shared by all its prototypes.
  const std::size_t hw = spec_.hw;
  const double angle = std::numbers::pi * static_cast<double>(cls) /
                       static_cast<double>(spec_.num_classes);
  const double freq = 2.0 * std::numbers::pi *
                      (1.0 + static_cast<double>(cls % 4)) /
                      static_cast<double>(hw);
  const float cs = static_cast<float>(std::cos(angle));
  const float sn = static_cast<float>(std::sin(angle));
  for (std::size_t c = 0; c < spec_.channels; ++c) {
    const float phase =
        static_cast<float>(c) * 2.0f / static_cast<float>(spec_.channels);
    float* plane = img.data() + c * hw * hw;
    for (std::size_t y = 0; y < hw; ++y) {
      for (std::size_t x = 0; x < hw; ++x) {
        const float t =
            cs * static_cast<float>(x) + sn * static_cast<float>(y);
        plane[y * hw + x] +=
            spec_.grating_scale *
            std::sin(static_cast<float>(freq) * t + phase);
      }
    }
  }
  return img;
}

std::vector<float> SyntheticGenerator::sample(std::int64_t cls,
                                              util::Rng& rng) const {
  if (cls < 0 || static_cast<std::size_t>(cls) >= spec_.num_classes) {
    throw std::invalid_argument("SyntheticGenerator::sample: bad class");
  }
  const std::size_t which =
      spec_.prototypes_per_class == 1
          ? 0
          : static_cast<std::size_t>(rng.randint(
                0,
                static_cast<std::int64_t>(spec_.prototypes_per_class)));
  // Jitter the coefficients: intra-class variation expressed in the shared
  // feature space, not just as pixel noise.
  std::vector<float> coeff =
      coeffs_[static_cast<std::size_t>(cls) * spec_.prototypes_per_class +
              which];
  for (auto& w : coeff) {
    if (w != 0.0f) w += rng.normalf(0.0f, spec_.coeff_jitter);
  }
  std::vector<float> img = render(cls, coeff);
  for (auto& v : img) v += rng.normalf(0.0f, spec_.noise);
  return img;
}

std::vector<float> SyntheticGenerator::prototype(std::int64_t cls,
                                                 std::size_t which) const {
  return render(cls,
                coeffs_.at(static_cast<std::size_t>(cls) *
                               spec_.prototypes_per_class +
                           which));
}

}  // namespace fedclust::data
