#pragma once

// Synthetic class-conditional image generators standing in for CIFAR-10,
// CIFAR-100, FMNIST, and SVHN (the real corpora are unavailable offline;
// see DESIGN.md §1 for the substitution argument).
//
// Generative model (chosen to preserve the two properties the paper's
// comparison rests on):
//
//  1. *Shared features.* A dataset owns a dictionary of smooth "atom"
//     fields shared by all classes; each class prototype is a sparse
//     combination of atoms plus a class-specific oriented grating. Feature
//     detectors learned on any class therefore transfer to every class —
//     as in natural images — which is what makes collaboration (global or
//     per-cluster) beat isolated local training when local data is scarce.
//  2. *Class identity.* The grating plus the class's own atom coefficients
//     make same-class samples systematically closer than cross-class ones,
//     so locally trained final-layer weights encode the client's label
//     distribution (FedClust's core assumption).
//
// A sample draws one of the class's prototype coefficient vectors, jitters
// the coefficients (intra-class variation in the *shared* feature space),
// and adds pixel noise. Per-dataset knobs (resolution, channels, classes,
// prototype diversity, noise) are calibrated so relative task difficulty
// matches the paper: FMNIST easiest, then SVHN, CIFAR-10, CIFAR-100.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace fedclust::data {

struct SyntheticSpec {
  std::string name = "cifar10";
  std::size_t channels = 3;
  std::size_t hw = 16;
  std::size_t num_classes = 10;

  std::size_t dict_size = 24;          // shared feature atoms
  std::size_t atoms_per_class = 4;     // sparsity of each prototype
  std::size_t prototypes_per_class = 2;
  float coeff_jitter = 0.25f;          // per-sample coefficient noise
  float proto_scale = 1.0f;            // signal strength
  float noise = 0.6f;                  // pixel noise sigma
  float grating_scale = 0.5f;          // class-identity grating strength
};

// Presets: "cifar10", "cifar100", "fmnist", "svhn". Throws on unknown name.
SyntheticSpec dataset_spec(const std::string& name);
// All four preset names, in the paper's table order.
std::vector<std::string> benchmark_dataset_names();

class SyntheticGenerator {
 public:
  SyntheticGenerator(SyntheticSpec spec, std::uint64_t seed);

  const SyntheticSpec& spec() const { return spec_; }
  std::size_t image_size() const {
    return spec_.channels * spec_.hw * spec_.hw;
  }

  // Draws one CHW image of the given class using the caller's RNG stream.
  std::vector<float> sample(std::int64_t cls, util::Rng& rng) const;

  // The noiseless prototype (for tests / visualization).
  std::vector<float> prototype(std::int64_t cls, std::size_t which) const;

 private:
  // Renders a coefficient vector over the dictionary into pixel space and
  // adds the class grating.
  std::vector<float> render(std::int64_t cls,
                            const std::vector<float>& coeffs) const;

  SyntheticSpec spec_;
  // dict_[a]: one atom field of image_size() floats.
  std::vector<std::vector<float>> dict_;
  // coeffs_[cls * prototypes_per_class + which]: dictionary coefficients
  // (dense vector of dict_size, mostly zero).
  std::vector<std::vector<float>> coeffs_;
};

}  // namespace fedclust::data
