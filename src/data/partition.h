#pragma once

// Non-IID federated partitioning in the two regimes the paper evaluates
// (following Li et al. [19]):
//
//  * label skew (δ%): each client owns a random δ-fraction of the label
//    space and draws its samples uniformly from those labels;
//  * Dirichlet(α): each client's label distribution is a Dir(α) draw, so
//    small α concentrates each client on one or two labels.
//
// Because data is synthesized per client (DESIGN.md §1), "partitioning"
// here decides per-client label distributions and sample counts, then asks
// the generator for exactly those samples.

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"

namespace fedclust::data {

struct FederatedConfig {
  std::size_t n_clients = 100;
  std::size_t train_per_client = 50;
  std::size_t test_per_client = 20;
  // Quantity skew (Li et al.'s third non-IID axis): per-client train sizes
  // are drawn log-uniformly from [train_per_client / f, train_per_client
  // * f] with f = quantity_skew_factor. 1.0 (default) = uniform sizes.
  double quantity_skew_factor = 1.0;

  std::string partition = "skew";  // "skew" | "dirichlet" | "iid"
  double skew_fraction = 0.2;      // δ for label skew
  double dirichlet_alpha = 0.1;    // α for Dirichlet

  // 0 = each client draws its own label set / distribution independently
  // (paper-faithful). g > 0 = label sets are drawn from a pool of g distinct
  // sets, giving g ground-truth client groups — used by clustering-quality
  // tests and ablations where ARI against a known partition is needed.
  std::size_t label_set_pool = 0;
};

struct ClientData {
  Dataset train;
  Dataset test;
  // Label sampling distribution this client was assigned.
  std::vector<double> label_weights;
  // Ground-truth group if label_set_pool > 0, else the client's own index.
  std::size_t group_id = 0;
};

// Assignment-only view of one client: everything the partitioner decided
// about client i before any sample was synthesized.
struct ClientSketch {
  std::vector<double> label_weights;
  std::size_t n_train = 0;
  std::size_t n_test = 0;
  std::size_t group_id = 0;
};

// The partition as a pure function of (spec, cfg, seed): client i's data can
// be regenerated on demand, bit-identical to the eager path, without holding
// any other client in memory.
//
// The assignment stream (label sets / Dirichlet draws / quantity skew) is
// inherently sequential — client i's draws follow client i-1's — so the
// constructor replays it once (RNG draws only, no sample synthesis) and
// checkpoints the generator every kCheckpointStride clients. sketch(i) then
// replays at most kCheckpointStride clients from the nearest checkpoint;
// materialize(i) additionally synthesizes the samples from the per-client
// data stream, which was independent per client all along.
class PartitionPlan {
 public:
  PartitionPlan(SyntheticSpec spec, FederatedConfig cfg, std::uint64_t seed);

  std::size_t n_clients() const { return cfg_.n_clients; }
  const SyntheticSpec& spec() const { return spec_; }
  const FederatedConfig& cfg() const { return cfg_; }

  // Assignment decisions for client i (cheap: no sample synthesis).
  ClientSketch sketch(std::size_t i) const;
  // Full client data, bit-identical to make_federated_data(...)[i].
  ClientData materialize(std::size_t i) const;

  static constexpr std::size_t kCheckpointStride = 1024;

 private:
  // The eager path iterates the assignment stream sequentially through the
  // same replay_one/materialize_from pair, so eager and on-demand clients
  // are bit-identical by construction.
  friend std::vector<ClientData> make_federated_data(const SyntheticSpec& spec,
                                                     const FederatedConfig& cfg,
                                                     std::uint64_t seed);

  ClientData materialize_from(ClientSketch sketch, std::size_t i) const;

  // Replays client i's assignment draws from `rng` (positioned at the start
  // of client i's draws) and advances it past them.
  ClientSketch replay_one(util::Rng& rng, std::size_t i) const;

  SyntheticSpec spec_;
  FederatedConfig cfg_;
  std::uint64_t seed_;
  SyntheticGenerator gen_;
  std::vector<std::vector<double>> pool_weights_;
  // checkpoints_[k] = assignment stream positioned at client k*stride.
  std::vector<util::Rng> checkpoints_;
};

// Deterministic in (spec, cfg, seed).
std::vector<ClientData> make_federated_data(const SyntheticSpec& spec,
                                            const FederatedConfig& cfg,
                                            std::uint64_t seed);

// Ground-truth group ids (client -> group), for clustering-quality metrics.
std::vector<std::size_t> group_ids(const std::vector<ClientData>& clients);

}  // namespace fedclust::data
