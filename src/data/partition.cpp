#include "data/partition.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedclust::data {

namespace {

// δ-fraction of the label space, at least 1 label.
std::size_t labels_per_client(double skew_fraction, std::size_t num_classes) {
  const auto l = static_cast<std::size_t>(
      std::lround(skew_fraction * static_cast<double>(num_classes)));
  return std::max<std::size_t>(1, std::min(l, num_classes));
}

std::vector<double> weights_from_label_set(
    const std::vector<std::size_t>& label_set, std::size_t num_classes) {
  std::vector<double> w(num_classes, 0.0);
  for (const std::size_t l : label_set) {
    w[l] = 1.0 / static_cast<double>(label_set.size());
  }
  return w;
}

void fill_dataset(Dataset& ds, std::size_t n,
                  const std::vector<double>& label_weights,
                  const SyntheticGenerator& gen, util::Rng& rng) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::int64_t>(rng.categorical(label_weights));
    ds.add(gen.sample(cls, rng), cls);
  }
}

}  // namespace

std::vector<ClientData> make_federated_data(const SyntheticSpec& spec,
                                            const FederatedConfig& cfg,
                                            std::uint64_t seed) {
  if (cfg.n_clients == 0) {
    throw std::invalid_argument("make_federated_data: zero clients");
  }
  if (cfg.partition != "skew" && cfg.partition != "dirichlet" &&
      cfg.partition != "iid") {
    throw std::invalid_argument("make_federated_data: unknown partition " +
                                cfg.partition);
  }

  const SyntheticGenerator gen(spec, seed);
  util::Rng root(seed ^ 0x5eedf00dULL);
  util::Rng assign_rng = root.split(0);

  // Pre-draw the label-set pool when ground-truth groups are requested.
  std::vector<std::vector<double>> pool_weights;
  if (cfg.label_set_pool > 0) {
    for (std::size_t g = 0; g < cfg.label_set_pool; ++g) {
      if (cfg.partition == "dirichlet") {
        pool_weights.push_back(
            assign_rng.dirichlet(cfg.dirichlet_alpha, spec.num_classes));
      } else if (cfg.partition == "skew") {
        const auto set = assign_rng.sample_without_replacement(
            spec.num_classes,
            labels_per_client(cfg.skew_fraction, spec.num_classes));
        pool_weights.push_back(
            weights_from_label_set(set, spec.num_classes));
      } else {  // iid pool degenerates to uniform
        pool_weights.emplace_back(spec.num_classes,
                                  1.0 / static_cast<double>(spec.num_classes));
      }
    }
  }

  std::vector<ClientData> clients;
  clients.reserve(cfg.n_clients);
  for (std::size_t i = 0; i < cfg.n_clients; ++i) {
    ClientData cd{Dataset(spec.channels, spec.hw, spec.num_classes),
                  Dataset(spec.channels, spec.hw, spec.num_classes),
                  {},
                  i};
    if (cfg.label_set_pool > 0) {
      cd.group_id = static_cast<std::size_t>(assign_rng.randint(
          0, static_cast<std::int64_t>(cfg.label_set_pool)));
      cd.label_weights = pool_weights[cd.group_id];
    } else if (cfg.partition == "skew") {
      const auto set = assign_rng.sample_without_replacement(
          spec.num_classes,
          labels_per_client(cfg.skew_fraction, spec.num_classes));
      cd.label_weights = weights_from_label_set(set, spec.num_classes);
    } else if (cfg.partition == "dirichlet") {
      cd.label_weights =
          assign_rng.dirichlet(cfg.dirichlet_alpha, spec.num_classes);
    } else {  // iid
      cd.label_weights.assign(spec.num_classes,
                              1.0 / static_cast<double>(spec.num_classes));
    }

    // Per-client stream: client data never depends on other clients.
    util::Rng data_rng = root.split(1000 + i);
    std::size_t n_train = cfg.train_per_client;
    if (cfg.quantity_skew_factor > 1.0) {
      // Log-uniform draw keeps the geometric mean at train_per_client.
      const double lo = std::log(1.0 / cfg.quantity_skew_factor);
      const double hi = std::log(cfg.quantity_skew_factor);
      n_train = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::lround(
                 static_cast<double>(cfg.train_per_client) *
                 std::exp(assign_rng.uniform(lo, hi)))));
    } else if (cfg.quantity_skew_factor < 1.0) {
      throw std::invalid_argument(
          "make_federated_data: quantity_skew_factor must be >= 1");
    }
    fill_dataset(cd.train, n_train, cd.label_weights, gen, data_rng);
    fill_dataset(cd.test, cfg.test_per_client, cd.label_weights, gen,
                 data_rng);
    clients.push_back(std::move(cd));
  }
  return clients;
}

std::vector<std::size_t> group_ids(const std::vector<ClientData>& clients) {
  std::vector<std::size_t> ids;
  ids.reserve(clients.size());
  for (const auto& c : clients) ids.push_back(c.group_id);
  return ids;
}

}  // namespace fedclust::data
