#include "data/partition.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace fedclust::data {

namespace {

// δ-fraction of the label space, at least 1 label.
std::size_t labels_per_client(double skew_fraction, std::size_t num_classes) {
  const auto l = static_cast<std::size_t>(
      std::lround(skew_fraction * static_cast<double>(num_classes)));
  return std::max<std::size_t>(1, std::min(l, num_classes));
}

std::vector<double> weights_from_label_set(
    const std::vector<std::size_t>& label_set, std::size_t num_classes) {
  std::vector<double> w(num_classes, 0.0);
  for (const std::size_t l : label_set) {
    w[l] = 1.0 / static_cast<double>(label_set.size());
  }
  return w;
}

void fill_dataset(Dataset& ds, std::size_t n,
                  const std::vector<double>& label_weights,
                  const SyntheticGenerator& gen, util::Rng& rng) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::int64_t>(rng.categorical(label_weights));
    ds.add(gen.sample(cls, rng), cls);
  }
}

}  // namespace

PartitionPlan::PartitionPlan(SyntheticSpec spec, FederatedConfig cfg,
                             std::uint64_t seed)
    : spec_(std::move(spec)),
      cfg_(std::move(cfg)),
      seed_(seed),
      gen_(spec_, seed) {
  if (cfg_.n_clients == 0) {
    throw std::invalid_argument("make_federated_data: zero clients");
  }
  if (cfg_.partition != "skew" && cfg_.partition != "dirichlet" &&
      cfg_.partition != "iid") {
    throw std::invalid_argument("make_federated_data: unknown partition " +
                                cfg_.partition);
  }
  if (cfg_.quantity_skew_factor < 1.0) {
    throw std::invalid_argument(
        "make_federated_data: quantity_skew_factor must be >= 1");
  }

  const util::Rng root(seed_ ^ 0x5eedf00dULL);
  util::Rng assign_rng = root.split(0);

  // Pre-draw the label-set pool when ground-truth groups are requested.
  if (cfg_.label_set_pool > 0) {
    for (std::size_t g = 0; g < cfg_.label_set_pool; ++g) {
      if (cfg_.partition == "dirichlet") {
        pool_weights_.push_back(
            assign_rng.dirichlet(cfg_.dirichlet_alpha, spec_.num_classes));
      } else if (cfg_.partition == "skew") {
        const auto set = assign_rng.sample_without_replacement(
            spec_.num_classes,
            labels_per_client(cfg_.skew_fraction, spec_.num_classes));
        pool_weights_.push_back(weights_from_label_set(set, spec_.num_classes));
      } else {  // iid pool degenerates to uniform
        pool_weights_.emplace_back(
            spec_.num_classes, 1.0 / static_cast<double>(spec_.num_classes));
      }
    }
  }

  // One assignment-stream sweep: draws only, no sample synthesis. Costs
  // O(n) RNG draws once; each later sketch(i) replays at most one stride.
  checkpoints_.reserve(cfg_.n_clients / kCheckpointStride + 1);
  for (std::size_t i = 0; i < cfg_.n_clients; ++i) {
    if (i % kCheckpointStride == 0) checkpoints_.push_back(assign_rng);
    (void)replay_one(assign_rng, i);
  }
}

ClientSketch PartitionPlan::replay_one(util::Rng& rng, std::size_t i) const {
  ClientSketch sk;
  sk.group_id = i;
  if (cfg_.label_set_pool > 0) {
    sk.group_id = static_cast<std::size_t>(
        rng.randint(0, static_cast<std::int64_t>(cfg_.label_set_pool)));
    sk.label_weights = pool_weights_[sk.group_id];
  } else if (cfg_.partition == "skew") {
    const auto set = rng.sample_without_replacement(
        spec_.num_classes,
        labels_per_client(cfg_.skew_fraction, spec_.num_classes));
    sk.label_weights = weights_from_label_set(set, spec_.num_classes);
  } else if (cfg_.partition == "dirichlet") {
    sk.label_weights = rng.dirichlet(cfg_.dirichlet_alpha, spec_.num_classes);
  } else {  // iid
    sk.label_weights.assign(spec_.num_classes,
                            1.0 / static_cast<double>(spec_.num_classes));
  }

  sk.n_train = cfg_.train_per_client;
  if (cfg_.quantity_skew_factor > 1.0) {
    // Log-uniform draw keeps the geometric mean at train_per_client.
    const double lo = std::log(1.0 / cfg_.quantity_skew_factor);
    const double hi = std::log(cfg_.quantity_skew_factor);
    sk.n_train = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::lround(static_cast<double>(cfg_.train_per_client) *
                           std::exp(rng.uniform(lo, hi)))));
  }
  sk.n_test = cfg_.test_per_client;
  return sk;
}

ClientSketch PartitionPlan::sketch(std::size_t i) const {
  if (i >= cfg_.n_clients) {
    throw std::out_of_range("PartitionPlan::sketch: client out of range");
  }
  util::Rng rng = checkpoints_[i / kCheckpointStride];
  for (std::size_t j = (i / kCheckpointStride) * kCheckpointStride; j < i;
       ++j) {
    (void)replay_one(rng, j);
  }
  return replay_one(rng, i);
}

ClientData PartitionPlan::materialize_from(ClientSketch sketch,
                                           std::size_t i) const {
  ClientData cd{Dataset(spec_.channels, spec_.hw, spec_.num_classes),
                Dataset(spec_.channels, spec_.hw, spec_.num_classes),
                std::move(sketch.label_weights), sketch.group_id};
  // Per-client stream: client data never depends on other clients.
  util::Rng data_rng = util::Rng(seed_ ^ 0x5eedf00dULL).split(1000 + i);
  fill_dataset(cd.train, sketch.n_train, cd.label_weights, gen_, data_rng);
  fill_dataset(cd.test, sketch.n_test, cd.label_weights, gen_, data_rng);
  return cd;
}

ClientData PartitionPlan::materialize(std::size_t i) const {
  return materialize_from(sketch(i), i);
}

std::vector<ClientData> make_federated_data(const SyntheticSpec& spec,
                                            const FederatedConfig& cfg,
                                            std::uint64_t seed) {
  const PartitionPlan plan(spec, cfg, seed);
  util::Rng assign_rng = plan.checkpoints_.front();
  std::vector<ClientData> clients;
  clients.reserve(cfg.n_clients);
  for (std::size_t i = 0; i < cfg.n_clients; ++i) {
    clients.push_back(
        plan.materialize_from(plan.replay_one(assign_rng, i), i));
  }
  return clients;
}

std::vector<std::size_t> group_ids(const std::vector<ClientData>& clients) {
  std::vector<std::size_t> ids;
  ids.reserve(clients.size());
  for (const auto& c : clients) ids.push_back(c.group_id);
  return ids;
}

}  // namespace fedclust::data
