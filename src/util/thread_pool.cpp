#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/config.h"

namespace fedclust::util {

namespace {

// Set while this thread executes a parallel_for chunk; consulted by nested
// parallel_for calls, which then degrade to inline execution.
thread_local bool tls_in_parallel_region = false;

struct RegionGuard {
  bool prev = tls_in_parallel_region;
  RegionGuard() { tls_in_parallel_region = true; }
  ~RegionGuard() { tls_in_parallel_region = prev; }
};

}  // namespace

bool ThreadPool::in_parallel_region() { return tls_in_parallel_region; }

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::thread::hardware_concurrency();
    if (n_threads == 0) n_threads = 1;
  }
  // The calling thread participates in parallel_for, so a pool of size n
  // needs only n-1 workers to keep n chunks in flight.
  const std::size_t n_workers = n_threads > 0 ? n_threads - 1 : 0;
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this, i] {
      // Label once at startup so exported traces show which pool worker a
      // span ran on (Perfetto's per-track view).
      obs::SpanTracer::instance().set_thread_label(
          "pool-worker-" + std::to_string(i));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t n_chunks = std::min(n, workers_.size() + 1);
  // Nested dispatch from inside a chunk runs inline: the outer loop already
  // occupies the workers, and queueing here could only add latency (or, for
  // a pool waiting on its own queue, deadlock).
  if (n_chunks <= 1 || tls_in_parallel_region) {
    if (tls_in_parallel_region) {
      OBS_COUNTER_ADD("pool.nested_inline_dispatches", 1);
    }
    fn(begin, end);
    return;
  }
  OBS_COUNTER_ADD("pool.parallel_dispatches", 1);

  struct Shared {
    std::atomic<std::size_t> pending{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mu;
  } shared;

  const std::size_t chunk = (n + n_chunks - 1) / n_chunks;
  shared.pending.store(n_chunks - 1, std::memory_order_relaxed);

  // Chunks 1..n_chunks-1 go to the workers; chunk 0 runs on this thread.
  for (std::size_t c = 1; c < n_chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    submit([&shared, &fn, lo, hi] {
      try {
        if (lo < hi) {
          const RegionGuard region;
          OBS_SPAN_ARG("pool.chunk", hi - lo);
          OBS_GAUGE_ADD("pool.busy_workers", 1);
          fn(lo, hi);
          OBS_GAUGE_ADD("pool.busy_workers", -1);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(shared.error_mu);
        if (!shared.error) shared.error = std::current_exception();
      }
      if (shared.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lock(shared.done_mu);
        shared.done_cv.notify_one();
      }
    });
  }

  try {
    const RegionGuard region;
    OBS_SPAN_ARG("pool.chunk", chunk);
    OBS_GAUGE_ADD("pool.busy_workers", 1);
    fn(begin, std::min(end, begin + chunk));
    OBS_GAUGE_ADD("pool.busy_workers", -1);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(shared.error_mu);
    if (!shared.error) shared.error = std::current_exception();
  }

  {
    std::unique_lock<std::mutex> lock(shared.done_mu);
    shared.done_cv.wait(lock, [&shared] {
      return shared.pending.load(std::memory_order_acquire) == 0;
    });
  }
  if (shared.error) std::rethrow_exception(shared.error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

namespace {

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& global_pool() {
  auto& slot = global_pool_slot();
  if (!slot) {
    slot = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(env_int("FEDCLUST_THREADS", 0)));
  }
  return *slot;
}

void reset_global_pool(std::size_t n_threads) {
  auto& slot = global_pool_slot();
  slot.reset();  // join the old workers before the replacement spins up
  slot = std::make_unique<ThreadPool>(n_threads);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  global_pool().parallel_for(begin, end, fn);
}

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  global_pool().parallel_for_chunked(begin, end, fn);
}

}  // namespace fedclust::util
