#pragma once

// Cooperative shutdown for the long-running binaries (fedclust_sim,
// fedclust_server, fedclust_worker).
//
// install_shutdown_handler() routes SIGINT/SIGTERM to a single async-safe
// flag; the round loop (FlAlgorithm::run) polls it at round boundaries and
// stops cleanly — final checkpoint written, journal/metrics/trace flushed,
// exit 0 — instead of losing the run mid-round. A second signal restores
// the default disposition, so a stuck process still dies on the next ^C.

namespace fedclust::util {

// Idempotent; installs SA_RESTART handlers for SIGINT and SIGTERM.
void install_shutdown_handler();

// True once a handled signal arrived (or request_shutdown() was called).
bool shutdown_requested();

// Programmatic trigger — lets tests and the worker loop share the flag.
void request_shutdown();

// Clears the flag (tests only; real processes exit instead).
void reset_shutdown();

}  // namespace fedclust::util
