// Hardware CRC32C (Castagnoli) inner loop. This translation unit is the
// only one compiled with the CRC instruction extensions enabled
// (-msse4.2 on x86, -march=armv8-a+crc on AArch64); callers must gate on
// crc32c_hw_compiled() plus a runtime ISA check before taking this path
// (util::crc32c_extend does). Both instruction sets implement the same
// reflected 0x82F63B78 polynomial as the table in serialization.cpp, so
// hardware and table results are bit-identical — asserted per length in
// simd_kernel_test.
#include "util/cpu.h"

#include <cstring>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__SSE4_2__)

#include <nmmintrin.h>

namespace fedclust::util {

bool crc32c_hw_compiled() { return true; }

std::uint32_t crc32c_raw_hw(std::uint32_t crc, const std::uint8_t* data,
                            std::size_t n) {
  // 8 bytes per crc32q; the instruction consumes the u64 LSB-first, which
  // on this (little-endian) target is exactly the byte order in memory.
  std::uint64_t c = crc;
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, data, sizeof(v));
    c = _mm_crc32_u64(c, v);
    data += 8;
    n -= 8;
  }
  auto c32 = static_cast<std::uint32_t>(c);
  while (n-- > 0) c32 = _mm_crc32_u8(c32, *data++);
  return c32;
}

}  // namespace fedclust::util

#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)

#include <arm_acle.h>
#if defined(__linux__)
#include <sys/auxv.h>
#endif

namespace fedclust::util {

bool crc32c_hw_compiled() {
  // The CRC32 extension is optional in ARMv8.0, so "compiled in" is only
  // usable when the running core actually has it.
#if defined(__linux__) && defined(HWCAP_CRC32)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#else
  return true;
#endif
}

std::uint32_t crc32c_raw_hw(std::uint32_t crc, const std::uint8_t* data,
                            std::size_t n) {
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, data, sizeof(v));
    crc = __crc32cd(crc, v);
    data += 8;
    n -= 8;
  }
  while (n-- > 0) crc = __crc32cb(crc, *data++);
  return crc;
}

}  // namespace fedclust::util

#else

namespace fedclust::util {

bool crc32c_hw_compiled() { return false; }

std::uint32_t crc32c_raw_hw(std::uint32_t crc, const std::uint8_t* data,
                            std::size_t n) {
  return crc32c_raw_table(crc, data, n);
}

}  // namespace fedclust::util

#endif
