#pragma once

// Binary (de)serialization for checkpoints, wire envelopes, and experiment
// traces, plus a small CSV writer. All multi-byte fields are explicitly
// little-endian regardless of host byte order, so checkpoint files and wire
// payloads are portable across machines; `crc32c` provides the Castagnoli
// checksum used by both the wire layer and model checkpoints.

#include <cstdint>
#include <cstring>
#include <ostream>
#include <istream>
#include <string>
#include <vector>

namespace fedclust::util {

// ------------------------------------------------------------------
// Little-endian byte-buffer primitives.
//
// `put_*` append to a byte vector; `get_*` read from a raw pointer the
// caller has already bounds-checked. These are the shared encoding
// primitives for fl::wire envelopes and nn::checkpoint files.

inline void put_u16_le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

inline void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

inline void put_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

inline void put_f32_le(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32_le(out, bits);
}

inline std::uint16_t get_u16_le(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

inline std::uint32_t get_u32_le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

inline std::uint64_t get_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

inline float get_f32_le(const std::uint8_t* p) {
  const std::uint32_t bits = get_u32_le(p);
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// `store_*` write into a caller-sized buffer at a raw pointer — the bulk
// (codec kernel) counterparts of `put_*`, which append byte-at-a-time.

inline void store_u16_le(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
}

inline void store_u32_le(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
  }
}

inline void store_f32_le(std::uint8_t* p, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  store_u32_le(p, bits);
}

// True on little-endian hosts, where multi-byte LE fields can be bulk
// memcpy'd instead of assembled byte-by-byte. Every wire/checkpoint byte
// must still go through the `put_`/`store_`/`get_` primitives or be guarded
// by this check — big-endian hosts take the portable path.
inline constexpr bool host_is_little_endian() {
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
  return __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__;
#else
  return false;
#endif
}

// ------------------------------------------------------------------
// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected). Known answer:
// crc32c over the ASCII bytes of "123456789" is 0xE3069283.

// One-shot checksum over a byte range.
std::uint32_t crc32c(const std::uint8_t* data, std::size_t n);

// Incremental form: seed with 0, feed ranges in order, identical to the
// one-shot checksum over the concatenation.
std::uint32_t crc32c_extend(std::uint32_t crc, const std::uint8_t* data,
                            std::size_t n);

// ------------------------------------------------------------------
// Stream writers. Every field goes through the little-endian primitives
// above; on little-endian hosts the byte stream is identical to the old
// host-order format, on big-endian hosts it is now portable.

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}

  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_vec(const std::vector<float>& v);
  void write_f64_vec(const std::vector<double>& v);
  void write_bytes(const std::uint8_t* data, std::size_t n);

 private:
  std::ostream& os_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is) : is_(is) {}

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_vec();
  std::vector<double> read_f64_vec();
  std::vector<std::uint8_t> read_bytes(std::size_t n);

 private:
  void read_raw(void* dst, std::size_t n);
  std::istream& is_;
};

// Appends rows to a CSV file; writes the header on construction.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);
  void add_row(const std::vector<std::string>& cells);

 private:
  std::string path_;
  std::size_t n_cols_;
};

}  // namespace fedclust::util
