#pragma once

// Binary (de)serialization for checkpoints and experiment traces, plus a
// small CSV writer. Format is little-endian, host-order (the simulator only
// ever reads its own output on the same machine).

#include <cstdint>
#include <ostream>
#include <istream>
#include <string>
#include <vector>

namespace fedclust::util {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}

  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_vec(const std::vector<float>& v);
  void write_f64_vec(const std::vector<double>& v);

 private:
  std::ostream& os_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is) : is_(is) {}

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_vec();
  std::vector<double> read_f64_vec();

 private:
  void read_raw(void* dst, std::size_t n);
  std::istream& is_;
};

// Appends rows to a CSV file; writes the header on construction.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);
  void add_row(const std::vector<std::string>& cells);

 private:
  std::string path_;
  std::size_t n_cols_;
};

}  // namespace fedclust::util
