#include "util/serialization.h"

#include <fstream>
#include <stdexcept>

namespace fedclust::util {

void BinaryWriter::write_u32(std::uint32_t v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::write_u64(std::uint64_t v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::write_i64(std::int64_t v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::write_f32(float v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::write_f64(double v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  os_.write(s.data(), static_cast<std::streamsize>(s.size()));
}
void BinaryWriter::write_f32_vec(const std::vector<float>& v) {
  write_u64(v.size());
  os_.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}
void BinaryWriter::write_f64_vec(const std::vector<double>& v) {
  write_u64(v.size());
  os_.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

void BinaryReader::read_raw(void* dst, std::size_t n) {
  is_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is_.gcount()) != n) {
    throw std::runtime_error("BinaryReader: truncated stream");
  }
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v;
  read_raw(&v, sizeof(v));
  return v;
}
std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v;
  read_raw(&v, sizeof(v));
  return v;
}
std::int64_t BinaryReader::read_i64() {
  std::int64_t v;
  read_raw(&v, sizeof(v));
  return v;
}
float BinaryReader::read_f32() {
  float v;
  read_raw(&v, sizeof(v));
  return v;
}
double BinaryReader::read_f64() {
  double v;
  read_raw(&v, sizeof(v));
  return v;
}
std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  std::string s(n, '\0');
  if (n > 0) read_raw(s.data(), n);
  return s;
}
std::vector<float> BinaryReader::read_f32_vec() {
  const std::uint64_t n = read_u64();
  std::vector<float> v(n);
  if (n > 0) read_raw(v.data(), n * sizeof(float));
  return v;
}
std::vector<double> BinaryReader::read_f64_vec() {
  const std::uint64_t n = read_u64();
  std::vector<double> v(n);
  if (n > 0) read_raw(v.data(), n * sizeof(double));
  return v;
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}

void append_line(const std::string& path,
                 const std::vector<std::string>& cells, bool truncate) {
  std::ofstream os(path, truncate ? std::ios::trunc : std::ios::app);
  if (!os) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os << ',';
    os << csv_escape(cells[i]);
  }
  os << '\n';
  // Surface write failures (full disk, file removed mid-run) too: a trace
  // that silently comes back empty is worse than an aborted run.
  os.flush();
  if (!os) throw std::runtime_error("CsvWriter: write failed for " + path);
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : path_(path), n_cols_(columns.size()) {
  append_line(path_, columns, /*truncate=*/true);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != n_cols_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  append_line(path_, cells, /*truncate=*/false);
}

}  // namespace fedclust::util
