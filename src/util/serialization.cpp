#include "util/serialization.h"

#include <array>
#include <fstream>
#include <stdexcept>

#include "util/cpu.h"

namespace fedclust::util {

// ------------------------------------------------------------------ crc32c

namespace {

// Table-driven CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the
// golden reference the SSE4.2/ARMv8 hardware loop in crc32c_hw.cpp must
// match bit for bit (it implements the same polynomial in silicon).
std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  return table;
}

}  // namespace

std::uint32_t crc32c_raw_table(std::uint32_t crc, const std::uint8_t* data,
                               std::size_t n) {
  const auto& table = crc32c_table();
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

std::uint32_t crc32c_extend(std::uint32_t crc, const std::uint8_t* data,
                            std::size_t n) {
  // FEDCLUST_ISA=scalar pins the table path (scalar-is-golden contract);
  // any SIMD ISA implies the CRC instructions are runtime-available when
  // the build carries them. Both paths return identical checksums.
  crc = ~crc;
  if (crc32c_hw_compiled() && active_isa() != SimdIsa::kScalar) {
    crc = crc32c_raw_hw(crc, data, n);
  } else {
    crc = crc32c_raw_table(crc, data, n);
  }
  return ~crc;
}

std::uint32_t crc32c(const std::uint8_t* data, std::size_t n) {
  return crc32c_extend(0, data, n);
}

// ------------------------------------------------------------------ writer

namespace {

// Stages a scalar through the LE byte primitives so stream output is
// byte-order independent.
template <typename PutFn>
void write_le(std::ostream& os, PutFn put) {
  std::vector<std::uint8_t> buf;
  put(buf);
  os.write(reinterpret_cast<const char*>(buf.data()),
           static_cast<std::streamsize>(buf.size()));
}

}  // namespace

void BinaryWriter::write_u32(std::uint32_t v) {
  write_le(os_, [v](std::vector<std::uint8_t>& b) { put_u32_le(b, v); });
}
void BinaryWriter::write_u64(std::uint64_t v) {
  write_le(os_, [v](std::vector<std::uint8_t>& b) { put_u64_le(b, v); });
}
void BinaryWriter::write_i64(std::int64_t v) {
  write_u64(static_cast<std::uint64_t>(v));
}
void BinaryWriter::write_f32(float v) {
  write_le(os_, [v](std::vector<std::uint8_t>& b) { put_f32_le(b, v); });
}
void BinaryWriter::write_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(bits);
}
void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  os_.write(s.data(), static_cast<std::streamsize>(s.size()));
}
void BinaryWriter::write_f32_vec(const std::vector<float>& v) {
  write_u64(v.size());
  std::vector<std::uint8_t> buf;
  buf.reserve(v.size() * sizeof(float));
  for (const float x : v) put_f32_le(buf, x);
  write_bytes(buf.data(), buf.size());
}
void BinaryWriter::write_f64_vec(const std::vector<double>& v) {
  write_u64(v.size());
  for (const double x : v) write_f64(x);
}
void BinaryWriter::write_bytes(const std::uint8_t* data, std::size_t n) {
  os_.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(n));
}

// ------------------------------------------------------------------ reader

void BinaryReader::read_raw(void* dst, std::size_t n) {
  is_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is_.gcount()) != n) {
    throw std::runtime_error("BinaryReader: truncated stream");
  }
}

std::uint32_t BinaryReader::read_u32() {
  std::uint8_t b[4];
  read_raw(b, sizeof(b));
  return get_u32_le(b);
}
std::uint64_t BinaryReader::read_u64() {
  std::uint8_t b[8];
  read_raw(b, sizeof(b));
  return get_u64_le(b);
}
std::int64_t BinaryReader::read_i64() {
  return static_cast<std::int64_t>(read_u64());
}
float BinaryReader::read_f32() {
  std::uint8_t b[4];
  read_raw(b, sizeof(b));
  return get_f32_le(b);
}
double BinaryReader::read_f64() {
  const std::uint64_t bits = read_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}
std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  std::string s(n, '\0');
  if (n > 0) read_raw(s.data(), n);
  return s;
}
std::vector<float> BinaryReader::read_f32_vec() {
  const std::uint64_t n = read_u64();
  const std::vector<std::uint8_t> buf = read_bytes(n * sizeof(float));
  std::vector<float> v(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    v[i] = get_f32_le(buf.data() + i * sizeof(float));
  }
  return v;
}
std::vector<double> BinaryReader::read_f64_vec() {
  const std::uint64_t n = read_u64();
  std::vector<double> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = read_f64();
  return v;
}
std::vector<std::uint8_t> BinaryReader::read_bytes(std::size_t n) {
  std::vector<std::uint8_t> buf(n);
  if (n > 0) read_raw(buf.data(), n);
  return buf;
}

// ------------------------------------------------------------------ csv

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}

void append_line(const std::string& path,
                 const std::vector<std::string>& cells, bool truncate) {
  std::ofstream os(path, truncate ? std::ios::trunc : std::ios::app);
  if (!os) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os << ',';
    os << csv_escape(cells[i]);
  }
  os << '\n';
  // Surface write failures (full disk, file removed mid-run) too: a trace
  // that silently comes back empty is worse than an aborted run.
  os.flush();
  if (!os) throw std::runtime_error("CsvWriter: write failed for " + path);
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : path_(path), n_cols_(columns.size()) {
  append_line(path_, columns, /*truncate=*/true);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != n_cols_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  append_line(path_, cells, /*truncate=*/false);
}

}  // namespace fedclust::util
