#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "util/config.h"
#include "util/timer.h"

namespace fedclust::util {

namespace {

LogLevel parse_level(const std::string& s) {
  if (s == "trace") return LogLevel::kTrace;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_level{
    parse_level(env_string("FEDCLUST_LOG_LEVEL", "info"))};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

std::mutex& output_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) { return level >= log_level(); }

LogLine::LogLine(LogLevel level) : level_(level) {}

LogLine::~LogLine() {
  const std::lock_guard<std::mutex> lock(output_mutex());
  std::fprintf(stderr, "[%8.3f %s] %s\n", process_elapsed_seconds(),
               level_tag(level_), os_.str().c_str());
}

}  // namespace fedclust::util
