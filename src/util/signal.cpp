#include "util/signal.h"

#include <csignal>

#include <atomic>

namespace fedclust::util {

namespace {

std::atomic<bool> g_shutdown{false};

// Async-signal-safe: one relaxed store plus re-arming the default
// disposition so a second signal kills the process the traditional way.
void on_signal(int sig) {
  g_shutdown.store(true, std::memory_order_relaxed);
  std::signal(sig, SIG_DFL);
}

}  // namespace

void install_shutdown_handler() {
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  // SA_RESTART keeps in-flight reads/writes (checkpoint I/O, socket frames)
  // from failing with EINTR; the flag is polled at round boundaries.
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

void request_shutdown() { g_shutdown.store(true, std::memory_order_relaxed); }

void reset_shutdown() { g_shutdown.store(false, std::memory_order_relaxed); }

}  // namespace fedclust::util
