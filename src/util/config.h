#pragma once

// Environment-variable helpers and a small CLI argument parser shared by the
// examples and the benchmark harnesses.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fedclust::util {

// Environment lookups with typed defaults. Malformed values throw.
std::string env_string(const std::string& name, const std::string& def);
std::int64_t env_int(const std::string& name, std::int64_t def);
double env_double(const std::string& name, double def);
bool env_bool(const std::string& name, bool def);

// Parses "--key=value" and "--key value" style flags plus bare "--flag"
// booleans. Unknown flags throw so typos surface immediately.
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  // Registration: call before parse(). The string form of the default is
  // shown in --help output.
  void add_flag(const std::string& name, const std::string& help);
  void add_option(const std::string& name, const std::string& help,
                  const std::string& def);

  // Returns false if --help was requested (help text already printed).
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::string str(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  double real(const std::string& name) const;

  std::string help() const;

 private:
  struct Entry {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool flag_set = false;
  };
  const Entry& lookup(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

}  // namespace fedclust::util
