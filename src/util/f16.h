#pragma once

// Scalar IEEE 754 binary16 <-> binary32 conversions with round-to-nearest-
// even. These are the golden reference for the vectorized F16C kernels in
// src/tensor/simd_*.cpp (which must match them bit for bit, including NaN
// payloads — the SIMD paths patch NaN lanes through these functions) and
// the implementation behind fl::wire::f32_to_f16 / f16_to_f32.

#include <cstdint>
#include <cstring>

namespace fedclust::util {

inline std::uint16_t f32_to_f16(float v) {
  std::uint32_t f;
  std::memcpy(&f, &v, sizeof(f));
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  f &= 0x7fffffffu;

  if (f >= 0x7f800000u) {  // inf / nan
    const std::uint32_t mant = f & 0x7fffffu;
    if (mant == 0) return static_cast<std::uint16_t>(sign | 0x7c00u);
    const std::uint32_t hm = mant >> 13;
    return static_cast<std::uint16_t>(sign | 0x7c00u | (hm ? hm : 1u));
  }

  const std::int32_t exp = static_cast<std::int32_t>(f >> 23) - 127;
  const std::uint32_t mant = f & 0x7fffffu;
  if (exp >= 16) return static_cast<std::uint16_t>(sign | 0x7c00u);

  if (exp >= -14) {
    // Normal half: drop 13 mantissa bits with round-to-nearest-even. A
    // mantissa carry propagates into the exponent field, and an exponent
    // carry out of range lands exactly on the inf encoding.
    const std::uint32_t hexp = static_cast<std::uint32_t>(exp + 15);
    std::uint32_t combined = (hexp << 10) | (mant >> 13);
    const std::uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (combined & 1u))) ++combined;
    return static_cast<std::uint16_t>(sign | combined);
  }

  if (exp >= -25) {
    // Subnormal half: value = q * 2^-24 with RNE on the shifted-out bits.
    const std::uint32_t full = mant | 0x800000u;
    const std::uint32_t shift = static_cast<std::uint32_t>(-1 - exp);  // 14..24
    std::uint32_t q = full >> shift;
    const std::uint32_t rem = full & ((1u << shift) - 1u);
    const std::uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (q & 1u))) ++q;
    return static_cast<std::uint16_t>(sign | q);
  }

  return static_cast<std::uint16_t>(sign);  // underflow to signed zero
}

inline float f16_to_f32(std::uint16_t h) {
  const std::uint32_t sign = (std::uint32_t{h} & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x3ffu;
  std::uint32_t bits;
  if (exp == 0x1fu) {
    bits = sign | 0x7f800000u | (mant << 13);
  } else if (exp != 0) {
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  } else if (mant != 0) {
    // Subnormal half: normalize into a float with an implicit leading 1.
    std::uint32_t e = 113;
    while (!(mant & 0x400u)) {
      mant <<= 1;
      --e;
    }
    bits = sign | (e << 23) | ((mant & 0x3ffu) << 13);
  } else {
    bits = sign;
  }
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace fedclust::util
