#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace fedclust::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

RngState Rng::state() const {
  RngState st;
  st.seed = seed_;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.has_cached_normal = has_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

Rng Rng::from_state(const RngState& st) {
  Rng rng(st.seed);
  for (int i = 0; i < 4; ++i) rng.s_[i] = st.s[i];
  rng.has_cached_normal_ = st.has_cached_normal;
  rng.cached_normal_ = st.cached_normal;
  return rng;
}

Rng Rng::split(std::uint64_t stream) const {
  // Mix seed and stream through splitmix so that nearby (seed, stream)
  // pairs land on unrelated states.
  std::uint64_t sm = seed_ ^ (0x9e3779b97f4a7c15ULL + stream);
  const std::uint64_t mixed = splitmix64(sm) ^ splitmix64(sm);
  return Rng(mixed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits → uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::randint(std::int64_t lo, std::int64_t hi) {
  assert(lo < hi);
  const auto range = static_cast<std::uint64_t>(hi - lo);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::gamma(double shape) {
  if (shape <= 0.0) throw std::invalid_argument("gamma: shape must be > 0");
  if (shape < 1.0) {
    // Boost the shape above 1 and correct with a power of a uniform.
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::dirichlet(double alpha, std::size_t k) {
  std::vector<double> p(k);
  double sum = 0.0;
  for (auto& pi : p) {
    pi = gamma(alpha);
    sum += pi;
  }
  if (sum <= 0.0) {
    // Degenerate draw (all gammas underflowed); fall back to uniform.
    for (auto& pi : p) pi = 1.0 / static_cast<double>(k);
    return p;
  }
  for (auto& pi : p) pi /= sum;
  return p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("categorical: weights sum to zero");
  }
  const double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  // Partial Fisher–Yates over an index vector: O(n) setup, O(k) draws.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        randint(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace fedclust::util
