#include "util/cpu.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace fedclust::util {

namespace {

// -1 = not yet resolved; otherwise the int value of the active SimdIsa.
std::atomic<int> g_isa{-1};
std::atomic<bool> g_fast_math{false};

SimdIsa resolve_isa() {
  const char* env = std::getenv("FEDCLUST_ISA");
  if (env != nullptr && *env != '\0') {
    const std::string v(env);
    SimdIsa want;
    if (v == "scalar") {
      want = SimdIsa::kScalar;
    } else if (v == "avx2") {
      want = SimdIsa::kAvx2;
    } else if (v == "avx512") {
      want = SimdIsa::kAvx512;
    } else if (v == "neon") {
      want = SimdIsa::kNeon;
    } else {
      throw std::runtime_error("FEDCLUST_ISA=" + v +
                               ": unknown ISA (expected scalar, avx2, "
                               "avx512, or neon)");
    }
    if (!isa_supported(want)) {
      throw std::runtime_error("FEDCLUST_ISA=" + v +
                               ": ISA not supported on this host");
    }
    return want;
  }
  return best_supported_isa();
}

}  // namespace

const char* isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar: return "scalar";
    case SimdIsa::kAvx2: return "avx2";
    case SimdIsa::kAvx512: return "avx512";
    case SimdIsa::kNeon: return "neon";
  }
  return "unknown";
}

bool isa_supported(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      // The AVX2 kernels also use FMA (fast-math GEMM) and F16C (wire
      // codec), so all three must be present before the table is eligible.
      return __builtin_cpu_supports("avx2") &&
             __builtin_cpu_supports("fma") && __builtin_cpu_supports("f16c");
#else
      return false;
#endif
    case SimdIsa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return isa_supported(SimdIsa::kAvx2) &&
             __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl");
#else
      return false;
#endif
    case SimdIsa::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is baseline on AArch64.
#else
      return false;
#endif
  }
  return false;
}

SimdIsa best_supported_isa() {
  if (isa_supported(SimdIsa::kAvx512)) return SimdIsa::kAvx512;
  if (isa_supported(SimdIsa::kAvx2)) return SimdIsa::kAvx2;
  if (isa_supported(SimdIsa::kNeon)) return SimdIsa::kNeon;
  return SimdIsa::kScalar;
}

SimdIsa active_isa() {
  int cur = g_isa.load(std::memory_order_acquire);
  if (cur < 0) {
    const SimdIsa resolved = resolve_isa();
    // First resolver wins; concurrent first calls resolve identically
    // (same env, same host), so the race is benign either way.
    int expected = -1;
    g_isa.compare_exchange_strong(expected, static_cast<int>(resolved),
                                  std::memory_order_acq_rel);
    cur = g_isa.load(std::memory_order_acquire);
  }
  return static_cast<SimdIsa>(cur);
}

bool force_isa_for_testing(SimdIsa isa) {
  if (!isa_supported(isa)) return false;
  g_isa.store(static_cast<int>(isa), std::memory_order_release);
  return true;
}

bool fast_math_kernels() {
  return g_fast_math.load(std::memory_order_relaxed);
}

void set_fast_math_kernels(bool on) {
  g_fast_math.store(on, std::memory_order_relaxed);
}

}  // namespace fedclust::util
