#pragma once

// Minimal leveled logging. The level is read once from FEDCLUST_LOG_LEVEL
// (trace|debug|info|warn|error, default info). Usage:
//
//   FC_LOG_INFO << "round " << r << " acc=" << acc;
//
// Disabled levels cost one branch; the stream expression is never evaluated.

#include <sstream>
#include <string>

namespace fedclust::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);
bool log_enabled(LogLevel level);

// Accumulates one log line and emits it (with level tag and elapsed time)
// on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace fedclust::util

#define FC_LOG(level)                             \
  if (!fedclust::util::log_enabled(level)) {      \
  } else                                          \
    fedclust::util::LogLine(level)

#define FC_LOG_TRACE FC_LOG(fedclust::util::LogLevel::kTrace)
#define FC_LOG_DEBUG FC_LOG(fedclust::util::LogLevel::kDebug)
#define FC_LOG_INFO FC_LOG(fedclust::util::LogLevel::kInfo)
#define FC_LOG_WARN FC_LOG(fedclust::util::LogLevel::kWarn)
#define FC_LOG_ERROR FC_LOG(fedclust::util::LogLevel::kError)
