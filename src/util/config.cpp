#include "util/config.h"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace fedclust::util {

namespace {

std::optional<std::string> env_raw(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

}  // namespace

std::string env_string(const std::string& name, const std::string& def) {
  return env_raw(name).value_or(def);
}

std::int64_t env_int(const std::string& name, std::int64_t def) {
  const auto raw = env_raw(name);
  if (!raw) return def;
  std::size_t pos = 0;
  const std::int64_t v = std::stoll(*raw, &pos);
  if (pos != raw->size()) {
    throw std::runtime_error("env var " + name + " is not an integer: " + *raw);
  }
  return v;
}

double env_double(const std::string& name, double def) {
  const auto raw = env_raw(name);
  if (!raw) return def;
  std::size_t pos = 0;
  const double v = std::stod(*raw, &pos);
  if (pos != raw->size()) {
    throw std::runtime_error("env var " + name + " is not a number: " + *raw);
  }
  return v;
}

bool env_bool(const std::string& name, bool def) {
  const auto raw = env_raw(name);
  if (!raw) return def;
  if (*raw == "1" || *raw == "true" || *raw == "yes" || *raw == "on") {
    return true;
  }
  if (*raw == "0" || *raw == "false" || *raw == "no" || *raw == "off") {
    return false;
  }
  throw std::runtime_error("env var " + name + " is not a boolean: " + *raw);
}

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  add_flag("help", "print this help text and exit");
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  Entry e;
  e.help = help;
  e.is_flag = true;
  entries_[name] = std::move(e);
  order_.push_back(name);
}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& def) {
  Entry e;
  e.help = help;
  e.value = def;
  entries_[name] = std::move(e);
  order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = entries_.find(arg);
    if (it == entries_.end()) {
      throw std::runtime_error("unknown flag --" + arg + "\n" + help());
    }
    Entry& e = it->second;
    if (e.is_flag) {
      if (has_value) {
        throw std::runtime_error("flag --" + arg + " does not take a value");
      }
      e.flag_set = true;
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          throw std::runtime_error("flag --" + arg + " expects a value");
        }
        value = argv[++i];
      }
      e.value = value;
    }
  }
  if (flag("help")) {
    std::cout << help();
    return false;
  }
  return true;
}

const ArgParser::Entry& ArgParser::lookup(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::logic_error("flag --" + name + " was never registered");
  }
  return it->second;
}

bool ArgParser::flag(const std::string& name) const {
  const Entry& e = lookup(name);
  if (!e.is_flag) throw std::logic_error("--" + name + " is not a flag");
  return e.flag_set;
}

std::string ArgParser::str(const std::string& name) const {
  return lookup(name).value;
}

std::int64_t ArgParser::integer(const std::string& name) const {
  return std::stoll(lookup(name).value);
}

double ArgParser::real(const std::string& name) const {
  return std::stod(lookup(name).value);
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    os << "  --" << name;
    if (!e.is_flag) os << "=<" << (e.value.empty() ? "value" : e.value) << ">";
    os << "\n      " << e.help << "\n";
  }
  return os.str();
}

}  // namespace fedclust::util
