#pragma once

// Fixed-size thread pool with a chunked parallel_for.
//
// The simulator is deterministic by construction: parallel_for only ever
// partitions *independent* work (rows of a GEMM, clients in a round whose
// RNG streams were split ahead of time), so results do not depend on the
// worker count or schedule. On a single-core host the pool degrades to
// inline execution with zero thread overhead.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedclust::util {

class ThreadPool {
 public:
  // n_threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Runs fn(i) for i in [begin, end), splitting the range into at most
  // size()+1 contiguous chunks (the calling thread takes one). Blocks until
  // every iteration has finished. Exceptions thrown by fn are rethrown on
  // the caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  // Chunked variant: fn(chunk_begin, chunk_end) — lets the body hoist
  // per-chunk setup out of the inner loop.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void submit(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Process-wide pool, sized by FEDCLUST_THREADS (default: hardware
// concurrency). Constructed on first use.
ThreadPool& global_pool();

// Convenience wrappers over global_pool().
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace fedclust::util
