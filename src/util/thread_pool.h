#pragma once

// Fixed-size thread pool with a chunked parallel_for.
//
// The simulator is deterministic by construction: parallel_for only ever
// partitions *independent* work (rows of a GEMM, clients in a round whose
// RNG streams were split ahead of time), so results do not depend on the
// worker count or schedule. On a single-core host the pool degrades to
// inline execution with zero thread overhead.
//
// Nested-parallelism policy: a parallel_for issued from inside another
// parallel_for chunk (e.g. GEMM's row split inside a client-parallel FL
// round) executes inline on the calling thread instead of re-entering the
// shared task queue. The outer loop already owns every worker, so nested
// dispatch would only add queueing latency and oversubscription — and a
// kernel must never assume its inner parallel_for actually fans out.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedclust::util {

class ThreadPool {
 public:
  // n_threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // True while the current thread is executing a parallel_for chunk (as a
  // pool worker or as the caller taking its own chunk). parallel_for calls
  // made in that state run inline — see the nested-parallelism policy above.
  static bool in_parallel_region();

  // Runs fn(i) for i in [begin, end), splitting the range into at most
  // size()+1 contiguous chunks (the calling thread takes one). Blocks until
  // every iteration has finished. Exceptions thrown by fn are rethrown on
  // the caller (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  // Chunked variant: fn(chunk_begin, chunk_end) — lets the body hoist
  // per-chunk setup out of the inner loop.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void submit(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Process-wide pool, sized by FEDCLUST_THREADS (default: hardware
// concurrency). Constructed on first use.
ThreadPool& global_pool();

// Rebuilds the global pool with the given thread count (0 = hardware
// concurrency, 1 = no workers / fully sequential). Tests and benchmarks use
// this to sweep worker counts inside one process; callers must ensure no
// parallel_for is in flight on the old pool.
void reset_global_pool(std::size_t n_threads);

// Convenience wrappers over global_pool().
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace fedclust::util
