#pragma once

// Process memory telemetry.

#include <cstdint>

namespace fedclust::util {

// High-water-mark resident set size of this process in KiB (getrusage
// ru_maxrss on Linux/macOS, normalized to KiB). Returns 0 where the query
// is unavailable. Monotone over the process lifetime — the OS never lowers
// the mark — so scale tests assert against the final value.
std::uint64_t peak_rss_kb();

}  // namespace fedclust::util
