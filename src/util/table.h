#pragma once

// ASCII table rendering used by the benchmark harnesses to print
// paper-style result tables.

#include <string>
#include <vector>

namespace fedclust::util {

// Fixed-precision float formatting helpers.
std::string fmt_float(double v, int precision = 2);
// "mean ± std" in the paper's table style.
std::string fmt_pm(double mean, double std, int precision = 2);

class TablePrinter {
 public:
  explicit TablePrinter(std::string title = "");

  void set_headers(std::vector<std::string> headers);
  void add_row(std::vector<std::string> row);
  // Inserts a horizontal rule before the next row.
  void add_rule();

  std::string to_string() const;
  void print() const;  // to stdout

 private:
  std::string title_;
  std::vector<std::string> headers_;
  // Rows; an empty row marks a rule.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fedclust::util
