#include "util/mem.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fedclust::util {

std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;
#else
  // Linux reports KiB.
  return static_cast<std::uint64_t>(ru.ru_maxrss);
#endif
#else
  return 0;
#endif
}

}  // namespace fedclust::util
