#pragma once

// Steady-clock stopwatch and the process-wide monotonic epoch.

#include <chrono>
#include <cstdint>

namespace fedclust::util {

// Single steady-clock origin shared by every timestamp the process emits:
// log-line prefixes (util/logging) and trace-span timestamps (obs) both
// measure from here, so a "[  12.345 INFO ]" line and a span at ts=12345000
// refer to the same instant. Inline-function static, so every translation
// unit and static library in the binary shares one epoch.
inline std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}

inline double process_elapsed_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       process_epoch())
      .count();
}

inline std::int64_t process_elapsed_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - process_epoch())
      .count();
}

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fedclust::util
