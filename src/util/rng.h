#pragma once

// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component of the simulator (data synthesis, non-IID
// partitioning, weight init, client sampling, SGD shuffling) draws from an
// Rng obtained by splitting a single root seed, so whole experiments are
// reproducible bit-for-bit regardless of thread scheduling.

#include <cstdint>
#include <vector>

namespace fedclust::util {

// Complete serializable generator state: the originating seed (splitting
// derives child streams from it, not from the evolving xoshiro state), the
// four xoshiro256** words, and the Box–Muller normal cache. Snapshots
// persist these so a resumed run continues every stream mid-sequence.
struct RngState {
  std::uint64_t seed = 0;
  std::uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;

  bool operator==(const RngState&) const = default;
};

// xoshiro256** with SplitMix64 seeding. Not cryptographic; chosen for speed,
// solid statistical quality, and cheap deterministic splitting.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Point-in-time capture of the full generator state, and the inverse:
  // a generator that continues exactly where the captured one stood.
  RngState state() const;
  static Rng from_state(const RngState& st);

  // Derives an independent stream from this generator's seed and a stream
  // id. Splitting is a pure function of (seed, stream): it does not advance
  // or depend on this generator's current state, so call order cannot change
  // derived streams.
  Rng split(std::uint64_t stream) const;

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  float uniformf() { return static_cast<float>(uniform()); }
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Integer in [lo, hi) — hi exclusive; requires lo < hi.
  std::int64_t randint(std::int64_t lo, std::int64_t hi);

  // Standard normal via Box–Muller (second deviate cached).
  double normal();
  double normal(double mean, double stddev);
  float normalf(float mean, float stddev) {
    return static_cast<float>(normal(mean, stddev));
  }

  // Gamma(shape, 1) via Marsaglia–Tsang; requires shape > 0.
  double gamma(double shape);

  // Symmetric Dirichlet(alpha) over k categories; returns a probability
  // vector of length k.
  std::vector<double> dirichlet(double alpha, std::size_t k);

  // Index sampled from an unnormalized non-negative weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          randint(0, static_cast<std::int64_t>(i)));
      std::swap(v[i - 1], v[j]);
    }
  }

  // k distinct indices drawn uniformly from [0, n); requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fedclust::util
