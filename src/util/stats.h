#pragma once

// Small statistics helpers used across metrics and tests.

#include <cstddef>
#include <vector>

namespace fedclust::util {

double mean(const std::vector<double>& v);
// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double stddev(const std::vector<double>& v);
double median(std::vector<double> v);  // by value: sorts a copy
std::size_t argmax(const std::vector<double>& v);
std::size_t argmin(const std::vector<double>& v);

// Welford online mean/variance accumulator.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace fedclust::util
