#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedclust::util {

double mean(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("mean of empty vector");
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (const double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double median(std::vector<double> v) {
  if (v.empty()) throw std::invalid_argument("median of empty vector");
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

std::size_t argmax(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("argmax of empty vector");
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

std::size_t argmin(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("argmin of empty vector");
  return static_cast<std::size_t>(
      std::min_element(v.begin(), v.end()) - v.begin());
}

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace fedclust::util
