#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace fedclust::util {

std::string fmt_float(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_pm(double mean, double std, int precision) {
  return fmt_float(mean, precision) + " ± " + fmt_float(std, precision);
}

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::set_headers(std::vector<std::string> headers) {
  headers_ = std::move(headers);
}

void TablePrinter::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::add_rule() { rows_.emplace_back(); }

namespace {

// Display width assuming UTF-8 where multi-byte sequences ("±", "×") render
// one column wide.
std::size_t display_width(const std::string& s) {
  std::size_t w = 0;
  for (const char c : s) {
    if ((static_cast<unsigned char>(c) & 0xC0) != 0x80) ++w;
  }
  return w;
}

}  // namespace

std::string TablePrinter::to_string() const {
  std::size_t n_cols = headers_.size();
  for (const auto& row : rows_) n_cols = std::max(n_cols, row.size());

  std::vector<std::size_t> width(n_cols, 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = std::max(width[c], display_width(headers_[c]));
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], display_width(row[c]));
    }
  }

  const auto rule = [&] {
    std::string s = "+";
    for (std::size_t c = 0; c < n_cols; ++c) {
      s += std::string(width[c] + 2, '-') + "+";
    }
    return s + "\n";
  }();

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < n_cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      s += " " + cell + std::string(width[c] - display_width(cell) + 1, ' ') +
           "|";
    }
    return s + "\n";
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  os << rule;
  if (!headers_.empty()) {
    os << render_row(headers_) << rule;
  }
  for (const auto& row : rows_) {
    os << (row.empty() ? rule : render_row(row));
  }
  os << rule;
  return os.str();
}

void TablePrinter::print() const { std::cout << to_string() << std::flush; }

}  // namespace fedclust::util
