#pragma once

// Runtime SIMD feature detection and kernel-dispatch policy.
//
// The simulator ships one binary with per-ISA kernel translation units
// (scalar / AVX2 / AVX-512 / NEON); the active ISA is resolved exactly once,
// at first use, from the host's capabilities — overridable with
// FEDCLUST_ISA={scalar,avx2,avx512,neon} for testing. The scalar kernels are
// the golden reference: every default SIMD kernel must be bit-identical to
// them (docs/INVARIANTS.md §Kernels), so switching ISAs can never change a
// result bit. Kernels that trade bit-exactness for speed (FMA contraction,
// int8 aggregation) only run when the opt-in fast-math flag is set
// (fedclust_sim --fast-math-kernels).

#include <cstddef>
#include <cstdint>

namespace fedclust::util {

enum class SimdIsa : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kNeon = 3,
};

inline constexpr std::size_t kNumIsas = 4;

// Stable lowercase name ("scalar", "avx2", "avx512", "neon"); returned
// pointer is a string literal.
const char* isa_name(SimdIsa isa);

// True when the host can execute the ISA's kernels (scalar: always).
// AVX2 requires avx2+fma+f16c; AVX-512 requires avx512f+bw+vl.
bool isa_supported(SimdIsa isa);

// The widest supported ISA on this host.
SimdIsa best_supported_isa();

// The ISA every dispatched kernel uses, resolved once at first call:
// FEDCLUST_ISA if set (std::runtime_error when the value is unknown or the
// host cannot execute it), otherwise best_supported_isa().
SimdIsa active_isa();

// Test-only: override the active ISA for kernel-parity sweeps inside one
// process. Returns false (and changes nothing) when the ISA is unsupported
// on this host. Must not be called while kernels are running on other
// threads. Pass active_isa()'s original value to restore normal resolution.
bool force_isa_for_testing(SimdIsa isa);

// Opt-in fast-math kernels (FMA-contracted GEMM, int8 aggregation). Off by
// default; when off every dispatched kernel is bit-identical to scalar.
bool fast_math_kernels();
void set_fast_math_kernels(bool on);

// Hardware CRC32C (SSE4.2 / ARMv8-CRC) over pre-inverted state — internal
// building blocks for util::crc32c_extend, exposed for the parity test.
// crc32c_hw_compiled() is false when the build lacks the instructions.
bool crc32c_hw_compiled();
std::uint32_t crc32c_raw_hw(std::uint32_t crc, const std::uint8_t* data,
                            std::size_t n);
std::uint32_t crc32c_raw_table(std::uint32_t crc, const std::uint8_t* data,
                               std::size_t n);

}  // namespace fedclust::util
