// NEON kernel table (AArch64). Conservative: the GEMM inner loop and beta
// scale are vectorized with explicit mul-then-add (vmulq/vaddq — never
// vfmaq outside the _fma variant), everything else reuses the scalar
// kernels. Bit-identity with the scalar table holds by the same argument
// as the x86 tables: lanes perform the identical fl(mul) -> fl(add) per
// element in ascending-p order. Untested on this project's primary (x86)
// CI host — kept deliberately simple.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <vector>

#include "tensor/simd_tables.h"

namespace fedclust::tensor::simd {
namespace detail {

namespace {

// Same cache blocking as the scalar golden kernel; only the innermost
// j loop is widened to 4 lanes.
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockN = 64;
constexpr std::size_t kBlockK = 128;

template <bool kFma>
void gemm_nn_range_neon(std::size_t m0, std::size_t m1, std::size_t n,
                        std::size_t k, float alpha, const float* a,
                        std::size_t lda, const float* b, std::size_t ldb,
                        float* c, std::size_t ldc) {
  for (std::size_t ib = m0; ib < m1; ib += kBlockM) {
    const std::size_t ie = std::min(m1, ib + kBlockM);
    for (std::size_t kb = 0; kb < k; kb += kBlockK) {
      const std::size_t ke = std::min(k, kb + kBlockK);
      for (std::size_t jb = 0; jb < n; jb += kBlockN) {
        const std::size_t je = std::min(n, jb + kBlockN);
        for (std::size_t i = ib; i < ie; ++i) {
          const float* __restrict arow = a + i * lda;
          float* __restrict crow = c + i * ldc;
          for (std::size_t p = kb; p < ke; ++p) {
            const float av = alpha * arow[p];
            const float32x4_t vav = vdupq_n_f32(av);
            const float* __restrict brow = b + p * ldb;
            std::size_t j = jb;
            for (; j + 4 <= je; j += 4) {
              const float32x4_t bv = vld1q_f32(brow + j);
              float32x4_t cv = vld1q_f32(crow + j);
              if constexpr (kFma) {
                cv = vfmaq_f32(cv, vav, bv);
              } else {
                cv = vaddq_f32(cv, vmulq_f32(vav, bv));
              }
              vst1q_f32(crow + j, cv);
            }
            for (; j < je; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

void scale_neon(float* c, std::size_t n, float beta) {
  const float32x4_t vb = vdupq_n_f32(beta);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(c + i, vmulq_f32(vld1q_f32(c + i), vb));
  }
  for (; i < n; ++i) c[i] *= beta;
}

}  // namespace

const KernelTable* neon_table() {
  static const KernelTable table = [] {
    KernelTable t = scalar_table();
    t.isa = util::SimdIsa::kNeon;
    t.gemm_nn_range = &gemm_nn_range_neon<false>;
    t.gemm_nn_range_fma = &gemm_nn_range_neon<true>;
    t.scale = &scale_neon;
    return t;
  }();
  return &table;
}

}  // namespace detail
}  // namespace fedclust::tensor::simd

#else  // non-AArch64 build: no NEON table

#include "tensor/simd_tables.h"

namespace fedclust::tensor::simd::detail {
const KernelTable* neon_table() { return nullptr; }
}  // namespace fedclust::tensor::simd::detail

#endif
