// AVX-512 kernel table (avx512f+bw+vl plus the AVX2 baseline at runtime;
// built with the matching -mavx512* flags and -ffp-contract=off, entered
// only through simd_dispatch.cpp). Same bit-identity contract as the AVX2
// table — see simd_avx2.cpp for the per-kernel equivalence arguments; this
// file is the 16-lane analogue with mask registers instead of movemasks.

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/simd_tables.h"
#include "util/f16.h"

namespace fedclust::tensor::simd {
namespace detail {

namespace {

// ------------------------------------------------------------------ gemm

constexpr std::size_t kMr = 8;
constexpr std::size_t kNr = 32;  // two __m512 per row
constexpr std::size_t kKc = 256;

void pack_a(const float* a, std::size_t lda, std::size_t i0, std::size_t mr,
            std::size_t kb, std::size_t kc, float alpha, float* apack) {
  for (std::size_t p = 0; p < kc; ++p) {
    for (std::size_t r = 0; r < kMr; ++r) {
      apack[p * kMr + r] =
          r < mr ? alpha * a[(i0 + r) * lda + kb + p] : 0.0f;
    }
  }
}

template <bool kFma>
void microkernel(const float* apack, std::size_t kc, const float* b,
                 std::size_t ldb, float* c, std::size_t ldc) {
  __m512 acc0[kMr];
  __m512 acc1[kMr];
  for (std::size_t r = 0; r < kMr; ++r) {
    acc0[r] = _mm512_loadu_ps(c + r * ldc);
    acc1[r] = _mm512_loadu_ps(c + r * ldc + 16);
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const __m512 b0 = _mm512_loadu_ps(b + p * ldb);
    const __m512 b1 = _mm512_loadu_ps(b + p * ldb + 16);
    const float* ap = apack + p * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m512 av = _mm512_set1_ps(ap[r]);
      if constexpr (kFma) {
        acc0[r] = _mm512_fmadd_ps(av, b0, acc0[r]);
        acc1[r] = _mm512_fmadd_ps(av, b1, acc1[r]);
      } else {
        acc0[r] = _mm512_add_ps(acc0[r], _mm512_mul_ps(av, b0));
        acc1[r] = _mm512_add_ps(acc1[r], _mm512_mul_ps(av, b1));
      }
    }
  }
  for (std::size_t r = 0; r < kMr; ++r) {
    _mm512_storeu_ps(c + r * ldc, acc0[r]);
    _mm512_storeu_ps(c + r * ldc + 16, acc1[r]);
  }
}

void edge_tile(const float* apack, std::size_t kc, std::size_t mr,
               const float* b, std::size_t ldb, float* c, std::size_t ldc,
               std::size_t nr) {
  for (std::size_t p = 0; p < kc; ++p) {
    const float* __restrict brow = b + p * ldb;
    for (std::size_t r = 0; r < mr; ++r) {
      const float av = apack[p * kMr + r];
      float* __restrict crow = c + r * ldc;
      for (std::size_t j = 0; j < nr; ++j) crow[j] += av * brow[j];
    }
  }
}

template <bool kFma>
void gemm_nn_range_avx512(std::size_t m0, std::size_t m1, std::size_t n,
                          std::size_t k, float alpha, const float* a,
                          std::size_t lda, const float* b, std::size_t ldb,
                          float* c, std::size_t ldc) {
  thread_local std::vector<float> apack_buf;
  apack_buf.resize(kMr * kKc);
  float* apack = apack_buf.data();

  for (std::size_t i0 = m0; i0 < m1; i0 += kMr) {
    const std::size_t mr = std::min(kMr, m1 - i0);
    for (std::size_t kb = 0; kb < k; kb += kKc) {
      const std::size_t kc = std::min(kKc, k - kb);
      pack_a(a, lda, i0, mr, kb, kc, alpha, apack);
      std::size_t j0 = 0;
      if (mr == kMr) {
        for (; j0 + kNr <= n; j0 += kNr) {
          microkernel<kFma>(apack, kc, b + kb * ldb + j0, ldb,
                            c + i0 * ldc + j0, ldc);
        }
      }
      if (j0 < n) {
        edge_tile(apack, kc, mr, b + kb * ldb + j0, ldb, c + i0 * ldc + j0,
                  ldc, n - j0);
      }
    }
  }
}

// ----------------------------------------------------------------- scale

void scale_avx512(float* c, std::size_t n, float beta) {
  const __m512 vb = _mm512_set1_ps(beta);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(c + i, _mm512_mul_ps(_mm512_loadu_ps(c + i), vb));
  }
  for (; i < n; ++i) c[i] *= beta;
}

// ------------------------------------------------------------------- f16

void f16_encode_avx512(const float* src, std::size_t n, std::uint16_t* dst) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_loadu_ps(src + i);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm512_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
    const __mmask16 nan_lanes = _mm512_cmp_ps_mask(v, v, _CMP_UNORD_Q);
    if (nan_lanes != 0) {
      for (int l = 0; l < 16; ++l) {
        if (nan_lanes & (1u << l)) dst[i + l] = util::f32_to_f16(src[i + l]);
      }
    }
  }
  for (; i < n; ++i) dst[i] = util::f32_to_f16(src[i]);
}

void f16_decode_avx512(const std::uint16_t* src, std::size_t n, float* dst) {
  const __m256i mag_mask = _mm256_set1_epi16(0x7fff);
  const __m256i inf16 = _mm256_set1_epi16(0x7c00);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm512_storeu_ps(dst + i, _mm512_cvtph_ps(h));
    const __mmask16 nan_lanes =
        _mm256_cmpgt_epi16_mask(_mm256_and_si256(h, mag_mask), inf16);
    if (nan_lanes != 0) {
      for (int l = 0; l < 16; ++l) {
        if (nan_lanes & (1u << l)) dst[i + l] = util::f16_to_f32(src[i + l]);
      }
    }
  }
  for (; i < n; ++i) dst[i] = util::f16_to_f32(src[i]);
}

// ----------------------------------------------------------------- qint8

void minmax_finite_avx512(const float* src, std::size_t n, float* lo,
                          float* hi, bool* finite) {
  const float inf = std::numeric_limits<float>::infinity();
  float mn = inf;
  float mx = -inf;
  bool ok = true;
  std::size_t i = 0;
  if (n >= 16) {
    const __m512 vinf = _mm512_set1_ps(inf);
    __m512 vmn = vinf;
    __m512 vmx = _mm512_set1_ps(-inf);
    __mmask16 vok = 0xffffu;
    for (; i + 16 <= n; i += 16) {
      const __m512 v = _mm512_loadu_ps(src + i);
      vok &= _mm512_cmp_ps_mask(_mm512_abs_ps(v), vinf, _CMP_LT_OQ);
      vmn = _mm512_min_ps(vmn, v);
      vmx = _mm512_max_ps(vmx, v);
    }
    ok = vok == 0xffffu;
    alignas(64) float lanes[16];
    _mm512_store_ps(lanes, vmn);
    for (float lane : lanes) mn = std::min(mn, lane);
    _mm512_store_ps(lanes, vmx);
    for (float lane : lanes) mx = std::max(mx, lane);
  }
  for (; i < n; ++i) {
    if (!std::isfinite(src[i])) ok = false;
    mn = std::min(mn, src[i]);
    mx = std::max(mx, src[i]);
  }
  *lo = mn + 0.0f;
  *hi = mx + 0.0f;
  *finite = ok;
}

void qint8_quantize_avx512(const float* src, std::size_t n, float lo,
                           float scale, std::uint8_t* dst) {
  const __m512 vlo = _mm512_set1_ps(lo);
  const __m512 vs = _mm512_set1_ps(scale);
  const __m512 vhalf = _mm512_set1_ps(0.5f);
  const __m512 vone = _mm512_set1_ps(1.0f);
  const __m512 vzero = _mm512_setzero_ps();
  const __m512 v255 = _mm512_set1_ps(255.0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 t =
        _mm512_div_ps(_mm512_sub_ps(_mm512_loadu_ps(src + i), vlo), vs);
    const __m512 tr =
        _mm512_roundscale_ps(t, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
    const __mmask16 bump =
        _mm512_cmp_ps_mask(_mm512_sub_ps(t, tr), vhalf, _CMP_GE_OQ);
    __m512 r = _mm512_mask_add_ps(tr, bump, tr, vone);
    r = _mm512_min_ps(_mm512_max_ps(r, vzero), v255);
    const __m512i q = _mm512_cvtps_epi32(r);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm512_cvtepi32_epi8(q));  // 0..255: truncation is exact
  }
  for (; i < n; ++i) {
    const float t = (src[i] - lo) / scale;
    const long r = std::lroundf(t);
    dst[i] = static_cast<std::uint8_t>(r < 0 ? 0 : (r > 255 ? 255 : r));
  }
}

void qint8_dequantize_avx512(const std::uint8_t* src, std::size_t n,
                             float lo, float scale, float* dst) {
  const __m512 vlo = _mm512_set1_ps(lo);
  const __m512 vs = _mm512_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i q32 = _mm512_cvtepu8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i)));
    const __m512 qf = _mm512_cvtepi32_ps(q32);
    _mm512_storeu_ps(dst + i, _mm512_add_ps(vlo, _mm512_mul_ps(vs, qf)));
  }
  for (; i < n; ++i) dst[i] = lo + scale * static_cast<float>(src[i]);
}

void qint8_accumulate_avx512(std::int64_t* acc, const std::uint8_t* q,
                             std::size_t n, std::int32_t m) {
  const __m512i vm = _mm512_set1_epi32(m);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i q32 = _mm512_cvtepu8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i)));
    const __m512i prod = _mm512_mullo_epi32(q32, vm);
    const __m512i p0 =
        _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(prod, 0));
    const __m512i p1 =
        _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(prod, 1));
    auto* a0 = reinterpret_cast<__m512i*>(acc + i);
    _mm512_storeu_si512(a0, _mm512_add_epi64(_mm512_loadu_si512(a0), p0));
    auto* a1 = reinterpret_cast<__m512i*>(acc + i + 8);
    _mm512_storeu_si512(a1, _mm512_add_epi64(_mm512_loadu_si512(a1), p1));
  }
  const auto m64 = static_cast<std::int64_t>(m);
  for (; i < n; ++i) acc[i] += m64 * static_cast<std::int64_t>(q[i]);
}

}  // namespace

const KernelTable* avx512_table() {
  static const KernelTable table = {
      util::SimdIsa::kAvx512,
      &gemm_nn_range_avx512<false>,
      &gemm_nn_range_avx512<true>,
      &scale_avx512,
      &f16_encode_avx512,
      &f16_decode_avx512,
      &minmax_finite_avx512,
      &qint8_quantize_avx512,
      &qint8_dequantize_avx512,
      &qint8_accumulate_avx512,
  };
  return &table;
}

}  // namespace detail
}  // namespace fedclust::tensor::simd

#else  // non-x86 build: no AVX-512 table

#include "tensor/simd_tables.h"

namespace fedclust::tensor::simd::detail {
const KernelTable* avx512_table() { return nullptr; }
}  // namespace fedclust::tensor::simd::detail

#endif
