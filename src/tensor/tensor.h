#pragma once

// Dense float32 tensor with contiguous row-major storage.
//
// This is a value type: copies are deep. At simulator scale (models of
// 10^4–10^6 parameters) deep copies are cheap relative to training compute,
// and value semantics keep the FL algorithms (which constantly snapshot and
// average parameter vectors) simple and alias-free.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace fedclust::tensor {

using Shape = std::vector<std::size_t>;

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);  // zero-initialized
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);
  // 1-D tensor from values.
  static Tensor from(std::initializer_list<float> values);

  const Shape& shape() const { return shape_; }
  std::size_t ndim() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const;
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // Bounds-checked multi-dimensional access (tests / debugging).
  float& at(std::initializer_list<std::size_t> idx);
  float at(std::initializer_list<std::size_t> idx) const;

  // In-place shape change; the element count must match.
  void reshape(Shape shape);

  std::string shape_str() const;

  static std::size_t numel(const Shape& shape);

 private:
  std::size_t flat_index(std::initializer_list<std::size_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

// Throws std::invalid_argument unless the two tensors have identical shapes.
void check_same_shape(const Tensor& a, const Tensor& b, const char* op);

}  // namespace fedclust::tensor
