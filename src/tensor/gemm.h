#pragma once

// Single-precision GEMM: C = alpha * op(A) * op(B) + beta * C.
//
// Cache-blocked scalar kernel; rows of C are distributed over the global
// thread pool when the problem is large enough to amortize dispatch. This is
// the workhorse behind Linear layers and im2col convolution.

#include <cstddef>

#include "tensor/tensor.h"

namespace fedclust::tensor {

enum class Trans { kNo, kYes };

// Raw-pointer GEMM with row-major leading dimensions. op(A) is (m, k),
// op(B) is (k, n), C is (m, n) with leading dimension ldc.
void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc);

// Tensor-level matmul; a is (m, k), b is (k, n); returns (m, n).
Tensor matmul(const Tensor& a, const Tensor& b);
// a is (m, k) interpreted via trans flags: op(a) (m', k') etc.
Tensor matmul(const Tensor& a, Trans trans_a, const Tensor& b, Trans trans_b);

}  // namespace fedclust::tensor
