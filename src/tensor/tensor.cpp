#include "tensor/tensor.h"

#include <sstream>
#include <stdexcept>

namespace fedclust::tensor {

std::size_t Tensor::numel(const Shape& shape) {
  std::size_t n = 1;
  for (const std::size_t d : shape) n *= d;
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != numel(shape_)) {
    throw std::invalid_argument("Tensor: data size does not match shape");
  }
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = value;
  return t;
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor({values.size()}, std::vector<float>(values));
}

std::size_t Tensor::dim(std::size_t i) const {
  if (i >= shape_.size()) {
    throw std::out_of_range("Tensor::dim: axis out of range");
  }
  return shape_[i];
}

std::size_t Tensor::flat_index(std::initializer_list<std::size_t> idx) const {
  if (idx.size() != shape_.size()) {
    throw std::invalid_argument("Tensor::at: rank mismatch");
  }
  std::size_t flat = 0;
  std::size_t axis = 0;
  for (const std::size_t i : idx) {
    if (i >= shape_[axis]) throw std::out_of_range("Tensor::at: index OOB");
    flat = flat * shape_[axis] + i;
    ++axis;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::size_t> idx) {
  return data_[flat_index(idx)];
}

float Tensor::at(std::initializer_list<std::size_t> idx) const {
  return data_[flat_index(idx)];
}

void Tensor::reshape(Shape shape) {
  if (numel(shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch");
  }
  shape_ = std::move(shape);
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape_[i];
  }
  os << ")";
  return os.str();
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape_str() + " vs " + b.shape_str());
  }
}

}  // namespace fedclust::tensor
