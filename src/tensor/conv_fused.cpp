#include "tensor/conv_fused.h"

#include <algorithm>
#include <vector>

#include "obs/trace.h"
#include "tensor/im2col.h"
#include "tensor/simd.h"
#include "util/cpu.h"

namespace fedclust::tensor {

namespace {

// Rows of the column matrix expanded per panel. 64 rows of a typical
// 24x24 output tile is ~144 KiB — fits L2 alongside the weight panel, so
// each expanded row is consumed while still hot instead of round-tripping
// through a full column-matrix buffer.
constexpr std::size_t kPanelRows = 64;

}  // namespace

void conv2d_forward_fused(const float* img, std::size_t c, std::size_t h,
                          std::size_t w, const float* weights,
                          std::size_t out_c, std::size_t kh, std::size_t kw,
                          std::size_t stride, std::size_t pad, float* out) {
  const std::size_t oh = conv_out_dim(h, kh, stride, pad);
  const std::size_t ow = conv_out_dim(w, kw, stride, pad);
  const std::size_t out_area = oh * ow;
  const std::size_t col_rows = c * kh * kw;
  OBS_SPAN_ARG("conv2d.fused", out_c * out_area * col_rows);
  if (out_c == 0 || out_area == 0) return;

  std::fill(out, out + out_c * out_area, 0.0f);
  if (col_rows == 0) return;

  thread_local std::vector<float> panel;
  panel.resize(std::min(kPanelRows, col_rows) * out_area);

  const simd::KernelTable& kt = simd::kernels();
  const auto kernel = util::fast_math_kernels() ? kt.gemm_nn_range_fma
                                                : kt.gemm_nn_range;
  // Ascending panels over the reduction dimension: out accumulates the
  // alpha*a*b terms for p = 0..col_rows-1 in exactly the order the unfused
  // single GEMM would, so the fusion is bit-exact.
  for (std::size_t r0 = 0; r0 < col_rows; r0 += kPanelRows) {
    const std::size_t r1 = std::min(col_rows, r0 + kPanelRows);
    im2col_rows(img, c, h, w, kh, kw, stride, pad, r0, r1, panel.data());
    kernel(0, out_c, out_area, r1 - r0, 1.0f, weights + r0, col_rows,
           panel.data(), out_area, out, out_area);
  }
}

}  // namespace fedclust::tensor
