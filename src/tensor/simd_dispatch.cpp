#include "tensor/simd.h"

#include <stdexcept>
#include <string>

#include "tensor/simd_tables.h"

namespace fedclust::tensor::simd {

const KernelTable& kernels_for(util::SimdIsa isa) {
  if (!util::isa_supported(isa)) {
    throw std::runtime_error(std::string("kernels_for: ISA ") +
                             util::isa_name(isa) +
                             " not supported on this host");
  }
  const KernelTable* table = nullptr;
  switch (isa) {
    case util::SimdIsa::kScalar: return detail::scalar_table();
    case util::SimdIsa::kAvx2: table = detail::avx2_table(); break;
    case util::SimdIsa::kAvx512: table = detail::avx512_table(); break;
    case util::SimdIsa::kNeon: table = detail::neon_table(); break;
  }
  if (table == nullptr) {
    // Host-supported but the build lacks the TU (cross-compile mismatch);
    // impossible with the in-tree CMake, which always compiles every table
    // for the target architecture.
    throw std::runtime_error(std::string("kernels_for: ISA ") +
                             util::isa_name(isa) +
                             " not compiled into this binary");
  }
  return *table;
}

const KernelTable& kernels() { return kernels_for(util::active_isa()); }

}  // namespace fedclust::tensor::simd
