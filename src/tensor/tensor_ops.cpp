#include "tensor/tensor_ops.h"

#include <cmath>
#include <stdexcept>

namespace fedclust::tensor {

void axpy(float alpha, const Tensor& x, Tensor& y) {
  check_same_shape(x, y, "axpy");
  axpy(alpha, x.vec(), y.vec());
}

void axpy(float alpha, const std::vector<float>& x, std::vector<float>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  const float* __restrict xp = x.data();
  float* __restrict yp = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) yp[i] += alpha * xp[i];
}

void scale_(Tensor& t, float alpha) { scale_(t.vec(), alpha); }

void scale_(std::vector<float>& v, float alpha) {
  for (auto& x : v) x *= alpha;
}

void fill_(Tensor& t, float value) {
  for (auto& x : t.vec()) x = value;
}

void add_(Tensor& y, const Tensor& x) { axpy(1.0f, x, y); }

void sub_(Tensor& y, const Tensor& x) { axpy(-1.0f, x, y); }

void hadamard_(Tensor& y, const Tensor& x) {
  check_same_shape(x, y, "hadamard");
  float* __restrict yp = y.data();
  const float* __restrict xp = x.data();
  for (std::size_t i = 0; i < y.size(); ++i) yp[i] *= xp[i];
}

float dot(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "dot");
  return dot(a.vec(), b.vec());
}

float dot(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  // Accumulate in double: parameter vectors reach ~10^6 elements and float
  // accumulation would lose ~3 digits.
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return static_cast<float>(s);
}

float nrm2(const Tensor& t) { return nrm2(t.vec()); }

float nrm2(const std::vector<float>& v) {
  double s = 0.0;
  for (const float x : v) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

float l2_distance(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("l2_distance: size mismatch");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return static_cast<float>(std::sqrt(s));
}

float cosine_similarity(const std::vector<float>& a,
                        const std::vector<float>& b) {
  const float na = nrm2(a);
  const float nb = nrm2(b);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return dot(a, b) / (na * nb);
}

float sum(const Tensor& t) {
  double s = 0.0;
  for (const float x : t.vec()) s += x;
  return static_cast<float>(s);
}

float max_abs(const Tensor& t) {
  float m = 0.0f;
  for (const float x : t.vec()) m = std::max(m, std::abs(x));
  return m;
}

void softmax_rows_(Tensor& logits) {
  if (logits.ndim() != 2) {
    throw std::invalid_argument("softmax_rows_: expected a 2-D tensor");
  }
  const std::size_t n = logits.dim(0);
  const std::size_t k = logits.dim(1);
  float* p = logits.data();
  for (std::size_t r = 0; r < n; ++r, p += k) {
    float mx = p[0];
    for (std::size_t j = 1; j < k; ++j) mx = std::max(mx, p[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      p[j] = std::exp(p[j] - mx);
      denom += p[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < k; ++j) p[j] *= inv;
  }
}

std::vector<std::size_t> argmax_rows(const Tensor& m) {
  if (m.ndim() != 2) {
    throw std::invalid_argument("argmax_rows: expected a 2-D tensor");
  }
  const std::size_t n = m.dim(0);
  const std::size_t k = m.dim(1);
  std::vector<std::size_t> out(n);
  const float* p = m.data();
  for (std::size_t r = 0; r < n; ++r, p += k) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < k; ++j) {
      if (p[j] > p[best]) best = j;
    }
    out[r] = best;
  }
  return out;
}

}  // namespace fedclust::tensor
