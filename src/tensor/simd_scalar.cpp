// Scalar kernel table — the golden reference every SIMD table is tested
// against bit for bit. The gemm loop is the seed implementation of
// tensor::gemm's inner kernel, kept verbatim: for each C element the k
// terms fl(fl(alpha*a)*b) accumulate in ascending p with one rounding per
// multiply and one per add (-ffp-contract=off forbids FMA contraction).
// Do not "optimize" these loops; speed lives in the SIMD tables.

#include "tensor/simd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/simd_tables.h"
#include "util/f16.h"

namespace fedclust::tensor::simd {
namespace detail {

namespace {

// Panel sizes tuned for a ~32 KiB L1 / 1 MiB L2 scalar core.
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockN = 64;
constexpr std::size_t kBlockK = 128;

void gemm_nn_range_scalar(std::size_t m0, std::size_t m1, std::size_t n,
                          std::size_t k, float alpha, const float* a,
                          std::size_t lda, const float* b, std::size_t ldb,
                          float* c, std::size_t ldc) {
  for (std::size_t ib = m0; ib < m1; ib += kBlockM) {
    const std::size_t ie = std::min(m1, ib + kBlockM);
    for (std::size_t kb = 0; kb < k; kb += kBlockK) {
      const std::size_t ke = std::min(k, kb + kBlockK);
      for (std::size_t jb = 0; jb < n; jb += kBlockN) {
        const std::size_t je = std::min(n, jb + kBlockN);
        for (std::size_t i = ib; i < ie; ++i) {
          const float* __restrict arow = a + i * lda;
          float* __restrict crow = c + i * ldc;
          // No zero-skip on av: with real weights an exact zero is
          // vanishingly rare, and a branch here defeats vectorization of
          // the inner loop below.
          for (std::size_t p = kb; p < ke; ++p) {
            const float av = alpha * arow[p];
            const float* __restrict brow = b + p * ldb;
            for (std::size_t j = jb; j < je; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

void scale_scalar(float* c, std::size_t n, float beta) {
  for (std::size_t i = 0; i < n; ++i) c[i] *= beta;
}

void f16_encode_scalar(const float* src, std::size_t n, std::uint16_t* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = util::f32_to_f16(src[i]);
}

void f16_decode_scalar(const std::uint16_t* src, std::size_t n, float* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = util::f16_to_f32(src[i]);
}

void minmax_finite_scalar(const float* src, std::size_t n, float* lo,
                          float* hi, bool* finite) {
  float mn = std::numeric_limits<float>::infinity();
  float mx = -std::numeric_limits<float>::infinity();
  bool ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(src[i])) ok = false;
    mn = std::min(mn, src[i]);
    mx = std::max(mx, src[i]);
  }
  // +0.0 canonicalization: min/max of {+0.0, -0.0} is scan-order dependent
  // (both compare equal), and lo/hi become wire bytes — adding +0.0 maps
  // both zeros to +0.0 so every scan order and every ISA agrees.
  *lo = mn + 0.0f;
  *hi = mx + 0.0f;
  *finite = ok;
}

void qint8_quantize_scalar(const float* src, std::size_t n, float lo,
                           float scale, std::uint8_t* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    const float t = (src[i] - lo) / scale;
    const long r = std::lroundf(t);
    dst[i] = static_cast<std::uint8_t>(r < 0 ? 0 : (r > 255 ? 255 : r));
  }
}

void qint8_dequantize_scalar(const std::uint8_t* src, std::size_t n,
                             float lo, float scale, float* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = lo + scale * static_cast<float>(src[i]);
  }
}

void qint8_accumulate_scalar(std::int64_t* acc, const std::uint8_t* q,
                             std::size_t n, std::int32_t m) {
  const auto m64 = static_cast<std::int64_t>(m);
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] += m64 * static_cast<std::int64_t>(q[i]);
  }
}

}  // namespace

const KernelTable& scalar_table() {
  static const KernelTable table = {
      util::SimdIsa::kScalar,
      &gemm_nn_range_scalar,
      &gemm_nn_range_scalar,  // no reassociation to exploit without vectors
      &scale_scalar,
      &f16_encode_scalar,
      &f16_decode_scalar,
      &minmax_finite_scalar,
      &qint8_quantize_scalar,
      &qint8_dequantize_scalar,
      &qint8_accumulate_scalar,
  };
  return table;
}

}  // namespace detail
}  // namespace fedclust::tensor::simd
