#pragma once

// Elementwise and BLAS-1 style operations over Tensors and raw float spans.
// In-place variants carry a trailing underscore, matching common DL-library
// convention.

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace fedclust::tensor {

// y += alpha * x
void axpy(float alpha, const Tensor& x, Tensor& y);
void axpy(float alpha, const std::vector<float>& x, std::vector<float>& y);

void scale_(Tensor& t, float alpha);
void scale_(std::vector<float>& v, float alpha);

void fill_(Tensor& t, float value);

void add_(Tensor& y, const Tensor& x);        // y += x
void sub_(Tensor& y, const Tensor& x);        // y -= x
void hadamard_(Tensor& y, const Tensor& x);   // y *= x (elementwise)

float dot(const Tensor& a, const Tensor& b);
float dot(const std::vector<float>& a, const std::vector<float>& b);

// Euclidean norm.
float nrm2(const Tensor& t);
float nrm2(const std::vector<float>& v);

// ||a - b||_2 without materializing the difference.
float l2_distance(const std::vector<float>& a, const std::vector<float>& b);

// Cosine similarity; returns 0 when either vector is all-zero.
float cosine_similarity(const std::vector<float>& a,
                        const std::vector<float>& b);

float sum(const Tensor& t);
float max_abs(const Tensor& t);

// Numerically stable row-wise softmax of an (n, k) matrix, in place.
void softmax_rows_(Tensor& logits);

// Row-wise argmax of an (n, k) matrix.
std::vector<std::size_t> argmax_rows(const Tensor& m);

}  // namespace fedclust::tensor
