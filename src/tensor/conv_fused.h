#pragma once

// Fused im2col + GEMM convolution forward.
//
// Instead of materializing the whole (C*kh*kw, OH*OW) column matrix and
// running one big GEMM, the column matrix is produced in small row panels
// that stay cache-resident, and each panel is multiplied into the output
// as soon as it is built. The result is bit-identical to the unfused
// im2col + gemm path: panels walk the reduction dimension in ascending
// order, so every output element accumulates the same fl() sequence.

#include <cstddef>

namespace fedclust::tensor {

// out(out_c, OH*OW) = weights(out_c, C*kh*kw) x im2col(img). `out` is
// overwritten (beta == 0 semantics); bias is the caller's business.
void conv2d_forward_fused(const float* img, std::size_t c, std::size_t h,
                          std::size_t w, const float* weights,
                          std::size_t out_c, std::size_t kh, std::size_t kw,
                          std::size_t stride, std::size_t pad, float* out);

}  // namespace fedclust::tensor
