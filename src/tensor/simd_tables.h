#pragma once

// Internal: per-ISA kernel tables wired together by simd_dispatch.cpp.
// Each function returns a process-lifetime table; avx2/avx512/neon return
// nullptr when the build (not the host) lacks that ISA's code — runtime
// host support is checked separately by util::isa_supported.

#include "tensor/simd.h"

namespace fedclust::tensor::simd::detail {

const KernelTable& scalar_table();
const KernelTable* avx2_table();
const KernelTable* avx512_table();
const KernelTable* neon_table();

}  // namespace fedclust::tensor::simd::detail
