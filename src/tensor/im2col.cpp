#include "tensor/im2col.h"

#include <stdexcept>

#include "obs/trace.h"

namespace fedclust::tensor {

std::size_t conv_out_dim(std::size_t in, std::size_t kernel,
                         std::size_t stride, std::size_t pad) {
  const std::size_t padded = in + 2 * pad;
  if (padded < kernel) {
    throw std::invalid_argument("conv_out_dim: kernel larger than input");
  }
  return (padded - kernel) / stride + 1;
}

void im2col(const float* img, std::size_t c, std::size_t h, std::size_t w,
            std::size_t kh, std::size_t kw, std::size_t stride,
            std::size_t pad, float* col) {
  OBS_SPAN("im2col");
  const std::size_t oh = conv_out_dim(h, kh, stride, pad);
  const std::size_t ow = conv_out_dim(w, kw, stride, pad);
  const std::size_t out_area = oh * ow;
  // Row r of col corresponds to (channel, ky, kx); column to (oy, ox).
  std::size_t row = 0;
  for (std::size_t ch = 0; ch < c; ++ch) {
    const float* plane = img + ch * h * w;
    for (std::size_t ky = 0; ky < kh; ++ky) {
      for (std::size_t kx = 0; kx < kw; ++kx, ++row) {
        float* out_row = col + row * out_area;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
            for (std::size_t ox = 0; ox < ow; ++ox) out_row[oy * ow + ox] = 0.0f;
            continue;
          }
          const float* in_row = plane + static_cast<std::size_t>(iy) * w;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            out_row[oy * ow + ox] =
                (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w))
                    ? 0.0f
                    : in_row[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void col2im(const float* col, std::size_t c, std::size_t h, std::size_t w,
            std::size_t kh, std::size_t kw, std::size_t stride,
            std::size_t pad, float* img) {
  OBS_SPAN("col2im");
  const std::size_t oh = conv_out_dim(h, kh, stride, pad);
  const std::size_t ow = conv_out_dim(w, kw, stride, pad);
  const std::size_t out_area = oh * ow;
  std::size_t row = 0;
  for (std::size_t ch = 0; ch < c; ++ch) {
    float* plane = img + ch * h * w;
    for (std::size_t ky = 0; ky < kh; ++ky) {
      for (std::size_t kx = 0; kx < kw; ++kx, ++row) {
        const float* in_row = col + row * out_area;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
          float* dst_row = plane + static_cast<std::size_t>(iy) * w;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
            dst_row[static_cast<std::size_t>(ix)] += in_row[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace fedclust::tensor
