#include "tensor/im2col.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "obs/trace.h"

namespace fedclust::tensor {

std::size_t conv_out_dim(std::size_t in, std::size_t kernel,
                         std::size_t stride, std::size_t pad) {
  const std::size_t padded = in + 2 * pad;
  if (padded < kernel) {
    throw std::invalid_argument("conv_out_dim: kernel larger than input");
  }
  return (padded - kernel) / stride + 1;
}

void im2col_rows(const float* img, std::size_t c, std::size_t h,
                 std::size_t w, std::size_t kh, std::size_t kw,
                 std::size_t stride, std::size_t pad, std::size_t row0,
                 std::size_t row1, float* col) {
  const std::size_t oh = conv_out_dim(h, kh, stride, pad);
  const std::size_t ow = conv_out_dim(w, kw, stride, pad);
  const std::size_t out_area = oh * ow;
  // Row r of the full column matrix corresponds to (channel, ky, kx);
  // column to (oy, ox). `col` receives rows [row0, row1) contiguously.
  for (std::size_t row = row0; row < row1; ++row) {
    const std::size_t ch = row / (kh * kw);
    const std::size_t rem = row % (kh * kw);
    const std::size_t ky = rem / kw;
    const std::size_t kx = rem % kw;
    const float* plane = img + ch * h * w;
    float* out_row = col + (row - row0) * out_area;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      const std::ptrdiff_t iy =
          static_cast<std::ptrdiff_t>(oy * stride + ky) -
          static_cast<std::ptrdiff_t>(pad);
      if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
        std::memset(out_row + oy * ow, 0, ow * sizeof(float));
        continue;
      }
      const float* in_row = plane + static_cast<std::size_t>(iy) * w;
      if (stride == 1) {
        // Unit stride: ix = ox + (kx - pad), so the in-bounds ox span
        // [lo, hi) is one contiguous copy framed by zero fill.
        const std::ptrdiff_t d = static_cast<std::ptrdiff_t>(kx) -
                                 static_cast<std::ptrdiff_t>(pad);
        const std::size_t lo = static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, -d));
        const std::size_t hi = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
            static_cast<std::ptrdiff_t>(w) - d, 0,
            static_cast<std::ptrdiff_t>(ow)));
        float* dst = out_row + oy * ow;
        if (lo > 0) std::memset(dst, 0, lo * sizeof(float));
        if (hi > lo) {
          std::memcpy(dst + lo, in_row + static_cast<std::ptrdiff_t>(lo) + d,
                      (hi - lo) * sizeof(float));
        }
        if (hi < ow) std::memset(dst + hi, 0, (ow - hi) * sizeof(float));
        continue;
      }
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const std::ptrdiff_t ix =
            static_cast<std::ptrdiff_t>(ox * stride + kx) -
            static_cast<std::ptrdiff_t>(pad);
        out_row[oy * ow + ox] =
            (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w))
                ? 0.0f
                : in_row[static_cast<std::size_t>(ix)];
      }
    }
  }
}

void im2col(const float* img, std::size_t c, std::size_t h, std::size_t w,
            std::size_t kh, std::size_t kw, std::size_t stride,
            std::size_t pad, float* col) {
  OBS_SPAN("im2col");
  im2col_rows(img, c, h, w, kh, kw, stride, pad, 0, c * kh * kw, col);
}

void col2im(const float* col, std::size_t c, std::size_t h, std::size_t w,
            std::size_t kh, std::size_t kw, std::size_t stride,
            std::size_t pad, float* img) {
  OBS_SPAN("col2im");
  const std::size_t oh = conv_out_dim(h, kh, stride, pad);
  const std::size_t ow = conv_out_dim(w, kw, stride, pad);
  const std::size_t out_area = oh * ow;
  std::size_t row = 0;
  for (std::size_t ch = 0; ch < c; ++ch) {
    float* plane = img + ch * h * w;
    for (std::size_t ky = 0; ky < kh; ++ky) {
      for (std::size_t kx = 0; kx < kw; ++kx, ++row) {
        const float* in_row = col + row * out_area;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
          float* dst_row = plane + static_cast<std::size_t>(iy) * w;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
            dst_row[static_cast<std::size_t>(ix)] += in_row[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace fedclust::tensor
