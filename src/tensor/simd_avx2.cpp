// AVX2 kernel table (requires avx2+fma+f16c at runtime; this TU is built
// with -mavx2 -mfma -mf16c -ffp-contract=off and must only be entered
// through the dispatch in simd_dispatch.cpp).
//
// Every kernel except the _fma GEMM variant is bit-identical to the scalar
// table: vector lanes perform the same fl(mul) -> fl(add) sequence per
// element in the same order the scalar loops do, F16C NaN lanes are patched
// through the scalar converter (hardware quietizes sNaN payloads), and the
// qint8 round-half-away is emulated exactly (see qint8_quantize below).

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/simd_tables.h"
#include "util/f16.h"

namespace fedclust::tensor::simd {
namespace detail {

namespace {

// ------------------------------------------------------------------ gemm
//
// Register-blocked microkernel: MR x NR C tile held in ymm registers, A
// packed (alpha pre-applied — same fl(alpha*a) the scalar kernel computes
// per use) into an MR-interleaved KC panel, B read in place. For a fixed C
// element the k terms still accumulate in ascending p with mul and add
// rounded separately, so the result is bit-identical to the scalar loop.

constexpr std::size_t kMr = 6;
constexpr std::size_t kNr = 16;  // two __m256 per row
constexpr std::size_t kKc = 256;

void pack_a(const float* a, std::size_t lda, std::size_t i0, std::size_t mr,
            std::size_t kb, std::size_t kc, float alpha, float* apack) {
  for (std::size_t p = 0; p < kc; ++p) {
    for (std::size_t r = 0; r < kMr; ++r) {
      apack[p * kMr + r] =
          r < mr ? alpha * a[(i0 + r) * lda + kb + p] : 0.0f;
    }
  }
}

template <bool kFma>
void microkernel(const float* apack, std::size_t kc, const float* b,
                 std::size_t ldb, float* c, std::size_t ldc) {
  __m256 acc0[kMr];
  __m256 acc1[kMr];
  for (std::size_t r = 0; r < kMr; ++r) {
    acc0[r] = _mm256_loadu_ps(c + r * ldc);
    acc1[r] = _mm256_loadu_ps(c + r * ldc + 8);
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b + p * ldb);
    const __m256 b1 = _mm256_loadu_ps(b + p * ldb + 8);
    const float* ap = apack + p * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m256 av = _mm256_broadcast_ss(ap + r);
      if constexpr (kFma) {
        acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
        acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
      } else {
        acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(av, b0));
        acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(av, b1));
      }
    }
  }
  for (std::size_t r = 0; r < kMr; ++r) {
    _mm256_storeu_ps(c + r * ldc, acc0[r]);
    _mm256_storeu_ps(c + r * ldc + 8, acc1[r]);
  }
}

// Partial tiles (row remainder or column tail): plain scalar loops with the
// golden per-element order — any (i, j) may be computed scalar without
// breaking bit-identity as long as p ascends.
void edge_tile(const float* apack, std::size_t kc, std::size_t mr,
               const float* b, std::size_t ldb, float* c, std::size_t ldc,
               std::size_t nr) {
  for (std::size_t p = 0; p < kc; ++p) {
    const float* __restrict brow = b + p * ldb;
    for (std::size_t r = 0; r < mr; ++r) {
      const float av = apack[p * kMr + r];
      float* __restrict crow = c + r * ldc;
      for (std::size_t j = 0; j < nr; ++j) crow[j] += av * brow[j];
    }
  }
}

template <bool kFma>
void gemm_nn_range_avx2(std::size_t m0, std::size_t m1, std::size_t n,
                        std::size_t k, float alpha, const float* a,
                        std::size_t lda, const float* b, std::size_t ldb,
                        float* c, std::size_t ldc) {
  // Thread-local pack panel: ~6 KiB, reused across calls, one per worker.
  thread_local std::vector<float> apack_buf;
  apack_buf.resize(kMr * kKc);
  float* apack = apack_buf.data();

  for (std::size_t i0 = m0; i0 < m1; i0 += kMr) {
    const std::size_t mr = std::min(kMr, m1 - i0);
    for (std::size_t kb = 0; kb < k; kb += kKc) {
      const std::size_t kc = std::min(kKc, k - kb);
      pack_a(a, lda, i0, mr, kb, kc, alpha, apack);
      std::size_t j0 = 0;
      if (mr == kMr) {
        for (; j0 + kNr <= n; j0 += kNr) {
          microkernel<kFma>(apack, kc, b + kb * ldb + j0, ldb,
                            c + i0 * ldc + j0, ldc);
        }
      }
      if (j0 < n) {
        edge_tile(apack, kc, mr, b + kb * ldb + j0, ldb, c + i0 * ldc + j0,
                  ldc, n - j0);
      }
    }
  }
}

// ----------------------------------------------------------------- scale

void scale_avx2(float* c, std::size_t n, float beta) {
  const __m256 vb = _mm256_set1_ps(beta);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(c + i, _mm256_mul_ps(_mm256_loadu_ps(c + i), vb));
  }
  for (; i < n; ++i) c[i] *= beta;
}

// ------------------------------------------------------------------- f16

void f16_encode_avx2(const float* src, std::size_t n, std::uint16_t* dst) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(src + i);
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
    const int nan_lanes =
        _mm256_movemask_ps(_mm256_cmp_ps(v, v, _CMP_UNORD_Q));
    if (nan_lanes != 0) {
      // vcvtps2ph quietizes sNaN payloads; the wire format preserves the
      // scalar converter's payload bits, so NaN lanes go the scalar way.
      for (int l = 0; l < 8; ++l) {
        if (nan_lanes & (1 << l)) dst[i + l] = util::f32_to_f16(src[i + l]);
      }
    }
  }
  for (; i < n; ++i) dst[i] = util::f32_to_f16(src[i]);
}

void f16_decode_avx2(const std::uint16_t* src, std::size_t n, float* dst) {
  const __m128i mag_mask = _mm_set1_epi16(0x7fff);
  const __m128i inf16 = _mm_set1_epi16(0x7c00);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
    // NaN halves: (h & 0x7fff) > 0x7c00 (both operands are non-negative in
    // the signed 16-bit compare).
    const int nan_bytes = _mm_movemask_epi8(
        _mm_cmpgt_epi16(_mm_and_si128(h, mag_mask), inf16));
    if (nan_bytes != 0) {
      for (int l = 0; l < 8; ++l) {
        if (nan_bytes & (1 << (2 * l))) dst[i + l] = util::f16_to_f32(src[i + l]);
      }
    }
  }
  for (; i < n; ++i) dst[i] = util::f16_to_f32(src[i]);
}

// ----------------------------------------------------------------- qint8

void minmax_finite_avx2(const float* src, std::size_t n, float* lo,
                        float* hi, bool* finite) {
  const float inf = std::numeric_limits<float>::infinity();
  float mn = inf;
  float mx = -inf;
  bool ok = true;
  std::size_t i = 0;
  if (n >= 8) {
    const __m256 vinf = _mm256_set1_ps(inf);
    const __m256 abs_mask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    __m256 vmn = vinf;
    __m256 vmx = _mm256_set1_ps(-inf);
    __m256 vok = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
    for (; i + 8 <= n; i += 8) {
      const __m256 v = _mm256_loadu_ps(src + i);
      // |v| < inf is false for NaN (unordered) and for inf itself.
      vok = _mm256_and_ps(
          vok, _mm256_cmp_ps(_mm256_and_ps(v, abs_mask), vinf, _CMP_LT_OQ));
      vmn = _mm256_min_ps(vmn, v);
      vmx = _mm256_max_ps(vmx, v);
    }
    ok = _mm256_movemask_ps(vok) == 0xff;
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, vmn);
    for (float lane : lanes) mn = std::min(mn, lane);
    _mm256_store_ps(lanes, vmx);
    for (float lane : lanes) mx = std::max(mx, lane);
  }
  for (; i < n; ++i) {
    if (!std::isfinite(src[i])) ok = false;
    mn = std::min(mn, src[i]);
    mx = std::max(mx, src[i]);
  }
  *lo = mn + 0.0f;  // canonicalize -0.0 (see scalar kernel)
  *hi = mx + 0.0f;
  *finite = ok;
}

void qint8_quantize_avx2(const float* src, std::size_t n, float lo,
                         float scale, std::uint8_t* dst) {
  const __m256 vlo = _mm256_set1_ps(lo);
  const __m256 vs = _mm256_set1_ps(scale);
  const __m256 vhalf = _mm256_set1_ps(0.5f);
  const __m256 vone = _mm256_set1_ps(1.0f);
  const __m256 vzero = _mm256_setzero_ps();
  const __m256 v255 = _mm256_set1_ps(255.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 t =
        _mm256_div_ps(_mm256_sub_ps(_mm256_loadu_ps(src + i), vlo), vs);
    // lroundf emulation (round half away from zero, t >= -0 here): split
    // t into trunc + exact fraction (Sterbenz: tr <= t <= 2*tr), bump when
    // the fraction reaches one half, then clamp. Bit-identical to the
    // scalar kernel's lroundf+clamp over the codec's domain.
    const __m256 tr =
        _mm256_round_ps(t, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
    const __m256 frac = _mm256_sub_ps(t, tr);
    const __m256 bump =
        _mm256_and_ps(_mm256_cmp_ps(frac, vhalf, _CMP_GE_OQ), vone);
    __m256 r = _mm256_add_ps(tr, bump);
    r = _mm256_min_ps(_mm256_max_ps(r, vzero), v255);
    const __m256i q = _mm256_cvtps_epi32(r);  // integral-valued -> exact
    const __m128i p16 = _mm_packus_epi32(_mm256_castsi256_si128(q),
                                         _mm256_extracti128_si256(q, 1));
    const __m128i p8 = _mm_packus_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i), p8);
  }
  for (; i < n; ++i) {
    const float t = (src[i] - lo) / scale;
    const long r = std::lroundf(t);
    dst[i] = static_cast<std::uint8_t>(r < 0 ? 0 : (r > 255 ? 255 : r));
  }
}

void qint8_dequantize_avx2(const std::uint8_t* src, std::size_t n, float lo,
                           float scale, float* dst) {
  const __m256 vlo = _mm256_set1_ps(lo);
  const __m256 vs = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i q32 = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i)));
    const __m256 qf = _mm256_cvtepi32_ps(q32);
    _mm256_storeu_ps(dst + i, _mm256_add_ps(vlo, _mm256_mul_ps(vs, qf)));
  }
  for (; i < n; ++i) dst[i] = lo + scale * static_cast<float>(src[i]);
}

void qint8_accumulate_avx2(std::int64_t* acc, const std::uint8_t* q,
                           std::size_t n, std::int32_t m) {
  const __m256i vm = _mm256_set1_epi32(m);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i q32 = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + i)));
    const __m256i prod = _mm256_mullo_epi32(q32, vm);  // |m|*255 < 2^31
    const __m256i p0 =
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(prod));
    const __m256i p1 =
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(prod, 1));
    auto* a = reinterpret_cast<__m256i*>(acc + i);
    _mm256_storeu_si256(a, _mm256_add_epi64(_mm256_loadu_si256(a), p0));
    auto* a1 = reinterpret_cast<__m256i*>(acc + i + 4);
    _mm256_storeu_si256(a1, _mm256_add_epi64(_mm256_loadu_si256(a1), p1));
  }
  const auto m64 = static_cast<std::int64_t>(m);
  for (; i < n; ++i) acc[i] += m64 * static_cast<std::int64_t>(q[i]);
}

}  // namespace

const KernelTable* avx2_table() {
  static const KernelTable table = {
      util::SimdIsa::kAvx2,
      &gemm_nn_range_avx2<false>,
      &gemm_nn_range_avx2<true>,
      &scale_avx2,
      &f16_encode_avx2,
      &f16_decode_avx2,
      &minmax_finite_avx2,
      &qint8_quantize_avx2,
      &qint8_dequantize_avx2,
      &qint8_accumulate_avx2,
  };
  return &table;
}

}  // namespace detail
}  // namespace fedclust::tensor::simd

#else  // non-x86 build: no AVX2 table

#include "tensor/simd_tables.h"

namespace fedclust::tensor::simd::detail {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace fedclust::tensor::simd::detail

#endif
