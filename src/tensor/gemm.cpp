#include "tensor/gemm.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace fedclust::tensor {

namespace {

// Panel sizes tuned for a ~32 KiB L1 / 1 MiB L2 scalar core.
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockN = 64;
constexpr std::size_t kBlockK = 128;

// Below this many multiply-adds, thread dispatch costs more than it saves.
constexpr std::size_t kParallelThreshold = 1u << 18;

// Core kernel on a row range [m0, m1) with A in non-transposed (m, k)
// layout and B in non-transposed (k, n) layout.
void gemm_nn_range(std::size_t m0, std::size_t m1, std::size_t n,
                   std::size_t k, float alpha, const float* a,
                   std::size_t lda, const float* b, std::size_t ldb,
                   float* c, std::size_t ldc) {
  for (std::size_t ib = m0; ib < m1; ib += kBlockM) {
    const std::size_t ie = std::min(m1, ib + kBlockM);
    for (std::size_t kb = 0; kb < k; kb += kBlockK) {
      const std::size_t ke = std::min(k, kb + kBlockK);
      for (std::size_t jb = 0; jb < n; jb += kBlockN) {
        const std::size_t je = std::min(n, jb + kBlockN);
        for (std::size_t i = ib; i < ie; ++i) {
          const float* __restrict arow = a + i * lda;
          float* __restrict crow = c + i * ldc;
          // No zero-skip on av: with real weights an exact zero is
          // vanishingly rare, and a branch here defeats vectorization of
          // the FMA loop below.
          for (std::size_t p = kb; p < ke; ++p) {
            const float av = alpha * arow[p];
            const float* __restrict brow = b + p * ldb;
            for (std::size_t j = jb; j < je; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

// Materializes op(X) into a contiguous row-major (rows, cols) buffer.
std::vector<float> transpose_to(const float* x, std::size_t rows,
                                std::size_t cols, std::size_t ldx) {
  // Output is (rows, cols); input is (cols, rows) with leading dim ldx.
  std::vector<float> out(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out[r * cols + c] = x[c * ldx + r];
    }
  }
  return out;
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc) {
  OBS_SPAN_ARG("gemm", m * n * k);
  OBS_COUNTER_ADD("gemm.calls", 1);
  OBS_COUNTER_ADD("gemm.madds", m * n * k);
  // Scale / clear C first so the kernel can be pure accumulation.
  if (beta == 0.0f) {
    for (std::size_t i = 0; i < m; ++i) {
      std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
    }
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  // Normalize to the NN case by materializing transposed operands. The
  // copies are O(mk)/O(kn) against an O(mnk) kernel — negligible, and they
  // keep the hot loop unit-stride.
  std::vector<float> a_buf;
  std::vector<float> b_buf;
  const float* an = a;
  std::size_t lda_n = lda;
  if (trans_a == Trans::kYes) {
    a_buf = transpose_to(a, m, k, lda);
    an = a_buf.data();
    lda_n = k;
  }
  const float* bn = b;
  std::size_t ldb_n = ldb;
  if (trans_b == Trans::kYes) {
    b_buf = transpose_to(b, k, n, ldb);
    bn = b_buf.data();
    ldb_n = n;
  }

  if (m * n * k >= kParallelThreshold && util::global_pool().size() > 0) {
    util::parallel_for_chunked(
        0, m, [&](std::size_t lo, std::size_t hi) {
          gemm_nn_range(lo, hi, n, k, alpha, an, lda_n, bn, ldb_n, c, ldc);
        });
  } else {
    gemm_nn_range(0, m, n, k, alpha, an, lda_n, bn, ldb_n, c, ldc);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  return matmul(a, Trans::kNo, b, Trans::kNo);
}

Tensor matmul(const Tensor& a, Trans trans_a, const Tensor& b,
              Trans trans_b) {
  if (a.ndim() != 2 || b.ndim() != 2) {
    throw std::invalid_argument("matmul: expected 2-D tensors");
  }
  const std::size_t m = trans_a == Trans::kNo ? a.dim(0) : a.dim(1);
  const std::size_t ka = trans_a == Trans::kNo ? a.dim(1) : a.dim(0);
  const std::size_t kb = trans_b == Trans::kNo ? b.dim(0) : b.dim(1);
  const std::size_t n = trans_b == Trans::kNo ? b.dim(1) : b.dim(0);
  if (ka != kb) {
    throw std::invalid_argument("matmul: inner dimension mismatch " +
                                a.shape_str() + " x " + b.shape_str());
  }
  Tensor c({m, n});
  gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data(), a.dim(1), b.data(),
       b.dim(1), 0.0f, c.data(), n);
  return c;
}

}  // namespace fedclust::tensor
