#include "tensor/gemm.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/simd.h"
#include "util/cpu.h"
#include "util/thread_pool.h"

namespace fedclust::tensor {

namespace {

// Below this many multiply-adds, thread dispatch costs more than it saves.
constexpr std::size_t kParallelThreshold = 1u << 18;

// Reusable per-thread transpose scratch: transposed matmuls run in the
// training hot loop (conv backward does two per image), so the operand
// copies must not hit the allocator every call. Two slots because one gemm
// can transpose both A and B.
std::vector<float>& transpose_scratch(int slot) {
  thread_local std::vector<float> bufs[2];
  return bufs[slot];
}

// Materializes op(X) into `out` as a contiguous row-major (rows, cols)
// buffer; input is (cols, rows) with leading dim ldx.
const float* transpose_into(std::vector<float>& out, const float* x,
                            std::size_t rows, std::size_t cols,
                            std::size_t ldx) {
  out.resize(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out[r * cols + c] = x[c * ldx + r];
    }
  }
  return out.data();
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc) {
  OBS_SPAN_ARG("gemm", m * n * k);
  OBS_COUNTER_ADD("gemm.calls", 1);
  OBS_COUNTER_ADD("gemm.madds", m * n * k);
  const simd::KernelTable& kt = simd::kernels();
  // Scale / clear C first so the kernel can be pure accumulation. The
  // common beta == 0 case is a straight fill; beta-scaling goes through the
  // dispatched elementwise kernel (bit-identical to the scalar loop at any
  // ISA). Contiguous C (ldc == n) collapses to one pass over m*n.
  if (beta == 0.0f) {
    if (ldc == n) {
      std::fill(c, c + m * n, 0.0f);
    } else {
      for (std::size_t i = 0; i < m; ++i) {
        std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
      }
    }
  } else if (beta != 1.0f) {
    if (ldc == n) {
      kt.scale(c, m * n, beta);
    } else {
      for (std::size_t i = 0; i < m; ++i) kt.scale(c + i * ldc, n, beta);
    }
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  // Normalize to the NN case by materializing transposed operands into the
  // thread-local scratch. The copies are O(mk)/O(kn) against an O(mnk)
  // kernel — negligible, and they keep the hot loop unit-stride.
  const float* an = a;
  std::size_t lda_n = lda;
  if (trans_a == Trans::kYes) {
    an = transpose_into(transpose_scratch(0), a, m, k, lda);
    lda_n = k;
  }
  const float* bn = b;
  std::size_t ldb_n = ldb;
  if (trans_b == Trans::kYes) {
    bn = transpose_into(transpose_scratch(1), b, k, n, ldb);
    ldb_n = n;
  }

  // The exact kernel is bit-identical to scalar at every ISA; the FMA-
  // contracted variant only runs under the --fast-math-kernels opt-in.
  const auto kernel = util::fast_math_kernels() ? kt.gemm_nn_range_fma
                                                : kt.gemm_nn_range;
  if (m * n * k >= kParallelThreshold && util::global_pool().size() > 0) {
    util::parallel_for_chunked(
        0, m, [&](std::size_t lo, std::size_t hi) {
          kernel(lo, hi, n, k, alpha, an, lda_n, bn, ldb_n, c, ldc);
        });
  } else {
    kernel(0, m, n, k, alpha, an, lda_n, bn, ldb_n, c, ldc);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  return matmul(a, Trans::kNo, b, Trans::kNo);
}

Tensor matmul(const Tensor& a, Trans trans_a, const Tensor& b,
              Trans trans_b) {
  if (a.ndim() != 2 || b.ndim() != 2) {
    throw std::invalid_argument("matmul: expected 2-D tensors");
  }
  const std::size_t m = trans_a == Trans::kNo ? a.dim(0) : a.dim(1);
  const std::size_t ka = trans_a == Trans::kNo ? a.dim(1) : a.dim(0);
  const std::size_t kb = trans_b == Trans::kNo ? b.dim(0) : b.dim(1);
  const std::size_t n = trans_b == Trans::kNo ? b.dim(1) : b.dim(0);
  if (ka != kb) {
    throw std::invalid_argument("matmul: inner dimension mismatch " +
                                a.shape_str() + " x " + b.shape_str());
  }
  Tensor c({m, n});
  gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data(), a.dim(1), b.data(),
       b.dim(1), 0.0f, c.data(), n);
  return c;
}

}  // namespace fedclust::tensor
