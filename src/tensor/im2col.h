#pragma once

// im2col / col2im lowering, turning 2-D convolution into GEMM.
//
// Layouts: images are CHW; the column matrix is (C*kh*kw, OH*OW) row-major,
// so conv forward is W_mat(out_c, C*kh*kw) x col = out(out_c, OH*OW).

#include <cstddef>

namespace fedclust::tensor {

std::size_t conv_out_dim(std::size_t in, std::size_t kernel,
                         std::size_t stride, std::size_t pad);

// Expands one CHW image into the column matrix (zero padding).
void im2col(const float* img, std::size_t c, std::size_t h, std::size_t w,
            std::size_t kh, std::size_t kw, std::size_t stride,
            std::size_t pad, float* col);

// Expands only rows [row0, row1) of the column matrix into `col` (which
// holds row1 - row0 contiguous rows of OH*OW floats). Row r corresponds to
// (channel, ky, kx) = (r / (kh*kw), (r % (kh*kw)) / kw, r % kw). This is
// the panel primitive behind the fused im2col+GEMM convolution: the full
// (C*kh*kw, OH*OW) matrix never has to be materialized at once.
void im2col_rows(const float* img, std::size_t c, std::size_t h,
                 std::size_t w, std::size_t kh, std::size_t kw,
                 std::size_t stride, std::size_t pad, std::size_t row0,
                 std::size_t row1, float* col);

// Adjoint of im2col: scatters-and-accumulates the column matrix back into a
// CHW image buffer. The caller must zero `img` first; overlapping patches
// accumulate, which is exactly the gradient of im2col.
void col2im(const float* col, std::size_t c, std::size_t h, std::size_t w,
            std::size_t kh, std::size_t kw, std::size_t stride,
            std::size_t pad, float* img);

}  // namespace fedclust::tensor
