#pragma once

// Runtime-dispatched SIMD kernel layer.
//
// One KernelTable per ISA (scalar / AVX2 / AVX-512 / NEON), selected once
// at startup by util::active_isa() (env FEDCLUST_ISA overrides; see
// util/cpu.h). The scalar table is the golden reference: every kernel in a
// SIMD table except gemm_nn_range_fma must produce bit-identical output to
// its scalar counterpart for all inputs — same accumulation order, same
// rounding per operation (mul then add, never contracted to FMA), same
// NaN payloads (docs/INVARIANTS.md §Kernels). simd_kernel_test sweeps every
// host-reachable table against scalar and asserts exact equality.
//
// gemm_nn_range_fma is the one exception: it contracts mul+add into FMA
// (one rounding instead of two) and only runs under the opt-in
// --fast-math-kernels flag. In the scalar and NEON tables it aliases the
// exact kernel.
//
// All kernel translation units are compiled with -ffp-contract=off so the
// compiler cannot fuse the explicitly separate multiply and add either in
// the scalar loops or around the intrinsics.

#include <cstddef>
#include <cstdint>

#include "util/cpu.h"

namespace fedclust::tensor::simd {

struct KernelTable {
  util::SimdIsa isa;

  // C[i,j] += fl(fl(alpha*A[i,p]) * B[p,j]) accumulated in ascending p,
  // rows [m0, m1); A is row-major (m, k) stride lda, B row-major (k, n)
  // stride ldb, C stride ldc. Pure accumulation — the caller applies beta.
  void (*gemm_nn_range)(std::size_t m0, std::size_t m1, std::size_t n,
                        std::size_t k, float alpha, const float* a,
                        std::size_t lda, const float* b, std::size_t ldb,
                        float* c, std::size_t ldc);
  // Same contract with FMA contraction allowed (fast-math opt-in only).
  void (*gemm_nn_range_fma)(std::size_t m0, std::size_t m1, std::size_t n,
                            std::size_t k, float alpha, const float* a,
                            std::size_t lda, const float* b, std::size_t ldb,
                            float* c, std::size_t ldc);

  // c[i] = fl(c[i] * beta) for i in [0, n) — gemm's beta prologue.
  void (*scale)(float* c, std::size_t n, float beta);

  // IEEE binary16 conversions, elementwise util::f32_to_f16 / f16_to_f32
  // (round-to-nearest-even; NaN payload bits preserved — SIMD tables patch
  // NaN lanes through the scalar functions because hardware converts
  // quietize sNaNs).
  void (*f16_encode)(const float* src, std::size_t n, std::uint16_t* dst);
  void (*f16_decode)(const std::uint16_t* src, std::size_t n, float* dst);

  // qint8 per-chunk min/max scan: *finite = all values finite; when finite,
  // *lo/*hi are min/max with -0.0 canonicalized to +0.0 (so the result is
  // independent of scan order — lo/hi become wire bytes). When not finite
  // *lo/*hi are unspecified (the codec poisons the chunk).
  void (*minmax_finite)(const float* src, std::size_t n, float* lo,
                        float* hi, bool* finite);

  // q[i] = clamp_0_255(lroundf(fl(fl(src[i] - lo) / scale))); requires
  // scale > 0 (the codec zero-fills degenerate chunks itself).
  void (*qint8_quantize)(const float* src, std::size_t n, float lo,
                         float scale, std::uint8_t* dst);
  // dst[i] = fl(lo + fl(scale * float(src[i]))).
  void (*qint8_dequantize)(const std::uint8_t* src, std::size_t n, float lo,
                           float scale, float* dst);

  // acc[i] += int64(m) * q[i] — fixed-point int8 cohort accumulation for
  // the fast-math aggregation path. Caller guarantees |m| < 2^23 so every
  // product fits int32 before widening.
  void (*qint8_accumulate)(std::int64_t* acc, const std::uint8_t* q,
                           std::size_t n, std::int32_t m);
};

// Table for util::active_isa() — re-reads the (atomic) active ISA on every
// call so force_isa_for_testing takes effect immediately.
const KernelTable& kernels();

// Exact table for one ISA. The ISA must be host-supported
// (util::isa_supported); requesting an unsupported one throws
// std::runtime_error rather than returning a table that would SIGILL.
const KernelTable& kernels_for(util::SimdIsa isa);

}  // namespace fedclust::tensor::simd
