#include "linalg/principal_angles.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "linalg/svd.h"
#include "tensor/gemm.h"

namespace fedclust::linalg {

std::vector<float> principal_angle_cosines(const tensor::Tensor& u1,
                                           const tensor::Tensor& u2) {
  if (u1.ndim() != 2 || u2.ndim() != 2 || u1.dim(0) != u2.dim(0)) {
    throw std::invalid_argument(
        "principal_angle_cosines: subspace bases must share ambient dim");
  }
  if (u1.dim(1) == 0 || u2.dim(1) == 0) return {};
  // cos(theta_i) are the singular values of U1^T U2 (p x q, tiny).
  const tensor::Tensor overlap =
      tensor::matmul(u1, tensor::Trans::kYes, u2, tensor::Trans::kNo);
  SvdResult svd = jacobi_svd(overlap);
  const std::size_t r = std::min(u1.dim(1), u2.dim(1));
  std::vector<float> cosines(svd.s.begin(),
                             svd.s.begin() + static_cast<std::ptrdiff_t>(
                                                 std::min(r, svd.s.size())));
  for (auto& c : cosines) c = std::clamp(c, 0.0f, 1.0f);
  return cosines;
}

float principal_angle_distance_deg(const tensor::Tensor& u1,
                                   const tensor::Tensor& u2) {
  const auto cosines = principal_angle_cosines(u1, u2);
  double sum_deg = 0.0;
  for (const float c : cosines) {
    sum_deg += std::acos(static_cast<double>(c)) * 180.0 / std::numbers::pi;
  }
  return static_cast<float>(sum_deg);
}

}  // namespace fedclust::linalg
