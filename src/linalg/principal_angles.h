#pragma once

// Principal angles between subspaces, the similarity measure used by the
// PACFL baseline (Vahidian et al., 2022): clients summarize their data by a
// few principal vectors, and the server clusters on the angles between
// those per-client subspaces.

#include <vector>

#include "tensor/tensor.h"

namespace fedclust::linalg {

// u1 (d, p) and u2 (d, q) must have orthonormal columns. Returns the
// cosines of the min(p, q) principal angles, in descending order (clamped
// to [0, 1] against round-off).
std::vector<float> principal_angle_cosines(const tensor::Tensor& u1,
                                           const tensor::Tensor& u2);

// PACFL's scalar proximity: the sum of principal angles in degrees (smaller
// = more similar subspaces).
float principal_angle_distance_deg(const tensor::Tensor& u1,
                                   const tensor::Tensor& u2);

}  // namespace fedclust::linalg
