#pragma once

// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Sized for the simulator's needs: proximity/Gram matrices up to a few
// hundred rows, where Jacobi's O(n^3) with tiny constants beats anything
// fancier and is unconditionally stable.

#include <vector>

#include "tensor/tensor.h"

namespace fedclust::linalg {

struct EigenResult {
  // Eigenvalues in descending order.
  std::vector<float> values;
  // Column j of `vectors` is the eigenvector for values[j].
  tensor::Tensor vectors;
};

// a must be square and symmetric (validated up to a small tolerance).
EigenResult symmetric_eigen(const tensor::Tensor& a, int max_sweeps = 64,
                            double tol = 1e-12);

}  // namespace fedclust::linalg
