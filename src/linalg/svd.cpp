#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "linalg/eigen.h"
#include "tensor/gemm.h"

namespace fedclust::linalg {

using tensor::Tensor;

SvdResult jacobi_svd(const tensor::Tensor& a, int max_sweeps, double tol) {
  if (a.ndim() != 2) throw std::invalid_argument("jacobi_svd: need 2-D");
  const std::size_t m = a.dim(0);
  const std::size_t n = a.dim(1);

  // One-sided Jacobi wants columns as the working unit and m >= n; for wide
  // matrices decompose the transpose and swap U/V.
  if (m < n) {
    Tensor at({n, m});
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) at[j * m + i] = a[i * n + j];
    }
    SvdResult r = jacobi_svd(at, max_sweeps, tol);
    std::swap(r.u, r.v);
    return r;
  }

  // Work on columns of a double copy: u (m, n), v accumulates rotations.
  std::vector<double> u(m * n);
  for (std::size_t i = 0; i < m * n; ++i) u[i] = a[i];
  std::vector<double> v(n * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) v[j * n + j] = 1.0;

  const auto col_dot = [&](std::size_t p, std::size_t q) {
    double s = 0.0;
    for (std::size_t i = 0; i < m; ++i) s += u[i * n + p] * u[i * n + q];
    return s;
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double alpha = col_dot(p, p);
        const double beta = col_dot(q, q);
        const double gamma = col_dot(p, q);
        if (std::abs(gamma) <= tol * std::sqrt(alpha * beta) + tol) continue;
        converged = false;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double uip = u[i * n + p];
          const double uiq = u[i * n + q];
          u[i * n + p] = c * uip - s * uiq;
          u[i * n + q] = s * uip + c * uiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v[i * n + p];
          const double viq = v[i * n + q];
          v[i * n + p] = c * vip - s * viq;
          v[i * n + q] = s * vip + c * viq;
        }
      }
    }
    if (converged) break;
  }

  // Singular values are column norms; normalize U's columns.
  std::vector<double> sigma(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < m; ++i) s += u[i * n + j] * u[i * n + j];
    sigma[j] = std::sqrt(s);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  SvdResult result;
  result.u = Tensor({m, n});
  result.v = Tensor({n, n});
  result.s.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    result.s[j] = static_cast<float>(sigma[src]);
    const double inv = sigma[src] > 0.0 ? 1.0 / sigma[src] : 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      result.u[i * n + j] = static_cast<float>(u[i * n + src] * inv);
    }
    for (std::size_t i = 0; i < n; ++i) {
      result.v[i * n + j] = static_cast<float>(v[i * n + src]);
    }
  }
  return result;
}

tensor::Tensor truncated_left_singular(const tensor::Tensor& x,
                                       std::size_t k) {
  if (x.ndim() != 2) {
    throw std::invalid_argument("truncated_left_singular: need 2-D");
  }
  const std::size_t d = x.dim(0);
  const std::size_t n = x.dim(1);
  k = std::min(k, std::min(d, n));
  if (k == 0) return Tensor({d, 0});

  // Gram trick: X^T X = V S^2 V^T, then U = X V S^{-1}.
  const Tensor gram = tensor::matmul(x, tensor::Trans::kYes, x,
                                     tensor::Trans::kNo);  // (n, n)
  const EigenResult eig = symmetric_eigen(gram);

  // Count usable (numerically positive) eigenvalues among the top k.
  const double cutoff =
      1e-10 * (eig.values.empty() ? 1.0 : std::abs(eig.values[0])) + 1e-30;
  std::size_t usable = 0;
  while (usable < k && eig.values[usable] > cutoff) ++usable;

  Tensor u({d, usable});
  for (std::size_t j = 0; j < usable; ++j) {
    const double inv_sigma = 1.0 / std::sqrt(eig.values[j]);
    for (std::size_t i = 0; i < d; ++i) {
      double s = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        s += static_cast<double>(x[i * n + r]) * eig.vectors[r * n + j];
      }
      u[i * usable + j] = static_cast<float>(s * inv_sigma);
    }
  }
  return u;
}

tensor::Tensor orthonormalize_columns(const tensor::Tensor& a, double tol) {
  if (a.ndim() != 2) {
    throw std::invalid_argument("orthonormalize_columns: need 2-D");
  }
  const std::size_t m = a.dim(0);
  const std::size_t n = a.dim(1);
  std::vector<std::vector<double>> cols;
  cols.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> c(m);
    for (std::size_t i = 0; i < m; ++i) c[i] = a[i * n + j];
    // Modified Gram–Schmidt against the kept columns.
    for (const auto& q : cols) {
      double proj = 0.0;
      for (std::size_t i = 0; i < m; ++i) proj += q[i] * c[i];
      for (std::size_t i = 0; i < m; ++i) c[i] -= proj * q[i];
    }
    double norm = 0.0;
    for (const double x : c) norm += x * x;
    norm = std::sqrt(norm);
    if (norm <= tol) continue;  // linearly dependent column: drop
    for (auto& x : c) x /= norm;
    cols.push_back(std::move(c));
  }
  Tensor q({m, cols.size()});
  for (std::size_t j = 0; j < cols.size(); ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      q[i * cols.size() + j] = static_cast<float>(cols[j][i]);
    }
  }
  return q;
}

}  // namespace fedclust::linalg
