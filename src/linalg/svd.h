#pragma once

// Singular value decompositions:
//  * jacobi_svd — one-sided Jacobi, exact thin SVD for small matrices
//    (principal-angle computations are on p x p matrices with p ~ 3).
//  * truncated_left_singular — top-k left singular vectors of a tall
//    (d, n) matrix via the Gram trick (eigendecomposition of the n x n
//    Gram matrix), matching PACFL's truncated SVD of client data where
//    n_samples << n_features is false but n_samples is modest (~100).

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace fedclust::linalg {

struct SvdResult {
  tensor::Tensor u;        // (m, r) left singular vectors (columns)
  std::vector<float> s;    // r singular values, descending
  tensor::Tensor v;        // (n, r) right singular vectors (columns)
};

// Thin SVD of an (m, n) matrix, r = min(m, n). One-sided Jacobi on columns;
// intended for small matrices (n up to a few hundred).
SvdResult jacobi_svd(const tensor::Tensor& a, int max_sweeps = 64,
                     double tol = 1e-12);

// Top-k left singular vectors (columns) of an (d, n) matrix X, computed from
// the eigendecomposition of X^T X. k is clamped to the numerical rank;
// returned matrix is (d, k') with k' <= k, columns orthonormal.
tensor::Tensor truncated_left_singular(const tensor::Tensor& x, std::size_t k);

// Modified Gram–Schmidt QR of the columns of a (m, n) matrix, in place on a
// copy; returns the (m, n) Q factor. Columns that become numerically zero
// are dropped, so Q may have fewer columns than A.
tensor::Tensor orthonormalize_columns(const tensor::Tensor& a,
                                      double tol = 1e-10);

}  // namespace fedclust::linalg
