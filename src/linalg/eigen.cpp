#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fedclust::linalg {

using tensor::Tensor;

EigenResult symmetric_eigen(const tensor::Tensor& a, int max_sweeps,
                            double tol) {
  if (a.ndim() != 2 || a.dim(0) != a.dim(1)) {
    throw std::invalid_argument("symmetric_eigen: matrix must be square");
  }
  const std::size_t n = a.dim(0);
  // Symmetry check, scaled to the matrix magnitude.
  double scale = 0.0;
  for (std::size_t i = 0; i < n * n; ++i) {
    scale = std::max(scale, static_cast<double>(std::abs(a[i])));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (std::abs(a[i * n + j] - a[j * n + i]) > 1e-4 * (scale + 1.0)) {
        throw std::invalid_argument("symmetric_eigen: matrix not symmetric");
      }
    }
  }

  // Work in double for accuracy; inputs/outputs stay float.
  std::vector<double> m(n * n);
  for (std::size_t i = 0; i < n * n; ++i) m[i] = a[i];
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  const auto off_diag_norm = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        s += m[i * n + j] * m[i * n + j];
      }
    }
    return std::sqrt(2.0 * s);
  };

  const double threshold = tol * (scale + 1.0) * static_cast<double>(n);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm() <= threshold) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m[p * n + q];
        if (std::abs(apq) <= threshold / static_cast<double>(n * n)) continue;
        const double app = m[p * n + p];
        const double aqq = m[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation to rows/columns p, q of m.
        for (std::size_t i = 0; i < n; ++i) {
          const double mip = m[i * n + p];
          const double miq = m[i * n + q];
          m[i * n + p] = c * mip - s * miq;
          m[i * n + q] = s * mip + c * miq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double mpi = m[p * n + i];
          const double mqi = m[q * n + i];
          m[p * n + i] = c * mpi - s * mqi;
          m[q * n + i] = s * mpi + c * mqi;
        }
        // Accumulate the eigenvector rotation.
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v[i * n + p];
          const double viq = v[i * n + q];
          v[i * n + p] = c * vip - s * viq;
          v[i * n + q] = s * vip + c * viq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return m[x * n + x] > m[y * n + y];
  });

  EigenResult result;
  result.values.resize(n);
  result.vectors = Tensor({n, n});
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    result.values[j] = static_cast<float>(m[src * n + src]);
    for (std::size_t i = 0; i < n; ++i) {
      result.vectors[i * n + j] = static_cast<float>(v[i * n + src]);
    }
  }
  return result;
}

}  // namespace fedclust::linalg
