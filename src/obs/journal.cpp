#include "obs/journal.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace fedclust::obs {

std::atomic<bool> EventJournal::g_enabled{false};
std::atomic<bool> EventJournal::g_wall_clock{true};

namespace {

constexpr std::uint64_t kNoRoundContext = ~0ULL;

// Per-thread append-only buffer. Only the owning thread appends; flush
// reads while quiescent, so the plain vector needs no synchronization
// beyond the registry mutex that orders registration and export.
struct ThreadRows {
  std::vector<JournalRow> rows;
};

struct JournalState {
  mutable std::mutex mu;  // guards registration, the sink, and export
  std::vector<std::unique_ptr<ThreadRows>> buffers;
  std::unique_ptr<std::ofstream> sink;
  std::string path;
  std::string codec = "raw_f32";
  bool header_written = false;
  std::atomic<std::uint64_t> round_context{kNoRoundContext};
};

JournalState& state() {
  static JournalState* s = new JournalState;  // leaky: workers record
  return *s;                                  // until process exit
}

thread_local ThreadRows* tls_rows = nullptr;

ThreadRows& local_rows() {
  if (tls_rows == nullptr) {
    auto buf = std::make_unique<ThreadRows>();
    JournalState& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    tls_rows = buf.get();
    s.buffers.push_back(std::move(buf));
  }
  return *tls_rows;
}

const char* corruption_name(std::uint64_t ordinal) {
  switch (ordinal) {
    case 1: return "nan";
    case 2: return "inf";
    case 3: return "explode";
    case 4: return "bitflip";
    default: return "none";
  }
}

const char* quarantine_reason(std::uint64_t code) {
  return code == 1 ? "norm_bound" : "non_finite";
}

// One JSONL object per row; field names are event-specific so the file
// reads as a log, not a tuple dump. Keep in sync with
// docs/OBSERVABILITY.md §Journal row schema and obs/report.cpp.
void render_row(std::ostream& os, const JournalRow& r) {
  os << "{\"round\":" << r.round << ",\"client\":" << r.client
     << ",\"ev\":\"" << journal_event_name(r.event) << "\"";
  switch (r.event) {
    case JournalEvent::kCluster:
      os << ",\"cluster\":" << r.a;
      break;
    case JournalEvent::kDownload:
    case JournalEvent::kUpload:
      os << ",\"payload_bytes\":" << r.a << ",\"wire_bytes\":" << r.b;
      break;
    case JournalEvent::kTrain:
      os << ",\"train_us\":" << r.a;
      break;
    case JournalEvent::kStraggler:
      os << ",\"delay_milli\":" << r.a;
      break;
    case JournalEvent::kRetry:
      os << ",\"retries\":" << r.a;
      break;
    case JournalEvent::kCommFailed:
      os << ",\"attempts\":" << r.a;
      break;
    case JournalEvent::kDeadlineMissed:
      os << ",\"sim_time_milli\":" << r.a;
      break;
    case JournalEvent::kCorrupt:
      os << ",\"mode\":\"" << corruption_name(r.a) << "\"";
      break;
    case JournalEvent::kQuarantine:
      os << ",\"reason\":\"" << quarantine_reason(r.a) << "\"";
      break;
    case JournalEvent::kEval:
      os << ",\"acc_micro\":" << r.a;
      break;
    case JournalEvent::kHeartbeatMissed:
      os << ",\"in_flight\":" << r.a;
      break;
    case JournalEvent::kWorkerRestart:
      os << ",\"served\":" << r.a;
      break;
    case JournalEvent::kFrameReject:
      os << ",\"status\":" << r.a;
      break;
    case JournalEvent::kConnect:
    case JournalEvent::kReconnect:
    case JournalEvent::kSampled:
    case JournalEvent::kDropped:
    case JournalEvent::kCrash:
    case JournalEvent::kChecksumReject:
    case JournalEvent::kDelivered:
      break;
  }
  os << "}\n";
}

}  // namespace

const char* journal_event_name(JournalEvent ev) {
  switch (ev) {
    case JournalEvent::kSampled: return "sampled";
    case JournalEvent::kDropped: return "dropped";
    case JournalEvent::kCluster: return "cluster";
    case JournalEvent::kDownload: return "download";
    case JournalEvent::kTrain: return "train";
    case JournalEvent::kUpload: return "upload";
    case JournalEvent::kCrash: return "crash";
    case JournalEvent::kStraggler: return "straggler";
    case JournalEvent::kRetry: return "retry";
    case JournalEvent::kCommFailed: return "comm_failed";
    case JournalEvent::kDeadlineMissed: return "deadline_missed";
    case JournalEvent::kCorrupt: return "corrupt";
    case JournalEvent::kChecksumReject: return "checksum_reject";
    case JournalEvent::kQuarantine: return "quarantine";
    case JournalEvent::kDelivered: return "delivered";
    case JournalEvent::kEval: return "eval";
    case JournalEvent::kConnect: return "connect";
    case JournalEvent::kReconnect: return "reconnect";
    case JournalEvent::kHeartbeatMissed: return "heartbeat_missed";
    case JournalEvent::kWorkerRestart: return "worker_restart";
    case JournalEvent::kFrameReject: return "frame_reject";
  }
  return "unknown";
}

EventJournal& EventJournal::instance() {
  static EventJournal* j = new EventJournal;
  return *j;
}

void EventJournal::open(const std::string& path) {
  auto os = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*os) {
    throw std::runtime_error("EventJournal: cannot open journal output " +
                             path);
  }
  JournalState& s = state();
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    s.sink = std::move(os);
    s.path = path;
    s.header_written = false;
    for (auto& buf : s.buffers) buf->rows.clear();
  }
  s.round_context.store(kNoRoundContext, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

bool EventJournal::is_open() const {
  JournalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.sink != nullptr;
}

void EventJournal::close() {
  flush_round();
  g_enabled.store(false, std::memory_order_relaxed);
  JournalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.sink.reset();
  s.path.clear();
}

void EventJournal::set_codec_name(const std::string& name) {
  JournalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.codec = name;
}

void EventJournal::record(std::uint64_t round, std::uint64_t client,
                          JournalEvent ev, std::uint64_t a, std::uint64_t b) {
  if (!enabled()) return;
  local_rows().rows.push_back({round, client, ev, a, b});
}

void EventJournal::set_round_context(std::uint64_t round) {
  state().round_context.store(round, std::memory_order_relaxed);
}

void EventJournal::clear_round_context() {
  state().round_context.store(kNoRoundContext, std::memory_order_relaxed);
}

void EventJournal::record_in_context(std::uint64_t client, JournalEvent ev,
                                     std::uint64_t a, std::uint64_t b) {
  if (!enabled()) return;
  const std::uint64_t round =
      state().round_context.load(std::memory_order_relaxed);
  if (round == kNoRoundContext) return;
  record(round, client, ev, a, b);
}

void EventJournal::flush_round() {
  JournalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  std::vector<JournalRow> rows;
  for (auto& buf : s.buffers) {
    rows.insert(rows.end(), buf->rows.begin(), buf->rows.end());
    buf->rows.clear();
  }
  if (s.sink == nullptr) return;
  // Rows from different worker threads arrive in pool order; the sort key
  // restores a canonical order so the file is bit-identical at any
  // FEDCLUST_THREADS (journal_test proves it with the wall clock off).
  std::sort(rows.begin(), rows.end(),
            [](const JournalRow& x, const JournalRow& y) {
              return std::tie(x.round, x.client, x.event, x.a, x.b) <
                     std::tie(y.round, y.client, y.event, y.a, y.b);
            });
  std::ostringstream os;
  if (!s.header_written) {
    os << "{\"journal\":1,\"codec\":\"" << s.codec << "\"}\n";
    s.header_written = true;
  }
  for (const JournalRow& r : rows) render_row(os, r);
  *s.sink << os.str();
  s.sink->flush();
  if (!*s.sink) {
    throw std::runtime_error("EventJournal: write failed for " + s.path);
  }
}

std::size_t EventJournal::buffered_rows() const {
  JournalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  std::size_t n = 0;
  for (const auto& buf : s.buffers) n += buf->rows.size();
  return n;
}

}  // namespace fedclust::obs
