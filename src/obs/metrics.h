#pragma once

// obs::MetricsRegistry — named counters, gauges, and fixed-bucket
// histograms backed by relaxed atomics, with point-in-time snapshots, a
// per-round JSONL emitter, and an end-of-run summary table.
//
// Shares the observability invariants of obs::SpanTracer (see trace.h):
// zero perturbation of simulation results, one relaxed load + branch per
// site when disabled, and tsan-clean updates from worker threads. Metric
// handles returned by counter()/gauge()/histogram() are stable for the
// process lifetime, so hot sites cache them in a function-local static via
// the OBS_* macros below and pay no map lookup after the first hit.

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fedclust::obs {

class Counter {
 public:
  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Signed instantaneous value (e.g. in-flight worker chunks). `add` keeps
// concurrent increments/decrements exact; `set` is last-writer-wins.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i], plus
// one overflow bucket. Bounds are fixed at registration so observe() is a
// linear scan over a small array + relaxed increments — no locks.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  // Log-spaced seconds buckets (100 µs .. 100 s), the default for the
  // *_seconds timing histograms.
  static std::vector<double> seconds_bounds();

  void observe(double x);

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 buckets
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;

    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    // Quantile estimate with linear interpolation inside the bucket that
    // contains rank q*count, assuming mass is uniform between the bucket's
    // edges (clamped to the observed [min, max]; q<=0 -> min, q>=1 -> max).
    double quantile(double q) const;
  };
  Snapshot snapshot() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();  // leaky singleton

  static bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    g_enabled.store(on, std::memory_order_relaxed);
  }

  // Find-or-create by name; the returned reference never moves. A
  // histogram's bounds are taken from the first registration. Registering
  // one name as two different kinds throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = Histogram::seconds_bounds());

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

    // Convenience lookups (0 / empty snapshot when absent).
    std::uint64_t counter_value(const std::string& name) const;
    Histogram::Snapshot histogram_snapshot(const std::string& name) const;
  };
  // Name-sorted point-in-time view of every registered metric.
  Snapshot snapshot() const;

  // Zeroes every metric's value (registrations survive).
  void reset_values();

  // ---- per-round JSONL emission -------------------------------------
  // One JSON object per line: the caller's fields first (round index,
  // accuracy, ...), then the cumulative value of every registered counter
  // and gauge. open_round_log throws std::runtime_error naming the path
  // when the file cannot be created.
  void open_round_log(const std::string& path);
  bool round_log_open() const;
  void close_round_log();
  void log_round(const std::vector<std::pair<std::string, double>>& fields);

  // Human-readable end-of-run table of every metric (counters, gauges,
  // histogram count/mean/p50/p95/max).
  std::string summary_table() const;

 private:
  MetricsRegistry() = default;

  static std::atomic<bool> g_enabled;
};

}  // namespace fedclust::obs

// Hot-site macros: disabled cost is one relaxed load + branch; enabled cost
// after the first hit is the relaxed atomic update (the static handle
// lookup happens once per site).
#define OBS_COUNTER_ADD(name, n)                                          \
  do {                                                                    \
    if (::fedclust::obs::MetricsRegistry::enabled()) {                    \
      static ::fedclust::obs::Counter& obs_macro_c =                      \
          ::fedclust::obs::MetricsRegistry::instance().counter(name);     \
      obs_macro_c.add(static_cast<std::uint64_t>(n));                     \
    }                                                                     \
  } while (0)

#define OBS_GAUGE_ADD(name, d)                                            \
  do {                                                                    \
    if (::fedclust::obs::MetricsRegistry::enabled()) {                    \
      static ::fedclust::obs::Gauge& obs_macro_g =                        \
          ::fedclust::obs::MetricsRegistry::instance().gauge(name);       \
      obs_macro_g.add(static_cast<std::int64_t>(d));                      \
    }                                                                     \
  } while (0)

#define OBS_GAUGE_SET(name, v)                                            \
  do {                                                                    \
    if (::fedclust::obs::MetricsRegistry::enabled()) {                    \
      static ::fedclust::obs::Gauge& obs_macro_g =                        \
          ::fedclust::obs::MetricsRegistry::instance().gauge(name);       \
      obs_macro_g.set(static_cast<std::int64_t>(v));                      \
    }                                                                     \
  } while (0)

#define OBS_HISTOGRAM_OBSERVE(name, x)                                    \
  do {                                                                    \
    if (::fedclust::obs::MetricsRegistry::enabled()) {                    \
      static ::fedclust::obs::Histogram& obs_macro_h =                    \
          ::fedclust::obs::MetricsRegistry::instance().histogram(name);   \
      obs_macro_h.observe(static_cast<double>(x));                        \
    }                                                                     \
  } while (0)
