#pragma once

// obs::EventJournal — structured per-(round, client) event rows behind the
// run's attribution story: who was sampled, who trained for how long, what
// every upload/download cost on the wire, which fault hit whom, and which
// cluster each client reported to. Rows are recorded into per-thread
// append-only buffers and flushed to JSONL at round boundaries; the file is
// the input to tools/fedclust_report.
//
// Shares the observability invariants of SpanTracer / MetricsRegistry
// (docs/INVARIANTS.md §Observability):
//  * Zero perturbation: recording never touches RNG state or FP
//    accumulation order, so journaled runs are bit-identical to bare ones
//    at any FEDCLUST_THREADS (obs_invariance_test enforces this).
//  * Disabled-path cost: one relaxed atomic load + branch per site.
//  * Hot-path recording takes no locks: each thread owns its buffer,
//    registered once (under a mutex) on first use; appends allocate only
//    on the owning thread.
//  * Export only when quiescent: flush_round()/close() walk every thread's
//    buffer without synchronizing against writers — call them after
//    parallel work has joined (round boundaries), as FlAlgorithm::run does.
//
// The JSONL is deterministic: flush sorts rows by (round, client, event,
// a, b) before writing, so files are bit-identical at any thread count as
// long as no wall-clock field is recorded (set_wall_clock(false) zeroes
// the one wall-clock field, train_us — the journal determinism test runs
// that way; normal runs keep real timings and accept that train_us varies).

#include <atomic>
#include <cstdint>
#include <string>

namespace fedclust::obs {

// Per-(round, client) event kinds, in rough lifecycle order. The `a`/`b`
// payload slots are event-specific; journal_event_name / the JSONL renderer
// map them to named fields (see docs/OBSERVABILITY.md for the schema).
enum class JournalEvent : std::uint8_t {
  kSampled = 0,      // client is in the round's cohort (post-dropout)
  kDropped,          // pre-round dropout: invited, never trained
  kCluster,          // a = cluster id the client trains against
  kDownload,         // a = payload bytes (n*4), b = framed wire bytes
  kTrain,            // a = local-training wall µs (0 when wall clock off)
  kUpload,           // a = payload bytes, b = wire bytes, both totals
                     //     across every transmission attempt
  kCrash,            // post-train crash: compute spent, update lost
  kStraggler,        // a = delay factor in milli-units (1500 = 1.5x)
  kRetry,            // a = retransmissions beyond the first attempt
  kCommFailed,       // a = attempts spent before the retry budget died
  kDeadlineMissed,   // a = simulated round time in milli-units
  kCorrupt,          // a = CorruptionKind ordinal (nan|inf|explode|bitflip)
  kChecksumReject,   // envelope CRC rejected the update on arrival
  kQuarantine,       // a = validator reason (0 non_finite, 1 norm_bound)
  kDelivered,        // the update entered aggregation
  kEval,             // a = client's local-test accuracy in micro-units

  // ---- transport events (socket mode; see docs/TRANSPORT.md) ----------
  // The `client` slot carries the *worker* id, not a client id; `round` is
  // the round the server was executing when the event fired (0 during the
  // pre-campaign handshake). All are recorded on the server thread, so the
  // flush-sort determinism contract is unaffected.
  kConnect,          // worker completed the handshake during startup
  kReconnect,        // a fresh worker joined mid-campaign
  kHeartbeatMissed,  // a = in-flight calls when the deadline expired
  kWorkerRestart,    // a = calls the worker had served before restarting
  kFrameReject,      // a = frame error ordinal (net::FrameStatus)
};

// Stable lowercase name used as the row's "ev" field.
const char* journal_event_name(JournalEvent ev);

struct JournalRow {
  std::uint64_t round = 0;
  std::uint64_t client = 0;
  JournalEvent event = JournalEvent::kSampled;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class EventJournal {
 public:
  // Leaky singleton, like SpanTracer: worker threads may record until
  // process exit.
  static EventJournal& instance();

  static bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

  // Opens the JSONL output and enables recording. Throws std::runtime_error
  // naming the path when the file cannot be created. The first flushed line
  // is a header object ({"journal":1,"codec":...}) describing the run.
  void open(const std::string& path);
  bool is_open() const;
  // Final flush + close + disable. Buffered rows never outlive the file.
  void close();

  // Run-level codec attribute emitted in the header line ("raw_f32" until
  // told otherwise). Set before the first flush.
  void set_codec_name(const std::string& name);

  // When off, sites that would record wall-clock durations (kTrain) record
  // 0 instead, making the JSONL bit-identical across thread counts — what
  // tests/journal_test.cpp runs with. Defaults to on.
  void set_wall_clock(bool on) {
    g_wall_clock.store(on, std::memory_order_relaxed);
  }
  static bool wall_clock() {
    return g_wall_clock.load(std::memory_order_relaxed);
  }

  // Appends one row to the calling thread's buffer (registers the buffer on
  // first use). Lock-free after registration; a no-op when disabled.
  void record(std::uint64_t round, std::uint64_t client, JournalEvent ev,
              std::uint64_t a = 0, std::uint64_t b = 0);

  // Round context for emit sites that aren't handed the round index (the
  // eval sweep evaluates every client from inside Federation). Set at a
  // quiescent point before the sweep; record_in_context is dropped while
  // no context is set, so out-of-band sweeps (examples calling
  // local_accuracy_distribution directly) journal nothing.
  void set_round_context(std::uint64_t round);
  void clear_round_context();
  void record_in_context(std::uint64_t client, JournalEvent ev,
                         std::uint64_t a = 0, std::uint64_t b = 0);

  // Sorts every buffered row by (round, client, event, a, b), writes them
  // as JSONL, and clears the buffers. Quiescent-only, like
  // SpanTracer::collect. Called by FlAlgorithm::run at round boundaries
  // and by close(); a no-op when no file is open.
  void flush_round();

  // Rows currently buffered across all threads (quiescent-only; tests).
  std::size_t buffered_rows() const;

 private:
  EventJournal() = default;

  static std::atomic<bool> g_enabled;
  static std::atomic<bool> g_wall_clock;
};

}  // namespace fedclust::obs

// Hot-site guard: one relaxed load + branch when the journal is off.
#define OBS_JOURNAL(round, client, ev, ...)                               \
  do {                                                                    \
    if (::fedclust::obs::EventJournal::enabled()) {                       \
      ::fedclust::obs::EventJournal::instance().record(                   \
          static_cast<std::uint64_t>(round),                              \
          static_cast<std::uint64_t>(client),                             \
          ::fedclust::obs::JournalEvent::ev, ##__VA_ARGS__);              \
    }                                                                     \
  } while (0)
