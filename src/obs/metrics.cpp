#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace fedclust::obs {

std::atomic<bool> MetricsRegistry::g_enabled{false};

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
}

std::vector<double> Histogram::seconds_bounds() {
  return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0,
          10.0, 30.0, 100.0};
}

namespace {

// Relaxed CAS fold for min/max: the result is order-independent, so the
// loops stay exact under concurrency.
void atomic_min(std::atomic<double>& slot, double x) {
  double cur = slot.load(std::memory_order_relaxed);
  while (x < cur &&
         !slot.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double x) {
  double cur = slot.load(std::memory_order_relaxed);
  while (x > cur &&
         !slot.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe(double x) {
  std::size_t i = 0;
  while (i < bounds_.size() && x > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  atomic_min(min_, x);
  atomic_max(max_, x);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    s.counts.push_back(b.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  s.max = s.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  return s;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double lo_rank = static_cast<double>(seen);
    seen += counts[i];
    if (static_cast<double>(seen) < target) continue;
    // Interpolate within the bucket holding rank `target`, assuming its
    // mass is uniform between the bucket edges. The open-ended edge
    // buckets use the observed min/max as their missing edge, and both
    // edges clamp to [min, max] so the estimate never leaves the data.
    double lo = i == 0 ? min : std::max(bounds[i - 1], min);
    double hi = i < bounds.size() ? std::min(bounds[i], max) : max;
    if (hi < lo) hi = lo;
    const double frac = (target - lo_rank) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * frac;
  }
  return max;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ----------------------------------------------------------- MetricsRegistry

namespace {

struct Store {
  mutable std::mutex mu;  // guards registration and the round log only
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;

  std::unique_ptr<std::ofstream> round_log;
  std::string round_log_path;
};

Store& store() {
  static Store* s = new Store;  // leaky: sites hold references until exit
  return *s;
}

void check_unique(const Store& s, const std::string& name,
                  const char* wanted) {
  const bool is_counter = s.counters.count(name) > 0;
  const bool is_gauge = s.gauges.count(name) > 0;
  const bool is_histogram = s.histograms.count(name) > 0;
  const int hits = (is_counter ? 1 : 0) + (is_gauge ? 1 : 0) +
                   (is_histogram ? 1 : 0);
  if (hits > 0) {
    throw std::invalid_argument("MetricsRegistry: \"" + name +
                                "\" already registered as a different kind "
                                "(wanted " + wanted + ")");
  }
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* r = new MetricsRegistry;
  return *r;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.counters.find(name);
  if (it == s.counters.end()) {
    check_unique(s, name, "counter");
    it = s.counters.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.gauges.find(name);
  if (it == s.gauges.end()) {
    check_unique(s, name, "gauge");
    it = s.gauges.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.histograms.find(name);
  if (it == s.histograms.end()) {
    check_unique(s, name, "histogram");
    it = s.histograms
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot out;
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& [name, c] : s.counters) {
    out.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : s.gauges) {
    out.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : s.histograms) {
    out.histograms.emplace_back(name, h->snapshot());
  }
  return out;  // std::map iteration is already name-sorted
}

std::uint64_t MetricsRegistry::Snapshot::counter_value(
    const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

Histogram::Snapshot MetricsRegistry::Snapshot::histogram_snapshot(
    const std::string& name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return h;
  }
  return Histogram::Snapshot{};
}

void MetricsRegistry::reset_values() {
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (auto& [name, c] : s.counters) c->reset();
  for (auto& [name, g] : s.gauges) g->reset();
  for (auto& [name, h] : s.histograms) h->reset();
}

void MetricsRegistry::open_round_log(const std::string& path) {
  auto os = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*os) {
    throw std::runtime_error("MetricsRegistry: cannot open metrics output " +
                             path);
  }
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.round_log = std::move(os);
  s.round_log_path = path;
}

bool MetricsRegistry::round_log_open() const {
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.round_log != nullptr;
}

void MetricsRegistry::close_round_log() {
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.round_log.reset();
  s.round_log_path.clear();
}

void MetricsRegistry::log_round(
    const std::vector<std::pair<std::string, double>>& fields) {
  Store& s = store();
  const std::lock_guard<std::mutex> lock(s.mu);
  if (!s.round_log) return;
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [k, v] : fields) {
    if (!first) os << ",";
    first = false;
    os << "\"" << k << "\":" << fmt(v);
  }
  for (const auto& [name, c] : s.counters) {
    os << (first ? "" : ",") << "\"" << name << "\":" << c->value();
    first = false;
  }
  for (const auto& [name, g] : s.gauges) {
    os << (first ? "" : ",") << "\"" << name << "\":" << g->value();
    first = false;
  }
  for (const auto& [name, h] : s.histograms) {
    const Histogram::Snapshot hs = h->snapshot();
    if (hs.count == 0) continue;
    os << (first ? "" : ",") << "\"" << name << ".p50\":"
       << fmt(hs.quantile(0.5)) << ",\"" << name << ".p95\":"
       << fmt(hs.quantile(0.95)) << ",\"" << name << ".p99\":"
       << fmt(hs.quantile(0.99));
    first = false;
  }
  os << "}";
  *s.round_log << os.str() << "\n";
  s.round_log->flush();
  if (!*s.round_log) {
    throw std::runtime_error("MetricsRegistry: write failed for " +
                             s.round_log_path);
  }
}

std::string MetricsRegistry::summary_table() const {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  std::size_t width = 24;
  for (const auto& [n, v] : snap.counters) width = std::max(width, n.size());
  for (const auto& [n, v] : snap.gauges) width = std::max(width, n.size());
  for (const auto& [n, h] : snap.histograms) {
    width = std::max(width, n.size());
  }
  const auto pad = [&](const std::string& n) {
    return n + std::string(width + 2 - n.size(), ' ');
  };
  os << "-- metrics summary --\n";
  for (const auto& [n, v] : snap.counters) {
    os << pad(n) << v << "\n";
  }
  for (const auto& [n, v] : snap.gauges) {
    os << pad(n) << v << "\n";
  }
  for (const auto& [n, h] : snap.histograms) {
    os << pad(n) << "count=" << h.count << " mean=" << fmt(h.mean())
       << " min=" << fmt(h.min) << " p50=" << fmt(h.quantile(0.5))
       << " p95=" << fmt(h.quantile(0.95)) << " p99=" << fmt(h.quantile(0.99))
       << " max=" << fmt(h.max) << "\n";
  }
  return os.str();
}

}  // namespace fedclust::obs
