#pragma once

// obs::json — a minimal recursive-descent JSON reader for the post-run
// analysis tools (fedclust_report ingests journal JSONL, metrics JSONL,
// and Chrome trace JSON). Lives in src/obs/ because the observability
// library sits below fedclust_util in the layering and the report builder
// (obs/report.h) needs it.
//
// Scope: full JSON values (null/bool/number/string/array/object) with
// standard escapes; numbers parse as double (the journal's uint64 fields
// are all well inside the 2^53 exact-integer range). Object keys keep
// their source order. Not a streaming parser — inputs are whole files of
// run-report size.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace fedclust::obs::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // source order

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  // Convenience accessors with defaults (returned when the key is absent
  // or of the wrong kind).
  double number_or(const std::string& key, double def) const;
  std::string string_or(const std::string& key,
                        const std::string& def) const;
};

// Parses one JSON document; throws std::runtime_error with a byte offset
// on malformed input. Trailing whitespace is allowed, trailing garbage is
// not.
Value parse(const std::string& text);

// Parses JSONL: one document per non-empty line. Throws like parse(),
// naming the offending line.
std::vector<Value> parse_lines(const std::string& text);

}  // namespace fedclust::obs::json
