#include "obs/json.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace fedclust::obs::json {

namespace {

constexpr std::size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    Value v;
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        v.kind = Value::Kind::kString;
        v.string = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = Value::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return v;
      default:
        return parse_number();
    }
  }

  Value parse_object(std::size_t depth) {
    Value v;
    v.kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Value parse_array(std::size_t depth) {
    Value v;
    v.kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by any of our writers; pass them through raw).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("bad number '" + tok + "'");
    }
    Value out;
    out.kind = Value::Kind::kNumber;
    out.number = v;
    return out;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::number_or(const std::string& key, double def) const {
  const Value* v = find(key);
  return (v != nullptr && v->kind == Kind::kNumber) ? v->number : def;
}

std::string Value::string_or(const std::string& key,
                             const std::string& def) const {
  const Value* v = find(key);
  return (v != nullptr && v->kind == Kind::kString) ? v->string : def;
}

Value parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::vector<Value> parse_lines(const std::string& text) {
  std::vector<Value> out;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::size_t end = nl == std::string::npos ? text.size() : nl;
    ++line_no;
    std::string line = text.substr(pos, end - pos);
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') blank = false;
    }
    if (!blank) {
      try {
        out.push_back(parse(line));
      } catch (const std::exception& e) {
        throw std::runtime_error("json line " + std::to_string(line_no) +
                                 ": " + e.what());
      }
    }
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  return out;
}

}  // namespace fedclust::obs::json
