#pragma once

// obs::SpanTracer — RAII scoped spans (`OBS_SPAN("round")`) recorded into
// per-thread ring buffers and exported as Chrome Trace Event Format JSON
// (open the file in Perfetto / chrome://tracing to see where round
// wall-time goes).
//
// Invariants (ROADMAP "Observability"):
//  * Zero perturbation: a span only reads the steady clock — it never
//    touches RNG state or floating-point accumulation order — so traces,
//    final parameters, and comm bytes are bit-identical with tracing on or
//    off at any FEDCLUST_THREADS (obs_invariance_test enforces this).
//  * Disabled-path cost: one relaxed atomic load + branch per site; the
//    clock is not read and nothing is written.
//  * Hot-path recording takes no locks and performs no allocation: each
//    thread owns a fixed-capacity ring buffer, registered once (under a
//    mutex) on the thread's first recorded span. Overflow overwrites the
//    oldest events and is counted, never blocks.
//
// Export (collect / write_chrome_trace / clear) walks every thread's buffer
// without synchronizing against writers, so call it only when no spans are
// being recorded — after parallel work has joined, which is when runs
// export anyway. Timestamps share util::process_epoch() with the logger,
// so log-line prefixes and trace "ts" values are directly comparable.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/timer.h"

namespace fedclust::obs {

// One closed span. `name` must be a string literal (or otherwise outlive
// the tracer): events store the pointer, not a copy, to keep recording
// allocation-free.
struct SpanEvent {
  const char* name = nullptr;
  std::int64_t begin_us = 0;  // microseconds since util::process_epoch()
  std::int64_t end_us = 0;
  std::uint64_t arg = 0;   // site-defined payload (client id, round, mnk)
  std::uint64_t arg2 = 0;  // second payload (round for client.* spans), so
                           // Perfetto can filter spans per client AND round
  bool has_arg = false;
  bool has_arg2 = false;
};

class SpanTracer {
 public:
  // Leaky singleton: pool workers may record up to process exit, so the
  // tracer is never destroyed.
  static SpanTracer& instance();

  static bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    g_enabled.store(on, std::memory_order_relaxed);
  }

  // Appends to the calling thread's ring buffer (registers the buffer on
  // first use). Called by SpanScope's destructor; lock-free after
  // registration.
  void record(const char* name, std::int64_t begin_us, std::int64_t end_us,
              std::uint64_t arg, bool has_arg) {
    record(name, begin_us, end_us, arg, has_arg, 0, false);
  }
  void record(const char* name, std::int64_t begin_us, std::int64_t end_us,
              std::uint64_t arg, bool has_arg, std::uint64_t arg2,
              bool has_arg2);

  // Names the calling thread in the exported trace ("pool-worker-3");
  // threads that never call it appear as "thread-<tid>".
  void set_thread_label(const std::string& label);

  // Interns a dynamically built span name (e.g. "wire.encode/qint8") and
  // returns a stable C string that outlives the tracer, so it can be passed
  // anywhere a literal is accepted. Idempotent: equal strings return the
  // same pointer. Takes a mutex — intern once per site (cache the result in
  // a static), never per event; the literal fast path needs no interning
  // and stays allocation-free.
  const char* intern(const std::string& name);

  struct ThreadEvents {
    std::uint32_t tid = 0;
    std::string label;
    std::uint64_t dropped = 0;        // events lost to ring overflow
    std::vector<SpanEvent> events;    // oldest first
  };

  // Snapshot of every thread's buffered events. Not safe concurrently with
  // record() — export after parallel work has joined.
  std::vector<ThreadEvents> collect() const;

  // Events currently buffered across all threads (clamped to capacity).
  std::size_t total_recorded() const;

  // Chrome Trace Event Format: {"traceEvents":[...]} with one "X"
  // (complete) event per span and "M" thread_name metadata per thread.
  std::string chrome_trace_json() const;
  // Writes chrome_trace_json() to `path`; throws std::runtime_error naming
  // the path when the file cannot be created or written.
  void write_chrome_trace(const std::string& path) const;

  // Drops all buffered events (buffers stay registered). Same concurrency
  // caveat as collect().
  void clear();

 private:
  SpanTracer() = default;

  static std::atomic<bool> g_enabled;
};

// The RAII scope behind OBS_SPAN. If tracing is disabled at construction
// the scope is inert (name_ stays null and the destructor does nothing).
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    if (!SpanTracer::enabled()) return;
    name_ = name;
    begin_us_ = util::process_elapsed_micros();
  }
  SpanScope(const char* name, std::uint64_t arg) {
    if (!SpanTracer::enabled()) return;
    name_ = name;
    begin_us_ = util::process_elapsed_micros();
    arg_ = arg;
    has_arg_ = true;
  }
  SpanScope(const char* name, std::uint64_t arg, std::uint64_t arg2) {
    if (!SpanTracer::enabled()) return;
    name_ = name;
    begin_us_ = util::process_elapsed_micros();
    arg_ = arg;
    has_arg_ = true;
    arg2_ = arg2;
    has_arg2_ = true;
  }
  ~SpanScope() {
    if (name_ == nullptr) return;
    SpanTracer::instance().record(name_, begin_us_,
                                  util::process_elapsed_micros(), arg_,
                                  has_arg_, arg2_, has_arg2_);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t begin_us_ = 0;
  std::uint64_t arg_ = 0;
  std::uint64_t arg2_ = 0;
  bool has_arg_ = false;
  bool has_arg2_ = false;
};

}  // namespace fedclust::obs

#define FEDCLUST_OBS_CONCAT_INNER(a, b) a##b
#define FEDCLUST_OBS_CONCAT(a, b) FEDCLUST_OBS_CONCAT_INNER(a, b)

// Scoped span covering the rest of the enclosing block. `name` must be a
// string literal.
#define OBS_SPAN(name) \
  ::fedclust::obs::SpanScope FEDCLUST_OBS_CONCAT(obs_span_, __COUNTER__)(name)
// Same, with a numeric payload shown in the trace viewer's args panel.
#define OBS_SPAN_ARG(name, arg)                                     \
  ::fedclust::obs::SpanScope FEDCLUST_OBS_CONCAT(obs_span_,         \
                                                 __COUNTER__)(      \
      name, static_cast<std::uint64_t>(arg))
// Two payloads ("v"/"v2" in the args panel) — client.* spans carry
// (client, round) so traces filter per client and per round.
#define OBS_SPAN_ARG2(name, arg, arg2)                              \
  ::fedclust::obs::SpanScope FEDCLUST_OBS_CONCAT(obs_span_,         \
                                                 __COUNTER__)(      \
      name, static_cast<std::uint64_t>(arg),                        \
      static_cast<std::uint64_t>(arg2))
