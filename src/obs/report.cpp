#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"

namespace fedclust::obs::report {

namespace {

constexpr std::size_t kMaxPhases = 14;

// Shortest round-trippable-enough double rendering: %.10g keeps every
// digit the report math can produce while staying deterministic across
// runs of the same inputs.
std::string jnum(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string fmt_fixed(double v, int decimals) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("fedclust_report: cannot read " + path);
  }
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::uint64_t u64(const json::Value& obj, const std::string& key) {
  return static_cast<std::uint64_t>(obj.number_or(key, 0.0));
}

void ingest_journal(RunReport& r, const std::string& journal_text,
                    std::map<std::uint64_t, RoundStats>& rounds,
                    std::map<std::uint64_t, ClientStats>& clients) {
  for (const json::Value& row : json::parse_lines(journal_text)) {
    if (row.find("journal") != nullptr) {
      r.codec = row.string_or("codec", r.codec);
      continue;
    }
    const std::uint64_t round = u64(row, "round");
    const std::uint64_t client = u64(row, "client");
    const std::string ev = row.string_or("ev", "");
    // Transport rows carry a worker id in the client slot and may land on
    // rounds with no cohort; tally them before the per-round/per-client
    // maps so they never fabricate empty entries there.
    if (ev == "connect") {
      ++r.transport.connects;
      continue;
    } else if (ev == "reconnect") {
      ++r.transport.reconnects;
      continue;
    } else if (ev == "heartbeat_missed") {
      ++r.transport.heartbeat_missed;
      continue;
    } else if (ev == "worker_restart") {
      ++r.transport.worker_restarts;
      continue;
    } else if (ev == "frame_reject") {
      ++r.transport.frame_rejects;
      continue;
    }
    RoundStats& rs = rounds[round];
    rs.round = round;
    ClientStats& cs = clients[client];
    cs.client = client;
    if (ev == "sampled") {
      ++rs.sampled;
      ++cs.rounds_sampled;
    } else if (ev == "dropped") {
      ++r.faults.dropped;
    } else if (ev == "cluster") {
      cs.cluster = static_cast<std::int64_t>(u64(row, "cluster"));
    } else if (ev == "download") {
      const std::uint64_t payload = u64(row, "payload_bytes");
      const std::uint64_t wire = u64(row, "wire_bytes");
      rs.download_wire_bytes += wire;
      cs.download_wire_bytes += wire;
      r.download_payload_bytes += payload;
      r.download_wire_bytes += wire;
    } else if (ev == "upload") {
      const std::uint64_t payload = u64(row, "payload_bytes");
      const std::uint64_t wire = u64(row, "wire_bytes");
      rs.upload_wire_bytes += wire;
      cs.upload_wire_bytes += wire;
      r.upload_payload_bytes += payload;
      r.upload_wire_bytes += wire;
    } else if (ev == "train") {
      const std::uint64_t us = u64(row, "train_us");
      rs.train_us_total += us;
      cs.train_us_total += us;
      r.train_us_total += us;
      if (us >= rs.train_us_max) {
        // >= so the tie at 0 µs (wall clock off) still names a client.
        rs.train_us_max = us;
        rs.critical_client = static_cast<std::int64_t>(client);
      }
      cs.train_us_max = std::max(cs.train_us_max, us);
    } else if (ev == "crash") {
      ++r.faults.crashes;
    } else if (ev == "straggler") {
      ++r.faults.stragglers;
      ++cs.straggler_events;
      cs.max_delay_milli =
          std::max(cs.max_delay_milli, u64(row, "delay_milli"));
    } else if (ev == "retry") {
      r.faults.retries += u64(row, "retries");
    } else if (ev == "comm_failed") {
      ++r.faults.comm_failed;
    } else if (ev == "deadline_missed") {
      ++r.faults.deadline_missed;
    } else if (ev == "corrupt") {
      ++r.faults.corrupt;
    } else if (ev == "checksum_reject") {
      ++r.faults.checksum_rejects;
    } else if (ev == "quarantine") {
      ++r.faults.quarantined;
    } else if (ev == "delivered") {
      ++rs.delivered;
      ++cs.delivered;
    } else if (ev == "eval") {
      cs.final_acc = static_cast<double>(u64(row, "acc_micro")) / 1e6;
    }
    // Unknown events are skipped: newer journals stay readable.
  }
}

void ingest_metrics(RunReport& r, const std::string& metrics_text,
                    std::map<std::uint64_t, RoundStats>& rounds) {
  for (const json::Value& line : json::parse_lines(metrics_text)) {
    const json::Value* round = line.find("round");
    if (round == nullptr) continue;
    const auto idx = static_cast<std::uint64_t>(round->number);
    RoundStats& rs = rounds[idx];
    rs.round = idx;
    rs.acc = line.number_or("acc", rs.acc);
    rs.round_seconds = line.number_or("round_seconds", rs.round_seconds);
    r.final_acc = line.number_or("acc", r.final_acc);
    // Registered counters/gauges ride into every line; keep the max RSS
    // sample and the latest cumulative cache counters.
    r.peak_rss_kb = std::max(
        r.peak_rss_kb,
        static_cast<std::uint64_t>(line.number_or("mem.peak_rss_kb", 0.0)));
    r.cache_hits = static_cast<std::uint64_t>(line.number_or(
        "store.cache_hits", static_cast<double>(r.cache_hits)));
    r.cache_misses = static_cast<std::uint64_t>(line.number_or(
        "store.cache_misses", static_cast<double>(r.cache_misses)));
    r.cache_evictions = static_cast<std::uint64_t>(line.number_or(
        "store.cache_evictions", static_cast<double>(r.cache_evictions)));
    // Landmark-sketch counters (fl/landmark.h); stay zero for exact runs.
    r.clustering.landmarks = static_cast<std::uint64_t>(line.number_or(
        "cluster.landmark.count", static_cast<double>(r.clustering.landmarks)));
    r.clustering.clusters = static_cast<std::uint64_t>(
        line.number_or("cluster.landmark.clusters",
                       static_cast<double>(r.clustering.clusters)));
    r.clustering.assign_batches = static_cast<std::uint64_t>(
        line.number_or("cluster.landmark.batches",
                       static_cast<double>(r.clustering.assign_batches)));
    r.clustering.assigned = static_cast<std::uint64_t>(
        line.number_or("cluster.landmark.assigned",
                       static_cast<double>(r.clustering.assigned)));
  }
}

void ingest_trace(RunReport& r, const std::string& trace_text) {
  const json::Value doc = json::parse(trace_text);
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw std::runtime_error("fedclust_report: trace has no traceEvents");
  }
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const json::Value& ev : events->array) {
    if (ev.string_or("ph", "") != "X") continue;
    Agg& agg = by_name[ev.string_or("name", "?")];
    ++agg.count;
    agg.total_us += static_cast<std::uint64_t>(ev.number_or("dur", 0.0));
  }
  for (const auto& [name, agg] : by_name) {
    r.phases.push_back({name, agg.count, agg.total_us});
  }
  std::sort(r.phases.begin(), r.phases.end(),
            [](const PhaseStats& x, const PhaseStats& y) {
              if (x.total_us != y.total_us) return x.total_us > y.total_us;
              return x.name < y.name;
            });
  if (r.phases.size() > kMaxPhases) r.phases.resize(kMaxPhases);
}

}  // namespace

RunReport build_report(const std::string& journal_text,
                       const std::string& metrics_text,
                       const std::string& trace_text, std::size_t top_k) {
  RunReport r;
  std::map<std::uint64_t, RoundStats> rounds;
  std::map<std::uint64_t, ClientStats> clients;
  ingest_journal(r, journal_text, rounds, clients);
  if (!metrics_text.empty()) ingest_metrics(r, metrics_text, rounds);
  if (!trace_text.empty()) ingest_trace(r, trace_text);

  for (const auto& [idx, rs] : rounds) {
    if (rs.sampled > 0) ++r.rounds;
    r.sampled_total += rs.sampled;
    r.delivered_total += rs.delivered;
    r.per_round.push_back(rs);
  }

  // Fall back to the journal's own eval rows when no metrics file rode
  // along: the mean last-eval accuracy is the same quantity the per-round
  // "acc" field reports.
  if (r.final_acc < 0.0) {
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto& [id, cs] : clients) {
      if (cs.final_acc >= 0.0) {
        sum += cs.final_acc;
        ++n;
      }
    }
    if (n > 0) r.final_acc = sum / static_cast<double>(n);
  }

  std::vector<ClientStats> ranked;
  for (const auto& [id, cs] : clients) {
    if (cs.rounds_sampled > 0 || cs.straggler_events > 0) {
      ranked.push_back(cs);
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ClientStats& x, const ClientStats& y) {
              if (x.straggler_events != y.straggler_events) {
                return x.straggler_events > y.straggler_events;
              }
              if (x.max_delay_milli != y.max_delay_milli) {
                return x.max_delay_milli > y.max_delay_milli;
              }
              if (x.train_us_max != y.train_us_max) {
                return x.train_us_max > y.train_us_max;
              }
              return x.client < y.client;
            });
  if (ranked.size() > top_k) ranked.resize(top_k);
  r.stragglers = std::move(ranked);

  std::map<std::uint64_t, ClusterStats> by_cluster;
  std::map<std::uint64_t, std::pair<double, std::uint64_t>> cluster_acc;
  for (const auto& [id, cs] : clients) {
    if (cs.cluster < 0) continue;
    const auto k = static_cast<std::uint64_t>(cs.cluster);
    ClusterStats& ks = by_cluster[k];
    ks.cluster = k;
    ++ks.clients;
    ks.upload_wire_bytes += cs.upload_wire_bytes;
    ks.download_wire_bytes += cs.download_wire_bytes;
    if (cs.final_acc >= 0.0) {
      cluster_acc[k].first += cs.final_acc;
      cluster_acc[k].second += 1;
    }
  }
  for (auto& [k, ks] : by_cluster) {
    const auto& [sum, n] = cluster_acc[k];
    if (n > 0) ks.mean_acc = sum / static_cast<double>(n);
    r.clusters.push_back(ks);
  }

  // Full partition for agreement comparisons: the clients map is ordered,
  // so the pairs come out sorted by client id.
  for (const auto& [id, cs] : clients) {
    if (cs.cluster >= 0) {
      r.clustering.assignment.emplace_back(
          id, static_cast<std::uint64_t>(cs.cluster));
    }
  }
  return r;
}

RunReport build_report_from_files(const std::string& journal_path,
                                  const std::string& metrics_path,
                                  const std::string& trace_path,
                                  std::size_t top_k) {
  return build_report(
      read_file(journal_path),
      metrics_path.empty() ? std::string() : read_file(metrics_path),
      trace_path.empty() ? std::string() : read_file(trace_path), top_k);
}

std::string to_json(const RunReport& r) {
  std::ostringstream os;
  os << "{\"report_version\":" << r.version << ",\"codec\":\"" << r.codec
     << "\",\"rounds\":" << r.rounds << ",\"final_acc\":" << jnum(r.final_acc)
     << ",\"totals\":{\"sampled\":" << r.sampled_total
     << ",\"delivered\":" << r.delivered_total
     << ",\"upload_payload_bytes\":" << r.upload_payload_bytes
     << ",\"upload_wire_bytes\":" << r.upload_wire_bytes
     << ",\"download_payload_bytes\":" << r.download_payload_bytes
     << ",\"download_wire_bytes\":" << r.download_wire_bytes
     << ",\"train_us_total\":" << r.train_us_total
     << "},\"memory\":{\"peak_rss_kb\":" << r.peak_rss_kb
     << ",\"cache_hits\":" << r.cache_hits
     << ",\"cache_misses\":" << r.cache_misses
     << ",\"cache_evictions\":" << r.cache_evictions << "},\"per_round\":[";
  for (std::size_t i = 0; i < r.per_round.size(); ++i) {
    const RoundStats& rs = r.per_round[i];
    os << (i ? "," : "") << "{\"round\":" << rs.round
       << ",\"sampled\":" << rs.sampled << ",\"delivered\":" << rs.delivered
       << ",\"train_us_total\":" << rs.train_us_total
       << ",\"train_us_max\":" << rs.train_us_max
       << ",\"critical_client\":" << rs.critical_client
       << ",\"upload_wire_bytes\":" << rs.upload_wire_bytes
       << ",\"download_wire_bytes\":" << rs.download_wire_bytes
       << ",\"acc\":" << jnum(rs.acc)
       << ",\"round_seconds\":" << jnum(rs.round_seconds) << "}";
  }
  os << "],\"stragglers\":[";
  for (std::size_t i = 0; i < r.stragglers.size(); ++i) {
    const ClientStats& cs = r.stragglers[i];
    os << (i ? "," : "") << "{\"client\":" << cs.client
       << ",\"rounds_sampled\":" << cs.rounds_sampled
       << ",\"delivered\":" << cs.delivered
       << ",\"straggler_events\":" << cs.straggler_events
       << ",\"max_delay_milli\":" << cs.max_delay_milli
       << ",\"train_us_total\":" << cs.train_us_total
       << ",\"train_us_max\":" << cs.train_us_max
       << ",\"upload_wire_bytes\":" << cs.upload_wire_bytes
       << ",\"download_wire_bytes\":" << cs.download_wire_bytes
       << ",\"cluster\":" << cs.cluster
       << ",\"final_acc\":" << jnum(cs.final_acc) << "}";
  }
  os << "],\"clusters\":[";
  for (std::size_t i = 0; i < r.clusters.size(); ++i) {
    const ClusterStats& ks = r.clusters[i];
    os << (i ? "," : "") << "{\"cluster\":" << ks.cluster
       << ",\"clients\":" << ks.clients
       << ",\"mean_acc\":" << jnum(ks.mean_acc)
       << ",\"upload_wire_bytes\":" << ks.upload_wire_bytes
       << ",\"download_wire_bytes\":" << ks.download_wire_bytes << "}";
  }
  os << "],\"clustering\":{\"landmarks\":" << r.clustering.landmarks
     << ",\"clusters\":" << r.clustering.clusters
     << ",\"assign_batches\":" << r.clustering.assign_batches
     << ",\"assigned\":" << r.clustering.assigned << ",\"assignment\":[";
  for (std::size_t i = 0; i < r.clustering.assignment.size(); ++i) {
    const auto& [c, k] = r.clustering.assignment[i];
    os << (i ? "," : "") << "[" << c << "," << k << "]";
  }
  os << "]},\"faults\":{\"dropped\":" << r.faults.dropped
     << ",\"crashes\":" << r.faults.crashes
     << ",\"stragglers\":" << r.faults.stragglers
     << ",\"retries\":" << r.faults.retries
     << ",\"comm_failed\":" << r.faults.comm_failed
     << ",\"deadline_missed\":" << r.faults.deadline_missed
     << ",\"corrupt\":" << r.faults.corrupt
     << ",\"checksum_rejects\":" << r.faults.checksum_rejects
     << ",\"quarantined\":" << r.faults.quarantined
     << "},\"transport\":{\"connects\":" << r.transport.connects
     << ",\"reconnects\":" << r.transport.reconnects
     << ",\"heartbeat_missed\":" << r.transport.heartbeat_missed
     << ",\"worker_restarts\":" << r.transport.worker_restarts
     << ",\"frame_rejects\":" << r.transport.frame_rejects
     << "},\"phases\":[";
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    const PhaseStats& ps = r.phases[i];
    os << (i ? "," : "") << "{\"name\":\"" << ps.name
       << "\",\"count\":" << ps.count << ",\"total_us\":" << ps.total_us
       << "}";
  }
  os << "]}\n";
  return os.str();
}

std::string to_markdown(const RunReport& r) {
  std::ostringstream os;
  os << "# fedclust run report\n\n";
  os << "* codec: `" << r.codec << "`\n";
  os << "* rounds: " << r.rounds << "\n";
  os << "* final accuracy: "
     << (r.final_acc < 0.0 ? std::string("n/a")
                           : fmt_fixed(r.final_acc * 100.0, 2) + "%")
     << "\n";
  os << "* clients sampled/delivered: " << r.sampled_total << "/"
     << r.delivered_total << "\n";
  os << "* wire bytes up/down: " << r.upload_wire_bytes << "/"
     << r.download_wire_bytes << " (payload " << r.upload_payload_bytes
     << "/" << r.download_payload_bytes << ")\n";
  os << "* total local-training wall time: "
     << fmt_fixed(static_cast<double>(r.train_us_total) / 1e6, 3) << " s\n";
  if (r.peak_rss_kb > 0) {
    os << "* peak RSS: " << r.peak_rss_kb << " KiB\n";
  }
  if (r.cache_hits + r.cache_misses + r.cache_evictions > 0) {
    os << "* client-store cache: " << r.cache_hits << " hits, "
       << r.cache_misses << " misses, " << r.cache_evictions
       << " evictions\n";
  }

  os << "\n## Per-round\n\n";
  os << "| round | sampled | delivered | train ms | critical path ms "
        "(client) | up wire B | down wire B | acc |\n";
  os << "|------:|--------:|----------:|---------:|----------------:|"
        "---------:|-----------:|----:|\n";
  for (const RoundStats& rs : r.per_round) {
    os << "| " << rs.round << " | " << rs.sampled << " | " << rs.delivered
       << " | " << fmt_fixed(static_cast<double>(rs.train_us_total) / 1e3, 1)
       << " | " << fmt_fixed(static_cast<double>(rs.train_us_max) / 1e3, 1)
       << " (" << rs.critical_client << ") | " << rs.upload_wire_bytes
       << " | " << rs.download_wire_bytes << " | "
       << (rs.acc < 0.0 ? std::string("-")
                        : fmt_fixed(rs.acc * 100.0, 2) + "%")
       << " |\n";
  }

  if (!r.stragglers.empty()) {
    os << "\n## Top straggler clients\n\n";
    os << "| client | straggler events | worst delay | rounds | train ms "
          "(max) | delivered |\n";
    os << "|-------:|-----------------:|------------:|-------:|"
          "--------------:|----------:|\n";
    for (const ClientStats& cs : r.stragglers) {
      os << "| " << cs.client << " | " << cs.straggler_events << " | "
         << fmt_fixed(static_cast<double>(cs.max_delay_milli) / 1e3, 2)
         << "x | " << cs.rounds_sampled << " | "
         << fmt_fixed(static_cast<double>(cs.train_us_max) / 1e3, 1)
         << " | " << cs.delivered << " |\n";
    }
  }

  if (!r.clusters.empty()) {
    os << "\n## Clusters\n\n";
    os << "| cluster | clients | mean acc | up wire B | down wire B |\n";
    os << "|--------:|--------:|---------:|----------:|------------:|\n";
    for (const ClusterStats& ks : r.clusters) {
      os << "| " << ks.cluster << " | " << ks.clients << " | "
         << (ks.mean_acc < 0.0 ? std::string("-")
                               : fmt_fixed(ks.mean_acc * 100.0, 2) + "%")
         << " | " << ks.upload_wire_bytes << " | " << ks.download_wire_bytes
         << " |\n";
    }
  }

  if (r.clustering.any()) {
    os << "\n## Clustering\n\n";
    os << "* clients assigned (journaled partition): "
       << r.clustering.assignment.size() << "\n";
    if (r.clustering.landmarks > 0) {
      os << "* landmark sketch: " << r.clustering.landmarks
         << " landmarks -> " << r.clustering.clusters << " clusters, "
         << r.clustering.assigned << " clients streamed through "
         << r.clustering.assign_batches << " nearest-landmark batches\n";
    } else {
      os << "* exact clustering (no landmark sketch)\n";
    }
  }

  os << "\n## Faults\n\n";
  os << "| class | count |\n|-------|------:|\n";
  os << "| pre-round dropouts | " << r.faults.dropped << " |\n";
  os << "| post-train crashes | " << r.faults.crashes << " |\n";
  os << "| stragglers | " << r.faults.stragglers << " |\n";
  os << "| retransmissions | " << r.faults.retries << " |\n";
  os << "| comm failures | " << r.faults.comm_failed << " |\n";
  os << "| deadline misses | " << r.faults.deadline_missed << " |\n";
  os << "| corrupted updates | " << r.faults.corrupt << " |\n";
  os << "| checksum rejects | " << r.faults.checksum_rejects << " |\n";
  os << "| quarantined | " << r.faults.quarantined << " |\n";

  if (r.transport.any()) {
    os << "\n## Transport\n\n";
    os << "| event | count |\n|-------|------:|\n";
    os << "| worker connects | " << r.transport.connects << " |\n";
    os << "| reconnects | " << r.transport.reconnects << " |\n";
    os << "| heartbeats missed | " << r.transport.heartbeat_missed << " |\n";
    os << "| worker restarts | " << r.transport.worker_restarts << " |\n";
    os << "| frames rejected | " << r.transport.frame_rejects << " |\n";
  }

  if (!r.phases.empty()) {
    os << "\n## Phase breakdown (from trace)\n\n";
    os << "| span | count | total ms |\n|------|------:|---------:|\n";
    for (const PhaseStats& ps : r.phases) {
      os << "| `" << ps.name << "` | " << ps.count << " | "
         << fmt_fixed(static_cast<double>(ps.total_us) / 1e3, 1) << " |\n";
    }
  }
  return os.str();
}

RunReport from_json(const std::string& text) {
  const json::Value doc = json::parse(text);
  if (!doc.is_object()) {
    throw std::runtime_error("fedclust_report: baseline is not an object");
  }
  RunReport r;
  r.version = static_cast<int>(doc.number_or("report_version", 1.0));
  r.codec = doc.string_or("codec", r.codec);
  r.rounds = u64(doc, "rounds");
  r.final_acc = doc.number_or("final_acc", -1.0);
  if (const json::Value* totals = doc.find("totals")) {
    r.sampled_total = u64(*totals, "sampled");
    r.delivered_total = u64(*totals, "delivered");
    r.upload_payload_bytes = u64(*totals, "upload_payload_bytes");
    r.upload_wire_bytes = u64(*totals, "upload_wire_bytes");
    r.download_payload_bytes = u64(*totals, "download_payload_bytes");
    r.download_wire_bytes = u64(*totals, "download_wire_bytes");
    r.train_us_total = u64(*totals, "train_us_total");
  }
  if (const json::Value* memory = doc.find("memory")) {
    r.peak_rss_kb = u64(*memory, "peak_rss_kb");
    r.cache_hits = u64(*memory, "cache_hits");
    r.cache_misses = u64(*memory, "cache_misses");
    r.cache_evictions = u64(*memory, "cache_evictions");
  }
  if (const json::Value* faults = doc.find("faults")) {
    r.faults.dropped = u64(*faults, "dropped");
    r.faults.crashes = u64(*faults, "crashes");
    r.faults.stragglers = u64(*faults, "stragglers");
    r.faults.retries = u64(*faults, "retries");
    r.faults.comm_failed = u64(*faults, "comm_failed");
    r.faults.deadline_missed = u64(*faults, "deadline_missed");
    r.faults.corrupt = u64(*faults, "corrupt");
    r.faults.checksum_rejects = u64(*faults, "checksum_rejects");
    r.faults.quarantined = u64(*faults, "quarantined");
  }
  if (const json::Value* clustering = doc.find("clustering")) {
    r.clustering.landmarks = u64(*clustering, "landmarks");
    r.clustering.clusters = u64(*clustering, "clusters");
    r.clustering.assign_batches = u64(*clustering, "assign_batches");
    r.clustering.assigned = u64(*clustering, "assigned");
    const json::Value* pairs = clustering->find("assignment");
    if (pairs != nullptr && pairs->is_array()) {
      for (const json::Value& pair : pairs->array) {
        if (!pair.is_array() || pair.array.size() != 2) {
          throw std::runtime_error(
              "fedclust_report: clustering.assignment entries must be "
              "[client, cluster] pairs");
        }
        r.clustering.assignment.emplace_back(
            static_cast<std::uint64_t>(pair.array[0].number),
            static_cast<std::uint64_t>(pair.array[1].number));
      }
    }
  }
  if (const json::Value* transport = doc.find("transport")) {
    r.transport.connects = u64(*transport, "connects");
    r.transport.reconnects = u64(*transport, "reconnects");
    r.transport.heartbeat_missed = u64(*transport, "heartbeat_missed");
    r.transport.worker_restarts = u64(*transport, "worker_restarts");
    r.transport.frame_rejects = u64(*transport, "frame_rejects");
  }
  return r;
}

bool partition_agreement(const RunReport& a, const RunReport& b,
                         double* ari) {
  // Intersect the two journaled partitions on client id (both sides are
  // sorted by construction), building the contingency table n_ij plus the
  // row/column marginals as we go.
  std::map<std::uint64_t, std::uint64_t> bmap(b.clustering.assignment.begin(),
                                              b.clustering.assignment.end());
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> joint;
  std::map<std::uint64_t, std::uint64_t> rows, cols;
  std::uint64_t n = 0;
  for (const auto& [client, ka] : a.clustering.assignment) {
    const auto it = bmap.find(client);
    if (it == bmap.end()) continue;
    ++joint[{ka, it->second}];
    ++rows[ka];
    ++cols[it->second];
    ++n;
  }
  if (n < 2) return false;

  // Hubert & Arabie's adjusted Rand index over pair counts C(x, 2).
  const auto comb2 = [](std::uint64_t x) {
    return 0.5 * static_cast<double>(x) * static_cast<double>(x - 1);
  };
  double index = 0.0, row_sum = 0.0, col_sum = 0.0;
  for (const auto& [key, c] : joint) index += comb2(c);
  for (const auto& [k, c] : rows) row_sum += comb2(c);
  for (const auto& [k, c] : cols) col_sum += comb2(c);
  const double expected = row_sum * col_sum / comb2(n);
  const double max_index = 0.5 * (row_sum + col_sum);
  // Degenerate case (both sides all-singletons or one-cluster): the raw
  // Rand index is 1 exactly when the partitions agree, which they do here
  // since index == max_index == expected.
  *ari = max_index == expected
             ? 1.0
             : (index - expected) / (max_index - expected);
  return true;
}

std::vector<Regression> compare(const RunReport& current,
                                const RunReport& baseline,
                                const CompareThresholds& thresholds) {
  std::vector<Regression> out;
  if (current.final_acc >= 0.0 && baseline.final_acc >= 0.0) {
    const double drop = baseline.final_acc - current.final_acc;
    if (drop > thresholds.acc_tol) {
      out.push_back({"final_acc", current.final_acc, baseline.final_acc,
                     "final accuracy dropped " +
                         fmt_fixed(drop * 100.0, 2) + " points (tolerance " +
                         fmt_fixed(thresholds.acc_tol * 100.0, 2) + ")"});
    }
  }
  const auto cur_wire = static_cast<double>(current.total_wire_bytes());
  const auto base_wire = static_cast<double>(baseline.total_wire_bytes());
  if (base_wire > 0.0 &&
      cur_wire > base_wire * (1.0 + thresholds.bytes_tol_pct / 100.0)) {
    out.push_back({"wire_bytes", cur_wire, base_wire,
                   "total wire bytes grew " +
                       fmt_fixed((cur_wire / base_wire - 1.0) * 100.0, 1) +
                       "% (tolerance " +
                       fmt_fixed(thresholds.bytes_tol_pct, 1) + "%)"});
  }
  const auto cur_us = static_cast<double>(current.train_us_total);
  const auto base_us = static_cast<double>(baseline.train_us_total);
  if (base_us > 0.0 &&
      cur_us > base_us * (1.0 + thresholds.time_tol_pct / 100.0)) {
    out.push_back({"train_us", cur_us, base_us,
                   "total train wall time grew " +
                       fmt_fixed((cur_us / base_us - 1.0) * 100.0, 1) +
                       "% (tolerance " +
                       fmt_fixed(thresholds.time_tol_pct, 1) + "%)"});
  }
  return out;
}

}  // namespace fedclust::obs::report
