#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace fedclust::obs {

std::atomic<bool> SpanTracer::g_enabled{false};

namespace {

// Per-thread fixed capacity. 1 << 15 events × 40 B ≈ 1.3 MiB per recording
// thread — enough for several full quick-scale runs of round/client spans;
// kernel-level spans may wrap, which the export reports via `dropped`.
constexpr std::size_t kRingCapacity = 1u << 15;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Per-thread ring. `head` counts every append ever made; the live slot is
// head % kRingCapacity. Written only by the owning thread; read during
// (quiescent) export.
struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::string label;
  std::atomic<std::uint64_t> head{0};
  std::vector<SpanEvent> ring{std::vector<SpanEvent>(kRingCapacity)};
};

struct BufferRegistry {
  mutable std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

BufferRegistry& registry() {
  static BufferRegistry* r = new BufferRegistry;  // leaky: workers record
  return *r;                                      // until process exit
}

thread_local ThreadBuffer* tls_buffer = nullptr;

ThreadBuffer& local_buffer() {
  if (tls_buffer == nullptr) {
    auto buf = std::make_unique<ThreadBuffer>();
    BufferRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    buf->tid = static_cast<std::uint32_t>(reg.buffers.size());
    tls_buffer = buf.get();
    reg.buffers.push_back(std::move(buf));
  }
  return *tls_buffer;
}

}  // namespace

SpanTracer& SpanTracer::instance() {
  static SpanTracer* t = new SpanTracer;
  return *t;
}

void SpanTracer::record(const char* name, std::int64_t begin_us,
                        std::int64_t end_us, std::uint64_t arg, bool has_arg,
                        std::uint64_t arg2, bool has_arg2) {
  ThreadBuffer& buf = local_buffer();
  const std::uint64_t h = buf.head.load(std::memory_order_relaxed);
  buf.ring[h % kRingCapacity] = {name,     begin_us, end_us,  arg,
                                 arg2,     has_arg,  has_arg2};
  buf.head.store(h + 1, std::memory_order_relaxed);
}

void SpanTracer::set_thread_label(const std::string& label) {
  ThreadBuffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lock(registry().mu);
  buf.label = label;
}

const char* SpanTracer::intern(const std::string& name) {
  // Node-based set: element addresses are stable across inserts, and the
  // set leaks with the leaky singleton so interned pointers outlive every
  // recorded event.
  static std::mutex* mu = new std::mutex;
  static std::unordered_set<std::string>* names =
      new std::unordered_set<std::string>;
  const std::lock_guard<std::mutex> lock(*mu);
  return names->insert(name).first->c_str();
}

std::vector<SpanTracer::ThreadEvents> SpanTracer::collect() const {
  std::vector<ThreadEvents> out;
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  out.reserve(reg.buffers.size());
  for (const auto& buf : reg.buffers) {
    ThreadEvents te;
    te.tid = buf->tid;
    te.label = buf->label.empty()
                   ? "thread-" + std::to_string(buf->tid)
                   : buf->label;
    const std::uint64_t h = buf->head.load(std::memory_order_relaxed);
    const std::uint64_t n = h < kRingCapacity ? h : kRingCapacity;
    te.dropped = h - n;
    te.events.reserve(n);
    for (std::uint64_t i = h - n; i < h; ++i) {
      te.events.push_back(buf->ring[i % kRingCapacity]);
    }
    out.push_back(std::move(te));
  }
  return out;
}

std::size_t SpanTracer::total_recorded() const {
  std::size_t total = 0;
  for (const auto& te : collect()) total += te.events.size();
  return total;
}

std::string SpanTracer::chrome_trace_json() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& te : collect()) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << te.tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << json_escape(te.label) << "\"}}";
    for (const auto& ev : te.events) {
      const std::int64_t dur = ev.end_us - ev.begin_us;
      os << ",{\"ph\":\"X\",\"pid\":1,\"tid\":" << te.tid << ",\"name\":\""
         << json_escape(ev.name) << "\",\"ts\":" << ev.begin_us
         << ",\"dur\":" << (dur > 0 ? dur : 0);
      if (ev.has_arg) {
        os << ",\"args\":{\"v\":" << ev.arg;
        if (ev.has_arg2) os << ",\"v2\":" << ev.arg2;
        os << "}";
      }
      os << "}";
    }
    if (te.dropped > 0) {
      os << ",{\"ph\":\"I\",\"pid\":1,\"tid\":" << te.tid
         << ",\"name\":\"ring_overflow\",\"ts\":0,\"args\":{\"dropped\":"
         << te.dropped << "}}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

void SpanTracer::write_chrome_trace(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    throw std::runtime_error("SpanTracer: cannot open trace output " + path);
  }
  os << chrome_trace_json();
  os.flush();
  if (!os) {
    throw std::runtime_error("SpanTracer: write failed for " + path);
  }
}

void SpanTracer::clear() {
  BufferRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& buf : reg.buffers) {
    buf->head.store(0, std::memory_order_relaxed);
  }
}

}  // namespace fedclust::obs
