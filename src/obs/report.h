#pragma once

// obs::report — post-run attribution analysis. Builds a RunReport from the
// three run artifacts (event-journal JSONL, per-round metrics JSONL,
// Chrome trace JSON), renders it as JSON and markdown, and diffs two
// reports against configurable thresholds — the automated perf/comm
// regression gate behind `fedclust_report --compare` (wired into
// tools/tier1.sh). Field semantics are documented in
// docs/OBSERVABILITY.md §Run report.
//
// Lives in src/obs/ (below fedclust_util in the layering); everything here
// is pure string/struct transformation, so it is trivially testable
// (tests/report_test.cpp) and usable from any layer.

#include <cstdint>
#include <string>
#include <vector>

namespace fedclust::obs::report {

// Thresholds for compare(): a regression is flagged when the current run
// is worse than the baseline by more than the allowance.
struct CompareThresholds {
  double acc_tol = 0.02;        // absolute final-accuracy drop allowed
  double bytes_tol_pct = 10.0;  // allowed % growth of total wire bytes
  double time_tol_pct = 50.0;   // allowed % growth of total train wall-µs
                                // (wall time is noisy; keep this loose)
};

struct RoundStats {
  std::uint64_t round = 0;
  std::uint64_t sampled = 0;
  std::uint64_t delivered = 0;
  std::uint64_t train_us_total = 0;
  // The round's critical path under synchronous aggregation: the slowest
  // client's local-training wall time, and who it was (-1 = no train rows).
  std::uint64_t train_us_max = 0;
  std::int64_t critical_client = -1;
  std::uint64_t upload_wire_bytes = 0;
  std::uint64_t download_wire_bytes = 0;
  double acc = -1.0;            // from metrics JSONL; -1 = not evaluated
  double round_seconds = -1.0;  // from metrics JSONL; -1 = absent
};

struct ClientStats {
  std::uint64_t client = 0;
  std::uint64_t rounds_sampled = 0;
  std::uint64_t delivered = 0;
  std::uint64_t train_us_total = 0;
  std::uint64_t train_us_max = 0;
  std::uint64_t straggler_events = 0;
  std::uint64_t max_delay_milli = 0;  // worst injected delay factor
  std::uint64_t upload_wire_bytes = 0;
  std::uint64_t download_wire_bytes = 0;
  std::int64_t cluster = -1;    // last cluster the client reported to
  double final_acc = -1.0;      // last journaled eval accuracy
};

struct ClusterStats {
  std::uint64_t cluster = 0;
  std::uint64_t clients = 0;   // members seen in journal cluster rows
  double mean_acc = -1.0;      // mean final_acc of members with eval rows
  std::uint64_t upload_wire_bytes = 0;
  std::uint64_t download_wire_bytes = 0;
};

// FedClust/PACFL setup summary: landmark-sketch telemetry (the
// cluster.landmark.* counters from the metrics JSONL; all zero for exact
// runs) plus the full journaled partition — setup writes one round-0
// cluster row per client, so `assignment` covers the whole population,
// not just sampled cohorts.
struct ClusteringSummary {
  std::uint64_t landmarks = 0;       // clients the dendrogram actually saw
  std::uint64_t clusters = 0;        // clusters the sketch produced
  std::uint64_t assign_batches = 0;  // streamed nearest-landmark batches
  std::uint64_t assigned = 0;        // non-landmark clients assigned
  // client -> cluster pairs journaled at setup, sorted by client id.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> assignment;

  bool any() const {
    return landmarks + clusters + assign_batches + assigned > 0 ||
           !assignment.empty();
  }
};

// One span name aggregated over the Chrome trace ("where did wall time
// go": fl.round vs client.train vs wire.encode/* vs gemm ...).
struct PhaseStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
};

struct FaultSummary {
  std::uint64_t dropped = 0;
  std::uint64_t crashes = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t retries = 0;
  std::uint64_t comm_failed = 0;
  std::uint64_t deadline_missed = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t checksum_rejects = 0;
  std::uint64_t quarantined = 0;
};

// Socket-mode transport events (journal rows whose `client` slot carries a
// worker id; see docs/TRANSPORT.md). All zero for in-process runs.
struct TransportSummary {
  std::uint64_t connects = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t heartbeat_missed = 0;
  std::uint64_t worker_restarts = 0;
  std::uint64_t frame_rejects = 0;

  bool any() const {
    return connects + reconnects + heartbeat_missed + worker_restarts +
               frame_rejects >
           0;
  }
};

struct RunReport {
  int version = 1;
  std::string codec = "raw_f32";
  std::uint64_t rounds = 0;     // distinct rounds with sampled rows
  double final_acc = -1.0;
  std::uint64_t sampled_total = 0;
  std::uint64_t delivered_total = 0;
  std::uint64_t upload_payload_bytes = 0;
  std::uint64_t upload_wire_bytes = 0;
  std::uint64_t download_payload_bytes = 0;
  std::uint64_t download_wire_bytes = 0;
  std::uint64_t train_us_total = 0;
  // Memory / client-store telemetry from the metrics JSONL: the RSS
  // high-water mark is the max over the run's gauge samples, the cache
  // counters are the final cumulative values. All zero when no metrics
  // file rode along (or the run never registered them).
  std::uint64_t peak_rss_kb = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::vector<RoundStats> per_round;
  std::vector<ClientStats> stragglers;  // top-K by straggler attribution
  std::vector<ClusterStats> clusters;
  ClusteringSummary clustering;
  FaultSummary faults;
  TransportSummary transport;
  std::vector<PhaseStats> phases;       // by total_us, descending

  std::uint64_t total_wire_bytes() const {
    return upload_wire_bytes + download_wire_bytes;
  }
};

// Builds the report from raw artifact text. journal_text is required;
// metrics_text / trace_text may be empty (their fields stay at defaults).
// top_k bounds the straggler table. Throws std::runtime_error on
// malformed input.
RunReport build_report(const std::string& journal_text,
                       const std::string& metrics_text,
                       const std::string& trace_text,
                       std::size_t top_k = 5);

// Same, reading each non-empty path from disk (empty path = absent
// artifact). Throws when a named file cannot be read.
RunReport build_report_from_files(const std::string& journal_path,
                                  const std::string& metrics_path,
                                  const std::string& trace_path,
                                  std::size_t top_k = 5);

// Deterministic serializations: equal reports produce byte-equal output.
std::string to_json(const RunReport& r);
std::string to_markdown(const RunReport& r);

// Reads a report back from to_json() output — the baseline side of
// --compare. Only the fields compare() consults are required to be
// present; missing sections stay at defaults.
RunReport from_json(const std::string& text);

// Adjusted Rand index between the partitions the two runs journaled,
// computed over the clients both assigned — the landmark-vs-exact
// clustering agreement gate (`fedclust_report --ari-min`). Returns false
// (leaving *ari untouched) when fewer than two common clients exist;
// agreement is undefined then. 1 = identical partitions, ~0 = chance.
bool partition_agreement(const RunReport& a, const RunReport& b,
                         double* ari);

struct Regression {
  std::string metric;   // "final_acc" | "wire_bytes" | "train_us"
  double current = 0.0;
  double baseline = 0.0;
  std::string detail;   // human-readable one-liner
};

// Diffs `current` against `baseline`: final accuracy may not drop more
// than acc_tol, total wire bytes / total train wall-µs may not grow more
// than their percentage allowances. Empty result = no regression.
std::vector<Regression> compare(const RunReport& current,
                                const RunReport& baseline,
                                const CompareThresholds& thresholds);

}  // namespace fedclust::obs::report
