#include "fl/client.h"

#include <numeric>
#include <stdexcept>

#include "nn/loss.h"
#include "nn/optimizer.h"

namespace fedclust::fl {

SimClient::SimClient(std::size_t id, data::Dataset train, data::Dataset test)
    : id_(id), train_(std::move(train)), test_(std::move(test)) {
  if (train_.empty()) {
    throw std::invalid_argument("SimClient: empty training set");
  }
}

std::size_t SimClient::local_steps(const LocalTrainOptions& opts) const {
  const std::size_t batches =
      (train_.size() + opts.batch_size - 1) / opts.batch_size;
  return batches * opts.epochs;
}

float SimClient::train(nn::Model& model, const LocalTrainOptions& opts,
                       util::Rng rng, const std::vector<float>* prox_ref,
                       const std::vector<float>* grad_offset) const {
  nn::Sgd opt(model.parameters(),
              {.lr = opts.lr,
               .momentum = opts.momentum,
               .weight_decay = opts.weight_decay,
               .clip_grad_norm = opts.clip_grad_norm,
               .prox_mu = prox_ref != nullptr ? opts.prox_mu : 0.0f});
  if (prox_ref != nullptr && opts.prox_mu != 0.0f) {
    opt.set_prox_reference(*prox_ref);
  }
  if (grad_offset != nullptr) opt.set_grad_offset(*grad_offset);

  std::vector<std::size_t> order(train_.size());
  std::iota(order.begin(), order.end(), 0);

  float epoch_loss = 0.0f;
  for (std::size_t e = 0; e < opts.epochs; ++e) {
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t n_batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += opts.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + opts.batch_size);
      const std::vector<std::size_t> batch(order.begin() +
                                               static_cast<std::ptrdiff_t>(
                                                   start),
                                           order.begin() +
                                               static_cast<std::ptrdiff_t>(
                                                   end));
      const auto images = train_.batch_images(batch);
      const auto labels = train_.batch_labels(batch);
      opt.zero_grad();
      const auto logits = model.forward(images, /*train=*/true);
      const auto lr = nn::softmax_cross_entropy(logits, labels);
      model.backward(lr.grad_logits);
      opt.step();
      loss_sum += lr.loss;
      ++n_batches;
    }
    epoch_loss = static_cast<float>(loss_sum /
                                    static_cast<double>(n_batches));
  }
  return epoch_loss;
}

double SimClient::evaluate(nn::Model& model) const {
  if (test_.empty()) return 0.0;
  std::vector<std::size_t> all(test_.size());
  std::iota(all.begin(), all.end(), 0);
  const auto logits = model.forward(test_.batch_images(all));
  return nn::accuracy(logits, test_.batch_labels(all));
}

float SimClient::train_loss(nn::Model& model) const {
  std::vector<std::size_t> all(train_.size());
  std::iota(all.begin(), all.end(), 0);
  const auto logits = model.forward(train_.batch_images(all));
  // A fresh LossResult only for the scalar; the gradient is discarded.
  return nn::softmax_cross_entropy(logits, train_.batch_labels(all)).loss;
}

}  // namespace fedclust::fl
