#pragma once

// IFCA (Ghosh et al., 2020): a fixed number K of cluster models. Every
// sampled client downloads all K models each round (the communication cost
// the paper calls out), picks the one with the lowest loss on its own data,
// trains it, and the server averages per cluster. Cluster models start from
// different random initializations, which is why IFCA's early rounds are
// noisy.

#include "fl/algorithm.h"

namespace fedclust::fl {

class Ifca : public FlAlgorithm {
 public:
  explicit Ifca(Federation& fed);

  std::string name() const override { return "IFCA"; }

  const std::vector<std::vector<float>>& models() const { return models_; }
  // Cluster a (possibly new) client would select: argmin train loss across
  // the K models, as in the training rounds.
  std::size_t select_cluster_for(const SimClient& client);

  void save_state(util::BinaryWriter& w) const override;
  void load_state(util::BinaryReader& r) override;

 protected:
  void setup() override;
  void round(std::size_t r) override;
  double evaluate_all() override;
  std::size_t current_clusters() const override { return models_.size(); }

 private:
  // argmin_k train_loss(model_k) evaluated through an explicit workspace —
  // the form worker threads use with their leased replicas.
  std::size_t select_cluster_with(nn::Model& ws, const SimClient& client);
  // Same, over an explicit model set (the wire-decoded copies clients
  // actually receive during a round).
  std::size_t select_cluster_from(
      const std::vector<std::vector<float>>& models, nn::Model& ws,
      const SimClient& client);
  // argmin_k train_loss(model_k) for client c of the federation.
  std::size_t select_cluster(std::size_t c);

  std::vector<std::vector<float>> models_;
};

}  // namespace fedclust::fl
