#include "fl/fednova.h"

namespace fedclust::fl {

FedNova::FedNova(Federation& fed) : FlAlgorithm(fed) {}

void FedNova::setup() { global_ = fed_.init_params(); }

void FedNova::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  nn::Model& ws = fed_.workspace();
  const std::size_t p = fed_.model_size();

  // Accumulate sum_i p_i d_i and tau_eff in one pass.
  std::vector<double> direction(p, 0.0);
  double total_weight = 0.0;
  double tau_eff = 0.0;

  std::vector<double> weights;
  std::vector<double> taus;
  std::vector<std::vector<float>> locals;
  for (const std::size_t c : sampled) {
    fed_.comm().download_floats(p);
    ws.set_flat_params(global_);
    fed_.client(c).train(ws, fed_.cfg().local, fed_.train_rng(c, r));
    fed_.comm().upload_floats(p);
    locals.push_back(ws.flat_params());
    weights.push_back(static_cast<double>(fed_.client(c).n_train()));
    taus.push_back(
        static_cast<double>(fed_.client(c).local_steps(fed_.cfg().local)));
    total_weight += weights.back();
  }

  for (std::size_t i = 0; i < locals.size(); ++i) {
    const double pi = weights[i] / total_weight;
    tau_eff += pi * taus[i];
    const double inv_tau = 1.0 / taus[i];
    const auto& w = locals[i];
    for (std::size_t j = 0; j < p; ++j) {
      direction[j] +=
          pi * inv_tau * (static_cast<double>(global_[j]) - w[j]);
    }
  }
  for (std::size_t j = 0; j < p; ++j) {
    global_[j] -= static_cast<float>(tau_eff * direction[j]);
  }
}

double FedNova::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t) -> const std::vector<float>& { return global_; });
}

}  // namespace fedclust::fl
