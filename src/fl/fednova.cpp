#include "fl/fednova.h"

#include "fl/parallel_round.h"
#include "obs/metrics.h"

namespace fedclust::fl {

FedNova::FedNova(Federation& fed) : FlAlgorithm(fed) {}

void FedNova::setup() { global_ = fed_.init_params(); }

void FedNova::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  const std::size_t p = fed_.model_size();

  ParallelRoundRunner runner(fed_);
  const auto results = runner.train_clients(
      sampled, [&](std::size_t, std::size_t c) {
        RoundTrainJob job;
        job.start = &global_;
        job.opts = fed_.cfg().local;
        job.rng = fed_.train_rng(c, r);
        job.download_floats = p;
        job.upload_floats = p;
        job.round = r;
        return job;
      });

  if (!any_delivered(results)) {
    OBS_COUNTER_ADD("fault.empty_rounds", 1);
    return;  // all updates lost: global carries forward unchanged
  }

  // Accumulate sum_i p_i d_i and tau_eff over the delivered updates in one
  // pass (client-index order).
  std::vector<double> direction(p, 0.0);
  double total_weight = 0.0;
  for (const auto& res : results) {
    if (res.delivered) total_weight += res.weight;
  }

  double tau_eff = 0.0;
  for (const auto& res : results) {
    if (!res.delivered) continue;
    const double pi = res.weight / total_weight;
    const double tau = static_cast<double>(
        fed_.client(res.client)->local_steps(fed_.cfg().local));
    tau_eff += pi * tau;
    const double inv_tau = 1.0 / tau;
    const auto& w = res.params;
    for (std::size_t j = 0; j < p; ++j) {
      direction[j] +=
          pi * inv_tau * (static_cast<double>(global_[j]) - w[j]);
    }
  }
  for (std::size_t j = 0; j < p; ++j) {
    global_[j] -= static_cast<float>(tau_eff * direction[j]);
  }
}

double FedNova::evaluate_all() {
  return fed_.average_local_accuracy(
      [this](std::size_t) -> const std::vector<float>& { return global_; });
}

void FedNova::save_state(util::BinaryWriter& w) const {
  w.write_f32_vec(global_);
}

void FedNova::load_state(util::BinaryReader& r) {
  global_ = r.read_f32_vec();
}

}  // namespace fedclust::fl
