#include "fl/codec.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "tensor/simd.h"
#include "util/f16.h"
#include "util/serialization.h"

namespace fedclust::fl::wire {

// ------------------------------------------------------------------ names

const char* codec_name(CodecId id) {
  switch (id) {
    case CodecId::kRawF32: return "raw_f32";
    case CodecId::kF16: return "f16";
    case CodecId::kQInt8: return "qint8";
  }
  return "unknown";
}

CodecId codec_from_string(const std::string& name) {
  if (name == "raw_f32") return CodecId::kRawF32;
  if (name == "f16") return CodecId::kF16;
  if (name == "qint8") return CodecId::kQInt8;
  throw std::invalid_argument("unknown codec: " + name +
                              " (expected raw_f32, f16, or qint8)");
}

bool codec_id_valid(std::uint8_t raw) { return raw < kNumCodecs; }

// ------------------------------------------------------------------ f16

std::uint16_t f32_to_f16(float v) { return util::f32_to_f16(v); }

float f16_to_f32(std::uint16_t h) { return util::f16_to_f32(h); }

// ------------------------------------------------------------------ sizes

namespace {

std::size_t qint8_chunks(std::size_t n) {
  return (n + kQuantChunk - 1) / kQuantChunk;
}

void check_len(std::size_t len, std::size_t want, const char* codec) {
  if (len != want) {
    throw std::runtime_error(std::string("codec ") + codec +
                             ": payload length mismatch");
  }
}

// The f16 kernels operate on uint16_t; wire buffers are byte vectors. The
// byte image of a little-endian uint16_t array IS the wire format, so on LE
// hosts a 2-aligned buffer can be reinterpreted directly. Heap allocations
// are always sufficiently aligned; the check only guards sliced views.
bool f16_fast_path(const void* p) {
  return util::host_is_little_endian() &&
         (reinterpret_cast<std::uintptr_t>(p) & 1u) == 0;
}

}  // namespace

std::size_t encoded_size(CodecId codec, std::size_t n) {
  switch (codec) {
    case CodecId::kRawF32: return n * 4;
    case CodecId::kF16: return n * 2;
    case CodecId::kQInt8: return n + qint8_chunks(n) * 8;
  }
  throw std::invalid_argument("encoded_size: bad codec id");
}

// ------------------------------------------------------------------ encode

std::vector<std::uint8_t> encode_payload(CodecId codec, const float* data,
                                         std::size_t n) {
  // All float-touching work goes through the dispatched kernel table. The
  // scalar table is the golden reference and every SIMD table is bit-exact
  // against it, so the wire bytes are independent of the active ISA.
  const tensor::simd::KernelTable& kt = tensor::simd::kernels();
  std::vector<std::uint8_t> out;
  switch (codec) {
    case CodecId::kRawF32:
      out.resize(n * 4);
      if (util::host_is_little_endian()) {
        std::memcpy(out.data(), data, n * 4);
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          util::store_f32_le(out.data() + i * 4, data[i]);
        }
      }
      return out;
    case CodecId::kF16:
      out.resize(n * 2);
      if (f16_fast_path(out.data())) {
        kt.f16_encode(data, n, reinterpret_cast<std::uint16_t*>(out.data()));
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          util::store_u16_le(out.data() + i * 2, util::f32_to_f16(data[i]));
        }
      }
      return out;
    case CodecId::kQInt8: {
      out.resize(encoded_size(CodecId::kQInt8, n));
      std::uint8_t* pos = out.data();
      for (std::size_t i0 = 0; i0 < n; i0 += kQuantChunk) {
        const std::size_t m = std::min(kQuantChunk, n - i0);
        float lo, hi;
        bool finite;
        kt.minmax_finite(data + i0, m, &lo, &hi, &finite);
        const float scale = finite ? (hi - lo) / 255.0f : 0.0f;
        if (!finite || !std::isfinite(scale)) {
          // Poisoned chunk: a NaN scale makes the whole chunk decode to
          // NaN, so non-finite corruption survives the lossy codec instead
          // of being quantized back into the finite range.
          util::store_f32_le(pos, std::numeric_limits<float>::quiet_NaN());
          util::store_f32_le(pos + 4, 0.0f);
          std::memset(pos + 8, 0, m);
          pos += 8 + m;
          continue;
        }
        util::store_f32_le(pos, scale);
        util::store_f32_le(pos + 4, lo);
        if (scale > 0.0f) {
          kt.qint8_quantize(data + i0, m, lo, scale, pos + 8);
        } else {
          std::memset(pos + 8, 0, m);
        }
        pos += 8 + m;
      }
      return out;
    }
  }
  throw std::invalid_argument("encode_payload: bad codec id");
}

// ------------------------------------------------------------------ decode

std::vector<float> decode_payload(CodecId codec, const std::uint8_t* data,
                                  std::size_t len, std::size_t n) {
  const tensor::simd::KernelTable& kt = tensor::simd::kernels();
  std::vector<float> out;
  switch (codec) {
    case CodecId::kRawF32:
      check_len(len, n * 4, "raw_f32");
      out.resize(n);
      if (util::host_is_little_endian()) {
        std::memcpy(out.data(), data, n * 4);
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = util::get_f32_le(data + i * 4);
        }
      }
      return out;
    case CodecId::kF16:
      check_len(len, n * 2, "f16");
      out.resize(n);
      if (f16_fast_path(data)) {
        kt.f16_decode(reinterpret_cast<const std::uint16_t*>(data), n,
                      out.data());
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = util::f16_to_f32(util::get_u16_le(data + i * 2));
        }
      }
      return out;
    case CodecId::kQInt8: {
      check_len(len, encoded_size(CodecId::kQInt8, n), "qint8");
      out.resize(n);
      std::size_t pos = 0;
      for (std::size_t i0 = 0; i0 < n; i0 += kQuantChunk) {
        const std::size_t m = std::min(kQuantChunk, n - i0);
        const float scale = util::get_f32_le(data + pos);
        const float lo = util::get_f32_le(data + pos + 4);
        pos += 8;
        if (!std::isfinite(scale) || !std::isfinite(lo)) {
          std::fill(out.begin() + static_cast<std::ptrdiff_t>(i0),
                    out.begin() + static_cast<std::ptrdiff_t>(i0 + m),
                    std::numeric_limits<float>::quiet_NaN());
          pos += m;
          continue;
        }
        kt.qint8_dequantize(data + pos, m, lo, scale, out.data() + i0);
        pos += m;
      }
      return out;
    }
  }
  throw std::invalid_argument("decode_payload: bad codec id");
}

// ------------------------------------------- int8-domain weighted average

std::vector<float> qint8_weighted_average(
    const std::vector<std::pair<const std::vector<std::uint8_t>*, double>>&
        entries,
    std::size_t n) {
  const tensor::simd::KernelTable& kt = tensor::simd::kernels();
  const std::size_t chunks = qint8_chunks(n);

  // Per-element fixed-point sums of w*scale*q (24 fractional bits), plus
  // per-chunk double offsets sum(w*lo). `exact` holds the double fallback
  // contributions for (entry, chunk) pairs whose multiplier does not fit
  // the fixed-point guard; it is allocated lazily since the fallback is
  // rare (it needs |w*scale| >= ~0.5).
  std::vector<std::int64_t> acc(n, 0);
  std::vector<double> off(chunks, 0.0);
  std::vector<double> exact;
  std::vector<std::uint8_t> poisoned(chunks, 0);
  constexpr double kFix = 16777216.0;  // 2^24

  for (const auto& [bytes, w] : entries) {
    check_len(bytes->size(), encoded_size(CodecId::kQInt8, n), "qint8");
    const std::uint8_t* data = bytes->data();
    std::size_t pos = 0;
    for (std::size_t ci = 0; ci < chunks; ++ci) {
      const std::size_t i0 = ci * kQuantChunk;
      const std::size_t m = std::min(kQuantChunk, n - i0);
      const float scale = util::get_f32_le(data + pos);
      const float lo = util::get_f32_le(data + pos + 4);
      pos += 8 + m;
      if (!std::isfinite(scale) || !std::isfinite(lo)) {
        poisoned[ci] = 1;
        continue;
      }
      off[ci] += w * static_cast<double>(lo);
      const double ws = w * static_cast<double>(scale);
      const double m24d = ws * kFix;
      const long long m24 = std::llround(m24d);
      if (std::abs(m24d) < 8388608.0 /* 2^23: m24*255 fits int32 */) {
        if (m24 != 0) {
          kt.qint8_accumulate(acc.data() + i0, data + pos - m, m,
                              static_cast<std::int32_t>(m24));
        }
      } else {
        if (exact.empty()) exact.assign(n, 0.0);
        const std::uint8_t* q = data + pos - m;
        for (std::size_t i = 0; i < m; ++i) {
          exact[i0 + i] += ws * static_cast<double>(q[i]);
        }
      }
    }
  }

  std::vector<float> out(n);
  for (std::size_t ci = 0; ci < chunks; ++ci) {
    const std::size_t i0 = ci * kQuantChunk;
    const std::size_t m = std::min(kQuantChunk, n - i0);
    if (poisoned[ci]) {
      std::fill(out.begin() + static_cast<std::ptrdiff_t>(i0),
                out.begin() + static_cast<std::ptrdiff_t>(i0 + m),
                std::numeric_limits<float>::quiet_NaN());
      continue;
    }
    for (std::size_t i = i0; i < i0 + m; ++i) {
      double v = static_cast<double>(acc[i]) / kFix + off[ci];
      if (!exact.empty()) v += exact[i];
      out[i] = static_cast<float>(v);
    }
  }
  return out;
}

}  // namespace fedclust::fl::wire
