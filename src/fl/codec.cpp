#include "fl/codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "util/serialization.h"

namespace fedclust::fl::wire {

// ------------------------------------------------------------------ names

const char* codec_name(CodecId id) {
  switch (id) {
    case CodecId::kRawF32: return "raw_f32";
    case CodecId::kF16: return "f16";
    case CodecId::kQInt8: return "qint8";
  }
  return "unknown";
}

CodecId codec_from_string(const std::string& name) {
  if (name == "raw_f32") return CodecId::kRawF32;
  if (name == "f16") return CodecId::kF16;
  if (name == "qint8") return CodecId::kQInt8;
  throw std::invalid_argument("unknown codec: " + name +
                              " (expected raw_f32, f16, or qint8)");
}

bool codec_id_valid(std::uint8_t raw) { return raw < kNumCodecs; }

// ------------------------------------------------------------------ f16

std::uint16_t f32_to_f16(float v) {
  std::uint32_t f;
  std::memcpy(&f, &v, sizeof(f));
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  f &= 0x7fffffffu;

  if (f >= 0x7f800000u) {  // inf / nan
    const std::uint32_t mant = f & 0x7fffffu;
    if (mant == 0) return static_cast<std::uint16_t>(sign | 0x7c00u);
    const std::uint32_t hm = mant >> 13;
    return static_cast<std::uint16_t>(sign | 0x7c00u | (hm ? hm : 1u));
  }

  const std::int32_t exp = static_cast<std::int32_t>(f >> 23) - 127;
  const std::uint32_t mant = f & 0x7fffffu;
  if (exp >= 16) return static_cast<std::uint16_t>(sign | 0x7c00u);

  if (exp >= -14) {
    // Normal half: drop 13 mantissa bits with round-to-nearest-even. A
    // mantissa carry propagates into the exponent field, and an exponent
    // carry out of range lands exactly on the inf encoding.
    const std::uint32_t hexp = static_cast<std::uint32_t>(exp + 15);
    std::uint32_t combined = (hexp << 10) | (mant >> 13);
    const std::uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (combined & 1u))) ++combined;
    return static_cast<std::uint16_t>(sign | combined);
  }

  if (exp >= -25) {
    // Subnormal half: value = q * 2^-24 with RNE on the shifted-out bits.
    const std::uint32_t full = mant | 0x800000u;
    const std::uint32_t shift = static_cast<std::uint32_t>(-1 - exp);  // 14..24
    std::uint32_t q = full >> shift;
    const std::uint32_t rem = full & ((1u << shift) - 1u);
    const std::uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (q & 1u))) ++q;
    return static_cast<std::uint16_t>(sign | q);
  }

  return static_cast<std::uint16_t>(sign);  // underflow to signed zero
}

float f16_to_f32(std::uint16_t h) {
  const std::uint32_t sign = (std::uint32_t{h} & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x3ffu;
  std::uint32_t bits;
  if (exp == 0x1fu) {
    bits = sign | 0x7f800000u | (mant << 13);
  } else if (exp != 0) {
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  } else if (mant != 0) {
    // Subnormal half: normalize into a float with an implicit leading 1.
    std::uint32_t e = 113;
    while (!(mant & 0x400u)) {
      mant <<= 1;
      --e;
    }
    bits = sign | (e << 23) | ((mant & 0x3ffu) << 13);
  } else {
    bits = sign;
  }
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// ------------------------------------------------------------------ sizes

namespace {

std::size_t qint8_chunks(std::size_t n) {
  return (n + kQuantChunk - 1) / kQuantChunk;
}

void check_len(std::size_t len, std::size_t want, const char* codec) {
  if (len != want) {
    throw std::runtime_error(std::string("codec ") + codec +
                             ": payload length mismatch");
  }
}

}  // namespace

std::size_t encoded_size(CodecId codec, std::size_t n) {
  switch (codec) {
    case CodecId::kRawF32: return n * 4;
    case CodecId::kF16: return n * 2;
    case CodecId::kQInt8: return n + qint8_chunks(n) * 8;
  }
  throw std::invalid_argument("encoded_size: bad codec id");
}

// ------------------------------------------------------------------ encode

std::vector<std::uint8_t> encode_payload(CodecId codec, const float* data,
                                         std::size_t n) {
  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(codec, n));
  switch (codec) {
    case CodecId::kRawF32:
      for (std::size_t i = 0; i < n; ++i) util::put_f32_le(out, data[i]);
      return out;
    case CodecId::kF16:
      for (std::size_t i = 0; i < n; ++i) {
        util::put_u16_le(out, f32_to_f16(data[i]));
      }
      return out;
    case CodecId::kQInt8: {
      for (std::size_t i0 = 0; i0 < n; i0 += kQuantChunk) {
        const std::size_t m = std::min(kQuantChunk, n - i0);
        float lo = data[i0], hi = data[i0];
        bool finite = true;
        for (std::size_t i = i0; i < i0 + m; ++i) {
          if (!std::isfinite(data[i])) finite = false;
          lo = std::min(lo, data[i]);
          hi = std::max(hi, data[i]);
        }
        const float scale = finite ? (hi - lo) / 255.0f : 0.0f;
        if (!finite || !std::isfinite(scale)) {
          // Poisoned chunk: a NaN scale makes the whole chunk decode to
          // NaN, so non-finite corruption survives the lossy codec instead
          // of being quantized back into the finite range.
          util::put_f32_le(out, std::numeric_limits<float>::quiet_NaN());
          util::put_f32_le(out, 0.0f);
          out.insert(out.end(), m, std::uint8_t{0});
          continue;
        }
        util::put_f32_le(out, scale);
        util::put_f32_le(out, lo);
        for (std::size_t i = i0; i < i0 + m; ++i) {
          std::uint8_t q = 0;
          if (scale > 0.0f) {
            const float t = (data[i] - lo) / scale;
            const long r = std::lroundf(t);
            q = static_cast<std::uint8_t>(r < 0 ? 0 : (r > 255 ? 255 : r));
          }
          out.push_back(q);
        }
      }
      return out;
    }
  }
  throw std::invalid_argument("encode_payload: bad codec id");
}

// ------------------------------------------------------------------ decode

std::vector<float> decode_payload(CodecId codec, const std::uint8_t* data,
                                  std::size_t len, std::size_t n) {
  std::vector<float> out;
  out.reserve(n);
  switch (codec) {
    case CodecId::kRawF32:
      check_len(len, n * 4, "raw_f32");
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(util::get_f32_le(data + i * 4));
      }
      return out;
    case CodecId::kF16:
      check_len(len, n * 2, "f16");
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(f16_to_f32(util::get_u16_le(data + i * 2)));
      }
      return out;
    case CodecId::kQInt8: {
      check_len(len, encoded_size(CodecId::kQInt8, n), "qint8");
      std::size_t pos = 0;
      for (std::size_t i0 = 0; i0 < n; i0 += kQuantChunk) {
        const std::size_t m = std::min(kQuantChunk, n - i0);
        const float scale = util::get_f32_le(data + pos);
        const float lo = util::get_f32_le(data + pos + 4);
        pos += 8;
        if (!std::isfinite(scale) || !std::isfinite(lo)) {
          out.insert(out.end(), m, std::numeric_limits<float>::quiet_NaN());
          pos += m;
          continue;
        }
        for (std::size_t i = 0; i < m; ++i) {
          out.push_back(lo + scale * static_cast<float>(data[pos + i]));
        }
        pos += m;
      }
      return out;
    }
  }
  throw std::invalid_argument("decode_payload: bad codec id");
}

}  // namespace fedclust::fl::wire
