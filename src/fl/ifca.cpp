#include "fl/ifca.h"

#include <limits>

#include "fl/parallel_round.h"
#include "obs/metrics.h"

namespace fedclust::fl {

Ifca::Ifca(Federation& fed) : FlAlgorithm(fed) {}

void Ifca::setup() {
  const std::size_t k = std::max<std::size_t>(1, fed_.cfg().algo.ifca_k);
  models_.clear();
  for (std::size_t i = 0; i < k; ++i) {
    // Distinct random inits (i == 0 reuses θ0 so one arm matches the other
    // methods' start).
    models_.push_back(i == 0 ? fed_.init_params()
                             : fed_.make_model(0x1FCA00 + i).flat_params());
  }
}

std::size_t Ifca::select_cluster_from(
    const std::vector<std::vector<float>>& models, nn::Model& ws,
    const SimClient& client) {
  float best = std::numeric_limits<float>::infinity();
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < models.size(); ++k) {
    ws.set_flat_params(models[k]);
    const float loss = client.train_loss(ws);
    if (loss < best) {
      best = loss;
      best_k = k;
    }
  }
  return best_k;
}

std::size_t Ifca::select_cluster_with(nn::Model& ws,
                                      const SimClient& client) {
  return select_cluster_from(models_, ws, client);
}

std::size_t Ifca::select_cluster_for(const SimClient& client) {
  return select_cluster_with(fed_.workspace(), client);
}

std::size_t Ifca::select_cluster(std::size_t c) {
  return select_cluster_for(*fed_.client(c));
}

void Ifca::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  const std::size_t p = fed_.model_size();

  // The K cluster models are serialized once per round; every client
  // selects from (and trains on) the wire-decoded copies — bit-exact for
  // raw_f32, quantized for lossy codecs.
  std::vector<std::vector<float>> rx_models;
  rx_models.reserve(models_.size());
  for (const auto& m : models_) {
    rx_models.push_back(fed_.through_wire(wire::MessageKind::kModelPull, m,
                                          wire::kServerSender, r));
  }

  // Selection + training per client; the chosen cluster ids come back in
  // client-index order so per-cluster grouping matches the sequential run.
  std::vector<std::size_t> chosen(sampled.size());
  std::vector<std::vector<float>> locals(sampled.size());
  std::vector<double> weights(sampled.size());
  std::vector<char> delivered(sampled.size(), 1);
  ParallelRoundRunner runner(fed_);
  runner.for_each_client(sampled, [&](std::size_t idx, std::size_t c,
                                      nn::Model& ws) {
    // The client needs every cluster model to choose: K model downloads.
    fed_.bill_download(p, models_.size());
    const auto client = fed_.client(c);
    const std::size_t k = select_cluster_from(rx_models, ws, *client);
    ws.set_flat_params(rx_models[k]);
    client->train(ws, fed_.cfg().local, fed_.train_rng(c, r));
    chosen[idx] = k;
    locals[idx] = ws.flat_params();
    weights[idx] = static_cast<double>(client->n_train());
    // Upload (trained model + cluster id) runs the fault/validation
    // gauntlet; lost updates are excluded from their cluster's average.
    delivered[idx] = fed_.deliver_update(c, r, locals[idx], p) ? 1 : 0;
  });

  std::vector<std::vector<std::pair<const std::vector<float>*, double>>>
      per_cluster(models_.size());
  std::vector<std::size_t> chose_cluster(models_.size(), 0);
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    ++chose_cluster[chosen[i]];
    if (delivered[i]) {
      per_cluster[chosen[i]].emplace_back(&locals[i], weights[i]);
    }
  }
  for (std::size_t k = 0; k < models_.size(); ++k) {
    if (per_cluster[k].empty()) {
      // Carried forward unchanged; clients that selected this arm keep
      // using its last model. Count only fault-induced hollowing.
      if (chose_cluster[k] > 0) {
        OBS_COUNTER_ADD("fault.empty_cluster_rounds", 1);
      }
      continue;
    }
    models_[k] = weighted_average(per_cluster[k]);
  }
}

double Ifca::evaluate_all() {
  // Each client evaluates with the cluster model it would select.
  const auto ids = fed_.eval_ids();
  std::vector<double> accs(ids.size());
  ParallelRoundRunner runner(fed_);
  runner.for_each_index(ids.size(), [&](std::size_t idx, nn::Model& ws) {
    const auto client = fed_.client(ids[idx]);
    const std::size_t k = select_cluster_with(ws, *client);
    ws.set_flat_params(models_[k]);
    accs[idx] = client->evaluate(ws);
  });
  double sum = 0.0;
  for (const double a : accs) sum += a;
  return sum / static_cast<double>(accs.size());
}

void Ifca::save_state(util::BinaryWriter& w) const {
  write_nested_f32(w, models_);
}

void Ifca::load_state(util::BinaryReader& r) {
  models_ = read_nested_f32(r);
}

}  // namespace fedclust::fl
