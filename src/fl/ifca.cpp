#include "fl/ifca.h"

#include <limits>

namespace fedclust::fl {

Ifca::Ifca(Federation& fed) : FlAlgorithm(fed) {}

void Ifca::setup() {
  const std::size_t k = std::max<std::size_t>(1, fed_.cfg().algo.ifca_k);
  models_.clear();
  for (std::size_t i = 0; i < k; ++i) {
    // Distinct random inits (i == 0 reuses θ0 so one arm matches the other
    // methods' start).
    models_.push_back(i == 0 ? fed_.init_params()
                             : fed_.make_model(0x1FCA00 + i).flat_params());
  }
}

std::size_t Ifca::select_cluster_for(const SimClient& client) {
  nn::Model& ws = fed_.workspace();
  float best = std::numeric_limits<float>::infinity();
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < models_.size(); ++k) {
    ws.set_flat_params(models_[k]);
    const float loss = client.train_loss(ws);
    if (loss < best) {
      best = loss;
      best_k = k;
    }
  }
  return best_k;
}

std::size_t Ifca::select_cluster(std::size_t c) {
  return select_cluster_for(fed_.client(c));
}

void Ifca::round(std::size_t r) {
  const auto sampled = fed_.sample_round(r);
  nn::Model& ws = fed_.workspace();
  const std::size_t p = fed_.model_size();

  std::vector<std::vector<std::vector<float>>> updates(models_.size());
  std::vector<std::vector<double>> weights(models_.size());

  for (const std::size_t c : sampled) {
    // The client needs every cluster model to choose: K model downloads.
    fed_.comm().download_floats(p * models_.size());
    const std::size_t k = select_cluster(c);
    ws.set_flat_params(models_[k]);
    fed_.client(c).train(ws, fed_.cfg().local, fed_.train_rng(c, r));
    fed_.comm().upload_floats(p);  // trained model + cluster id
    updates[k].push_back(ws.flat_params());
    weights[k].push_back(static_cast<double>(fed_.client(c).n_train()));
  }

  for (std::size_t k = 0; k < models_.size(); ++k) {
    if (updates[k].empty()) continue;
    std::vector<std::pair<const std::vector<float>*, double>> entries;
    for (std::size_t i = 0; i < updates[k].size(); ++i) {
      entries.emplace_back(&updates[k][i], weights[k][i]);
    }
    models_[k] = weighted_average(entries);
  }
}

double Ifca::evaluate_all() {
  // Each client evaluates with the cluster model it would select.
  nn::Model& ws = fed_.workspace();
  double sum = 0.0;
  for (std::size_t c = 0; c < fed_.n_clients(); ++c) {
    ws.set_flat_params(models_[select_cluster(c)]);
    sum += fed_.client(c).evaluate(ws);
  }
  return sum / static_cast<double>(fed_.n_clients());
}

}  // namespace fedclust::fl
