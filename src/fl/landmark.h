#pragma once

// Landmark-sketch clustering — the million-client companion to the exact
// one-shot FedClust/PACFL setup.
//
// The exact setup materializes one feature per client (warmup classifier
// weights for FedClust, a subspace basis for PACFL) and builds the full
// O(N²) proximity matrix before running the dendrogram; at population
// scale the dendrogram — not the data — is the binding constraint. The
// sketch instead:
//
//   1. deterministically samples L landmark clients from a dedicated
//      salted RNG stream (pure in the root seed; mirrored by a snapshot
//      RNG probe so resumed binaries cannot silently drift),
//   2. runs the expensive feature computation, the L×L proximity matrix,
//      and the hierarchical dendrogram only on the landmarks,
//   3. streams the remaining N−L clients through nearest-landmark
//      assignment in O(N·L): features for non-landmarks are computed,
//      assigned, and freed per cache-sized batch, never all resident.
//
// Every step is a pure function of (seed, client), so results are
// bit-identical across thread counts and batch sizes; ties in the
// nearest-landmark search break to the lowest landmark index.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <vector>

#include "clustering/distance.h"
#include "clustering/hierarchical.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fedclust::fl {

// Stream salt for landmark-id sampling. Mirrored in snapshot.cpp's
// rng_probes_for so a resumed binary whose split lands elsewhere is
// rejected instead of silently re-clustering differently.
inline constexpr std::uint64_t kLandmarkStream = 0x1A7DB4A2C5EEDULL;

// The landmark count actually in effect: 0 when `landmarks` is 0 or covers
// the whole population (both mean "exact clustering").
std::size_t effective_landmarks(std::size_t n_clients, std::size_t landmarks);

// min(L, n) distinct landmark ids drawn from the kLandmarkStream split of
// the root seed, sorted ascending. Pure in (seed, n_clients, landmarks).
std::vector<std::size_t> sample_landmarks(std::uint64_t seed,
                                          std::size_t n_clients,
                                          std::size_t landmarks);

// Ascending non-landmark ids chunked into batches of at most batch_size —
// the bounded-memory unit of the streaming assignment pass. batch_size 0
// falls back to one batch per client.
std::vector<std::vector<std::size_t>> landmark_assign_batches(
    std::size_t n_clients, const std::vector<std::size_t>& landmark_ids,
    std::size_t batch_size);

// How the L×L dendrogram is cut — the same knobs the exact paths use.
struct LandmarkCutPolicy {
  clustering::Linkage linkage = clustering::Linkage::kAverage;
  std::size_t k = 0;        // > 0: cut to exactly k clusters
  float threshold = -1.0f;  // k == 0: cut threshold; < 0 = largest gap
};

struct LandmarkResult {
  std::vector<std::size_t> landmark_ids;  // sorted ascending, size L
  tensor::Tensor proximity;               // (L, L) landmark proximity
  std::vector<std::size_t> assignment;    // client -> cluster, size N
  std::size_t n_clusters = 0;
  // Threshold actually used on the landmark dendrogram (-1 for fixed k).
  float effective_lambda = 0.0f;
};

// Index of the nearest landmark feature under `dist`, ties broken to the
// lowest index (strict < keeps the first minimum). Exposed for tests.
template <typename Feature, typename Dist>
std::size_t nearest_landmark(const Feature& f,
                             const std::vector<Feature>& landmark_features,
                             const Dist& dist) {
  float best = std::numeric_limits<float>::infinity();
  std::size_t best_j = 0;
  for (std::size_t j = 0; j < landmark_features.size(); ++j) {
    const float d = dist(f, landmark_features[j]);
    if (d < best) {
      best = d;
      best_j = j;
    }
  }
  return best_j;
}

// The sketch itself, generic over the per-client feature (FedClust:
// flat classifier weights; PACFL: a subspace basis tensor).
//
//   features(ids) -> one feature per id, in id order. Must be pure per id
//     (the same id yields the same feature under any batching), which is
//     what makes the result independent of batch_size and thread count.
//   distance(a, b) -> the proximity the exact path uses for its matrix.
template <typename Feature>
class LandmarkCluster {
 public:
  using FeatureBatchFn =
      std::function<std::vector<Feature>(const std::vector<std::size_t>&)>;
  using DistanceFn = std::function<float(const Feature&, const Feature&)>;

  LandmarkCluster(std::size_t n_clients,
                  std::vector<std::size_t> landmark_ids,
                  std::size_t batch_size, FeatureBatchFn features,
                  DistanceFn distance)
      : n_clients_(n_clients),
        landmark_ids_(std::move(landmark_ids)),
        batch_size_(batch_size),
        features_(std::move(features)),
        distance_(std::move(distance)) {
    if (landmark_ids_.empty() || landmark_ids_.size() >= n_clients_) {
      throw std::invalid_argument(
          "LandmarkCluster: need 0 < L < n_clients landmarks");
    }
  }

  // Landmark features stay resident for the whole run (L of them — the
  // sketch's memory budget); valid after run().
  const std::vector<Feature>& landmark_features() const {
    return landmark_features_;
  }

  LandmarkResult run(const LandmarkCutPolicy& cut) {
    LandmarkResult out;
    out.landmark_ids = landmark_ids_;
    const std::size_t L = landmark_ids_.size();

    // 1. Landmark features + L×L proximity + dendrogram cut. The feature
    // callback owns the expensive per-client work (and its parallelism).
    {
      OBS_SPAN("landmark.warmup");
      landmark_features_ = features_(landmark_ids_);
    }
    OBS_SPAN("landmark.cluster");
    out.proximity = clustering::distance_matrix(
        L, [&](std::size_t i, std::size_t j) {
          return distance_(landmark_features_[i], landmark_features_[j]);
        });
    const auto dendro = clustering::agglomerative(out.proximity, cut.linkage);
    std::vector<std::size_t> landmark_labels;
    if (cut.k > 0) {
      landmark_labels = clustering::cut_to_k(dendro, cut.k);
      out.effective_lambda = -1.0f;
    } else {
      float lambda = cut.threshold;
      if (lambda < 0.0f) lambda = clustering::gap_threshold(dendro);
      out.effective_lambda = lambda;
      landmark_labels = clustering::cut_by_threshold(dendro, lambda);
    }
    out.n_clusters = clustering::num_clusters(landmark_labels);

    out.assignment.assign(n_clients_, 0);
    for (std::size_t i = 0; i < L; ++i) {
      out.assignment[landmark_ids_[i]] = landmark_labels[i];
    }

    // 2. Stream the rest: per batch, compute features, assign each client
    // to its nearest landmark's cluster, free the batch. Assignment slots
    // are indexed, so the parallel fan-out is order-independent.
    const auto batches =
        landmark_assign_batches(n_clients_, landmark_ids_, batch_size_);
    std::size_t assigned = 0;
    for (const auto& batch : batches) {
      OBS_SPAN("landmark.assign_batch");
      const std::vector<Feature> feats = features_(batch);
      util::parallel_for(0, batch.size(), [&](std::size_t i) {
        const std::size_t j =
            nearest_landmark(feats[i], landmark_features_, distance_);
        out.assignment[batch[i]] = landmark_labels[j];
      });
      assigned += batch.size();
    }

    OBS_COUNTER_ADD("cluster.landmark.count", L);
    OBS_COUNTER_ADD("cluster.landmark.clusters", out.n_clusters);
    OBS_COUNTER_ADD("cluster.landmark.batches", batches.size());
    OBS_COUNTER_ADD("cluster.landmark.assigned", assigned);
    return out;
  }

 private:
  std::size_t n_clients_;
  std::vector<std::size_t> landmark_ids_;
  std::size_t batch_size_;
  FeatureBatchFn features_;
  DistanceFn distance_;
  std::vector<Feature> landmark_features_;
};

// Shared load_state validation for the landmark-id snapshot section:
// strictly increasing ids below n_clients, count below n_clients (empty =
// exact mode). Throws std::runtime_error naming `what` on violation.
void validate_landmark_ids(const std::vector<std::size_t>& ids,
                           std::size_t n_clients, const char* what);

}  // namespace fedclust::fl
