#pragma once

// Pluggable payload codecs for the wire layer. A codec turns a flat float
// vector into bytes and back; encode/decode are pure deterministic functions
// of the payload (no RNG, no global state), so a lossy codec still preserves
// thread-count invariance — every thread schedule sees the same decoded
// floats.
//
//   raw_f32  4 bytes/value, byte-exact round trip (including NaN payload
//            bits). The default: all determinism / invariance guarantees
//            hold bit-identically.
//   f16      2 bytes/value, IEEE 754 binary16 with round-to-nearest-even.
//            Values above 65504 in magnitude overflow to +/-inf (the update
//            validator quarantines them downstream).
//   qint8    per-chunk affine quantization: the payload is split into
//            256-value chunks; each chunk stores f32 scale + f32 min + one
//            byte per value (q = round((v - min) / scale)). A chunk holding
//            any non-finite value encodes scale = NaN and decodes to
//            all-NaN, so corrupted updates cannot silently re-enter the
//            finite range. ~3.88x smaller than raw_f32.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fedclust::fl::wire {

enum class CodecId : std::uint8_t {
  kRawF32 = 0,
  kF16 = 1,
  kQInt8 = 2,
};

inline constexpr std::size_t kNumCodecs = 3;

// Values per quantization chunk for qint8 (each chunk carries an 8-byte
// f32 scale + f32 min prefix).
inline constexpr std::size_t kQuantChunk = 256;

// Stable lowercase name ("raw_f32", "f16", "qint8"); returned pointer is a
// string literal.
const char* codec_name(CodecId id);

// Parses a codec name; throws std::invalid_argument naming the input on
// unknown codecs.
CodecId codec_from_string(const std::string& name);

bool codec_id_valid(std::uint8_t raw);

// Exact encoded byte count for `n` floats — a pure function of (codec, n),
// always equal to encode_payload(...).size() (asserted in wire_test).
std::size_t encoded_size(CodecId codec, std::size_t n);

// Encodes `n` floats into the codec's byte representation (no envelope
// header — see wire.h for framing).
std::vector<std::uint8_t> encode_payload(CodecId codec, const float* data,
                                         std::size_t n);

// Decodes a payload previously produced by encode_payload. `n` is the
// element count from the envelope header; throws std::runtime_error when
// `len` is inconsistent with (codec, n) or the bytes are malformed.
std::vector<float> decode_payload(CodecId codec, const std::uint8_t* data,
                                  std::size_t len, std::size_t n);

// IEEE 754 binary16 conversions (round-to-nearest-even); exposed for tests.
std::uint16_t f32_to_f16(float v);
float f16_to_f32(std::uint16_t h);

// Weighted average of qint8-encoded payloads computed in the quantized
// domain: per-value contributions w*scale*q accumulate as int64 fixed-point
// sums (24 fractional bits) via the dispatched int8 kernels, so the encoded
// bytes never have to be expanded to per-client float vectors. Entries are
// (payload bytes, normalized weight) pairs; every payload must be exactly
// encoded_size(kQInt8, n) bytes (throws otherwise). Chunks poisoned by any
// client decode to NaN, matching decode_payload + float averaging. This is
// an approximation of averaging the decoded floats (fixed-point multiplier
// error <= 2^-25 per q step); it only runs under --fast-math-kernels.
std::vector<float> qint8_weighted_average(
    const std::vector<std::pair<const std::vector<std::uint8_t>*, double>>&
        entries,
    std::size_t n);

}  // namespace fedclust::fl::wire
