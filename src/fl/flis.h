#pragma once

// FLIS (Morafah et al., 2023) — extension baseline, cited as [29]. The
// FedClust paper criticizes FLIS for assuming the server holds globally
// shared proxy data; implementing it makes that trade-off measurable.
//
// One-shot variant: every client briefly trains θ0 on its own data (as in
// FedClust round 0) but, instead of uploading weights, runs inference on
// the server's proxy set and is clustered by the similarity of its
// prediction profiles (HC on 1 - cosine of the concatenated softmax
// outputs). Training then proceeds per cluster. Uploading per-proxy-sample
// predictions costs proxy_size * num_classes floats per client.

#include "fl/algorithm.h"
#include "data/dataset.h"

namespace fedclust::fl {

class Flis : public FlAlgorithm {
 public:
  // proxy_per_class: server-side proxy samples synthesized per class
  // (IID, from the same generator — the "globally shared data" assumption).
  explicit Flis(Federation& fed, std::size_t proxy_per_class = 4,
                std::size_t k = 0);

  std::string name() const override { return "FLIS"; }

  const std::vector<std::size_t>& assignment() const { return assignment_; }

  void save_state(util::BinaryWriter& w) const override;
  void load_state(util::BinaryReader& r) override;

 protected:
  void setup() override;
  void round(std::size_t r) override;
  double evaluate_all() override;
  std::size_t current_clusters() const override {
    return cluster_models_.size();
  }

 private:
  std::size_t proxy_per_class_;
  std::size_t k_;  // 0 = largest-gap threshold
  std::vector<std::size_t> assignment_;
  std::vector<std::vector<float>> cluster_models_;
};

}  // namespace fedclust::fl
