#pragma once

// FedNova (Wang et al., 2020): normalized averaging that removes the
// objective inconsistency caused by clients taking different numbers of
// local steps. Each client i reports its normalized update direction
// d_i = (w_global - w_i) / tau_i; the server applies
//   w_global -= tau_eff * sum_i p_i d_i,   tau_eff = sum_i p_i tau_i,
// with p_i the data-size weights.

#include "fl/algorithm.h"

namespace fedclust::fl {

class FedNova : public FlAlgorithm {
 public:
  explicit FedNova(Federation& fed);

  std::string name() const override { return "FedNova"; }

  const std::vector<float>& global_params() const { return global_; }

  void save_state(util::BinaryWriter& w) const override;
  void load_state(util::BinaryReader& r) override;

 protected:
  void setup() override;
  void round(std::size_t r) override;
  double evaluate_all() override;

 private:
  std::vector<float> global_;
};

}  // namespace fedclust::fl
