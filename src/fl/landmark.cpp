#include "fl/landmark.h"

#include <string>

#include "util/rng.h"

namespace fedclust::fl {

std::size_t effective_landmarks(std::size_t n_clients,
                                std::size_t landmarks) {
  return (landmarks == 0 || landmarks >= n_clients) ? 0 : landmarks;
}

std::vector<std::size_t> sample_landmarks(std::uint64_t seed,
                                          std::size_t n_clients,
                                          std::size_t landmarks) {
  const std::size_t L = std::min(landmarks, n_clients);
  auto ids = util::Rng(seed).split(kLandmarkStream)
                 .sample_without_replacement(n_clients, L);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<std::vector<std::size_t>> landmark_assign_batches(
    std::size_t n_clients, const std::vector<std::size_t>& landmark_ids,
    std::size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  std::vector<std::vector<std::size_t>> batches;
  std::vector<std::size_t> current;
  current.reserve(batch_size);
  // landmark_ids is sorted ascending, so one cursor marks membership.
  std::size_t cursor = 0;
  for (std::size_t c = 0; c < n_clients; ++c) {
    if (cursor < landmark_ids.size() && landmark_ids[cursor] == c) {
      ++cursor;
      continue;
    }
    current.push_back(c);
    if (current.size() == batch_size) {
      batches.push_back(std::move(current));
      current = {};
      current.reserve(batch_size);
    }
  }
  if (!current.empty()) batches.push_back(std::move(current));
  return batches;
}

void validate_landmark_ids(const std::vector<std::size_t>& ids,
                           std::size_t n_clients, const char* what) {
  if (ids.empty()) return;  // exact mode
  if (ids.size() >= n_clients) {
    throw std::runtime_error(std::string(what) +
                             ": corrupt landmark ids (count >= population)");
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= n_clients || (i > 0 && ids[i] <= ids[i - 1])) {
      throw std::runtime_error(
          std::string(what) +
          ": corrupt landmark ids (out of range or unsorted)");
    }
  }
}

}  // namespace fedclust::fl
