#pragma once

// Transport: where a round's local-training computation runs.
//
// The in-process simulator and the socket-backed multi-process runner share
// one seam. ParallelRoundRunner::train_clients asks the federation for its
// transport; when none is installed (or it reports remote() == false) the
// unchanged in-process path executes. When a remote transport is installed,
// the runner splits the canonical client step into three phases:
//
//   1. (server) build a TrainCall per sampled client — pull_model billing,
//      kDownload journal rows, the exact start floats the client trains
//      from, the pre-split (client, round) RNG stream, and the local
//      options. Everything stochastic is resolved here, on the server.
//   2. (transport) Transport::execute ships the calls to worker processes
//      and collects TrainOutcomes. The shipped floats travel in raw_f32
//      envelopes regardless of the experiment codec: the experiment codec
//      is a *simulated* property applied server-side by pull_model /
//      deliver_update, so the physical transport must not re-quantize.
//   3. (server) outcomes feed Federation::deliver_update exactly like
//      locally trained parameters — fault injection, retries, corruption,
//      validation, and billing are all server-side and byte-identical to
//      the in-process path.
//
// Because a TrainCall carries every input of SimClient::train and workers
// rebuild the identical client population from the shared config (synthetic
// data is pure in (seed, client)), a deterministic-mode socket campaign is
// bit-identical to the in-process run by construction — which worker
// computes a call, in what order, after how many retries, cannot matter.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fl/client.h"
#include "util/rng.h"

namespace fedclust::fl {

// One delegated local-training computation. All vectors are exact float
// images (no codec applied); prox_ref/grad_offset are present only when the
// algorithm supplied them.
struct TrainCall {
  std::size_t client = 0;
  std::size_t round = 0;
  LocalTrainOptions opts;
  util::RngState rng;
  std::vector<float> start;
  std::optional<std::vector<float>> prox_ref;
  std::optional<std::vector<float>> grad_offset;
};

// The result of one TrainCall. ok == false means the transport lost the
// computation (worker crashed and the retry budget ran out): the caller
// must treat it as a lost update — never substitute stale parameters.
struct TrainOutcome {
  bool ok = false;
  std::vector<float> params;
  float loss = 0.0f;
  std::uint64_t train_us = 0;   // worker-measured wall time (telemetry only)
  std::uint32_t attempts = 1;   // delivery attempts the transport spent
};

// Executes batches of TrainCalls. Implementations: the in-process path is
// the *absence* of a transport (Federation::transport() == nullptr or
// remote() == false); net::ServerTransport is the socket implementation.
class Transport {
 public:
  virtual ~Transport() = default;

  // False keeps train_clients on the unchanged in-process path (useful for
  // a loopback/testing transport that wants the hooks without the split).
  virtual bool remote() const = 0;

  virtual std::string name() const = 0;

  // Resolves every call; outcomes.size() == calls.size() on return and
  // outcomes[i] answers calls[i]. Called from the algorithm thread; may
  // block. Must not throw for per-call failures (report ok = false); may
  // throw only for unrecoverable transport breakage.
  virtual void execute(const std::vector<TrainCall>& calls,
                       std::vector<TrainOutcome>& outcomes) = 0;
};

}  // namespace fedclust::fl
