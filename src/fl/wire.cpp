#include "fl/wire.h"

#include <stdexcept>

#include "util/serialization.h"

namespace fedclust::fl::wire {

const char* message_kind_name(MessageKind kind) {
  switch (kind) {
    case MessageKind::kModelPull: return "model_pull";
    case MessageKind::kUpdatePush: return "update_push";
    case MessageKind::kClusterAssign: return "cluster_assign";
    case MessageKind::kWarmupWeights: return "warmup_weights";
    case MessageKind::kSubspace: return "subspace";
  }
  return "unknown";
}

const char* decode_status_name(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kBadMagic: return "bad_magic";
    case DecodeStatus::kBadVersion: return "bad_version";
    case DecodeStatus::kBadKind: return "bad_kind";
    case DecodeStatus::kBadCodec: return "bad_codec";
    case DecodeStatus::kLengthMismatch: return "length_mismatch";
    case DecodeStatus::kBadChecksum: return "bad_checksum";
    case DecodeStatus::kBadPayload: return "bad_payload";
  }
  return "unknown";
}

std::size_t wire_size(CodecId codec, std::size_t n) {
  return kHeaderSize + encoded_size(codec, n);
}

std::vector<std::uint8_t> encode(MessageKind kind, CodecId codec,
                                 std::uint64_t sender, std::uint64_t round,
                                 const float* payload, std::size_t n) {
  std::vector<std::uint8_t> encoded = encode_payload(codec, payload, n);

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + encoded.size());
  util::put_u32_le(out, kMagic);
  util::put_u16_le(out, kVersion);
  out.push_back(static_cast<std::uint8_t>(kind));
  out.push_back(static_cast<std::uint8_t>(codec));
  util::put_u64_le(out, sender);
  util::put_u64_le(out, round);
  util::put_u64_le(out, n);
  util::put_u64_le(out, encoded.size());

  // CRC over the 40 header bytes written so far, then the payload.
  std::uint32_t crc = util::crc32c_extend(0, out.data(), out.size());
  crc = util::crc32c_extend(crc, encoded.data(), encoded.size());
  util::put_u32_le(out, crc);

  out.insert(out.end(), encoded.begin(), encoded.end());
  return out;
}

DecodeStatus try_decode(const std::uint8_t* data, std::size_t len,
                        Envelope& out) {
  if (len < kHeaderSize) return DecodeStatus::kTruncated;
  if (util::get_u32_le(data) != kMagic) return DecodeStatus::kBadMagic;
  if (util::get_u16_le(data + 4) != kVersion) return DecodeStatus::kBadVersion;
  const std::uint8_t kind = data[6];
  if (kind >= kNumMessageKinds) return DecodeStatus::kBadKind;
  const std::uint8_t codec = data[7];
  if (!codec_id_valid(codec)) return DecodeStatus::kBadCodec;
  const std::uint64_t sender = util::get_u64_le(data + 8);
  const std::uint64_t round = util::get_u64_le(data + 16);
  const std::uint64_t count = util::get_u64_le(data + 24);
  const std::uint64_t payload_len = util::get_u64_le(data + 32);
  if (payload_len != len - kHeaderSize) {
    return payload_len > len - kHeaderSize ? DecodeStatus::kTruncated
                                           : DecodeStatus::kLengthMismatch;
  }
  // Checksum before any payload parsing: corrupt bytes never reach a codec.
  std::uint32_t crc = util::crc32c_extend(0, data, 40);
  crc = util::crc32c_extend(crc, data + kHeaderSize, payload_len);
  if (crc != util::get_u32_le(data + 40)) return DecodeStatus::kBadChecksum;

  out.kind = static_cast<MessageKind>(kind);
  out.codec = static_cast<CodecId>(codec);
  out.sender = sender;
  out.round = round;
  try {
    out.payload = decode_payload(out.codec, data + kHeaderSize,
                                 static_cast<std::size_t>(payload_len),
                                 static_cast<std::size_t>(count));
  } catch (const std::exception&) {
    return DecodeStatus::kBadPayload;
  }
  return DecodeStatus::kOk;
}

Envelope decode(const std::vector<std::uint8_t>& bytes) {
  Envelope env;
  const DecodeStatus status = try_decode(bytes.data(), bytes.size(), env);
  if (status != DecodeStatus::kOk) {
    throw std::runtime_error(std::string("wire::decode: ") +
                             decode_status_name(status));
  }
  return env;
}

}  // namespace fedclust::fl::wire
