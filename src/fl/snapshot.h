#pragma once

// Versioned, checksummed run snapshots — the deterministic checkpoint/resume
// layer (docs/INVARIANTS.md "Snapshot").
//
// A RunSnapshot captures the complete mutable state of a simulation at a
// round boundary: the next round index, the algorithm's serialized state
// (via FlAlgorithm::save_state), the CommTracker ledgers, the accumulated
// trace records, the obs counter values, and a set of named RNG stream
// probes. Because every stochastic component of the simulator is a pure
// function of (seed, client, round) — sampling, training streams, fault
// decisions — no in-flight RNG state needs to survive a restart: the probes
// exist only to detect drift (a changed RNG algorithm or stream layout)
// between the writer and the reader, not to restore generator positions.
//
// File format (all little-endian; see docs/WIRE_FORMAT.md for the shared
// primitives):
//
//   offset  size  field
//   0       4     magic 0xFEDC5A42
//   4       2     version (currently 1)
//   6       2     reserved (0)
//   8       8     body length in bytes
//   16      4     CRC32C over the body bytes
//   20      ...   body (BinaryWriter stream, field order in snapshot.cpp)
//
// The CRC is verified before a single body byte is parsed, so a truncated
// or bit-flipped snapshot is rejected before any value can reach a model
// (the same quarantine discipline as wire envelopes). Writes go through a
// temp file + rename so a crash mid-write never leaves a half snapshot
// under the final name.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fl/comm.h"
#include "fl/federation.h"
#include "fl/metrics.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/serialization.h"

namespace fedclust::fl {

inline constexpr std::uint32_t kSnapshotMagic = 0xFEDC5A42u;
inline constexpr std::uint16_t kSnapshotVersion = 1;
// magic + version + reserved + body length + body CRC32C.
inline constexpr std::size_t kSnapshotHeaderBytes = 4 + 2 + 2 + 8 + 4;

// Thrown for every rejected snapshot: bad magic/version, truncation, CRC
// mismatch, or a resume attempted against a different configuration.
struct SnapshotError : std::runtime_error {
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

// A named RNG stream state. Snapshots store a fixed set of derived streams
// (root, round-0 sampler, client-0 training stream); on resume they are
// recomputed from the config and must match bit for bit, which catches any
// change to the RNG algorithm or the stream-split constants.
struct RngProbe {
  std::string name;
  util::RngState state;

  bool operator==(const RngProbe&) const = default;
};

struct RunSnapshot {
  std::uint64_t config_fingerprint = 0;
  std::uint64_t seed = 0;
  // First round the resumed run executes (the snapshot was written after
  // round next_round - 1 completed, including its evaluation).
  std::uint64_t next_round = 0;
  std::string method;
  std::string dataset;
  CommLedger comm;
  std::vector<RoundRecord> records;
  // obs::MetricsRegistry counter values at capture time (empty when metrics
  // were disabled). Restored on resume so fault.* and comm.* counters
  // continue cumulatively.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<RngProbe> rng_probes;
  // Opaque algorithm state produced by FlAlgorithm::save_state.
  std::vector<std::uint8_t> algo_state;
};

// Canonical 64-bit fingerprint over every ExperimentConfig field that
// affects the simulation trajectory. Two configs with equal fingerprints
// produce identical runs; resume refuses a snapshot whose fingerprint
// differs from the live config's.
std::uint64_t config_fingerprint(const ExperimentConfig& cfg);

// The fixed probe set for a config (pure in cfg.seed).
std::vector<RngProbe> rng_probes_for(const ExperimentConfig& cfg);

// Full file image (header + body) / its inverse. parse_snapshot throws
// SnapshotError on any malformed input and touches no global state.
std::vector<std::uint8_t> serialize_snapshot(const RunSnapshot& snap);
RunSnapshot parse_snapshot(const std::vector<std::uint8_t>& bytes);

// File I/O. write_snapshot writes `path` atomically (temp file + rename);
// load_snapshot throws SnapshotError when the file is missing, unreadable,
// or fails parse_snapshot's checks.
void write_snapshot(const RunSnapshot& snap, const std::string& path);
RunSnapshot load_snapshot(const std::string& path);

// "snapshot-000012.fcsnap" for next_round = 12 — zero-padded so shell
// globs sort by round.
std::string snapshot_filename(std::uint64_t next_round);

// When and where FlAlgorithm::run writes snapshots. A snapshot lands at
// boundary b (after round b-1 and its eval) when b is a multiple of
// `every`, or when b == halt_after. halt_after > 0 additionally stops the
// round loop at that boundary — the deterministic stand-in for killing the
// process, used by the kill-and-resume smoke test.
struct CheckpointPolicy {
  std::string dir;            // empty = never write snapshots
  std::size_t every = 0;      // 0 = only the halt_after boundary (if any)
  std::size_t halt_after = 0; // 0 = run to completion
};

// ---- run manifest ---------------------------------------------------
// Written once at run start, before the first round executes, into the
// checkpoint directory: the full ExperimentConfig, seed, codec, fault
// spec, build provenance (git describe + flags), and FEDCLUST_THREADS —
// everything needed to reconstruct the command that produced the
// snapshots next to it.

// `git describe --tags --always --dirty` of the checkout that built this
// binary, or "unknown" when the build ran outside a git checkout. Baked
// into snapshot.cpp only (see src/fl/CMakeLists.txt), so other TUs don't
// recompile when the commit changes.
std::string build_git_describe();

std::string manifest_json(const ExperimentConfig& cfg,
                          const std::string& method);
void write_manifest(const ExperimentConfig& cfg, const std::string& method,
                    const std::string& dir);

// ---- shared helpers for algorithm save_state/load_state -------------

void write_nested_f32(util::BinaryWriter& w,
                      const std::vector<std::vector<float>>& v);
std::vector<std::vector<float>> read_nested_f32(util::BinaryReader& r);

void write_index_vec(util::BinaryWriter& w, const std::vector<std::size_t>& v);
std::vector<std::size_t> read_index_vec(util::BinaryReader& r);

void write_tensor(util::BinaryWriter& w, const tensor::Tensor& t);
tensor::Tensor read_tensor(util::BinaryReader& r);

}  // namespace fedclust::fl
