#pragma once

// Federation: the shared simulation substrate every algorithm runs on —
// the client population, the common initial model θ0, deterministic RNG
// streams, client sampling, communication accounting, and evaluation
// helpers.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/partition.h"
#include "fl/client.h"
#include "fl/client_store.h"
#include "fl/comm.h"
#include "fl/fault.h"
#include "fl/wire.h"
#include "nn/model_zoo.h"

namespace fedclust::fl {

class Transport;  // fl/transport.h — where local training executes

// Per-algorithm hyperparameters (paper §5.1 "Hyperparameters Settings",
// re-tuned where the reduced scale demands it; see EXPERIMENTS.md).
struct AlgoOptions {
  float prox_mu = 0.01f;  // FedProx

  // LG-FedAvg: how many trailing Parameter tensors are globally shared
  // (4 = weight+bias of the last two Linear layers, the paper's "2 global
  // layers").
  std::size_t lg_global_params = 4;

  // Per-FedAvg (first-order MAML).
  float perfedavg_alpha = 0.03f;
  float perfedavg_beta = 0.03f;
  std::size_t perfedavg_eval_epochs = 1;

  // CFL (Sattler): split when mean-update norm < eps1 while the max client
  // update norm > eps2 (norms relative to the cluster-model norm).
  float cfl_eps1 = 0.4f;
  float cfl_eps2 = 0.6f;

  std::size_t ifca_k = 4;

  // PACFL: p principal vectors per class; HC threshold on the summed
  // principal angle (degrees, < 0 = data-driven largest gap); pacfl_k > 0
  // bypasses the threshold and cuts to exactly k clusters.
  std::size_t pacfl_p = 3;
  float pacfl_threshold_deg = 10.0f;
  std::size_t pacfl_k = 0;

  // FedClust: clustering threshold λ (Algorithm 1) on the L2 distance
  // between final-layer weights, linkage for HC, and how long clients train
  // before uploading their partial weights in round 0. λ < 0 selects the
  // data-driven largest-gap threshold. fedclust_k > 0 bypasses λ entirely
  // and cuts the dendrogram to exactly k clusters (used by sweeps and by
  // IFCA-style fixed-k comparisons).
  float fedclust_lambda = 1.0f;
  std::size_t fedclust_k = 0;
  std::string fedclust_linkage = "average";
  // Proximity metric over the partial weights: "l2" (Eq. 3 of the paper)
  // or "cosine" (1 - cosine similarity) for the metric ablation.
  std::string fedclust_distance = "l2";
  std::size_t fedclust_init_epochs = 1;
  // Learning rate for the round-0 warmup (0 = reuse local.lr). A slightly
  // hotter warmup amplifies the label-ownership signal in the classifier
  // weights relative to sampling noise.
  float fedclust_init_lr = 0.0f;
};

struct ExperimentConfig {
  data::SyntheticSpec data_spec;
  data::FederatedConfig fed;
  nn::ModelSpec model;
  LocalTrainOptions local;
  AlgoOptions algo;

  std::size_t rounds = 40;
  double sample_fraction = 0.1;  // R in Algorithm 1
  std::size_t eval_every = 1;    // evaluate-all cadence (rounds)
  // DEPRECATED (unreliable-communication knob, paper §4.2): folded into
  // fault.pre_round_dropout at Federation construction when the fault plan
  // does not set its own value. Note the semantics it keeps: a pre-round
  // dropout never trains (no compute, no comm), unlike
  // fault.post_train_crash, which spends the compute and loses the update —
  // the cost profile the paper's "quit after upload" reading implies.
  double dropout_prob = 0.0;
  // Fault-injection schedule + server resilience policy (see fl/fault.h).
  FaultPlan fault;
  // Payload codec every transfer is serialized with (see fl/codec.h). The
  // raw_f32 default round-trips byte-exactly, so all determinism and comm
  // totals match the pre-wire-layer behavior bit for bit; f16/qint8 are
  // opt-in lossy compressors.
  wire::CodecId codec = wire::CodecId::kRawF32;
  std::uint64_t seed = 1;

  // Virtual client population: clients are regenerated on demand as a pure
  // function of (seed, client id) behind an LRU cache of `client_cache`
  // materialized clients (0 = default capacity), instead of being built up
  // front. A memory/CPU dial only — trajectories are bit-identical to the
  // materialized path — so both knobs are excluded from config_fingerprint,
  // like FEDCLUST_THREADS.
  bool virtual_clients = false;
  std::size_t client_cache = 0;
  // Evaluation-sweep subsample: evaluate_all sweeps this many clients
  // (deterministically drawn from the seed, fixed for the whole run) instead
  // of the full population; 0 = every client. Changes recorded accuracies,
  // so it IS part of config_fingerprint.
  std::size_t eval_clients = 0;
  // Landmark-sketch clustering (FedClust/PACFL setup): cluster only this
  // many deterministically sampled landmark clients on the full dendrogram,
  // then stream everyone else through nearest-landmark assignment in
  // O(N·L) with bounded memory (fl/landmark.h). 0 (or >= n_clients) keeps
  // the exact O(N²) path. Changes the partition — and therefore the whole
  // trajectory — so a non-zero value IS part of config_fingerprint.
  std::size_t landmarks = 0;
};

class Federation {
 public:
  // Synthesizes the client population from cfg.fed / cfg.data_spec.
  // Both constructors validate cfg (sample_fraction, rounds, eval_every,
  // dropout_prob, fault plan) and throw std::invalid_argument naming the
  // offending field.
  explicit Federation(ExperimentConfig cfg);
  // Injects pre-built client data (newcomer experiments hold some out).
  Federation(ExperimentConfig cfg, std::vector<data::ClientData> data);

  const ExperimentConfig& cfg() const { return cfg_; }
  std::size_t n_clients() const { return store_->size(); }

  // Shared ownership of client i, materializing it on demand in virtual
  // mode. Hold the returned pointer in a local when using the client across
  // statements — an evicted client stays alive for exactly as long as
  // someone holds it. Thread-safe.
  std::shared_ptr<const SimClient> client(std::size_t i) const {
    return store_->acquire(i);
  }

  // The backing store's cache statistics (all-zero for materialized runs).
  ClientStore::CacheStats store_stats() const { return store_->stats(); }

  CommTracker& comm() { return comm_; }

  // Shared initial parameters θ0 (identical across algorithms for a given
  // seed, as in the paper's setup).
  const std::vector<float>& init_params() const { return init_params_; }
  std::size_t model_size() const { return init_params_.size(); }

  // Fresh model with architecture cfg.model (weights seeded by salt).
  nn::Model make_model(std::uint64_t salt) const;

  // The reusable workspace model algorithms load parameters into (the
  // sequential path; concurrent client work leases replicas instead).
  nn::Model& workspace() { return workspace_; }

  // Thread-safe checkout of a model replica for concurrent client work.
  // Replicas share the architecture of workspace() and are grown lazily, at
  // most one per in-flight worker; callers must load parameters with
  // set_flat_params before use. Model behavior is fully determined by the
  // flat parameter vector for every zoo architecture (no hidden per-model
  // state like Dropout RNG streams or BatchNorm running stats), which is
  // what makes replicas interchangeable with the shared workspace — keep it
  // that way when adding layers, or thread-count invariance breaks.
  nn::Model* acquire_workspace();
  void release_workspace(nn::Model* m);

  // max(R*N, 1) distinct client ids for the given round — over-selected by
  // fault.over_select_fraction to hedge expected dropouts, minus the fault
  // engine's pre-round dropouts (which absorb the legacy dropout_prob);
  // deterministic in (seed, round), never empty.
  std::vector<std::size_t> sample_round(std::size_t round) const;

  // The fault schedule and the server's update quarantine for this
  // federation. The engine's decisions are pure functions of
  // (seed, client, round); see fl/fault.h.
  const FaultEngine& faults() const { return faults_; }
  const UpdateValidator& validator() const { return validator_; }

  // Resolves post-train delivery of one client's update for (client, round):
  // post-train crashes lose the update before any upload; transient comm
  // faults retransmit (every attempt is billed to comm()) until success or
  // the retry budget runs out; stragglers and backoff delays are checked
  // against fault.round_deadline; surviving updates are deterministically
  // corrupted when scheduled and then screened by validator(). Returns true
  // iff `params` may enter aggregation — false means the server never got a
  // usable update (the caller must exclude it from every reduction).
  // Emits fault.* counters for each injection and defense. Thread-safe:
  // callable from worker chunks (all shared state is atomic).
  // When `encoded_out` is non-null, a successfully delivered update also
  // leaves its encoded wire payload (envelope header stripped) in
  // *encoded_out — the raw bytes the int8 aggregation path consumes without
  // re-expanding to floats. Cleared on every failed delivery.
  bool deliver_update(std::size_t client, std::size_t round,
                      std::vector<float>& params,
                      std::uint64_t upload_floats,
                      std::vector<std::uint8_t>* encoded_out = nullptr);

  // True when cohort updates should be averaged in the quantized int8
  // domain: the experiment codec is qint8 AND --fast-math-kernels opted in
  // (the fixed-point average is an approximation of float averaging; see
  // wire::qint8_weighted_average).
  bool int8_aggregation_active() const;

  // ---- wire layer ----------------------------------------------------
  // Every transfer is serialized into a checksummed wire envelope with the
  // experiment codec (cfg().codec); see fl/wire.h for framing and
  // fl/codec.h for payload encodings.

  // Round-trips `payload` through an envelope (encode -> CRC verify ->
  // decode) and returns what the receiver sees: bit-exact for raw_f32,
  // quantized for lossy codecs. Pure and thread-safe; bills nothing — pair
  // with the billed helpers below. Throws if the self-produced envelope
  // fails to verify (a logic error, not a simulated fault).
  std::vector<float> through_wire(wire::MessageKind kind, const float* data,
                                  std::size_t n, std::uint64_t sender,
                                  std::size_t round) const;
  std::vector<float> through_wire(wire::MessageKind kind,
                                  const std::vector<float>& payload,
                                  std::uint64_t sender,
                                  std::size_t round) const;

  // Server -> client model pull: round-trips `payload` through the wire and
  // bills the download. `counted_floats` (>= payload.size()) is the logical
  // download volume; floats beyond the model payload (e.g. SCAFFOLD's
  // control variate riding along) are billed as a second envelope.
  std::vector<float> pull_model(const std::vector<float>& payload,
                                std::size_t round,
                                std::uint64_t counted_floats);

  // Client -> server setup payload (warmup partials, FLIS profiles, PACFL
  // subspace bases): round-trips through the wire and bills the upload.
  // Setup sweeps stay fault-free (ROADMAP "Robustness"), so this path never
  // consults the fault engine — faulted uploads go through deliver_update.
  std::vector<float> upload_payload(wire::MessageKind kind, const float* data,
                                    std::size_t n, std::size_t client,
                                    std::size_t round);
  std::vector<float> upload_payload(wire::MessageKind kind,
                                    const std::vector<float>& payload,
                                    std::size_t client, std::size_t round);

  // Count-only billing for transfers whose payload is not materialized per
  // message (IFCA's K-model browse): `messages` envelopes of `n_floats`
  // each through the experiment codec.
  void bill_download(std::uint64_t n_floats, std::uint64_t messages = 1);
  void bill_upload(std::uint64_t n_floats, std::uint64_t messages = 1);

  // Where train_clients executes local training: nullptr (the default) or
  // a transport with remote() == false keeps the unchanged in-process path;
  // a remote transport (net::ServerTransport) delegates the computation to
  // worker processes. Not owned; the caller keeps it alive for the run.
  // Deliberately excluded from config_fingerprint: the transport must not
  // change the trajectory (the bit-identity contract in docs/TRANSPORT.md).
  void set_transport(Transport* t) { transport_ = t; }
  Transport* transport() const { return transport_; }

  // Deterministic RNG stream for (client, round) local training. Thread-safe:
  // splitting is a pure function of (seed, client, round), so concurrent
  // workers can derive their streams without synchronization.
  util::Rng train_rng(std::size_t client, std::size_t round) const;

  // The client ids evaluate_all sweeps: every client when
  // cfg().eval_clients is 0 or >= n_clients(), otherwise a sorted
  // subsample drawn once per run from a dedicated seed-derived stream
  // (pure in seed, independent of sampling/training streams).
  std::vector<std::size_t> eval_ids() const;

  // Mean local-test accuracy over eval_ids(), where params_of(i) supplies
  // the flat parameter vector client i should be evaluated with. The sweep
  // runs client-parallel; params_of must be safe to call concurrently for
  // distinct i (return refs to per-client or immutable storage, never to a
  // shared scratch buffer).
  double average_local_accuracy(
      const std::function<const std::vector<float>&(std::size_t)>& params_of);

  // Per-client accuracy vector under the same protocol — the fairness view
  // (accuracy dispersion across clients) used by the shootout example.
  // Entry j is the accuracy of client eval_ids()[j].
  std::vector<double> local_accuracy_distribution(
      const std::function<const std::vector<float>&(std::size_t)>& params_of);

 private:
  // Shared implementation of the through_wire/pull_model/upload_payload
  // helpers; reports the actual encoded payload byte count for billing.
  std::vector<float> wire_round_trip(wire::MessageKind kind, const float* data,
                                     std::size_t n, std::uint64_t sender,
                                     std::size_t round,
                                     std::uint64_t* encoded_bytes,
                                     std::vector<std::uint8_t>* payload_out =
                                         nullptr) const;

  Federation(ExperimentConfig cfg, std::unique_ptr<ClientStore> store);

  ExperimentConfig cfg_;
  Transport* transport_ = nullptr;
  FaultEngine faults_;
  UpdateValidator validator_;
  // mutable: acquiring a client may materialize it into the LRU cache,
  // which is invisible to every observable result (regeneration is pure).
  mutable std::unique_ptr<ClientStore> store_;
  CommTracker comm_;
  nn::Model workspace_;
  std::vector<float> init_params_;

  // Lazily grown pool of workspace replicas for client-parallel execution.
  std::mutex ws_mu_;
  std::vector<std::unique_ptr<nn::Model>> ws_owned_;
  std::vector<nn::Model*> ws_free_;
};

// RAII lease on a workspace replica; used by the parallel round executor's
// worker chunks.
class WorkspaceLease {
 public:
  explicit WorkspaceLease(Federation& fed)
      : fed_(fed), model_(fed.acquire_workspace()) {}
  ~WorkspaceLease() { fed_.release_workspace(model_); }

  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  nn::Model& model() { return *model_; }

 private:
  Federation& fed_;
  nn::Model* model_;
};

// n_i-weighted average of client parameter vectors (FedAvg aggregation).
// `entries` pairs each vector with its weight (sample count); weights are
// normalized internally. Throws on empty input or length mismatch.
std::vector<float> weighted_average(
    const std::vector<std::pair<const std::vector<float>*, double>>& entries);

}  // namespace fedclust::fl
