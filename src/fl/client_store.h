#pragma once

// Client storage behind Federation: either every SimClient held in memory
// (the classic path), or clients regenerated on demand as a pure function
// of (seed, client id) behind an LRU-bounded materialization cache — which
// is what makes million-client populations fit on one machine.
//
// acquire() hands out shared ownership: an evicted client stays alive for
// whoever is still training on it, so eviction can never invalidate an
// in-flight worker. Regeneration is pure, so nothing about a run's
// trajectory ever depends on cache capacity or hit pattern — the cache is
// a memory/CPU dial only (docs/INVARIANTS.md §Scale).

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/partition.h"
#include "fl/client.h"

namespace fedclust::fl {

class ClientStore {
 public:
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  virtual ~ClientStore() = default;

  virtual std::size_t size() const = 0;
  // Shared ownership of client `id`; materializes it if needed. Thread-safe.
  virtual std::shared_ptr<const SimClient> acquire(std::size_t id) = 0;
  virtual CacheStats stats() const { return {}; }
};

// All clients materialized up front — wraps the eager build.
class MaterializedClientStore : public ClientStore {
 public:
  explicit MaterializedClientStore(std::vector<data::ClientData> data);

  std::size_t size() const override { return clients_.size(); }
  std::shared_ptr<const SimClient> acquire(std::size_t id) override;

 private:
  std::vector<std::shared_ptr<const SimClient>> clients_;
};

// Clients regenerated on demand from a PartitionPlan, behind an LRU cache
// of at most `capacity` materialized clients. Concurrent acquires of the
// same uncached id are deduplicated: one thread builds, the rest wait on
// the build slot. For any fixed sequence of acquire() calls the hit/miss/
// eviction sequence is deterministic (plain LRU, ties impossible).
class VirtualClientStore : public ClientStore {
 public:
  VirtualClientStore(std::shared_ptr<const data::PartitionPlan> plan,
                     std::size_t capacity);

  std::size_t size() const override { return plan_->n_clients(); }
  std::shared_ptr<const SimClient> acquire(std::size_t id) override;
  CacheStats stats() const override;

  std::size_t capacity() const { return capacity_; }
  // Currently materialized entries (for tests; racy under concurrency).
  std::size_t cached() const;

 private:
  struct BuildSlot {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const SimClient> client;
  };
  struct Entry {
    std::shared_ptr<const SimClient> client;
    std::list<std::size_t>::iterator lru_it;
  };

  std::shared_ptr<const data::PartitionPlan> plan_;
  std::size_t capacity_;

  mutable std::mutex mu_;
  std::list<std::size_t> lru_;  // front = most recently used
  std::unordered_map<std::size_t, Entry> cache_;
  std::unordered_map<std::size_t, std::shared_ptr<BuildSlot>> building_;
  CacheStats stats_;
};

}  // namespace fedclust::fl
