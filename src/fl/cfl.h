#pragma once

// Clustered Federated Learning (Sattler et al., 2020): recursive cosine-
// similarity bi-partitioning.
//
// All clients start in one cluster training a shared model. When a
// cluster's updates are simultaneously (a) near-stationary on average and
// (b) individually large — i.e. clients pull hard in cancelling directions —
// the cluster is split in two by complete-linkage bipartition of the
// pairwise cosine similarities of the updates. Splitting requires updates
// from *every* member, so a split round forces full participation of that
// cluster (communication accounted), which is exactly why CFL is expensive
// in the paper's comparison.

#include "fl/algorithm.h"

namespace fedclust::fl {

class Cfl : public FlAlgorithm {
 public:
  explicit Cfl(Federation& fed);

  std::string name() const override { return "CFL"; }

  const std::vector<std::size_t>& assignment() const { return assignment_; }

  void save_state(util::BinaryWriter& w) const override;
  void load_state(util::BinaryReader& r) override;

 protected:
  void setup() override;
  void round(std::size_t r) override;
  double evaluate_all() override;
  std::size_t current_clusters() const override {
    return cluster_models_.size();
  }

 private:
  // Collects w_i - cluster_model for every member of cluster k (full
  // participation), then bipartitions by cosine similarity.
  void split_cluster(std::size_t k, std::size_t round);

  std::vector<std::size_t> assignment_;
  std::vector<std::vector<float>> cluster_models_;
};

}  // namespace fedclust::fl
