#pragma once

// FlAlgorithm: the template-method harness every FL method implements.
// run() drives the round loop, snapshots communication counters, and
// records the evaluation trace, so each algorithm only writes setup(),
// round(), and evaluate_all().

#include <functional>
#include <memory>
#include <string>

#include "fl/federation.h"
#include "fl/metrics.h"

namespace fedclust::fl {

class FlAlgorithm {
 public:
  explicit FlAlgorithm(Federation& fed) : fed_(fed) {}
  virtual ~FlAlgorithm() = default;

  FlAlgorithm(const FlAlgorithm&) = delete;
  FlAlgorithm& operator=(const FlAlgorithm&) = delete;

  virtual std::string name() const = 0;

  // Invoked by run() after each evaluated round with the freshly appended
  // record and the round's wall time (train + eval, seconds). Surfaces
  // like fedclust_sim use it for live progress lines; it observes, never
  // influences, the round loop.
  using RoundObserver =
      std::function<void(const RoundRecord&, double round_seconds)>;
  void set_round_observer(RoundObserver observer) {
    observer_ = std::move(observer);
  }

  // Executes setup() once, then cfg().rounds rounds; evaluates every
  // cfg().eval_every rounds (and always after the last round).
  Trace run();

 protected:
  // One-shot work before the round loop (e.g. FedClust's clustering round,
  // PACFL's subspace exchange). Communication it causes is accounted.
  virtual void setup() {}
  // One communication round (round index is 0-based).
  virtual void round(std::size_t r) = 0;
  // Mean local-test accuracy over every client (paper's headline metric).
  virtual double evaluate_all() = 0;
  // Cluster count to record this round (1 for non-clustered methods).
  virtual std::size_t current_clusters() const { return 1; }

  Federation& fed_;

 private:
  RoundObserver observer_;
};

}  // namespace fedclust::fl
