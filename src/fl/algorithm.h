#pragma once

// FlAlgorithm: the template-method harness every FL method implements.
// run() drives the round loop, snapshots communication counters, and
// records the evaluation trace, so each algorithm only writes setup(),
// round(), and evaluate_all().

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "fl/federation.h"
#include "fl/metrics.h"
#include "fl/snapshot.h"
#include "util/serialization.h"

namespace fedclust::fl {

class FlAlgorithm {
 public:
  explicit FlAlgorithm(Federation& fed) : fed_(fed) {}
  virtual ~FlAlgorithm() = default;

  FlAlgorithm(const FlAlgorithm&) = delete;
  FlAlgorithm& operator=(const FlAlgorithm&) = delete;

  virtual std::string name() const = 0;

  // Invoked by run() after each evaluated round with the freshly appended
  // record and the round's wall time (train + eval, seconds). Surfaces
  // like fedclust_sim use it for live progress lines; it observes, never
  // influences, the round loop.
  using RoundObserver =
      std::function<void(const RoundRecord&, double round_seconds)>;
  void set_round_observer(RoundObserver observer) {
    observer_ = std::move(observer);
  }

  // Executes setup() once, then cfg().rounds rounds; evaluates every
  // cfg().eval_every rounds (and always after the last round). When a
  // snapshot was staged with resume_from(), setup() is skipped (its work —
  // including the comm it billed — lives inside the restored state) and the
  // loop starts at the snapshot's next_round with the restored trace
  // records; the resulting trace, final parameters, and comm totals are
  // bit-identical to the uninterrupted run's at any thread count
  // (docs/INVARIANTS.md "Snapshot").
  Trace run();

  // ---- checkpoint / resume -------------------------------------------
  // Serialize / restore every mutable field the round loop evolves (model
  // parameters, cluster structures, control variates, server optimizer
  // moments). Constructor-fixed hyperparameters are NOT state — they are
  // re-derived from the config on resume. load_state must accept exactly
  // the bytes save_state wrote; the snapshot layer owns framing and
  // integrity (CRC runs before any byte reaches load_state).
  virtual void save_state(util::BinaryWriter& w) const = 0;
  virtual void load_state(util::BinaryReader& r) = 0;

  void set_checkpoint_policy(CheckpointPolicy policy) {
    checkpoint_ = std::move(policy);
  }
  // Validates `snap` against the live config (fingerprint, method, seed,
  // RNG probes) and stages it for the next run() call. Throws
  // SnapshotError naming the mismatch; on success no state is touched
  // until run().
  void resume_from(RunSnapshot snap);
  // Full run state at boundary `next_round` (the first round a resumed run
  // would execute), with `records` as the trace so far.
  RunSnapshot capture_snapshot(std::size_t next_round,
                               const std::vector<RoundRecord>& records);
  // CRC32C over save_state's byte stream — the digest fedclust_sim prints
  // so two runs' final states can be compared without shipping the bytes.
  std::uint32_t state_crc32c() const;

 protected:
  // One-shot work before the round loop (e.g. FedClust's clustering round,
  // PACFL's subspace exchange). Communication it causes is accounted.
  virtual void setup() {}
  // One communication round (round index is 0-based).
  virtual void round(std::size_t r) = 0;
  // Mean local-test accuracy over every client (paper's headline metric).
  virtual double evaluate_all() = 0;
  // Cluster count to record this round (1 for non-clustered methods).
  virtual std::size_t current_clusters() const { return 1; }

  Federation& fed_;

 private:
  RoundObserver observer_;
  CheckpointPolicy checkpoint_;
  std::optional<RunSnapshot> resume_;
};

}  // namespace fedclust::fl
