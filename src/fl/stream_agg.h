#pragma once

// Streaming weighted aggregation over a fixed binary reduction tree.
//
// The cohort's slot count fixes the tree's shape before any update arrives;
// each slot feeds a leaf, and an internal node folds its two children the
// moment both are resolved — so updates are consumed (and their parameter
// buffers freed) as they are delivered, in any order, on any thread, while
// the floating-point association stays exactly the tree's. Results are
// therefore bit-identical at any FEDCLUST_THREADS value and identical
// between the streaming and collect-then-reduce call styles.
//
// Per-slot retained state after submit() returns is one double accumulator
// tree node, not the float update — per-round memory is O(sampled cohort),
// independent of the population (docs/INVARIANTS.md §Scale).

#include <cstdint>
#include <mutex>
#include <vector>

namespace fedclust::fl {

class StreamingAggregator {
 public:
  // `n_slots` cohort positions aggregating vectors of length `dim`.
  // int8_mode additionally retains each slot's encoded qint8 wire payload
  // so finish() can average in the quantized domain (the
  // --fast-math-kernels qint8 path), falling back to the float tree when
  // any payload is missing or mis-sized.
  StreamingAggregator(std::size_t n_slots, std::size_t dim,
                      bool int8_mode = false);

  // Slot `slot` delivered an update: `v[0..dim)` with weight w >= 0.
  // Thread-safe; each slot must be resolved (submit or skip) exactly once.
  void submit(std::size_t slot, const float* v, std::size_t n, double w,
              std::vector<std::uint8_t>&& encoded = {});
  // Slot `slot` produced no usable update (lost, crashed, quarantined).
  void skip(std::size_t slot);

  bool any_delivered() const;

  // Folds the aggregate into `model` and returns true; returns false with
  // `model` untouched when no slot delivered (graceful degradation) —
  // callers decide which fault.empty_* counter that bumps. Requires every
  // slot resolved. Call once, after parallel work has joined or from the
  // delivering side's final consume.
  bool finish(std::vector<float>& model);

 private:
  struct Node {
    std::vector<double> acc;  // sum of w_i * v_i; empty = no contribution
    double w = 0.0;
    int remaining = 0;  // children not yet folded (leaves: 1 = unresolved)
  };

  void resolve(std::size_t slot, bool delivered_flag, const float* v,
               double w, std::vector<std::uint8_t>&& encoded);

  std::size_t n_slots_;
  std::size_t dim_;
  bool int8_mode_;

  mutable std::mutex mu_;
  // levels_[0] = leaves; levels_.back() has one root node.
  std::vector<std::vector<Node>> levels_;
  std::size_t resolved_ = 0;
  std::size_t delivered_ = 0;
  // int8 mode: per-slot encoded payload + weight + delivered flag, consumed
  // at finish() in slot order — the same entry order the collect-then-reduce
  // path used.
  std::vector<std::vector<std::uint8_t>> encoded_;
  std::vector<double> weights_;
  std::vector<char> slot_delivered_;
};

}  // namespace fedclust::fl
