#pragma once

// FedDyn (Acar et al., 2021) — extension baseline beyond the paper's
// comparison (discussed in its §2.1). Each client minimizes a dynamically
// regularized objective
//   f_i(w) - <h_i, w> + (alpha/2) ||w - theta||^2
// whose stationary points align the local and global optima; h_i is the
// client's lagged gradient state, updated after each participation as
//   h_i <- h_i - alpha (w_i - theta).
// The server keeps the running mean of all corrections and sets
//   theta <- mean(w_i) - h / alpha.

#include "fl/algorithm.h"
#include "fl/client_state.h"

namespace fedclust::fl {

class FedDyn : public FlAlgorithm {
 public:
  explicit FedDyn(Federation& fed, float alpha = 0.1f);

  std::string name() const override { return "FedDyn"; }

  const std::vector<float>& global_params() const { return global_; }

  void save_state(util::BinaryWriter& w) const override;
  void load_state(util::BinaryReader& r) override;

 protected:
  void setup() override;
  void round(std::size_t r) override;
  double evaluate_all() override;

 private:
  float alpha_;
  std::vector<float> global_;
  SparseClientParams h_client_;   // persistent per client, zeros default
  std::vector<double> h_server_;  // running mean of corrections
};

}  // namespace fedclust::fl
