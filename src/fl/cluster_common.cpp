#include "fl/cluster_common.h"

#include <stdexcept>

#include "fl/parallel_round.h"
#include "obs/journal.h"
#include "obs/metrics.h"

namespace fedclust::fl {

void cluster_fedavg_round(Federation& fed, std::size_t round,
                          const std::vector<std::size_t>& assignment,
                          std::vector<std::vector<float>>& cluster_models) {
  if (assignment.size() != fed.n_clients()) {
    throw std::invalid_argument("cluster_fedavg_round: bad assignment size");
  }
  const auto sampled = fed.sample_round(round);
  const std::size_t p = fed.model_size();
  for (const std::size_t c : sampled) {
    if (assignment[c] >= cluster_models.size()) {
      throw std::invalid_argument("cluster_fedavg_round: assignment OOB");
    }
    OBS_JOURNAL(round, c, kCluster, assignment[c]);
  }

  // Client announces its cluster id (negligible) and receives that
  // cluster's model; assignment and cluster models are round-constant
  // during the fan-out.
  ParallelRoundRunner runner(fed);
  const auto results = runner.train_clients(
      sampled, [&](std::size_t, std::size_t c) {
        RoundTrainJob job;
        job.start = &cluster_models[assignment[c]];
        job.opts = fed.cfg().local;
        job.rng = fed.train_rng(c, round);
        job.download_floats = p;
        job.upload_floats = p;
        job.round = round;
        return job;
      });

  // cluster -> the *delivered* updates, grouped in client-index order;
  // `sampled_members` distinguishes clusters whose entire sampled
  // membership was lost to faults this round from unsampled ones.
  std::vector<std::vector<const RoundTrainResult*>> per_cluster(
      cluster_models.size());
  std::vector<std::size_t> sampled_members(cluster_models.size(), 0);
  for (const auto& res : results) {
    const std::size_t k = assignment[res.client];
    ++sampled_members[k];
    if (res.delivered) per_cluster[k].push_back(&res);
  }
  for (std::size_t k = 0; k < cluster_models.size(); ++k) {
    if (per_cluster[k].empty()) {
      // No surviving member update: the cluster model is carried forward
      // unchanged, and its clients keep evaluating/training against this
      // last cluster model — graceful degradation, never an empty
      // aggregation. Distinguish "nobody sampled" (normal under partial
      // participation) from "everyone sampled was lost" (a fault hollowed
      // the cluster out).
      if (sampled_members[k] > 0) {
        OBS_COUNTER_ADD("fault.empty_cluster_rounds", 1);
      }
      continue;
    }
    if (try_int8_aggregate(cluster_models[k], per_cluster[k])) continue;
    std::vector<std::pair<const std::vector<float>*, double>> entries;
    entries.reserve(per_cluster[k].size());
    for (const RoundTrainResult* r : per_cluster[k]) {
      entries.emplace_back(&r->params, r->weight);
    }
    cluster_models[k] = weighted_average(entries);
  }
}

double cluster_average_accuracy(
    Federation& fed, const std::vector<std::size_t>& assignment,
    const std::vector<std::vector<float>>& cluster_models) {
  return fed.average_local_accuracy(
      [&](std::size_t i) -> const std::vector<float>& {
        return cluster_models[assignment[i]];
      });
}

}  // namespace fedclust::fl
