#include "fl/cluster_common.h"

#include <stdexcept>

namespace fedclust::fl {

void cluster_fedavg_round(Federation& fed, std::size_t round,
                          const std::vector<std::size_t>& assignment,
                          std::vector<std::vector<float>>& cluster_models) {
  if (assignment.size() != fed.n_clients()) {
    throw std::invalid_argument("cluster_fedavg_round: bad assignment size");
  }
  const auto sampled = fed.sample_round(round);
  nn::Model& ws = fed.workspace();
  const std::size_t p = fed.model_size();

  // cluster -> (params, weight) gathered this round.
  std::vector<std::vector<std::vector<float>>> updates(cluster_models.size());
  std::vector<std::vector<double>> weights(cluster_models.size());

  for (const std::size_t c : sampled) {
    const std::size_t k = assignment[c];
    if (k >= cluster_models.size()) {
      throw std::invalid_argument("cluster_fedavg_round: assignment OOB");
    }
    // Client announces its cluster id (negligible) and receives that
    // cluster's model.
    fed.comm().download_floats(p);
    ws.set_flat_params(cluster_models[k]);
    fed.client(c).train(ws, fed.cfg().local, fed.train_rng(c, round));
    fed.comm().upload_floats(p);
    updates[k].push_back(ws.flat_params());
    weights[k].push_back(static_cast<double>(fed.client(c).n_train()));
  }

  for (std::size_t k = 0; k < cluster_models.size(); ++k) {
    if (updates[k].empty()) continue;  // no member sampled: model unchanged
    std::vector<std::pair<const std::vector<float>*, double>> entries;
    for (std::size_t i = 0; i < updates[k].size(); ++i) {
      entries.emplace_back(&updates[k][i], weights[k][i]);
    }
    cluster_models[k] = weighted_average(entries);
  }
}

double cluster_average_accuracy(
    Federation& fed, const std::vector<std::size_t>& assignment,
    const std::vector<std::vector<float>>& cluster_models) {
  return fed.average_local_accuracy(
      [&](std::size_t i) -> const std::vector<float>& {
        return cluster_models[assignment[i]];
      });
}

}  // namespace fedclust::fl
