#include "fl/cluster_common.h"

#include <memory>
#include <stdexcept>

#include "fl/parallel_round.h"
#include "fl/stream_agg.h"
#include "obs/journal.h"
#include "obs/metrics.h"

namespace fedclust::fl {

void cluster_fedavg_round(Federation& fed, std::size_t round,
                          const std::vector<std::size_t>& assignment,
                          std::vector<std::vector<float>>& cluster_models) {
  if (assignment.size() != fed.n_clients()) {
    throw std::invalid_argument("cluster_fedavg_round: bad assignment size");
  }
  const auto sampled = fed.sample_round(round);
  const std::size_t p = fed.model_size();
  for (const std::size_t c : sampled) {
    if (assignment[c] >= cluster_models.size()) {
      throw std::invalid_argument("cluster_fedavg_round: assignment OOB");
    }
    OBS_JOURNAL(round, c, kCluster, assignment[c]);
  }

  // Each sampled client gets a slot in its cluster's reduction tree, in
  // client-index order — so the per-cluster tree shape (and with it every
  // FP association) is fixed before the fan-out starts. `sampled_members`
  // distinguishes clusters whose entire sampled membership was lost to
  // faults this round from unsampled ones.
  std::vector<std::size_t> cluster_slot(sampled.size(), 0);
  std::vector<std::size_t> sampled_members(cluster_models.size(), 0);
  for (std::size_t idx = 0; idx < sampled.size(); ++idx) {
    const std::size_t k = assignment[sampled[idx]];
    cluster_slot[idx] = sampled_members[k]++;
  }
  const bool int8_mode = fed.int8_aggregation_active();
  std::vector<std::unique_ptr<StreamingAggregator>> aggs(
      cluster_models.size());
  for (std::size_t k = 0; k < cluster_models.size(); ++k) {
    if (sampled_members[k] > 0) {
      aggs[k] = std::make_unique<StreamingAggregator>(sampled_members[k], p,
                                                      int8_mode);
    }
  }

  // Client announces its cluster id (negligible) and receives that
  // cluster's model; assignment and cluster models are round-constant
  // during the fan-out. Updates stream straight into their cluster's tree
  // and are freed — per-round memory stays O(sampled cohort).
  ParallelRoundRunner runner(fed);
  runner.train_clients_into(
      sampled,
      [&](std::size_t, std::size_t c) {
        RoundTrainJob job;
        job.start = &cluster_models[assignment[c]];
        job.opts = fed.cfg().local;
        job.rng = fed.train_rng(c, round);
        job.download_floats = p;
        job.upload_floats = p;
        job.round = round;
        return job;
      },
      [&](std::size_t idx, RoundTrainResult&& res) {
        StreamingAggregator& agg = *aggs[assignment[sampled[idx]]];
        if (res.delivered) {
          agg.submit(cluster_slot[idx], res.params.data(), res.params.size(),
                     res.weight, std::move(res.encoded));
        } else {
          agg.skip(cluster_slot[idx]);
        }
      });

  for (std::size_t k = 0; k < cluster_models.size(); ++k) {
    if (!aggs[k]) continue;  // nobody sampled: normal partial participation
    if (!aggs[k]->finish(cluster_models[k])) {
      // Every sampled member's update was lost: the cluster model is
      // carried forward unchanged, and its clients keep evaluating/training
      // against this last cluster model — graceful degradation, never an
      // empty aggregation.
      OBS_COUNTER_ADD("fault.empty_cluster_rounds", 1);
    }
  }
}

double cluster_average_accuracy(
    Federation& fed, const std::vector<std::size_t>& assignment,
    const std::vector<std::vector<float>>& cluster_models) {
  return fed.average_local_accuracy(
      [&](std::size_t i) -> const std::vector<float>& {
        return cluster_models[assignment[i]];
      });
}

}  // namespace fedclust::fl
